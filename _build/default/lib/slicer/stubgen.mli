(** Stub generation (§2.4, §3.1.1).

    For each entry point the partition found, emits the text of the stub
    that carries a call across a boundary:

    - a {e kernel stub} replacing a user-moved function in the driver
      nucleus (it marshals arguments and XPCs up), and
    - a {e Jeannie stub} letting pure Java invoke a C/kernel function:
      object-tracker translation, XDR copy in, the backtick-call, XDR
      copy back — the paper's Figure 2. *)

val kernel_stub :
  Decaf_minic.Ast.func -> string
(** Stub text installed in the driver nucleus for a user-mode entry
    point. *)

val jeannie_stub :
  class_name:string -> Decaf_minic.Ast.func -> string
(** Jeannie stub text for a kernel entry point invoked from Java. *)

val generate :
  Decaf_minic.Ast.file -> Partition.result -> (string * string) list
(** [(stub name, stub code)] for every entry point of the partition;
    kernel stubs for user entry points, Jeannie stubs for kernel entry
    points that are defined in the driver. *)
