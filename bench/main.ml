(* The benchmark harness: regenerates every table of the paper's
   evaluation and measures the cost of the core XPC/marshaling
   primitives with Bechamel.

   Usage:
     bench/main.exe              run everything
     bench/main.exe table1 ...   run selected parts
       (table1 table2 table3 table4 casestudy ablations xpcperf micro)
     bench/main.exe json [path]  write the batched-XPC trajectory
                                 (default BENCH_xpc.json)
     bench/main.exe check path   re-measure and fail on >10% regression
                                 against a committed trajectory
     bench/main.exe soak-json [path]   write the soak latency trajectory
                                       (default BENCH_soak.json)
     bench/main.exe soak-check path    re-measure and fail on a p99
                                       regression, an audio deadline
                                       miss (steady phase) or a leak

   The xpcperf section accepts matrix filters, so one cell of the
   sweep (five single-instance scenarios x 11 configs, plus the
   e1000-fleet axis at i in {1,16,64,256}) can be reproduced locally:
     bench/main.exe xpcperf --scenario=e1000-netperf-send \
                            --config=batch+delta+w1+ring
     bench/main.exe xpcperf --scenario=e1000-fleet \
                            --config=batch+delta+w4+ring+i64
   Unknown names fail fast and list the valid ones.
*)

module K = Decaf_kernel
module Xpc = Decaf_xpc
module E = Decaf_experiments
open Bechamel
open Toolkit

let section title = Printf.printf "\n==== %s ====\n%!" title

(* --- table harnesses: each regenerates one table/figure set --- *)

let run_table1 () = print_string (E.Table1.render (E.Table1.measure ()))
let run_table2 () = print_string (E.Table2.render (E.Table2.measure ()))
let run_table3 () = print_string (E.Table3.render (E.Table3.measure ()))
let run_table4 () = print_string (E.Table4.render (E.Table4.measure ()))

let run_casestudy () =
  print_string (E.Casestudy.render (E.Casestudy.measure ()));
  section "Figure 2: generated Jeannie stub for snd_card_register";
  print_string (E.Casestudy.figure2_stub ());
  section "Figure 3: generated XDR spec for the E1000 (excerpt)";
  let xdr = E.Casestudy.figure3_xdr () in
  let take_lines n s =
    String.split_on_char '\n' s
    |> List.filteri (fun i _ -> i < n)
    |> String.concat "\n"
  in
  print_endline (take_lines 30 xdr);
  section "Figure 5: e1000_config_dsp_after_link_change, before/after";
  let before, after = E.Casestudy.figure5_before_after () in
  Printf.printf "--- original (return codes) ---\n%s\n" before;
  Printf.printf "--- exception style ---\n%s\n" after

(* --- micro-benchmarks over the core primitives --- *)

let prepare_machine () =
  K.Boot.boot ();
  Xpc.Domain.reset ();
  Xpc.Channel.reset_stats ();
  Xpc.Dispatch.reset ();
  Decaf_runtime.Runtime.reset ()

let bench_tests () =
  prepare_machine ();
  let adapter = Decaf_drivers.E1000_objects.fresh_kernel_adapter () in
  let marshaled = Decaf_drivers.E1000_objects.marshal_to_user adapter in
  let tracker = Xpc.Objtracker.create () in
  let key = Decaf_drivers.E1000_objects.ring_key in
  let ring = { Decaf_drivers.E1000_objects.head = 0; tail = 0; count = 8 } in
  Xpc.Objtracker.associate tracker ~addr:0xc000_0000 (Xpc.Univ.pack key ring);
  let combolock = K.Sync.Combolock.create () in
  let micro =
    Test.make_grouped ~name:"micro"
      [
        Test.make ~name:"xpc/kernel-user-crossing"
          (Staged.stage (fun () ->
               Xpc.Channel.call ~target:Xpc.Domain.Driver_lib ~payload_bytes:64
                 (fun () -> ())));
        Test.make ~name:"xpc/c-java-crossing"
          (Staged.stage (fun () ->
               Xpc.Domain.with_domain Xpc.Domain.Driver_lib (fun () ->
                   Xpc.Channel.call ~target:Xpc.Domain.Decaf_driver
                     ~payload_bytes:64 (fun () -> ()))));
        Test.make ~name:"xdr/marshal-e1000-adapter"
          (Staged.stage (fun () ->
               ignore (Decaf_drivers.E1000_objects.marshal_to_user adapter)));
        Test.make ~name:"xdr/unmarshal-e1000-adapter"
          (Staged.stage (fun () ->
               ignore
                 (Decaf_drivers.E1000_objects.unmarshal_at_user marshaled
                    adapter)));
        Test.make ~name:"objtracker/hit"
          (Staged.stage (fun () ->
               ignore (Xpc.Objtracker.find tracker ~addr:0xc000_0000 key)));
        Test.make ~name:"combolock/kernel-fast-path"
          (Staged.stage (fun () ->
               K.Sync.Combolock.with_kernel combolock (fun () -> ())));
        Test.make ~name:"minic/parse-e1000-driver"
          (Staged.stage (fun () ->
               ignore (Decaf_minic.Parser.parse Decaf_drivers.E1000_src.source)));
        Test.make ~name:"slicer/slice-e1000-driver"
          (Staged.stage (fun () ->
               ignore
                 (Decaf_slicer.Slicer.slice
                    ~source:Decaf_drivers.E1000_src.source
                    Decaf_drivers.E1000_src.config)));
      ]
  in
  let tables =
    Test.make_grouped ~name:"tables"
      [
        Test.make ~name:"table1/infrastructure-loc"
          (Staged.stage (fun () -> ignore (E.Table1.measure ())));
        Test.make ~name:"table2/slice-five-drivers"
          (Staged.stage (fun () -> ignore (E.Table2.measure ())));
        Test.make ~name:"table3/all-workloads"
          (Staged.stage (fun () ->
               ignore (E.Table3.measure ~duration_ns:200_000_000 ())));
        Test.make ~name:"table4/evolution"
          (Staged.stage (fun () -> ignore (E.Table4.measure ())));
        Test.make ~name:"casestudy/error-analysis"
          (Staged.stage (fun () -> ignore (E.Casestudy.measure ())));
      ]
  in
  (micro, tables)

let run_bechamel ~quota ~limit test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  List.sort compare names
  |> List.iter (fun name ->
         let ols_result = Hashtbl.find results name in
         match Analyze.OLS.estimates ols_result with
         | Some (est :: _) -> Printf.printf "%-40s %12.0f ns/run\n%!" name est
         | Some [] | None -> Printf.printf "%-40s (no estimate)\n%!" name)

let run_micro () =
  let micro, _ = bench_tests () in
  section "Bechamel micro-benchmarks (wall-clock per run)";
  run_bechamel ~quota:0.25 ~limit:500 micro

let run_table_benches () =
  let _, tables = bench_tests () in
  section "Bechamel table-regeneration benchmarks (wall-clock per run)";
  run_bechamel ~quota:1.0 ~limit:4 tables

(* --scenario=/--config= filters for the xpcperf matrix: validate
   against the experiment's own name lists so a typo fails fast instead
   of silently measuring nothing. *)
let prefixed p a =
  let pl = String.length p in
  if String.length a > pl && String.sub a 0 pl = p then
    Some (String.sub a pl (String.length a - pl))
  else None

let parse_matrix_filters args =
  let check what valid = function
    | Some name when not (List.mem name valid) ->
        Printf.eprintf "unknown %s %S; valid: %s\n" what name
          (String.concat ", " valid);
        exit 2
    | v -> v
  in
  let scenario, config, rest =
    List.fold_left
      (fun (s, c, rest) a ->
        match (prefixed "--scenario=" a, prefixed "--config=" a) with
        | Some v, _ -> (Some v, c, rest)
        | _, Some v -> (s, Some v, rest)
        | None, None -> (s, c, a :: rest))
      (None, None, []) args
  in
  ( check "scenario" E.Xpcperf.scenario_names scenario,
    check "config" (E.Xpcperf.config_names ()) config,
    List.rev rest )

let run_sections args =
  let scenario, config, args = parse_matrix_filters args in
  let want name = args = [] || List.mem name args in
  if want "table1" then begin
    section "Table 1";
    run_table1 ()
  end;
  if want "table2" then begin
    section "Table 2";
    run_table2 ()
  end;
  if want "table3" then begin
    section "Table 3";
    run_table3 ()
  end;
  if want "table4" then begin
    section "Table 4";
    run_table4 ()
  end;
  if want "casestudy" then begin
    section "Case study (5.1)";
    run_casestudy ()
  end;
  if want "ablations" then begin
    section "Ablations";
    print_string (E.Ablations.render (E.Ablations.measure ()))
  end;
  if want "xpcperf" then begin
    section "Concurrent dispatch, batched XPC and delta marshaling";
    print_string
      (E.Xpcperf.render (E.Xpcperf.measure ?scenario ?config ()))
  end;
  if want "soak" then begin
    section "Mixed-traffic soak (latency percentiles per event path)";
    print_string (E.Soak.render (E.Soak.measure ()))
  end;
  if want "micro" then begin
    run_micro ();
    run_table_benches ()
  end

let () =
  match List.tl (Array.to_list Sys.argv) with
  | "json" :: rest ->
      let path = match rest with p :: _ -> p | [] -> "BENCH_xpc.json" in
      let samples = E.Xpcperf.write_json ~path () in
      print_string (E.Xpcperf.render samples);
      Printf.printf "wrote %d samples to %s\n" (List.length samples) path
  | [ "check"; path ] -> if not (E.Xpcperf.check ~path ()) then exit 1
  | "soak-json" :: rest ->
      (* optional overrides, e.g. `soak-json --duration-ms=500 --fleet=4`,
         for scaled-up local runs; the committed file uses the defaults *)
      let duration_ns =
        List.fold_left
          (fun acc a ->
            match prefixed "--duration-ms=" a with
            | Some v -> int_of_string v * 1_000_000
            | None -> acc)
          E.Soak.default_duration_ns rest
      in
      let fleet =
        List.fold_left
          (fun acc a ->
            match prefixed "--fleet=" a with
            | Some v -> int_of_string v
            | None -> acc)
          E.Soak.default_fleet rest
      in
      let path =
        match List.filter (fun a -> String.length a < 2 || String.sub a 0 2 <> "--") rest with
        | p :: _ -> p
        | [] -> "BENCH_soak.json"
      in
      let s = E.Soak.write_json ~duration_ns ~fleet ~path () in
      print_string (E.Soak.render s);
      Printf.printf "wrote %d rows to %s\n" (List.length s.E.Soak.rows) path
  | [ "soak-check"; path ] -> if not (E.Soak.check ~path ()) then exit 1
  | args -> run_sections args
