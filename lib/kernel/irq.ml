(* Sized like an MSI vector space rather than a legacy PIC: a fleet run
   binds hundreds of PCI functions, each with its own interrupt line. *)
let nr_irqs = 1024
let retry_ns = 500

(* Safety net for a line stuck behind a delivery window that no hook
   ever closes; the backlog drain is the real wake, so this only has to
   be rare enough not to matter. *)
let fallback_ns = 100_000

type line = {
  mutable handler : (string * (unit -> unit)) option;
  mutable disable_depth : int;
  mutable pending : bool;
  mutable delivered : int;
  mutable queued : bool;  (* waiting in the blocked-line backlog *)
  mutable retry_armed : bool;
      (* a fallback retry event is outstanding: at most one per line,
         or a fleet of devices asserting during long irq-masked windows
         schedules one retry chain per assertion and the event queue
         grows with traffic instead of with line count *)
  mutable born : int option;
      (* birth stamp of the oldest undelivered assertion: re-assertions
         while pending coalesce onto it, so the recorded raise-to-entry
         latency covers the full masked window, not the last re-raise *)
}

let fresh_line () =
  {
    handler = None;
    disable_depth = 0;
    pending = false;
    delivered = 0;
    queued = false;
    retry_armed = false;
    born = None;
  }

let lines = Array.init nr_irqs (fun _ -> fresh_line ())
let spurious_count = ref 0

let check n =
  if n < 0 || n >= nr_irqs then Panic.bug "irq %d out of range" n;
  lines.(n)

let request_irq n ~name handler =
  let l = check n in
  Ktrace.note (Ktrace.Irq_line n) Ktrace.Write;
  (match l.handler with
  | Some (owner, _) -> Panic.bug "irq %d already claimed by %s" n owner
  | None -> ());
  l.handler <- Some (name, handler)

let free_irq n =
  let l = check n in
  Ktrace.note (Ktrace.Irq_line n) Ktrace.Write;
  l.handler <- None;
  l.pending <- false;
  l.queued <- false;
  l.retry_armed <- false;
  l.born <- None

let cpu_can_take_irq () = not (Sched.irqs_masked () || Sched.in_interrupt ())

(* Run [f] in interrupt context now if the CPU allows, otherwise retry
   from a clock event until it does. *)
let rec run_at_high_priority f =
  if cpu_can_take_irq () then begin
    Sched.enter_interrupt ();
    Clock.consume Cost.current.irq_dispatch_ns;
    (match f () with
    | () -> Sched.exit_interrupt ()
    | exception e ->
        Sched.exit_interrupt ();
        raise e)
  end
  else ignore (Clock.after retry_ns (fun () -> run_at_high_priority f))

(* Lines that asserted while the CPU could not take an interrupt, in
   arrival order. They wait silently — like an interrupt controller
   holding lines high — and are delivered back-to-back the moment a
   delivery window opens (the [Sched] irq-window hook fires on every
   exit from interrupt context and irq unmask). A convoy of N pending
   devices therefore costs N deliveries, not N^2 retry polls; a
   long-period fallback timer covers only the windows no hook ever
   closes. *)
let backlog : int Queue.t = Queue.create ()

let rec try_deliver n =
  let l = lines.(n) in
  if l.pending && l.disable_depth = 0 then
    if cpu_can_take_irq () then begin
      l.pending <- false;
      match l.handler with
      | Some (_, handler) ->
          l.delivered <- l.delivered + 1;
          Ktrace.note (Ktrace.Irq_line n) Ktrace.Wait;
          Sched.enter_interrupt ();
          Clock.consume Cost.current.irq_dispatch_ns;
          (* handler entry: the raise-to-entry timeline includes the
             dispatch cost and any masked/backlogged wait *)
          (match l.born with
          | Some b ->
              l.born <- None;
              Latency.observe_path "irq" (max 0 (Clock.now () - b))
          | None -> ());
          (match handler () with
          | () -> Sched.exit_interrupt ()
          | exception e ->
              Sched.exit_interrupt ();
              raise e);
          (* The device may have re-asserted the line meanwhile. *)
          try_deliver n
      | None -> incr spurious_count
    end
    else begin
      if not l.queued then begin
        l.queued <- true;
        Queue.push n backlog
      end;
      if not l.retry_armed then begin
        l.retry_armed <- true;
        ignore
          (Clock.after fallback_ns (fun () ->
               l.retry_armed <- false;
               try_deliver n))
      end
    end

and drain_backlog () =
  if cpu_can_take_irq () then
    match Queue.take_opt backlog with
    | Some n ->
        lines.(n).queued <- false;
        try_deliver n;
        drain_backlog ()
    | None -> ()

let () = Sched.set_irq_window_hook drain_backlog

let raise_irq n =
  let l = check n in
  Ktrace.note (Ktrace.Irq_line n) Ktrace.Signal;
  if l.handler = None then incr spurious_count
  else begin
    if l.born = None then l.born <- Some (Clock.now ());
    l.pending <- true;
    try_deliver n
  end

let disable_irq n =
  let l = check n in
  Ktrace.note (Ktrace.Irq_line n) Ktrace.Write;
  l.disable_depth <- l.disable_depth + 1

let enable_irq n =
  let l = check n in
  if l.disable_depth = 0 then Panic.bug "enable_irq %d: not disabled" n;
  Ktrace.note (Ktrace.Irq_line n) Ktrace.Write;
  l.disable_depth <- l.disable_depth - 1;
  if l.disable_depth = 0 then try_deliver n

let delivered n = (check n).delivered
let spurious () = !spurious_count

let reset () =
  Array.iteri (fun i _ -> lines.(i) <- fresh_line ()) lines;
  Queue.clear backlog;
  spurious_count := 0
