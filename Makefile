all: build

build:
	dune build

test:
	dune runtest

# Fail if the XPC fast path regressed >10% against the committed
# trajectory (also runs as part of `dune runtest`).
bench-check:
	dune build @bench-smoke

# Regenerate the committed trajectory after a deliberate retuning.
bench-json:
	dune exec bench/main.exe -- json

bench:
	dune exec bench/main.exe

clean:
	dune clean

.PHONY: all build test bench-check bench-json bench clean
