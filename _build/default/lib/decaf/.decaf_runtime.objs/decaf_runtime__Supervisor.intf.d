lib/decaf/supervisor.mli:
