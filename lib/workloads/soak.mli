(** The mixed-traffic soak: all five drivers at once in one booted
    machine — an e1000 fleet streaming bursty heavy-tailed flows
    through the virtual switch, 8139too netperf bursts, continuous
    ens1371 playback, UHCI tar loops and psmouse event storms — with
    the per-path latency registry ({!Decaf_kernel.Latency}) as the
    figure of merit.

    Two phases run back to back: ["steady"] (fault-free; the audio
    deadline gate applies here) and ["churn"] (the same traffic under
    link-flap and spurious-interrupt fault plans, hotplug storms on the
    fleet ports and the mouse, and suspend/resume cycles on the e1000
    and the HCD). The run ends at quiescence with every binding
    unloaded and the object-tracker and kmalloc ledgers compared to the
    post-boot baseline. *)

type path_stats = {
  path : string;  (** registry path, e.g. ["irq"], ["xpc.dispatch"] *)
  samples : int;
  overflow : int;  (** samples beyond the histogram's last bucket *)
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

type phase = {
  phase_name : string;  (** ["steady"] or ["churn"] *)
  phase_ns : int;
  paths : path_stats list;  (** every path with at least one sample *)
  audio_periods : int;
  audio_misses : int;
      (** period deadlines missed (hardware underruns), excluding the
          one deliberately partial period where the phase's playback
          ends; the steady phase gates on this being zero *)
  packets : int;  (** frames on the wire: fleet plus 8139too *)
  input_events : int;
  usb_bytes : int;
}

type result = {
  steady : phase;
  churn : phase;
  leaked_tracker_entries : int;
      (** object-tracker entries above the post-boot baseline at
          quiescence — must be zero *)
  leaked_kmalloc_blocks : int;
  leaked_kmalloc_bytes : int;  (** kmalloc bytes still outstanding *)
}

val default_phase_ns : int

val run : ?fleet:int -> ?seed:int -> ?phase_ns:int -> unit -> result
(** Run both phases over [fleet] e1000 instances (default 3, minimum 2)
    plus the other four drivers, [phase_ns] virtual ns per phase. The
    schedule is a deterministic function of [seed]. The caller must
    have booted the machine and applied an XPC configuration, and must
    not call this from inside a scheduler thread. *)

val pp_phase : Format.formatter -> phase -> unit
