examples/error_handling_demo.mli:
