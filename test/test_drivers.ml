(* Integration tests: each driver loads, moves data, and unloads in both
   native and decaf modes. *)

open Decaf_drivers
module K = Decaf_kernel
module Hw = Decaf_hw
module Xpc = Decaf_xpc

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mac = "\x00\x1b\x21\x0a\x0b\x0c"

let boot () =
  K.Boot.boot ();
  Xpc.Domain.reset ();
  Xpc.Channel.reset_stats ();
  Decaf_runtime.Runtime.reset ()

let env_of = function
  | Driver_env.Native -> Driver_env.native
  | Driver_env.Staged -> Driver_env.staged ()
  | Driver_env.Decaf -> Driver_env.decaf ()

let in_thread f =
  let result = ref None in
  ignore (K.Sched.spawn ~name:"test-main" (fun () -> result := Some (f ())));
  K.Sched.run ();
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test thread did not finish"

(* --- rtl8139 --- *)

let rtl8139_roundtrip mode () =
  boot ();
  let link = Hw.Link.create ~rate_bps:100_000_000 () in
  let _model =
    Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10 ~mac ~link ()
  in
  let received = ref 0 in
  in_thread (fun () ->
      let t =
        match Rtl8139_drv.insmod (env_of mode) with
        | Ok t -> t
        | Error rc -> Alcotest.failf "insmod failed: %d" rc
      in
      let nd = Rtl8139_drv.netdev t in
      K.Netcore.set_rx_handler nd (fun skb -> received := !received + skb.K.Netcore.Skb.len);
      (match K.Netcore.open_dev nd with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "open failed: %d" rc);
      (* transmit ten frames, retrying while the ring is full *)
      let rec send_one () =
        match K.Netcore.dev_queue_xmit nd (K.Netcore.Skb.alloc 600) with
        | K.Netcore.Xmit_ok -> ()
        | K.Netcore.Xmit_busy ->
            K.Sched.sleep_ns 100_000;
            send_one ()
      in
      for _ = 1 to 10 do
        send_one ()
      done;
      K.Sched.sleep_ns 2_000_000;
      (* receive five frames *)
      for _ = 1 to 5 do
        Hw.Link.inject link (Bytes.make 400 'r')
      done;
      K.Sched.sleep_ns 2_000_000;
      check "frames on the wire" 10 (Hw.Link.tx_frames link);
      check "bytes received by the stack" 2000 !received;
      check "stack rx counter" 5 (K.Netcore.stats nd).K.Netcore.rx_packets;
      Rtl8139_drv.rmmod t);
  check_bool "interrupts were delivered" true (K.Irq.delivered 10 > 0);
  match K.Boot.check_quiescent () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "not quiescent: %s" msg

let test_rtl8139_decaf_crossings () =
  boot ();
  let link = Hw.Link.create ~rate_bps:100_000_000 () in
  ignore (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10 ~mac ~link ());
  in_thread (fun () ->
      let t =
        match Rtl8139_drv.insmod (Driver_env.decaf ()) with
        | Ok t -> t
        | Error rc -> Alcotest.failf "insmod failed: %d" rc
      in
      let nd = Rtl8139_drv.netdev t in
      (match K.Netcore.open_dev nd with Ok () -> () | Error _ -> ());
      let init_crossings = (Xpc.Channel.stats ()).Xpc.Channel.kernel_user_calls in
      check_bool "init crossed the boundary" true (init_crossings >= 4);
      (* steady state: data path must not cross at all *)
      let before = (Xpc.Channel.stats ()).Xpc.Channel.kernel_user_calls in
      for _ = 1 to 20 do
        ignore (K.Netcore.dev_queue_xmit nd (K.Netcore.Skb.alloc 500))
      done;
      K.Sched.sleep_ns 2_000_000;
      let after = (Xpc.Channel.stats ()).Xpc.Channel.kernel_user_calls in
      check "no crossings on the data path" before after;
      Rtl8139_drv.rmmod t)

let test_rtl8139_decaf_init_slower () =
  let init_latency mode =
    boot ();
    let link = Hw.Link.create ~rate_bps:100_000_000 () in
    ignore
      (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10 ~mac ~link ());
    in_thread (fun () ->
        match Rtl8139_drv.insmod (env_of mode) with
        | Ok t ->
            let l = Rtl8139_drv.init_latency_ns t in
            Rtl8139_drv.rmmod t;
            l
        | Error rc -> Alcotest.failf "insmod failed: %d" rc)
  in
  let native = init_latency Driver_env.Native in
  let decaf = init_latency Driver_env.Decaf in
  check_bool "decaf init at least 5x slower" true (decaf > 5 * native)

(* --- e1000 --- *)

let setup_e1000 () =
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  let model =
    E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11 ~mac
      ~link ()
  in
  (link, model)

let insmod_e1000 mode =
  match E1000_drv.insmod (env_of mode) with
  | Ok t -> t
  | Error rc -> Alcotest.failf "e1000 insmod failed: %d" rc

let e1000_roundtrip mode () =
  boot ();
  let link, _ = setup_e1000 () in
  let received = ref 0 in
  in_thread (fun () ->
      let t = insmod_e1000 mode in
      let nd = E1000_drv.netdev t in
      K.Netcore.set_rx_handler nd (fun skb -> received := !received + skb.K.Netcore.Skb.len);
      (match K.Netcore.open_dev nd with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "open failed: %d" rc);
      let rec send_one () =
        match K.Netcore.dev_queue_xmit nd (K.Netcore.Skb.alloc 1500) with
        | K.Netcore.Xmit_ok -> ()
        | K.Netcore.Xmit_busy ->
            K.Sched.sleep_ns 100_000;
            send_one ()
      in
      for _ = 1 to 50 do
        send_one ()
      done;
      K.Sched.sleep_ns 2_000_000;
      for _ = 1 to 10 do
        Hw.Link.inject link (Bytes.make 1500 'r')
      done;
      K.Sched.sleep_ns 5_000_000;
      check "tx frames" 50 (Hw.Link.tx_frames link);
      check "rx bytes" 15_000 !received;
      E1000_drv.rmmod t);
  match K.Boot.check_quiescent () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "not quiescent: %s" msg

let test_e1000_watchdog_runs_in_decaf () =
  boot ();
  ignore (setup_e1000 ());
  in_thread (fun () ->
      let t = insmod_e1000 Driver_env.Decaf in
      let nd = E1000_drv.netdev t in
      (match K.Netcore.open_dev nd with Ok () -> () | Error rc -> Alcotest.failf "open: %d" rc);
      let crossings_before = (Xpc.Channel.stats ()).Xpc.Channel.kernel_user_calls in
      (* run 7 virtual seconds: the 2-second watchdog should fire ~3x *)
      K.Sched.sleep_ns 7_000_000_000;
      let runs = E1000_drv.watchdog_runs t in
      check_bool "watchdog ran about 3 times" true (runs >= 2 && runs <= 4);
      let crossings_after = (Xpc.Channel.stats ()).Xpc.Channel.kernel_user_calls in
      check "one crossing per watchdog run" runs (crossings_after - crossings_before);
      let ka = E1000_drv.kernel_adapter t in
      check "watchdog events marshaled back to the kernel object" runs
        ka.E1000_objects.k_watchdog_events;
      check_bool "link seen up" true ka.E1000_objects.k_link_up;
      E1000_drv.rmmod t)

let test_e1000_open_fault_injection () =
  (* Figure 4 semantics: a failure at each stage of open unwinds exactly
     the resources acquired before it. *)
  let try_with_failure nth =
    boot ();
    ignore (setup_e1000 ());
    in_thread (fun () ->
        let t = insmod_e1000 Driver_env.Decaf in
        let nd = E1000_drv.netdev t in
        K.Kmem.inject_failure ~after:nth;
        let rc = K.Netcore.open_dev nd in
        K.Kmem.clear_injection ();
        (match rc with
        | Ok () -> Alcotest.fail "open should have failed"
        | Error rc -> check "ENOMEM" (-12) rc);
        let live, _ = K.Kmem.outstanding () in
        check "no ring leaked on the error path" 0 live;
        (* the driver must still work after the failed open *)
        (match K.Netcore.open_dev nd with
        | Ok () -> ()
        | Error rc -> Alcotest.failf "recovery open failed: %d" rc);
        E1000_drv.rmmod t)
  in
  try_with_failure 1;
  (* tx ring allocation fails *)
  try_with_failure 2 (* rx ring allocation fails; tx ring must be freed *)

let test_e1000_bad_eeprom_rejected () =
  boot ();
  let _, model = setup_e1000 () in
  (* corrupt the EEPROM checksum *)
  Hw.Eeprom.write (Hw.E1000_hw.eeprom model) 10 0x1234;
  in_thread (fun () ->
      match E1000_drv.insmod (Driver_env.decaf ()) with
      | Ok _ -> Alcotest.fail "probe should reject a bad EEPROM"
      | Error rc ->
          (* the module loader sees no bound device; the probe's EIO is
             in the kernel log *)
          check "ENODEV from insmod" (-19) rc;
          check_bool "probe failure logged with EIO" true
            (List.exists
               (fun line -> Testutil.contains line "errno -5")
               (K.Klog.dmesg ())))

let test_e1000_object_tracker_aliasing () =
  boot ();
  ignore (setup_e1000 ());
  in_thread (fun () ->
      let t = insmod_e1000 Driver_env.Decaf in
      let ka = E1000_drv.kernel_adapter t in
      let tracker = Decaf_runtime.Runtime.java_tracker () in
      (* adapter and its first-member tx ring share a C address (§3.1.2)
         but hold distinct capability handles, so the aliasing cannot be
         abused for type confusion at the boundary *)
      check "tx ring shares the adapter address" ka.E1000_objects.k_addr
        ka.E1000_objects.k_tx_addr;
      let ha = E1000_objects.adapter_handle ka in
      let htx = E1000_objects.tx_ring_handle ka in
      check_bool "distinct handles at the shared address" true (ha <> htx);
      (* the user-level tracker is keyed by handle, never by C address *)
      check_bool "adapter findable by its handle" true
        (Xpc.Objtracker.find tracker ~addr:ha E1000_objects.adapter_key
        <> None);
      check_bool "ring findable by its own handle" true
        (Xpc.Objtracker.find tracker ~addr:htx E1000_objects.ring_key <> None);
      check_bool "raw C address resolves nothing at user level" true
        (Xpc.Objtracker.types_at tracker ~addr:ka.E1000_objects.k_addr = []);
      (* kernel-side resolution: each handle names its own type *)
      let kt = Decaf_runtime.Runtime.kernel_tracker () in
      check_bool "adapter handle resolves" true
        (Xpc.Objtracker.resolve kt ~handle:ha ~type_id:"e1000_adapter"
        = Ok ka.E1000_objects.k_addr);
      check_bool "ring handle as adapter is cross-type" true
        (match
           Xpc.Objtracker.resolve kt ~handle:htx ~type_id:"e1000_adapter"
         with
        | Error _ -> true
        | Ok _ -> false);
      E1000_drv.rmmod t)

let test_e1000_ethtool_data_race () =
  (* section 5: the interrupt test works in the nucleus, and the very
     same logic at user level hangs on its stale marshaled copy *)
  boot ();
  ignore (setup_e1000 ());
  in_thread (fun () ->
      let t = insmod_e1000 Driver_env.Decaf in
      (* the interface must be up so the irq handler is installed *)
      (match K.Netcore.open_dev (E1000_drv.netdev t) with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "open: %d" rc);
      check "nucleus diag test passes" 0 (E1000_drv.diag_test t);
      let irqs_before = K.Irq.delivered 11 in
      check "user-level copy never sees the interrupt" (-110)
        (E1000_drv.diag_test_at_user_level t);
      (* the interrupt DID fire and updated the kernel object — the wait
         was on a stale marshaled copy, exactly the race of section 5.
         (The return marshal then even clobbers the kernel flag with the
         stale value, making the hazard worse.) *)
      check_bool "the interrupt fired meanwhile" true
        (K.Irq.delivered 11 > irqs_before);
      ignore (K.Netcore.stop_dev (E1000_drv.netdev t));
      E1000_drv.rmmod t)

let test_e1000_config_space_saved () =
  boot ();
  ignore (setup_e1000 ());
  in_thread (fun () ->
      let t = insmod_e1000 Driver_env.Decaf in
      let ka = E1000_drv.kernel_adapter t in
      (* dword 0 of config space: device id << 16 | vendor id, copied to
         user level during probe and marshaled back *)
      check "config_space[0]" ((0x100e lsl 16) lor 0x8086)
        ka.E1000_objects.k_config_space.(0);
      E1000_drv.rmmod t)

(* --- ens1371 --- *)

let setup_snd () = Ens1371_drv.setup_device ~slot:"00:06.0" ~io_base:0xd000 ~irq:9 ()

let ens1371_playback mode () =
  boot ();
  let model = setup_snd () in
  in_thread (fun () ->
      let t =
        match Ens1371_drv.insmod (env_of mode) with
        | Ok t -> t
        | Error rc -> Alcotest.failf "insmod failed: %d" rc
      in
      check_bool "card registered" true (K.Sndcore.card_registered (Ens1371_drv.card t));
      let sub = Ens1371_drv.substream t in
      (match K.Sndcore.pcm_open sub with Ok () -> () | Error rc -> Alcotest.failf "open: %d" rc);
      (match K.Sndcore.pcm_set_params sub ~rate:44100 ~channels:2 ~sample_bits:16 with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "params: %d" rc);
      (match K.Sndcore.pcm_prepare sub with Ok () -> () | Error rc -> Alcotest.failf "prep: %d" rc);
      (* queue one second of 44.1kHz 16-bit stereo audio *)
      K.Sndcore.pcm_write sub 16384;
      K.Sndcore.pcm_start sub;
      let total = 44100 * 4 in
      let written = ref 16384 in
      while !written < total do
        let chunk = min 16384 (total - !written) in
        K.Sndcore.pcm_write sub chunk;
        written := !written + chunk
      done;
      (* drain: stop as soon as the DAC has consumed everything *)
      while Hw.Ens1371_hw.consumed model < total do
        K.Sched.sleep_ns 5_000_000
      done;
      K.Sndcore.pcm_stop sub;
      K.Sndcore.pcm_close sub;
      check "all audio consumed" total (Hw.Ens1371_hw.consumed model);
      check_bool "played for about a second" true (K.Clock.now () >= 900_000_000);
      check_bool "no underruns while draining" true (Hw.Ens1371_hw.underruns model <= 1);
      Ens1371_drv.rmmod t);
  match K.Boot.check_quiescent () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "not quiescent: %s" msg

let test_ens1371_reject_bad_params () =
  boot ();
  ignore (setup_snd ());
  in_thread (fun () ->
      match Ens1371_drv.insmod (Driver_env.decaf ()) with
      | Error rc -> Alcotest.failf "insmod failed: %d" rc
      | Ok t ->
          let sub = Ens1371_drv.substream t in
          (match K.Sndcore.pcm_set_params sub ~rate:44100 ~channels:1 ~sample_bits:16 with
          | Error rc -> check "EINVAL" (-22) rc
          | Ok () -> Alcotest.fail "mono should be rejected");
          Ens1371_drv.rmmod t)

let test_ens1371_decaf_called_on_start_stop_only () =
  boot ();
  ignore (setup_snd ());
  in_thread (fun () ->
      match Ens1371_drv.insmod (Driver_env.decaf ()) with
      | Error rc -> Alcotest.failf "insmod failed: %d" rc
      | Ok t ->
          let sub = Ens1371_drv.substream t in
          ignore (K.Sndcore.pcm_open sub);
          ignore (K.Sndcore.pcm_set_params sub ~rate:44100 ~channels:2 ~sample_bits:16);
          ignore (K.Sndcore.pcm_prepare sub);
          K.Sndcore.pcm_write sub 16384;
          K.Sndcore.pcm_start sub;
          let batch_crossings () =
            let s = Xpc.Batch.stats () in
            s.Xpc.Batch.flush_crossings + s.Xpc.Batch.single_crossings
          in
          let at_start = (Xpc.Channel.stats ()).Xpc.Channel.kernel_user_calls in
          let batch0 = batch_crossings () in
          (* steady-state playback: write and drain for a while *)
          for _ = 1 to 20 do
            K.Sndcore.pcm_write sub 8192
          done;
          while K.Sndcore.pcm_bytes_queued sub > 0 do
            K.Sched.sleep_ns 50_000_000
          done;
          let during = (Xpc.Channel.stats ()).Xpc.Channel.kernel_user_calls in
          let batch1 = batch_crossings () in
          (* The PCM data path itself never upcalls: every steady-state
             crossing is a deferred hardware-pointer sync delivered by
             the batch machinery, never a synchronous call. *)
          check "only deferred syncs cross during steady playback"
            (during - at_start) (batch1 - batch0);
          check_bool "pointer syncs were delivered" true
            (Ens1371_drv.user_ptr_syncs t > 0);
          K.Sndcore.pcm_stop sub;
          K.Sndcore.pcm_close sub;
          Ens1371_drv.rmmod t)

(* --- uhci --- *)

let uhci_write_file mode () =
  boot ();
  let model = Uhci_drv.setup_device ~io_base:0xe000 ~irq:5 () in
  in_thread (fun () ->
      let t =
        match Uhci_drv.insmod (env_of mode) ~io_base:0xe000 ~irq:5 with
        | Ok t -> t
        | Error rc -> Alcotest.failf "insmod failed: %d" rc
      in
      (* write 64 KiB to the flash drive through bulk URBs *)
      let chunk = 4096 in
      let chunks = 16 in
      for _ = 1 to chunks do
        match
          K.Usbcore.bulk_msg ~direction:K.Usbcore.Dir_out ~endpoint:2
            (Bytes.make chunk 'd')
        with
        | Ok n -> check "chunk transferred" chunk n
        | Error rc -> Alcotest.failf "bulk_msg failed: %d" rc
      done;
      check "drive received all data" (chunk * chunks)
        (Hw.Uhci_hw.drive_bytes_written model);
      check "urbs completed" chunks (Uhci_drv.urbs_completed t);
      (* 64 KiB at ~1280 B per 1 ms frame: at least 51 ms of bus time *)
      check_bool "usb 1.1 bandwidth respected" true (K.Clock.now () >= 51_000_000);
      Uhci_drv.rmmod t);
  match K.Boot.check_quiescent () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "not quiescent: %s" msg

(* --- psmouse --- *)

let psmouse_stream mode () =
  boot ();
  let model = Psmouse_drv.setup_device () in
  in_thread (fun () ->
      let t =
        match Psmouse_drv.insmod (env_of mode) with
        | Ok t -> t
        | Error rc -> Alcotest.failf "insmod failed: %d" rc
      in
      check "plain ps/2 id detected" 0 (Psmouse_drv.detected_id t);
      let input = Psmouse_drv.input_dev t in
      let rels = ref 0 and syncs = ref 0 in
      K.Inputcore.set_handler input (function
        | K.Inputcore.Rel (dx, dy) ->
            rels := !rels + 1;
            check_bool "movement deltas sane" true (abs dx <= 255 && abs dy <= 255)
        | K.Inputcore.Key _ -> ()
        | K.Inputcore.Sync_report -> incr syncs);
      for i = 1 to 30 do
        Hw.Psmouse_hw.move model ~dx:i ~dy:(-i) ~buttons:(i mod 2);
        K.Sched.sleep_ns 10_000_000
      done;
      K.Sched.sleep_ns 10_000_000;
      check "all packets delivered" 30 (Psmouse_drv.packets_handled t);
      check "relative events" 30 !rels;
      check "sync per packet" 30 !syncs;
      Psmouse_drv.rmmod t);
  match K.Boot.check_quiescent () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "not quiescent: %s" msg

let test_psmouse_negotiation_crossings () =
  boot ();
  ignore (Psmouse_drv.setup_device ());
  in_thread (fun () ->
      match Psmouse_drv.insmod (Driver_env.decaf ()) with
      | Error rc -> Alcotest.failf "insmod failed: %d" rc
      | Ok t ->
          let st = Xpc.Channel.stats () in
          check_bool "negotiation crossed kernel/user" true
            (st.Xpc.Channel.kernel_user_calls >= 3);
          Psmouse_drv.rmmod t)

(* --- staged mode: the migration path of section 5.3 --- *)

let test_staged_mode_is_c_only () =
  boot ();
  let link = Hw.Link.create ~rate_bps:100_000_000 () in
  ignore
    (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10 ~mac ~link ());
  in_thread (fun () ->
      let t =
        match Rtl8139_drv.insmod (Driver_env.staged ()) with
        | Ok t -> t
        | Error rc -> Alcotest.failf "insmod failed: %d" rc
      in
      (match K.Netcore.open_dev (Rtl8139_drv.netdev t) with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "open failed: %d" rc);
      let st = Xpc.Channel.stats () in
      check_bool "user-level code ran (kernel/user crossings)" true
        (st.Xpc.Channel.kernel_user_calls >= 4);
      check "no C/Java transitions while staged" 0 st.Xpc.Channel.c_java_calls;
      check_bool "managed runtime never started" false
        (Decaf_runtime.Runtime.started ());
      Rtl8139_drv.rmmod t)

let test_staged_init_faster_than_decaf () =
  let init_of mode =
    boot ();
    let link = Hw.Link.create ~rate_bps:100_000_000 () in
    ignore
      (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10 ~mac ~link ());
    in_thread (fun () ->
        let t = Result.get_ok (Rtl8139_drv.insmod (env_of mode)) in
        let l = Rtl8139_drv.init_latency_ns t in
        Rtl8139_drv.rmmod t;
        l)
  in
  let staged = init_of Driver_env.Staged in
  let decaf = init_of Driver_env.Decaf in
  check_bool "staged avoids the managed-runtime start" true (staged * 2 < decaf)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decaf_drivers"
    [
      ( "rtl8139",
        [
          tc "native roundtrip" (rtl8139_roundtrip Driver_env.Native);
          tc "staged roundtrip" (rtl8139_roundtrip Driver_env.Staged);
          tc "decaf roundtrip" (rtl8139_roundtrip Driver_env.Decaf);
          tc "staged is C only" test_staged_mode_is_c_only;
          tc "staged init faster than decaf" test_staged_init_faster_than_decaf;
          tc "decaf crossings" test_rtl8139_decaf_crossings;
          tc "decaf init slower" test_rtl8139_decaf_init_slower;
        ] );
      ( "e1000",
        [
          tc "native roundtrip" (e1000_roundtrip Driver_env.Native);
          tc "decaf roundtrip" (e1000_roundtrip Driver_env.Decaf);
          tc "watchdog runs in decaf" test_e1000_watchdog_runs_in_decaf;
          tc "open fault injection" test_e1000_open_fault_injection;
          tc "bad eeprom rejected" test_e1000_bad_eeprom_rejected;
          tc "object tracker aliasing" test_e1000_object_tracker_aliasing;
          tc "config space saved" test_e1000_config_space_saved;
          tc "ethtool data race (sec. 5)" test_e1000_ethtool_data_race;
        ] );
      ( "ens1371",
        [
          tc "native playback" (ens1371_playback Driver_env.Native);
          tc "decaf playback" (ens1371_playback Driver_env.Decaf);
          tc "reject bad params" test_ens1371_reject_bad_params;
          tc "decaf only at start/stop" test_ens1371_decaf_called_on_start_stop_only;
        ] );
      ( "uhci",
        [
          tc "native write to flash" (uhci_write_file Driver_env.Native);
          tc "decaf write to flash" (uhci_write_file Driver_env.Decaf);
        ] );
      ( "psmouse",
        [
          tc "native stream" (psmouse_stream Driver_env.Native);
          tc "decaf stream" (psmouse_stream Driver_env.Decaf);
          tc "negotiation crossings" test_psmouse_negotiation_crossings;
        ] );
    ]
