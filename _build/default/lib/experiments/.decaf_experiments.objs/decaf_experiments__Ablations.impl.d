lib/experiments/ablations.ml: Buffer Decaf_drivers Decaf_hw Decaf_kernel Decaf_slicer Decaf_xpc Driver_env E1000_drv E1000_objects E1000_src Printf Result Scenario
