(** The Intel E1000 gigabit Ethernet driver — the paper's case-study
    driver (§5) — in native and decaf builds.

    In decaf mode the initialization, EEPROM validation, PHY bring-up,
    watchdog, and shutdown logic run in the decaf driver with real XDR
    marshaling of the adapter structure (see {!E1000_objects}); the
    transmit path and interrupt handler stay in the driver nucleus. The
    watchdog fires from a kernel timer every two seconds and is deferred
    to a work item so it may cross to user level (§3.1.3). Error
    handling at user level uses checked exceptions with the nested
    cleanup of Figure 4; {!Decaf_kernel.Kmem} failure injection
    exercises every cleanup arm. *)

type t

val vendor_id : int

val device_ids : int list
(** The ~50 chipset ids the driver claims. *)

val setup_device :
  slot:string ->
  mmio_base:int ->
  irq:int ->
  ?device_id:int ->
  mac:string ->
  link:Decaf_hw.Link.t ->
  unit ->
  Decaf_hw.E1000_hw.t

val insmod : ?dev:string -> Driver_env.t -> (t, int) result
(** Load the module (or, when it is already loaded, bind one more
    device to it — the module is refcounted across instances). [dev]
    pins the bind to one PCI slot; without it the first unbound
    matching device on the bus is claimed. *)

val rmmod : t -> unit
(** Release this instance's device; the module itself is unloaded (and
    the module parameters reset) only when the last instance goes. *)

val init_latency_ns : t -> int
val netdev : t -> Decaf_kernel.Netcore.t

val netdev_at : slot:string -> Decaf_kernel.Netcore.t option
(** The netdev of whichever instance is bound to the given PCI slot —
    how a fleet harness reaches instances it bound through the registry
    (which returns binding ids, not handles). [None] if the slot is
    unbound or the instance has no netdev yet. *)

val watchdog_runs : t -> int
(** Times the watchdog has executed (in the decaf driver when in decaf
    mode). *)

val diag_test : t -> int
(** The ethtool interrupt test, correctly implemented in the driver
    nucleus: waits for the interrupt handler to flip the link flag.
    Returns 0 on success. *)

val diag_test_at_user_level : t -> int
(** The same test deliberately implemented in the decaf driver — the
    explicit data race of §5 that kept four ethtool functions in the
    kernel. The interrupt handler updates the kernel object while this
    polls its marshaled copy, so it returns [-ETIMEDOUT]. *)

val kernel_adapter : t -> E1000_objects.kernel_adapter
val adapter_wire_bytes : int

val user_stat_syncs : t -> int
(** Times the user-level adapter view has been refreshed by a deferred
    notification (stats rollups every 64 data-path packets, link-state
    changes) — each delivered via {!Decaf_xpc.Batch}. *)

(** {1 Module parameters}

    Validated at probe time by the checker classes of
    {!Decaf_runtime.Params} (the paper's e1000_param.c rewrite). *)

val set_module_params :
  ?tx_descriptors:int ->
  ?interrupt_throttle:int ->
  ?smart_power_down:int ->
  unit ->
  unit

val reset_module_params : unit -> unit

val checked_params : (string * Decaf_runtime.Params.outcome) list ref
(** Name and validation outcome of each parameter after the last probe
    (module-wide, kept for tooling compatibility; instances snapshot
    their own copy — see {!params}). *)

type params = {
  p_tx_descriptors : int;
  p_interrupt_throttle : int;
  p_smart_power_down : int;
}
(** Validated per-instance parameter snapshot, captured at probe. Two
    NICs probed under different insmod arguments keep distinct values
    even though the command-line refs above are shared. *)

val params : t -> params

val active : unit -> t option
(** The first (bare-named) instance, until its [rmmod]. Lets workloads
    reach a driver the registry loaded; fleet instances bound under
    "e1000#k" scopes never disturb it. *)

val suspend : t -> unit
(** PM suspend: disarm the watchdog, flush deferred work, then cross to
    the decaf driver to bring the device down and snapshot PCI config
    space. Batched notifies are drained by the caller (the registry)
    while the device is still powered. *)

val resume : t -> unit
(** PM resume: re-mark the whole object view dirty
    ({!E1000_objects.resync_user_view}), restore config space through
    per-dword downcalls, and bring the interface back up if it was up. *)

module Core : Driver_core.DRIVER with type t = t
(** The unified-driver-model view: registry name ["e1000"], PCI bus,
    the full id table for hotplug re-probe matching. *)
