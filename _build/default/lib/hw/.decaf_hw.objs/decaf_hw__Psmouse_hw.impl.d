lib/hw/psmouse_hw.ml: Decaf_kernel List Option Queue
