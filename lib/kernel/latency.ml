(* Fixed-bucket log-linear latency histograms.

   The layout is HdrHistogram-style: 64 exact unit buckets for values in
   [0, 64), then one octave per power of two above that, each split into
   64 linear sub-buckets, up to 2^50 ns (~13 simulated days). Bucket
   boundaries are therefore exact powers-of-two times a 6-bit mantissa
   and the relative quantization error is bounded by 1/64 (~1.6%) —
   comfortably inside the 5% regression gates built on top.

   The module is deliberately dependency-free (no Clock, no Klog): Clock
   stamps tracked events and records into these histograms, so any
   reference back to Clock would be a cycle. *)

let log2_sub = 6
let sub = 1 lsl log2_sub (* 64 linear sub-buckets per octave *)
let max_octave = 44
let num_buckets = (max_octave + 1) * sub

type t = {
  counts : int array;
  mutable total : int;  (* every recorded sample, overflow included *)
  mutable overflowed : int;  (* samples beyond the last bucket *)
  mutable sum_ns : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  {
    counts = Array.make num_buckets 0;
    total = 0;
    overflowed = 0;
    sum_ns = 0;
    min_v = max_int;
    max_v = 0;
  }

let clear t =
  Array.fill t.counts 0 num_buckets 0;
  t.total <- 0;
  t.overflowed <- 0;
  t.sum_ns <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let floor_log2 v =
  let k = ref 0 and x = ref v in
  if !x >= 1 lsl 32 then begin
    x := !x lsr 32;
    k := !k + 32
  end;
  if !x >= 1 lsl 16 then begin
    x := !x lsr 16;
    k := !k + 16
  end;
  if !x >= 1 lsl 8 then begin
    x := !x lsr 8;
    k := !k + 8
  end;
  while !x > 1 do
    x := !x lsr 1;
    incr k
  done;
  !k

(* Octave 0 is the exact linear region [0, 64); octave j >= 1 covers
   [64 * 2^(j-1), 64 * 2^j) with 64 sub-buckets of width 2^(j-1). *)
let bucket_index v =
  if v < sub then max v 0
  else
    let j = floor_log2 v - log2_sub + 1 in
    (j * sub) + ((v lsr (j - 1)) - sub)

let bucket_bounds idx =
  if idx < 0 || idx >= num_buckets then invalid_arg "Latency.bucket_bounds";
  let j = idx / sub and pos = idx mod sub in
  if j = 0 then (pos, pos)
  else
    let low = (sub + pos) lsl (j - 1) in
    (low, low + (1 lsl (j - 1)) - 1)

let observe t v =
  let v = max 0 v in
  t.total <- t.total + 1;
  t.sum_ns <- t.sum_ns + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let idx = bucket_index v in
  if idx >= num_buckets then t.overflowed <- t.overflowed + 1
  else t.counts.(idx) <- t.counts.(idx) + 1

let count t = t.total
let overflow_count t = t.overflowed
let max_ns t = t.max_v
let min_ns t = if t.total = 0 then 0 else t.min_v
let sum_ns t = t.sum_ns

let mean_ns t =
  if t.total = 0 then 0. else float_of_int t.sum_ns /. float_of_int t.total

(* Smallest recorded value v such that at least [p] of the samples are
   <= v, reported as the upper bound of its bucket (conservative), capped
   at the true maximum. Samples past the last bucket report the true
   maximum. *)
let percentile t p =
  if t.total = 0 then 0
  else begin
    let p = if p < 0. then 0. else if p > 1. then 1. else p in
    let rank = max 1 (int_of_float (ceil (p *. float_of_int t.total))) in
    let acc = ref 0 and i = ref 0 and res = ref (-1) in
    while !res < 0 && !i < num_buckets do
      acc := !acc + t.counts.(!i);
      if !acc >= rank then res := !i;
      incr i
    done;
    match !res with
    | -1 -> t.max_v (* rank lands in the overflow region *)
    | idx -> min (snd (bucket_bounds idx)) t.max_v
  end

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total;
  into.overflowed <- into.overflowed + src.overflowed;
  into.sum_ns <- into.sum_ns + src.sum_ns;
  if src.total > 0 && src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let merged ts =
  let t = create () in
  List.iter (fun src -> merge ~into:t src) ts;
  t

(* --- the path registry ------------------------------------------------

   One histogram per named event path ("irq", "xpc.dispatch", "net.rx",
   ...), created on first use. Clock.reset clears the registry, so every
   boot starts with empty timelines. *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let get path =
  match Hashtbl.find_opt registry path with
  | Some t -> t
  | None ->
      let t = create () in
      Hashtbl.replace registry path t;
      t

let observe_path path v = observe (get path) v
let find path = Hashtbl.find_opt registry path

let paths () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare

let clear_paths () = Hashtbl.iter (fun _ t -> clear t) registry
let reset () = Hashtbl.reset registry
