(* netperf over the E1000, native vs decaf: reproduces the headline
   result of the paper's Table 3 — steady-state performance of the decaf
   driver is indistinguishable from the native driver, because the data
   path never leaves the kernel.

   Run with:  dune exec examples/netperf_e1000.exe *)

module K = Decaf_kernel
module Hw = Decaf_hw
open Decaf_drivers
open Decaf_workloads

let run mode =
  K.Boot.boot ();
  Decaf_xpc.Domain.reset ();
  Decaf_xpc.Channel.reset_stats ();
  Decaf_runtime.Runtime.reset ();
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:"\x00\x1b\x21\x0a\x0b\x0c" ~link ());
  let result = ref None in
  ignore
    (K.Sched.spawn ~name:"netperf" (fun () ->
         let env =
           match mode with
           | `Native -> Driver_env.native
           | `Decaf -> Driver_env.decaf ()
         in
         let t =
           match E1000_drv.insmod env with
           | Ok t -> t
           | Error rc -> failwith (Printf.sprintf "insmod: %d" rc)
         in
         let nd = E1000_drv.netdev t in
         (match K.Netcore.open_dev nd with
         | Ok () -> ()
         | Error rc -> failwith (Printf.sprintf "open: %d" rc));
         let send =
           Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000_000
             ~msg_bytes:1500
         in
         let recv =
           Netperf.recv ~netdev:nd ~link ~duration_ns:2_000_000_000
             ~msg_bytes:1500
         in
         let init = E1000_drv.init_latency_ns t in
         E1000_drv.rmmod t;
         result := Some (send, recv, init)));
  K.Sched.run ();
  Option.get !result

let () =
  let n_send, n_recv, n_init = run `Native in
  let d_send, d_recv, d_init = run `Decaf in
  Printf.printf "%-10s %-6s %12s %8s %12s\n" "workload" "mode" "throughput"
    "CPU" "init";
  let row workload mode (r : Netperf.result) init =
    Printf.printf "%-10s %-6s %9.1f Mb/s %6.1f%% %9.2f ms\n" workload mode
      r.Netperf.throughput_mbps
      (100. *. r.Netperf.cpu_utilization)
      (float_of_int init /. 1e6)
  in
  row "send" "native" n_send n_init;
  row "send" "decaf" d_send d_init;
  row "recv" "native" n_recv n_init;
  row "recv" "decaf" d_recv d_init;
  Printf.printf "\nrelative performance (decaf/native): send %.3f, recv %.3f\n"
    (d_send.Netperf.throughput_mbps /. n_send.Netperf.throughput_mbps)
    (d_recv.Netperf.throughput_mbps /. n_recv.Netperf.throughput_mbps)
