lib/experiments/casestudy.ml: Buffer Decaf_drivers Decaf_minic Decaf_slicer E1000_src Ens1371_src List Printf String Strutil
