examples/netperf_e1000.ml: Decaf_drivers Decaf_hw Decaf_kernel Decaf_runtime Decaf_workloads Decaf_xpc Driver_env E1000_drv Netperf Option Printf
