lib/kernel/sndcore.ml: Klog List Sync
