module K = Decaf_kernel

type state = Running | Restarting | Disabled

type stats = { detected : int; recovered : int; degraded : int; restarts : int }

type t = {
  name : string;
  restart_budget : int;
  restart_delay_ns : int;
  mutable state : state;
  mutable detected : int;
  mutable recovered : int;
  mutable degraded : int;
  mutable restarts : int;
  mutable last_fault : string option;
}

let create ?(restart_budget = 3) ?(restart_delay_ns = 100_000_000) ~name () =
  {
    name;
    restart_budget;
    restart_delay_ns;
    state = Running;
    detected = 0;
    recovered = 0;
    degraded = 0;
    restarts = 0;
    last_fault = None;
  }

let state t = t.state

let stats t : stats =
  {
    detected = t.detected;
    recovered = t.recovered;
    degraded = t.degraded;
    restarts = t.restarts;
  }

let last_fault t = t.last_fault
let restart_budget t = t.restart_budget
let restarts_left t = if t.state = Disabled then 0 else max 0 (t.restart_budget - t.restarts)

(* Record an absorbed fault: damage was injected but the driver's own
   error handling (retries, checked exceptions, robust interrupt paths)
   swallowed it without needing a restart. Counted as detected-and-
   recovered so the campaign invariant recovered + degraded = detected
   holds for every injection's episode. *)
let note_tolerated t =
  t.detected <- t.detected + 1;
  t.recovered <- t.recovered + 1

let run t ?(on_restart = Runtime.restart) body =
  if t.state = Disabled then None
  else begin
    t.state <- Running;
    (* [episodes] counts the faults caught so far in this run; each is
       resolved as recovered when a later attempt succeeds, or as
       degraded when the budget runs out. *)
    let rec attempt episodes =
      match body () with
      | v ->
          if episodes > 0 then begin
            t.recovered <- t.recovered + episodes;
            K.Klog.printk K.Klog.Info
              "supervisor %s: recovered after %d restart(s)" t.name episodes
          end;
          t.state <- Running;
          Some v
      | exception (K.Panic.Kernel_bug _ as e) ->
          (* a genuine kernel bug is not a decaf fault: let it surface *)
          raise e
      | exception e ->
          let msg = Printexc.to_string e in
          t.detected <- t.detected + 1;
          t.last_fault <- Some msg;
          K.Klog.printk K.Klog.Warning "supervisor %s: decaf fault: %s" t.name
            msg;
          if episodes >= t.restart_budget then begin
            t.degraded <- t.degraded + episodes + 1;
            t.state <- Disabled;
            K.Klog.printk K.Klog.Err
              "supervisor %s: restart budget (%d) exhausted; driver \
               disabled, kernel alive"
              t.name t.restart_budget;
            None
          end
          else begin
            t.state <- Restarting;
            t.restarts <- t.restarts + 1;
            (* let in-flight hardware events drain while the runtime is
               down, so the retry starts from quiet state *)
            if t.restart_delay_ns > 0 then K.Sched.sleep_ns t.restart_delay_ns;
            on_restart ();
            attempt (episodes + 1)
          end
    in
    attempt 0
  end
