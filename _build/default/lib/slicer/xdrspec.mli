(** XDR interface-specification generation (§3.2.2).

    XDR is not C: it has no pointers-to-arrays, so DriverSlicer rewrites
    a field like

    {v uint32_t * __attribute__((exp(PCI_LEN))) config_space; v}

    into a synthetic wrapper structure holding a fixed-length array plus
    a pointer typedef — the paper's Figure 3 — preserving the in-memory
    layout. C [long long] becomes XDR [hyper]. *)

type xdr_type =
  | Xint
  | Xuint
  | Xhyper
  | Xbool
  | Xopaque of int  (** fixed-length opaque bytes *)
  | Xstring
  | Xarray of xdr_type * int
  | Xoptional of xdr_type  (** XDR optional-data, used for pointers *)
  | Xstruct_ref of string

type xdr_field = { xf_name : string; xf_type : xdr_type }

type xdr_struct = {
  xs_name : string;
  xs_fields : xdr_field list;
  xs_synthetic : bool;  (** created by the array-pointer rewrite *)
}

type spec = {
  xs_structs : xdr_struct list;
  xs_typedefs : (string * string) list;  (** ptr typedef -> wrapper struct *)
}

val generate :
  Decaf_minic.Ast.file -> const_env:(string * int) list -> spec
(** Generate the spec for every struct in the file. [const_env] resolves
    named array lengths in [exp(...)] annotations (e.g. PCI_LEN = 64). *)

val find_struct : spec -> string -> xdr_struct option

val to_string : spec -> string
(** Render as a .x interface file. *)

val wire_size : spec -> string -> int
(** Marshaled size in bytes of one struct (XDR rules; strings estimated
    at 64 payload bytes; recursive references counted once). *)

val type_wire_size : spec -> xdr_type -> int
