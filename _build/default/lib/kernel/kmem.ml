type gfp = Atomic | Kernel

type allocation = { id : int; tag : string; bytes : int; mutable live : bool }

exception Use_after_free of string
exception Out_of_memory of string

let next_id = ref 0
let live : (int, allocation) Hashtbl.t = Hashtbl.create 64
let countdown = ref None

let inject_failure ~after =
  if after < 1 then invalid_arg "Kmem.inject_failure";
  countdown := Some after

let clear_injection () = countdown := None

let should_fail () =
  match !countdown with
  | None -> false
  | Some 1 ->
      countdown := None;
      true
  | Some n ->
      countdown := Some (n - 1);
      false

let alloc ?(gfp = Kernel) ~tag bytes =
  if bytes < 0 then invalid_arg "Kmem.alloc";
  (match gfp with
  | Kernel -> Sched.assert_may_block ("GFP_KERNEL allocation of " ^ tag)
  | Atomic -> ());
  if should_fail () || Faultinject.fires ~site:"kmem.alloc" Faultinject.Alloc_fail
  then None
  else begin
    incr next_id;
    let a = { id = !next_id; tag; bytes; live = true } in
    Hashtbl.replace live a.id a;
    Some a
  end

let alloc_exn ?gfp ~tag bytes =
  match alloc ?gfp ~tag bytes with
  | Some a -> a
  | None -> raise (Out_of_memory tag)

let free a =
  if not a.live then raise (Use_after_free a.tag);
  a.live <- false;
  Hashtbl.remove live a.id

let size a = a.bytes

let outstanding () =
  Hashtbl.fold (fun _ a (n, b) -> (n + 1, b + a.bytes)) live (0, 0)

let leaks () =
  Hashtbl.fold (fun _ a acc -> a :: acc) live []
  |> List.sort (fun a b -> compare a.id b.id)
  |> List.map (fun a -> (a.tag, a.bytes))

let reset () =
  Hashtbl.reset live;
  countdown := None;
  next_id := 0
