exception Decode_error of string

let pad4 n = (n + 3) land lnot 3

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let uint b v =
    if v < 0 || v > 0xffff_ffff then
      invalid_arg (Printf.sprintf "Xdr.Enc.uint: %d out of range" v);
    Buffer.add_uint8 b ((v lsr 24) land 0xff);
    Buffer.add_uint8 b ((v lsr 16) land 0xff);
    Buffer.add_uint8 b ((v lsr 8) land 0xff);
    Buffer.add_uint8 b (v land 0xff)

  let int b v =
    if v < -0x8000_0000 || v > 0x7fff_ffff then
      invalid_arg (Printf.sprintf "Xdr.Enc.int: %d out of range" v);
    uint b (v land 0xffff_ffff)

  let hyper b v =
    uint b (Int64.to_int (Int64.shift_right_logical v 32));
    uint b (Int64.to_int (Int64.logand v 0xffff_ffffL))

  let bool b v = uint b (if v then 1 else 0)
  let double b v = hyper b (Int64.bits_of_float v)

  let opaque_fixed b data =
    Buffer.add_bytes b data;
    for _ = Bytes.length data to pad4 (Bytes.length data) - 1 do
      Buffer.add_uint8 b 0
    done

  let opaque_var b data =
    uint b (Bytes.length data);
    opaque_fixed b data

  let string b s = opaque_var b (Bytes.of_string s)

  let option b enc = function
    | Some v ->
        bool b true;
        enc b v
    | None -> bool b false

  let array_fixed b enc a = Array.iter (enc b) a

  let array_var b enc a =
    uint b (Array.length a);
    array_fixed b enc a

  let size = Buffer.length
  let to_bytes = Buffer.to_bytes
end

module Dec = struct
  type t = { data : bytes; mutable pos : int }

  let of_bytes data = { data; pos = 0 }

  let need d n =
    if d.pos + n > Bytes.length d.data then
      raise
        (Decode_error
           (Printf.sprintf "truncated: need %d bytes at offset %d of %d" n
              d.pos (Bytes.length d.data)))

  let uint d =
    need d 4;
    let byte i = Bytes.get_uint8 d.data (d.pos + i) in
    let v = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    d.pos <- d.pos + 4;
    v

  let int d =
    let v = uint d in
    if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

  let hyper d =
    let hi = uint d in
    let lo = uint d in
    Int64.logor
      (Int64.shift_left (Int64.of_int hi) 32)
      (Int64.of_int lo)

  let bool d =
    match uint d with
    | 0 -> false
    | 1 -> true
    | n -> raise (Decode_error (Printf.sprintf "bad boolean %d" n))

  let double d = Int64.float_of_bits (hyper d)

  let opaque_fixed d n =
    need d (pad4 n);
    let data = Bytes.sub d.data d.pos n in
    d.pos <- d.pos + pad4 n;
    data

  let opaque_var d =
    let n = uint d in
    opaque_fixed d n

  let string d = Bytes.to_string (opaque_var d)

  let option d dec = if bool d then Some (dec d) else None

  (* Every XDR item occupies at least 4 bytes, so a claimed element count
     larger than remaining/4 cannot be satisfied: reject it before
     allocating (a hostile length word must not drive allocation). *)
  let check_count d n =
    if n < 0 || n > (Bytes.length d.data - d.pos) / 4 then
      raise
        (Decode_error
           (Printf.sprintf "element count %d exceeds remaining input" n))

  let array_fixed d dec n =
    check_count d n;
    Array.init n (fun _ -> dec d)

  let array_var d dec =
    let n = uint d in
    array_fixed d dec n

  let pos d = d.pos
  let remaining d = Bytes.length d.data - d.pos

  let check_drained d =
    if remaining d <> 0 then
      raise (Decode_error (Printf.sprintf "%d bytes left over" (remaining d)))
end
