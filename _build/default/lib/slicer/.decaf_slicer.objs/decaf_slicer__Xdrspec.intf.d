lib/slicer/xdrspec.mli: Decaf_minic
