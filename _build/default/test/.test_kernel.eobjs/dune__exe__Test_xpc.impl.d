test/test_xpc.ml: Addr Alcotest Bytes Channel Decaf_kernel Decaf_xpc Domain Format Gc Gen List Marshal_plan Objtracker QCheck QCheck_alcotest Random Test Univ Xdr
