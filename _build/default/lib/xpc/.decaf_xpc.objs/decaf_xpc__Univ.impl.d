lib/xpc/univ.ml:
