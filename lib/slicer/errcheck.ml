module Ast = Decaf_minic.Ast
module Loc = Decaf_minic.Loc
module Sset = Set.Make (String)

type violation_kind = Ignored_return | Unchecked_variable of string

type violation = {
  v_function : string;
  v_callee : string;
  v_kind : violation_kind;
  v_line : int;
}

(* Does the function body contain [return -CONST]? *)
let returns_negative_constant (fn : Ast.func) =
  let rec in_stmt (s : Ast.stmt) =
    match s.Ast.skind with
    | Sreturn (Some (Ast.Econst n)) -> n < 0
    | Sreturn (Some (Ast.Eunop (Ast.Neg, Ast.Econst n))) -> n > 0
    | Sreturn _ | Sexpr _ | Sdecl _ | Sgoto _ | Slabel _ | Sbreak | Scontinue ->
        false
    | Sif (_, a, b) -> List.exists in_stmt a || List.exists in_stmt b
    | Swhile (_, b) | Sblock b -> List.exists in_stmt b
    | Sdo (b, _) -> List.exists in_stmt b
    | Sfor (i, _, _, b) ->
        (match i with Some s -> in_stmt s | None -> false)
        || List.exists in_stmt b
    | Sswitch (_, cases) ->
        List.exists
          (function
            | Ast.Case (_, body) | Ast.Default body -> List.exists in_stmt body)
          cases
  in
  List.exists in_stmt fn.Ast.fbody

(* Direct callees whose value can escape through this function's return:
   either [return f(...)] directly, or [v = f(...); ... return v]. *)
let propagates_call_of (fn : Ast.func) =
  let direct = ref Sset.empty in
  let assigned_from : (string, Sset.t) Hashtbl.t = Hashtbl.create 8 in
  let returned_vars = ref Sset.empty in
  let note_assign var callee =
    let prev =
      Option.value ~default:Sset.empty (Hashtbl.find_opt assigned_from var)
    in
    Hashtbl.replace assigned_from var (Sset.add callee prev)
  in
  let rec in_stmt (s : Ast.stmt) =
    match s.Ast.skind with
    | Sreturn (Some (Ast.Ecall (Ast.Eident callee, _))) ->
        direct := Sset.add callee !direct
    | Sreturn (Some (Ast.Eident v)) -> returned_vars := Sset.add v !returned_vars
    | Sexpr (Ast.Eassign (None, Ast.Eident v, Ast.Ecall (Ast.Eident callee, _)))
    | Sdecl (_, v, Some (Ast.Ecall (Ast.Eident callee, _))) ->
        note_assign v callee
    | Sif (_, a, b) ->
        List.iter in_stmt a;
        List.iter in_stmt b
    | Swhile (_, b) | Sblock b -> List.iter in_stmt b
    | Sdo (b, _) -> List.iter in_stmt b
    | Sfor (i, _, _, b) ->
        Option.iter in_stmt i;
        List.iter in_stmt b
    | Sswitch (_, cases) ->
        List.iter
          (function
            | Ast.Case (_, body) | Ast.Default body -> List.iter in_stmt body)
          cases
    | Sreturn _ | Sexpr _ | Sdecl _ | Sgoto _ | Slabel _ | Sbreak | Scontinue
      ->
        ()
  in
  List.iter in_stmt fn.Ast.fbody;
  Sset.fold
    (fun var acc ->
      match Hashtbl.find_opt assigned_from var with
      | Some callees -> Sset.union callees acc
      | None -> acc)
    !returned_vars !direct

let error_returning_functions (file : Ast.file) ~extra =
  let funcs = Ast.functions file in
  let base =
    List.fold_left
      (fun acc fn ->
        if returns_negative_constant fn then Sset.add fn.Ast.fname acc else acc)
      (Sset.of_list extra) funcs
  in
  (* propagate to fixpoint: a function returning an error-returning
     function's result is itself error-returning *)
  let rec fixpoint known =
    let next =
      List.fold_left
        (fun acc fn ->
          if Sset.mem fn.Ast.fname acc then acc
          else if not (Sset.is_empty (Sset.inter (propagates_call_of fn) acc))
          then Sset.add fn.Ast.fname acc
          else acc)
        known funcs
    in
    if Sset.cardinal next = Sset.cardinal known then known else fixpoint next
  in
  Sset.elements (fixpoint base)

(* Flatten a body into a linear statement sequence (approximating control
   flow for the never-read-after analysis). *)
let rec flatten (stmts : Ast.stmt list) =
  List.concat_map
    (fun (s : Ast.stmt) ->
      s
      ::
      (match s.Ast.skind with
      | Sif (_, a, b) -> flatten a @ flatten b
      | Swhile (_, b) | Sblock b -> flatten b
      | Sdo (b, _) -> flatten b
      | Sfor (i, _, _, b) ->
          (match i with Some s -> [ s ] | None -> []) @ flatten b
      | Sswitch (_, cases) ->
          List.concat_map
            (function
              | Ast.Case (_, body) | Ast.Default body -> flatten body)
            cases
      | Sexpr _ | Sdecl _ | Sreturn _ | Sgoto _ | Slabel _ | Sbreak
      | Scontinue ->
          []))
    stmts

let expr_mentions var e =
  Ast.fold_expr
    (fun acc e -> acc || match e with Ast.Eident x -> x = var | _ -> false)
    false e

let stmt_mentions var (s : Ast.stmt) =
  match s.Ast.skind with
  | Sexpr e | Sdecl (_, _, Some e) | Sreturn (Some e) -> expr_mentions var e
  | Sif (c, _, _) | Swhile (c, _) | Sdo (_, c) -> expr_mentions var c
  | Sfor (_, c, u, _) ->
      (match c with Some e -> expr_mentions var e | None -> false)
      || (match u with Some e -> expr_mentions var e | None -> false)
  | Sswitch (c, _) -> expr_mentions var c
  | Sblock _ (* children appear separately in the flattened sequence *)
  | Sdecl (_, _, None)
  | Sreturn None | Sgoto _ | Slabel _ | Sbreak | Scontinue ->
      false

let find_violations (file : Ast.file) ~extra =
  let errfns = Sset.of_list (error_returning_functions file ~extra) in
  let check_function (fn : Ast.func) =
    let linear = flatten fn.Ast.fbody in
    let rec scan acc = function
      | [] -> acc
      | (s : Ast.stmt) :: rest -> (
          match s.Ast.skind with
          (* bare call to an error-returning function *)
          | Sexpr (Ast.Ecall (Ast.Eident callee, _)) when Sset.mem callee errfns
            ->
              scan
                ({
                   v_function = fn.Ast.fname;
                   v_callee = callee;
                   v_kind = Ignored_return;
                   v_line = s.Ast.sloc.Loc.line;
                 }
                :: acc)
                rest
          (* result stored but never read afterwards *)
          | Sexpr (Ast.Eassign (None, Ast.Eident var, Ast.Ecall (Ast.Eident callee, _)))
          | Sdecl (_, var, Some (Ast.Ecall (Ast.Eident callee, _)))
            when Sset.mem callee errfns ->
              if List.exists (stmt_mentions var) rest then scan acc rest
              else
                scan
                  ({
                     v_function = fn.Ast.fname;
                     v_callee = callee;
                     v_kind = Unchecked_variable var;
                     v_line = s.Ast.sloc.Loc.line;
                   }
                  :: acc)
                  rest
          | _ -> scan acc rest)
    in
    scan [] linear |> List.rev
  in
  List.concat_map check_function (Ast.functions file)

(* --- flow-sensitive upgrade -------------------------------------------
   The syntactic scan above answers "is the result ever mentioned
   again?" over a flattened body, which misses two bug shapes: a result
   overwritten before any test (the overwrite is a mention), and a
   result that is tested on one path but silently dropped at a merge
   point or early return. This per-function dataflow tracks, per
   variable, whether it holds an untested error result. *)

type flow_kind =
  | Overwritten of int  (** line where the untested result was stored *)
  | Dropped  (** path reaches a return / function end without a test *)

type flow_violation = {
  fv_function : string;
  fv_callee : string;  (** the error-returning function whose result is lost *)
  fv_var : string;
  fv_kind : flow_kind;
  fv_line : int;
}

module Smap = Map.Make (String)

type var_state = Unchecked of string * int | Checked

(* Unchecked survives a merge on either side: may-analysis, so a result
   tested in one branch but dropped in the other is still reported. *)
let flow_merge a b =
  Smap.merge
    (fun _ x y ->
      match (x, y) with
      | Some (Unchecked _ as u), _ | _, Some (Unchecked _ as u) -> Some u
      | Some Checked, _ | _, Some Checked -> Some Checked
      | None, None -> None)
    a b

let flow_check_function errfns (fn : Ast.func) =
  let viols = ref [] in
  let report fv = viols := fv :: !viols in
  let store env var callee line =
    (match Smap.find_opt var env with
    | Some (Unchecked (c0, l0)) ->
        report
          {
            fv_function = fn.Ast.fname;
            fv_callee = c0;
            fv_var = var;
            fv_kind = Overwritten l0;
            fv_line = line;
          }
    | _ -> ());
    Smap.add var (Unchecked (callee, line)) env
  in
  (* Evaluate an expression: any read of a tracked variable counts as
     examining it; [v = errfn(...)] starts tracking v. *)
  let rec eval env line (e : Ast.expr) =
    match e with
    | Ast.Eassign (None, Ast.Eident v, rhs) -> (
        let env = eval env line rhs in
        match rhs with
        | Ast.Ecall (Ast.Eident c, _) when Sset.mem c errfns ->
            store env v c line
        | _ ->
            (match Smap.find_opt v env with
            | Some (Unchecked (c0, l0)) when not (expr_mentions v rhs) ->
                report
                  {
                    fv_function = fn.Ast.fname;
                    fv_callee = c0;
                    fv_var = v;
                    fv_kind = Overwritten l0;
                    fv_line = line;
                  }
            | _ -> ());
            Smap.add v Checked env)
    | Ast.Eident v ->
        if Smap.mem v env then Smap.add v Checked env else env
    | Ast.Econst _ | Ast.Estr _ | Ast.Echar _ | Ast.Esizeof_type _ -> env
    | Ast.Eunop (_, a)
    | Ast.Ecast (_, a)
    | Ast.Esizeof_expr a
    | Ast.Efield (a, _)
    | Ast.Earrow (a, _)
    | Ast.Epostincr a
    | Ast.Epostdecr a
    | Ast.Epreincr a
    | Ast.Epredecr a ->
        eval env line a
    | Ast.Ebinop (_, a, b) | Ast.Eindex (a, b) | Ast.Eassign (_, a, b) ->
        eval (eval env line a) line b
    | Ast.Econd (a, b, c) -> eval (eval (eval env line a) line b) line c
    | Ast.Ecall (callee, args) ->
        List.fold_left (fun env a -> eval env line a) (eval env line callee) args
  in
  let drop_all env =
    Smap.iter
      (fun var st ->
        match st with
        | Unchecked (c, l) ->
            report
              {
                fv_function = fn.Ast.fname;
                fv_callee = c;
                fv_var = var;
                fv_kind = Dropped;
                fv_line = l;
              }
        | Checked -> ())
      env
  in
  (* Statement walk threads (env, alive); alive=false after a terminator. *)
  let rec stmts env body =
    List.fold_left
      (fun (env, alive) s -> if alive then stmt env s else (env, alive))
      (env, true) body
  and stmt env (s : Ast.stmt) =
    let line = s.Ast.sloc.Loc.line in
    match s.Ast.skind with
    | Sexpr e -> (eval env line e, true)
    | Sdecl (_, v, Some (Ast.Ecall (Ast.Eident c, args)))
      when Sset.mem c errfns ->
        let env =
          List.fold_left (fun env a -> eval env line a) env args
        in
        (store env v c line, true)
    | Sdecl (_, v, Some e) ->
        let env = eval env line e in
        (Smap.add v Checked env, true)
    | Sdecl (_, v, None) -> (Smap.remove v env, true)
    | Sif (c, a, b) -> (
        let env = eval env line c in
        let ea, la = stmts env a in
        let eb, lb = stmts env b in
        match (la, lb) with
        | true, true -> (flow_merge ea eb, true)
        | true, false -> (ea, true)
        | false, true -> (eb, true)
        | false, false -> (env, false))
    | Swhile (c, body) ->
        let env = eval env line c in
        let eb, _ = stmts env body in
        (flow_merge env eb, true)
    | Sdo (body, c) ->
        let eb, alive = stmts env body in
        let eb = if alive then eval eb line c else eb in
        (flow_merge env eb, true)
    | Sfor (init, cond, update, body) ->
        let env, _ =
          match init with Some s -> stmt env s | None -> (env, true)
        in
        let env =
          match cond with Some e -> eval env line e | None -> env
        in
        let eb, alive = stmts env body in
        let eb =
          match update with
          | Some e when alive -> eval eb line e
          | _ -> eb
        in
        (flow_merge env eb, true)
    | Sreturn e ->
        let env =
          match e with Some e -> eval env line e | None -> env
        in
        drop_all env;
        (env, false)
    | Sgoto _ ->
        (* the label's code may still examine the result: no report *)
        (env, false)
    | Slabel _ ->
        (* merge point with unknown predecessors: forget everything *)
        (Smap.map (fun _ -> Checked) env, true)
    | Sbreak | Scontinue -> (env, false)
    | Sswitch (e, cases) ->
        let env = eval env line e in
        let has_default =
          List.exists (function Ast.Default _ -> true | _ -> false) cases
        in
        let outs =
          List.filter_map
            (fun case ->
              let body =
                match case with Ast.Case (_, b) | Ast.Default b -> b
              in
              let e, alive = stmts env body in
              if alive then Some e else None)
            cases
        in
        let outs = if has_default then outs else env :: outs in
        (match outs with
        | [] -> (env, false)
        | first :: rest -> (List.fold_left flow_merge first rest, true))
    | Sblock body -> stmts env body
  in
  let env, alive = stmts Smap.empty fn.Ast.fbody in
  if alive then drop_all env;
  List.rev !viols

let flow_violations (file : Ast.file) ~extra =
  let errfns = Sset.of_list (error_returning_functions file ~extra) in
  List.concat_map (flow_check_function errfns) (Ast.functions file)
  |> List.sort_uniq compare

(* [if (v) return v;], [if (v) return -C;], [if (v) goto l;] — the pure
   propagation shapes an exception rewrite deletes. *)
let is_propagation (s : Ast.stmt) =
  match s.Ast.skind with
  | Sif (Ast.Eident v, [ { Ast.skind = Sreturn (Some (Ast.Eident v')); _ } ], [])
    ->
      v = v'
  | Sif (Ast.Eident _, [ { Ast.skind = Sreturn (Some (Ast.Econst _)); _ } ], [])
  | Sif
      ( Ast.Eident _,
        [ { Ast.skind = Sreturn (Some (Ast.Eunop (Ast.Neg, Ast.Econst _))); _ } ],
        [] )
  | Sif (Ast.Eident _, [ { Ast.skind = Sgoto _; _ } ], []) ->
      true
  | _ -> false

let propagation_sites (fn : Ast.func) =
  List.length (List.filter is_propagation (flatten fn.Ast.fbody))

let func_loc source (fn : Ast.func) =
  Loc_count.count_range Loc_count.C source ~first:fn.Ast.floc_start.Loc.line
    ~last:fn.Ast.floc_end.Loc.line

let exception_savings (file : Ast.file) ~funcs =
  List.fold_left
    (fun (removed, total) name ->
      match Ast.find_function file name with
      | Some fn ->
          (removed + propagation_sites fn, total + func_loc file.Ast.source fn)
      | None -> (removed, total))
    (0, 0) funcs
