lib/xpc/channel.mli: Domain
