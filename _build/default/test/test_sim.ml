(* Whole-simulation properties: determinism, repeated driver lifecycle,
   multi-device coexistence, scheduler stress. *)

open Decaf_drivers
module K = Decaf_kernel
module Hw = Decaf_hw

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mac1 = "\x00\x1b\x21\x0a\x0b\x0c"
let mac2 = "\x00\x1b\x21\x0a\x0b\x0d"

let boot () =
  K.Boot.boot ();
  Decaf_xpc.Domain.reset ();
  Decaf_xpc.Channel.reset_stats ();
  Decaf_runtime.Runtime.reset ()

let in_thread f =
  let result = ref None in
  ignore (K.Sched.spawn ~name:"sim" (fun () -> result := Some (f ())));
  K.Sched.run ();
  Option.get !result

(* --- determinism: the virtual machine is a pure function of its inputs --- *)

let run_e1000_send () =
  boot ();
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:mac1 ~link ());
  in_thread (fun () ->
      let t = Result.get_ok (E1000_drv.insmod (Driver_env.decaf ())) in
      let nd = E1000_drv.netdev t in
      ignore (K.Netcore.open_dev nd);
      let r =
        Decaf_workloads.Netperf.send ~netdev:nd ~link
          ~duration_ns:300_000_000 ~msg_bytes:1500
      in
      let crossings = (Decaf_xpc.Channel.stats ()).Decaf_xpc.Channel.kernel_user_calls in
      let now = K.Clock.now () in
      let busy = K.Clock.busy_ns () in
      E1000_drv.rmmod t;
      (r.Decaf_workloads.Netperf.packets, crossings, now, busy))

let test_simulation_deterministic () =
  let a = run_e1000_send () in
  let b = run_e1000_send () in
  check_bool "two runs are bit-identical" true (a = b)

(* --- repeated lifecycle: no leak across load/unload cycles --- *)

let test_repeated_insmod_rmmod () =
  boot ();
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:mac1 ~link ());
  in_thread (fun () ->
      for _cycle = 1 to 10 do
        let t = Result.get_ok (E1000_drv.insmod (Driver_env.decaf ())) in
        let nd = E1000_drv.netdev t in
        (match K.Netcore.open_dev nd with
        | Ok () -> ()
        | Error rc -> Alcotest.failf "open: %d" rc);
        ignore (K.Netcore.dev_queue_xmit nd (K.Netcore.Skb.alloc 512));
        K.Sched.sleep_ns 1_000_000;
        E1000_drv.rmmod t;
        let live, _ = K.Kmem.outstanding () in
        check "no allocations survive rmmod" 0 live
      done);
  match K.Boot.check_quiescent () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "not quiescent after 10 cycles: %s" msg

(* --- two NICs coexist, one native and one decaf --- *)

let test_two_nics_coexist () =
  boot ();
  let link1 = Hw.Link.create ~rate_bps:100_000_000 () in
  let link2 = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10 ~mac:mac1
       ~link:link1 ());
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:mac2 ~link:link2 ());
  in_thread (fun () ->
      let t1 = Result.get_ok (Rtl8139_drv.insmod Driver_env.native) in
      let t2 = Result.get_ok (E1000_drv.insmod (Driver_env.decaf ())) in
      let nd1 = Rtl8139_drv.netdev t1 and nd2 = E1000_drv.netdev t2 in
      check_bool "distinct interface names" true
        (K.Netcore.name nd1 <> K.Netcore.name nd2);
      ignore (K.Netcore.open_dev nd1);
      ignore (K.Netcore.open_dev nd2);
      (* interleave traffic on both *)
      for _ = 1 to 20 do
        ignore (K.Netcore.dev_queue_xmit nd1 (K.Netcore.Skb.alloc 500));
        ignore (K.Netcore.dev_queue_xmit nd2 (K.Netcore.Skb.alloc 1500));
        K.Sched.sleep_ns 200_000
      done;
      K.Sched.sleep_ns 5_000_000;
      check "rtl8139 sent everything" 20 (Hw.Link.tx_frames link1);
      check "e1000 sent everything" 20 (Hw.Link.tx_frames link2);
      (* interrupts were delivered on both lines *)
      check_bool "both irq lines fired" true
        (K.Irq.delivered 10 > 0 && K.Irq.delivered 11 > 0);
      E1000_drv.rmmod t2;
      Rtl8139_drv.rmmod t1)

(* --- scheduler stress --- *)

let prop_scheduler_stress =
  QCheck.Test.make ~name:"random thread soup completes with a monotone clock"
    ~count:25
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 1 200))
    (fun sleeps ->
      boot ();
      let done_count = ref 0 in
      let monotone = ref true in
      let last = ref 0 in
      List.iter
        (fun us ->
          ignore
            (K.Sched.spawn (fun () ->
                 for _ = 1 to 3 do
                   if K.Clock.now () < !last then monotone := false;
                   last := max !last (K.Clock.now ());
                   K.Sched.sleep_ns (us * 1_000);
                   K.Sched.yield ()
                 done;
                 incr done_count)))
        sleeps;
      K.Sched.run ();
      !done_count = List.length sleeps
      && !monotone
      && K.Clock.busy_ns () <= K.Clock.now ())

let prop_mutex_exclusion =
  QCheck.Test.make ~name:"mutex holds mutual exclusion under random sleeps"
    ~count:25
    QCheck.(list_of_size Gen.(int_range 2 10) (int_range 0 50))
    (fun sleeps ->
      boot ();
      let m = K.Sync.Mutex.create () in
      let inside = ref 0 in
      let violated = ref false in
      List.iteri
        (fun i us ->
          ignore
            (K.Sched.spawn ~name:(Printf.sprintf "m%d" i) (fun () ->
                 K.Sync.Mutex.with_lock m (fun () ->
                     incr inside;
                     if !inside > 1 then violated := true;
                     K.Sched.sleep_ns (us * 1_000);
                     decr inside))))
        sleeps;
      K.Sched.run ();
      (not !violated) && not (K.Sync.Mutex.held m))

let test_irq_storm_coalesces () =
  boot ();
  let handled = ref 0 in
  K.Irq.request_irq 6 ~name:"storm" (fun () -> incr handled);
  (* a device asserting the line 1000 times in one instant *)
  K.Sched.local_irq_save ();
  for _ = 1 to 1000 do
    K.Irq.raise_irq 6
  done;
  K.Sched.local_irq_restore ();
  K.Clock.consume 100_000;
  check_bool "level-triggered storm coalesces" true (!handled >= 1 && !handled <= 3)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decaf_sim"
    [
      ( "whole-system",
        [
          tc "deterministic" test_simulation_deterministic;
          tc "repeated insmod/rmmod" test_repeated_insmod_rmmod;
          tc "two NICs coexist" test_two_nics_coexist;
          tc "irq storm coalesces" test_irq_storm_coalesces;
        ] );
      ( "stress",
        List.map QCheck_alcotest.to_alcotest
          [ prop_scheduler_stress; prop_mutex_exclusion ] );
    ]
