lib/xpc/xdr.mli:
