module Ast = Decaf_minic.Ast
module Loc = Decaf_minic.Loc

type driver_stats = {
  ds_name : string;
  ds_type : string;
  ds_loc : int;
  ds_annotations : int;
  ds_nucleus_funcs : int;
  ds_nucleus_loc : int;
  ds_library_funcs : int;
  ds_library_loc : int;
  ds_decaf_funcs : int;
  ds_decaf_loc : int;
  ds_converted_orig_loc : int;
}

let func_loc source (fn : Ast.func) =
  Loc_count.count_range Loc_count.C source ~first:fn.Ast.floc_start.Loc.line
    ~last:fn.Ast.floc_end.Loc.line

let loc_of_functions (out : Slicer.output) names =
  List.fold_left
    (fun acc name ->
      match Ast.find_function out.Slicer.file name with
      | Some fn -> acc + func_loc out.Slicer.file.Ast.source fn
      | None -> acc)
    0 names

let stats (out : Slicer.output) ~dtype =
  let nucleus = out.Slicer.partition.Partition.nucleus in
  let library = Slicer.library_functions out in
  let decaf = Slicer.decaf_functions out in
  let converted = loc_of_functions out decaf in
  {
    ds_name = out.Slicer.partition.Partition.config.Partition.driver_name;
    ds_type = dtype;
    ds_loc = Loc_count.count Loc_count.C out.Slicer.file.Ast.source;
    ds_annotations = Annot.count_lines out.Slicer.annots;
    ds_nucleus_funcs = List.length nucleus;
    ds_nucleus_loc = loc_of_functions out nucleus;
    ds_library_funcs = List.length library;
    ds_library_loc = loc_of_functions out library;
    ds_decaf_funcs = List.length decaf;
    (* A Java rewrite with exceptions is shorter than the C original
       (§5.1 reports ~8% savings from removed error propagation alone);
       the decaf LoC column reports the converted functions' size. *)
    ds_decaf_loc = converted;
    ds_converted_orig_loc = converted;
  }

let user_fraction ds =
  let total = ds.ds_nucleus_funcs + ds.ds_library_funcs + ds.ds_decaf_funcs in
  if total = 0 then 0.
  else float_of_int (ds.ds_library_funcs + ds.ds_decaf_funcs) /. float_of_int total

let header =
  Printf.sprintf "%-10s %-8s %6s %6s | %5s %6s | %5s %6s | %5s %6s" "Driver"
    "Type" "LoC" "Annot" "NucF" "NucLoC" "LibF" "LibLoC" "DecF" "DecLoC"

let pp_row ppf ds =
  Format.fprintf ppf "%-10s %-8s %6d %6d | %5d %6d | %5d %6d | %5d %6d"
    ds.ds_name ds.ds_type ds.ds_loc ds.ds_annotations ds.ds_nucleus_funcs
    ds.ds_nucleus_loc ds.ds_library_funcs ds.ds_library_loc ds.ds_decaf_funcs
    ds.ds_decaf_loc
