let index_from haystack start needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then Some start
  else
    let rec scan i =
      if i + nn > nh then None
      else if String.sub haystack i nn = needle then Some i
      else scan (i + 1)
    in
    scan start

let index_of haystack needle =
  match index_from haystack 0 needle with
  | Some i -> i
  | None -> raise Not_found

let contains haystack needle = index_from haystack 0 needle <> None

let replace haystack ~needle ~replacement =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then haystack
  else begin
    let buf = Buffer.create nh in
    let rec scan i =
      if i >= nh then ()
      else if i + nn <= nh && String.sub haystack i nn = needle then begin
        Buffer.add_string buf replacement;
        scan (i + nn)
      end
      else begin
        Buffer.add_char buf haystack.[i];
        scan (i + 1)
      end
    in
    scan 0;
    Buffer.contents buf
  end
