examples/netperf_e1000.mli:
