lib/kernel/io.ml: Clock Cost Faultinject List Panic
