lib/slicer/splitgen.ml: Array Buffer Decaf_minic List Loc_count Partition Printf String Stubgen
