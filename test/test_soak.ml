(* The mixed-traffic soak: end-to-end smoke at a reduced scale, the
   pure p99 comparator, and the trajectory JSON round-trip. The
   committed-scale gate itself runs as the @soak-smoke dune alias. *)

module E = Decaf_experiments

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One reduced-scale measurement shared by the smoke and round-trip
   tests (the soak is deterministic, but there is no point running it
   twice). *)
let summary =
  lazy (E.Soak.measure ~duration_ns:100_000_000 ~fleet:2 ~seed:0x50a11 ())

(* The acceptance floor: these paths must all collect samples in the
   fault-free phase at even a tenth of the committed duration. *)
let required_paths =
  [ "irq"; "xpc.dispatch"; "xpc.batch"; "xpc.ring"; "net.tx"; "audio.period" ]

let test_soak_smoke () =
  let s = Lazy.force summary in
  let steady =
    List.filter (fun r -> r.E.Soak.phase = "steady") s.E.Soak.rows
  in
  List.iter
    (fun path ->
      match List.find_opt (fun r -> r.E.Soak.path = path) steady with
      | None -> Alcotest.failf "path %s missing from the steady phase" path
      | Some r ->
          check_bool (path ^ " sampled") true (r.E.Soak.samples > 0);
          check_bool
            (path ^ " percentiles ordered")
            true
            (r.E.Soak.p50_ns <= r.E.Soak.p99_ns
            && r.E.Soak.p99_ns <= r.E.Soak.p999_ns
            && r.E.Soak.p999_ns <= r.E.Soak.max_ns))
    required_paths;
  check "no audio deadline miss in the fault-free phase" 0
    s.E.Soak.steady_misses;
  check_bool "audio made progress" true (s.E.Soak.audio_periods > 0);
  check_bool "packets flowed" true (s.E.Soak.packets > 0);
  check "no leaked tracker entries" 0 s.E.Soak.leaked_entries;
  check "no leaked kmalloc bytes" 0 s.E.Soak.leaked_bytes

let test_soak_deterministic () =
  (* same (duration, fleet, seed) => identical trajectory; this is what
     makes the committed-file gate meaningful *)
  let a = Lazy.force summary in
  let b = E.Soak.measure ~duration_ns:100_000_000 ~fleet:2 ~seed:0x50a11 () in
  check_bool "rows identical" true (a.E.Soak.rows = b.E.Soak.rows);
  check "packets identical" a.E.Soak.packets b.E.Soak.packets;
  check "periods identical" a.E.Soak.audio_periods b.E.Soak.audio_periods

(* --- the pure p99 comparator --- *)

let row ?(phase = "steady") ?(path = "net.tx") p99_ns =
  {
    E.Soak.phase;
    path;
    samples = 100;
    overflow = 0;
    p50_ns = p99_ns / 2;
    p99_ns;
    p999_ns = p99_ns;
    max_ns = p99_ns;
  }

let test_compare_within_slack () =
  let complaints =
    E.Soak.compare_rows
      ~committed:[ row 100_000 ]
      ~fresh:[ row 104_000 ]
      ()
  in
  check "4% drift passes a 5% gate" 0 (List.length complaints)

let test_compare_regression () =
  let complaints =
    E.Soak.compare_rows
      ~committed:[ row 100_000 ]
      ~fresh:[ row 106_000 ]
      ()
  in
  check "6% drift fails a 5% gate" 1 (List.length complaints);
  (* a wider explicit slack lets the same drift through *)
  check "passes at 10%" 0
    (List.length
       (E.Soak.compare_rows ~p99_slack_pct:10
          ~committed:[ row 100_000 ]
          ~fresh:[ row 106_000 ]
          ()))

let test_compare_absolute_floor () =
  (* nanosecond-scale paths get a 2 us absolute budget so one-bucket
     jitter cannot trip the percentage gate *)
  let ok =
    E.Soak.compare_rows ~committed:[ row 100 ] ~fresh:[ row 2_000 ] ()
  in
  check "within the 2 us floor" 0 (List.length ok);
  let bad =
    E.Soak.compare_rows ~committed:[ row 100 ] ~fresh:[ row 2_200 ] ()
  in
  check "beyond the floor" 1 (List.length bad)

let test_compare_disappeared_path () =
  let complaints =
    E.Soak.compare_rows
      ~committed:[ row ~path:"net.tx" 1_000; row ~path:"irq" 1_000 ]
      ~fresh:[ row ~path:"net.tx" 1_000 ]
      ()
  in
  check "a committed path that stopped sampling is a failure" 1
    (List.length complaints)

(* --- trajectory JSON round-trip --- *)

let test_json_roundtrip () =
  let s = Lazy.force summary in
  let s' = E.Soak.of_json (E.Soak.to_json s) in
  check "duration" s.E.Soak.duration_ns s'.E.Soak.duration_ns;
  check "fleet" s.E.Soak.fleet s'.E.Soak.fleet;
  check "seed" s.E.Soak.seed s'.E.Soak.seed;
  check "steady misses" s.E.Soak.steady_misses s'.E.Soak.steady_misses;
  check "churn misses" s.E.Soak.churn_misses s'.E.Soak.churn_misses;
  check "audio periods" s.E.Soak.audio_periods s'.E.Soak.audio_periods;
  check "packets" s.E.Soak.packets s'.E.Soak.packets;
  check "leaked entries" s.E.Soak.leaked_entries s'.E.Soak.leaked_entries;
  check "leaked bytes" s.E.Soak.leaked_bytes s'.E.Soak.leaked_bytes;
  check_bool "rows survive the round trip" true
    (s.E.Soak.rows = s'.E.Soak.rows)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decaf_soak"
    [
      ( "soak",
        [
          tc "reduced-scale smoke" test_soak_smoke;
          tc "deterministic" test_soak_deterministic;
        ] );
      ( "compare",
        [
          tc "within slack" test_compare_within_slack;
          tc "regression" test_compare_regression;
          tc "absolute floor" test_compare_absolute_floor;
          tc "disappeared path" test_compare_disappeared_path;
        ] );
      ("json", [ tc "round trip" test_json_roundtrip ]);
    ]
