test/test_slicer.ml: Alcotest Annot Decaf_minic Decaf_slicer Decaf_xpc Gen List Loc_count Partition QCheck QCheck_alcotest Regen Report Slicer Splitgen Testutil Xdrspec
