(** Substring utilities used by the evolution corpus. *)

val contains : string -> string -> bool
val index_of : string -> string -> int
(** First occurrence; raises [Not_found]. *)

val index_from : string -> int -> string -> int option
val replace : string -> needle:string -> replacement:string -> string
(** Replace every occurrence. *)
