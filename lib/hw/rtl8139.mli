(** Register-level model of a RealTek RTL8139 fast-Ethernet NIC.

    The device decodes a 256-byte port-I/O window (BAR 0). Frame payloads
    move through explicit DMA queues ({!stage_tx_buffer}, {!take_rx})
    standing in for the descriptor rings in host memory; the control path
    — command register, transmit status slots, interrupt mask/status —
    follows the real part. *)

type t

(* Register offsets within the port window. *)

(** 0x00..0x05: station MAC address *)
val idr0 : int

(** 0x10 + 4*n: transmit status of descriptor n (32-bit) *)
val tsd0 : int

(** 0x20 + 4*n: transmit start address of descriptor n *)
val tsad0 : int

(** 0x30: receive buffer start address *)
val rbstart : int

(** 0x37: command — bit 4 RST, bit 3 RE, bit 2 TE, bit 0 BUFE *)
val cmd : int

(** 0x38: current address of packet read *)
val capr : int

(** 0x3c: interrupt mask (16-bit) *)
val imr : int

(** 0x3e: interrupt status (16-bit), write 1 to clear *)
val isr : int

(** 0x40: transmit configuration *)
val tcr : int

(** 0x44: receive configuration *)
val rcr : int

(** 0x52 *)
val config1 : int


val cmd_rst : int
val cmd_re : int
val cmd_te : int
val cmd_bufe : int
val isr_rok : int
val isr_tok : int
val isr_rx_overflow : int
val tsd_own : int
val tsd_tok : int
val n_tx_desc : int

val create : io_base:int -> irq:int -> mac:string -> link:Link.t -> t
(** Claim the port window and attach to the link. *)

val destroy : t -> unit

val stage_tx_buffer : t -> int -> bytes -> unit
(** DMA: place frame data in the buffer of transmit descriptor [n]
    (modelling the write to the address in TSAD[n]). The frame goes on
    the wire when TSD[n] is written with the size and OWN cleared. *)

val take_rx : t -> (bytes * Decaf_kernel.Clock.track) option
(** DMA: pull the next received frame from the receive ring, together
    with its wire-arrival birth stamp; the driver completes the stamp
    when the packet reaches [netif_rx], closing the "net.rx" end-to-end
    timeline. *)

val rx_pending : t -> int
val phy : t -> Phy.t
val tx_count : t -> int
val rx_count : t -> int
