test/test_decaf.mli:
