module Skb = struct
  type t = { data : Bytes.t; mutable len : int; mutable protocol : int }

  let alloc len = { data = Bytes.make len '\000'; len; protocol = 0 }
  let of_bytes data = { data; len = Bytes.length data; protocol = 0 }

  let copy skb =
    { data = Bytes.copy skb.data; len = skb.len; protocol = skb.protocol }
end

type stats = {
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable rx_errors : int;
  mutable rx_dropped : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable tx_errors : int;
  mutable tx_dropped : int;
}

type xmit_result = Xmit_ok | Xmit_busy

type ops = {
  ndo_open : unit -> (unit, int) result;
  ndo_stop : unit -> (unit, int) result;
  ndo_start_xmit : Skb.t -> xmit_result;
  ndo_tx_timeout : unit -> unit;
}

type t = {
  name : string;
  mtu : int;
  ops : ops;
  stats : stats;
  mutable up : bool;
  mutable tx_stopped : bool;
  mutable carrier : bool;
  mutable rx_handler : (Skb.t -> unit) option;
}

let registry : t list ref = ref []

let create ~name ~mtu ops =
  {
    name;
    mtu;
    ops;
    stats =
      {
        rx_packets = 0;
        rx_bytes = 0;
        rx_errors = 0;
        rx_dropped = 0;
        tx_packets = 0;
        tx_bytes = 0;
        tx_errors = 0;
        tx_dropped = 0;
      };
    up = false;
    tx_stopped = true;
    carrier = false;
    rx_handler = None;
  }

let alloc_name prefix =
  let rec scan n =
    let candidate = Printf.sprintf "%s%d" prefix n in
    if List.exists (fun d -> d.name = candidate) !registry then scan (n + 1)
    else candidate
  in
  scan 0

let name d = d.name
let mtu d = d.mtu
let stats d = d.stats

let register_netdev d =
  if List.exists (fun o -> o.name = d.name) !registry then
    Panic.bug "netdev %s already registered" d.name;
  registry := d :: !registry;
  Klog.printk Klog.Info "net %s: registered" d.name

let unregister_netdev d = registry := List.filter (fun o -> o != d) !registry
let lookup name = List.find_opt (fun d -> d.name = name) !registry

let open_dev d =
  match d.ops.ndo_open () with
  | Ok () ->
      d.up <- true;
      Ok ()
  | Error _ as e -> e

let stop_dev d =
  let r = d.ops.ndo_stop () in
  d.up <- false;
  r

let is_up d = d.up

let dev_queue_xmit d skb =
  if (not d.up) || d.tx_stopped then Xmit_busy else d.ops.ndo_start_xmit skb

let netif_rx d skb =
  d.stats.rx_packets <- d.stats.rx_packets + 1;
  d.stats.rx_bytes <- d.stats.rx_bytes + skb.Skb.len;
  match d.rx_handler with Some f -> f skb | None -> ()

let set_rx_handler d f = d.rx_handler <- Some f
let netif_stop_queue d = d.tx_stopped <- true
let netif_wake_queue d = d.tx_stopped <- false
let netif_queue_stopped d = d.tx_stopped
let netif_carrier_on d = d.carrier <- true
let netif_carrier_off d = d.carrier <- false
let netif_carrier_ok d = d.carrier
let reset () = registry := []
