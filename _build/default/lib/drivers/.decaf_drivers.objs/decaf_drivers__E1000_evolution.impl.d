lib/drivers/e1000_evolution.ml: Decaf_minic Decaf_slicer E1000_src List String Strutil
