module K = Decaf_kernel
module Hw = Decaf_hw
module E = Hw.E1000_hw
module O = E1000_objects
module Errors = Decaf_runtime.Errors
module Runtime = Decaf_runtime.Runtime

let vendor_id = 0x8086

(* The id table of the 2.6.18 e1000 driver: ~50 chipsets. *)
let device_ids =
  [
    0x1000; 0x1001; 0x1004; 0x1008; 0x1009; 0x100c; 0x100d; 0x100e; 0x100f;
    0x1010; 0x1011; 0x1012; 0x1013; 0x1014; 0x1015; 0x1016; 0x1017; 0x1018;
    0x1019; 0x101a; 0x101d; 0x101e; 0x1026; 0x1027; 0x1028; 0x105e; 0x105f;
    0x1060; 0x1075; 0x1076; 0x1077; 0x1078; 0x1079; 0x107a; 0x107b; 0x107c;
    0x107d; 0x107e; 0x107f; 0x108a; 0x1099; 0x10a4; 0x10a5; 0x10b5; 0x10b9;
    0x10ba; 0x10bb; 0x10bc; 0x10c4; 0x10c5;
  ]

let adapter_wire_bytes = O.wire_size
let driver = "e1000"
let watchdog_period_ns = 2_000_000_000

(* Module parameters, as given on the insmod command line; validated at
   probe time by the checker classes of the decaf runtime (the paper's
   e1000_param.c rewrite, section 5.1). *)
let param_tx_descriptors = ref 256
let param_interrupt_throttle = ref 3
let param_smart_power_down = ref 0

let set_module_params ?tx_descriptors ?interrupt_throttle ?smart_power_down ()
    =
  Option.iter (fun v -> param_tx_descriptors := v) tx_descriptors;
  Option.iter (fun v -> param_interrupt_throttle := v) interrupt_throttle;
  Option.iter (fun v -> param_smart_power_down := v) smart_power_down

let reset_module_params () =
  param_tx_descriptors := 256;
  param_interrupt_throttle := 3;
  param_smart_power_down := 0

(* checked values after the last probe *)
let checked_params : (string * Decaf_runtime.Params.outcome) list ref = ref []

let check_options () =
  let open Decaf_runtime.Params in
  checked_params :=
    check_all
      [
        ( new range_checker
            ~name:"TxDescriptors" ~default:256 ~min:80 ~max:4096,
          !param_tx_descriptors );
        ( new set_checker
            ~name:"InterruptThrottleRate" ~default:3
            ~allowed:[ 0; 1; 3; 4000; 8000; 10000 ],
          !param_interrupt_throttle );
        ( new flag_checker ~name:"SmartPowerDownEnable" ~default:0,
          !param_smart_power_down );
      ];
  !checked_params

(* Per-instance parameter snapshot (satellite of the fleet work): the
   module-level refs above model the insmod command line and are still
   reset between loads, but each binding captures its own validated
   copy at probe time, so two NICs probed with different params never
   share a ref cell. *)
type params = {
  p_tx_descriptors : int;
  p_interrupt_throttle : int;
  p_smart_power_down : int;
}

let default_params =
  { p_tx_descriptors = 256; p_interrupt_throttle = 3; p_smart_power_down = 0 }

let snapshot_params outcomes =
  let v name default =
    match List.assoc_opt name outcomes with
    | Some o -> o.Decaf_runtime.Params.value
    | None -> default
  in
  {
    p_tx_descriptors = v "TxDescriptors" 256;
    p_interrupt_throttle = v "InterruptThrottleRate" 3;
    p_smart_power_down = v "SmartPowerDownEnable" 0;
  }

let models : (string, E.t) Hashtbl.t = Hashtbl.create 4

let setup_device ~slot ~mmio_base ~irq ?(device_id = 0x100e) ~mac ~link () =
  let model = E.create ~mmio_base ~irq ~device_id ~mac ~link in
  Hashtbl.replace models slot model;
  K.Pci.add_device
    (K.Pci.make_dev ~slot ~vendor:vendor_id ~device:device_id ~irq_line:irq
       ~bars:[ { K.Pci.kind = K.Pci.Mmio_bar; base = mmio_base; len = 0x20000 } ]
       ());
  model

type resources = {
  mutable tx_alloc : K.Dma.mapping option;
  mutable rx_alloc : K.Dma.mapping option;
}

type adapter = {
  env : Driver_env.t;
  scope : string;
      (** binding id this adapter is accounted under (ring name,
          boundary scope); the bare driver name for the first instance *)
  model : E.t;
  pci : K.Pci.dev;
  mmio : int;
  irq : int;
  ka : O.kernel_adapter;
  resources : resources;
  mutable netdev : K.Netcore.t option;
  mutable tx_tail : int;
  mutable tx_in_flight : int;
  mutable watchdog : K.Timer.t option;
  mutable watchdog_runs : int;
  mutable pkts_since_stats : int;
  mutable user_syncs : int;
  mutable params : params;  (** validated snapshot from this probe *)
  mutable itr_reg : int;  (** last value programmed into ITR *)
  mutable xring : Decaf_xpc.Ring.t option;
      (** shared-ring XPC fast path for stats/link records *)
  lock : K.Sync.Combolock.t;
}

type t = { adapter : adapter; mutable module_handle : K.Modules.handle option }

let reg a off = a.mmio + off

(* --- plan-driven XPC with real XDR marshaling --- *)

(* Run [f] on the Java view of the adapter. In decaf mode this is a real
   XPC: the plan's copy-in fields are XDR-encoded, decoded at user level
   through the object tracker, and the decaf driver's writes travel back
   the same way. In native mode the same logic runs in the kernel on a
   scratch view. *)
let with_java_adapter a ~name f =
  match a.env.Driver_env.mode with
  | Driver_env.Native ->
      let payload = O.marshal_to_user a.ka in
      let j = O.unmarshal_at_user payload a.ka in
      let result = f j in
      O.unmarshal_at_kernel (O.marshal_to_kernel j) a.ka;
      result
  | Driver_env.Staged | Driver_env.Decaf ->
      if a.env.Driver_env.mode = Driver_env.Decaf then Runtime.start ();
      (* boundary faults caught below (handle resolution, field
         validation, ack high-water) are attributed to this binding *)
      Decaf_xpc.Boundary.scoped a.scope (fun () ->
          let upto = O.user_view_mark a.ka in
          let payload = O.marshal_to_user a.ka in
          let result, back =
            a.env.Driver_env.upcall ~name ~bytes:(Bytes.length payload)
              (fun () ->
                let j = O.unmarshal_at_user payload a.ka in
                let result = f j in
                (result, O.marshal_to_kernel j))
          in
          (* the crossing carried every mark up to the snapshot; marks from
             interrupts that fired during the call stay for the next sync *)
          O.ack_user_view a.ka ~upto;
          O.unmarshal_at_kernel back a.ka;
          result)

(* Non-urgent kernel->user view refresh (stats rollups, link state):
   marshal the delta now — interrupt context is fine, nothing blocks —
   and let Batch deliver it. Acknowledge only in the delivered thunk:
   if the flush crossing fails, the marks survive and the fields ride
   the next sync. *)
let post_adapter_sync a ~name =
  match a.env.Driver_env.mode with
  | Driver_env.Native -> ()
  | Driver_env.Staged | Driver_env.Decaf ->
      let upto = O.user_view_mark a.ka in
      let payload = O.marshal_to_user a.ka in
      a.env.Driver_env.notify ~name ~bytes:(Bytes.length payload) (fun () ->
          Decaf_xpc.Boundary.scoped a.scope (fun () ->
              ignore (O.unmarshal_at_user payload a.ka);
              O.ack_user_view a.ka ~upto;
              a.user_syncs <- a.user_syncs + 1))

(* The kernel nucleus refreshes the user-level stats view once per
   [stats_notify_interval] data-path packets — often enough for user
   tooling, rare enough that the data path is not crossing-bound. The
   gigabit E1000 uses a longer interval than the 8139too so that even
   the unbatched baseline stays within a couple of CPU points of the
   native build at wire speed. *)
let stats_notify_interval = 256

(* Ring fast path availability: the axis is on, probe allocated a ring,
   and the user-level view exists — a freshly restarted runtime must
   get a full-image crossing first, not slot updates against an object
   it no longer holds. *)
let ring_of a =
  if Decaf_xpc.Ring.enabled () && O.user_has_view a.ka then a.xring else None

let note_packets a n =
  if n > 0 && a.env.Driver_env.mode <> Driver_env.Native then begin
    a.pkts_since_stats <- a.pkts_since_stats + n;
    if a.pkts_since_stats >= stats_notify_interval then begin
      a.pkts_since_stats <- 0;
      match ring_of a with
      | Some ring ->
          (* slot write instead of a deferred marshal; an overflow drop
             marks the field dirty so the delta path repairs it on the
             next sync (the watchdog upcall bounds the staleness) *)
          let r = O.ring_stats_record a.ka in
          if not (Decaf_xpc.Ring.produce ring r) then
            O.ring_undeliverable a.ka r
      | None ->
          O.bump_k_stats a.ka;
          post_adapter_sync a ~name:"e1000_stats"
    end
  end

(* --- driver nucleus: data path --- *)

let clean_tx a =
  (* descriptors up to the hardware head are done *)
  let tdh = K.Io.readl (reg a E.reg_tdh) in
  let before = a.tx_in_flight in
  a.tx_in_flight <- (a.tx_tail - tdh + E.n_tx_desc) mod E.n_tx_desc;
  (if a.tx_in_flight < E.n_tx_desc - 1 then
     match a.netdev with
     | Some nd ->
         if K.Netcore.netif_queue_stopped nd then K.Netcore.netif_wake_queue nd
     | None -> ());
  let retired = max 0 (before - a.tx_in_flight) in
  note_packets a retired;
  retired

let start_xmit a (skb : K.Netcore.Skb.t) =
  K.Sync.Combolock.with_kernel a.lock (fun () ->
      (* lazy TX reclaim, as the real driver does in hard_start_xmit:
         when the ring runs low, retire completed descriptors here
         instead of waiting for a (possibly throttled) TXDW interrupt,
         so forward progress never depends on interrupt latency *)
      if a.tx_in_flight >= E.n_tx_desc - (E.n_tx_desc / 4) then
        ignore (clean_tx a);
      if a.tx_in_flight >= E.n_tx_desc - 1 then K.Netcore.Xmit_busy
      else begin
        E.stage_tx a.model (Bytes.sub skb.K.Netcore.Skb.data 0 skb.K.Netcore.Skb.len);
        a.tx_tail <- (a.tx_tail + 1) mod E.n_tx_desc;
        a.tx_in_flight <- a.tx_in_flight + 1;
        K.Io.writel (reg a E.reg_tdt) a.tx_tail;
        (match a.netdev with
        | Some nd ->
            let st = K.Netcore.stats nd in
            st.K.Netcore.tx_packets <- st.K.Netcore.tx_packets + 1;
            st.K.Netcore.tx_bytes <- st.K.Netcore.tx_bytes + skb.K.Netcore.Skb.len;
            if a.tx_in_flight >= E.n_tx_desc - 1 then K.Netcore.netif_stop_queue nd
        | None -> ());
        K.Netcore.Xmit_ok
      end)

let handle_rx a =
  let continue = ref true in
  let received = ref 0 in
  while !continue do
    match E.take_rx a.model with
    | Some (frame, tr) ->
        K.Clock.consume 800
        (* decaf-lint: consume-ok, inside the net.rx span (born at DMA) *);
        (match a.netdev with
        | Some nd -> K.Netcore.netif_rx nd (K.Netcore.Skb.of_bytes frame)
        | None -> ());
        (* packet delivered: close the wire-arrival timeline *)
        ignore (K.Clock.complete tr);
        incr received;
        (* return the buffer to the device: advance the rx tail *)
        let rdt = K.Io.readl (reg a E.reg_rdt) in
        K.Io.writel (reg a E.reg_rdt) ((rdt + 1) mod E.n_rx_desc)
    | None -> continue := false
  done;
  note_packets a !received;
  !received

(* Driver-side dynamic interrupt throttling (InterruptThrottleRate 1/3):
   feedback on events retired per interrupt. With immediate delivery an
   interrupt retires at most a frame or two, so [work] only climbs when
   causes pile up while the CPU is busy elsewhere — exactly the
   interrupt-bound fleet case. A loaded instance therefore widens its
   ITR window toward the 2 ms ceiling (where each interrupt retires a
   large batch and keeps it wide), while a single NIC at wire rate
   retires ~1 frame per interrupt and stays unthrottled, so the
   latency-sensitive paths (link tests, sparse traffic) are unchanged.
   Bounds: the 2 ms ceiling stays under the ~3.1 ms the 256-slot rings
   buffer at wire rate; writes hit ITR only on change, so the MMIO cost
   is paid at transitions, not per interrupt. *)
let itr_floor = 78 (* ~20 us in 256 ns units *)
let itr_ceiling = 7812 (* ~2 ms *)

let adjust_itr a ~data work =
  match a.params.p_interrupt_throttle with
  | 1 | 3 ->
      let cur = a.itr_reg in
      let next =
        if work >= 4 then
          (* ratchet, don't track: halving back on every light interrupt
             makes the window oscillate around the load point and the
             fleet stays interrupt-bound. [work] can read zero on a data
             interrupt whose descriptors the lazy reclaim in start_xmit
             already harvested, so only a status-only interrupt — no
             TX/RX cause at all, the line is idle and latency matters —
             drops the window back to unthrottled. *)
          if cur = 0 then itr_floor else min (cur * 2) itr_ceiling
        else if not data then 0
        else cur
      in
      if next <> cur then begin
        a.itr_reg <- next;
        K.Io.writel (reg a E.reg_itr) next
      end
  | _ -> ()

let interrupt a =
  let icr = K.Io.readl (reg a E.reg_icr) in
  if icr <> 0 then begin
    let work = ref 0 in
    if icr land E.icr_txdw <> 0 then work := !work + clean_tx a;
    if icr land E.icr_rxt0 <> 0 then work := !work + handle_rx a;
    adjust_itr a ~data:(icr land (E.icr_txdw lor E.icr_rxt0) <> 0) !work;
    if icr land E.icr_lsc <> 0 then begin
      let up = Hw.Phy.link_up (E.phy a.model) in
      if up <> a.ka.O.k_link_up then
        match ring_of a with
        | Some ring ->
            let r = O.ring_link_record a.ka up in
            if not (Decaf_xpc.Ring.produce ring r) then begin
              (* link transitions are too important to wait for the
                 watchdog: mark and post the delta sync right away *)
              O.ring_undeliverable a.ka r;
              post_adapter_sync a ~name:"e1000_link_state"
            end
        | None ->
            O.set_k_link_up a.ka up;
            post_adapter_sync a ~name:"e1000_link_state"
    end
  end

(* --- decaf driver: user-level logic, exception-based (§5.1) --- *)

(* Hardware access helpers: direct Jeannie calls in decaf mode. *)
let rd32 a off =
  if a.env.Driver_env.mode <> Driver_env.Native then Runtime.Helpers.readl (reg a off)
  else K.Io.readl (reg a off)

let wr32 a off v =
  if a.env.Driver_env.mode <> Driver_env.Native then Runtime.Helpers.writel (reg a off) v
  else K.Io.writel (reg a off) v

let throw errno context = Errors.throw ~driver ~errno context

let reset_hw a =
  wr32 a E.reg_ctrl E.ctrl_rst;
  (* after reset the device comes back with registers cleared *)
  wr32 a E.reg_ctrl E.ctrl_slu

(* EEPROM reads occasionally miss the done bit on real parts; retry the
   handshake with backoff before giving up on the whole probe. *)
let read_eeprom_word a addr =
  Errors.with_retry ~attempts:3 ~backoff_ns:50_000 (fun () ->
      wr32 a E.reg_eerd ((addr lsl 8) lor E.eerd_start);
      let v = rd32 a E.reg_eerd in
      if v land E.eerd_done = 0 then throw Errors.eio "EEPROM read timeout";
      (v lsr 16) land 0xffff)

(* Validate the EEPROM: the sum of all 64 words must be 0xBABA. *)
let validate_eeprom a =
  let sum = ref 0 in
  for w = 0 to 63 do
    sum := (!sum + read_eeprom_word a w) land 0xffff
  done;
  if !sum <> 0xbaba then throw Errors.eio "EEPROM checksum invalid"

let read_mac_from_eeprom a =
  String.init 6 (fun i ->
      let w = read_eeprom_word a (i / 2) in
      Char.chr (if i mod 2 = 0 then w land 0xff else (w lsr 8) land 0xff))

let phy_read a phy_reg =
  wr32 a E.reg_mdic ((phy_reg lsl 16) lor E.mdic_op_read);
  let v = rd32 a E.reg_mdic in
  if v land E.mdic_ready = 0 then throw Errors.eio "MDIC not ready";
  v land 0xffff

let phy_setup a =
  (* restart autonegotiation and wait for it to complete *)
  wr32 a E.reg_mdic ((0 lsl 16) lor E.mdic_op_write lor 0x1200);
  let tries = ref 0 in
  while phy_read a 1 land 0x0020 = 0 && !tries < 100 do
    incr tries;
    Runtime.Helpers.msleep 10
  done;
  if !tries >= 100 then throw Errors.etimedout "link autonegotiation"

(* Save PCI config space into the adapter (Figure 3's config_space
   array); each dword is a downcall to the kernel's PCI services. *)
let save_config_space a (j : O.java_adapter) =
  for i = 0 to O.config_words - 1 do
    O.set_j_config_word j i
      (a.env.Driver_env.downcall ~name:"pci_read_config" ~bytes:8 (fun () ->
           K.Pci.read_config32 a.pci (4 * i)))
  done

(* --- resource management with nested cleanup (Figure 4) --- *)

let setup_tx_resources a =
  let mapping =
    a.env.Driver_env.downcall ~name:"dma_alloc_tx" ~bytes:16 (fun () ->
        K.Dma.alloc_coherent ~tag:"e1000-txring" (E.n_tx_desc * 16))
  in
  match mapping with
  | Some mapping ->
      a.resources.tx_alloc <- Some mapping;
      (* program the ring base the device will fetch from *)
      a.ka.O.k_tx.O.count <- E.n_tx_desc;
      wr32 a 0x3800 (* TDBAL *) (K.Dma.bus_addr mapping)
  | None -> throw Errors.enomem "tx descriptor ring"

let setup_rx_resources a =
  let mapping =
    a.env.Driver_env.downcall ~name:"dma_alloc_rx" ~bytes:16 (fun () ->
        K.Dma.alloc_coherent ~tag:"e1000-rxring" (E.n_rx_desc * 16))
  in
  match mapping with
  | Some mapping ->
      a.resources.rx_alloc <- Some mapping;
      a.ka.O.k_rx.O.count <- E.n_rx_desc;
      wr32 a 0x2800 (* RDBAL *) (K.Dma.bus_addr mapping)
  | None -> throw Errors.enomem "rx descriptor ring"

let free_tx_resources a =
  match a.resources.tx_alloc with
  | Some mapping ->
      a.env.Driver_env.downcall ~name:"dma_free_tx" ~bytes:16 (fun () ->
          K.Dma.free_coherent mapping);
      a.resources.tx_alloc <- None
  | None -> ()

let free_rx_resources a =
  match a.resources.rx_alloc with
  | Some mapping ->
      a.env.Driver_env.downcall ~name:"dma_free_rx" ~bytes:16 (fun () ->
          K.Dma.free_coherent mapping);
      a.resources.rx_alloc <- None
  | None -> ()

let request_irq a =
  a.env.Driver_env.downcall ~name:"request_irq" ~bytes:16 (fun () ->
      K.Irq.request_irq a.irq ~name:driver (fun () -> interrupt a))

(* Initial ITR from InterruptThrottleRate: 0 = off; 1/3 = dynamic
   (start unthrottled, adapt_itr widens under load); a literal rate
   becomes its fixed inter-interrupt interval. *)
let initial_itr p =
  match p.p_interrupt_throttle with
  | 0 | 1 | 3 -> 0
  | rate -> 1_000_000_000 / rate / 256

let e1000_up a =
  wr32 a E.reg_tctl E.tctl_en;
  wr32 a E.reg_rctl E.rctl_en;
  a.itr_reg <- initial_itr a.params;
  wr32 a E.reg_itr a.itr_reg;
  wr32 a E.reg_ims (E.icr_txdw lor E.icr_rxt0 lor E.icr_lsc);
  a.env.Driver_env.downcall ~name:"netif_start" ~bytes:16 (fun () ->
      match a.netdev with
      | Some nd ->
          K.Netcore.netif_wake_queue nd;
          K.Netcore.netif_carrier_on nd
      | None -> ())

let e1000_down a =
  wr32 a E.reg_imc 0xffff_ffff;
  wr32 a E.reg_tctl 0;
  wr32 a E.reg_rctl 0;
  a.env.Driver_env.downcall ~name:"netif_stop" ~bytes:16 (fun () ->
      match a.netdev with
      | Some nd ->
          K.Netcore.netif_stop_queue nd;
          K.Netcore.netif_carrier_off nd
      | None -> ())

(* The paper's Figure 4: nested handlers so each failure unwinds exactly
   the resources acquired before it. *)
let e1000_open_user a (j : O.java_adapter) =
  setup_tx_resources a;
  Errors.protect ~cleanup:(fun () -> free_tx_resources a) (fun () ->
      setup_rx_resources a;
      Errors.protect ~cleanup:(fun () -> free_rx_resources a) (fun () ->
          request_irq a;
          Errors.protect
            ~cleanup:(fun () ->
              a.env.Driver_env.downcall ~name:"free_irq" ~bytes:16 (fun () ->
                  K.Irq.free_irq a.irq))
            (fun () ->
              phy_setup a;
              e1000_up a;
              O.set_j_link_up j true;
              O.set_j_flags j (j.O.j_flags lor 1))))

let e1000_close_user a (j : O.java_adapter) =
  e1000_down a;
  a.env.Driver_env.downcall ~name:"free_irq" ~bytes:16 (fun () ->
      K.Irq.free_irq a.irq);
  free_rx_resources a;
  free_tx_resources a;
  O.set_j_flags j (j.O.j_flags land lnot 1)

(* Watchdog: runs every two seconds in the decaf driver (§3.1.3). *)
let watchdog_task a () =
  ignore
    (with_java_adapter a ~name:"e1000_watchdog" (fun j ->
         let status = rd32 a E.reg_status in
         O.set_j_link_up j (status land E.status_lu <> 0);
         O.bump_j_watchdog j));
  a.watchdog_runs <- a.watchdog_runs + 1

let arm_watchdog a =
  let timer =
    K.Timer.create ~name:"e1000-watchdog" (fun () ->
        (* timers run at high priority: defer so the work may block and
           therefore may cross to the decaf driver *)
        Decaf_runtime.Runtime.Nuclear.defer (watchdog_task a);
        match a.watchdog with
        | Some t -> K.Timer.mod_timer_in t watchdog_period_ns
        | None -> ())
  in
  a.watchdog <- Some timer;
  K.Timer.mod_timer_in timer watchdog_period_ns

let disarm_watchdog a =
  match a.watchdog with
  | Some t ->
      ignore (K.Timer.del_timer t);
      a.watchdog <- None
  | None -> ()

(* --- ethtool diagnostics: the functions that cannot move (§5) ---

   The interrupt-test waits for the interrupt handler to flip a flag in
   the adapter. The handler runs in the kernel and updates the KERNEL
   copy; a decaf-driver implementation polls its own marshaled copy,
   which nothing ever updates — the explicit data race that kept four
   ethtool functions in the driver nucleus. *)

let diag_test_adapter a =
  (* nucleus implementation: shares the kernel adapter with the irq
     handler, so the flag flip is visible *)
  O.set_k_link_up a.ka false;
  (* unmask and have the device raise a link-status-change interrupt *)
  K.Io.writel (reg a E.reg_ims) E.icr_lsc;
  K.Io.writel (reg a E.reg_ics) E.icr_lsc;
  let deadline = K.Clock.now () + 100_000_000 in
  let rec poll () =
    if a.ka.O.k_link_up then 0
    else if K.Clock.now () >= deadline then -Errors.etimedout
    else begin
      K.Sched.sleep_ns 1_000_000;
      poll ()
    end
  in
  poll ()

let diag_test_at_user_level_adapter a =
  (* the WRONG implementation: runs in the decaf driver against the
     marshaled copy of the adapter. The interrupt handler changes the
     kernel object; this copy stays stale and the wait times out. *)
  O.set_k_link_up a.ka false;
  with_java_adapter a ~name:"e1000_diag_test_wrong" (fun j ->
      K.Io.writel (reg a E.reg_ims) E.icr_lsc;
      K.Io.writel (reg a E.reg_ics) E.icr_lsc;
      let deadline = K.Clock.now () + 50_000_000 in
      let rec poll () =
        if j.O.j_link_up then 0
        else if K.Clock.now () >= deadline then -Errors.etimedout
        else begin
          Runtime.Helpers.msleep 1;
          poll ()
        end
      in
      poll ())

(* --- net_device ops --- *)

let net_ops a =
  {
    K.Netcore.ndo_open =
      (fun () ->
        let rc =
          with_java_adapter a ~name:"e1000_open" (fun j ->
              Errors.to_errno (fun () -> e1000_open_user a j))
        in
        if rc = 0 then begin
          arm_watchdog a;
          Ok ()
        end
        else Error rc);
    ndo_stop =
      (fun () ->
        disarm_watchdog a;
        Decaf_runtime.Runtime.Nuclear.flush ();
        (* deliver outstanding deferred notifications and ring slots
           before the close sync, so no deferred call outlives its
           device *)
        Decaf_xpc.Batch.drain ();
        Option.iter Decaf_xpc.Ring.drain a.xring;
        with_java_adapter a ~name:"e1000_close" (fun j ->
            e1000_close_user a j);
        Ok ());
    ndo_start_xmit = (fun skb -> start_xmit a skb);
    ndo_tx_timeout = (fun () -> ignore (clean_tx a));
  }

(* --- probe / remove --- *)

let probe env (pci : K.Pci.dev) =
  match Hashtbl.find_opt models (K.Pci.slot pci) with
  | None -> Error (-Errors.enodev)
  | Some model ->
      K.Pci.enable_device pci;
      K.Pci.set_master pci;
      let scope = Driver_env.scope_or env driver in
      let bar = K.Pci.bar pci 0 in
      let a =
        {
          env;
          scope;
          model;
          pci;
          mmio = bar.K.Pci.base;
          irq = K.Pci.irq pci;
          ka = O.fresh_kernel_adapter ();
          resources = { tx_alloc = None; rx_alloc = None };
          netdev = None;
          tx_tail = 0;
          tx_in_flight = 0;
          watchdog = None;
          watchdog_runs = 0;
          pkts_since_stats = 0;
          user_syncs = 0;
          params = default_params;
          itr_reg = 0;
          xring = None;
          lock = K.Sync.Combolock.create ~name:scope ();
        }
      in
      (* The shared ring exists for the life of the binding; its consumer
         runs in whichever domain the mode's notify target is. *)
      (match env.Driver_env.mode with
      | Driver_env.Native -> ()
      | Driver_env.Staged | Driver_env.Decaf ->
          let target =
            if env.Driver_env.mode = Driver_env.Decaf then
              Decaf_xpc.Domain.Decaf_driver
            else Decaf_xpc.Domain.Driver_lib
          in
          a.xring <-
            Some
              (Decaf_xpc.Ring.create ~name:scope ~target ~guard:O.ring_guard
                 ~resolve:O.ring_resolve
                 ~handler:(fun r ->
                   O.apply_ring_record r;
                   a.user_syncs <- a.user_syncs + 1)
                 ()));
      Runtime.Helpers.register_sizeof "e1000_adapter" 512;
      let rc =
        with_java_adapter a ~name:"e1000_probe" (fun j ->
            Errors.to_errno (fun () ->
                a.params <- snapshot_params (check_options ());
                reset_hw a;
                validate_eeprom a;
                let mac = read_mac_from_eeprom a in
                ignore mac;
                save_config_space a j;
                O.set_j_msg_enable j 7;
                a.env.Driver_env.downcall ~name:"register_netdev" ~bytes:64
                  (fun () ->
                    let nd =
                      K.Netcore.create ~name:(K.Netcore.alloc_name "eth") ~mtu:1500 (net_ops a) in
                    a.netdev <- Some nd;
                    K.Netcore.register_netdev nd)))
      in
      if rc = 0 then Ok a
      else begin
        Option.iter Decaf_xpc.Ring.destroy a.xring;
        a.xring <- None;
        Error rc
      end

let instances : (string, adapter) Hashtbl.t = Hashtbl.create 4

let remove (pci : K.Pci.dev) =
  (match Hashtbl.find_opt instances (K.Pci.slot pci) with
  | Some a -> (
      disarm_watchdog a;
      (* unbind (including surprise removal): whatever is still in the
         ring is dropped with count, never drained into a dead binding *)
      Option.iter Decaf_xpc.Ring.destroy a.xring;
      a.xring <- None;
      free_rx_resources a;
      free_tx_resources a;
      O.release_kernel_adapter a.ka;
      match a.netdev with
      | Some nd -> K.Netcore.unregister_netdev nd
      | None -> ())
  | None -> ());
  Hashtbl.remove instances (K.Pci.slot pci)

let active_box : t option ref = ref None
let active () = !active_box

(* One K.Modules load serves every instance: the module is refcounted
   and only really unloaded when its last binding goes away. The boot
   epoch tag invalidates a handle that survived a reboot. *)
type shared = {
  s_handle : K.Modules.handle;
  s_epoch : int;
  mutable s_refs : int;
}

let shared_box : shared option ref = ref None

let shared_live () =
  match !shared_box with
  | Some s when s.s_epoch = K.Boot.epoch () && K.Modules.is_loaded driver ->
      Some s
  | Some _ ->
      shared_box := None;
      None
  | None -> None

(* The PCI probe callback outlives any single insmod (it is registered
   once per module load), so the env and device filter for the binding
   currently being created travel through this box: only the probe the
   caller asked for claims a device; auto-probes of other matching
   devices on the bus are refused and left for their own bind. *)
let pending : (Driver_env.t * string option * adapter option ref) option ref =
  ref None

let pci_probe pci =
  match !pending with
  | Some (env, want, out)
    when !out = None
         && (match want with None -> true | Some s -> s = K.Pci.slot pci) -> (
      match probe env pci with
      | Ok a ->
          out := Some a;
          Hashtbl.replace instances (K.Pci.slot pci) a;
          Ok ()
      | Error rc -> Error rc)
  | _ -> Error (-Errors.enodev)

let insmod ?dev env =
  let out = ref None in
  pending := Some (env, dev, out);
  (* the box must not outlive this bind even when a supervised probe
     fault unwinds through here, or a later unrelated device add could
     claim a stale env *)
  Fun.protect ~finally:(fun () -> pending := None) @@ fun () ->
  let wrap s adapter =
    s.s_refs <- s.s_refs + 1;
    let t = { adapter; module_handle = Some s.s_handle } in
    (* [active] keeps meaning "the first instance": only a bare-scoped
       (singleton or registry-instance-0) bind claims the box *)
    if adapter.scope = driver && !active_box = None then active_box := Some t;
    Ok t
  in
  match shared_live () with
  | Some s -> (
      (* module already loaded: bind one more device to it *)
      K.Pci.rescan ?slot:dev ();
      match !out with
      | Some adapter -> wrap s adapter
      | None -> Error (-Errors.enodev))
  | None -> (
      let init () =
        (* a failed or faulting load must leave the PCI core clean so a
           supervisor retry can register the driver again *)
        let register () =
          K.Pci.register_driver ~name:driver
            ~ids:
              (List.map
                 (fun id -> { K.Pci.id_vendor = vendor_id; id_device = id })
                 device_ids)
            ~probe:pci_probe ~remove
        in
        (match register () with
        | () -> ()
        | exception e ->
            K.Pci.unregister_driver driver;
            raise e);
        match !out with
        | Some _ -> Ok ()
        | None ->
            K.Pci.unregister_driver driver;
            Error (-Errors.enodev)
      in
      let exit () = K.Pci.unregister_driver driver in
      match K.Modules.insmod ~name:driver ~init ~exit with
      | Ok handle -> (
          match !out with
          | Some adapter ->
              let s = { s_handle = handle; s_epoch = K.Boot.epoch (); s_refs = 0 } in
              shared_box := Some s;
              wrap s adapter
          | None -> Error (-Errors.enodev))
      | Error rc -> Error rc)

let rmmod t =
  (match t.module_handle with
  | Some h ->
      (match t.adapter.netdev with
      | Some nd when K.Netcore.is_up nd -> ignore (K.Netcore.stop_dev nd)
      | Some _ | None -> ());
      (* release this binding's device only; siblings keep running *)
      K.Pci.detach ~slot:(K.Pci.slot t.adapter.pci);
      t.module_handle <- None;
      (match shared_live () with
      | Some s when s.s_handle == h ->
          s.s_refs <- s.s_refs - 1;
          if s.s_refs <= 0 then begin
            K.Modules.rmmod h;
            shared_box := None;
            (* module parameters are insmod arguments: they must not
               survive the module. A later insmod with no explicit
               params gets the defaults, not whatever the previous load
               was given. *)
            reset_module_params ()
          end
      | _ -> ())
  | None -> ());
  match !active_box with Some t' when t' == t -> active_box := None | _ -> ()

(* --- power management (§3.1.3: suspend/resume run in the decaf
   driver, like any other non-critical path) --- *)

let suspend t =
  let a = t.adapter in
  disarm_watchdog a;
  Decaf_runtime.Runtime.Nuclear.flush ();
  with_java_adapter a ~name:"e1000_suspend" (fun j ->
      e1000_down a;
      (* snapshot config space so resume can reprogram the function
         even if the bus power-cycled it *)
      save_config_space a j)

let resume t =
  let a = t.adapter in
  (* the user-level view may be arbitrarily stale (deltas were flushed
     at suspend, nothing synced since): re-mark every copy-in field so
     the resume crossing carries a full image *)
  O.resync_user_view a.ka;
  with_java_adapter a ~name:"e1000_resume" (fun j ->
      for i = 0 to O.config_words - 1 do
        a.env.Driver_env.downcall ~name:"pci_write_config" ~bytes:8 (fun () ->
            K.Pci.write_config32 a.pci (4 * i) j.O.j_config_space.(i))
      done;
      match a.netdev with
      | Some nd when K.Netcore.is_up nd -> e1000_up a
      | Some _ | None -> ());
  match a.netdev with
  | Some nd when K.Netcore.is_up nd -> arm_watchdog a
  | Some _ | None -> ()

let init_latency_ns t =
  match t.module_handle with Some h -> K.Modules.init_latency_ns h | None -> 0

let netdev t =
  match t.adapter.netdev with
  | Some nd -> nd
  | None -> K.Panic.bug "e1000: no netdev"

let diag_test t = diag_test_adapter t.adapter
let diag_test_at_user_level t = diag_test_at_user_level_adapter t.adapter
let watchdog_runs t = t.adapter.watchdog_runs
let kernel_adapter t = t.adapter.ka
let user_stat_syncs t = t.adapter.user_syncs
let params t = t.adapter.params

(* Fleet access: a binding made through the registry has no [t] in the
   caller's hands; the netdev is looked up by the PCI slot it claimed. *)
let netdev_at ~slot =
  match Hashtbl.find_opt instances slot with
  | Some a -> a.netdev
  | None -> None

module Core = struct
  type nonrec t = t

  let name = driver
  let bus = K.Hotplug.Pci
  let ids = List.map (fun id -> (vendor_id, id)) device_ids
  let probe env ~dev = insmod ?dev env
  let remove = rmmod
  let suspend = suspend
  let resume = resume
  let owns t slot = K.Pci.slot t.adapter.pci = slot
  let deferred_syncs = user_stat_syncs
  let init_latency_ns = init_latency_ns
end
