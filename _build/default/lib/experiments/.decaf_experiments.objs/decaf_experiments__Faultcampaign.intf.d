lib/experiments/faultcampaign.mli:
