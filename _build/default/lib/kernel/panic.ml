exception Kernel_bug of string

let bug fmt = Format.kasprintf (fun msg -> raise (Kernel_bug msg)) fmt
let bug_on cond msg = if cond then raise (Kernel_bug msg)
