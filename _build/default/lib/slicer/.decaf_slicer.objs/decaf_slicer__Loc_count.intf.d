lib/slicer/loc_count.mli:
