lib/kernel/klog.ml: Format List Printf Queue
