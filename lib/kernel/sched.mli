(** Cooperative kernel threads over OCaml effects.

    The simulated machine has one CPU. Threads run until they block
    ({!suspend}, {!sleep_ns}) or {!yield}; when no thread is runnable the
    scheduler idles the CPU forward to the next {!Clock} event. Interrupt
    handlers are not threads — they run inline from clock events with
    {!in_interrupt} set and must never block. *)

type thread

exception Would_block_in_atomic of string
(** Raised when code attempts to block inside an interrupt handler or
    while holding a spinlock — the bug class the paper's combolocks and
    deferral techniques exist to avoid. *)

val spawn : ?name:string -> (unit -> unit) -> thread
(** Create a runnable thread. Uncaught exceptions from the thread body
    abort the simulation run. *)

val current_name : unit -> string
(** Name of the running thread, or ["<cpu>"] outside any thread. *)

val current_tid : unit -> int
(** Id of the running thread, stable across suspensions; [0] outside any
    thread. Lets per-thread state (e.g. {!Decaf_xpc.Dispatch} lane
    bindings) survive interleavings of blocking green threads. *)

val yield : unit -> unit
(** Let other runnable threads execute. *)

val suspend : register:((unit -> unit) -> unit) -> unit
(** Block the current thread. [register] receives the wakeup function to
    stash wherever the sleeper waits (a wait queue, a timer, ...); calling
    it makes the thread runnable again. Calling the wakeup more than once
    is harmless. *)

val sleep_ns : int -> unit
(** Block for the given virtual duration. *)

val in_interrupt : unit -> bool
(** Whether the CPU is currently executing an interrupt handler. *)

val enter_interrupt : unit -> unit
(** Mark interrupt-handler entry (used by {!Irq} and {!Timer}). *)

val exit_interrupt : unit -> unit

val set_irq_window_hook : (unit -> unit) -> unit
(** Register the callback run whenever the CPU becomes able to take an
    interrupt again (leaves interrupt context with irqs unmasked, or
    unmasks with no handler running). {!Irq} hangs its blocked-line
    backlog drain here, so pending lines are delivered the moment a
    window opens instead of polling for one. *)

val spin_depth : unit -> int
(** Number of spinlocks held on this CPU; blocking is forbidden when
    non-zero. *)

val local_irq_save : unit -> unit
(** Mask interrupt delivery on this CPU (counting). *)

val local_irq_restore : unit -> unit

val irqs_masked : unit -> bool

val spin_acquire : unit -> unit

val spin_release : unit -> unit

val assert_may_block : string -> unit
(** Raise {!Would_block_in_atomic} if called in interrupt context or with
    a spinlock held. *)

val thread_name : thread -> string
val thread_tid : thread -> int

type choice = Run_thread of thread | Advance_clock
(** One option at a scheduling decision point: dispatch a runnable
    thread, or advance the virtual clock to its next event (delivering
    timers and interrupt retries). *)

val set_controller : (choice array -> int) -> unit
(** Route every scheduling decision through the given function. At each
    iteration of {!run} it is shown the runnable threads in queue
    arrival order, plus {!Advance_clock} as the last element whenever
    the event queue is nonempty, and returns the index of the choice to
    take; index 0 reproduces the uncontrolled FIFO schedule, a negative
    return aborts the run. Installed by the systematic-exploration
    harness ({!Decaf_check}); survives {!reset} so it keeps steering
    across the per-execution reboot. *)

val clear_controller : unit -> unit

val run : ?until_ns:int -> unit -> unit
(** Run the simulation: execute runnable threads, idling the clock forward
    when none are runnable, until there is nothing left to do or the clock
    passes [until_ns]. *)

val runnable_count : unit -> int
(** Number of threads currently queued to run. *)

val reset : unit -> unit
(** Discard all threads and context flags (reboot). *)
