(** Concurrent XPC dispatch: a pool of N virtual runtime workers per
    user-level domain.

    The decaf driver and the driver library are multi-threaded runtimes
    (the paper's combolocks exist for exactly this reason), but a single
    simulated CPU executes one upcall's code at a time. This module
    separates the two concerns:

    - {b Slot admission} is real scheduling: at most N crossings execute
      in a user domain concurrently. Excess callers block on a wait
      queue ({!Decaf_kernel.Sched}-level suspend), except in atomic
      context, where blocking is forbidden and the pool oversubscribes
      (counted as [forced]).
    - {b Lane accounting} is the latency model: every crossing's
      nanosecond charges — crossing entry/exit, marshaling, object
      tracker lookups, combolock waits (via
      {!Decaf_kernel.Sync.Combolock.set_wait_observer}) — accumulate in
      the serving worker's lane. Independent upcalls land on independent
      lanes, so the pool's contribution to wall-clock time is the
      busiest lane ({!overhead_ns}), which shrinks as workers are added
      while the total work stays constant. Calls that touch the same
      shared object still serialize through that object's combolock, and
      the wait shows up in the blocked worker's lane.

    Pools are tagged with the boot epoch and dropped on reboot. With the
    default [workers = 1] the admission gate reproduces the historical
    "a user-level runtime services one XPC at a time" behaviour. *)

type pool_stats = {
  domain : Domain.t;
  workers : int;
  admissions : int;  (** upcalls admitted to the pool *)
  blocked_acquires : int;  (** admissions that waited for a free worker *)
  forced : int;  (** atomic-context admissions that oversubscribed *)
  queue_wait_ns : int;  (** virtual ns spent waiting for a worker *)
  lane_busy_ns : int array;  (** per-lane accumulated charge *)
  lane_served : int array;  (** per-lane upcalls served *)
  critical_path_ns : int;  (** busiest lane: the pool's wall-clock cost *)
}

val set_workers : int -> unit
(** Set the worker-pool width for user domains (clamped to >= 1).
    Existing pools are re-created at the new width on next use. *)

val workers : unit -> int

val with_worker : target:Domain.t -> (unit -> 'a) -> 'a
(** Run [f] on a worker of [target]'s pool. Identity for kernel targets.
    Charges {!Decaf_kernel.Cost.t.xpc_dispatch_ns} to the chosen lane.
    Re-entrant: a nested crossing into the domain the current thread is
    already serving stays on its lane instead of deadlocking. *)

val note : int -> unit
(** Charge [ns] to the lane serving the current crossing; no-op outside
    a crossing. Called by {!Channel} and {!Objtracker} for every cost
    they put on the global clock. *)

val overhead_ns : unit -> int
(** Critical-path dispatch overhead: the busiest lane of every pool,
    summed across pools. Workloads fold this into their virtual-time
    throughput budget. *)

val pool_stats : unit -> pool_stats list
val reset : unit -> unit
(** Forget all pools and restore [workers = 1]. Called from
    [Scenario.boot]. *)
