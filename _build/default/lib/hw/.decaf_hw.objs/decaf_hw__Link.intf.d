lib/hw/link.mli:
