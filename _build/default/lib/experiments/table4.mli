(** Table 4: driver evolution — lines changed in each component when the
    E1000 patch corpus (2.6.18.1 → 2.6.27, scaled) is applied. *)

type t = Decaf_drivers.E1000_evolution.summary

val measure : unit -> t
val render : t -> string
