(** Coherent DMA mappings: the [dma_alloc_coherent] interface drivers use
    for descriptor rings. A mapping couples a tracked kernel allocation
    with the bus address the device sees; leak accounting rides on
    {!Kmem}. *)

type mapping

val alloc_coherent : tag:string -> int -> mapping option
(** Allocate [bytes] of DMA-coherent memory; [None] under Kmem failure
    injection. Must be called from process context. *)

val free_coherent : mapping -> unit
val bus_addr : mapping -> int
(** The address programmed into the device's base-address registers. *)

val size : mapping -> int
val active_mappings : unit -> int
val reset : unit -> unit
