lib/kernel/usbcore.mli: Bytes
