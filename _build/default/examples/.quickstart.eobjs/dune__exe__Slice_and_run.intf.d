examples/slice_and_run.mli:
