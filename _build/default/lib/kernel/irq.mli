(** The interrupt controller of the simulated machine.

    Interrupt handlers run at high priority: they execute inline from
    clock events with {!Sched.in_interrupt} set and must not block. The
    nuclear runtime uses {!disable_irq} to keep a device from interrupting
    its own driver while the decaf driver runs (§3.1.3). *)

val nr_irqs : int

val request_irq : int -> name:string -> (unit -> unit) -> unit
(** Install the handler for a line. Raises {!Panic.Kernel_bug} if the line
    is out of range or already claimed. *)

val free_irq : int -> unit

val raise_irq : int -> unit
(** Assert the line from a device model. Delivery is immediate unless the
    line is disabled, the CPU has interrupts masked, or another handler is
    running; a pending assertion is delivered as soon as possible and
    multiple assertions while pending coalesce (level-triggered). *)

val disable_irq : int -> unit
(** Disable delivery on the line (counting). *)

val enable_irq : int -> unit

val run_at_high_priority : (unit -> unit) -> unit
(** Run [f] in interrupt context as soon as the CPU allows (used by kernel
    timers, which fire at high priority). *)

val delivered : int -> int
(** Number of interrupts delivered on the line so far. *)

val spurious : unit -> int
(** Interrupts raised on lines with no handler. *)

val reset : unit -> unit
