examples/evolution_demo.mli:
