(** The PCI bus: device enumeration, config space, and driver binding. *)

type bar_kind = Port_bar | Mmio_bar

type bar = { kind : bar_kind; base : int; len : int }

type dev
(** A PCI function plugged into the simulated bus. *)

type id = { id_vendor : int; id_device : int }

val make_dev :
  slot:string ->
  vendor:int ->
  device:int ->
  ?class_code:int ->
  ?subsystem:int * int ->
  irq_line:int ->
  bars:bar list ->
  unit ->
  dev

val add_device : dev -> unit
(** Plug the device in; a matching registered driver is probed
    immediately. *)

val remove_device : dev -> unit
(** Unplug; the bound driver's [remove] runs first. *)

val register_driver :
  name:string ->
  ids:id list ->
  probe:(dev -> (unit, int) result) ->
  remove:(dev -> unit) ->
  unit
(** Register a driver; it is probed against every unbound device already
    on the bus. A probe returning [Error errno] leaves the device
    unbound. *)

val rescan : ?slot:string -> unit -> unit
(** Probe every registered driver against every still-unbound device —
    how a driver module already on the bus binds one more device
    (multi-instance insmod). [slot] restricts the scan to one device. *)

val detach : slot:string -> unit
(** Unbind (calling the driver's [remove]) the device in [slot] without
    unplugging it — the per-instance rmmod path. No-op when the slot is
    empty or unbound. *)

val unregister_driver : string -> unit
(** Unbind (calling [remove]) from every device bound to the driver. *)

val slot : dev -> string
val vendor : dev -> int
val device_id : dev -> int
val irq : dev -> int
val bar : dev -> int -> bar
val bound_driver : dev -> string option

val enable_device : dev -> unit
val disable_device : dev -> unit
val is_enabled : dev -> bool
val set_master : dev -> unit
val is_master : dev -> bool

val read_config8 : dev -> int -> int
val read_config16 : dev -> int -> int
val read_config32 : dev -> int -> int
val write_config8 : dev -> int -> int -> unit
val write_config16 : dev -> int -> int -> unit
val write_config32 : dev -> int -> int -> unit

val config_space_words : dev -> int array
(** The 64 dwords of config space — the [config_space] array the E1000
    driver saves and restores, marshaled across domains in the paper's
    Figure 3. *)

val devices : unit -> dev list
val reset : unit -> unit
