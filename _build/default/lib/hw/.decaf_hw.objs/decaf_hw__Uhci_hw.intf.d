lib/hw/uhci_hw.mli: Decaf_kernel
