lib/slicer/errcheck.ml: Decaf_minic Hashtbl List Loc_count Option Set String
