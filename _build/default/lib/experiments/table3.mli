(** Table 3: performance of Decaf Drivers on common workloads.

    For each driver and workload, runs the native (all-kernel) and decaf
    builds in the simulator and reports: relative performance, CPU
    utilization in both modes, module-initialization latency in both
    modes, and the number of kernel/user crossings during
    initialization. *)

type measurement = {
  perf : float;  (** workload-specific figure of merit (higher = better) *)
  cpu : float;  (** CPU utilization, 0..1 *)
  init_ns : int;  (** insmod + interface-up latency *)
  init_crossings : int;  (** kernel/user round trips during init *)
}

type row = {
  driver : string;
  workload : string;
  perf_unit : string;
  native : measurement;
  decaf : measurement;
}

val relative_performance : row -> float
(** decaf perf / native perf. *)

val measure : ?duration_ns:int -> unit -> row list
(** Default duration: 2 virtual seconds of steady-state workload per
    cell. *)

val render : row list -> string
