module Ast = Decaf_minic.Ast
module Loc = Decaf_minic.Loc
module Sset = Set.Make (String)

type violation_kind = Ignored_return | Unchecked_variable of string

type violation = {
  v_function : string;
  v_callee : string;
  v_kind : violation_kind;
  v_line : int;
}

(* Does the function body contain [return -CONST]? *)
let returns_negative_constant (fn : Ast.func) =
  let rec in_stmt (s : Ast.stmt) =
    match s.Ast.skind with
    | Sreturn (Some (Ast.Econst n)) -> n < 0
    | Sreturn (Some (Ast.Eunop (Ast.Neg, Ast.Econst n))) -> n > 0
    | Sreturn _ | Sexpr _ | Sdecl _ | Sgoto _ | Slabel _ | Sbreak | Scontinue ->
        false
    | Sif (_, a, b) -> List.exists in_stmt a || List.exists in_stmt b
    | Swhile (_, b) | Sblock b -> List.exists in_stmt b
    | Sdo (b, _) -> List.exists in_stmt b
    | Sfor (i, _, _, b) ->
        (match i with Some s -> in_stmt s | None -> false)
        || List.exists in_stmt b
    | Sswitch (_, cases) ->
        List.exists
          (function
            | Ast.Case (_, body) | Ast.Default body -> List.exists in_stmt body)
          cases
  in
  List.exists in_stmt fn.Ast.fbody

(* Direct callees whose value can escape through this function's return:
   either [return f(...)] directly, or [v = f(...); ... return v]. *)
let propagates_call_of (fn : Ast.func) =
  let direct = ref Sset.empty in
  let assigned_from : (string, Sset.t) Hashtbl.t = Hashtbl.create 8 in
  let returned_vars = ref Sset.empty in
  let note_assign var callee =
    let prev =
      Option.value ~default:Sset.empty (Hashtbl.find_opt assigned_from var)
    in
    Hashtbl.replace assigned_from var (Sset.add callee prev)
  in
  let rec in_stmt (s : Ast.stmt) =
    match s.Ast.skind with
    | Sreturn (Some (Ast.Ecall (Ast.Eident callee, _))) ->
        direct := Sset.add callee !direct
    | Sreturn (Some (Ast.Eident v)) -> returned_vars := Sset.add v !returned_vars
    | Sexpr (Ast.Eassign (None, Ast.Eident v, Ast.Ecall (Ast.Eident callee, _)))
    | Sdecl (_, v, Some (Ast.Ecall (Ast.Eident callee, _))) ->
        note_assign v callee
    | Sif (_, a, b) ->
        List.iter in_stmt a;
        List.iter in_stmt b
    | Swhile (_, b) | Sblock b -> List.iter in_stmt b
    | Sdo (b, _) -> List.iter in_stmt b
    | Sfor (i, _, _, b) ->
        Option.iter in_stmt i;
        List.iter in_stmt b
    | Sswitch (_, cases) ->
        List.iter
          (function
            | Ast.Case (_, body) | Ast.Default body -> List.iter in_stmt body)
          cases
    | Sreturn _ | Sexpr _ | Sdecl _ | Sgoto _ | Slabel _ | Sbreak | Scontinue
      ->
        ()
  in
  List.iter in_stmt fn.Ast.fbody;
  Sset.fold
    (fun var acc ->
      match Hashtbl.find_opt assigned_from var with
      | Some callees -> Sset.union callees acc
      | None -> acc)
    !returned_vars !direct

let error_returning_functions (file : Ast.file) ~extra =
  let funcs = Ast.functions file in
  let base =
    List.fold_left
      (fun acc fn ->
        if returns_negative_constant fn then Sset.add fn.Ast.fname acc else acc)
      (Sset.of_list extra) funcs
  in
  (* propagate to fixpoint: a function returning an error-returning
     function's result is itself error-returning *)
  let rec fixpoint known =
    let next =
      List.fold_left
        (fun acc fn ->
          if Sset.mem fn.Ast.fname acc then acc
          else if not (Sset.is_empty (Sset.inter (propagates_call_of fn) acc))
          then Sset.add fn.Ast.fname acc
          else acc)
        known funcs
    in
    if Sset.cardinal next = Sset.cardinal known then known else fixpoint next
  in
  Sset.elements (fixpoint base)

(* Flatten a body into a linear statement sequence (approximating control
   flow for the never-read-after analysis). *)
let rec flatten (stmts : Ast.stmt list) =
  List.concat_map
    (fun (s : Ast.stmt) ->
      s
      ::
      (match s.Ast.skind with
      | Sif (_, a, b) -> flatten a @ flatten b
      | Swhile (_, b) | Sblock b -> flatten b
      | Sdo (b, _) -> flatten b
      | Sfor (i, _, _, b) ->
          (match i with Some s -> [ s ] | None -> []) @ flatten b
      | Sswitch (_, cases) ->
          List.concat_map
            (function
              | Ast.Case (_, body) | Ast.Default body -> flatten body)
            cases
      | Sexpr _ | Sdecl _ | Sreturn _ | Sgoto _ | Slabel _ | Sbreak
      | Scontinue ->
          []))
    stmts

let expr_mentions var e =
  Ast.fold_expr
    (fun acc e -> acc || match e with Ast.Eident x -> x = var | _ -> false)
    false e

let stmt_mentions var (s : Ast.stmt) =
  match s.Ast.skind with
  | Sexpr e | Sdecl (_, _, Some e) | Sreturn (Some e) -> expr_mentions var e
  | Sif (c, _, _) | Swhile (c, _) | Sdo (_, c) -> expr_mentions var c
  | Sfor (_, c, u, _) ->
      (match c with Some e -> expr_mentions var e | None -> false)
      || (match u with Some e -> expr_mentions var e | None -> false)
  | Sswitch (c, _) -> expr_mentions var c
  | Sblock _ (* children appear separately in the flattened sequence *)
  | Sdecl (_, _, None)
  | Sreturn None | Sgoto _ | Slabel _ | Sbreak | Scontinue ->
      false

let find_violations (file : Ast.file) ~extra =
  let errfns = Sset.of_list (error_returning_functions file ~extra) in
  let check_function (fn : Ast.func) =
    let linear = flatten fn.Ast.fbody in
    let rec scan acc = function
      | [] -> acc
      | (s : Ast.stmt) :: rest -> (
          match s.Ast.skind with
          (* bare call to an error-returning function *)
          | Sexpr (Ast.Ecall (Ast.Eident callee, _)) when Sset.mem callee errfns
            ->
              scan
                ({
                   v_function = fn.Ast.fname;
                   v_callee = callee;
                   v_kind = Ignored_return;
                   v_line = s.Ast.sloc.Loc.line;
                 }
                :: acc)
                rest
          (* result stored but never read afterwards *)
          | Sexpr (Ast.Eassign (None, Ast.Eident var, Ast.Ecall (Ast.Eident callee, _)))
          | Sdecl (_, var, Some (Ast.Ecall (Ast.Eident callee, _)))
            when Sset.mem callee errfns ->
              if List.exists (stmt_mentions var) rest then scan acc rest
              else
                scan
                  ({
                     v_function = fn.Ast.fname;
                     v_callee = callee;
                     v_kind = Unchecked_variable var;
                     v_line = s.Ast.sloc.Loc.line;
                   }
                  :: acc)
                  rest
          | _ -> scan acc rest)
    in
    scan [] linear |> List.rev
  in
  List.concat_map check_function (Ast.functions file)

(* [if (v) return v;], [if (v) return -C;], [if (v) goto l;] — the pure
   propagation shapes an exception rewrite deletes. *)
let is_propagation (s : Ast.stmt) =
  match s.Ast.skind with
  | Sif (Ast.Eident v, [ { Ast.skind = Sreturn (Some (Ast.Eident v')); _ } ], [])
    ->
      v = v'
  | Sif (Ast.Eident _, [ { Ast.skind = Sreturn (Some (Ast.Econst _)); _ } ], [])
  | Sif
      ( Ast.Eident _,
        [ { Ast.skind = Sreturn (Some (Ast.Eunop (Ast.Neg, Ast.Econst _))); _ } ],
        [] )
  | Sif (Ast.Eident _, [ { Ast.skind = Sgoto _; _ } ], []) ->
      true
  | _ -> false

let propagation_sites (fn : Ast.func) =
  List.length (List.filter is_propagation (flatten fn.Ast.fbody))

let func_loc source (fn : Ast.func) =
  Loc_count.count_range Loc_count.C source ~first:fn.Ast.floc_start.Loc.line
    ~last:fn.Ast.floc_end.Loc.line

let exception_savings (file : Ast.file) ~funcs =
  List.fold_left
    (fun (removed, total) name ->
      match Ast.find_function file name with
      | Some fn ->
          (removed + propagation_sites fn, total + func_loc file.Ast.source fn)
      | None -> (removed, total))
    (0, 0) funcs
