test/test_experiments.ml: Alcotest Decaf_drivers Decaf_experiments Decaf_slicer Float List Printf String Testutil
