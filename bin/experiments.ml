(* Regenerate the paper's entire evaluation: Tables 1-4, the section
   5.1 case study, and the two robustness campaigns, in order. With
   arguments, run only the named sections (e.g. `experiments table3
   campaign-malicious`). *)

module E = Decaf_experiments

let sections =
  [
    ("table1", fun () -> E.Table1.render (E.Table1.measure ()));
    ("table2", fun () -> E.Table2.render (E.Table2.measure ()));
    ("table3", fun () -> E.Table3.render (E.Table3.measure ()));
    ("table4", fun () -> E.Table4.render (E.Table4.measure ()));
    ("casestudy", fun () -> E.Casestudy.render (E.Casestudy.measure ()));
    ("campaign", fun () -> E.Faultcampaign.render (E.Faultcampaign.run ()));
    ( "campaign-malicious",
      fun () -> E.Maliciouscampaign.render (E.Maliciouscampaign.run ()) );
  ]

let () =
  let requested =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> List.map fst sections
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n sections) then begin
              Printf.eprintf "unknown section %S; known: %s\n" n
                (String.concat ", " (List.map fst sections));
              exit 2
            end)
          names;
        names
  in
  print_endline "Decaf Drivers: evaluation";
  print_endline "=========================";
  List.iter
    (fun name ->
      print_newline ();
      print_string ((List.assoc name sections) ()))
    requested
