(* Tests for the decaf runtime: error discipline, Jeannie bridge, helper
   routines, parameter-checker classes, and the nuclear deferral worker. *)

open Decaf_runtime
module K = Decaf_kernel
module Xpc = Decaf_xpc

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot () =
  K.Boot.boot ();
  Xpc.Domain.reset ();
  Xpc.Channel.reset_stats ();
  Runtime.reset ()

(* --- Errors --- *)

let test_errors_check_and_to_errno () =
  Errors.check ~driver:"t" ~context:"fine" 0;
  Errors.check ~driver:"t" ~context:"fine" 7;
  check "success maps to 0" 0 (Errors.to_errno (fun () -> ()));
  check "Hw_error maps to -errno" (-Errors.eio)
    (Errors.to_errno (fun () ->
         Errors.check ~driver:"t" ~context:"io" (-Errors.eio)));
  match Errors.to_result (fun () -> 42) with
  | Ok v -> check "ok result" 42 v
  | Error _ -> Alcotest.fail "expected Ok"

let test_errors_protect_runs_cleanup_only_on_failure () =
  let cleanups = ref 0 in
  let v =
    Errors.protect ~cleanup:(fun () -> incr cleanups) (fun () -> 10)
  in
  check "value through" 10 v;
  check "no cleanup on success" 0 !cleanups;
  (try
     Errors.protect ~cleanup:(fun () -> incr cleanups) (fun () ->
         Errors.throw ~driver:"t" ~errno:Errors.enomem "alloc")
   with Errors.Hw_error _ -> ());
  check "cleanup ran once on failure" 1 !cleanups

let test_errors_protect_nests_in_order () =
  (* the Figure 4 shape: inner cleanups run before outer ones *)
  let order = ref [] in
  let note tag () = order := tag :: !order in
  (try
     Errors.protect ~cleanup:(note "outer") (fun () ->
         Errors.protect ~cleanup:(note "inner") (fun () ->
             Errors.throw ~driver:"t" ~errno:Errors.eio "deep"))
   with Errors.Hw_error _ -> ());
  Alcotest.(check (list string)) "inner unwinds first" [ "outer"; "inner" ] !order

(* --- Jeannie --- *)

let test_jeannie_direct_switches_domain () =
  boot ();
  Xpc.Domain.with_domain Xpc.Domain.Decaf_driver (fun () ->
      let d =
        Jeannie.direct (fun () -> Xpc.Domain.to_string (Xpc.Domain.current ()))
      in
      Alcotest.(check string) "ran in the driver library" "driver-library" d);
  check "counted" 1 (Jeannie.direct_call_count ());
  check "direct calls are not XPC" 0 (Xpc.Channel.stats ()).Xpc.Channel.c_java_calls

let test_jeannie_via_xpc_counts () =
  boot ();
  Xpc.Domain.with_domain Xpc.Domain.Decaf_driver (fun () ->
      ignore (Jeannie.via_xpc ~bytes:64 (fun () -> ())));
  check "one C/Java crossing" 1 (Xpc.Channel.stats ()).Xpc.Channel.c_java_calls

(* --- Runtime helpers --- *)

let test_runtime_start_once () =
  boot ();
  check_bool "not started" false (Runtime.started ());
  Runtime.start ();
  let t1 = K.Clock.now () in
  check_bool "startup cost charged" true (t1 >= K.Cost.current.jvm_startup_ns);
  Runtime.start ();
  check "second start free" t1 (K.Clock.now ())

let test_runtime_sizeof_registry () =
  boot ();
  Runtime.Helpers.register_sizeof "e1000_adapter" 512;
  check "sizeof" 512 (Runtime.Helpers.sizeof "e1000_adapter");
  check_bool "unknown sizeof is a bug" true
    (try
       ignore (Runtime.Helpers.sizeof "nope");
       false
     with K.Panic.Kernel_bug _ -> true)

let test_runtime_port_helpers_do_io () =
  boot ();
  let last = ref (-1) in
  let r =
    K.Io.register_ports ~base:0x100 ~len:4
      ~read:(fun _ _ -> 0x5a)
      ~write:(fun _ _ v -> last := v)
  in
  Runtime.Helpers.outb 0x100 0x77;
  check "write reached the device" 0x77 !last;
  check "read returns device data" 0x5a (Runtime.Helpers.inb 0x100);
  K.Io.release r

(* --- Params (the e1000_param.c rewrite of section 5.1) --- *)

let test_params_range () =
  boot ();
  let c = new Params.range_checker ~name:"TxDescriptors" ~default:256 ~min:80 ~max:4096 in
  let ok = c#check 512 in
  check "legal kept" 512 ok.Params.value;
  check_bool "not adjusted" false ok.Params.adjusted;
  let bad = c#check 7 in
  check "illegal replaced by default" 256 bad.Params.value;
  check_bool "adjusted" true bad.Params.adjusted;
  check_bool "warning logged" true (K.Klog.count K.Klog.Warning >= 1)

let test_params_set_membership () =
  boot ();
  let c =
    new Params.set_checker ~name:"ITR" ~default:3 ~allowed:[ 0; 1; 3; 8000 ]
  in
  check "member kept" 8000 (c#check 8000).Params.value;
  check "non-member replaced" 3 (c#check 17).Params.value

let test_params_polymorphic_check_all () =
  boot ();
  let results =
    Params.check_all
      [
        (new Params.flag_checker ~name:"flag" ~default:0, 1);
        (new Params.range_checker ~name:"r" ~default:5 ~min:0 ~max:10, 99);
        (new Params.set_checker ~name:"s" ~default:2 ~allowed:[ 2; 4 ], 4);
      ]
  in
  Alcotest.(check (list string))
    "names in order" [ "flag"; "r"; "s" ]
    (List.map fst results);
  Alcotest.(check (list bool))
    "adjustment flags" [ false; true; false ]
    (List.map (fun (_, o) -> o.Params.adjusted) results)

(* --- Nuclear deferral --- *)

let test_nuclear_defer_and_flush () =
  boot ();
  let ran = ref 0 in
  ignore
    (K.Sched.spawn (fun () ->
         Runtime.Nuclear.defer (fun () ->
             K.Sched.sleep_ns 1_000;
             incr ran);
         Runtime.Nuclear.defer (fun () -> incr ran);
         Runtime.Nuclear.flush ();
         check "both ran before flush returned" 2 !ran));
  K.Sched.run ();
  check "deferred count" 2 (Runtime.Nuclear.deferred_count ())

(* --- e1000 uses the checkers at probe time --- *)

let test_e1000_validates_module_params () =
  boot ();
  Decaf_drivers.E1000_drv.reset_module_params ();
  Decaf_drivers.E1000_drv.set_module_params ~tx_descriptors:7
    ~interrupt_throttle:12345 ();
  let link = Decaf_hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (Decaf_drivers.E1000_drv.setup_device ~slot:"00:05.0"
       ~mmio_base:0xf000_0000 ~irq:11 ~mac:"\x00\x1b\x21\x0a\x0b\x0c" ~link ());
  ignore
    (K.Sched.spawn (fun () ->
         match Decaf_drivers.E1000_drv.insmod (Decaf_drivers.Driver_env.decaf ()) with
         | Ok t -> Decaf_drivers.E1000_drv.rmmod t
         | Error rc -> Alcotest.failf "insmod: %d" rc));
  K.Sched.run ();
  let checked = !Decaf_drivers.E1000_drv.checked_params in
  let outcome name = List.assoc name checked in
  check "bad TxDescriptors clamped to default" 256 (outcome "TxDescriptors").Params.value;
  check_bool "adjusted" true (outcome "TxDescriptors").Params.adjusted;
  check "bad throttle rate clamped" 3 (outcome "InterruptThrottleRate").Params.value;
  check_bool "legal flag kept" false (outcome "SmartPowerDownEnable").Params.adjusted;
  Decaf_drivers.E1000_drv.reset_module_params ()

(* --- Errors.with_retry --- *)

let in_thread f =
  let r = ref None in
  ignore (K.Sched.spawn (fun () -> r := Some (f ())));
  K.Sched.run ();
  match !r with Some v -> v | None -> Alcotest.fail "thread did not complete"

let test_with_retry_eventually_succeeds () =
  boot ();
  let calls = ref 0 in
  let result =
    in_thread (fun () ->
        Errors.with_retry ~attempts:3 ~backoff_ns:1_000 (fun () ->
            incr calls;
            if !calls < 3 then Errors.throw ~driver:"t" ~errno:Errors.eio "flaky";
            !calls * 10))
  in
  check "third try succeeded" 30 result;
  check "three calls" 3 !calls

let test_with_retry_exhausts () =
  boot ();
  let calls = ref 0 in
  let raised =
    in_thread (fun () ->
        try
          ignore
            (Errors.with_retry ~attempts:3 ~backoff_ns:1_000 (fun () ->
                 incr calls;
                 Errors.throw ~driver:"t" ~errno:Errors.eio "dead"));
          false
        with Errors.Hw_error { errno; _ } -> errno = Errors.eio)
  in
  check "stopped after three attempts" 3 !calls;
  check_bool "original error surfaced" true raised

let test_with_retry_rejects_bad_args () =
  check_bool "attempts must be positive" true
    (try
       ignore (Errors.with_retry ~attempts:0 ~backoff_ns:1 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

(* --- Supervisor --- *)

let test_supervisor_passthrough () =
  boot ();
  let sup = Supervisor.create ~name:"t" () in
  let v =
    in_thread (fun () ->
        Supervisor.run sup ~on_restart:(fun () -> ()) (fun () -> 42))
  in
  check_bool "value passed through" true (v = Some 42);
  check "nothing detected" 0 (Supervisor.stats sup).Supervisor.detected;
  check_bool "still running" true (Supervisor.state sup = Supervisor.Running)

let test_supervisor_recovers () =
  boot ();
  let sup = Supervisor.create ~name:"t" ~restart_delay_ns:1_000 () in
  let restarted = ref 0 in
  let tries = ref 0 in
  let v =
    in_thread (fun () ->
        Supervisor.run sup
          ~on_restart:(fun () -> incr restarted)
          (fun () ->
            incr tries;
            if !tries < 3 then failwith "crash";
            7))
  in
  check_bool "recovered value" true (v = Some 7);
  check "restart hook ran twice" 2 !restarted;
  let st = Supervisor.stats sup in
  check "detected" 2 st.Supervisor.detected;
  check "recovered" 2 st.Supervisor.recovered;
  check "degraded" 0 st.Supervisor.degraded;
  check "restarts" 2 st.Supervisor.restarts

let test_supervisor_budget_exhausted () =
  boot ();
  let sup =
    Supervisor.create ~name:"t" ~restart_budget:2 ~restart_delay_ns:1_000 ()
  in
  let v =
    in_thread (fun () ->
        Supervisor.run sup ~on_restart:(fun () -> ()) (fun () -> failwith "dead"))
  in
  check_bool "no value: driver disabled" true (v = None);
  check_bool "disabled, kernel alive" true
    (Supervisor.state sup = Supervisor.Disabled);
  let st = Supervisor.stats sup in
  check "every attempt detected" 3 st.Supervisor.detected;
  check "all episodes degraded" 3 st.Supervisor.degraded;
  check "accounting invariant" st.Supervisor.detected
    (st.Supervisor.recovered + st.Supervisor.degraded);
  (* a disabled supervisor refuses to run the driver again *)
  let again = in_thread (fun () -> Supervisor.run sup (fun () -> 1)) in
  check_bool "refuses once disabled" true (again = None)

let test_supervisor_never_swallows_kernel_bug () =
  boot ();
  let sup = Supervisor.create ~name:"t" ~restart_delay_ns:1_000 () in
  let saw =
    in_thread (fun () ->
        try
          ignore
            (Supervisor.run sup
               ~on_restart:(fun () -> ())
               (fun () -> K.Panic.bug "fatal"));
          false
        with K.Panic.Kernel_bug _ -> true)
  in
  check_bool "kernel bug propagates untouched" true saw;
  check "not booked as a driver fault" 0
    (Supervisor.stats sup).Supervisor.detected

let test_supervisor_restart_resets_runtime () =
  boot ();
  Runtime.start ();
  let before = Runtime.restarts () in
  let sup = Supervisor.create ~name:"t" ~restart_delay_ns:1_000 () in
  let tries = ref 0 in
  ignore
    (in_thread (fun () ->
         Supervisor.run sup (fun () ->
             incr tries;
             if !tries < 2 then failwith "crash")));
  check "default restart hook restarts the runtime" (before + 1)
    (Runtime.restarts ());
  check_bool "runtime needs a fresh start" false (Runtime.started ())

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decaf_runtime"
    [
      ( "errors",
        [
          tc "check/to_errno" test_errors_check_and_to_errno;
          tc "protect cleanup" test_errors_protect_runs_cleanup_only_on_failure;
          tc "nested unwind order" test_errors_protect_nests_in_order;
        ] );
      ( "jeannie",
        [
          tc "direct call" test_jeannie_direct_switches_domain;
          tc "via xpc" test_jeannie_via_xpc_counts;
        ] );
      ( "runtime",
        [
          tc "start once" test_runtime_start_once;
          tc "sizeof registry" test_runtime_sizeof_registry;
          tc "port helpers" test_runtime_port_helpers_do_io;
        ] );
      ( "params",
        [
          tc "range checker" test_params_range;
          tc "set checker" test_params_set_membership;
          tc "check_all polymorphism" test_params_polymorphic_check_all;
          tc "e1000 probe validates" test_e1000_validates_module_params;
        ] );
      ("nuclear", [ tc "defer and flush" test_nuclear_defer_and_flush ]);
      ( "with_retry",
        [
          tc "eventually succeeds" test_with_retry_eventually_succeeds;
          tc "exhausts and rethrows" test_with_retry_exhausts;
          tc "rejects bad arguments" test_with_retry_rejects_bad_args;
        ] );
      ( "supervisor",
        [
          tc "passthrough" test_supervisor_passthrough;
          tc "recovers after restarts" test_supervisor_recovers;
          tc "budget exhausted degrades" test_supervisor_budget_exhausted;
          tc "kernel bug propagates" test_supervisor_never_swallows_kernel_bug;
          tc "restart resets the runtime" test_supervisor_restart_resets_runtime;
        ] );
    ]
