type lock_discipline = Lock_mutex | Lock_spin

type card = { card_name : string; mutable registered : bool }

type pcm_ops = {
  pcm_open : unit -> (unit, int) result;
  pcm_close : unit -> unit;
  pcm_hw_params : rate:int -> channels:int -> sample_bits:int -> (unit, int) result;
  pcm_prepare : unit -> (unit, int) result;
  pcm_trigger : [ `Start | `Stop ] -> unit;
  pcm_pointer : unit -> int;
}

type substream = {
  card : card;
  ops : pcm_ops;
  buffer_bytes : int;
  mutex : Sync.Mutex.t;
  spin : Sync.Spinlock.t;
  writers : Sync.Waitq.t;
  mutable appl_pos : int;
  mutable hw_pos : int;
  mutable running : bool;
}

let discipline = ref Lock_mutex
let set_lock_discipline d = discipline := d
let lock_discipline () = !discipline
let cards : card list ref = ref []

let snd_card_new name =
  let c = { card_name = name; registered = false } in
  cards := c :: !cards;
  c

let snd_card_register c =
  if c.registered then -17 (* -EEXIST *)
  else begin
    c.registered <- true;
    Klog.printk Klog.Info "snd: card %s registered" c.card_name;
    0
  end

let snd_card_free c =
  c.registered <- false;
  cards := List.filter (fun o -> o != c) !cards

let card_registered c = c.registered
let card_name c = c.card_name

let new_pcm card ~buffer_bytes ops =
  {
    card;
    ops;
    buffer_bytes;
    mutex = Sync.Mutex.create ~name:"pcm" ();
    spin = Sync.Spinlock.create ~name:"pcm" ();
    writers = Sync.Waitq.create ~name:"snd-writers" ();
    appl_pos = 0;
    hw_pos = 0;
    running = false;
  }

(* Every driver callback runs under the library lock; the discipline
   decides whether that lock permits blocking (see module doc). *)
let locked s f =
  match !discipline with
  | Lock_mutex -> Sync.Mutex.with_lock s.mutex f
  | Lock_spin -> Sync.Spinlock.with_lock s.spin f

let pcm_open s = locked s s.ops.pcm_open
let pcm_close s = locked s s.ops.pcm_close

let pcm_set_params s ~rate ~channels ~sample_bits =
  locked s (fun () -> s.ops.pcm_hw_params ~rate ~channels ~sample_bits)

let pcm_prepare s =
  s.appl_pos <- 0;
  s.hw_pos <- 0;
  locked s s.ops.pcm_prepare

let pcm_start s =
  locked s (fun () -> s.ops.pcm_trigger `Start);
  s.running <- true

let pcm_stop s =
  locked s (fun () -> s.ops.pcm_trigger `Stop);
  s.running <- false

let pcm_bytes_queued s = s.appl_pos - s.hw_pos

let pcm_write s n =
  if n < 0 then invalid_arg "Sndcore.pcm_write";
  while pcm_bytes_queued s + n > s.buffer_bytes do
    Sync.Waitq.wait s.writers
  done;
  s.appl_pos <- s.appl_pos + n

let period_elapsed s =
  s.hw_pos <- max s.hw_pos (s.ops.pcm_pointer ());
  (* period serviced: close the hardware period-tick timeline (no-op
     when the tick was not stamped, e.g. tests driving the core
     directly) *)
  ignore (Clock.track_end "audio.period");
  ignore (Sync.Waitq.wake_all s.writers)

let reset () =
  cards := [];
  discipline := Lock_mutex
