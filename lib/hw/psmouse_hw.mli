(** Model of an i8042 keyboard controller with a PS/2 mouse on the AUX
    port.

    The controller decodes ports 0x60 (data) and 0x64 (status/command).
    The mouse speaks the standard PS/2 protocol: reset (0xFF → ACK, BAT,
    id), identify (0xF2), set sample rate (0xF3), set resolution (0xE8),
    enable streaming (0xF4). In streaming mode each call to {!move}
    queues a three-byte movement packet; every queued byte raises IRQ 12
    when it reaches the output buffer. *)

type t

val data_port : int  (* 0x60 *)
val status_port : int  (* 0x64 *)

val status_obf : int
(** Output buffer full. *)

val status_aux : int
(** Data in the output buffer came from the mouse. *)

val cmd_write_aux : int
(** 0xD4: route the next data-port write to the mouse. *)

val cmd_enable_aux : int
(** 0xA8. *)

val aux_irq : int
(** IRQ 12. *)

val byte_gap_ns : int
(** Serial gap between queued bytes reaching the output buffer. *)

val create : unit -> t
(** Claims ports 0x60 and 0x64 and IRQ 12 wiring. *)

val destroy : t -> unit

val move : t -> dx:int -> dy:int -> buttons:int -> unit
(** Generate a movement/button report (dropped unless streaming is
    enabled, as on real hardware). *)

val streaming : t -> bool
val sample_rate : t -> int
val packets_sent : t -> int
