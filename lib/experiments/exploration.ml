(* The decaf-check exploration experiment: run the episode catalog
   through the DPOR explorer and render the per-episode statistics
   table, the counterexamples, the accumulated dynamic lock-acquisition
   order, and the static/dynamic lock-order cross-check. *)

module Check = Decaf_check
module Explore = Check.Explore
module Episodes = Check.Episodes
module Invariants = Check.Invariants

type result = {
  x_depth : int;  (** branching-depth bound the exploration ran at *)
  x_report : Explore.report;
}

let episode_names = List.map (fun e -> e.Explore.ep_name) Episodes.all

let run ?episode ?depth ?(smoke = false) ?(minimize = true) () =
  let eps =
    match episode with
    | None -> Episodes.all
    | Some name -> (
        match Episodes.find name with
        | Some e -> [ e ]
        | None ->
            invalid_arg
              (Printf.sprintf "unknown episode %s (known: %s)" name
                 (String.concat ", " episode_names)))
  in
  List.map
    (fun e ->
      let d =
        match depth with
        | Some d -> d
        | None -> if smoke then e.Explore.ep_smoke_depth else e.Explore.ep_depth
      in
      {
        x_depth = d;
        x_report = Explore.explore ~depth:d ~minimize_cx:minimize e;
      })
    eps

(* --- text rendering --------------------------------------------------- *)

let header =
  Printf.sprintf "%-16s %5s %9s %7s %7s %6s %6s  %s" "episode" "depth"
    "schedules" "pruned" "steps" "maxbr" "capped" "violations"

let render_row { x_depth; x_report = r } =
  let s = r.Explore.r_stats in
  Printf.sprintf "%-16s %5d %9d %7d %7d %6d %6s  %d" r.Explore.r_episode
    x_depth s.Explore.executions s.Explore.pruned s.Explore.steps
    s.Explore.max_branching
    (if s.Explore.capped then "yes" else "no")
    (List.length r.Explore.r_counterexamples)

let render_cx (cx : Explore.counterexample) =
  Printf.sprintf "    %s\n      trace: %s\n      found: %s"
    (Invariants.violation_to_string cx.Explore.cx_violation)
    (if cx.Explore.cx_trace = "" then "(default schedule)"
     else cx.Explore.cx_trace)
    cx.Explore.cx_full_trace

let render results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (render_row r);
      Buffer.add_char buf '\n';
      List.iter
        (fun cx ->
          Buffer.add_string buf (render_cx cx);
          Buffer.add_char buf '\n')
        r.x_report.Explore.r_counterexamples)
    results;
  Buffer.contents buf

let render_lock_order results =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      let edges = r.x_report.Explore.r_lock_edges in
      if edges <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "%s:\n" r.x_report.Explore.r_episode);
        List.iter
          (fun (a, b) ->
            Buffer.add_string buf (Printf.sprintf "  %s -> %s\n" a b))
          edges
      end)
    results;
  Buffer.contents buf

(* --- JSON rendering ---------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json results =
  let cx_json (cx : Explore.counterexample) =
    Printf.sprintf
      "{\"kind\":\"%s\",\"detail\":\"%s\",\"trace\":\"%s\",\"full_trace\":\"%s\"}"
      (json_escape cx.Explore.cx_violation.Invariants.v_kind)
      (json_escape cx.Explore.cx_violation.Invariants.v_detail)
      (json_escape cx.Explore.cx_trace)
      (json_escape cx.Explore.cx_full_trace)
  in
  let edge_json (a, b) =
    Printf.sprintf "{\"outer\":\"%s\",\"inner\":\"%s\"}" (json_escape a)
      (json_escape b)
  in
  let result_json { x_depth; x_report = r } =
    let s = r.Explore.r_stats in
    Printf.sprintf
      "{\"episode\":\"%s\",\"depth\":%d,\"schedules\":%d,\"pruned\":%d,\"steps\":%d,\"max_branching\":%d,\"capped\":%b,\"counterexamples\":[%s],\"lock_order\":[%s]}"
      (json_escape r.Explore.r_episode)
      x_depth s.Explore.executions s.Explore.pruned s.Explore.steps
      s.Explore.max_branching s.Explore.capped
      (String.concat "," (List.map cx_json r.Explore.r_counterexamples))
      (String.concat "," (List.map edge_json r.Explore.r_lock_edges))
  in
  Printf.sprintf "[%s]\n" (String.concat ",\n " (List.map result_json results))

(* --- static/dynamic lock-order cross-check ----------------------------- *)

(* Static acquisition-order edges from the bundled legacy drivers, via
   the decaf-lint lock-identity pass. The namespaces are mostly
   disjoint (C expressions vs. runtime lock tags), so the diff
   normalizes both sides to bare lock names before comparing; agreement
   is only meaningful where the names genuinely coincide, and the
   static-only/dynamic-only sections are informational. *)
let static_edges () =
  List.concat_map
    (fun (driver, (source, config)) ->
      let out = Decaf_slicer.Slicer.slice ~source config in
      List.map
        (fun (a, b) -> (driver, a, b))
        (Decaf_slicer.Lint.static_lock_order out.Decaf_slicer.Slicer.file))
    [
      ( "8139too",
        (Decaf_drivers.Rtl8139_src.source, Decaf_drivers.Rtl8139_src.config) );
      ("e1000", (Decaf_drivers.E1000_src.source, Decaf_drivers.E1000_src.config));
      ( "ens1371",
        (Decaf_drivers.Ens1371_src.source, Decaf_drivers.Ens1371_src.config) );
      ( "uhci-hcd",
        (Decaf_drivers.Uhci_src.source, Decaf_drivers.Uhci_src.config) );
      ( "psmouse",
        (Decaf_drivers.Psmouse_src.source, Decaf_drivers.Psmouse_src.config) );
    ]

let render_lock_diff results =
  let static_raw = static_edges () in
  let static = List.map (fun (_, a, b) -> (a, b)) static_raw in
  let dynamic =
    List.concat_map (fun r -> r.x_report.Explore.r_lock_edges) results
  in
  let d = Check.Lockorder.diff ~static ~dynamic in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "static edges (lint): %d across %d drivers\n"
       (List.length static)
       (List.length
          (List.sort_uniq compare (List.map (fun (d, _, _) -> d) static_raw))));
  List.iter
    (fun (drv, a, b) ->
      Buffer.add_string buf (Printf.sprintf "  [%s] %s -> %s\n" drv a b))
    static_raw;
  Buffer.add_string buf
    (Printf.sprintf "dynamic edges (explore): %d\n" (List.length dynamic));
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "  %s -> %s\n" a b))
    (List.sort_uniq compare dynamic);
  (match d.Check.Lockorder.conflicts with
  | [] -> Buffer.add_string buf "conflicts: none\n"
  | cs ->
      Buffer.add_string buf
        (Printf.sprintf "conflicts: %d\n" (List.length cs));
      List.iter
        (fun (a, b) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  CONFLICT %s -> %s statically but %s -> %s dynamically\n" a b b
               a))
        cs);
  Buffer.add_string buf
    (Printf.sprintf "agreements: %d, static-only: %d, dynamic-only: %d\n"
       (List.length d.Check.Lockorder.agreements)
       (List.length d.Check.Lockorder.static_only)
       (List.length d.Check.Lockorder.dynamic_only));
  Buffer.contents buf

let has_conflicts results =
  let static = List.map (fun (_, a, b) -> (a, b)) (static_edges ()) in
  let dynamic =
    List.concat_map (fun r -> r.x_report.Explore.r_lock_edges) results
  in
  (Check.Lockorder.diff ~static ~dynamic).Check.Lockorder.conflicts <> []
