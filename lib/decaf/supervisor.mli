(** The recovery supervisor for decaf drivers.

    Decaf's safety claim is that a fault in user-level driver code need
    not take the kernel down. The supervisor is the nucleus-side
    enforcement of that claim: it runs a driver's lifecycle under a
    handler that catches every decaf-level failure — checked hardware
    exceptions that escaped the driver, {!Decaf_xpc.Channel.Xpc_failure}
    from a dead crossing, anything else the user level throws — restarts
    the user-level runtime ({!Runtime.restart}: fresh object trackers,
    JVM startup re-charged, driver re-probed by re-running the body), and
    enforces a bounded restart budget. When the budget is exhausted the
    driver is left in an explicit degraded state: disabled, with the
    kernel alive.

    {!Decaf_kernel.Panic.Kernel_bug} is deliberately {e not} caught: a
    kernel bug is exactly what the supervisor must never paper over, and
    the fault campaign asserts none occur. *)

type t

type state = Running | Restarting | Disabled

type stats = {
  detected : int;  (** fault episodes caught *)
  recovered : int;  (** episodes resolved by a successful retry *)
  degraded : int;  (** episodes that ended in the disabled state *)
  restarts : int;  (** runtime restarts performed *)
}

val create : ?restart_budget:int -> ?restart_delay_ns:int -> name:string -> unit -> t
(** [restart_budget] (default 3) bounds restarts per {!run};
    [restart_delay_ns] (default 100ms) lets in-flight device events
    drain before the retry. *)

val run : t -> ?on_restart:(unit -> unit) -> (unit -> 'a) -> 'a option
(** Run the driver body under supervision. Returns [Some v] when the body
    (possibly after restarts) completes, [None] when the restart budget
    is exhausted and the driver is disabled. [on_restart] defaults to
    {!Runtime.restart}. A disabled supervisor refuses to run. *)

val note_tolerated : t -> unit
(** Account one fault that was injected but absorbed by the driver's own
    error handling, with no restart needed: detected and recovered in the
    same breath. *)

val state : t -> state
val stats : t -> stats
val last_fault : t -> string option

val restart_budget : t -> int
(** The configured budget (restarts allowed per {!run}). *)

val restarts_left : t -> int
(** Conservative budget remaining: 0 once disabled, otherwise the
    configured budget minus restarts already performed across this
    supervisor's lifetime. *)
