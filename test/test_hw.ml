(* Tests for the register-level device models. *)

open Decaf_hw
module K = Decaf_kernel

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mac = "\x00\x1b\x21\x0a\x0b\x0c"

(* --- Link --- *)

let test_link_rate_limits () =
  K.Boot.boot ();
  let link = Link.create ~rate_bps:100_000_000 () in
  let received = ref 0 in
  Link.set_peer link (fun _ frame -> received := !received + Bytes.length frame);
  for _ = 1 to 10 do
    Link.transmit link (Bytes.make 1500 'x')
  done;
  ignore (K.Sched.spawn (fun () -> ()));
  K.Sched.run ();
  check "all delivered" 15_000 !received;
  (* 10 frames of (1500+20)*8 bits at 100 Mb/s = 1.216 ms *)
  check_bool "serialization delay enforced" true (K.Clock.now () >= 1_216_000)

let test_link_echo_peer () =
  K.Boot.boot ();
  let link = Link.create ~rate_bps:1_000_000_000 () in
  let nic_got = ref 0 in
  Link.connect link ~nic_rx:(fun frame -> nic_got := !nic_got + Bytes.length frame);
  Link.set_peer link (fun l frame -> Link.inject l frame);
  Link.transmit link (Bytes.make 1000 'y');
  K.Sched.run ();
  check "echo returned" 1000 !nic_got

(* --- Eeprom / Phy --- *)

let test_eeprom_mac_checksum () =
  let e = Eeprom.create ~words:64 in
  Eeprom.load_mac e mac;
  Eeprom.set_intel_checksum e;
  Alcotest.(check string) "mac" mac (Eeprom.mac e);
  check_bool "checksum" true (Eeprom.checksum_ok e);
  Eeprom.write e 10 0x1234;
  check_bool "checksum broken by write" false (Eeprom.checksum_ok e);
  Eeprom.set_intel_checksum e;
  check_bool "fixed" true (Eeprom.checksum_ok e)

let test_phy_autoneg () =
  K.Boot.boot ();
  let phy = Phy.create ~link_up:true () in
  check_bool "starts done" true (Phy.autoneg_complete phy);
  (* restart autoneg *)
  Phy.write phy 0 0x1200;
  check_bool "in progress" false (Phy.autoneg_complete phy);
  K.Clock.consume 60_000_000;
  check_bool "completes" true (Phy.autoneg_complete phy);
  check_bool "bmsr link bit" true (Phy.read phy 1 land 0x0004 <> 0);
  Phy.set_link phy false;
  check_bool "link down in bmsr" true (Phy.read phy 1 land 0x0004 = 0)

(* --- RTL8139 --- *)

let rtl_base = 0xc000

let make_rtl () =
  let link = Link.create ~rate_bps:100_000_000 () in
  let dev = Rtl8139.create ~io_base:rtl_base ~irq:10 ~mac ~link in
  (dev, link)

let test_rtl8139_mac_and_reset () =
  K.Boot.boot ();
  let dev, _ = make_rtl () in
  let mac_read = String.init 6 (fun i -> Char.chr (K.Io.inb (rtl_base + i))) in
  Alcotest.(check string) "mac via IDR" mac mac_read;
  K.Io.outb (rtl_base + Rtl8139.cmd) Rtl8139.cmd_rst;
  check_bool "bufe set after reset" true
    (K.Io.inb (rtl_base + Rtl8139.cmd) land Rtl8139.cmd_bufe <> 0);
  Rtl8139.destroy dev

let test_rtl8139_tx_irq () =
  K.Boot.boot ();
  let dev, link = make_rtl () in
  let irqs = ref 0 in
  K.Irq.request_irq 10 ~name:"8139" (fun () ->
      incr irqs;
      let st = K.Io.inw (rtl_base + Rtl8139.isr) in
      K.Io.outw (rtl_base + Rtl8139.isr) st);
  K.Io.outb (rtl_base + Rtl8139.cmd) (Rtl8139.cmd_te lor Rtl8139.cmd_re);
  K.Io.outw (rtl_base + Rtl8139.imr) 0xffff;
  Rtl8139.stage_tx_buffer dev 0 (Bytes.make 100 'p');
  K.Io.outl (rtl_base + Rtl8139.tsd0) 100;
  (* size, OWN clear *)
  K.Sched.run ();
  check "tx count" 1 (Rtl8139.tx_count dev);
  check "frame on wire" 100 (Link.tx_bytes link);
  check "TOK interrupt" 1 !irqs;
  check_bool "descriptor returned to driver" true
    (K.Io.inl (rtl_base + Rtl8139.tsd0) land Rtl8139.tsd_own <> 0);
  Rtl8139.destroy dev

let test_rtl8139_rx_path () =
  K.Boot.boot ();
  let dev, link = make_rtl () in
  let irqs = ref 0 in
  K.Irq.request_irq 10 ~name:"8139" (fun () ->
      incr irqs;
      K.Io.outw (rtl_base + Rtl8139.isr) 0xffff);
  K.Io.outb (rtl_base + Rtl8139.cmd) Rtl8139.cmd_re;
  K.Io.outw (rtl_base + Rtl8139.imr) 0xffff;
  Link.inject link (Bytes.make 64 'r');
  K.Sched.run ();
  check "one rx irq" 1 !irqs;
  (match Rtl8139.take_rx dev with
  | Some (f, _) -> check "frame length" 64 (Bytes.length f)
  | None -> Alcotest.fail "no frame");
  check_bool "fifo empty again" true (Rtl8139.take_rx dev = None);
  Rtl8139.destroy dev

let test_rtl8139_rx_disabled_drops () =
  K.Boot.boot ();
  let dev, link = make_rtl () in
  Link.inject link (Bytes.make 64 'r');
  K.Sched.run ();
  check "dropped when RE clear" 0 (Rtl8139.rx_pending dev);
  Rtl8139.destroy dev

(* --- E1000 --- *)

let e1000_base = 0xf000_0000

let make_e1000 () =
  let link = Link.create ~rate_bps:1_000_000_000 () in
  let dev =
    E1000_hw.create ~mmio_base:e1000_base ~irq:11 ~device_id:0x100e ~mac ~link
  in
  (dev, link)

let rd reg = K.Io.readl (e1000_base + reg)
let wr reg v = K.Io.writel (e1000_base + reg) v

let test_e1000_eeprom_via_eerd () =
  K.Boot.boot ();
  let dev, _ = make_e1000 () in
  wr E1000_hw.reg_eerd ((0 lsl 8) lor E1000_hw.eerd_start);
  let v = rd E1000_hw.reg_eerd in
  check_bool "done" true (v land E1000_hw.eerd_done <> 0);
  check "word 0 = first two mac bytes" (Char.code mac.[0] lor (Char.code mac.[1] lsl 8))
    (v lsr 16);
  check_bool "checksum valid" true (Eeprom.checksum_ok (E1000_hw.eeprom dev));
  E1000_hw.destroy dev

let test_e1000_phy_via_mdic () =
  K.Boot.boot ();
  let dev, _ = make_e1000 () in
  wr E1000_hw.reg_mdic ((1 lsl 16) lor E1000_hw.mdic_op_read);
  let v = rd E1000_hw.reg_mdic in
  check_bool "ready" true (v land E1000_hw.mdic_ready <> 0);
  check_bool "bmsr sane" true (v land 0xffff <> 0);
  E1000_hw.destroy dev

let test_e1000_tx_ring () =
  K.Boot.boot ();
  let dev, link = make_e1000 () in
  let irqs = ref 0 in
  K.Irq.request_irq 11 ~name:"e1000" (fun () ->
      incr irqs;
      ignore (rd E1000_hw.reg_icr));
  wr E1000_hw.reg_ims 0xffff;
  wr E1000_hw.reg_tctl E1000_hw.tctl_en;
  E1000_hw.stage_tx dev (Bytes.make 1500 'a');
  E1000_hw.stage_tx dev (Bytes.make 1500 'b');
  wr E1000_hw.reg_tdt 2;
  K.Sched.run ();
  check "two frames transmitted" 2 (E1000_hw.tx_count dev);
  check "head caught up" 2 (rd E1000_hw.reg_tdh);
  (* one descriptor write-back (and interrupt) per frame *)
  check "txdw interrupts" 2 !irqs;
  check "bytes on wire" 3000 (Link.tx_bytes link);
  E1000_hw.destroy dev

let test_e1000_icr_read_clears () =
  K.Boot.boot ();
  let dev, _ = make_e1000 () in
  wr E1000_hw.reg_ics E1000_hw.icr_lsc;
  check "cause set" E1000_hw.icr_lsc (rd E1000_hw.reg_icr);
  check "cleared by read" 0 (rd E1000_hw.reg_icr);
  E1000_hw.destroy dev

let test_e1000_rx () =
  K.Boot.boot ();
  let dev, link = make_e1000 () in
  wr E1000_hw.reg_rctl E1000_hw.rctl_en;
  Link.inject link (Bytes.make 500 'z');
  K.Sched.run ();
  check "pending" 1 (E1000_hw.rx_pending dev);
  (match E1000_hw.take_rx dev with
  | Some (f, _) -> check "len" 500 (Bytes.length f)
  | None -> Alcotest.fail "no frame");
  E1000_hw.destroy dev

(* --- ENS1371 --- *)

let snd_base = 0xd000

let test_ens1371_playback_and_underrun () =
  K.Boot.boot ();
  let dev = Ens1371_hw.create ~io_base:snd_base ~irq:9 () in
  let irqs = ref 0 in
  K.Irq.request_irq 9 ~name:"ens1371" (fun () ->
      incr irqs;
      K.Io.outl (snd_base + Ens1371_hw.reg_status) Ens1371_hw.status_dac2);
  K.Io.outl (snd_base + Ens1371_hw.reg_src) 44100;
  K.Io.outl (snd_base + Ens1371_hw.reg_frame_size) 4096;
  Ens1371_hw.dma_feed dev 8192;
  K.Io.outl (snd_base + Ens1371_hw.reg_control) Ens1371_hw.ctrl_dac2_en;
  (* Two full periods then an underrun period. *)
  K.Sched.run ~until_ns:80_000_000 ();
  check_bool "periods played" true (Ens1371_hw.periods_played dev >= 3);
  check "consumed what was fed" 8192 (Ens1371_hw.consumed dev);
  check_bool "underruns counted" true (Ens1371_hw.underruns dev >= 1);
  check_bool "got interrupts" true (!irqs >= 3);
  (* stop playback: periods stop accumulating *)
  K.Io.outl (snd_base + Ens1371_hw.reg_control) 0;
  let p = Ens1371_hw.periods_played dev in
  K.Sched.run ~until_ns:(K.Clock.now () + 50_000_000) ();
  check "stopped" p (Ens1371_hw.periods_played dev);
  Ens1371_hw.destroy dev

let test_ens1371_codec () =
  K.Boot.boot ();
  let dev = Ens1371_hw.create ~io_base:snd_base ~irq:9 () in
  K.Io.outl (snd_base + Ens1371_hw.reg_codec) ((0x02 lsl 16) lor 0x0808);
  check "codec register stored" 0x0808 (Ens1371_hw.codec_value dev 0x02);
  Ens1371_hw.destroy dev

(* --- UHCI --- *)

let uhci_base = 0xe000

let test_uhci_port_reset_enables () =
  K.Boot.boot ();
  let dev = Uhci_hw.create ~io_base:uhci_base ~irq:5 () in
  let portsc = K.Io.inw (uhci_base + Uhci_hw.reg_portsc1) in
  check_bool "device present" true (portsc land Uhci_hw.portsc_ccs <> 0);
  check_bool "not yet enabled" true (portsc land Uhci_hw.portsc_ped = 0);
  K.Io.outw (uhci_base + Uhci_hw.reg_portsc1) Uhci_hw.portsc_pr;
  K.Clock.consume 15_000_000;
  let portsc = K.Io.inw (uhci_base + Uhci_hw.reg_portsc1) in
  check_bool "enabled after reset" true (portsc land Uhci_hw.portsc_ped <> 0);
  Uhci_hw.destroy dev

let test_uhci_bulk_frame_budget () =
  K.Boot.boot ();
  let dev = Uhci_hw.create ~io_base:uhci_base ~irq:5 () in
  K.Io.outw (uhci_base + Uhci_hw.reg_portsc1) Uhci_hw.portsc_pr;
  K.Clock.consume 15_000_000;
  K.Io.outw (uhci_base + Uhci_hw.reg_usbintr) 0x04;
  K.Io.outw (uhci_base + Uhci_hw.reg_usbcmd) Uhci_hw.cmd_rs;
  let done_at = ref 0 and actual = ref 0 in
  let t0 = K.Clock.now () in
  Uhci_hw.submit_td dev ~direction:K.Usbcore.Dir_out ~length:12_800
    ~complete:(fun ~actual:a st ->
      if st = Uhci_hw.Td_ok then begin
        actual := a;
        done_at := K.Clock.now ()
      end);
  K.Sched.run ~until_ns:(t0 + 100_000_000) ();
  check "full transfer" 12_800 !actual;
  check "bytes hit the drive" 12_800 (Uhci_hw.drive_bytes_written dev);
  (* 12800 bytes at 1280 bytes/frame = 10 frames = 10 ms *)
  check_bool "took >= 10 frames" true (!done_at - t0 >= 10_000_000);
  K.Io.outw (uhci_base + Uhci_hw.reg_usbcmd) 0;
  Uhci_hw.destroy dev

let test_uhci_stop_halts_frames () =
  K.Boot.boot ();
  let dev = Uhci_hw.create ~io_base:uhci_base ~irq:5 () in
  K.Io.outw (uhci_base + Uhci_hw.reg_usbcmd) Uhci_hw.cmd_rs;
  K.Sched.run ~until_ns:5_000_000 ();
  let f = Uhci_hw.frames_run dev in
  check_bool "frames advanced" true (f >= 4);
  K.Io.outw (uhci_base + Uhci_hw.reg_usbcmd) 0;
  K.Sched.run ~until_ns:(K.Clock.now () + 5_000_000) ();
  check "halted" f (Uhci_hw.frames_run dev);
  Uhci_hw.destroy dev

(* --- PS/2 mouse --- *)

let read_mouse_byte () =
  let st = K.Io.inb Psmouse_hw.status_port in
  if st land Psmouse_hw.status_obf = 0 then None else Some (K.Io.inb Psmouse_hw.data_port)

let send_mouse_cmd b =
  K.Io.outb Psmouse_hw.status_port Psmouse_hw.cmd_write_aux;
  K.Io.outb Psmouse_hw.data_port b

let test_psmouse_reset_protocol () =
  K.Boot.boot ();
  let dev = Psmouse_hw.create () in
  let bytes = ref [] in
  K.Irq.request_irq Psmouse_hw.aux_irq ~name:"i8042" (fun () ->
      match read_mouse_byte () with
      | Some b -> bytes := b :: !bytes
      | None -> ());
  K.Io.outb Psmouse_hw.status_port Psmouse_hw.cmd_enable_aux;
  send_mouse_cmd 0xff;
  K.Sched.run ();
  Alcotest.(check (list int)) "ACK, BAT, id" [ 0xfa; 0xaa; 0x00 ] (List.rev !bytes);
  Psmouse_hw.destroy dev

let test_psmouse_stream_packets () =
  K.Boot.boot ();
  let dev = Psmouse_hw.create () in
  let bytes = ref [] in
  K.Irq.request_irq Psmouse_hw.aux_irq ~name:"i8042" (fun () ->
      match read_mouse_byte () with
      | Some b -> bytes := b :: !bytes
      | None -> ());
  K.Io.outb Psmouse_hw.status_port Psmouse_hw.cmd_enable_aux;
  send_mouse_cmd 0xf3;
  send_mouse_cmd 100;
  send_mouse_cmd 0xf4;
  K.Sched.run ();
  check "sample rate" 100 (Psmouse_hw.sample_rate dev);
  check_bool "streaming" true (Psmouse_hw.streaming dev);
  bytes := [];
  Psmouse_hw.move dev ~dx:5 ~dy:(-3) ~buttons:1;
  K.Sched.run ();
  (match List.rev !bytes with
  | [ flags; dx; dy ] ->
      check "dx" 5 dx;
      check "dy byte" (-3 land 0xff) dy;
      check_bool "y sign bit" true (flags land 0x20 <> 0);
      check_bool "button bit" true (flags land 0x01 <> 0)
  | l -> Alcotest.failf "expected 3 bytes, got %d" (List.length l));
  check "one packet" 1 (Psmouse_hw.packets_sent dev);
  Psmouse_hw.destroy dev

let test_psmouse_no_stream_before_enable () =
  K.Boot.boot ();
  let dev = Psmouse_hw.create () in
  Psmouse_hw.move dev ~dx:1 ~dy:1 ~buttons:0;
  check "packet dropped" 0 (Psmouse_hw.packets_sent dev);
  Psmouse_hw.destroy dev

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decaf_hw"
    [
      ( "link",
        [ tc "rate limits" test_link_rate_limits; tc "echo peer" test_link_echo_peer ] );
      ( "eeprom-phy",
        [ tc "mac+checksum" test_eeprom_mac_checksum; tc "phy autoneg" test_phy_autoneg ] );
      ( "rtl8139",
        [
          tc "mac and reset" test_rtl8139_mac_and_reset;
          tc "tx raises TOK" test_rtl8139_tx_irq;
          tc "rx path" test_rtl8139_rx_path;
          tc "rx disabled drops" test_rtl8139_rx_disabled_drops;
        ] );
      ( "e1000",
        [
          tc "eeprom via EERD" test_e1000_eeprom_via_eerd;
          tc "phy via MDIC" test_e1000_phy_via_mdic;
          tc "tx ring" test_e1000_tx_ring;
          tc "icr read clears" test_e1000_icr_read_clears;
          tc "rx" test_e1000_rx;
        ] );
      ( "ens1371",
        [
          tc "playback and underrun" test_ens1371_playback_and_underrun;
          tc "codec" test_ens1371_codec;
        ] );
      ( "uhci",
        [
          tc "port reset enables" test_uhci_port_reset_enables;
          tc "bulk frame budget" test_uhci_bulk_frame_budget;
          tc "stop halts frames" test_uhci_stop_halts_frames;
        ] );
      ( "psmouse",
        [
          tc "reset protocol" test_psmouse_reset_protocol;
          tc "stream packets" test_psmouse_stream_packets;
          tc "no stream before enable" test_psmouse_no_stream_before_enable;
        ] );
    ]
