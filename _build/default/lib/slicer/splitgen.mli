(** Source splitting that preserves comments and structure (§3.2.1).

    Unlike the Microdrivers slicer — whose preprocessed output was
    unsuitable for continued development — this pass patches the original
    source text: it produces two copies of the driver, removing from each
    the bodies of functions implemented by the other side and leaving
    every other line (including comments and blank lines) untouched.
    Marshaling stubs go to a separate file to keep the patched driver
    readable. *)

type split = {
  nucleus_src : string;  (** the driver-nucleus source tree (one file) *)
  library_src : string;  (** the user-level source, to be ported to Java *)
  stubs_src : string;  (** generated stubs, segregated from driver code *)
}

val run : Decaf_minic.Ast.file -> Partition.result -> split

val nucleus_loc : split -> int
val library_loc : split -> int
val stubs_loc : split -> int
