module K = Decaf_kernel
module Hw = Decaf_hw
module Xpc = Decaf_xpc

type result = {
  bytes_written : int;
  elapsed_ns : int;
  cpu_utilization : float;
  files : int;
  effective_kbps : float;
  xpc_overhead_ns : int;
  goodput_kbps : float;
}

let chunk = 4_096

(* tar's own work per chunk: read from the archive, checksum, copy. *)
let app_cost = 30_000

let untar ~model ~files ~file_bytes =
  let t0 = K.Clock.now () and busy0 = K.Clock.busy_ns () in
  let xpc0 = Xpc.Dispatch.overhead_ns () in
  let saved0 = Xpc.Dispatch.overlap_saved_ns () in
  let written0 = Hw.Uhci_hw.drive_bytes_written model in
  for _file = 1 to files do
    let remaining = ref file_bytes in
    while !remaining > 0 do
      let n = min chunk !remaining in
      K.Clock.consume app_cost;
      (match
         K.Usbcore.bulk_msg ~direction:K.Usbcore.Dir_out ~endpoint:2
           (Bytes.make n 'f')
       with
      | Ok _ -> ()
      | Error rc -> K.Panic.bug "tar: bulk write failed (%d)" rc);
      remaining := !remaining - n
    done
  done;
  let elapsed_ns = K.Clock.now () - t0 in
  let xpc_overhead_ns = Xpc.Dispatch.overhead_ns () - xpc0 in
  (* Overlap model (see Netperf.mk): credit back the dispatch work that
     worker lanes overlap instead of re-adding time already elapsed. *)
  let saved_ns = Xpc.Dispatch.overlap_saved_ns () - saved0 in
  let bytes_written = Hw.Uhci_hw.drive_bytes_written model - written0 in
  let rate over =
    if over = 0 then 0.
    else float_of_int (bytes_written * 8) *. 1e6 /. float_of_int over
  in
  {
    bytes_written;
    elapsed_ns;
    cpu_utilization = K.Clock.utilization ~since:t0 ~busy_since:busy0;
    files;
    effective_kbps = rate elapsed_ns;
    xpc_overhead_ns;
    goodput_kbps = rate (max 0 (elapsed_ns - saved_ns));
  }

let pp ppf r =
  Format.fprintf ppf "%d files, %d bytes, %.0f kb/s, %.1f%% CPU" r.files
    r.bytes_written r.effective_kbps
    (100. *. r.cpu_utilization)
