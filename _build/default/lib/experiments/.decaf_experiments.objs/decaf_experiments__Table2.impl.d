lib/experiments/table2.ml: Buffer Decaf_drivers Decaf_slicer E1000_src Ens1371_src Format List Printf Psmouse_src Rtl8139_src Uhci_src
