module Slicer = Decaf_slicer.Slicer
module Partition = Decaf_slicer.Partition
module Ast = Decaf_minic.Ast
module Loc = Decaf_minic.Loc

type batch = Before_2_6_22 | After_2_6_22

type patch = {
  p_batch : batch;
  p_title : string;
  p_needle : string;
  p_replacement : string;
}

type component = Nucleus_change | Decaf_change | Interface_change

type summary = {
  nucleus_lines : int;
  decaf_lines : int;
  interface_lines : int;
  patches_applied : int;
  new_annotations : int;
}

let p batch title needle replacement =
  { p_batch = batch; p_title = title; p_needle = needle; p_replacement = replacement }

let patches =
  [
    (* ---- batch 1: before 2.6.22 ---- *)
    p Before_2_6_22 "watchdog: detect link flaps via smartspeed counter"
      {|  /* BUG: smartspeed probe failure ignored */
  e1000_smartspeed_probe(&adapter->hw);
  e1000_update_stats(adapter);
  mod_timer(2000);|}
      {|  /* BUG: smartspeed probe failure ignored */
  e1000_smartspeed_probe(&adapter->hw);
  if (adapter->smartspeed)
    e1000_smartspeed_work(adapter);
  e1000_update_stats(adapter);
  adapter->itr = adapter->itr + 1;
  mod_timer(2000);|};
    p Before_2_6_22 "parameter validation: clamp interrupt throttle rate"
      {|  opt.type = 1;
  opt.min = 0;
  opt.max = 100000;
  opt.def = 3;
  adapter->itr = e1000_validate_option(adapter->itr, &opt);|}
      {|  opt.type = 1;
  opt.min = 100;
  opt.max = 100000;
  opt.def = 8000;
  adapter->itr = e1000_validate_option(adapter->itr, &opt);
  if (adapter->itr == 1)
    adapter->itr = 8000;
  if (adapter->itr == 3)
    adapter->itr = 20000;|};
    p Before_2_6_22 "probe: report EEPROM checksum failures distinctly"
      {|  err = e1000_validate_eeprom_checksum(&adapter->hw);
  if (err)
    goto err_eeprom;|}
      {|  err = e1000_validate_eeprom_checksum(&adapter->hw);
  if (err) {
    printk_info(94);
    goto err_eeprom;
  }|};
    p Before_2_6_22 "phy: wait longer for autonegotiation on ESB parts"
      {|  for (i = 0; i < 45; i++) {
    ret_val = e1000_read_phy_reg(hw, 1, &phy_data);|}
      {|  for (i = 0; i < 90; i++) {
    ret_val = e1000_read_phy_reg(hw, 1, &phy_data);|};
    p Before_2_6_22 "mtu: support jumbo frames up to 9 KB buffers"
      {|  if (new_mtu < 68 || new_mtu > 16110)
    return -22;
  adapter->rx_buffer_len = new_mtu + 24;
  return 0;|}
      {|  if (new_mtu < 68 || new_mtu > 16110)
    return -22;
  if (new_mtu > 1500)
    adapter->rx_buffer_len = 9216;
  else
    adapter->rx_buffer_len = new_mtu + 24;
  return 0;|};
    p Before_2_6_22 "xmit: early exit for zero-length frames (nucleus)"
      {|  struct e1000_tx_ring *tx_ring = &adapter->tx_ring;
  int next = (tx_ring->next_to_use + 1) % tx_ring->count;|}
      {|  struct e1000_tx_ring *tx_ring = &adapter->tx_ring;
  int next;
  if (len <= 0)
    return 0;
  next = (tx_ring->next_to_use + 1) % tx_ring->count;|};
    p Before_2_6_22 "shared struct: track wake-on-lan (interface change)"
      {|  int itr;
  int smartspeed;
  char ifname[16];|}
      {|  int itr;
  int smartspeed;
  int wol;
  char ifname[16];|};
    p Before_2_6_22 "suspend: honour wake-on-lan setting"
      {|  e1000_down(adapter);
  e1000_save_config_space(adapter);
  /* BUG: low-power link-up state change unchecked */|}
      {|  e1000_down(adapter);
  DECAF_RVAR(adapter->wol);
  if (adapter->wol)
    iowrite32(E1000_RCTL, 0x8002);
  e1000_save_config_space(adapter);
  /* BUG: low-power link-up state change unchecked */|};
    (* ---- batch 2: after 2.6.22 ---- *)
    p After_2_6_22 "hw: dsp workaround only on affected steppings"
      {|  if (hw->phy_type != 2)
    return 0;
  if (link_up) {
    ret_val = e1000_read_phy_reg(hw, 17, &phy_data);|}
      {|  if (hw->phy_type != 2)
    return 0;
  if (hw->mac_type < 3)
    return 0;
  if (link_up) {
    ret_val = e1000_read_phy_reg(hw, 17, &phy_data);|};
    p After_2_6_22 "open: request irq before rx resources (reorder)"
      {|  err = e1000_power_up_phy(adapter);
  if (err)
    goto err_up;
  err = e1000_up(adapter);
  if (err)
    goto err_up;
  return 0;|}
      {|  err = e1000_power_up_phy(adapter);
  if (err)
    goto err_up;
  e1000_set_multi(adapter);
  err = e1000_up(adapter);
  if (err)
    goto err_up;
  return 0;|};
    p After_2_6_22 "stats: count alignment errors"
      {|static void e1000_update_stats(struct e1000_adapter *adapter) {
  adapter->msg_enable = adapter->msg_enable;
  ioread32(E1000_STATUS);
}|}
      {|static void e1000_update_stats(struct e1000_adapter *adapter) {
  adapter->msg_enable = adapter->msg_enable;
  ioread32(E1000_STATUS);
  ioread32(E1000_STATUS + 8);
  ioread32(E1000_STATUS + 16);
}|};
    p After_2_6_22 "shared struct: per-queue restart counter (interface)"
      {|  int count;
  int next_to_use;
  int next_to_clean;
  long long dma;
  uint32_t * __attribute__((exp(TX_RING_LEN))) desc;
};|}
      {|  int count;
  int next_to_use;
  int next_to_clean;
  int restart_queue;
  long long dma;
  uint32_t * __attribute__((exp(TX_RING_LEN))) desc;
};|};
    p After_2_6_22 "resume: restore multicast list"
      {|  err = e1000_up(adapter);
  if (err)
    return err;
  netif_carrier_on(adapter);
  return 0;|}
      {|  err = e1000_up(adapter);
  if (err)
    return err;
  e1000_set_multi(adapter);
  netif_carrier_on(adapter);
  return 0;|};
    p After_2_6_22 "led: use the id-led eeprom word"
      {|static int e1000_setup_led(struct e1000_hw *hw) {
  int ledctl;|}
      {|static int e1000_setup_led(struct e1000_hw *hw) {
  int ledctl;
  int eeprom_data;
  /* BUG: id-led eeprom read unchecked */
  e1000_read_eeprom(hw, 4, &eeprom_data);|};
    p After_2_6_22 "intr: acknowledge rx-overrun cause (nucleus)"
      {|  if (icr & 0x4)
    adapter->link_up = 0;|}
      {|  if (icr & 0x4)
    adapter->link_up = 0;
  if (icr & 0x40)
    e1000_alloc_rx_buffers(adapter);|};
    p After_2_6_22 "rx clean: honour the buffer length (nucleus)"
      {|  while (rx_ring->next_to_clean != rx_ring->next_to_use) {
    netif_rx(adapter, adapter->rx_buffer_len);
    rx_ring->next_to_clean = (rx_ring->next_to_clean + 1) % rx_ring->count;
    cleaned = cleaned + 1;
  }|}
      {|  while (rx_ring->next_to_clean != rx_ring->next_to_use) {
    if (adapter->rx_buffer_len > 0)
      netif_rx(adapter, adapter->rx_buffer_len);
    rx_ring->next_to_clean = (rx_ring->next_to_clean + 1) % rx_ring->count;
    cleaned = cleaned + 1;
  }|};
    p After_2_6_22 "tx clean: cap work per interrupt (nucleus)"
      {|  while (tx_ring->next_to_clean != tx_ring->next_to_use) {
    e1000_unmap_and_free_tx_resource(adapter, tx_ring->next_to_clean);
    tx_ring->next_to_clean = (tx_ring->next_to_clean + 1) % tx_ring->count;
    cleaned = cleaned + 1;
  }|}
      {|  while (tx_ring->next_to_clean != tx_ring->next_to_use) {
    if (cleaned >= tx_ring->count)
      break;
    e1000_unmap_and_free_tx_resource(adapter, tx_ring->next_to_clean);
    tx_ring->next_to_clean = (tx_ring->next_to_clean + 1) % tx_ring->count;
    cleaned = cleaned + 1;
  }|};
  ]

let lines_in s = List.length (String.split_on_char '\n' s)

let lines_changed patch =
  max (lines_in patch.p_needle) (lines_in patch.p_replacement)

let apply ?(batches = [ Before_2_6_22; After_2_6_22 ]) source =
  List.fold_left
    (fun src patch ->
      if not (List.mem patch.p_batch batches) then src
      else begin
        let replaced =
          Strutil.replace src ~needle:patch.p_needle
            ~replacement:patch.p_replacement
        in
        if replaced = src then
          failwith ("evolution patch did not apply: " ^ patch.p_title);
        replaced
      end)
    source patches

(* Locate the patch's needle in the ORIGINAL source and classify it by
   the partition component that owns the surrounding code. *)
let classify patch (partition : Partition.result) =
  let touches_struct =
    (* struct-body edits contain field declarations ending in ";" with no
       statement syntax; cheap test: the needle appears before any
       function in the source, or the replacement adds a field and the
       needle ends with "};" or contains an __attribute__ *)
    Strutil.contains patch.p_needle "__attribute__"
    || Strutil.contains patch.p_needle "char ifname"
  in
  if touches_struct then Interface_change
  else
    (* find the function whose body contains the needle's first line *)
    let file = Decaf_minic.Parser.parse E1000_src.source in
    let needle_line =
      let idx = Strutil.index_of E1000_src.source patch.p_needle in
      let before = String.sub E1000_src.source 0 idx in
      1 + List.length (String.split_on_char '\n' before) - 1
    in
    let owner =
      List.find_opt
        (fun (fn : Ast.func) ->
          needle_line >= fn.Ast.floc_start.Loc.line
          && needle_line <= fn.Ast.floc_end.Loc.line)
        (Ast.functions file)
    in
    match owner with
    | Some fn -> (
        match Partition.placement partition fn.Ast.fname with
        | Partition.Nucleus -> Nucleus_change
        | Partition.User -> Decaf_change)
    | None -> Interface_change

let count_annotations s =
  let rec scan i acc =
    match Strutil.index_from s i "DECAF_" with
    | Some j -> scan (j + 6) (acc + 1)
    | None -> acc
  in
  scan 0 0

let run () =
  let original = E1000_src.source in
  let out = Slicer.slice ~source:original E1000_src.config in
  let partition = out.Slicer.partition in
  let evolved = apply original in
  (* the evolved driver must still parse and re-slice cleanly *)
  let evolved_out = Slicer.slice ~source:evolved E1000_src.config in
  ignore evolved_out;
  let tally (n, d, i) patch =
    match classify patch partition with
    | Nucleus_change -> (n + lines_changed patch, d, i)
    | Decaf_change -> (n, d + lines_changed patch, i)
    | Interface_change -> (n, d, i + lines_changed patch)
  in
  let nucleus_lines, decaf_lines, interface_lines =
    List.fold_left tally (0, 0, 0) patches
  in
  {
    nucleus_lines;
    decaf_lines;
    interface_lines;
    patches_applied = List.length patches;
    new_annotations = count_annotations evolved - count_annotations original;
  }
