(** USB core: URBs and host-controller driver (HCD) registration. *)

type direction = Dir_in | Dir_out
type transfer = Control | Bulk | Interrupt

type urb = {
  transfer : transfer;
  direction : direction;
  endpoint : int;
  buffer : Bytes.t;
  mutable actual_length : int;
  mutable status : int;  (** 0 = success, negative errno otherwise *)
  mutable complete : urb -> unit;
}

type hcd_ops = {
  hcd_submit_urb : urb -> (unit, int) result;
      (** Queue the URB; its [complete] callback fires (possibly from
          interrupt context) when the transfer finishes. *)
  hcd_frame_number : unit -> int;
}

val alloc_urb :
  transfer:transfer -> direction:direction -> endpoint:int -> Bytes.t -> urb

val register_hcd : name:string -> hcd_ops -> unit
(** At most one HCD may be registered at a time. *)

val unregister_hcd : unit -> unit
val hcd_name : unit -> string option

val submit_urb : urb -> (unit, int) result

val bulk_msg :
  direction:direction -> endpoint:int -> Bytes.t -> (int, int) result
(** Synchronous bulk transfer: submit and block until completion. Returns
    the number of bytes transferred, or the URB's error status. *)

val frame_number : unit -> int
val reset : unit -> unit
