lib/kernel/timer.mli:
