(** Kernel work queues: deferred execution in process context.

    High-priority code (interrupt handlers, timers) cannot call up into
    the decaf driver; instead it enqueues a work item, which a worker
    thread runs where blocking — and therefore XPC to user level — is
    legal (§3.1.3). *)

type t

val create : name:string -> t
(** Create the queue and spawn its worker thread. *)

val queue_work : t -> (unit -> unit) -> unit
(** Enqueue a work item; safe from interrupt context. *)

val flush : t -> unit
(** Block until every item queued before the call has run. Must be called
    from process context. *)

val destroy : t -> unit
(** Flush outstanding work, then stop the worker thread. *)

val executed : t -> int
(** Number of work items completed so far. *)
