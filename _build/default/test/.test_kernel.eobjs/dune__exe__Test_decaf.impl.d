test/test_decaf.ml: Alcotest Decaf_drivers Decaf_hw Decaf_kernel Decaf_runtime Decaf_xpc Errors Jeannie List Params Runtime Supervisor
