lib/drivers/rtl8139_drv.ml: Bytes Char Decaf_hw Decaf_kernel Decaf_runtime Driver_env Hashtbl String
