(** The E1000 evolution corpus — the paper's §5.2 experiment.

    A set of patches standing in for the 320 revisions between the
    2.6.18.1 and 2.6.27 kernels (scaled ~16x down), applied in the same
    two batches (before / after 2.6.22). Each patch is a textual edit to
    the legacy source; the experiment applies them, re-slices, and
    classifies every changed line by the partition component it lands
    in. Interface changes are those that touch shared structures and so
    require new marshaling annotations and stub regeneration. *)

type batch = Before_2_6_22 | After_2_6_22

type patch = {
  p_batch : batch;
  p_title : string;
  p_needle : string;  (** text replaced by the patch *)
  p_replacement : string;
}

type component = Nucleus_change | Decaf_change | Interface_change

type summary = {
  nucleus_lines : int;
  decaf_lines : int;
  interface_lines : int;
  patches_applied : int;
  new_annotations : int;  (** DECAF_*VAR annotations the patches add *)
}

val patches : patch list

val apply : ?batches:batch list -> string -> string
(** Apply the selected batches (default: all) to a source text; raises
    [Failure] if a needle is missing. *)

val classify : patch -> Decaf_slicer.Partition.result -> component
(** Where the patch's change lands, judged against the original
    partition. *)

val lines_changed : patch -> int

val run : unit -> summary
(** Apply everything to {!E1000_src.source}, verify the patched driver
    still parses and re-slices, and tally Table 4. *)
