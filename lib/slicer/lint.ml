module Ast = Decaf_minic.Ast
module Loc = Decaf_minic.Loc
module Callgraph = Decaf_minic.Callgraph
module Symtab = Decaf_minic.Symtab
module Sset = Set.Make (String)
module Smap = Map.Make (String)

type pass =
  | Lock_discipline
  | Annotation_soundness
  | Marshal_boundary
  | Error_flow
  | Inbound_validation
  | Event_accounting

type severity = Error | Warning | Info

type finding = {
  f_pass : pass;
  f_severity : severity;
  f_anchor : string;
  f_line : int;
  f_message : string;
  f_witness : string list;
}

type waiver = {
  w_pass : pass;
  w_anchor : string;
  w_line : int;
  w_reason : string;
}

type report = {
  r_driver : string;
  r_findings : finding list;
  r_waived : (finding * waiver) list;
  r_unwaived : finding list;
  r_assumptions : finding list;
  r_unused_waivers : waiver list;
}

let pass_name = function
  | Lock_discipline -> "lock"
  | Annotation_soundness -> "annot"
  | Marshal_boundary -> "marshal"
  | Error_flow -> "errflow"
  | Inbound_validation -> "inbound"
  | Event_accounting -> "events"

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let default_atomic_roots (pc : Partition.config) =
  List.filter
    (fun name ->
      let l = String.lowercase_ascii name in
      contains_sub l "intr" || contains_sub l "irq"
      || contains_sub l "interrupt")
    pc.Partition.critical_roots

let is_decaf_macro name =
  String.length name >= 6 && String.sub name 0 6 = "DECAF_"

(* ===================== pass 1: lock / XPC discipline ================= *)

(* Lattice element: how many spinlocks are held and how deeply IRQs are
   disabled on the current path. Joins take the componentwise max (a
   path that may hold the lock taints the merge); call-context addition
   saturates at 2 so recursive lock wrappers terminate. *)
type lock_state = { spin : int; irq : int }

let bottom = { spin = 0; irq = 0 }
let is_atomic s = s.spin > 0 || s.irq > 0
let join_state a b = { spin = max a.spin b.spin; irq = max a.irq b.irq }

let sat n = if n > 2 then 2 else n

let add_state a b = { spin = sat (a.spin + b.spin); irq = sat (a.irq + b.irq) }

let state_desc s =
  match (s.spin > 0, s.irq > 0) with
  | true, true -> "spinlock held, IRQs disabled"
  | true, false -> "spinlock held"
  | false, true -> "IRQs disabled"
  | false, false -> "not atomic"

(* (spin delta, irq delta) of the classic kernel lock primitives. *)
let lock_effect = function
  | "spin_lock" | "spin_lock_bh" | "spin_trylock" -> Some (1, 0)
  | "spin_lock_irqsave" | "spin_lock_irq" -> Some (1, 1)
  | "spin_unlock" | "spin_unlock_bh" -> Some (-1, 0)
  | "spin_unlock_irqrestore" | "spin_unlock_irq" -> Some (-1, -1)
  | "local_irq_save" | "local_irq_disable" -> Some (0, 1)
  | "local_irq_restore" | "local_irq_enable" -> Some (0, -1)
  | _ -> None

let sleeping_primitives =
  Sset.of_list
    [
      "msleep";
      "msleep_interruptible";
      "ssleep";
      "usleep_range";
      "schedule";
      "schedule_timeout";
      "cond_resched";
      "mutex_lock";
      "mutex_lock_interruptible";
      "down";
      "down_interruptible";
      "down_killable";
      "wait_event";
      "wait_event_interruptible";
      "wait_event_timeout";
      "wait_for_completion";
      "vmalloc";
    ]

type call_site = {
  cs_callee : string;
  cs_state : lock_state;  (** locally acquired state at the site *)
  cs_line : int;
  cs_assumed : bool;  (** reached through an indirect call *)
}

type func_summary = {
  fs_name : string;
  fs_sites : call_site list;
  fs_uses_lock : bool;
  fs_indirect : (int * lock_state) list;  (** indirect call sites *)
  fs_local : finding list;  (** unbalanced / held-at-return findings *)
}

let summarize_function ~taken_defined (fn : Ast.func) =
  let sites = ref [] in
  let local = ref [] in
  let uses_lock = ref false in
  let indirect = ref [] in
  let note_local sev line msg =
    local :=
      {
        f_pass = Lock_discipline;
        f_severity = sev;
        f_anchor = fn.Ast.fname;
        f_line = line;
        f_message = msg;
        f_witness = [];
      }
      :: !local
  in
  let rec eval st line (e : Ast.expr) =
    match e with
    | Ast.Ecall (Ast.Eident name, args) -> (
        let st = List.fold_left (fun st a -> eval st line a) st args in
        match lock_effect name with
        | Some (ds, di) ->
            uses_lock := true;
            let spin = st.spin + ds and irq = st.irq + di in
            if spin < 0 || irq < 0 then
              note_local Warning line
                (Printf.sprintf "unbalanced %s: no matching acquire on this path"
                   name);
            { spin = max 0 (sat spin); irq = max 0 (sat irq) }
        | None ->
            sites :=
              { cs_callee = name; cs_state = st; cs_line = line; cs_assumed = false }
              :: !sites;
            st)
    | Ast.Ecall (callee, args) ->
        let st = eval st line callee in
        let st = List.fold_left (fun st a -> eval st line a) st args in
        indirect := (line, st) :: !indirect;
        List.iter
          (fun t ->
            sites :=
              { cs_callee = t; cs_state = st; cs_line = line; cs_assumed = true }
              :: !sites)
          taken_defined;
        st
    | Ast.Econst _ | Ast.Estr _ | Ast.Echar _ | Ast.Eident _
    | Ast.Esizeof_type _ ->
        st
    | Ast.Eunop (_, a)
    | Ast.Ecast (_, a)
    | Ast.Esizeof_expr a
    | Ast.Efield (a, _)
    | Ast.Earrow (a, _)
    | Ast.Epostincr a
    | Ast.Epostdecr a
    | Ast.Epreincr a
    | Ast.Epredecr a ->
        eval st line a
    | Ast.Ebinop (_, a, b) | Ast.Eassign (_, a, b) | Ast.Eindex (a, b) ->
        eval (eval st line a) line b
    | Ast.Econd (a, b, c) -> eval (eval (eval st line a) line b) line c
  in
  let rec stmts st body = List.fold_left stmt st body
  and stmt st (s : Ast.stmt) =
    let line = s.Ast.sloc.Loc.line in
    match s.Ast.skind with
    | Sexpr e -> eval st line e
    | Sdecl (_, _, Some e) -> eval st line e
    | Sdecl (_, _, None) -> st
    | Sif (c, a, b) ->
        let st = eval st line c in
        join_state (stmts st a) (stmts st b)
    | Swhile (c, body) ->
        let st = eval st line c in
        join_state st (stmts st body)
    | Sdo (body, c) ->
        let st = stmts st body in
        eval st line c
    | Sfor (init, cond, update, body) ->
        let st = match init with Some s -> stmt st s | None -> st in
        let st = match cond with Some e -> eval st line e | None -> st in
        let st' = stmts st body in
        let st' = match update with Some e -> eval st' line e | None -> st' in
        join_state st st'
    | Sreturn e ->
        let st = match e with Some e -> eval st line e | None -> st in
        if is_atomic st then
          note_local Warning line
            (Printf.sprintf "returns with %s on this path" (state_desc st));
        st
    | Sswitch (e, cases) ->
        let st = eval st line e in
        List.fold_left
          (fun acc case ->
            match case with
            | Ast.Case (_, body) | Ast.Default body ->
                join_state acc (stmts st body))
          st cases
    | Sgoto _ | Slabel _ | Sbreak | Scontinue -> st
    | Sblock body -> stmts st body
  in
  let final = stmts bottom fn.Ast.fbody in
  if is_atomic final then
    note_local Warning fn.Ast.floc_end.Loc.line
      (Printf.sprintf "function ends with %s" (state_desc final));
  {
    fs_name = fn.Ast.fname;
    fs_sites = List.rev !sites;
    fs_uses_lock = !uses_lock;
    fs_indirect = List.rev !indirect;
    fs_local = List.rev !local;
  }

(* --- static lock-acquisition order ------------------------------------

   The discipline pass above tracks lock *depth*; this walk tracks lock
   *identity*: which lock-argument expression each nested acquire names,
   yielding (outer, inner) acquisition-order edges. Intraprocedural and
   path-insensitive — both arms of a branch are walked under the entry
   stack — which over-approximates orders but never invents a nesting
   that no path contains. The edges feed the static/dynamic lock-order
   cross-check against the exploration harness. *)

let lock_acquire = function
  | "spin_lock" | "spin_lock_bh" | "spin_trylock" | "spin_lock_irqsave"
  | "spin_lock_irq" | "mutex_lock" | "mutex_lock_interruptible" | "down"
  | "down_interruptible" ->
      true
  | _ -> false

let lock_release = function
  | "spin_unlock" | "spin_unlock_bh" | "spin_unlock_irqrestore"
  | "spin_unlock_irq" | "mutex_unlock" | "up" ->
      true
  | _ -> false

(* Render a lock-argument expression as a stable name: "&lp->tx_lock"
   and "lp->tx_lock" must coincide. *)
let rec lock_arg_name (e : Ast.expr) =
  match e with
  | Ast.Eident s -> s
  | Ast.Eunop (_, a) | Ast.Ecast (_, a) -> lock_arg_name a
  | Ast.Efield (a, f) -> lock_arg_name a ^ "." ^ f
  | Ast.Earrow (a, f) -> lock_arg_name a ^ "->" ^ f
  | Ast.Eindex (a, _) -> lock_arg_name a ^ "[]"
  | _ -> "?"

let static_lock_order (file : Ast.file) =
  let edges = ref [] in
  let add outer inner =
    if outer <> inner && not (List.mem (outer, inner) !edges) then
      edges := (outer, inner) :: !edges
  in
  let rec eval held (e : Ast.expr) =
    match e with
    | Ast.Ecall (Ast.Eident name, (lockarg :: _ as args)) ->
        let held = List.fold_left eval held args in
        let lname = lock_arg_name lockarg in
        if lock_acquire name && lname <> "?" then begin
          List.iter (fun outer -> add outer lname) held;
          lname :: held
        end
        else if lock_release name then
          let rec drop = function
            | [] -> []
            | h :: rest -> if h = lname then rest else h :: drop rest
          in
          drop held
        else held
    | Ast.Ecall (callee, args) ->
        List.fold_left eval (eval held callee) args
    | Ast.Econst _ | Ast.Estr _ | Ast.Echar _ | Ast.Eident _
    | Ast.Esizeof_type _ ->
        held
    | Ast.Eunop (_, a)
    | Ast.Ecast (_, a)
    | Ast.Esizeof_expr a
    | Ast.Efield (a, _)
    | Ast.Earrow (a, _)
    | Ast.Epostincr a
    | Ast.Epostdecr a
    | Ast.Epreincr a
    | Ast.Epredecr a ->
        eval held a
    | Ast.Ebinop (_, a, b) | Ast.Eassign (_, a, b) | Ast.Eindex (a, b) ->
        eval (eval held a) b
    | Ast.Econd (c, a, b) ->
        let held = eval held c in
        ignore (eval held a);
        ignore (eval held b);
        held
  in
  let rec stmt held (s : Ast.stmt) =
    match s.Ast.skind with
    | Ast.Sexpr e -> eval held e
    | Ast.Sdecl (_, _, init) ->
        Option.fold ~none:held ~some:(eval held) init
    | Ast.Sif (c, t, e) ->
        let held = eval held c in
        ignore (stmts held t);
        ignore (stmts held e);
        held
    | Ast.Swhile (c, body) ->
        let held = eval held c in
        ignore (stmts held body);
        held
    | Ast.Sdo (body, c) ->
        ignore (stmts held body);
        eval held c
    | Ast.Sfor (init, c, step, body) ->
        let held = Option.fold ~none:held ~some:(stmt held) init in
        let held = Option.fold ~none:held ~some:(eval held) c in
        ignore (Option.map (eval held) step);
        ignore (stmts held body);
        held
    | Ast.Sreturn e -> Option.fold ~none:held ~some:(eval held) e
    | Ast.Sswitch (c, cases) ->
        let held = eval held c in
        List.iter
          (function
            | Ast.Case (_, body) | Ast.Default body -> ignore (stmts held body))
          cases;
        held
    | Ast.Sblock body -> stmts held body
    | Ast.Sgoto _ | Ast.Slabel _ | Ast.Sbreak | Ast.Scontinue -> held
  and stmts held l = List.fold_left stmt held l in
  List.iter
    (fun (fn : Ast.func) -> ignore (stmts [] fn.Ast.fbody))
    (Ast.functions file);
  List.sort compare !edges

let lock_pass ~file ~cg ~atomic_roots ~nucleus ~user () =
  let defined = Sset.of_list (Callgraph.defined cg) in
  let taken_defined =
    List.filter (fun n -> Sset.mem n defined) (Callgraph.address_taken cg)
  in
  let summaries =
    List.map (summarize_function ~taken_defined) (Ast.functions file)
  in
  let by_name =
    List.fold_left (fun m s -> Smap.add s.fs_name s m) Smap.empty summaries
  in
  (* Interprocedural entry contexts: the atomic state a function may be
     entered under, with the call chain that establishes it. *)
  let ctx : (string, lock_state * string list) Hashtbl.t = Hashtbl.create 64 in
  let entry name =
    Option.value ~default:(bottom, []) (Hashtbl.find_opt ctx name)
  in
  List.iter
    (fun root ->
      if Sset.mem root defined then
        Hashtbl.replace ctx root
          ({ spin = 0; irq = 1 }, [ root ^ " (interrupt entry)" ]))
    atomic_roots;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fs ->
        let est, ewit = entry fs.fs_name in
        List.iter
          (fun cs ->
            if Sset.mem cs.cs_callee defined then begin
              let cand = add_state est cs.cs_state in
              if is_atomic cand then begin
                let cur, _ = entry cs.cs_callee in
                let merged = join_state cur cand in
                if merged <> cur then begin
                  Hashtbl.replace ctx cs.cs_callee
                    ( merged,
                      ewit @ [ Printf.sprintf "%s:%d" fs.fs_name cs.cs_line ] );
                  changed := true
                end
              end
            end)
          fs.fs_sites)
      summaries
  done;
  ignore by_name;
  let user_set = Sset.of_list user and nucleus_set = Sset.of_list nucleus in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  List.iter
    (fun fs ->
      List.iter emit fs.fs_local;
      let est, ewit = entry fs.fs_name in
      let in_user = Sset.mem fs.fs_name user_set in
      (* raw spin primitives at user level become combolock semaphores *)
      if fs.fs_uses_lock && in_user then
        emit
          {
            f_pass = Lock_discipline;
            f_severity = Info;
            f_anchor = fs.fs_name;
            f_line = 0;
            f_message =
              "user-level function uses raw spin primitives; the runtime \
               converts them to combolock semaphore acquisitions";
            f_witness = [];
          };
      (* conservative note for every indirect call site *)
      List.iter
        (fun (line, st) ->
          let eff = add_state est st in
          emit
            {
              f_pass = Lock_discipline;
              f_severity = Info;
              f_anchor = fs.fs_name;
              f_line = line;
              f_message =
                (let targets =
                   match taken_defined with
                   | [] -> "no address-taken function in this file"
                   | ts -> String.concat ", " ts
                 in
                 Printf.sprintf
                   "indirect call (%s): assumed targets = [%s]; lock analysis \
                    treats every assumed target as callable here"
                   (state_desc eff) targets);
              f_witness = [];
            })
        fs.fs_indirect;
      List.iter
        (fun cs ->
          let eff = add_state est cs.cs_state in
          if is_atomic eff then begin
            let witness =
              ewit
              @ [ Printf.sprintf "%s:%d -> %s" fs.fs_name cs.cs_line cs.cs_callee ]
            in
            let assumed = if cs.cs_assumed then " (assumed indirect target)" else "" in
            if
              Sset.mem cs.cs_callee sleeping_primitives
              && not (Sset.mem cs.cs_callee defined)
            then
              emit
                {
                  f_pass = Lock_discipline;
                  f_severity = Error;
                  f_anchor = fs.fs_name;
                  f_line = cs.cs_line;
                  f_message =
                    Printf.sprintf "calls sleeping primitive %s while %s%s"
                      cs.cs_callee (state_desc eff) assumed;
                  f_witness = witness;
                }
            else if
              (* XPC crossing while atomic: a user-placed caller invoking
                 the kernel (an import or a nucleus function) cannot hold
                 a spinlock across the crossing — the paper's "never call
                 up with a spinlock held" rule seen from the other side. *)
              in_user
              && (not (is_decaf_macro cs.cs_callee))
              && lock_effect cs.cs_callee = None
              && ((not (Sset.mem cs.cs_callee defined))
                 || Sset.mem cs.cs_callee nucleus_set)
            then
              emit
                {
                  f_pass = Lock_discipline;
                  f_severity = Error;
                  f_anchor = fs.fs_name;
                  f_line = cs.cs_line;
                  f_message =
                    Printf.sprintf
                      "XPC crossing to %s while %s%s: the crossing can block \
                       and must not happen under a spinlock"
                      cs.cs_callee (state_desc eff) assumed;
                  f_witness = witness;
                }
            else if
              cs.cs_assumed && Sset.mem cs.cs_callee user_set
              && not in_user
            then
              emit
                {
                  f_pass = Lock_discipline;
                  f_severity = Error;
                  f_anchor = fs.fs_name;
                  f_line = cs.cs_line;
                  f_message =
                    Printf.sprintf
                      "indirect call while %s may target user-level %s \
                       (address-taken): upcall under a spinlock"
                      (state_desc eff) cs.cs_callee;
                  f_witness = witness;
                }
          end)
        fs.fs_sites)
    summaries;
  List.rev !findings

(* ================ pass 2: annotation soundness ======================= *)

(* Field read/write analysis used to validate annotations. Unlike
   Marshalgen.field_accesses, an array-element store through a field
   ([x->f[i] = v]) counts as a write to [f]. *)
type fuse = { fu_read : bool; fu_written : bool }

let field_uses (file : Ast.file) ~funcs =
  let uses = ref Smap.empty in
  let note field ~write =
    let u =
      Option.value ~default:{ fu_read = false; fu_written = false }
        (Smap.find_opt field !uses)
    in
    let u =
      if write then { u with fu_written = true } else { u with fu_read = true }
    in
    uses := Smap.add field u !uses
  in
  (* the field a write through an lvalue lands on, Eindex-aware *)
  let rec written_field = function
    | Ast.Efield (_, f) | Ast.Earrow (_, f) -> Some f
    | Ast.Eindex (e, _) -> written_field e
    | _ -> None
  in
  let rec reads (e : Ast.expr) =
    match e with
    | Ast.Efield (base, f) | Ast.Earrow (base, f) ->
        note f ~write:false;
        reads base
    | Ast.Eassign (op, lhs, rhs) ->
        (match written_field lhs with
        | Some f ->
            note f ~write:true;
            if op <> None then note f ~write:false;
            (* base / index sub-expressions are ordinary reads *)
            (match lhs with
            | Ast.Efield (base, _) | Ast.Earrow (base, _) -> reads base
            | Ast.Eindex (inner, idx) ->
                (match inner with
                | Ast.Efield (base, _) | Ast.Earrow (base, _) -> reads base
                | other -> reads other);
                reads idx
            | _ -> ())
        | None -> reads lhs);
        reads rhs
    | Ast.Epostincr inner | Ast.Epostdecr inner | Ast.Epreincr inner
    | Ast.Epredecr inner -> (
        match written_field inner with
        | Some f ->
            note f ~write:true;
            note f ~write:false
        | None -> reads inner)
    | Ast.Econst _ | Ast.Estr _ | Ast.Echar _ | Ast.Eident _
    | Ast.Esizeof_type _ ->
        ()
    | Ast.Eunop (_, a) | Ast.Ecast (_, a) | Ast.Esizeof_expr a -> reads a
    | Ast.Ebinop (_, a, b) | Ast.Eindex (a, b) ->
        reads a;
        reads b
    | Ast.Econd (a, b, c) ->
        reads a;
        reads b;
        reads c
    | Ast.Ecall (Ast.Eident name, _) when is_decaf_macro name ->
        (* the annotation itself is not an access *)
        ()
    | Ast.Ecall (callee, args) ->
        reads callee;
        List.iter reads args
  in
  (* A custom walker (not Ast.fold_exprs_func) so each top-level
     expression is analyzed exactly once: the generic fold re-visits
     sub-expressions, which would turn every write lvalue and every
     DECAF_ macro argument into a spurious read. *)
  let rec walk_stmt (s : Ast.stmt) =
    match s.Ast.skind with
    | Sexpr e | Sdecl (_, _, Some e) -> reads e
    | Sdecl (_, _, None) -> ()
    | Sif (c, a, b) ->
        reads c;
        List.iter walk_stmt a;
        List.iter walk_stmt b
    | Swhile (c, body) ->
        reads c;
        List.iter walk_stmt body
    | Sdo (body, c) ->
        List.iter walk_stmt body;
        reads c
    | Sfor (init, cond, update, body) ->
        Option.iter walk_stmt init;
        Option.iter reads cond;
        Option.iter reads update;
        List.iter walk_stmt body
    | Sreturn (Some e) -> reads e
    | Sswitch (e, cases) ->
        reads e;
        List.iter
          (function
            | Ast.Case (_, body) | Ast.Default body -> List.iter walk_stmt body)
          cases
    | Sreturn None | Sgoto _ | Slabel _ | Sbreak | Scontinue -> ()
    | Sblock body -> List.iter walk_stmt body
  in
  List.iter
    (fun name ->
      match Ast.find_function file name with
      | Some fn -> List.iter walk_stmt fn.Ast.fbody
      | None -> ())
    funcs;
  !uses

let macro_of = function
  | Annot.Read -> "DECAF_RVAR"
  | Annot.Write -> "DECAF_WVAR"
  | Annot.Read_write -> "DECAF_RWVAR"

let annot_pass ~file ~cg ~annots ~user_funcs ~library_funcs () =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let all_fields =
    List.fold_left
      (fun acc (s : Ast.struct_def) ->
        List.fold_left
          (fun acc (f : Ast.field) -> Sset.add f.Ast.fname acc)
          acc s.Ast.sfields)
      Sset.empty (Ast.structs file)
  in
  List.iter
    (fun (va : Annot.var_annot) ->
      let macro = macro_of va.Annot.va_access in
      if not (Sset.mem va.Annot.va_field all_fields) then
        emit
          {
            f_pass = Annotation_soundness;
            f_severity = Error;
            f_anchor = va.Annot.va_function;
            f_line = va.Annot.va_line;
            f_message =
              Printf.sprintf
                "stale annotation %s(%s): field '%s' no longer exists in any \
                 struct"
                macro va.Annot.va_path va.Annot.va_field;
            f_witness = [];
          }
      else begin
        let reach = Callgraph.reachable cg ~roots:[ va.Annot.va_function ] in
        let uses = field_uses file ~funcs:reach in
        let actual =
          Option.value ~default:{ fu_read = false; fu_written = false }
            (Smap.find_opt va.Annot.va_field uses)
        in
        let ann_r, ann_w =
          match va.Annot.va_access with
          | Annot.Read -> (true, false)
          | Annot.Write -> (false, true)
          | Annot.Read_write -> (true, true)
        in
        let too_narrow =
          (actual.fu_read && not ann_r) || (actual.fu_written && not ann_w)
        in
        let unwitnessed =
          (ann_r && not actual.fu_read) || (ann_w && not actual.fu_written)
        in
        if too_narrow then
          emit
            {
              f_pass = Annotation_soundness;
              f_severity = Error;
              f_anchor = va.Annot.va_function;
              f_line = va.Annot.va_line;
              f_message =
                Printf.sprintf
                  "annotation %s(%s) is too narrow: code reachable from %s %s \
                   the field"
                  macro va.Annot.va_path va.Annot.va_function
                  (match (actual.fu_read && not ann_r,
                          actual.fu_written && not ann_w)
                   with
                  | true, true -> "also reads and writes"
                  | false, true -> "also writes"
                  | _ -> "also reads");
              f_witness = reach;
            }
        else if unwitnessed then
          emit
            {
              f_pass = Annotation_soundness;
              f_severity = Warning;
              f_anchor = va.Annot.va_function;
              f_line = va.Annot.va_line;
              f_message =
                Printf.sprintf
                  "annotation %s(%s): no %s of '%s' is reachable from %s to \
                   witness it"
                  macro va.Annot.va_path
                  (match (ann_r && not actual.fu_read,
                          ann_w && not actual.fu_written)
                   with
                  | true, true -> "read or write"
                  | true, false -> "read"
                  | _ -> "write")
                  va.Annot.va_field va.Annot.va_function;
              f_witness = [];
            }
      end)
    annots.Annot.vars;
  (* Missing annotations, at struct granularity: after Java conversion
     the slicer only sees the library C bodies plus the annotations.
     Whatever the ground-truth plan (all user bodies) covers beyond that
     view would silently drop out of the marshal plan — the §3.2.4
     evolution hazard. *)
  let full = Marshalgen.plans file ~user_funcs ~annots in
  let post = Marshalgen.plans file ~user_funcs:library_funcs ~annots in
  let module Plan = Decaf_xpc.Marshal_plan in
  List.iter
    (fun p ->
      let name = Plan.type_id p in
      let q = List.find_opt (fun q -> Plan.type_id q = name) post in
      let covered dir f =
        match q with
        | None -> false
        | Some q -> if dir then Plan.copies_in q f else Plan.copies_out q f
      in
      let lost =
        List.filter_map
          (fun (f, _) ->
            let lost_in = Plan.copies_in p f && not (covered true f) in
            let lost_out = Plan.copies_out p f && not (covered false f) in
            match (lost_in, lost_out) with
            | false, false -> None
            | true, true -> Some (f ^ "(in+out)")
            | true, false -> Some (f ^ "(in)")
            | false, true -> Some (f ^ "(out)"))
          (Plan.fields p)
      in
      if lost <> [] then
        let line =
          match Ast.find_struct file name with
          | Some s -> s.Ast.sloc.Loc.line
          | None -> 0
        in
        emit
          {
            f_pass = Annotation_soundness;
            f_severity = Warning;
            f_anchor = name;
            f_line = line;
            f_message =
              Printf.sprintf
                "missing annotations: after Java conversion the slicer loses \
                 sight of struct %s fields [%s]; declare them with \
                 DECAF_R/W/RWVAR"
                name (String.concat " " lost);
            f_witness = [];
          })
    full;
  List.rev !findings

(* ================ pass 3: marshal boundary =========================== *)

let marshal_pass ~file ~spec ~const_env ~crossing_seeds () =
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let tab = Symtab.build file in
  (* closure of structs reachable over the XDR spec from the seeds *)
  let rec close seen name =
    if Sset.mem name seen then seen
    else
      let seen = Sset.add name seen in
      match Xdrspec.find_struct spec name with
      | None -> seen
      | Some s ->
          List.fold_left
            (fun seen (f : Xdrspec.xdr_field) ->
              let rec refs = function
                | Xdrspec.Xstruct_ref n -> [ n ]
                | Xdrspec.Xoptional t | Xdrspec.Xarray (t, _) -> refs t
                | _ -> []
              in
              List.fold_left close seen (refs f.Xdrspec.xf_type))
            seen s.Xdrspec.xs_fields
  in
  let crossing = List.fold_left close Sset.empty crossing_seeds in
  List.iter
    (fun (s : Ast.struct_def) ->
      if Sset.mem s.Ast.sname crossing then
        List.iter
          (fun (f : Ast.field) ->
            let has kind =
              List.exists
                (fun (a : Ast.attr) -> a.Ast.attr_name = kind)
                f.Ast.fattrs
            in
            (match Symtab.resolve tab f.Ast.ftyp with
            | Ast.Tptr _ when not (has "exp" || has "opt") ->
                emit
                  {
                    f_pass = Marshal_boundary;
                    f_severity = Error;
                    f_anchor = s.Ast.sname;
                    f_line = s.Ast.sloc.Loc.line;
                    f_message =
                      Printf.sprintf
                        "pointer field '%s' of crossing struct %s has no \
                         exp/opt attribute: XDR would marshal it unsoundly \
                         as optional data of unknown extent"
                        f.Ast.fname s.Ast.sname;
                    f_witness = [];
                  }
            | _ -> ());
            List.iter
              (fun (a : Ast.attr) ->
                match (a.Ast.attr_name, a.Ast.attr_arg) with
                | "exp", Some arg
                  when int_of_string_opt arg = None
                       && not (List.mem_assoc arg const_env) ->
                    emit
                      {
                        f_pass = Marshal_boundary;
                        f_severity = Warning;
                        f_anchor = s.Ast.sname;
                        f_line = s.Ast.sloc.Loc.line;
                        f_message =
                          Printf.sprintf
                            "exp(%s) on field '%s': length constant is not in \
                             const_env; XDR generation silently defaults it \
                             to 16"
                            arg f.Ast.fname;
                        f_witness = [];
                      }
                | "exp", None ->
                    emit
                      {
                        f_pass = Marshal_boundary;
                        f_severity = Error;
                        f_anchor = s.Ast.sname;
                        f_line = s.Ast.sloc.Loc.line;
                        f_message =
                          Printf.sprintf "exp attribute on field '%s' has no \
                                          length argument"
                            f.Ast.fname;
                        f_witness = [];
                      }
                | _ -> ())
              f.Ast.fattrs)
          s.Ast.sfields)
    (Ast.structs file);
  List.rev !findings

(* ================ pass 4: error flow ================================= *)

let errflow_pass ~file ~extra () =
  let syntactic = Errcheck.find_violations file ~extra in
  let flow = Errcheck.flow_violations file ~extra in
  let syn_findings =
    List.map
      (fun (v : Errcheck.violation) ->
        {
          f_pass = Error_flow;
          f_severity = Error;
          f_anchor = v.Errcheck.v_function;
          f_line = v.Errcheck.v_line;
          f_message =
            (match v.Errcheck.v_kind with
            | Errcheck.Ignored_return ->
                Printf.sprintf "error return of %s ignored" v.Errcheck.v_callee
            | Errcheck.Unchecked_variable var ->
                Printf.sprintf "result of %s stored in '%s' but never examined"
                  v.Errcheck.v_callee var);
          f_witness = [];
        })
      syntactic
  in
  let already_reported fn line =
    List.exists
      (fun (v : Errcheck.violation) ->
        v.Errcheck.v_function = fn && v.Errcheck.v_line = line)
      syntactic
  in
  let flow_findings =
    List.filter_map
      (fun (fv : Errcheck.flow_violation) ->
        match fv.Errcheck.fv_kind with
        | Errcheck.Overwritten first_line ->
            Some
              {
                f_pass = Error_flow;
                f_severity = Error;
                f_anchor = fv.Errcheck.fv_function;
                f_line = fv.Errcheck.fv_line;
                f_message =
                  Printf.sprintf
                    "untested error result of %s (stored in '%s' at line %d) \
                     is overwritten before any test"
                    fv.Errcheck.fv_callee fv.Errcheck.fv_var first_line;
                f_witness = [];
              }
        | Errcheck.Dropped ->
            if already_reported fv.Errcheck.fv_function fv.Errcheck.fv_line then
              None (* the syntactic scan already owns this site *)
            else
              Some
                {
                  f_pass = Error_flow;
                  f_severity = Error;
                  f_anchor = fv.Errcheck.fv_function;
                  f_line = fv.Errcheck.fv_line;
                  f_message =
                    Printf.sprintf
                      "error result of %s stored in '%s' is dropped on some \
                       path (tested on one branch, lost at a merge or return)"
                      fv.Errcheck.fv_callee fv.Errcheck.fv_var;
                  f_witness = [];
                })
      flow
  in
  syn_findings @ flow_findings

(* ================ pass 5: unvalidated inbound fields ================= *)

(* The static counterpart of the runtime's Xpc.Guard: every field the
   marshal plan copies IN (user level -> kernel) arrives from untrusted
   code and must be examined by kernel-placed code before it is
   trusted.  "Examined" means a relational comparison against it, a
   switch over it, or passing it to a helper whose name marks it as a
   validator (contains "valid", "check" or "clamp") — in a function the
   partition keeps at kernel level, because a check that runs at user
   level is an attacker checking its own homework.  An inbound field no
   kernel-placed function ever examines is exactly the hole the
   malicious campaign's fuzz attacks drive through. *)

let inbound_pass ~file ~plans ~kernel_funcs () =
  let module Plan = Decaf_xpc.Marshal_plan in
  let validated = ref Sset.empty in
  let consumed = ref Sset.empty in
  let rec field_names acc = function
    | Ast.Efield (base, f) | Ast.Earrow (base, f) -> field_names (f :: acc) base
    | Ast.Eindex (e, _) | Ast.Eunop (_, e) | Ast.Ecast (_, e) ->
        field_names acc e
    | _ -> acc
  in
  let note e = List.iter (fun f -> validated := Sset.add f !validated)
      (field_names [] e)
  in
  let is_validator name =
    let l = String.lowercase_ascii name in
    contains_sub l "valid" || contains_sub l "check" || contains_sub l "clamp"
  in
  let scan () (e : Ast.expr) =
    match e with
    | Ast.Ebinop ((Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne), a, b)
      ->
        note a;
        note b
    | Ast.Ecall (Ast.Eident callee, args) when is_validator callee ->
        List.iter note args
    | Ast.Efield (_, f) | Ast.Earrow (_, f) ->
        consumed := Sset.add f !consumed
    | _ -> ()
  in
  let scan_switch (s : Ast.stmt) =
    match s.Ast.skind with Ast.Sswitch (e, _) -> note e | _ -> ()
  in
  let rec walk_switches (s : Ast.stmt) =
    scan_switch s;
    match s.Ast.skind with
    | Ast.Sif (_, a, b) ->
        List.iter walk_switches a;
        List.iter walk_switches b
    | Ast.Swhile (_, body)
    | Ast.Sdo (body, _)
    | Ast.Sfor (_, _, _, body)
    | Ast.Sblock body ->
        List.iter walk_switches body
    | Ast.Sswitch (_, cases) ->
        List.iter
          (function
            | Ast.Case (_, body) | Ast.Default body ->
                List.iter walk_switches body)
          cases
    | _ -> ()
  in
  List.iter
    (fun name ->
      match Ast.find_function file name with
      | Some fn ->
          ignore (Ast.fold_exprs_stmts scan () fn.Ast.fbody);
          List.iter walk_switches fn.Ast.fbody
      | None -> ())
    kernel_funcs;
  let findings = ref [] in
  List.iter
    (fun p ->
      let name = Plan.type_id p in
      let line =
        match Ast.find_struct file name with
        | Some s -> s.Ast.sloc.Loc.line
        | None -> 0
      in
      List.iter
        (fun (f, _) ->
          (* only fields kernel-placed code actually consumes: an
             inbound field the kernel never touches cannot be driven
             through anything *)
          if
            Plan.copies_in p f
            && Sset.mem f !consumed
            && not (Sset.mem f !validated)
          then
            findings :=
              {
                f_pass = Inbound_validation;
                f_severity = Warning;
                f_anchor = name;
                f_line = line;
                f_message =
                  Printf.sprintf
                    "unvalidated inbound field: '%s' of crossing struct %s is \
                     copied in from user level and consumed by kernel-placed \
                     code, but no kernel-placed function compares or \
                     range-checks it; derive a Guard rule or validate before \
                     applying"
                    f name;
                f_witness = [];
              }
              :: !findings)
        (Plan.fields p))
    plans;
  List.rev !findings

(* ===================== driver ======================================== *)

let analyze ?atomic_roots ?(extra_errfns = []) ~file ~partition ~annots ~spec
    ~const_env ~decaf_funcs ~library_funcs () =
  let cg = Callgraph.build file in
  let atomic_roots =
    match atomic_roots with
    | Some r -> r
    | None -> default_atomic_roots partition.Partition.config
  in
  let user_funcs = partition.Partition.user in
  ignore decaf_funcs;
  let lock =
    lock_pass ~file ~cg ~atomic_roots ~nucleus:partition.Partition.nucleus
      ~user:user_funcs ()
  in
  let annot = annot_pass ~file ~cg ~annots ~user_funcs ~library_funcs () in
  let plans = Marshalgen.plans file ~user_funcs ~annots in
  let crossing_seeds = List.map Decaf_xpc.Marshal_plan.type_id plans in
  let marshal = marshal_pass ~file ~spec ~const_env ~crossing_seeds () in
  let errflow = errflow_pass ~file ~extra:extra_errfns () in
  (* only the nucleus is trusted: the driver library's C bodies run at
     user level after conversion, so their checks prove nothing *)
  let inbound =
    inbound_pass ~file ~plans ~kernel_funcs:partition.Partition.nucleus ()
  in
  let order f =
    (f.f_line, pass_name f.f_pass, f.f_anchor, f.f_message)
  in
  List.sort
    (fun a b -> compare (order a) (order b))
    (lock @ annot @ marshal @ errflow @ inbound)

let violations findings =
  List.filter (fun f -> f.f_severity = Error || f.f_severity = Warning) findings

let apply_waivers ~driver ~waivers findings =
  let matches w f =
    w.w_pass = f.f_pass && w.w_anchor = f.f_anchor && w.w_line = f.f_line
  in
  let viols = violations findings in
  let waived, unwaived =
    List.partition_map
      (fun f ->
        match List.find_opt (fun w -> matches w f) waivers with
        | Some w -> Left (f, w)
        | None -> Right f)
      viols
  in
  {
    r_driver = driver;
    r_findings = findings;
    r_waived = waived;
    r_unwaived = unwaived;
    r_assumptions = List.filter (fun f -> f.f_severity = Info) findings;
    r_unused_waivers =
      List.filter (fun w -> not (List.exists (matches w) viols)) waivers;
  }

(* ============ pass 6: event-accounting hygiene (OCaml sources) ======= *)

(* The latency cost model only stays trustworthy if every layer that
   charges time on a measured path also stamps it: a raw [Clock.consume]
   inside the XPC machinery or a driver advances the clock invisibly to
   the per-path histograms. This pass is a textual scan over the repo's
   own OCaml sources (not the MiniC driver corpus the other passes
   analyze): any [Clock.consume] call in the XPC or driver layers must
   either be replaced with the tracked-event API or carry the
   same-line waiver marker. *)

let consume_waiver_marker = "decaf-lint: consume-ok"
let consume_scan_dirs = [ "lib/xpc"; "lib/drivers" ]

let scan_clock_consume ?(dirs = consume_scan_dirs) ~root () =
  let findings = ref [] in
  List.iter
    (fun dir ->
      let abs = Filename.concat root dir in
      if Sys.file_exists abs && Sys.is_directory abs then
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".ml" then begin
              let path = Filename.concat abs f in
              let ic = open_in path in
              let lines = ref [] in
              (try
                 while true do
                   lines := input_line ic :: !lines
                 done
               with End_of_file -> ());
              close_in ic;
              let lines = Array.of_list (List.rev !lines) in
              let n = Array.length lines in
              Array.iteri
                (fun i line ->
                  (* the waiver comment may land on the next line once the
                     call no longer fits beside it *)
                  let waived =
                    contains_sub line consume_waiver_marker
                    || (i + 1 < n
                       && contains_sub lines.(i + 1) consume_waiver_marker)
                  in
                  if contains_sub line "Clock.consume" && not waived then
                    findings :=
                      {
                        f_pass = Event_accounting;
                        f_severity = Warning;
                        f_anchor = dir ^ "/" ^ f;
                        f_line = i + 1;
                        f_message =
                          "direct Clock.consume bypasses event accounting; \
                           use Clock.track/track_begin or waive with (* \
                           decaf-lint: consume-ok *)";
                        f_witness = [ String.trim line ];
                      }
                      :: !findings)
                lines
            end)
          (let fs = Sys.readdir abs in
           Array.sort compare fs;
           fs))
    dirs;
  List.rev !findings

(* ===================== rendering ===================================== *)

let to_text r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "decaf-lint %s: %d findings — %d unwaived violations, %d waived, %d \
        assumptions%s\n"
       r.r_driver
       (List.length r.r_findings)
       (List.length r.r_unwaived)
       (List.length r.r_waived)
       (List.length r.r_assumptions)
       (match r.r_unused_waivers with
       | [] -> ""
       | l -> Printf.sprintf ", %d UNUSED waivers" (List.length l)));
  let reason_of f =
    List.find_map
      (fun (f', w) -> if f' == f then Some w.w_reason else None)
      r.r_waived
  in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  [%-7s] %-7s %s:%d  %s\n" (pass_name f.f_pass)
           (severity_name f.f_severity) f.f_anchor f.f_line f.f_message);
      (match reason_of f with
      | Some reason ->
          Buffer.add_string buf (Printf.sprintf "            waived: %s\n" reason)
      | None -> ());
      if f.f_witness <> [] && f.f_severity = Error then
        Buffer.add_string buf
          (Printf.sprintf "            via: %s\n"
             (String.concat " -> " f.f_witness)))
    r.r_findings;
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "  UNUSED waiver [%s] %s:%d (%s)\n" (pass_name w.w_pass)
           w.w_anchor w.w_line w.w_reason))
    r.r_unused_waivers;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 2048 in
  let waiver_of f =
    List.find_map (fun (f', w) -> if f' == f then Some w else None) r.r_waived
  in
  Buffer.add_string buf
    (Printf.sprintf "{\"driver\":\"%s\",\"findings\":[" (json_escape r.r_driver));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      let waived, reason =
        match waiver_of f with
        | Some w -> (true, Printf.sprintf ",\"reason\":\"%s\"" (json_escape w.w_reason))
        | None -> (false, "")
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"pass\":\"%s\",\"severity\":\"%s\",\"anchor\":\"%s\",\"line\":%d,\
            \"message\":\"%s\",\"witness\":[%s],\"waived\":%b%s}"
           (pass_name f.f_pass) (severity_name f.f_severity)
           (json_escape f.f_anchor) f.f_line (json_escape f.f_message)
           (String.concat ","
              (List.map (fun w -> "\"" ^ json_escape w ^ "\"") f.f_witness))
           waived reason))
    r.r_findings;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"summary\":{\"findings\":%d,\"unwaived\":%d,\"waived\":%d,\
        \"assumptions\":%d,\"unused_waivers\":%d}}"
       (List.length r.r_findings)
       (List.length r.r_unwaived)
       (List.length r.r_waived)
       (List.length r.r_assumptions)
       (List.length r.r_unused_waivers));
  Buffer.contents buf
