(** Kernel synchronization primitives.

    Includes the paper's {e combolocks} (§3.1.3): a combolock behaves as a
    spinlock while only kernel threads contend for it, and converts to a
    semaphore once user-level code acquires it, so that kernel threads
    block instead of spinning while the decaf driver holds the lock. *)

module Waitq : sig
  type t

  val create : ?name:string -> unit -> t
  (** [name] labels the queue's {!Ktrace} identity ("name#id"). *)

  val wait : t -> unit
  (** Block the current thread on the queue. *)

  val wake_one : t -> bool
  (** Wake the oldest waiter; [false] if the queue was empty. *)

  val wake_all : t -> int
  (** Wake every waiter, returning how many were woken. *)

  val waiters : t -> int
end

module Spinlock : sig
  type t

  val create : ?name:string -> unit -> t

  val lock : t -> unit
  (** Acquire. Self-deadlock (recursive acquisition on this one-CPU
      machine) raises {!Panic.Kernel_bug}. *)

  val unlock : t -> unit
  val held : t -> bool

  val with_lock : t -> (unit -> 'a) -> 'a

  val lock_irqsave : t -> unit
  (** Acquire and mask interrupts (modelled as entering atomic context). *)

  val unlock_irqrestore : t -> unit
end

module Semaphore : sig
  type t

  val create : ?name:string -> int -> t
  val down : t -> unit
  val up : t -> unit
  val count : t -> int
end

module Mutex : sig
  type t

  val create : ?name:string -> unit -> t

  val lock : t -> unit
  (** Blocking acquire; recursive acquisition raises {!Panic.Kernel_bug}. *)

  val unlock : t -> unit
  val held : t -> bool
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Completion : sig
  type t

  val create : unit -> t
  val wait : t -> unit
  val complete : t -> unit
  val complete_all : t -> unit
  val done_ : t -> bool
end

module Combolock : sig
  type t

  type stats = {
    mutable spin_acquires : int;  (** fast-path kernel-only acquisitions *)
    mutable sem_acquires : int;  (** semaphore-path acquisitions *)
    mutable contended : int;
        (** semaphore-path acquisitions that found the lock unavailable *)
    mutable spin_to_sem : int;
        (** kernel acquisitions forced off the spin fast path because
            user level held or was waiting for the lock *)
    mutable wait_ns : int;
        (** virtual ns spent blocked, beyond the semaphore op's own cost *)
  }

  val create : ?name:string -> unit -> t

  val lock_kernel : t -> unit
  (** Acquire from kernel code: spinlock behaviour unless user-level code
      holds or waits for the lock, in which case block on the semaphore. *)

  val unlock_kernel : t -> unit

  val lock_user : t -> unit
  (** Acquire from user-level (decaf driver / driver library) code: always
      the semaphore path, and flips the lock into semaphore mode so that
      kernel threads wait rather than spin. *)

  val unlock_user : t -> unit
  val with_kernel : t -> (unit -> 'a) -> 'a
  val with_user : t -> (unit -> 'a) -> 'a
  val stats : t -> stats
  val user_mode_active : t -> bool

  val totals : unit -> stats
  (** Snapshot of machine-wide counters summed over every combolock
      since the last {!reset_totals}. *)

  val reset_totals : unit -> unit

  val set_wait_observer : (int -> unit) -> unit
  (** Register a callback invoked with the virtual ns a thread just spent
      blocked on any combolock (only when > 0). Used by the XPC dispatch
      engine to charge lock waits to the worker lane that incurred them.
      The observer survives {!reset_totals}; registering replaces the
      previous observer. *)
end
