module K = Decaf_kernel
open Decaf_xpc

let kernel_tracker_v = ref (Objtracker.create ~name:"kernel-ot" ())
let java_tracker_v = ref (Objtracker.create ~name:"JavaOT" ())
let kernel_tracker () = !kernel_tracker_v
let java_tracker () = !java_tracker_v
let is_started = ref false

let start () =
  if not !is_started then begin
    is_started := true;
    K.Clock.consume K.Cost.current.jvm_startup_ns;
    K.Klog.printk K.Klog.Info "decaf: user-level runtime started"
  end

let started () = !is_started
let restart_count = ref 0

(* Tear down the user-level runtime after a fault and come back with
   fresh object trackers. The next upcall's [start] re-registers the JVM
   startup cost; the sizeof table survives (it is staged from the driver
   source, not from runtime state). *)
let restart () =
  incr restart_count;
  kernel_tracker_v := Objtracker.create ~name:"kernel-ot" ();
  java_tracker_v := Objtracker.create ~name:"JavaOT" ();
  is_started := false;
  K.Klog.printk K.Klog.Warning
    "decaf: user-level runtime restarted (restart #%d)" !restart_count

let restarts () = !restart_count

module Helpers = struct
  let sizeof_table : (string, int) Hashtbl.t = Hashtbl.create 16

  let inb p = Jeannie.direct (fun () -> K.Io.inb p)
  let inw p = Jeannie.direct (fun () -> K.Io.inw p)
  let inl p = Jeannie.direct (fun () -> K.Io.inl p)
  let outb p v = Jeannie.direct (fun () -> K.Io.outb p v)
  let outw p v = Jeannie.direct (fun () -> K.Io.outw p v)
  let outl p v = Jeannie.direct (fun () -> K.Io.outl p v)
  let readl a = Jeannie.direct (fun () -> K.Io.readl a)
  let writel a v = Jeannie.direct (fun () -> K.Io.writel a v)
  let msleep ms = K.Sched.sleep_ns (ms * 1_000_000)

  let sizeof name =
    match Hashtbl.find_opt sizeof_table name with
    | Some n -> n
    | None -> K.Panic.bug "decaf runtime: sizeof(%s) not registered" name

  let register_sizeof name n = Hashtbl.replace sizeof_table name n
end

module Nuclear = struct
  let wq = ref None
  let count = ref 0

  let get_wq () =
    match !wq with
    | Some w -> w
    | None ->
        let w = K.Workqueue.create ~name:"decaf-nuclear" in
        wq := Some w;
        w

  let defer f =
    incr count;
    K.Workqueue.queue_work (get_wq ()) f

  let flush () = match !wq with Some w -> K.Workqueue.flush w | None -> ()
  let deferred_count () = !count
end

let reset () =
  kernel_tracker_v := Objtracker.create ~name:"kernel-ot" ();
  java_tracker_v := Objtracker.create ~name:"JavaOT" ();
  is_started := false;
  restart_count := 0;
  Hashtbl.reset Helpers.sizeof_table;
  Jeannie.reset_counters ();
  Nuclear.wq := None;
  Nuclear.count := 0
