(** Scenario plumbing shared by the experiments: boot the machine, run a
    body in a scheduler thread, collect crossing counters. *)

val boot : unit -> unit
(** Reset every subsystem: kernel, XPC domains and counters, decaf
    runtime. *)

val in_thread : (unit -> 'a) -> 'a
(** Run the body as the initial kernel thread and drive the simulation
    until it completes. *)

val env_of : Decaf_drivers.Driver_env.mode -> Decaf_drivers.Driver_env.t
val kernel_user_crossings : unit -> int
val mac : string
