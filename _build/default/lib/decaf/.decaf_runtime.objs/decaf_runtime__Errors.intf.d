lib/decaf/errors.mli:
