lib/kernel/dma.mli:
