lib/kernel/io.ml: Clock Cost List Panic
