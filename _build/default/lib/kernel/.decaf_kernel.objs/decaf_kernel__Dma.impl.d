lib/kernel/dma.ml: Faultinject Kmem
