module K = Decaf_kernel

type t = {
  rate_bps : int;
  mutable nic_rx : bytes -> unit;
  mutable peer : t -> bytes -> unit;
  (* Separate wire occupancy per direction (full duplex). *)
  mutable tx_free_at : int;
  mutable rx_free_at : int;
  mutable tx_frames : int;
  mutable tx_bytes : int;
  mutable rx_frames : int;
  mutable rx_bytes : int;
}

let create ~rate_bps () =
  {
    rate_bps;
    nic_rx = ignore;
    peer = (fun _ _ -> ());
    tx_free_at = 0;
    rx_free_at = 0;
    tx_frames = 0;
    tx_bytes = 0;
    rx_frames = 0;
    rx_bytes = 0;
  }

let connect t ~nic_rx = t.nic_rx <- nic_rx
let set_peer t peer = t.peer <- peer

let wire_time t len_bytes =
  (* ns to serialize the frame plus preamble and inter-frame gap. *)
  (len_bytes + 20) * 8 * 1_000_000_000 / t.rate_bps

let transmit t ?(on_done = fun () -> ()) frame =
  let start = max (K.Clock.now ()) t.tx_free_at in
  let finish = start + wire_time t (Bytes.length frame) in
  t.tx_free_at <- finish;
  t.tx_frames <- t.tx_frames + 1;
  t.tx_bytes <- t.tx_bytes + Bytes.length frame;
  (* A flap drops the frame in flight: the NIC sees a completed send but
     the peer never receives it. *)
  let dropped = K.Faultinject.fires ~site:"hw.link" K.Faultinject.Link_flap in
  ignore
    (K.Clock.at finish (fun () ->
         on_done ();
         if not dropped then t.peer t frame))

let inject t frame =
  let start = max (K.Clock.now ()) t.rx_free_at in
  let finish = start + wire_time t (Bytes.length frame) in
  t.rx_free_at <- finish;
  t.rx_frames <- t.rx_frames + 1;
  t.rx_bytes <- t.rx_bytes + Bytes.length frame;
  ignore (K.Clock.at finish (fun () -> t.nic_rx frame))

let tx_frames t = t.tx_frames
let tx_bytes t = t.tx_bytes
let rx_frames t = t.rx_frames
let rx_bytes t = t.rx_bytes
let rate_bps t = t.rate_bps
