lib/xpc/channel.ml: Decaf_kernel Domain Fun Hashtbl
