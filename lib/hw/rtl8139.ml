module K = Decaf_kernel
module Io = K.Io

let idr0 = 0x00
let tsd0 = 0x10
let tsad0 = 0x20
let rbstart = 0x30
let cmd = 0x37
let capr = 0x38
let imr = 0x3c
let isr = 0x3e
let tcr = 0x40
let rcr = 0x44
let config1 = 0x52
let cmd_rst = 0x10
let cmd_re = 0x08
let cmd_te = 0x04
let cmd_bufe = 0x01
let isr_rok = 0x0001
let isr_tok = 0x0004
let isr_rx_overflow = 0x0010
let n_tx_desc = 4
let tsd_own = 0x2000
let tsd_tok = 0x8000
let rx_fifo_max = 64

type t = {
  irq_line : int;
  mac : string;
  link : Link.t;
  phy : Phy.t;
  mutable region : Io.region option;
  tsd : int array;
  tsad : int array;
  tx_staged : (bytes * K.Clock.track) option array;
      (* staged frames carry their xmit-stage birth stamp, completed
         when the frame finishes serializing onto the wire *)
  rx_fifo : (bytes * K.Clock.track) Queue.t;
      (* received frames carry their wire-arrival birth stamp; the
         driver completes it when the packet reaches netif_rx *)
  mutable command : int;
  mutable mask : int;
  mutable status : int;
  mutable rbstart_v : int;
  mutable capr_v : int;
  mutable tcr_v : int;
  mutable rcr_v : int;
  mutable tx_count : int;
  mutable rx_count : int;
}


let update_irq t = if t.status land t.mask <> 0 then K.Irq.raise_irq t.irq_line

let assert_status t bits =
  t.status <- t.status lor bits;
  update_irq t

let do_reset t =
  t.command <- cmd_bufe;
  t.mask <- 0;
  t.status <- 0;
  Queue.clear t.rx_fifo;
  Array.fill t.tsd 0 n_tx_desc tsd_own;
  Array.fill t.tx_staged 0 n_tx_desc None

let transmit t n size =
  match t.tx_staged.(n) with
  | Some (frame, tr) when Bytes.length frame >= size ->
      let frame = Bytes.sub frame 0 size in
      t.tx_staged.(n) <- None;
      t.tx_count <- t.tx_count + 1;
      (* the descriptor completes when the frame leaves the wire *)
      Link.transmit t.link frame ~on_done:(fun () ->
          t.tsd.(n) <- t.tsd.(n) lor tsd_own lor tsd_tok;
          ignore (K.Clock.complete tr);
          assert_status t isr_tok)
  | Some _ | None ->
      (* Descriptor fired without (enough) staged data: transmit abort. *)
      t.tsd.(n) <- t.tsd.(n) lor tsd_own

let read t off (width : Io.width) =
  match off with
  | _ when off >= idr0 && off < idr0 + 6 -> Char.code t.mac.[off - idr0]
  | _ when off >= tsd0 && off < tsd0 + (4 * n_tx_desc) && (off - tsd0) mod 4 = 0
    ->
      t.tsd.((off - tsd0) / 4)
  | _ when off >= tsad0 && off < tsad0 + (4 * n_tx_desc) && (off - tsad0) mod 4 = 0
    ->
      t.tsad.((off - tsad0) / 4)
  | _ when off = rbstart -> t.rbstart_v
  | _ when off = cmd ->
      let bufe = if Queue.is_empty t.rx_fifo then cmd_bufe else 0 in
      t.command land lnot cmd_bufe lor bufe
  | _ when off = capr -> t.capr_v
  | _ when off = imr -> t.mask
  | _ when off = isr -> t.status
  | _ when off = tcr -> t.tcr_v
  | _ when off = rcr -> t.rcr_v
  | _ when off = config1 -> 0
  | _ ->
      ignore width;
      0

let write t off (width : Io.width) v =
  ignore width;
  match off with
  | _ when off >= tsd0 && off < tsd0 + (4 * n_tx_desc) && (off - tsd0) mod 4 = 0
    ->
      let n = (off - tsd0) / 4 in
      t.tsd.(n) <- v;
      if v land tsd_own = 0 && t.command land cmd_te <> 0 then
        transmit t n (v land 0x1fff)
  | _ when off >= tsad0 && off < tsad0 + (4 * n_tx_desc) && (off - tsad0) mod 4 = 0
    ->
      t.tsad.((off - tsad0) / 4) <- v
  | _ when off = rbstart -> t.rbstart_v <- v
  | _ when off = cmd ->
      if v land cmd_rst <> 0 then do_reset t
      else t.command <- v land (cmd_re lor cmd_te)
  | _ when off = capr -> t.capr_v <- v land 0xffff
  | _ when off = imr ->
      t.mask <- v land 0xffff;
      update_irq t
  | _ when off = isr ->
      (* write-1-to-clear *)
      t.status <- t.status land lnot (v land 0xffff)
  | _ when off = tcr -> t.tcr_v <- v
  | _ when off = rcr -> t.rcr_v <- v
  | _ -> ()

let on_rx t frame =
  if t.command land cmd_re <> 0 then
    if Queue.length t.rx_fifo >= rx_fifo_max then
      assert_status t isr_rx_overflow
    else begin
      Queue.push (frame, K.Clock.track "net.rx") t.rx_fifo;
      t.rx_count <- t.rx_count + 1;
      assert_status t isr_rok
    end

let create ~io_base ~irq ~mac ~link =
  if String.length mac <> 6 then invalid_arg "Rtl8139.create: bad MAC";
  let t =
      {
        irq_line = irq;
        mac;
        link;
        phy = Phy.create ();
        region = None;
        tsd = Array.make n_tx_desc tsd_own;
        tsad = Array.make n_tx_desc 0;
        tx_staged = Array.make n_tx_desc None;
        rx_fifo = Queue.create ();
        command = cmd_bufe;
        mask = 0;
        status = 0;
        rbstart_v = 0;
        capr_v = 0;
        tcr_v = 0;
        rcr_v = 0;
        tx_count = 0;
        rx_count = 0;
      }
  in
  t.region <-
    Some
      (Io.register_ports ~base:io_base ~len:0x100
         ~read:(fun off w -> read t off w)
         ~write:(fun off w v -> write t off w v));
  Link.connect link ~nic_rx:(on_rx t);
  t

let destroy t = Option.iter Io.release t.region
let stage_tx_buffer t n frame =
  t.tx_staged.(n) <- Some (frame, K.Clock.track "net.tx")

let take_rx t = Queue.take_opt t.rx_fifo

let rx_pending t = Queue.length t.rx_fifo
let phy t = t.phy
let tx_count t = t.tx_count
let rx_count t = t.rx_count
