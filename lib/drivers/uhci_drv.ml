module K = Decaf_kernel
module Hw = Decaf_hw
module U = Hw.Uhci_hw
module Errors = Decaf_runtime.Errors
module Runtime = Decaf_runtime.Runtime

let driver = "uhci_hcd"
let state_wire_bytes = 96

let model_box : U.t option ref = ref None

(* remembered so the registry (which probes by name, not resources) can
   re-probe the controller on insmod and hotplug re-add *)
let setup_params : (int * int) option ref = ref None

let setup_device ~io_base ~irq () =
  let model = U.create ~io_base ~irq () in
  model_box := Some model;
  setup_params := Some (io_base, irq);
  model

type adapter = {
  env : Driver_env.t;
  model : U.t;
  io_base : int;
  irq : int;
  mutable completed : int;
  mutable user_syncs : int;
      (** deferred completion-counter refreshes delivered to user level *)
}

type t = { adapter : adapter; mutable module_handle : K.Modules.handle option }

let reg a off = a.io_base + off

let outw a off v =
  if a.env.Driver_env.mode <> Driver_env.Native then
    Runtime.Helpers.outw (reg a off) v
  else K.Io.outw (reg a off) v

let inw a off =
  if a.env.Driver_env.mode <> Driver_env.Native then Runtime.Helpers.inw (reg a off)
  else K.Io.inw (reg a off)

(* --- nucleus: URB scheduling (data path) --- *)

(* Deferred kernel->user completion-counter refresh: the user-level half
   watches transfer progress for its schedule bookkeeping, but TD
   completions land in the nucleus (frame-timer context). One-way
   notification per completion — batched and flushed like E1000_drv's
   stats syncs. *)
let complete_wire_bytes = 8

let post_complete_sync a =
  if a.env.Driver_env.mode <> Driver_env.Native then
    a.env.Driver_env.notify ~name:"uhci_complete" ~bytes:complete_wire_bytes
      (fun () -> a.user_syncs <- a.user_syncs + 1)

let submit_urb a (urb : K.Usbcore.urb) =
  match urb.K.Usbcore.transfer with
  | K.Usbcore.Bulk ->
      U.submit_td a.model ~direction:urb.K.Usbcore.direction
        ~length:(Bytes.length urb.K.Usbcore.buffer)
        ~complete:(fun ~actual status ->
          urb.K.Usbcore.actual_length <- actual;
          urb.K.Usbcore.status <-
            (match status with
            | U.Td_ok -> 0
            | U.Td_stalled -> -32
            | U.Td_no_device -> -Errors.enodev);
          a.completed <- a.completed + 1;
          post_complete_sync a;
          urb.K.Usbcore.complete urb);
      Ok ()
  | K.Usbcore.Control | K.Usbcore.Interrupt ->
      (* control/interrupt endpoints unused by the storage workload *)
      Error (-Errors.einval)

let interrupt a =
  let status = K.Io.inw (reg a U.reg_usbsts) in
  if status land U.sts_usbint <> 0 then
    K.Io.outw (reg a U.reg_usbsts) U.sts_usbint

(* --- decaf driver: controller bring-up --- *)

let reset_controller a =
  outw a U.reg_usbcmd U.cmd_hcreset;
  if inw a U.reg_usbcmd land U.cmd_hcreset <> 0 then
    Errors.throw ~driver ~errno:Errors.eio "HCRESET did not clear"

let reset_root_port a =
  outw a U.reg_portsc1 U.portsc_pr;
  Runtime.Helpers.msleep 15;
  let portsc = inw a U.reg_portsc1 in
  if portsc land U.portsc_ped = 0 then
    Errors.throw ~driver ~errno:Errors.enodev "port did not enable";
  (* acknowledge the connect change *)
  outw a U.reg_portsc1 (portsc lor U.portsc_csc)

(* Enumerate the attached device: descriptor fetches and configuration
   are kernel usbcore services, each a downcall from the decaf driver. *)
let enumerate_port a =
  let control name = a.env.Driver_env.downcall ~name ~bytes:32 (fun () -> ()) in
  control "usb_get_device_descriptor";
  control "usb_set_address";
  control "usb_get_device_descriptor_full";
  control "usb_get_config_descriptor";
  control "usb_set_configuration";
  control "usb_get_string_manufacturer";
  control "usb_get_string_product";
  control "usb_register_dev"

let start_schedule a =
  outw a U.reg_usbintr 0x000f;
  outw a U.reg_usbcmd U.cmd_rs

let stop_schedule a = outw a U.reg_usbcmd 0

let probe env io_base irq =
  match !model_box with
  | None -> Error (-Errors.enodev)
  | Some model ->
      let a = { env; model; io_base; irq; completed = 0; user_syncs = 0 } in
      let rc =
        env.Driver_env.upcall ~name:"uhci_probe" ~bytes:state_wire_bytes
          (fun () ->
            Errors.to_errno (fun () ->
                reset_controller a;
                reset_root_port a;
                enumerate_port a;
                a.env.Driver_env.downcall ~name:"request_irq" ~bytes:16
                  (fun () ->
                    K.Irq.request_irq a.irq ~name:driver (fun () -> interrupt a));
                (* give the line back if HCD registration faults, so a
                   supervisor retry can claim it again *)
                Errors.protect
                  ~cleanup:(fun () -> K.Irq.free_irq a.irq)
                  (fun () ->
                    a.env.Driver_env.downcall ~name:"usb_register_hcd"
                      ~bytes:32 (fun () ->
                        K.Usbcore.register_hcd ~name:driver
                          {
                            K.Usbcore.hcd_submit_urb =
                              (fun urb -> submit_urb a urb);
                            hcd_frame_number =
                              (fun () -> K.Io.inw (reg a U.reg_frnum));
                          });
                    start_schedule a)))
      in
      if rc = 0 then Ok a else Error rc

let active_box : t option ref = ref None
let active () = !active_box

let insmod env ~io_base ~irq =
  (* Singleton host controller: refuse a second concurrent bind. *)
  if K.Modules.is_loaded driver then Error (-Errors.ebusy)
  else
  let adapter_box = ref None in
  let init () =
    match probe env io_base irq with
    | Ok a ->
        adapter_box := Some a;
        Ok ()
    | Error rc -> Error rc
  in
  let exit () =
    match !adapter_box with
    | Some a ->
        stop_schedule a;
        K.Usbcore.unregister_hcd ();
        K.Irq.free_irq a.irq
    | None -> ()
  in
  match K.Modules.insmod ~name:driver ~init ~exit with
  | Ok handle -> (
      match !adapter_box with
      | Some adapter ->
          let t = { adapter; module_handle = Some handle } in
          active_box := Some t;
          Ok t
      | None -> Error (-Errors.enodev))
  | Error rc -> Error rc

let rmmod t =
  (match t.module_handle with
  | Some h ->
      K.Modules.rmmod h;
      t.module_handle <- None
  | None -> ());
  match !active_box with Some t' when t' == t -> active_box := None | _ -> ()

(* --- power management --- *)

let suspend t =
  let a = t.adapter in
  a.env.Driver_env.upcall ~name:"uhci_suspend" ~bytes:state_wire_bytes
    (fun () -> stop_schedule a)

let resume t =
  let a = t.adapter in
  a.env.Driver_env.upcall ~name:"uhci_resume" ~bytes:state_wire_bytes
    (fun () -> start_schedule a)

let init_latency_ns t =
  match t.module_handle with Some h -> K.Modules.init_latency_ns h | None -> 0

let urbs_completed t = t.adapter.completed
let user_complete_syncs t = t.adapter.user_syncs

module Core = struct
  type nonrec t = t

  (* registry/campaign row name; the kernel module stays "uhci_hcd" *)
  let name = "uhci-hcd"
  let bus = K.Hotplug.Usb
  let ids = []

  let probe env ~dev:_ =
    match !setup_params with
    | Some (io_base, irq) -> insmod env ~io_base ~irq
    | None -> Error (-Errors.enodev)

  let remove = rmmod
  let suspend = suspend
  let resume = resume
  let owns _t id = id = driver
  let deferred_syncs = user_complete_syncs
  let init_latency_ns = init_latency_ns
end
