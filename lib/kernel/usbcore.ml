type direction = Dir_in | Dir_out
type transfer = Control | Bulk | Interrupt

type urb = {
  transfer : transfer;
  direction : direction;
  endpoint : int;
  buffer : Bytes.t;
  mutable actual_length : int;
  mutable status : int;
  mutable complete : urb -> unit;
}

type hcd_ops = {
  hcd_submit_urb : urb -> (unit, int) result;
  hcd_frame_number : unit -> int;
}

let hcd : (string * hcd_ops) option ref = ref None

let alloc_urb ~transfer ~direction ~endpoint buffer =
  {
    transfer;
    direction;
    endpoint;
    buffer;
    actual_length = 0;
    status = 0;
    complete = ignore;
  }

let register_hcd ~name ops =
  match !hcd with
  | Some (existing, _) ->
      Panic.bug "usb: HCD %s already registered (adding %s)" existing name
  | None ->
      hcd := Some (name, ops);
      Klog.printk Klog.Info "usb: HCD %s registered" name;
      Hotplug.publish
        (Hotplug.Device_added
           { bus = Hotplug.Usb; id = name; vendor = 0; device = 0 })

let unregister_hcd () =
  (match !hcd with
  | Some (name, _) ->
      Hotplug.publish (Hotplug.Device_removed { bus = Hotplug.Usb; id = name })
  | None -> ());
  hcd := None
let hcd_name () = Option.map fst !hcd

let require_hcd () =
  match !hcd with
  | Some (_, ops) -> ops
  | None -> Panic.bug "usb: no host controller registered"

let submit_urb urb = (require_hcd ()).hcd_submit_urb urb

let bulk_msg ~direction ~endpoint buffer =
  Sched.assert_may_block "usb_bulk_msg";
  let urb = alloc_urb ~transfer:Bulk ~direction ~endpoint buffer in
  let done_ = Sync.Completion.create () in
  urb.complete <- (fun _ -> Sync.Completion.complete done_);
  match submit_urb urb with
  | Error e -> Error e
  | Ok () ->
      Sync.Completion.wait done_;
      if urb.status = 0 then Ok urb.actual_length else Error urb.status

let frame_number () = (require_hcd ()).hcd_frame_number ()
let reset () = hcd := None
