(** Source positions: 1-based line numbers into the original driver
    source, kept on every AST node so DriverSlicer can patch the original
    text rather than emit preprocessed output (§3.2.1). *)

type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let make ~line ~col = { line; col }
let pp ppf t = Format.fprintf ppf "%d:%d" t.line t.col
