lib/hw/phy.ml: Array Decaf_kernel
