(** Register-level model of a UHCI USB 1.1 host controller with a flash
    drive attached to root port 1.

    The controller decodes a 32-byte port window. While running it
    advances one frame per millisecond and moves at most ~1280 bytes of
    bulk data per frame (the USB 1.1 full-speed budget), completing
    transfer descriptors submitted through {!submit_td} — the model's
    stand-in for the frame-list DMA schedule. *)

type t

val reg_usbcmd : int
(** 0x00 (16-bit): bit 0 run/stop, bit 1 host-controller reset
    (self-clearing). *)

val reg_usbsts : int
(** 0x02 (16-bit): bit 0 = transfer interrupt; write 1 to clear. *)

val reg_usbintr : int
(** 0x04 (16-bit): non-zero enables transfer interrupts. *)

val reg_frnum : int
(** 0x06 (16-bit): frame counter. *)

val reg_portsc1 : int
(** 0x10 (16-bit): bit 0 connect status, bit 1 connect change (w1c),
    bit 2 port enabled, bit 9 port reset (self-clearing). *)

val reg_portsc2 : int

val cmd_rs : int
val cmd_hcreset : int
val sts_usbint : int
val portsc_ccs : int
val portsc_csc : int
val portsc_ped : int
val portsc_pr : int

type td_status = Td_ok | Td_stalled | Td_no_device

val create : io_base:int -> irq:int -> unit -> t
val destroy : t -> unit

val submit_td :
  t ->
  direction:Decaf_kernel.Usbcore.direction ->
  length:int ->
  complete:(actual:int -> td_status -> unit) ->
  unit
(** Queue a bulk transfer descriptor for the flash drive; it completes
    from frame processing. Submitting while the port is disabled
    completes with [Td_no_device]. *)

val pending_tds : t -> int
val frames_run : t -> int
val drive_bytes_written : t -> int
val drive_bytes_read : t -> int
