(** The decaf runtime (user level) and nuclear runtime (kernel), shared
    by every decaf driver (§3).

    Holds the two object trackers — the kernel-side tracker of the
    Nooks lineage and the user-level "JavaOT" keyed by (C pointer, type
    id) — plus the helper routines the paper found necessary but
    inexpressible in Java: [sizeof], programmed I/O, and
    memory-mapped I/O, each exported to the decaf driver through the
    Jeannie bridge. *)

val kernel_tracker : unit -> Decaf_xpc.Objtracker.t
val java_tracker : unit -> Decaf_xpc.Objtracker.t
(** The user-level tracker ("JavaOT"). *)

val start : unit -> unit
(** Start the managed runtime for user-level driver code. The first
    start after {!reset} charges the JVM startup cost; later calls are
    no-ops. *)

val started : unit -> bool

val restart : unit -> unit
(** Restart the user-level runtime after a decaf-driver fault: both
    object trackers are rebuilt empty and the runtime returns to the
    not-started state, so the next upcall pays JVM startup again and
    re-registers its objects. The sizeof table is kept. *)

val restarts : unit -> int
(** Restarts since the last {!reset}. *)

(** {1 Helper routines}

    Callable from the decaf driver; each performs the operation in the
    driver library via a direct Jeannie call. *)

module Helpers : sig
  val inb : int -> int
  val inw : int -> int
  val inl : int -> int
  val outb : int -> int -> unit
  val outw : int -> int -> unit
  val outl : int -> int -> unit
  val readl : int -> int
  val writel : int -> int -> unit
  val msleep : int -> unit
  (** Blocking sleep in milliseconds (the paper's
      [DriverWrappers.Java_msleep]). *)

  val sizeof : string -> int
  (** Size of a named kernel structure, per the registered table — the C
      [sizeof()] escape the paper describes. *)

  val register_sizeof : string -> int -> unit
end

(** {1 Nuclear runtime} *)

module Nuclear : sig
  val defer : (unit -> unit) -> unit
  (** Queue work that may block (and therefore may XPC up to the decaf
      driver) from high-priority kernel code — the watchdog-timer
      pattern of §3.1.3. *)

  val flush : unit -> unit
  (** Wait until all deferred work has run (process context only). *)

  val deferred_count : unit -> int
end

val reset : unit -> unit
(** Forget trackers, sizeof table, counters and worker state (reboot). *)
