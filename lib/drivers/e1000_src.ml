let source =
  {|#include <linux/module.h>
#include <linux/pci.h>
#include <linux/netdevice.h>
#include "e1000_hw.h"

#define PCI_LEN 64
#define E1000_CTRL 0
#define E1000_STATUS 8
#define E1000_EERD 20
#define E1000_MDIC 32
#define E1000_ICR 192
#define E1000_IMS 208
#define E1000_IMC 216
#define E1000_RCTL 256
#define E1000_TCTL 1024
#define E1000_TDT  14360
#define E1000_RDT  10264

typedef unsigned int __le32;

struct e1000_tx_ring {
  int count;
  int next_to_use;
  int next_to_clean;
  long long dma;
  uint32_t * __attribute__((exp(TX_RING_LEN))) desc;
};

struct e1000_rx_ring {
  int count;
  int next_to_use;
  int next_to_clean;
  long long dma;
  uint32_t * __attribute__((exp(RX_RING_LEN))) desc;
};

struct e1000_hw {
  int mac_type;
  int phy_type;
  int media_type;
  int autoneg;
  int fc;
  int ffe_config_state;
  int wait_autoneg_complete;
  unsigned int io_base;
  char mac_addr[6];
};

struct e1000_adapter {
  struct e1000_tx_ring tx_ring;    /* first member: aliases the adapter */
  struct e1000_rx_ring rx_ring;
  struct e1000_hw hw;
  uint32_t * __attribute__((exp(PCI_LEN))) config_space;
  int msg_enable;
  int bd_number;
  int rx_buffer_len;
  int num_tx_queues;
  int link_up;
  int itr;
  int smartspeed;
  char ifname[16];
};

struct e1000_option {
  int type;
  int min;
  int max;
  int def;
};

/* ---- kernel imports ---- */
int pci_enable_device(struct e1000_adapter *adapter);
void pci_set_master(struct e1000_adapter *adapter);
int pci_set_mwi(struct e1000_adapter *adapter);
unsigned int pci_read_config_dword(struct e1000_adapter *adapter, int off);
int request_irq(int irq, int handler);
void free_irq(int irq);
int register_netdev(struct e1000_adapter *adapter);
void unregister_netdev(struct e1000_adapter *adapter);
void netif_start_queue(struct e1000_adapter *adapter);
void netif_stop_queue(struct e1000_adapter *adapter);
void netif_wake_queue(struct e1000_adapter *adapter);
void netif_carrier_on(struct e1000_adapter *adapter);
void netif_carrier_off(struct e1000_adapter *adapter);
void netif_rx(struct e1000_adapter *adapter, int len);
unsigned int ioread32(unsigned int addr);
void iowrite32(unsigned int addr, unsigned int value);
int kmalloc_ring(int size);
void kfree_ring(int ptr);
void printk_info(int code);
void udelay(int usec);
void msec_delay_irq(int msec);
void mod_timer(int expires);
void del_timer(int unused);
void schedule_work(int unused);

/* ================= e1000_hw.c: hardware layer ================= */

static int e1000_read_phy_reg(struct e1000_hw *hw, int reg_addr, int *phy_data) {
  unsigned int mdic;
  iowrite32(E1000_MDIC, (reg_addr << 16) | 0x8000000);
  udelay(50);
  mdic = ioread32(E1000_MDIC);
  if (!(mdic & 0x10000000))
    return -2;
  *phy_data = mdic & 0xffff;
  return 0;
}

static int e1000_write_phy_reg(struct e1000_hw *hw, int reg_addr, int phy_data) {
  unsigned int mdic;
  iowrite32(E1000_MDIC, (reg_addr << 16) | 0x4000000 | phy_data);
  udelay(50);
  mdic = ioread32(E1000_MDIC);
  if (!(mdic & 0x10000000))
    return -2;
  return 0;
}

static int e1000_read_eeprom(struct e1000_hw *hw, int offset, int *data) {
  unsigned int eerd;
  int i;
  iowrite32(E1000_EERD, (offset << 8) | 1);
  for (i = 0; i < 100; i++) {
    eerd = ioread32(E1000_EERD);
    if (eerd & 16) {
      *data = (eerd >> 16) & 0xffff;
      return 0;
    }
    udelay(5);
  }
  return -2;
}

static int e1000_validate_eeprom_checksum(struct e1000_hw *hw) {
  int checksum = 0;
  int data;
  int ret_val;
  int i;
  for (i = 0; i < 64; i++) {
    ret_val = e1000_read_eeprom(hw, i, &data);
    if (ret_val)
      return ret_val;
    checksum = (checksum + data) & 0xffff;
  }
  if (checksum != 0xbaba)
    return -5;
  return 0;
}

static int e1000_read_mac_addr(struct e1000_hw *hw) {
  int data;
  int ret_val;
  int i;
  for (i = 0; i < 3; i++) {
    ret_val = e1000_read_eeprom(hw, i, &data);
    if (ret_val)
      return ret_val;
    hw->mac_addr[2 * i] = data & 0xff;
    hw->mac_addr[2 * i + 1] = (data >> 8) & 0xff;
  }
  return 0;
}

static int e1000_phy_hw_reset(struct e1000_hw *hw) {
  unsigned int ctrl;
  ctrl = ioread32(E1000_CTRL);
  iowrite32(E1000_CTRL, ctrl | 0x80000000);
  udelay(100);
  iowrite32(E1000_CTRL, ctrl);
  udelay(150);
  return 0;
}

static int e1000_phy_reset(struct e1000_hw *hw) {
  int ret_val;
  int phy_data;
  ret_val = e1000_phy_hw_reset(hw);
  if (ret_val)
    return ret_val;
  ret_val = e1000_read_phy_reg(hw, 0, &phy_data);
  if (ret_val)
    return ret_val;
  phy_data = phy_data | 0x8000;
  /* BUG: reset write result ignored */
  e1000_write_phy_reg(hw, 0, phy_data);
  udelay(1);
  return 0;
}

static int e1000_detect_gig_phy(struct e1000_hw *hw) {
  int phy_id;
  int ret_val;
  ret_val = e1000_read_phy_reg(hw, 2, &phy_id);
  if (ret_val)
    return ret_val;
  if (phy_id == 0x141) {
    hw->phy_type = 2;
    return 0;
  }
  hw->phy_type = 0;
  return -19;
}

static int e1000_phy_setup_autoneg(struct e1000_hw *hw) {
  int ret_val;
  int autoneg_adv;
  ret_val = e1000_read_phy_reg(hw, 4, &autoneg_adv);
  if (ret_val)
    return ret_val;
  autoneg_adv = autoneg_adv | 0x1e1;
  ret_val = e1000_write_phy_reg(hw, 4, autoneg_adv);
  if (ret_val)
    return ret_val;
  /* BUG: gigabit control write unchecked */
  e1000_write_phy_reg(hw, 9, 0x300);
  return 0;
}

static int e1000_wait_autoneg(struct e1000_hw *hw) {
  int i;
  int phy_data;
  int ret_val;
  for (i = 0; i < 45; i++) {
    ret_val = e1000_read_phy_reg(hw, 1, &phy_data);
    if (ret_val)
      return ret_val;
    if (phy_data & 0x20)
      return 0;
    msec_delay_irq(100);
  }
  return -110;
}

static int e1000_config_dsp_after_link_change(struct e1000_hw *hw, int link_up) {
  int ret_val;
  int phy_saved_data;
  int phy_data;
  int speed;
  if (hw->phy_type != 2)
    return 0;
  if (link_up) {
    ret_val = e1000_read_phy_reg(hw, 17, &phy_data);
    if (ret_val)
      return ret_val;
    speed = phy_data & 0xc000;
    if (speed != 0x8000 && hw->ffe_config_state == 1) {
      ret_val = e1000_read_phy_reg(hw, 0x2f5b, &phy_saved_data);
      if (ret_val)
        return ret_val;
      ret_val = e1000_write_phy_reg(hw, 0x2f5b, 0x3);
      if (ret_val)
        return ret_val;
      msec_delay_irq(20);
      ret_val = e1000_write_phy_reg(hw, 0x0, 0x140);
      if (ret_val)
        return ret_val;
      /* BUG: restoring saved DSP state is not checked */
      e1000_write_phy_reg(hw, 0x2f5b, phy_saved_data);
      hw->ffe_config_state = 0;
    }
  } else {
    if (hw->ffe_config_state == 0) {
      /* BUG: forcing FFE configuration unchecked */
      e1000_write_phy_reg(hw, 0x2f5b, 0x8);
      hw->ffe_config_state = 1;
    }
  }
  return 0;
}

static int e1000_config_mac_to_phy(struct e1000_hw *hw) {
  unsigned int ctrl;
  int phy_data;
  int ret_val;
  ctrl = ioread32(E1000_CTRL);
  ctrl = ctrl | 0x1;
  ret_val = e1000_read_phy_reg(hw, 17, &phy_data);
  if (ret_val)
    return ret_val;
  if (phy_data & 0x2000)
    ctrl = ctrl | 0x1000;
  iowrite32(E1000_CTRL, ctrl);
  return 0;
}

static int e1000_force_mac_fc(struct e1000_hw *hw) {
  unsigned int ctrl;
  ctrl = ioread32(E1000_CTRL);
  if (hw->fc == 1)
    ctrl = ctrl | 0x8000000;
  if (hw->fc == 2)
    ctrl = ctrl | 0x10000000;
  if (hw->fc > 3)
    return -22;
  iowrite32(E1000_CTRL, ctrl);
  return 0;
}

static int e1000_config_fc_after_link_up(struct e1000_hw *hw) {
  int ret_val;
  int mii_status;
  int mii_nway_adv;
  if (hw->fc == 0) {
    ret_val = e1000_force_mac_fc(hw);
    if (ret_val)
      return ret_val;
    return 0;
  }
  ret_val = e1000_read_phy_reg(hw, 1, &mii_status);
  if (ret_val)
    return ret_val;
  if (!(mii_status & 0x20))
    return 0;
  ret_val = e1000_read_phy_reg(hw, 4, &mii_nway_adv);
  if (ret_val)
    return ret_val;
  if (mii_nway_adv & 0x400)
    hw->fc = 3;
  /* BUG: the final flow-control force is unchecked */
  e1000_force_mac_fc(hw);
  return 0;
}

static int e1000_setup_copper_link(struct e1000_hw *hw) {
  int ret_val;
  ret_val = e1000_detect_gig_phy(hw);
  if (ret_val)
    return ret_val;
  ret_val = e1000_phy_reset(hw);
  if (ret_val)
    return ret_val;
  if (hw->autoneg) {
    ret_val = e1000_phy_setup_autoneg(hw);
    if (ret_val)
      return ret_val;
    if (hw->wait_autoneg_complete) {
      ret_val = e1000_wait_autoneg(hw);
      if (ret_val)
        return ret_val;
    }
  }
  ret_val = e1000_config_mac_to_phy(hw);
  if (ret_val)
    return ret_val;
  /* BUG: flow-control configuration failure is dropped */
  e1000_config_fc_after_link_up(hw);
  return 0;
}

static int e1000_setup_link(struct e1000_hw *hw) {
  int ret_val;
  if (hw->media_type == 0) {
    ret_val = e1000_setup_copper_link(hw);
    if (ret_val)
      return ret_val;
  }
  iowrite32(E1000_IMS, 0);
  return 0;
}

static int e1000_id_led_init(struct e1000_hw *hw) {
  int eeprom_data;
  int ret_val;
  ret_val = e1000_read_eeprom(hw, 4, &eeprom_data);
  if (ret_val)
    return ret_val;
  if (eeprom_data == 0)
    return -22;
  return 0;
}

static int e1000_setup_led(struct e1000_hw *hw) {
  int ledctl;
  /* BUG: LED PHY write result dropped */
  e1000_write_phy_reg(hw, 24, 0x1);
  ledctl = ioread32(E1000_CTRL);
  iowrite32(E1000_CTRL, ledctl | 0x40);
  return 0;
}

static int e1000_cleanup_led(struct e1000_hw *hw) {
  /* BUG: LED restore write unchecked */
  e1000_write_phy_reg(hw, 24, 0x0);
  return 0;
}

static int e1000_reset_hw(struct e1000_hw *hw) {
  unsigned int ctrl;
  iowrite32(E1000_IMC, 0xffffffff);
  iowrite32(E1000_RCTL, 0);
  iowrite32(E1000_TCTL, 0x8);
  ctrl = ioread32(E1000_CTRL);
  iowrite32(E1000_CTRL, ctrl | 0x4000000);
  msec_delay_irq(10);
  iowrite32(E1000_IMC, 0xffffffff);
  return 0;
}

static int e1000_init_hw(struct e1000_hw *hw) {
  int ret_val;
  int i;
  ret_val = e1000_id_led_init(hw);
  if (ret_val)
    return ret_val;
  for (i = 0; i < 16; i++)
    iowrite32(E1000_CTRL + 4 * i, 0);
  ret_val = e1000_setup_link(hw);
  if (ret_val)
    return ret_val;
  /* BUG: LED setup failure ignored during init */
  e1000_setup_led(hw);
  return 0;
}

static int e1000_get_speed_and_duplex(struct e1000_hw *hw, int *speed, int *duplex) {
  unsigned int status;
  status = ioread32(E1000_STATUS);
  if (status & 0x40)
    *speed = 100;
  else
    *speed = 1000;
  if (status & 0x1)
    *duplex = 1;
  else
    *duplex = 0;
  return 0;
}


static int e1000_check_polarity(struct e1000_hw *hw, int *polarity) {
  int ret_val;
  int phy_data;
  ret_val = e1000_read_phy_reg(hw, 17, &phy_data);
  if (ret_val)
    return ret_val;
  *polarity = (phy_data >> 1) & 1;
  return 0;
}

static int e1000_check_downshift(struct e1000_hw *hw) {
  int ret_val;
  int phy_data;
  ret_val = e1000_read_phy_reg(hw, 19, &phy_data);
  if (ret_val)
    return ret_val;
  if (phy_data & 0x20)
    return 1;
  return 0;
}

static int e1000_get_cable_length(struct e1000_hw *hw, int *min_length) {
  int ret_val;
  int cable_length;
  ret_val = e1000_read_phy_reg(hw, 26, &cable_length);
  if (ret_val)
    return ret_val;
  *min_length = (cable_length >> 7) & 7;
  /* BUG: polarity probe result dropped */
  e1000_check_polarity(hw, &cable_length);
  return 0;
}

static int e1000_phy_igp_get_info(struct e1000_hw *hw) {
  int ret_val;
  int min_length;
  ret_val = e1000_get_cable_length(hw, &min_length);
  if (ret_val)
    return ret_val;
  /* BUG: downshift probe unchecked */
  e1000_check_downshift(hw);
  return 0;
}

static int e1000_phy_m88_get_info(struct e1000_hw *hw) {
  int phy_data;
  /* BUG: extended status read unchecked */
  e1000_read_phy_reg(hw, 27, &phy_data);
  /* BUG: specific status read unchecked */
  e1000_read_phy_reg(hw, 17, &phy_data);
  return 0;
}

static int e1000_phy_get_info(struct e1000_hw *hw) {
  if (hw->phy_type == 2)
    return e1000_phy_m88_get_info(hw);
  return e1000_phy_igp_get_info(hw);
}

static int e1000_smartspeed_probe(struct e1000_hw *hw) {
  int ret_val;
  int phy_status;
  ret_val = e1000_read_phy_reg(hw, 1, &phy_status);
  if (ret_val)
    return ret_val;
  if (!(phy_status & 0x20)) {
    /* BUG: autoneg restart unchecked */
    e1000_write_phy_reg(hw, 0, 0x1200);
  }
  return 0;
}

static int e1000_led_on(struct e1000_hw *hw) {
  unsigned int ledctl;
  ledctl = ioread32(E1000_CTRL);
  iowrite32(E1000_CTRL, ledctl | 0x40);
  /* BUG: LED mode PHY write unchecked */
  e1000_write_phy_reg(hw, 24, 0x11);
  return 0;
}

static int e1000_led_off(struct e1000_hw *hw) {
  unsigned int ledctl;
  ledctl = ioread32(E1000_CTRL);
  iowrite32(E1000_CTRL, ledctl & ~0x40);
  /* BUG: LED mode PHY write unchecked */
  e1000_write_phy_reg(hw, 24, 0x10);
  return 0;
}

static int e1000_write_vfta(struct e1000_hw *hw, int offset, int value) {
  iowrite32(E1000_RCTL + 0x600 + 4 * offset, value);
  return 0;
}

static int e1000_clear_vfta(struct e1000_hw *hw) {
  int offset;
  for (offset = 0; offset < 128; offset++)
    e1000_write_vfta(hw, offset, 0);
  return 0;
}

static int e1000_get_bus_info(struct e1000_hw *hw) {
  unsigned int status;
  status = ioread32(E1000_STATUS);
  hw->mac_type = (status >> 8) & 3;
  return 0;
}

static int e1000_disable_pciex_master(struct e1000_hw *hw) {
  unsigned int ctrl;
  int i;
  ctrl = ioread32(E1000_CTRL);
  iowrite32(E1000_CTRL, ctrl | 0x4);
  for (i = 0; i < 100; i++) {
    if (!(ioread32(E1000_STATUS) & 0x80000))
      return 0;
    udelay(100);
  }
  return -110;
}

static int e1000_set_d0_lplu_state(struct e1000_hw *hw, int active) {
  int ret_val;
  int phy_data;
  ret_val = e1000_read_phy_reg(hw, 25, &phy_data);
  if (ret_val)
    return ret_val;
  if (active)
    phy_data = phy_data | 0x2;
  else
    phy_data = phy_data & ~0x2;
  /* BUG: LPLU state write unchecked */
  e1000_write_phy_reg(hw, 25, phy_data);
  return 0;
}

static int e1000_set_vco_speed(struct e1000_hw *hw) {
  int default_page;
  int ret_val;
  ret_val = e1000_read_phy_reg(hw, 31, &default_page);
  if (ret_val)
    return ret_val;
  ret_val = e1000_write_phy_reg(hw, 31, 0x5);
  if (ret_val)
    return ret_val;
  /* BUG: restoring the default page is unchecked */
  e1000_write_phy_reg(hw, 31, default_page);
  return 0;
}

static int e1000_config_collision_dist(struct e1000_hw *hw) {
  unsigned int tctl;
  tctl = ioread32(E1000_TCTL);
  tctl = tctl | 0x200000;
  iowrite32(E1000_TCTL, tctl);
  return 0;
}

/* ================= module parameters ================= */

static int e1000_validate_option(int value, struct e1000_option *opt) {
  if (opt->type == 0) {
    if (value == 0 || value == 1)
      return value;
    return opt->def;
  }
  if (opt->type == 1) {
    if (value >= opt->min && value <= opt->max)
      return value;
    printk_info(22);
    return opt->def;
  }
  return opt->def;
}

static void e1000_check_options(struct e1000_adapter *adapter) {
  struct e1000_option opt;
  opt.type = 1;
  opt.min = 80;
  opt.max = 256;
  opt.def = 256;
  adapter->tx_ring.count = e1000_validate_option(adapter->tx_ring.count, &opt);
  adapter->rx_ring.count = e1000_validate_option(adapter->rx_ring.count, &opt);
  opt.type = 1;
  opt.min = 0;
  opt.max = 100000;
  opt.def = 3;
  adapter->itr = e1000_validate_option(adapter->itr, &opt);
  opt.type = 0;
  opt.def = 1;
  adapter->smartspeed = e1000_validate_option(adapter->smartspeed, &opt);
}

/* ================= resource management ================= */

static int e1000_setup_tx_resources(struct e1000_adapter *adapter,
                                    struct e1000_tx_ring *tx_ring) {
  int size = tx_ring->count * 16;
  int mem = kmalloc_ring(size);
  if (!mem)
    return -12;
  tx_ring->next_to_use = 0;
  tx_ring->next_to_clean = 0;
  tx_ring->dma = mem;
  return 0;
}

static int e1000_setup_all_tx_resources(struct e1000_adapter *adapter) {
  int err = e1000_setup_tx_resources(adapter, &adapter->tx_ring);
  if (err)
    return err;
  return 0;
}

static int e1000_setup_rx_resources(struct e1000_adapter *adapter,
                                    struct e1000_rx_ring *rx_ring) {
  int size = rx_ring->count * 16;
  int mem = kmalloc_ring(size);
  if (!mem)
    return -12;
  rx_ring->next_to_use = 0;
  rx_ring->next_to_clean = 0;
  rx_ring->dma = mem;
  return 0;
}

static int e1000_setup_all_rx_resources(struct e1000_adapter *adapter) {
  int err = e1000_setup_rx_resources(adapter, &adapter->rx_ring);
  if (err)
    return err;
  return 0;
}

static void e1000_free_all_tx_resources(struct e1000_adapter *adapter) {
  kfree_ring(adapter->tx_ring.dma);
  adapter->tx_ring.dma = 0;
}

static void e1000_free_all_rx_resources(struct e1000_adapter *adapter) {
  kfree_ring(adapter->rx_ring.dma);
  adapter->rx_ring.dma = 0;
}

/* ================= configuration ================= */

static void e1000_configure_tx(struct e1000_adapter *adapter) {
  iowrite32(E1000_TCTL, 0x3103f0fa);
  iowrite32(E1000_TDT, 0);
}

static void e1000_configure_rx(struct e1000_adapter *adapter) {
  iowrite32(E1000_RCTL, 0x8002);
  iowrite32(E1000_RDT, adapter->rx_ring.count - 1);
}

static void e1000_save_config_space(struct e1000_adapter *adapter) {
  int i;
  DECAF_RWVAR(adapter->config_space);
  for (i = 0; i < 16; i++)
    adapter->config_space[i] = pci_read_config_dword(adapter, 4 * i);
}

static int e1000_sw_init(struct e1000_adapter *adapter) {
  adapter->rx_buffer_len = 2048;
  adapter->num_tx_queues = 1;
  adapter->hw.media_type = 0;
  adapter->hw.autoneg = 1;
  adapter->hw.wait_autoneg_complete = 1;
  adapter->hw.fc = 3;
  e1000_check_options(adapter);
  return 0;
}

static int e1000_reset(struct e1000_adapter *adapter) {
  int ret_val;
  ret_val = e1000_reset_hw(&adapter->hw);
  if (ret_val)
    return ret_val;
  ret_val = e1000_init_hw(&adapter->hw);
  if (ret_val)
    return ret_val;
  return 0;
}

/* ================= data path: driver nucleus ================= */

static void e1000_unmap_and_free_tx_resource(struct e1000_adapter *adapter, int i) {
  adapter->tx_ring.desc[i] = 0;
}

static int e1000_clean_tx_irq(struct e1000_adapter *adapter) {
  struct e1000_tx_ring *tx_ring = &adapter->tx_ring;
  int cleaned = 0;
  while (tx_ring->next_to_clean != tx_ring->next_to_use) {
    e1000_unmap_and_free_tx_resource(adapter, tx_ring->next_to_clean);
    tx_ring->next_to_clean = (tx_ring->next_to_clean + 1) % tx_ring->count;
    cleaned = cleaned + 1;
  }
  if (cleaned)
    netif_wake_queue(adapter);
  return cleaned;
}

static int e1000_clean_rx_irq(struct e1000_adapter *adapter) {
  struct e1000_rx_ring *rx_ring = &adapter->rx_ring;
  int cleaned = 0;
  while (rx_ring->next_to_clean != rx_ring->next_to_use) {
    netif_rx(adapter, adapter->rx_buffer_len);
    rx_ring->next_to_clean = (rx_ring->next_to_clean + 1) % rx_ring->count;
    cleaned = cleaned + 1;
  }
  return cleaned;
}

static void e1000_alloc_rx_buffers(struct e1000_adapter *adapter) {
  struct e1000_rx_ring *rx_ring = &adapter->rx_ring;
  rx_ring->next_to_use = (rx_ring->next_to_use + 1) % rx_ring->count;
  iowrite32(E1000_RDT, rx_ring->next_to_use);
}

static int e1000_xmit_frame(struct e1000_adapter *adapter, int len) {
  struct e1000_tx_ring *tx_ring = &adapter->tx_ring;
  int next = (tx_ring->next_to_use + 1) % tx_ring->count;
  if (next == tx_ring->next_to_clean) {
    netif_stop_queue(adapter);
    return -16;
  }
  tx_ring->desc[tx_ring->next_to_use] = len;
  tx_ring->next_to_use = next;
  iowrite32(E1000_TDT, next);
  return 0;
}

static void e1000_intr(struct e1000_adapter *adapter) {
  unsigned int icr = ioread32(E1000_ICR);
  if (!icr)
    return;
  if (icr & 0x1)
    e1000_clean_tx_irq(adapter);
  if (icr & 0x80) {
    e1000_clean_rx_irq(adapter);
    e1000_alloc_rx_buffers(adapter);
  }
  if (icr & 0x4)
    adapter->link_up = 0;
}

/* ================= up/down, open/close ================= */

static int e1000_up(struct e1000_adapter *adapter) {
  e1000_configure_tx(adapter);
  e1000_configure_rx(adapter);
  iowrite32(E1000_IMS, 0x85);
  netif_start_queue(adapter);
  return 0;
}

static void e1000_down(struct e1000_adapter *adapter) {
  iowrite32(E1000_IMC, 0xffffffff);
  /* BUG: master-disable handshake timeout ignored */
  e1000_disable_pciex_master(&adapter->hw);
  netif_stop_queue(adapter);
  netif_carrier_off(adapter);
}

static int e1000_power_up_phy(struct e1000_adapter *adapter) {
  int phy_data;
  int ret_val;
  ret_val = e1000_read_phy_reg(&adapter->hw, 0, &phy_data);
  if (ret_val)
    return ret_val;
  phy_data = phy_data & ~0x800;
  ret_val = e1000_write_phy_reg(&adapter->hw, 0, phy_data);
  if (ret_val)
    return ret_val;
  return 0;
}

static void e1000_power_down_phy(struct e1000_adapter *adapter) {
  int phy_data;
  /* BUG: read before powering down unchecked */
  e1000_read_phy_reg(&adapter->hw, 0, &phy_data);
  phy_data = phy_data | 0x800;
  /* BUG: power-down write unchecked */
  e1000_write_phy_reg(&adapter->hw, 0, phy_data);
}

static int e1000_request_irq(struct e1000_adapter *adapter) {
  int err = request_irq(11, 1);
  if (err)
    return err;
  return 0;
}

static int e1000_open(struct e1000_adapter *adapter) {
  int err;
  err = e1000_setup_all_tx_resources(adapter);
  if (err)
    goto err_setup_tx;
  err = e1000_setup_all_rx_resources(adapter);
  if (err)
    goto err_setup_rx;
  err = e1000_request_irq(adapter);
  if (err)
    goto err_req_irq;
  err = e1000_power_up_phy(adapter);
  if (err)
    goto err_up;
  err = e1000_up(adapter);
  if (err)
    goto err_up;
  return 0;
err_up:
  free_irq(11);
err_req_irq:
  e1000_free_all_rx_resources(adapter);
err_setup_rx:
  e1000_free_all_tx_resources(adapter);
err_setup_tx:
  e1000_reset(adapter);
  return err;
}

static int e1000_close(struct e1000_adapter *adapter) {
  e1000_down(adapter);
  e1000_power_down_phy(adapter);
  free_irq(11);
  e1000_free_all_tx_resources(adapter);
  e1000_free_all_rx_resources(adapter);
  return 0;
}

/* ================= housekeeping ================= */

static void e1000_update_stats(struct e1000_adapter *adapter) {
  adapter->msg_enable = adapter->msg_enable;
  ioread32(E1000_STATUS);
}

static int e1000_get_stats(struct e1000_adapter *adapter) {
  e1000_update_stats(adapter);
  return adapter->msg_enable;
}

static void e1000_set_multi(struct e1000_adapter *adapter) {
  unsigned int rctl = ioread32(E1000_RCTL);
  rctl = rctl | 0x100;
  iowrite32(E1000_RCTL, rctl);
}

static int e1000_change_mtu(struct e1000_adapter *adapter, int new_mtu) {
  if (new_mtu < 68 || new_mtu > 16110)
    return -22;
  adapter->rx_buffer_len = new_mtu + 24;
  return 0;
}

static int e1000_set_mac(struct e1000_adapter *adapter, char *addr) {
  int i;
  for (i = 0; i < 6; i++)
    adapter->hw.mac_addr[i] = addr[i];
  return 0;
}

static void e1000_watchdog(struct e1000_adapter *adapter) {
  int speed;
  int duplex;
  unsigned int status;
  DECAF_RWVAR(adapter->link_up);
  status = ioread32(E1000_STATUS);
  if (status & 0x2) {
    if (!adapter->link_up) {
      /* BUG: speed/duplex probe failure ignored */
      e1000_get_speed_and_duplex(&adapter->hw, &speed, &duplex);
      netif_carrier_on(adapter);
      adapter->link_up = 1;
    }
  } else {
    if (adapter->link_up) {
      netif_carrier_off(adapter);
      adapter->link_up = 0;
    }
  }
  /* BUG: smartspeed probe failure ignored */
  e1000_smartspeed_probe(&adapter->hw);
  e1000_update_stats(adapter);
  mod_timer(2000);
}

static void e1000_smartspeed_work(struct e1000_adapter *adapter) {
  int phy_status;
  if (!adapter->smartspeed)
    return;
  /* BUG: smartspeed PHY probe unchecked */
  e1000_read_phy_reg(&adapter->hw, 1, &phy_status);
  if (phy_status & 0x20)
    adapter->smartspeed = 0;
}

/* ================= probe / remove ================= */

static int e1000_probe(struct e1000_adapter *adapter) {
  int err;
  int need_ioport = 0;
  err = pci_enable_device(adapter);
  if (err)
    return err;
  pci_set_master(adapter);
  /* BUG: memory-write-invalidate enable result dropped */
  pci_set_mwi(adapter);
  err = e1000_sw_init(adapter);
  if (err)
    goto err_sw_init;
  err = e1000_reset_hw(&adapter->hw);
  if (err)
    goto err_sw_init;
  err = e1000_validate_eeprom_checksum(&adapter->hw);
  if (err)
    goto err_eeprom;
  err = e1000_read_mac_addr(&adapter->hw);
  if (err)
    goto err_eeprom;
  e1000_save_config_space(adapter);
  err = e1000_init_hw(&adapter->hw);
  if (err)
    goto err_eeprom;
  err = register_netdev(adapter);
  if (err)
    goto err_register;
  netif_carrier_off(adapter);
  printk_info(need_ioport);
  return 0;
err_register:
err_eeprom:
  e1000_reset_hw(&adapter->hw);
err_sw_init:
  return err;
}

static void e1000_remove(struct e1000_adapter *adapter) {
  del_timer(0);
  unregister_netdev(adapter);
  /* BUG: final PHY cleanup path unchecked */
  e1000_cleanup_led(&adapter->hw);
  e1000_reset_hw(&adapter->hw);
}

/* ================= suspend / resume ================= */

static int e1000_suspend(struct e1000_adapter *adapter) {
  e1000_down(adapter);
  e1000_save_config_space(adapter);
  /* BUG: low-power link-up state change unchecked */
  e1000_set_d0_lplu_state(&adapter->hw, 1);
  e1000_power_down_phy(adapter);
  return 0;
}

static int e1000_resume(struct e1000_adapter *adapter) {
  int err;
  /* BUG: VCO speed restore unchecked */
  e1000_set_vco_speed(&adapter->hw);
  err = e1000_power_up_phy(adapter);
  if (err)
    return err;
  err = e1000_reset(adapter);
  if (err)
    return err;
  err = e1000_up(adapter);
  if (err)
    return err;
  netif_carrier_on(adapter);
  return 0;
}

/* ================= ethtool ================= */

static int e1000_get_settings(struct e1000_adapter *adapter) {
  int speed;
  int duplex;
  int ret_val;
  /* BUG: PHY info refresh unchecked */
  e1000_phy_get_info(&adapter->hw);
  ret_val = e1000_get_speed_and_duplex(&adapter->hw, &speed, &duplex);
  if (ret_val)
    return ret_val;
  return speed;
}

static int e1000_set_settings(struct e1000_adapter *adapter, int autoneg) {
  int ret_val;
  adapter->hw.autoneg = autoneg;
  ret_val = e1000_phy_setup_autoneg(&adapter->hw);
  if (ret_val)
    return ret_val;
  /* BUG: link reconfiguration result dropped */
  e1000_setup_link(&adapter->hw);
  return 0;
}

/* waits for the interrupt handler to flip a flag: must stay in the
   kernel (explicit data race with e1000_intr, section 5 of the paper) */
static int e1000_diag_test(struct e1000_adapter *adapter) {
  int i;
  adapter->link_up = 1;
  iowrite32(E1000_ICR + 8, 0x4);
  for (i = 0; i < 1000; i++) {
    if (!adapter->link_up)
      return 0;
    udelay(10);
  }
  return -110;
}

static int e1000_loopback_test(struct e1000_adapter *adapter) {
  int err;
  err = e1000_diag_test(adapter);
  if (err)
    return err;
  return 0;
}

static int e1000_intr_test(struct e1000_adapter *adapter) {
  int i;
  adapter->link_up = 1;
  iowrite32(E1000_ICR + 8, 0x4);
  for (i = 0; i < 100; i++) {
    if (!adapter->link_up)
      return 0;
    udelay(10);
  }
  return -110;
}

static int e1000_link_test(struct e1000_adapter *adapter) {
  int i;
  adapter->link_up = 0;
  for (i = 0; i < 100; i++) {
    if (adapter->link_up)
      return 0;
    udelay(10);
  }
  return -110;
}

static int e1000_reg_test(struct e1000_adapter *adapter) {
  unsigned int before;
  before = ioread32(E1000_STATUS);
  iowrite32(E1000_RCTL, 0xffffffff);
  if (ioread32(E1000_RCTL) == before)
    return -5;
  iowrite32(E1000_RCTL, 0);
  return 0;
}

static int e1000_eeprom_test(struct e1000_adapter *adapter) {
  int ret_val;
  ret_val = e1000_validate_eeprom_checksum(&adapter->hw);
  if (ret_val)
    return ret_val;
  return 0;
}
|}

let config =
  {
    Decaf_slicer.Slicer.partition =
      {
        Decaf_slicer.Partition.driver_name = "e1000";
        critical_roots =
          [
            "e1000_intr";
            "e1000_xmit_frame";
            (* the four ethtool functions with the explicit data race on
               link_up stay in the kernel (§5) *)
            "e1000_diag_test";
            "e1000_loopback_test";
            "e1000_intr_test";
            "e1000_link_test";
          ];
        interface_functions =
          [
            "e1000_probe";
            "e1000_remove";
            "e1000_open";
            "e1000_close";
            "e1000_xmit_frame";
            "e1000_intr";
            "e1000_watchdog";
            "e1000_get_stats";
            "e1000_set_multi";
            "e1000_change_mtu";
            "e1000_set_mac";
            "e1000_suspend";
            "e1000_resume";
            "e1000_get_settings";
            "e1000_set_settings";
            "e1000_diag_test";
          ];
      };
    const_env = [ ("PCI_LEN", 64); ("TX_RING_LEN", 256); ("RX_RING_LEN", 256) ];
    java_functions = Decaf_slicer.Slicer.All_user;
  }

let hw_layer_functions =
  [
    "e1000_read_phy_reg";
    "e1000_write_phy_reg";
    "e1000_read_eeprom";
    "e1000_validate_eeprom_checksum";
    "e1000_read_mac_addr";
    "e1000_phy_hw_reset";
    "e1000_phy_reset";
    "e1000_detect_gig_phy";
    "e1000_setup_link";
    "e1000_setup_copper_link";
    "e1000_phy_setup_autoneg";
    "e1000_wait_autoneg";
    "e1000_config_dsp_after_link_change";
    "e1000_config_mac_to_phy";
    "e1000_config_fc_after_link_up";
    "e1000_force_mac_fc";
    "e1000_init_hw";
    "e1000_reset_hw";
    "e1000_get_speed_and_duplex";
    "e1000_id_led_init";
    "e1000_setup_led";
    "e1000_cleanup_led";
    "e1000_check_polarity";
    "e1000_check_downshift";
    "e1000_get_cable_length";
    "e1000_phy_igp_get_info";
    "e1000_phy_m88_get_info";
    "e1000_phy_get_info";
    "e1000_smartspeed_probe";
    "e1000_led_on";
    "e1000_led_off";
    "e1000_write_vfta";
    "e1000_clear_vfta";
    "e1000_get_bus_info";
    "e1000_disable_pciex_master";
    "e1000_set_d0_lplu_state";
    "e1000_set_vco_speed";
    "e1000_config_collision_dist";
  ]

let error_extra =
  [ "pci_enable_device"; "request_irq"; "register_netdev"; "pci_set_mwi" ]

let seeded_bugs = 28

(* Line-anchored decaf-lint suppressions; see Lint.apply_waivers. *)
let lint_waivers : Decaf_slicer.Lint.waiver list =
  let open Decaf_slicer.Lint in
  let seeded =
    (* the 28 broken error-handling sites are the 5.1 measurement *)
    List.map
      (fun (w_anchor, w_line) ->
        {
          w_pass = Error_flow;
          w_anchor;
          w_line;
          w_reason = "seeded error-handling bug kept for the Errcheck count";
        })
      [
        ("e1000_phy_reset", 186);
      ("e1000_phy_setup_autoneg", 216);
      ("e1000_config_dsp_after_link_change", 259);
      ("e1000_config_dsp_after_link_change", 265);
      ("e1000_config_fc_after_link_up", 321);
      ("e1000_setup_copper_link", 347);
      ("e1000_setup_led", 376);
      ("e1000_cleanup_led", 384);
      ("e1000_get_cable_length", 460);
      ("e1000_phy_igp_get_info", 471);
      ("e1000_phy_m88_get_info", 478);
      ("e1000_phy_m88_get_info", 480);
      ("e1000_smartspeed_probe", 498);
      ("e1000_led_on", 508);
      ("e1000_led_off", 517);
      ("e1000_set_d0_lplu_state", 564);
      ("e1000_set_vco_speed", 578);
      ("e1000_down", 792);
      ("e1000_power_down_phy", 813);
      ("e1000_power_down_phy", 816);
      ("e1000_open", 851);
      ("e1000_watchdog", 916);
      ("e1000_smartspeed_work", 926);
      ("e1000_probe", 941);
      ("e1000_suspend", 985);
      ("e1000_resume", 993);
      ("e1000_get_settings", 1014);
      ("e1000_set_settings", 1028);
      ]
  in
  let missing =
    List.map
      (fun (w_anchor, w_line) ->
        {
          w_pass = Annotation_soundness;
          w_anchor;
          w_line;
          w_reason =
            "pre-conversion corpus: the C bodies remain the slicer's input";
        })
      [
        ("e1000_tx_ring", 21);
        ("e1000_rx_ring", 29);
        ("e1000_hw", 37);
        ("e1000_adapter", 49);
        ("e1000_option", 64);
      ]
  in
  let inbound =
    List.map
      (fun (w_anchor, w_line) ->
        {
          w_pass = Inbound_validation;
          w_anchor;
          w_line;
          w_reason =
            "pre-conversion corpus: the decaf build validates these fields \
             at the boundary via the Guard rules in E1000_objects";
        })
      [
        ("e1000_tx_ring", 21);
        ("e1000_rx_ring", 29);
        ("e1000_adapter", 49);
      ]
  in
  {
    w_pass = Annotation_soundness;
    w_anchor = "e1000_save_config_space";
    w_line = 689;
    w_reason =
      "config_space is write-only today; RWVAR is kept as the documented \
       suspend/resume interface the 3.2.4 evolution scenario extends";
  }
  :: seeded
  @ missing
  @ inbound
