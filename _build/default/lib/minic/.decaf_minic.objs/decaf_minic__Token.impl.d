lib/minic/token.ml: Printf
