lib/kernel/inputcore.mli:
