lib/drivers/ens1371_drv.ml: Decaf_hw Decaf_kernel Decaf_runtime Driver_env Hashtbl
