lib/drivers/driver_env.ml: Channel Decaf_runtime Decaf_xpc Domain
