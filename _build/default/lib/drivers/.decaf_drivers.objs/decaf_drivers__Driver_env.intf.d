lib/drivers/driver_env.mli:
