module Ast = Decaf_minic.Ast
module Pp = Decaf_minic.Pp

type access = Read | Write | Read_write

type field_annot = {
  fa_struct : string;
  fa_field : string;
  fa_kind : string;
  fa_arg : string option;
}

type var_annot = {
  va_function : string;
  va_access : access;
  va_path : string;
  va_field : string;
  va_line : int;
}

type t = { fields : field_annot list; vars : var_annot list }

let access_of_macro = function
  | "DECAF_RVAR" -> Some Read
  | "DECAF_WVAR" -> Some Write
  | "DECAF_RWVAR" -> Some Read_write
  | _ -> None

let rec last_field = function
  | Ast.Earrow (_, f) | Ast.Efield (_, f) -> f
  | Ast.Eident x -> x
  | Ast.Eindex (e, _) | Ast.Eunop (_, e) | Ast.Ecast (_, e) -> last_field e
  | _ -> ""

let collect_field_annots (file : Ast.file) =
  List.concat_map
    (fun (s : Ast.struct_def) ->
      List.concat_map
        (fun (f : Ast.field) ->
          List.map
            (fun (a : Ast.attr) ->
              {
                fa_struct = s.Ast.sname;
                fa_field = f.Ast.fname;
                fa_kind = a.Ast.attr_name;
                fa_arg = a.Ast.attr_arg;
              })
            f.Ast.fattrs)
        s.Ast.sfields)
    (Ast.structs file)

(* Walk statements rather than bare expressions so each annotation keeps
   the line of its enclosing statement (annotation macros are always
   expression statements, but sub-expressions are covered too). *)
let collect_var_annots (file : Ast.file) =
  let in_function (fn : Ast.func) =
    let note line acc e =
      match e with
      | Ast.Ecall (Ast.Eident macro, [ arg ]) -> (
          match access_of_macro macro with
          | Some va_access ->
              {
                va_function = fn.Ast.fname;
                va_access;
                va_path = Pp.expr_to_string arg;
                va_field = last_field arg;
                va_line = line;
              }
              :: acc
          | None -> acc)
      | _ -> acc
    in
    let rec in_stmt acc (s : Ast.stmt) =
      let line = s.Ast.sloc.Decaf_minic.Loc.line in
      let acc =
        match s.Ast.skind with
        | Sexpr e | Sdecl (_, _, Some e) -> Ast.fold_expr (note line) acc e
        | Sif (c, a, b) ->
            let acc = Ast.fold_expr (note line) acc c in
            List.fold_left in_stmt (List.fold_left in_stmt acc a) b
        | Swhile (c, body) ->
            List.fold_left in_stmt (Ast.fold_expr (note line) acc c) body
        | Sdo (body, c) ->
            Ast.fold_expr (note line) (List.fold_left in_stmt acc body) c
        | Sfor (init, cond, update, body) ->
            let acc = match init with Some s -> in_stmt acc s | None -> acc in
            let acc =
              List.fold_left
                (fun acc e -> Ast.fold_expr (note line) acc e)
                acc
                (Option.to_list cond @ Option.to_list update)
            in
            List.fold_left in_stmt acc body
        | Sreturn (Some e) -> Ast.fold_expr (note line) acc e
        | Sswitch (e, cases) ->
            let acc = Ast.fold_expr (note line) acc e in
            List.fold_left
              (fun acc case ->
                match case with
                | Ast.Case (_, body) | Ast.Default body ->
                    List.fold_left in_stmt acc body)
              acc cases
        | Sblock body -> List.fold_left in_stmt acc body
        | Sdecl (_, _, None) | Sreturn None | Sgoto _ | Slabel _ | Sbreak
        | Scontinue ->
            acc
      in
      acc
    in
    List.fold_left in_stmt [] fn.Ast.fbody |> List.rev
  in
  List.concat_map in_function (Ast.functions file)

let collect file =
  { fields = collect_field_annots file; vars = collect_var_annots file }

let count_lines t = List.length t.fields + List.length t.vars

let plan_access = function
  | Read -> Decaf_xpc.Marshal_plan.Read
  | Write -> Decaf_xpc.Marshal_plan.Write
  | Read_write -> Decaf_xpc.Marshal_plan.Read_write
