(** The 8139too fast-Ethernet driver, in native and decaf builds.

    The data path — [start_xmit] and the interrupt handler — always runs
    in the kernel (they are the critical roots in the paper's Table 2);
    initialization, EEPROM/PHY bring-up, and shutdown run wherever the
    {!Driver_env.t} sends them. *)

type t

val vendor_id : int
val device_id : int

val setup_device :
  slot:string -> io_base:int -> irq:int -> mac:string -> link:Decaf_hw.Link.t ->
  unit -> Decaf_hw.Rtl8139.t
(** Create the device model and plug the matching PCI function into the
    bus. Call before {!insmod}. *)

val insmod : Driver_env.t -> (t, int) result
(** Load the driver module: registers the PCI driver (probing any
    present device) and returns the instance handle. Must run in a
    scheduler thread. *)

val rmmod : t -> unit
val init_latency_ns : t -> int
val netdev : t -> Decaf_kernel.Netcore.t
val adapter_wire_bytes : int
(** Marshaled size of [struct rtl8139_private] used for XPC accounting. *)
