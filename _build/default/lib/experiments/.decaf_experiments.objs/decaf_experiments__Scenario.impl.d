lib/experiments/scenario.ml: Decaf_drivers Decaf_kernel Decaf_runtime Decaf_xpc Driver_env
