(** The virtual clock and event queue of the simulated machine.

    Time is measured in integer nanoseconds since boot. Work performed by
    driver or kernel code is charged with {!consume}, which also delivers
    any hardware events (device timers, interrupt sources) that become due
    while the work runs — modelling interrupts preempting the CPU. *)

type event_id

val now : unit -> int
(** Current virtual time in nanoseconds. *)

val busy_ns : unit -> int
(** Total virtual time spent busy (charged via {!consume}). *)

val utilization : since:int -> busy_since:int -> float
(** CPU utilization over the window starting at virtual time [since] with
    busy counter value [busy_since]: (busy now - busy_since) / (now - since).
    Returns 0 for an empty window. *)

val consume : int -> unit
(** [consume ns] charges [ns] of busy CPU time, advancing the clock and
    running any events that become due in the interval (at their due
    time). *)

val at : int -> (unit -> unit) -> event_id
(** [at t f] schedules [f] to run at absolute virtual time [t] (or
    immediately after now, if [t] is in the past). Events scheduled for
    the same due time fire in scheduling order (stable FIFO tie-break),
    and event ids never collide across {!reset} — both are load-bearing
    for reproducible latency percentiles. *)

val after : int -> (unit -> unit) -> event_id
(** [after ns f] is [at (now () + ns) f]. *)

val cancel : event_id -> unit
(** Cancel a pending event; cancelling a fired event is a no-op. *)

val pending : event_id -> bool
(** Whether the event is scheduled and not yet fired or cancelled. *)

val scheduled : unit -> int
(** Total events ever scheduled since boot (diagnostic). *)

val has_events : unit -> bool
(** Whether any event is pending. *)

val advance_to_next_event : unit -> bool
(** Idle until the next pending event and run every event due at that
    instant. Returns [false] when no event is pending. The elapsed
    interval counts as idle time. *)

val reset : unit -> unit
(** Reboot: clear all events, return to time 0, zero the busy counter,
    drop all in-flight tracked events and registered latency paths. The
    event-id sequence is {e not} reset, so ids from a previous life can
    never cancel this life's events. *)

(** {2 Tracked events}

    A tracked event pairs a birth stamp with a completion stamp; the
    elapsed virtual time is recorded into the per-path histogram
    registry ({!Latency}). *)

type track
(** An explicit birth stamp bound to a path. *)

val track : string -> track
(** [track path] stamps the birth of one event on [path]. *)

val complete : track -> int
(** Stamp completion: records now - birth into [path]'s histogram and
    returns the elapsed nanoseconds. *)

val track_begin : ?key:string -> string -> unit
(** FIFO-paired birth stamp for pipelines that preserve order but lose
    identity (a NIC rx fifo, the mouse byte stream). [key] selects the
    FIFO (default: the path itself), so several instances can share one
    histogram path without interleaving their pairings. Each FIFO is
    bounded; past the bound the oldest birth is discarded. *)

val track_end : ?key:string -> string -> int option
(** Complete the oldest outstanding birth on [key]: records into
    [path]'s histogram and returns the elapsed ns, or [None] when no
    birth is outstanding (a no-op, so completion points are safe to run
    against producers that never stamped). *)

val track_discard : ?key:string -> string -> unit
(** Drop the oldest outstanding birth without recording (the paired
    item was itself dropped). *)

val track_drain : ?key:string -> string -> unit
(** Drop every outstanding birth for the key (hotplug killed the
    producer; completions after the replug must not pair with births
    from before it). *)

val tracks_in_flight : unit -> int
(** Total outstanding FIFO births (diagnostic; quiescence checks). *)
