open Decaf_xpc
module Plan = Marshal_plan

type ring = { mutable head : int; mutable tail : int; mutable count : int }

type kernel_adapter = {
  k_addr : int;
  k_tx_addr : int;
  k_rx_addr : int;
  k_tx : ring;
  k_rx : ring;
  mutable k_msg_enable : int;
  mutable k_flags : int;
  mutable k_link_up : bool;
  mutable k_mtu : int;
  k_config_space : int array;
  mutable k_watchdog_events : int;
}

type java_adapter = {
  mutable j_c_addr : int;
  j_tx : ring;
  j_rx : ring;
  mutable j_msg_enable : int;
  mutable j_flags : int;
  mutable j_link_up : bool;
  mutable j_mtu : int;
  j_config_space : int array;
  mutable j_watchdog_events : int;
}

let config_words = 16

(* The fields user-level code touches; tx/rx ring indices are data-path
   state and stay out of the plan. *)
let plan =
  Plan.make ~type_id:"e1000_adapter"
    [
      ("msg_enable", Plan.Read_write);
      ("flags", Plan.Read_write);
      ("link_up", Plan.Read_write);
      ("mtu", Plan.Read);
      ("config_space", Plan.Read_write);
      ("watchdog_events", Plan.Read_write);
    ]

let adapter_key : java_adapter Univ.key = Univ.new_key "e1000_adapter"
let ring_key : ring Univ.key = Univ.new_key "e1000_ring"

let fresh_kernel_adapter () =
  let k_addr = Addr.alloc ~size:512 in
  {
    k_addr;
    (* the tx ring is the first member: same address as the adapter *)
    k_tx_addr = Addr.embedded ~parent:k_addr ~offset:0;
    k_rx_addr = Addr.embedded ~parent:k_addr ~offset:16;
    k_tx = { head = 0; tail = 0; count = 256 };
    k_rx = { head = 0; tail = 0; count = 256 };
    k_msg_enable = 0;
    k_flags = 0;
    k_link_up = false;
    k_mtu = 1500;
    k_config_space = Array.make config_words 0;
    k_watchdog_events = 0;
  }

(* Marshal layout (plan-driven): address, then each planned field in a
   fixed order with a presence flag per direction. *)

let encode_fields ~direction ~addr ~msg_enable ~flags ~link_up ~mtu
    ~config_space ~watchdog_events =
  let copies name =
    match direction with
    | `To_user -> Plan.copies_in plan name
    | `To_kernel -> Plan.copies_out plan name
  in
  let e = Xdr.Enc.create () in
  Xdr.Enc.uint e addr;
  let opt name enc =
    if copies name then begin
      Xdr.Enc.bool e true;
      enc ()
    end
    else Xdr.Enc.bool e false
  in
  opt "msg_enable" (fun () -> Xdr.Enc.int e msg_enable);
  opt "flags" (fun () -> Xdr.Enc.int e flags);
  opt "link_up" (fun () -> Xdr.Enc.bool e link_up);
  opt "mtu" (fun () -> Xdr.Enc.int e mtu);
  opt "config_space" (fun () -> Xdr.Enc.array_var e Xdr.Enc.uint config_space);
  opt "watchdog_events" (fun () -> Xdr.Enc.int e watchdog_events);
  Xdr.Enc.to_bytes e

type decoded = {
  d_addr : int;
  d_msg_enable : int option;
  d_flags : int option;
  d_link_up : bool option;
  d_mtu : int option;
  d_config_space : int array option;
  d_watchdog_events : int option;
}

let decode_fields bytes =
  let d = Xdr.Dec.of_bytes bytes in
  let d_addr = Xdr.Dec.uint d in
  let opt dec = if Xdr.Dec.bool d then Some (dec d) else None in
  let d_msg_enable = opt Xdr.Dec.int in
  let d_flags = opt Xdr.Dec.int in
  let d_link_up = opt Xdr.Dec.bool in
  let d_mtu = opt Xdr.Dec.int in
  let d_config_space = opt (fun d -> Xdr.Dec.array_var d Xdr.Dec.uint) in
  let d_watchdog_events = opt Xdr.Dec.int in
  Xdr.Dec.check_drained d;
  {
    d_addr;
    d_msg_enable;
    d_flags;
    d_link_up;
    d_mtu;
    d_config_space;
    d_watchdog_events;
  }

let marshal_to_user (k : kernel_adapter) =
  encode_fields ~direction:`To_user ~addr:k.k_addr ~msg_enable:k.k_msg_enable
    ~flags:k.k_flags ~link_up:k.k_link_up ~mtu:k.k_mtu
    ~config_space:k.k_config_space ~watchdog_events:k.k_watchdog_events

let wire_size =
  Bytes.length (marshal_to_user (fresh_kernel_adapter ()))

let unmarshal_at_user bytes (k : kernel_adapter) =
  let d = decode_fields bytes in
  let tracker = Decaf_runtime.Runtime.java_tracker () in
  let j =
    match Objtracker.find tracker ~addr:d.d_addr adapter_key with
    | Some j -> j
    | None ->
        (* first crossing: allocate the Java object and register it, and
           its embedded rings, in the user-level tracker *)
        let j =
          {
            j_c_addr = d.d_addr;
            j_tx = { head = 0; tail = 0; count = 0 };
            j_rx = { head = 0; tail = 0; count = 0 };
            j_msg_enable = 0;
            j_flags = 0;
            j_link_up = false;
            j_mtu = 0;
            j_config_space = Array.make config_words 0;
            j_watchdog_events = 0;
          }
        in
        Objtracker.associate tracker ~addr:d.d_addr (Univ.pack adapter_key j);
        Objtracker.associate tracker ~addr:k.k_tx_addr (Univ.pack ring_key j.j_tx);
        Objtracker.associate tracker ~addr:k.k_rx_addr (Univ.pack ring_key j.j_rx);
        j
  in
  Option.iter (fun v -> j.j_msg_enable <- v) d.d_msg_enable;
  Option.iter (fun v -> j.j_flags <- v) d.d_flags;
  Option.iter (fun v -> j.j_link_up <- v) d.d_link_up;
  Option.iter (fun v -> j.j_mtu <- v) d.d_mtu;
  Option.iter (fun v -> Array.blit v 0 j.j_config_space 0 (Array.length v))
    d.d_config_space;
  Option.iter (fun v -> j.j_watchdog_events <- v) d.d_watchdog_events;
  j

let marshal_to_kernel (j : java_adapter) =
  encode_fields ~direction:`To_kernel ~addr:j.j_c_addr
    ~msg_enable:j.j_msg_enable ~flags:j.j_flags ~link_up:j.j_link_up
    ~mtu:j.j_mtu ~config_space:j.j_config_space
    ~watchdog_events:j.j_watchdog_events

let unmarshal_at_kernel bytes (k : kernel_adapter) =
  let d = decode_fields bytes in
  if d.d_addr <> k.k_addr then
    Decaf_kernel.Panic.bug "e1000: marshal for wrong adapter %#x" d.d_addr;
  Option.iter (fun v -> k.k_msg_enable <- v) d.d_msg_enable;
  Option.iter (fun v -> k.k_flags <- v) d.d_flags;
  Option.iter (fun v -> k.k_link_up <- v) d.d_link_up;
  (* mtu is Read-only in the plan: decode_fields sees no value for it *)
  Option.iter (fun v -> Array.blit v 0 k.k_config_space 0 (Array.length v))
    d.d_config_space;
  Option.iter (fun v -> k.k_watchdog_events <- v) d.d_watchdog_events;
  ignore d.d_mtu
