(* Execution-trace instrumentation for the systematic-exploration
   harness (Decaf_check). The synchronization primitives, the interrupt
   layer and the XPC machinery report the objects each scheduler step
   touches through [note]; the checker derives its happens-before /
   dependency relation, lockset race reports and lock-order graph from
   exactly these events. With no hook installed every call is a single
   ref read, so production runs and benchmarks pay nothing.

   Object identity only has to be unique within one execution (traces
   are never compared across executions by object), so locks stamp
   themselves with [fresh_id] at creation and render as "kind:name#id". *)

type obj =
  | Lock of string  (** mutual exclusion: spin/mutex/combo, "kind:name#id" *)
  | Var of string  (** plain shared state, subject to the lockset check *)
  | Queue of string  (** signal/wait edges: waitqs, batch queues, rings *)
  | Irq_line of int  (** interrupt line assertion/delivery/mask state *)

type access =
  | Acquire
  | Release
  | Read
  | Write
  | Signal  (** producer side of a queue-like object *)
  | Wait  (** consumer side of a queue-like object *)

let obj_name = function
  | Lock s -> "lock:" ^ s
  | Var s -> "var:" ^ s
  | Queue s -> "queue:" ^ s
  | Irq_line n -> Printf.sprintf "irq:%d" n

let access_name = function
  | Acquire -> "acquire"
  | Release -> "release"
  | Read -> "read"
  | Write -> "write"
  | Signal -> "signal"
  | Wait -> "wait"

(* Two accesses to the same object commute unless one of them changes
   what the other observes. Everything on locks, queues and irq lines is
   ordering-sensitive; only Read/Read commutes on plain state. *)
let dependent_access a b =
  match (a, b) with Read, Read -> false | _ -> true

let hook : (obj -> access -> unit) option ref = ref None
let active () = !hook <> None
let set_hook f = hook := Some f
let clear_hook () = hook := None

let note o a = match !hook with Some f -> f o a | None -> ()
let note_var name a = note (Var name) a

(* Creation-time stamps for lock identity; never reset — only
   within-execution uniqueness matters and the counter cannot wrap in
   practice. *)
let ids = ref 0

let fresh_id () =
  incr ids;
  !ids
