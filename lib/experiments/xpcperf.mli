(** The concurrent-XPC / batched-XPC / delta-marshaling experiment: the
    crossing, byte and virtual-time trajectory behind [BENCH_xpc.json].

    Five decaf-build scenarios (e1000 netperf send and recv, 8139too
    netperf send, psmouse move-and-click, ens1371 mpg123) are each run
    under combinations of {!Decaf_xpc.Batch} batching,
    {!Decaf_xpc.Marshal_plan} delta marshaling and the
    {!Decaf_xpc.Dispatch} worker count. Each run records the
    whole-lifetime (insmod through rmmod) {!Decaf_xpc.Channel.snapshot}
    counters, the batch-queue statistics, the dispatch-lane critical
    path, combolock contention, object-tracker shard traffic and the
    workload's own cost-adjusted figure of merit, so the optimizations
    are only credited when throughput holds. *)

type config = {
  batching : bool;
  delta : bool;
  workers : int;
  guard : bool;
  ring : bool;
      (** route high-rate notify paths through the {!Decaf_xpc.Ring}
          shared-slot ring (doorbell crossings only) instead of posting
          each event through {!Decaf_xpc.Batch} *)
}

val config_name : config -> string
(** E.g. ["batch+delta+w4"]; guard-off points get a ["+noguard"]
    suffix (guard on is the default and unmarked); ring points a
    ["+ring"] suffix. *)

val configs : config list
(** The eleven measured combinations, in file order: the four historical
    serial points (nobatch+full, batch+full, nobatch+delta, batch+delta,
    all at [workers = 1]), then batch+delta at 2 and the
    nobatch+full / batch+delta pair at 4 workers — all with boundary
    validation on — then the guard axis: batch+delta at 1 and 4
    workers with {!Decaf_xpc.Guard} per-field validation off, pricing
    the validation layer under the same regression gate — and finally
    the ring axis: batch+delta at 1 and 4 workers with the shared ring
    carrying the notify traffic. *)

type sample = {
  scenario : string;
  config : config;
  crossings : int;  (** kernel/user round trips over the whole run *)
  c_java : int;
  bytes : int;  (** bytes marshaled across all boundaries *)
  posted : int;  (** deferred calls enqueued via {!Decaf_xpc.Batch} *)
  delivered : int;
  flushes : int;  (** batched flush crossings *)
  doorbells : int;  (** ring doorbell crossings (0 with the ring off) *)
  ring_produced : int;  (** slot records written into shared rings *)
  ring_drops : int;  (** ring slots lost to overflow or teardown *)
  xpc_ns : int;
      (** whole-lifetime {!Decaf_xpc.Dispatch.overhead_ns} — the
          longest-lane (critical-path) dispatch cost *)
  lock_contended : int;  (** combolock contended acquisitions *)
  lock_wait_ns : int;  (** virtual ns spent waiting on combolocks *)
  shard_hits : int;  (** object-tracker hits summed over shards *)
  shards_used : int;  (** shards that saw at least one lookup *)
  perf_milli : int;  (** workload figure of merit, fixed-point x1000 *)
  perf_unit : string;
}

val perf : sample -> float

val default_duration_ns : int

(** {2 Single scenarios} — each boots the machine, applies [config],
    loads the decaf build, runs the workload, drains the batch queues
    and unloads. Must not be called from inside a scheduler thread.
    The nets report goodput (Mb/s after dispatch overhead), psmouse
    its delivered event rate (ev/s), ens1371 its realtime factor. *)

val e1000_net : [ `Send | `Recv ] -> config -> duration_ns:int -> sample
val rtl8139_net : config -> duration_ns:int -> sample
val psmouse : config -> duration_ns:int -> sample
val ens1371 : config -> duration_ns:int -> sample

val scenario_names : string list
(** The five scenario names, matrix order. *)

val config_names : unit -> string list
(** [config_name] of each element of {!configs}, file order. *)

val measure :
  ?duration_ns:int -> ?scenario:string -> ?config:string -> unit -> sample list
(** The full 5-scenario x 11-config matrix (psmouse stretched to at
    least 2 s so the mouse produces traffic). [?scenario] and [?config]
    restrict the run to matching rows/columns (exact match against
    {!scenario_names} / {!config_names}), so a single matrix cell can be
    reproduced locally; unknown names simply select nothing. *)

val render : sample list -> string
(** Per-sample table plus reduction summaries per scenario:
    batch+delta vs nobatch+full (serial), 4 workers vs 1 under
    batch+delta, guard pricing, and ring vs batch+delta (flushes
    collapsing into doorbells). *)

val to_json : duration_ns:int -> sample list -> string
(** One JSON object per line (header line carries [duration_ns]);
    parseable by {!of_json} without a JSON library. *)

val of_json : string -> int option * sample list
(** Lines without a [workers] field parse as [workers = 1], so
    trajectory files from before the worker axis stay readable. *)

val write_json : ?duration_ns:int -> path:string -> unit -> sample list
(** Measure and write the trajectory file; returns the samples. *)

val check : ?slack_pct:int -> ?perf_slack_pct:int -> path:string -> unit -> bool
(** Re-measure at the committed file's duration and compare: fails
    (returns [false], printing why) if any committed (scenario, config)
    point's crossings or bytes regressed by more than [slack_pct]
    percent (default 10), its [perf_milli] dropped by more than
    [perf_slack_pct] percent (default 5), or it disappeared. *)
