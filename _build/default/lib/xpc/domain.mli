(** Protection domains participating in driver execution (§2.3).

    The [Kernel] domain holds the driver nucleus; [Driver_lib] is the
    user-level C library; [Decaf_driver] is the managed-language driver.
    The driver library and decaf driver share one process, so crossings
    between them are cheap language transitions, while kernel crossings
    pay the full protection-boundary cost. *)

type t = Kernel | Driver_lib | Decaf_driver

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val current : unit -> t
(** Domain executing on the (single) CPU right now; [Kernel] at boot. *)

val with_domain : t -> (unit -> 'a) -> 'a
(** Run [f] with {!current} switched to the given domain. *)

val is_user : t -> bool
val reset : unit -> unit
