open Decaf_xpc

type mode = Native | Staged | Decaf

type t = {
  mode : mode;
  scope : string;
      (* binding id this environment belongs to; "" until the registry
         wraps the env in [Driver_core.metered], which stamps the
         binding's id so drivers attribute Boundary/Ring traffic to
         their own instance instead of the bare driver name *)
  upcall : 'a. name:string -> bytes:int -> (unit -> 'a) -> 'a;
  downcall : 'a. name:string -> bytes:int -> (unit -> 'a) -> 'a;
  notify : name:string -> bytes:int -> (unit -> unit) -> unit;
}

let scope_or env default = if env.scope = "" then default else env.scope

(* Calls that only read state and may safely be re-issued when a crossing
   times out. Everything else fails fast so the supervisor decides. *)
let idempotent_call = function
  | "pci_read_config" | "serio_status" | "usb_get_device_descriptor"
  | "usb_get_device_descriptor_full" | "usb_get_config_descriptor"
  | "usb_get_string_manufacturer" | "usb_get_string_product" ->
      true
  | _ -> false

let native =
  {
    mode = Native;
    scope = "";
    upcall = (fun ~name:_ ~bytes:_ f -> f ());
    downcall = (fun ~name:_ ~bytes:_ f -> f ());
    notify = (fun ~name:_ ~bytes:_ f -> f ());
  }

let staged () =
  {
    mode = Staged;
    scope = "";
    upcall =
      (fun ~name ~bytes f ->
        Channel.call ~target:Domain.Driver_lib ~payload_bytes:bytes
          ~idempotent:(idempotent_call name) ~context:name f);
    downcall =
      (fun ~name ~bytes f ->
        Channel.call ~target:Domain.Kernel ~payload_bytes:bytes
          ~idempotent:(idempotent_call name) ~context:name f);
    notify =
      (fun ~name ~bytes f ->
        Batch.post ~target:Domain.Driver_lib ~payload_bytes:bytes
          ~context:name f);
  }

let decaf () =
  {
    mode = Decaf;
    scope = "";
    upcall =
      (fun ~name ~bytes f ->
        Decaf_runtime.Runtime.start ();
        Channel.call ~target:Domain.Decaf_driver ~payload_bytes:bytes
          ~idempotent:(idempotent_call name) ~context:name f);
    downcall =
      (fun ~name ~bytes f ->
        Channel.call ~target:Domain.Kernel ~payload_bytes:bytes
          ~idempotent:(idempotent_call name) ~context:name f);
    (* No [Runtime.start] here: a notification can be posted from
       interrupt context, and by the time a driver has anything to notify
       about its probe upcall has already started the runtime. *)
    notify =
      (fun ~name ~bytes f ->
        Batch.post ~target:Domain.Decaf_driver ~payload_bytes:bytes
          ~context:name f);
  }

let of_mode = function
  | Native -> native
  | Staged -> staged ()
  | Decaf -> decaf ()

let mode_name = function
  | Native -> "native"
  | Staged -> "staged"
  | Decaf -> "decaf"
