lib/hw/eeprom.ml: Array Char String
