type t = {
  name : string;
  items : (unit -> unit) Queue.t;
  wake : Sync.Waitq.t;
  idle : Sync.Waitq.t;  (** woken whenever the queue drains *)
  mutable running : bool;
  mutable stopped : bool;
  mutable executed : int;
}

let worker wq () =
  while not wq.stopped do
    match Queue.take_opt wq.items with
    | Some work ->
        wq.running <- true;
        work ();
        wq.running <- false;
        wq.executed <- wq.executed + 1;
        if Queue.is_empty wq.items then ignore (Sync.Waitq.wake_all wq.idle)
    | None -> Sync.Waitq.wait wq.wake
  done;
  ignore (Sync.Waitq.wake_all wq.idle)

let create ~name =
  let wq =
    {
      name;
      items = Queue.create ();
      wake = Sync.Waitq.create ~name:(name ^ "-wake") ();
      idle = Sync.Waitq.create ~name:(name ^ "-idle") ();
      running = false;
      stopped = false;
      executed = 0;
    }
  in
  ignore (Sched.spawn ~name:("kworker/" ^ name) (worker wq));
  wq

let queue_work wq work =
  if wq.stopped then Panic.bug "workqueue %s: queue_work after destroy" wq.name;
  Queue.push work wq.items;
  ignore (Sync.Waitq.wake_one wq.wake)

let flush wq =
  Sched.assert_may_block ("flush of workqueue " ^ wq.name);
  while not (Queue.is_empty wq.items) || wq.running do
    Sync.Waitq.wait wq.idle
  done

let destroy wq =
  flush wq;
  wq.stopped <- true;
  ignore (Sync.Waitq.wake_one wq.wake)

let executed wq = wq.executed
