(** The kernel log ring buffer (the simulated [printk]/[dmesg]). *)

type level = Emerg | Err | Warning | Info | Debug

val printk : level -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append a formatted message to the kernel log. *)

val dmesg : unit -> string list
(** All retained messages, oldest first, each prefixed with its level and
    virtual timestamp. *)

val clear : unit -> unit
(** Empty the log (used when the simulated machine is rebooted). *)

val count : level -> int
(** Number of retained messages at exactly [level]. *)

val set_timestamp_source : (unit -> int) -> unit
(** Install the virtual-clock reader used to timestamp messages. Called by
    {!Clock} at boot; exposed so the modules stay acyclic. *)
