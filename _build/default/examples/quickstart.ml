(* Quickstart: boot the simulated machine, load the E1000 as a decaf
   driver (init/shutdown at user level, data path in the kernel), move
   some packets, and look at what crossed the kernel/user boundary.

   Run with:  dune exec examples/quickstart.exe *)

module K = Decaf_kernel
module Hw = Decaf_hw
open Decaf_drivers

let () =
  (* 1. power on the machine and plug in a gigabit NIC *)
  K.Boot.boot ();
  Decaf_xpc.Domain.reset ();
  Decaf_xpc.Channel.reset_stats ();
  Decaf_runtime.Runtime.reset ();
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:"\x00\x1b\x21\x0a\x0b\x0c" ~link ());

  (* 2. everything below runs inside the simulated kernel *)
  ignore
    (K.Sched.spawn ~name:"main" (fun () ->
         (* load the driver in decaf mode: probe runs in the decaf driver
            with XDR marshaling of the adapter structure *)
         let t =
           match E1000_drv.insmod (Driver_env.decaf ()) with
           | Ok t -> t
           | Error rc -> failwith (Printf.sprintf "insmod failed: %d" rc)
         in
         Printf.printf "e1000 loaded in %.1f ms\n"
           (float_of_int (E1000_drv.init_latency_ns t) /. 1e6);

         (* bring the interface up and send a little traffic *)
         let nd = E1000_drv.netdev t in
         (match K.Netcore.open_dev nd with
         | Ok () -> ()
         | Error rc -> failwith (Printf.sprintf "open failed: %d" rc));
         for _ = 1 to 100 do
           ignore (K.Netcore.dev_queue_xmit nd (K.Netcore.Skb.alloc 1500))
         done;
         K.Sched.sleep_ns 5_000_000;

         let stats = K.Netcore.stats nd in
         Printf.printf "sent %d packets (%d bytes) on the wire\n"
           stats.K.Netcore.tx_packets stats.K.Netcore.tx_bytes;

         (* the data path never crossed to user level; init did *)
         let x = Decaf_xpc.Channel.stats () in
         Printf.printf "kernel/user crossings: %d (all during init)\n"
           x.Decaf_xpc.Channel.kernel_user_calls;
         Printf.printf "bytes marshaled across domains: %d\n"
           x.Decaf_xpc.Channel.bytes_marshaled;

         (* run 5 virtual seconds: the watchdog fires in the decaf driver *)
         K.Sched.sleep_ns 5_000_000_000;
         Printf.printf "watchdog ran %d times in the decaf driver\n"
           (E1000_drv.watchdog_runs t);
         E1000_drv.rmmod t;
         print_endline "driver unloaded cleanly"));
  K.Sched.run ()
