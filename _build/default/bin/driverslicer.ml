(* The DriverSlicer command-line tool: run the partitioning and
   code-generation pipeline over one of the bundled legacy drivers. *)

open Cmdliner
module Slicer = Decaf_slicer.Slicer
module Partition = Decaf_slicer.Partition
module Report = Decaf_slicer.Report
module Xdrspec = Decaf_slicer.Xdrspec
module Errcheck = Decaf_slicer.Errcheck
open Decaf_drivers

let drivers =
  [
    ("8139too", ("Network", Rtl8139_src.source, Rtl8139_src.config));
    ("e1000", ("Network", E1000_src.source, E1000_src.config));
    ("ens1371", ("Sound", Ens1371_src.source, Ens1371_src.config));
    ("uhci-hcd", ("USB 1.0", Uhci_src.source, Uhci_src.config));
    ("psmouse", ("Mouse", Psmouse_src.source, Psmouse_src.config));
  ]

type emit =
  | Table
  | Partition_sets
  | Xdr
  | Stubs
  | Marshaling
  | Nucleus
  | Library
  | Violations

let run driver_name emits =
  match List.assoc_opt driver_name drivers with
  | None ->
      Printf.eprintf "unknown driver %s; available: %s\n" driver_name
        (String.concat ", " (List.map fst drivers));
      exit 1
  | Some (dtype, source, config) ->
      let out = Slicer.slice ~source config in
      let emits = if emits = [] then [ Table ] else emits in
      List.iter
        (function
          | Table ->
              print_endline Report.header;
              Format.printf "%a@." Report.pp_row (Report.stats out ~dtype)
          | Partition_sets ->
              let p = out.Slicer.partition in
              Printf.printf "nucleus (%d):\n  %s\n"
                (List.length p.Partition.nucleus)
                (String.concat "\n  " p.Partition.nucleus);
              Printf.printf "user (%d):\n  %s\n"
                (List.length p.Partition.user)
                (String.concat "\n  " p.Partition.user);
              Printf.printf "user entry points: %s\n"
                (String.concat ", " p.Partition.user_entry_points);
              Printf.printf "kernel entry points: %s\n"
                (String.concat ", " p.Partition.kernel_entry_points)
          | Xdr -> print_string (Xdrspec.to_string out.Slicer.spec)
          | Marshaling ->
              let spec = out.Slicer.spec in
              List.iter
                (fun s ->
                  print_string (Decaf_slicer.Marshalgen.c_marshal_code spec s);
                  print_newline ();
                  print_string (Decaf_slicer.Marshalgen.java_class_code s);
                  print_string (Decaf_slicer.Marshalgen.java_marshal_code spec s);
                  print_newline ())
                spec.Xdrspec.xs_structs
          | Stubs ->
              List.iter
                (fun (name, code) -> Printf.printf "/* %s */\n%s\n" name code)
                out.Slicer.stubs
          | Nucleus -> print_string out.Slicer.split.Decaf_slicer.Splitgen.nucleus_src
          | Library -> print_string out.Slicer.split.Decaf_slicer.Splitgen.library_src
          | Violations ->
              let extra =
                if driver_name = "e1000" then E1000_src.error_extra else []
              in
              let vs = Errcheck.find_violations out.Slicer.file ~extra in
              Printf.printf "%d broken error-handling sites\n" (List.length vs);
              List.iter
                (fun (v : Errcheck.violation) ->
                  Printf.printf "  line %4d %s -> %s\n" v.Errcheck.v_line
                    v.Errcheck.v_function v.Errcheck.v_callee)
                vs)
        emits;
      exit 0

let driver_arg =
  let doc = "Driver to slice (8139too, e1000, ens1371, uhci-hcd, psmouse)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DRIVER" ~doc)

let flag name doc = Arg.(value & flag & info [ name ] ~doc)

let term =
  let combine driver table partition xdr stubs marshaling nucleus library
      violations =
    let pick cond v = if cond then [ v ] else [] in
    let emits =
      List.concat
        [
          pick table Table;
          pick partition Partition_sets;
          pick xdr Xdr;
          pick stubs Stubs;
          pick marshaling Marshaling;
          pick nucleus Nucleus;
          pick library Library;
          pick violations Violations;
        ]
    in
    run driver emits
  in
  Term.(
    const combine $ driver_arg
    $ flag "table" "Print the Table 2 statistics row."
    $ flag "partition" "Print the nucleus/user function sets and entry points."
    $ flag "emit-xdr" "Print the generated XDR interface specification."
    $ flag "emit-stubs" "Print the generated kernel and Jeannie stubs."
    $ flag "emit-marshaling"
        "Print the rpcgen/jrpcgen-style marshaling code and Java classes."
    $ flag "emit-nucleus" "Print the patched driver-nucleus source."
    $ flag "emit-library" "Print the patched driver-library source."
    $ flag "violations" "Run the error-handling analysis.")

let cmd =
  Cmd.v
    (Cmd.info "driverslicer"
       ~doc:"Partition a legacy driver into nucleus and user components")
    term

let () = exit (Cmd.eval cmd)
