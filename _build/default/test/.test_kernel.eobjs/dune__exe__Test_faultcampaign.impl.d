test/test_faultcampaign.ml: Alcotest Decaf_experiments Lazy List
