lib/slicer/annot.mli: Decaf_minic Decaf_xpc
