(** The mpg123 workload: decode and play a 256 Kb/s MP3 through the
    sound driver (44.1 kHz, 16-bit stereo PCM). *)

type result = {
  seconds_played : float;
  cpu_utilization : float;
  underruns : int;
  periods : int;
}

val play :
  substream:Decaf_kernel.Sndcore.substream ->
  model:Decaf_hw.Ens1371_hw.t ->
  duration_ns:int ->
  result
(** Open the PCM, set 44.1 kHz stereo parameters, stream audio for the
    given virtual duration, then drain and close. *)

val pp : Format.formatter -> result -> unit
