(* chkdev: the synthetic device the exploration episodes drive.

   It is deliberately tiny but touches every mechanism the checker's
   invariants watch: a spinlock-protected counter shared with its
   interrupt handler (lockset discipline), a shared ring produced from
   irq context (doorbell/teardown races), a deferred notification whose
   thunk can observe delivery into a dead binding (the PR-1 bug class),
   a kernel-tracker capability handle (leak on unbind), and a pair of
   combolocks acquired nested (acquisition-order discipline — the
   mutated path reverses them). It registers through the real
   {!Decaf_drivers.Driver_core} registry so every lifecycle operation an
   episode performs exercises the production FSM, supervision and drain
   paths, not a test double. *)

module K = Decaf_kernel
module Xpc = Decaf_xpc
module Plan = Decaf_xpc.Marshal_plan
module Guard = Decaf_xpc.Guard
open Decaf_drivers

let name = "chkdev"
let irq_base = 77

(* --- per-execution observations, read by episode checks --- *)

let after_free : string list ref = ref []
let note_after_free what = after_free := what :: !after_free
let reset_observations () = after_free := []

(* --- slot plan for the shared ring --- *)

let ring_ev_tick = 1

let ring_plan =
  Plan.make ~type_id:"chkdev_slot"
    [ ("kind", Plan.Write); ("arg0", Plan.Write); ("arg1", Plan.Write) ]

let ring_guard =
  Guard.make ring_plan
    [
      ("kind", Guard.Enum [ ring_ev_tick ]);
      ("arg0", Guard.Non_negative);
      ("arg1", Guard.Non_negative);
    ]

let kernel_tracker () = Decaf_runtime.Runtime.kernel_tracker ()

type dev = {
  d_id : string;  (* binding id: "chkdev" or "chkdev#k" *)
  d_irq : int;
  d_lock : K.Sync.Spinlock.t;
  mutable d_count : int;
  d_lo_a : K.Sync.Combolock.t;
  d_lo_b : K.Sync.Combolock.t;
  d_ring : Xpc.Ring.t option;
  d_handle : Xpc.Objtracker.handle;
  mutable d_destroyed : bool;
  mutable d_deferred : int;
  d_env : Driver_env.t;
}

let instances : (string, dev) Hashtbl.t = Hashtbl.create 4

let instance_index id =
  (* "chkdev" -> 0, "chkdev#k" -> k *)
  match String.index_opt id '#' with
  | None -> 0
  | Some i ->
      int_of_string (String.sub id (i + 1) (String.length id - i - 1))

let irq_of_id id = irq_base + instance_index id

(* The counter every context updates; the spinlock plus irq masking is
   the discipline the lockset check certifies. *)
let bump d =
  K.Sync.Spinlock.lock_irqsave d.d_lock;
  d.d_count <- d.d_count + 1;
  K.Ktrace.note_var (d.d_id ^ ".count") K.Ktrace.Write;
  K.Sync.Spinlock.unlock_irqrestore d.d_lock

let read_count d =
  K.Sync.Spinlock.lock_irqsave d.d_lock;
  K.Ktrace.note_var (d.d_id ^ ".count") K.Ktrace.Read;
  let v = d.d_count in
  K.Sync.Spinlock.unlock_irqrestore d.d_lock;
  v

let irq_handler d () =
  bump d;
  match d.d_ring with
  | Some r ->
      ignore
        (Xpc.Ring.produce r
           {
             Xpc.Ring.kind = ring_ev_tick;
             handle = d.d_handle;
             arg0 = read_count d;
             arg1 = 0;
           })
  | None -> ()

(* Process-context work: bump the counter and post a deferred
   notification. The thunk observing [d_destroyed] is the detector for
   the drop-drain mutant — a notification delivered after unbind is the
   deferred call outliving its driver. *)
let kick d =
  bump d;
  d.d_env.Driver_env.notify ~name:"chkdev_tick" ~bytes:8 (fun () ->
      if d.d_destroyed then
        note_after_free
          (Printf.sprintf "%s: deferred notification delivered after unbind"
             d.d_id)
      else d.d_deferred <- d.d_deferred + 1)

(* Two code paths nesting the combolock pair. The clean tree acquires
   A -> B on both; [Mutants.swap_lock_order] reverses the second path
   into the classic AB/BA cycle. *)
let kick_pair d =
  K.Sync.Combolock.with_kernel d.d_lo_a (fun () ->
      K.Sync.Combolock.with_kernel d.d_lo_b (fun () -> bump d))

let flush_pair d =
  if !K.Mutants.swap_lock_order then
    K.Sync.Combolock.with_kernel d.d_lo_b (fun () ->
        K.Sync.Combolock.with_kernel d.d_lo_a (fun () -> bump d))
  else
    K.Sync.Combolock.with_kernel d.d_lo_a (fun () ->
        K.Sync.Combolock.with_kernel d.d_lo_b (fun () -> bump d))

let find id = Hashtbl.find_opt instances id

module Core : Driver_core.DRIVER with type t = dev = struct
  type t = dev

  let name = name
  let bus = K.Hotplug.Pci
  let ids = [ (0x1de0, 0xc0de) ]

  let probe (env : Driver_env.t) ~dev:_ =
    let id = Driver_env.scope_or env name in
    let idx = instance_index id in
    let handle =
      Xpc.Objtracker.issue (kernel_tracker ()) ~addr:(0xCD00 + idx)
        ~type_id:(Plan.type_id ring_plan)
    in
    let ring =
      match env.Driver_env.mode with
      | Driver_env.Native -> None
      | Driver_env.Staged | Driver_env.Decaf ->
          let target =
            if env.Driver_env.mode = Driver_env.Decaf then
              Xpc.Domain.Decaf_driver
            else Xpc.Domain.Driver_lib
          in
          Some
            (Xpc.Ring.create ~name:id ~target ~guard:ring_guard
               ~resolve:(fun handle ->
                 Xpc.Objtracker.resolve (kernel_tracker ()) ~handle
                   ~type_id:(Plan.type_id ring_plan))
               ~handler:(fun _ -> ()) ())
    in
    let d =
      {
        d_id = id;
        d_irq = irq_of_id id;
        d_lock = K.Sync.Spinlock.create ~name:id ();
        d_count = 0;
        d_lo_a = K.Sync.Combolock.create ~name:(id ^ "-A") ();
        d_lo_b = K.Sync.Combolock.create ~name:(id ^ "-B") ();
        d_ring = ring;
        d_handle = handle;
        d_destroyed = false;
        d_deferred = 0;
        d_env = env;
      }
    in
    (* one upcall so the probe itself pays a crossing like a real
       split driver's bring-up *)
    env.Driver_env.upcall ~name:"chkdev_init" ~bytes:16 (fun () -> ());
    K.Irq.request_irq d.d_irq ~name:id (irq_handler d);
    Hashtbl.replace instances id d;
    Ok d

  let remove d =
    (* quiesce the interrupt source first, then tear down the XPC
       surface, then drop the capability *)
    K.Irq.free_irq d.d_irq;
    (match d.d_ring with Some r -> Xpc.Ring.destroy r | None -> ());
    Xpc.Objtracker.remove_by_handle (kernel_tracker ()) ~handle:d.d_handle;
    d.d_destroyed <- true;
    Hashtbl.remove instances d.d_id

  let suspend d = ignore (read_count d)
  let resume d = ignore (read_count d)
  let owns d id = id = d.d_id
  let deferred_syncs d = d.d_deferred
  let init_latency_ns _ = 0
end

let register () =
  Hashtbl.reset instances;
  reset_observations ();
  Driver_core.register (Driver_core.Pack (module Core))
