(* Multi-instance fleets through the registry: same-driver double-bind
   isolation (FSM, suspend/resume, surprise removal), per-instance
   module parameters, fleet-scale status rendering, and hotplug churn
   under virtual-switch load with ring-conservation and object-tracker
   leak checks. *)

open Decaf_drivers
module K = Decaf_kernel
module Hw = Decaf_hw
module Ring = Decaf_xpc.Ring
module Batch = Decaf_xpc.Batch
module Boundary = Decaf_xpc.Boundary
module Objtracker = Decaf_xpc.Objtracker
module Runtime = Decaf_runtime.Runtime
module Scenario = Decaf_experiments.Scenario
module Vswitch = Decaf_workloads.Vswitch

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let state_name id = Driver_core.lifecycle_name (Driver_core.state id)
let slot_of i = Printf.sprintf "%02x:00.0" i
let mac_of i =
  (* raw 6-byte locally-administered MAC, unique per instance *)
  Printf.sprintf "\x02\x00\x00\x00%c%c"
    (Char.chr ((i lsr 8) land 0xff))
    (Char.chr (i land 0xff))
let mmio_of i = 0xe000_0000 + (i * 0x20000)

let setup_fleet n =
  List.init n (fun i ->
      let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
      ignore
        (E1000_drv.setup_device ~slot:(slot_of i) ~mmio_base:(mmio_of i)
           ~irq:(32 + i) ~mac:(mac_of i) ~link ());
      link)

let bind_ok ?dev name =
  match Driver_core.bind_device name ?dev ~mode:Driver_env.Decaf () with
  | Ok id -> id
  | Error rc -> Alcotest.failf "bind %s failed: %d" name rc

let netdev_of i = Option.get (E1000_drv.netdev_at ~slot:(slot_of i))

let open_ok nd =
  match K.Netcore.open_dev nd with
  | Ok () -> ()
  | Error rc -> Alcotest.failf "open failed: %d" rc

let tracker_entries () =
  Objtracker.count (Runtime.kernel_tracker ())
  + Objtracker.count (Runtime.java_tracker ())

let pci_dev_at slot =
  List.find (fun d -> K.Pci.slot d = slot) (K.Pci.devices ())

let replug i =
  K.Pci.add_device
    (K.Pci.make_dev ~slot:(slot_of i) ~vendor:0x8086 ~device:0x100e
       ~irq_line:(32 + i)
       ~bars:[ { K.Pci.kind = K.Pci.Mmio_bar; base = mmio_of i; len = 0x20000 } ]
       ())

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let ring_conserved () =
  let s = Ring.snapshot () in
  check "produced = consumed + rejected + discarded + pending"
    s.Ring.produced
    (s.Ring.consumed + s.Ring.rejected + s.Ring.discarded + Ring.pending ())

(* --- double bind: FSM and datapath isolation --- *)

let double_bind_isolated () =
  Scenario.boot ();
  let links = setup_fleet 2 in
  let l0 = List.hd links in
  Scenario.in_thread (fun () ->
      let id0 = bind_ok ~dev:(slot_of 0) "e1000" in
      let id1 = bind_ok ~dev:(slot_of 1) "e1000" in
      check_str "instance 0 keeps the bare name" "e1000" id0;
      check_str "instance 1 gets a fleet id" "e1000#1" id1;
      Alcotest.(check (list string))
        "instances_of lists both bindings" [ "e1000"; "e1000#1" ]
        (Driver_core.instances_of "e1000");
      check_str "i0 running" "running" (state_name id0);
      check_str "i1 running" "running" (state_name id1);
      (match Driver_core.suspend id1 with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "suspend %s failed: %d" id1 rc);
      check_str "i1 suspended" "suspended" (state_name id1);
      check_str "i0 unaffected by sibling suspend" "running" (state_name id0);
      let nd0 = netdev_of 0 in
      open_ok nd0;
      let before = Hw.Link.tx_frames l0 in
      ignore
        (Decaf_workloads.Netperf.send ~netdev:nd0 ~link:l0
           ~duration_ns:1_000_000 ~msg_bytes:1500);
      check_bool "i0 datapath live while i1 suspended" true
        (Hw.Link.tx_frames l0 > before);
      (match Driver_core.resume id1 with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "resume %s failed: %d" id1 rc);
      check_str "i1 resumed" "running" (state_name id1);
      Driver_core.rmmod id1;
      check_str "i1 removed" "removed" (state_name id1);
      check_str "i0 survives sibling rmmod" "running" (state_name id0);
      Driver_core.rmmod id0)

(* --- surprise removal of instance k leaves j untouched --- *)

let surprise_removal_isolated () =
  Scenario.boot ();
  let links = setup_fleet 3 in
  Scenario.in_thread (fun () ->
      let base = tracker_entries () in
      let ids = List.init 3 (fun i -> bind_ok ~dev:(slot_of i) "e1000") in
      let id0 = List.nth ids 0
      and id1 = List.nth ids 1
      and id2 = List.nth ids 2 in
      let nd0 = netdev_of 0 in
      open_ok nd0;
      K.Pci.remove_device (pci_dev_at (slot_of 1));
      check_str "ejected instance removed" "removed" (state_name id1);
      check_str "i0 undisturbed" "running" (state_name id0);
      check_str "i2 undisturbed" "running" (state_name id2);
      let l0 = List.hd links in
      let before = Hw.Link.tx_frames l0 in
      ignore
        (Decaf_workloads.Netperf.send ~netdev:nd0 ~link:l0
           ~duration_ns:1_000_000 ~msg_bytes:1500);
      check_bool "i0 datapath live after sibling ejection" true
        (Hw.Link.tx_frames l0 > before);
      (* the freed family slot is pinned to the device: replug re-probes
         back into the same binding id *)
      replug 1;
      check_str "replug rebinds the freed binding" "running" (state_name id1);
      List.iter Driver_core.rmmod [ id1; id2; id0 ];
      check "no leaked tracker entries after fleet teardown" base
        (tracker_entries ());
      ring_conserved ())

(* --- per-instance module-parameter snapshots --- *)

let per_instance_params () =
  Scenario.boot ();
  ignore (setup_fleet 2);
  Scenario.in_thread (fun () ->
      E1000_drv.set_module_params ~tx_descriptors:1024 ~interrupt_throttle:8000
        ();
      let insmod_at i =
        match E1000_drv.insmod ~dev:(slot_of i) (Driver_env.decaf ()) with
        | Ok t -> t
        | Error rc -> Alcotest.failf "insmod instance %d failed: %d" i rc
      in
      let t0 = insmod_at 0 in
      E1000_drv.set_module_params ~tx_descriptors:512 ~interrupt_throttle:3 ();
      let t1 = insmod_at 1 in
      let p0 = E1000_drv.params t0 and p1 = E1000_drv.params t1 in
      check "i0 keeps its TxDescriptors" 1024 p0.E1000_drv.p_tx_descriptors;
      check "i1 snapshot is independent" 512 p1.E1000_drv.p_tx_descriptors;
      check "i0 InterruptThrottleRate" 8000 p0.E1000_drv.p_interrupt_throttle;
      check "i1 InterruptThrottleRate" 3 p1.E1000_drv.p_interrupt_throttle;
      E1000_drv.rmmod t1;
      (* i0's snapshot survives the sibling unload *)
      check "i0 params survive sibling rmmod" 1024
        (E1000_drv.params t0).E1000_drv.p_tx_descriptors;
      E1000_drv.rmmod t0;
      E1000_drv.reset_module_params ())

(* --- decafctl status at fleet scale --- *)

let fleet_status () =
  Scenario.boot ();
  ignore (setup_fleet 8);
  Scenario.in_thread (fun () ->
      let ids = List.init 8 (fun i -> bind_ok ~dev:(slot_of i) "e1000") in
      let snaps = Driver_core.snapshots () in
      let fleet =
        List.filter (fun s -> s.Driver_core.s_driver = "e1000") snaps
      in
      check "one row per binding under the --driver filter" 8
        (List.length fleet);
      Alcotest.(check (list string))
        "rows stable-sorted by instance" ids
        (List.map (fun s -> s.Driver_core.s_binding) fleet);
      let rendered = Driver_core.render_status snaps in
      check_bool "rendered status has the aggregate TOTAL row" true
        (contains rendered "TOTAL");
      check_bool "fleet ids appear in rendered status" true
        (contains rendered "e1000#7");
      let json = Decaf_experiments.Status.render_json snaps in
      check_bool "json rows carry the binding id" true
        (contains json "\"id\":\"e1000#3\"");
      let summed =
        List.fold_left (fun a s -> a + s.Driver_core.s_rejections) 0 fleet
      in
      check "per-driver boundary rollup sums the instances" summed
        (Boundary.rejected_for_driver "e1000");
      List.iter Driver_core.rmmod (List.rev ids))

(* --- hotplug churn under switch load: conservation and leaks --- *)

let churn_keeps_invariants () =
  Scenario.boot ();
  let n = 8 in
  let links = setup_fleet n in
  Scenario.in_thread (fun () ->
      let base = tracker_entries () in
      let ids = List.init n (fun i -> bind_ok ~dev:(slot_of i) "e1000") in
      let ports =
        List.mapi
          (fun i link ->
            let nd = netdev_of i in
            open_ok nd;
            { Vswitch.netdev = nd; link })
          links
      in
      (* deterministic LCG so the churn schedule is reproducible *)
      let seed = ref 0x2decaf in
      let rand m =
        seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
        !seed mod m
      in
      let churns = ref 0 in
      let churn_done = ref false in
      ignore
        (K.Sched.spawn ~name:"churner" (fun () ->
             for _ = 1 to 4 do
               K.Sched.sleep_ns (3_000_000 + rand 4_000_000);
               let k = 1 + rand (n - 1) in
               if state_name (Printf.sprintf "e1000#%d" k) = "running" then begin
                 K.Pci.remove_device (pci_dev_at (slot_of k));
                 K.Sched.sleep_ns 500_000;
                 replug k;
                 incr churns
               end
             done;
             churn_done := true));
      let r = Vswitch.run ~ports ~duration_ns:40_000_000 ~msg_bytes:1500 in
      (* the churner may still be mid-drain when the switch run ends;
         give it bounded time to finish before tearing the fleet down *)
      let waited = ref 0 in
      while (not !churn_done) && !waited < 200 do
        K.Sched.sleep_ns 1_000_000;
        incr waited
      done;
      check_bool "churn schedule completed" true !churn_done;
      check_bool "at least one eject/replug cycle ran" true (!churns > 0);
      check_bool "fleet still passing traffic through churn" true
        (r.Vswitch.aggregate_mbps > 0.);
      Batch.drain ();
      List.iter
        (fun id -> if state_name id <> "removed" then Driver_core.rmmod id)
        ids;
      ring_conserved ();
      check "no leaked tracker entries after churn" base (tracker_entries ()))

let () =
  Alcotest.run "fleet"
    [
      ( "fleet",
        [
          Alcotest.test_case "double bind is isolated" `Quick
            double_bind_isolated;
          Alcotest.test_case "surprise removal spares siblings" `Quick
            surprise_removal_isolated;
          Alcotest.test_case "per-instance params" `Quick per_instance_params;
          Alcotest.test_case "status at fleet scale" `Quick fleet_status;
          Alcotest.test_case "churn keeps invariants" `Quick
            churn_keeps_invariants;
        ] );
    ]
