examples/slice_and_run.ml: Decaf_drivers Decaf_slicer Format List Printf Rtl8139_src String
