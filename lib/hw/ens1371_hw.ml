module K = Decaf_kernel
module Io = K.Io

let reg_control = 0x00
let reg_status = 0x04
let reg_src = 0x10
let reg_codec = 0x14
let reg_frame_size = 0x24
let reg_pos = 0x2c
let ctrl_dac2_en = 1 lsl 5
let status_intr = 1 lsl 31
let status_dac2 = 1 lsl 1

type t = {
  irq_line : int;
  mutable region : Io.region option;
  codec : int array;
  mutable control : int;
  mutable status : int;
  mutable rate : int;
  mutable period_bytes : int;
  mutable buffered : int;
  mutable data_source : (unit -> int) option;
  mutable consumed : int;
  mutable underruns : int;
  mutable periods : int;
  mutable tick : K.Clock.event_id option;
}

let playing t = t.control land ctrl_dac2_en <> 0 && t.rate > 0

let period_ns t =
  (* 16-bit stereo: 4 bytes per frame at [rate] frames per second. *)
  let byte_rate = t.rate * 4 in
  max 1 (t.period_bytes * 1_000_000_000 / byte_rate)

let rec schedule_tick t =
  t.tick <- Some (K.Clock.after (period_ns t) (fun () -> on_period t))

and on_period t =
  t.tick <- None;
  if playing t then begin
    let available =
      match t.data_source with
      | Some source -> source ()
      | None -> t.buffered
    in
    let take = min available t.period_bytes in
    if take < t.period_bytes then t.underruns <- t.underruns + 1;
    if t.data_source = None then t.buffered <- t.buffered - take;
    t.consumed <- t.consumed + take;
    t.periods <- t.periods + 1;
    t.status <- t.status lor status_intr lor status_dac2;
    (* period-tick birth: completed when the driver services the period
       (Sndcore.period_elapsed) — the latency against [period_ns] is the
       deadline margin *)
    K.Clock.track_begin "audio.period";
    K.Irq.raise_irq t.irq_line;
    schedule_tick t
  end

let start_stop t =
  match t.tick with
  | None when playing t && t.period_bytes > 0 -> schedule_tick t
  | Some ev when not (playing t) ->
      K.Clock.cancel ev;
      t.tick <- None
  | Some _ | None -> ()

let read t off (_w : Io.width) =
  match off with
  | _ when off = reg_control -> t.control
  | _ when off = reg_status -> t.status
  | _ when off = reg_src -> t.rate
  | _ when off = reg_frame_size -> t.period_bytes
  | _ when off = reg_pos -> t.consumed land 0xffff_ffff
  | _ -> 0

let write t off (_w : Io.width) v =
  match off with
  | _ when off = reg_control ->
      t.control <- v;
      start_stop t
  | _ when off = reg_status ->
      if v land status_dac2 <> 0 then begin
        t.status <- t.status land lnot status_dac2;
        if t.status land lnot status_intr = 0 then
          t.status <- t.status land lnot status_intr
      end
  | _ when off = reg_src ->
      t.rate <- v;
      start_stop t
  | _ when off = reg_codec -> t.codec.((v lsr 16) land 0x7f) <- v land 0xffff
  | _ when off = reg_frame_size -> t.period_bytes <- v
  | _ -> ()

let create ~io_base ~irq () =
  let t =
    {
      irq_line = irq;
      region = None;
      codec = Array.make 128 0;
      control = 0;
      status = 0;
      rate = 0;
      period_bytes = 0;
      buffered = 0;
      data_source = None;
      consumed = 0;
      underruns = 0;
      periods = 0;
      tick = None;
    }
  in
  t.region <-
    Some
      (Io.register_ports ~base:io_base ~len:0x40
         ~read:(fun off w -> read t off w)
         ~write:(fun off w v -> write t off w v));
  t

let destroy t =
  Option.iter K.Clock.cancel t.tick;
  Option.iter Io.release t.region

let dma_feed t n =
  if n < 0 then invalid_arg "Ens1371_hw.dma_feed";
  t.buffered <- t.buffered + n

let set_data_source t source = t.data_source <- Some source
let buffered t = t.buffered
let consumed t = t.consumed
let underruns t = t.underruns
let periods_played t = t.periods
let codec_value t reg = t.codec.(reg land 0x7f)
