(* The unified driver model: lifecycle FSM, hotplug routing, PM hooks
   and module-parameter hygiene, all through the Driver_core registry. *)

open Decaf_drivers
module K = Decaf_kernel
module Hw = Decaf_hw
module FI = K.Faultinject
module Supervisor = Decaf_runtime.Supervisor
module Scenario = Decaf_experiments.Scenario

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let state_name name = Driver_core.lifecycle_name (Driver_core.state name)

let setup_e1000 () =
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  link

let insmod_ok name =
  match Driver_core.insmod name ~mode:Driver_env.Decaf with
  | Ok () -> ()
  | Error rc -> Alcotest.failf "%s insmod failed: %d" name rc

let expect_illegal what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Illegal_transition" what
  | exception Driver_core.Illegal_transition _ -> ()

(* --- lifecycle FSM --- *)

let registry_booted () =
  Scenario.boot ();
  Alcotest.(check (list string))
    "all five drivers registered"
    [ "8139too"; "e1000"; "ens1371"; "uhci-hcd"; "psmouse" ]
    (Driver_core.registered ());
  check_bool "unknown names rejected" true
    (match Driver_core.state "floppy" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let illegal_transitions () =
  Scenario.boot ();
  ignore (setup_e1000 ());
  expect_illegal "suspend while unbound" (fun () ->
      Driver_core.suspend "e1000");
  expect_illegal "resume while unbound" (fun () -> Driver_core.resume "e1000");
  expect_illegal "rmmod while unbound" (fun () -> Driver_core.rmmod "e1000");
  Scenario.in_thread (fun () ->
      insmod_ok "e1000";
      expect_illegal "double insmod" (fun () ->
          Driver_core.insmod "e1000" ~mode:Driver_env.Decaf);
      expect_illegal "resume while running" (fun () ->
          Driver_core.resume "e1000");
      (match Driver_core.suspend "e1000" with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "suspend failed: %d" rc);
      expect_illegal "suspend while suspended" (fun () ->
          Driver_core.suspend "e1000");
      Driver_core.rmmod "e1000");
  Alcotest.(check string) "final state" "removed" (state_name "e1000")

(* --- hotplug --- *)

let removal_drains_in_flight () =
  Scenario.boot ();
  ignore (setup_e1000 ());
  let crossing_done = ref false in
  Scenario.in_thread (fun () ->
      insmod_ok "e1000";
      (* a slow decaf-driver crossing from another thread ... *)
      ignore
        (K.Sched.spawn ~name:"slow-crossing" (fun () ->
             let env = Driver_env.decaf () in
             env.Driver_env.upcall ~name:"slow_ioctl" ~bytes:8 (fun () ->
                 K.Sched.sleep_ns 1_000_000;
                 crossing_done := true)));
      K.Sched.sleep_ns 100_000;
      (* ... must complete before a surprise removal unbinds the driver *)
      let dev =
        List.find
          (fun d -> K.Pci.slot d = "00:05.0")
          (K.Pci.devices ())
      in
      K.Pci.remove_device dev;
      check_bool "in-flight crossing drained before unbind" true
        !crossing_done;
      Alcotest.(check string) "driver unbound" "removed" (state_name "e1000"))

let replug_rebinds () =
  Scenario.boot ();
  ignore (setup_e1000 ());
  Scenario.in_thread (fun () ->
      insmod_ok "e1000";
      let dev =
        List.find (fun d -> K.Pci.slot d = "00:05.0") (K.Pci.devices ())
      in
      K.Pci.remove_device dev;
      Alcotest.(check string) "removed" "removed" (state_name "e1000");
      K.Pci.add_device
        (K.Pci.make_dev ~slot:"00:05.0" ~vendor:0x8086 ~device:0x100e
           ~irq_line:11
           ~bars:
             [ { K.Pci.kind = K.Pci.Mmio_bar; base = 0xf000_0000; len = 0x20000 } ]
           ());
      Alcotest.(check string) "re-probed on replug" "running"
        (state_name "e1000");
      Driver_core.rmmod "e1000")

(* --- suspend/resume --- *)

let rmmod_while_suspended () =
  Scenario.boot ();
  let link = setup_e1000 () in
  Scenario.in_thread (fun () ->
      insmod_ok "e1000";
      let t = Option.get (E1000_drv.active ()) in
      let nd = E1000_drv.netdev t in
      (match K.Netcore.open_dev nd with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "open failed: %d" rc);
      ignore
        (Decaf_workloads.Netperf.send ~netdev:nd ~link ~duration_ns:1_000_000
           ~msg_bytes:1500);
      (match Driver_core.suspend "e1000" with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "suspend failed: %d" rc);
      Driver_core.rmmod "e1000";
      Alcotest.(check string) "unloaded from suspend" "removed"
        (state_name "e1000");
      check_bool "instance gone" true (E1000_drv.active () = None))

let pm_cycle_moves_data_after_resume () =
  Scenario.boot ();
  let link = setup_e1000 () in
  Scenario.in_thread (fun () ->
      insmod_ok "e1000";
      let t = Option.get (E1000_drv.active ()) in
      let nd = E1000_drv.netdev t in
      (match K.Netcore.open_dev nd with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "open failed: %d" rc);
      let r1 =
        Decaf_workloads.Netperf.send ~netdev:nd ~link ~duration_ns:1_000_000
          ~msg_bytes:1500
      in
      (match Driver_core.suspend "e1000" with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "suspend failed: %d" rc);
      (match Driver_core.resume "e1000" with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "resume failed: %d" rc);
      let r2 =
        Decaf_workloads.Netperf.send ~netdev:nd ~link ~duration_ns:1_000_000
          ~msg_bytes:1500
      in
      check_bool "data still moves after resume" true
        (r1.Decaf_workloads.Netperf.packets > 0
        && r2.Decaf_workloads.Netperf.packets > 0);
      Driver_core.rmmod "e1000")

let suspend_fault_recovers_balanced () =
  Scenario.boot ();
  let link = setup_e1000 () in
  Scenario.in_thread (fun () ->
      insmod_ok "e1000";
      let t = Option.get (E1000_drv.active ()) in
      let nd = E1000_drv.netdev t in
      (match K.Netcore.open_dev nd with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "open failed: %d" rc);
      FI.arm ~seed:0xdecaf
        [
          FI.spec ~site:"xpc.e1000_suspend" ~kind:FI.Xpc_timeout
            ~trigger:(FI.Span (1, 1)) ();
        ];
      (* first suspend crossing faults; the registry's supervisor
         restarts the decaf driver and retries the suspend *)
      (match Driver_core.suspend "e1000" with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "supervised suspend failed: %d" rc);
      FI.disarm ();
      Alcotest.(check string) "suspended after recovery" "suspended"
        (state_name "e1000");
      let sup = Option.get (Driver_core.supervisor "e1000") in
      let st = Supervisor.stats sup in
      check "detected" 1 st.Supervisor.detected;
      check "recovered" 1 st.Supervisor.recovered;
      check "degraded" 0 st.Supervisor.degraded;
      check "balanced accounting" st.Supervisor.detected
        (st.Supervisor.recovered + st.Supervisor.degraded);
      (* resume still works after the supervisor restart *)
      (match Driver_core.resume "e1000" with
      | Ok () -> ()
      | Error rc -> Alcotest.failf "resume after restart failed: %d" rc);
      let r =
        Decaf_workloads.Netperf.send ~netdev:nd ~link ~duration_ns:1_000_000
          ~msg_bytes:1500
      in
      check_bool "data moves after restart + resume" true
        (r.Decaf_workloads.Netperf.packets > 0);
      ignore t;
      Driver_core.rmmod "e1000")

(* --- module parameters are insmod arguments --- *)

let params_reset_between_probes () =
  Scenario.boot ();
  ignore (setup_e1000 ());
  let tx_descriptors () =
    match List.assoc_opt "TxDescriptors" !E1000_drv.checked_params with
    | Some o -> o.Decaf_runtime.Params.value
    | None -> Alcotest.fail "TxDescriptors not validated"
  in
  Scenario.in_thread (fun () ->
      E1000_drv.set_module_params ~tx_descriptors:1024 ();
      insmod_ok "e1000";
      check "first probe uses the given value" 1024 (tx_descriptors ());
      Driver_core.rmmod "e1000";
      (* back-to-back probe with no parameters: rmmod must have reset
         them to the defaults, not leaked 1024 into the next insmod *)
      insmod_ok "e1000";
      check "second probe sees the default" 256 (tx_descriptors ());
      Driver_core.rmmod "e1000")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "drivercore"
    [
      ( "lifecycle",
        [
          tc "registry boots with all five" registry_booted;
          tc "illegal transitions rejected" illegal_transitions;
        ] );
      ( "hotplug",
        [
          tc "removal drains in-flight crossings" removal_drains_in_flight;
          tc "replug re-probes" replug_rebinds;
        ] );
      ( "pm",
        [
          tc "rmmod while suspended" rmmod_while_suspended;
          tc "suspend/resume keeps the datapath" pm_cycle_moves_data_after_resume;
          tc "suspend fault recovers, stats balanced"
            suspend_fault_recovers_balanced;
        ] );
      ( "params",
        [ tc "module params reset between probes" params_reset_between_probes ] );
    ]
