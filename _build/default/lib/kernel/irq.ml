let nr_irqs = 32
let retry_ns = 500

type line = {
  mutable handler : (string * (unit -> unit)) option;
  mutable disable_depth : int;
  mutable pending : bool;
  mutable delivered : int;
}

let fresh_line () =
  { handler = None; disable_depth = 0; pending = false; delivered = 0 }

let lines = Array.init nr_irqs (fun _ -> fresh_line ())
let spurious_count = ref 0

let check n =
  if n < 0 || n >= nr_irqs then Panic.bug "irq %d out of range" n;
  lines.(n)

let request_irq n ~name handler =
  let l = check n in
  (match l.handler with
  | Some (owner, _) -> Panic.bug "irq %d already claimed by %s" n owner
  | None -> ());
  l.handler <- Some (name, handler)

let free_irq n =
  let l = check n in
  l.handler <- None;
  l.pending <- false

let cpu_can_take_irq () = not (Sched.irqs_masked () || Sched.in_interrupt ())

(* Run [f] in interrupt context now if the CPU allows, otherwise retry
   from a clock event until it does. *)
let rec run_at_high_priority f =
  if cpu_can_take_irq () then begin
    Sched.enter_interrupt ();
    Clock.consume Cost.current.irq_dispatch_ns;
    (match f () with
    | () -> Sched.exit_interrupt ()
    | exception e ->
        Sched.exit_interrupt ();
        raise e)
  end
  else ignore (Clock.after retry_ns (fun () -> run_at_high_priority f))

let rec try_deliver n =
  let l = lines.(n) in
  if l.pending && l.disable_depth = 0 then
    if cpu_can_take_irq () then begin
      l.pending <- false;
      match l.handler with
      | Some (_, handler) ->
          l.delivered <- l.delivered + 1;
          Sched.enter_interrupt ();
          Clock.consume Cost.current.irq_dispatch_ns;
          (match handler () with
          | () -> Sched.exit_interrupt ()
          | exception e ->
              Sched.exit_interrupt ();
              raise e);
          (* The device may have re-asserted the line meanwhile. *)
          try_deliver n
      | None -> incr spurious_count
    end
    else ignore (Clock.after retry_ns (fun () -> try_deliver n))

let raise_irq n =
  let l = check n in
  if l.handler = None then incr spurious_count
  else begin
    l.pending <- true;
    try_deliver n
  end

let disable_irq n =
  let l = check n in
  l.disable_depth <- l.disable_depth + 1

let enable_irq n =
  let l = check n in
  if l.disable_depth = 0 then Panic.bug "enable_irq %d: not disabled" n;
  l.disable_depth <- l.disable_depth - 1;
  if l.disable_depth = 0 then try_deliver n

let delivered n = (check n).delivered
let spurious () = !spurious_count

let reset () =
  Array.iteri (fun i _ -> lines.(i) <- fresh_line ()) lines;
  spurious_count := 0
