lib/kernel/kmem.mli:
