(** Legacy 8139too driver source (mini-C), scaled down from the
    1,916-line original. Shape per the paper's Table 2: a small nucleus
    (data path + interrupt), a C driver library portion (functions kept
    in C during migration), and the rest converted to Java. *)

let source =
  {|#include <linux/module.h>
#include <linux/netdevice.h>

#define RX_BUF_LEN 8192

struct rtl8139_stats {
  long long packets;
  long long bytes;
};

struct rtl8139_private {
  struct rtl8139_stats xstats;    /* first member: aliases the private */
  unsigned int io_base;
  int cur_tx;
  int dirty_tx;
  int cur_rx;
  int msg_enable;
  int media;
  int twistie;
  int time_to_die;
  uint8_t * __attribute__((exp(RX_BUF_LEN))) rx_ring;
  char mac_addr[6];
};

int pci_enable_device(struct rtl8139_private *tp);
int request_irq(int irq, int handler);
void free_irq(int irq);
int register_netdev(struct rtl8139_private *tp);
void unregister_netdev(struct rtl8139_private *tp);
void netif_start_queue(struct rtl8139_private *tp);
void netif_stop_queue(struct rtl8139_private *tp);
void netif_wake_queue(struct rtl8139_private *tp);
void netif_rx(struct rtl8139_private *tp, int len);
void netif_carrier_on(struct rtl8139_private *tp);
void netif_carrier_off(struct rtl8139_private *tp);
int ioread8(unsigned int addr);
int ioread16(unsigned int addr);
unsigned int ioread32(unsigned int addr);
void iowrite8(unsigned int addr, int value);
void iowrite16(unsigned int addr, int value);
void iowrite32(unsigned int addr, unsigned int value);
int kmalloc_buf(int size);
void kfree_buf(int ptr);
void udelay(int usec);
void mod_timer(int expires);
void printk_info(int code);
void spin_lock(int lock);
void spin_unlock(int lock);

/* ================ data path: stays in the kernel ================ */

static int rtl8139_start_xmit(struct rtl8139_private *tp, int len) {
  int entry = tp->cur_tx % 4;
  if (tp->cur_tx - tp->dirty_tx >= 4) {
    netif_stop_queue(tp);
    return -16;
  }
  iowrite32(tp->io_base + 0x10 + 4 * entry, len);
  tp->cur_tx = tp->cur_tx + 1;
  return 0;
}

static void rtl8139_tx_interrupt(struct rtl8139_private *tp) {
  while (tp->dirty_tx != tp->cur_tx) {
    int txstatus = ioread32(tp->io_base + 0x10 + 4 * (tp->dirty_tx % 4));
    if (!(txstatus & 0x2000))
      break;
    tp->dirty_tx = tp->dirty_tx + 1;
  }
  netif_wake_queue(tp);
}

static void rtl8139_rx_interrupt(struct rtl8139_private *tp) {
  while (!(ioread8(tp->io_base + 0x37) & 0x1)) {
    netif_rx(tp, 1514);
    tp->cur_rx = tp->cur_rx + 1;
    iowrite16(tp->io_base + 0x38, tp->cur_rx);
  }
}

static void rtl8139_weird_interrupt(struct rtl8139_private *tp) {
  tp->msg_enable = tp->msg_enable | 0x1000;
  printk_info(1);
}

static void rtl8139_interrupt(struct rtl8139_private *tp) {
  int status;
  spin_lock(0);
  status = ioread16(tp->io_base + 0x3e);
  if (!status) {
    spin_unlock(0);
    return;
  }
  iowrite16(tp->io_base + 0x3e, status);
  if (status & 0x4)
    rtl8139_tx_interrupt(tp);
  if (status & 0x1)
    rtl8139_rx_interrupt(tp);
  if (status & 0x8060)
    rtl8139_weird_interrupt(tp);
  spin_unlock(0);
}

static int rtl8139_poll(struct rtl8139_private *tp, int budget) {
  int done = 0;
  while (done < budget && tp->cur_rx != tp->dirty_tx) {
    netif_rx(tp, 1514);
    done = done + 1;
  }
  return done;
}

/* ================ driver library: kept in C ================ */

static int rtl8139_read_eeprom(struct rtl8139_private *tp, int location) {
  int i;
  int val = 0;
  iowrite8(tp->io_base + 0x50, 0x80);
  for (i = 0; i < 16; i++) {
    iowrite8(tp->io_base + 0x50, (location >> i) & 1);
    udelay(1);
    val = (val << 1) | (ioread8(tp->io_base + 0x50) & 1);
  }
  iowrite8(tp->io_base + 0x50, 0);
  return val;
}

static int mdio_read(struct rtl8139_private *tp, int reg) {
  int i;
  int val = 0;
  for (i = 0; i < 32; i++) {
    iowrite8(tp->io_base + 0x58, 0x4);
    udelay(1);
    val = (val << 1) | (ioread8(tp->io_base + 0x58) & 2);
  }
  return val;
}

static void mdio_write(struct rtl8139_private *tp, int reg, int value) {
  int i;
  for (i = 0; i < 32; i++) {
    iowrite8(tp->io_base + 0x58, (value >> i) & 1);
    udelay(1);
  }
}

static int rtl8139_get_media(struct rtl8139_private *tp) {
  int bmsr = mdio_read(tp, 1);
  if (bmsr & 0x4)
    return 1;
  return 0;
}

static void rtl8139_set_media(struct rtl8139_private *tp, int media) {
  tp->media = media;
  mdio_write(tp, 0, media);
}

static void rtl8139_twister_update(struct rtl8139_private *tp) {
  if (tp->twistie == 1) {
    iowrite32(tp->io_base + 0x5c, 0x8000);
    tp->twistie = 2;
  }
}

static int rtl8139_get_wol(struct rtl8139_private *tp) {
  int cfg3 = ioread8(tp->io_base + 0x59);
  int wolopts = 0;
  if (cfg3 & 0x20)
    wolopts = wolopts | 0x1;
  if (cfg3 & 0x10)
    wolopts = wolopts | 0x2;
  return wolopts;
}

static int rtl8139_set_wol(struct rtl8139_private *tp, int wolopts) {
  int cfg3 = ioread8(tp->io_base + 0x59);
  iowrite8(tp->io_base + 0x50, 0xc0);
  if (wolopts & 0x1)
    cfg3 = cfg3 | 0x20;
  else
    cfg3 = cfg3 & ~0x20;
  iowrite8(tp->io_base + 0x59, cfg3);
  iowrite8(tp->io_base + 0x50, 0);
  return 0;
}

static int rtl8139_get_msglevel(struct rtl8139_private *tp) {
  DECAF_RVAR(tp->msg_enable);
  return tp->msg_enable;
}

static void rtl8139_set_msglevel(struct rtl8139_private *tp, int value) {
  tp->msg_enable = value;
}

/* ================ converted to Java ================ */

static void rtl8139_chip_reset(struct rtl8139_private *tp) {
  int i;
  iowrite8(tp->io_base + 0x37, 0x10);
  for (i = 0; i < 100; i++) {
    if (!(ioread8(tp->io_base + 0x37) & 0x10))
      break;
    udelay(10);
  }
}

static int rtl8139_init_board(struct rtl8139_private *tp) {
  int err = pci_enable_device(tp);
  if (err)
    return err;
  rtl8139_chip_reset(tp);
  return 0;
}

static void rtl8139_read_mac(struct rtl8139_private *tp) {
  int i;
  DECAF_WVAR(tp->mac_addr);
  for (i = 0; i < 6; i++)
    tp->mac_addr[i] = ioread8(tp->io_base + i);
}

static void rtl8139_hw_start(struct rtl8139_private *tp) {
  iowrite8(tp->io_base + 0x37, 0xc);
  iowrite32(tp->io_base + 0x44, 0xf);
  iowrite32(tp->io_base + 0x40, 0x600);
  iowrite32(tp->io_base + 0x30, 0x100000);
  iowrite16(tp->io_base + 0x3c, 0xffff);
}

static void rtl8139_init_ring(struct rtl8139_private *tp) {
  tp->cur_rx = 0;
  tp->cur_tx = 0;
  tp->dirty_tx = 0;
}

static int rtl8139_open(struct rtl8139_private *tp) {
  int err;
  int buf;
  err = request_irq(10, 1);
  if (err)
    return err;
  buf = kmalloc_buf(RX_BUF_LEN);
  if (!buf)
    goto err_free_irq;
  rtl8139_init_ring(tp);
  rtl8139_hw_start(tp);
  netif_start_queue(tp);
  return 0;
err_free_irq:
  free_irq(10);
  return -12;
}

static int rtl8139_close(struct rtl8139_private *tp) {
  netif_stop_queue(tp);
  iowrite8(tp->io_base + 0x37, 0);
  iowrite16(tp->io_base + 0x3c, 0);
  free_irq(10);
  kfree_buf(0);
  return 0;
}

static void rtl8139_set_rx_mode(struct rtl8139_private *tp) {
  unsigned int rx_mode = 0xf;
  iowrite32(tp->io_base + 0x44, rx_mode);
}

static int rtl8139_set_mac_address(struct rtl8139_private *tp, char *addr) {
  int i;
  for (i = 0; i < 6; i++)
    tp->mac_addr[i] = addr[i];
  for (i = 0; i < 6; i++)
    iowrite8(tp->io_base + i, addr[i]);
  return 0;
}

static int rtl8139_get_stats(struct rtl8139_private *tp) {
  DECAF_RVAR(tp->msg_enable);
  return tp->msg_enable;
}

static void rtl8139_timer(struct rtl8139_private *tp) {
  int media = rtl8139_get_media(tp);
  if (media != tp->media) {
    rtl8139_set_media(tp, media);
    if (media)
      netif_carrier_on(tp);
    else
      netif_carrier_off(tp);
  }
  rtl8139_twister_update(tp);
  mod_timer(2000);
}

static void rtl8139_tx_timeout(struct rtl8139_private *tp) {
  rtl8139_chip_reset(tp);
  rtl8139_hw_start(tp);
  netif_wake_queue(tp);
}

static int rtl8139_probe(struct rtl8139_private *tp) {
  int err;
  int eeprom_val;
  err = rtl8139_init_board(tp);
  if (err)
    return err;
  eeprom_val = rtl8139_read_eeprom(tp, 0);
  if (eeprom_val == 0x8129)
    rtl8139_read_mac(tp);
  err = register_netdev(tp);
  if (err)
    goto err_out;
  netif_carrier_off(tp);
  return 0;
err_out:
  rtl8139_chip_reset(tp);
  return err;
}

static void rtl8139_remove(struct rtl8139_private *tp) {
  unregister_netdev(tp);
  rtl8139_chip_reset(tp);
}

static int rtl8139_suspend(struct rtl8139_private *tp) {
  netif_stop_queue(tp);
  iowrite8(tp->io_base + 0x37, 0);
  return 0;
}

static int rtl8139_resume(struct rtl8139_private *tp) {
  rtl8139_hw_start(tp);
  netif_start_queue(tp);
  return 0;
}
|}

let config =
  {
    Decaf_slicer.Slicer.partition =
      {
        Decaf_slicer.Partition.driver_name = "8139too";
        critical_roots = [ "rtl8139_interrupt"; "rtl8139_start_xmit"; "rtl8139_poll" ];
        interface_functions =
          [
            "rtl8139_probe";
            "rtl8139_remove";
            "rtl8139_open";
            "rtl8139_close";
            "rtl8139_start_xmit";
            "rtl8139_interrupt";
            "rtl8139_poll";
            "rtl8139_set_rx_mode";
            "rtl8139_set_mac_address";
            "rtl8139_get_stats";
            "rtl8139_timer";
            "rtl8139_tx_timeout";
            "rtl8139_suspend";
            "rtl8139_resume";
          ];
      };
    const_env = [ ("RX_BUF_LEN", 8192) ];
    (* the MII/EEPROM bit-banging helpers stayed in the C driver library
       during migration *)
    java_functions =
      Decaf_slicer.Slicer.Only
        [
          "rtl8139_chip_reset";
          "rtl8139_init_board";
          "rtl8139_read_mac";
          "rtl8139_hw_start";
          "rtl8139_init_ring";
          "rtl8139_open";
          "rtl8139_close";
          "rtl8139_set_rx_mode";
          "rtl8139_set_mac_address";
          "rtl8139_get_stats";
          "rtl8139_timer";
          "rtl8139_tx_timeout";
          "rtl8139_probe";
          "rtl8139_remove";
          "rtl8139_suspend";
          "rtl8139_resume";
        ];
  }

(* Line-anchored decaf-lint suppressions; see Lint.apply_waivers. *)
let lint_waivers : Decaf_slicer.Lint.waiver list =
  let open Decaf_slicer.Lint in
  [
    {
      w_pass = Annotation_soundness;
      w_anchor = "rtl8139_private";
      w_line = 11;
      w_reason =
        "pre-conversion corpus: the C bodies remain the slicer's input, and \
         the legacy plan counts the mac_addr array-element store as a read";
    };
    {
      w_pass = Inbound_validation;
      w_anchor = "rtl8139_private";
      w_line = 11;
      w_reason =
        "pre-conversion corpus: the decaf build validates these fields at \
         the boundary via the Guard rules in Rtl8139_objects";
    };
  ]
