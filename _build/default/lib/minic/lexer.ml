exception Lex_error of string * Loc.t

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let loc st = Loc.make ~line:st.line ~col:(st.pos - st.bol + 1)
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Lex_error (msg, loc st))

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
      advance st;
      skip_trivia st
  | Some '/', Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/', Some '*' ->
      advance st;
      advance st;
      let rec scan () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated comment"
        | Some _, _ ->
            advance st;
            scan ()
      in
      scan ();
      skip_trivia st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while match peek st with Some c when is_ident_char c -> true | _ -> false do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st
  end;
  let is_num_char c =
    is_digit c
    || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    advance st
  done;
  (* integer suffixes *)
  while
    match peek st with Some ('u' | 'U' | 'l' | 'L') -> true | _ -> false
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  let text =
    let rec strip s =
      let n = String.length s in
      if n > 0 && (match s.[n - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
      then strip (String.sub s 0 (n - 1))
      else s
    in
    strip text
  in
  match int_of_string_opt text with
  | Some n -> n
  | None -> error st ("bad integer literal " ^ text)

let lex_escaped st =
  match peek st with
  | Some 'n' ->
      advance st;
      '\n'
  | Some 't' ->
      advance st;
      '\t'
  | Some 'r' ->
      advance st;
      '\r'
  | Some '0' ->
      advance st;
      '\000'
  | Some (('\\' | '\'' | '"') as c) ->
      advance st;
      c
  | _ -> error st "bad escape"

let lex_string st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec scan () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        Buffer.add_char buf (lex_escaped st);
        scan ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        scan ()
    | None -> error st "unterminated string"
  in
  scan ();
  Buffer.contents buf

let lex_char st =
  advance st;
  let c =
    match peek st with
    | Some '\\' ->
        advance st;
        lex_escaped st
    | Some c ->
        advance st;
        c
    | None -> error st "unterminated char"
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> error st "unterminated char literal");
  c

(* Read the balanced-paren payload of __attribute__((...)). *)
let lex_attribute_payload st =
  skip_trivia st;
  if peek st <> Some '(' then error st "expected ( after __attribute__";
  advance st;
  skip_trivia st;
  if peek st <> Some '(' then error st "expected (( after __attribute__";
  advance st;
  let buf = Buffer.create 32 in
  let depth = ref 1 in
  while !depth > 0 do
    match peek st with
    | Some '(' ->
        incr depth;
        Buffer.add_char buf '(';
        advance st
    | Some ')' ->
        decr depth;
        if !depth > 0 then Buffer.add_char buf ')';
        advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st
    | None -> error st "unterminated __attribute__"
  done;
  skip_trivia st;
  if peek st <> Some ')' then error st "expected closing ) of __attribute__";
  advance st;
  String.trim (Buffer.contents buf)

let lex_pragma st =
  advance st;
  (* '#' *)
  let start = st.pos in
  while peek st <> None && peek st <> Some '\n' do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let op2 st t =
  advance st;
  advance st;
  t

let op3 st t =
  advance st;
  advance st;
  advance st;
  t

let op1 st t =
  advance st;
  t

let next_token st : Token.t =
  match peek st with
  | None -> Token.Eof
  | Some c when is_ident_start c ->
      let word = lex_ident st in
      if word = "__attribute__" then Token.Attribute (lex_attribute_payload st)
      else (
        match List.assoc_opt word Token.keyword_table with
        | Some kw -> kw
        | None -> Token.Ident word)
  | Some c when is_digit c -> Token.Int_lit (lex_number st)
  | Some '"' -> Token.Str_lit (lex_string st)
  | Some '\'' -> Token.Char_lit (lex_char st)
  | Some '#' -> Token.Pragma (lex_pragma st)
  | Some c -> (
      let c2 = peek2 st in
      let c3 =
        if st.pos + 2 < String.length st.src then Some st.src.[st.pos + 2]
        else None
      in
      match (c, c2, c3) with
      | '.', Some '.', Some '.' -> op3 st Token.Ellipsis
      | '<', Some '<', Some '=' -> op3 st Token.Shl_assign
      | '>', Some '>', Some '=' -> op3 st Token.Shr_assign
      | '-', Some '>', _ -> op2 st Token.Arrow
      | '+', Some '+', _ -> op2 st Token.Incr
      | '-', Some '-', _ -> op2 st Token.Decr
      | '+', Some '=', _ -> op2 st Token.Plus_assign
      | '-', Some '=', _ -> op2 st Token.Minus_assign
      | '*', Some '=', _ -> op2 st Token.Star_assign
      | '/', Some '=', _ -> op2 st Token.Slash_assign
      | '|', Some '=', _ -> op2 st Token.Or_assign
      | '&', Some '=', _ -> op2 st Token.And_assign
      | '^', Some '=', _ -> op2 st Token.Xor_assign
      | '=', Some '=', _ -> op2 st Token.Eq
      | '!', Some '=', _ -> op2 st Token.Neq
      | '<', Some '=', _ -> op2 st Token.Le
      | '>', Some '=', _ -> op2 st Token.Ge
      | '<', Some '<', _ -> op2 st Token.Shl
      | '>', Some '>', _ -> op2 st Token.Shr
      | '&', Some '&', _ -> op2 st Token.Amp_amp
      | '|', Some '|', _ -> op2 st Token.Bar_bar
      | '(', _, _ -> op1 st Token.Lparen
      | ')', _, _ -> op1 st Token.Rparen
      | '{', _, _ -> op1 st Token.Lbrace
      | '}', _, _ -> op1 st Token.Rbrace
      | '[', _, _ -> op1 st Token.Lbracket
      | ']', _, _ -> op1 st Token.Rbracket
      | ';', _, _ -> op1 st Token.Semi
      | ',', _, _ -> op1 st Token.Comma
      | '.', _, _ -> op1 st Token.Dot
      | ':', _, _ -> op1 st Token.Colon
      | '?', _, _ -> op1 st Token.Question
      | '=', _, _ -> op1 st Token.Assign
      | '+', _, _ -> op1 st Token.Plus
      | '-', _, _ -> op1 st Token.Minus
      | '*', _, _ -> op1 st Token.Star
      | '/', _, _ -> op1 st Token.Slash
      | '%', _, _ -> op1 st Token.Percent
      | '!', _, _ -> op1 st Token.Bang
      | '&', _, _ -> op1 st Token.Amp
      | '|', _, _ -> op1 st Token.Bar
      | '^', _, _ -> op1 st Token.Caret
      | '~', _, _ -> op1 st Token.Tilde
      | '<', _, _ -> op1 st Token.Lt
      | '>', _, _ -> op1 st Token.Gt
      | _ -> error st (Printf.sprintf "unexpected character %C" c))

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let rec loop acc =
    skip_trivia st;
    let l = loc st in
    let t = next_token st in
    if t = Token.Eof then List.rev ((t, l) :: acc) else loop ((t, l) :: acc)
  in
  loop []
