lib/slicer/annot.ml: Decaf_minic Decaf_xpc List
