(** An MII PHY (transceiver) with the standard management registers the
    drivers poke during link bring-up. *)

type t

val create : ?link_up:bool -> unit -> t

val read : t -> int -> int
(** Read an MII register: 0 = BMCR, 1 = BMSR, 2/3 = PHY id,
    4 = advertisement, 5 = link-partner ability. *)

val write : t -> int -> int -> unit
(** Writing BMCR bit 15 resets the PHY; bit 12 enables autonegotiation;
    bit 9 restarts it (completing after a short delay). *)

val set_link : t -> bool -> unit
val link_up : t -> bool
val autoneg_complete : t -> bool
