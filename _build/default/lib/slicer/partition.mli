(** Partitioning: which functions must stay in the kernel.

    As in Microdrivers (§2.4), the input is the set of {e critical root
    functions} — driver entry points that must execute in the kernel for
    performance (data path) or functionality (interrupt handlers, code
    called with locks held). Every function reachable from a critical
    root stays in the driver nucleus; everything else can move to user
    level.

    The pass also computes the entry points where control crosses the
    boundary: user-mode entry points (driver-interface functions that
    moved up) and kernel entry points (critical driver functions and
    kernel imports invoked from user-mode code). *)

type config = {
  driver_name : string;
  critical_roots : string list;
      (** driver functions that must run in the kernel *)
  interface_functions : string list;
      (** functions the kernel invokes (the driver's ops tables); those
          not forced into the nucleus become user-mode entry points *)
}

type placement = Nucleus | User

type result = {
  config : config;
  nucleus : string list;
  user : string list;
  user_entry_points : string list;
  kernel_entry_points : string list;
      (** nucleus functions and kernel imports called from user code *)
}

val run : Decaf_minic.Ast.file -> config -> result
(** Raises [Invalid_argument] if a critical root or interface function is
    not defined in the file. *)

val placement : result -> string -> placement
(** Placement of a defined function; raises [Not_found] otherwise. *)

val check_soundness : Decaf_minic.Ast.file -> result -> (unit, string) Stdlib.result
(** Verify the partition invariant: no function reachable from a critical
    root was placed in user mode. Property tests run this on random
    subsets of roots. *)
