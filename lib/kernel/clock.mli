(** The virtual clock and event queue of the simulated machine.

    Time is measured in integer nanoseconds since boot. Work performed by
    driver or kernel code is charged with {!consume}, which also delivers
    any hardware events (device timers, interrupt sources) that become due
    while the work runs — modelling interrupts preempting the CPU. *)

type event_id

val now : unit -> int
(** Current virtual time in nanoseconds. *)

val busy_ns : unit -> int
(** Total virtual time spent busy (charged via {!consume}). *)

val utilization : since:int -> busy_since:int -> float
(** CPU utilization over the window starting at virtual time [since] with
    busy counter value [busy_since]: (busy now - busy_since) / (now - since).
    Returns 0 for an empty window. *)

val consume : int -> unit
(** [consume ns] charges [ns] of busy CPU time, advancing the clock and
    running any events that become due in the interval (at their due
    time). *)

val at : int -> (unit -> unit) -> event_id
(** [at t f] schedules [f] to run at absolute virtual time [t] (or
    immediately after now, if [t] is in the past). *)

val after : int -> (unit -> unit) -> event_id
(** [after ns f] is [at (now () + ns) f]. *)

val cancel : event_id -> unit
(** Cancel a pending event; cancelling a fired event is a no-op. *)

val pending : event_id -> bool
(** Whether the event is scheduled and not yet fired or cancelled. *)

val scheduled : unit -> int
(** Total events ever scheduled since boot (diagnostic). *)

val has_events : unit -> bool
(** Whether any event is pending. *)

val advance_to_next_event : unit -> bool
(** Idle until the next pending event and run every event due at that
    instant. Returns [false] when no event is pending. The elapsed
    interval counts as idle time. *)

val reset : unit -> unit
(** Reboot: clear all events, return to time 0, zero the busy counter. *)
