lib/slicer/slicer.ml: Annot Decaf_minic Decaf_xpc List Marshalgen Partition Splitgen Stubgen Xdrspec
