module K = Decaf_kernel
module Hw = Decaf_hw

type result = {
  events_delivered : int;
  packets : int;
  cpu_utilization : float;
  elapsed_ns : int;
}

let report_interval_ns = 10_000_000 (* 100 reports per second *)

let run ~model ~input ~duration_ns =
  let t0 = K.Clock.now () and busy0 = K.Clock.busy_ns () in
  let packets0 = Hw.Psmouse_hw.packets_sent model in
  let events = ref 0 in
  K.Inputcore.set_handler input (fun _ev ->
      (* the X server processes the event *)
      K.Clock.consume 2_000;
      incr events);
  let deadline = t0 + duration_ns in
  let i = ref 0 in
  while K.Clock.now () < deadline do
    incr i;
    let click = !i mod 50 = 0 in
    Hw.Psmouse_hw.move model ~dx:(1 + (!i mod 5)) ~dy:(-(!i mod 3))
      ~buttons:(if click then 1 else 0);
    K.Sched.sleep_ns report_interval_ns
  done;
  K.Sched.sleep_ns 1_000_000;
  {
    events_delivered = !events;
    packets = Hw.Psmouse_hw.packets_sent model - packets0;
    cpu_utilization = K.Clock.utilization ~since:t0 ~busy_since:busy0;
    elapsed_ns = K.Clock.now () - t0;
  }

let pp ppf r =
  Format.fprintf ppf "%d packets, %d events, %.2f%% CPU" r.packets
    r.events_delivered
    (100. *. r.cpu_utilization)
