(** A virtual switch driving a fleet of NIC instances: one netperf-style
    bulk TX flow per port, all concurrent, paced by clock events rather
    than scheduler threads so a 64..256-port fleet measures the drivers
    and the XPC layer, not context-switch overhead. *)

type port = { netdev : Decaf_kernel.Netcore.t; link : Decaf_hw.Link.t }

type result = {
  aggregate_mbps : float;  (** sum of per-port wire goodput *)
  min_mbps : float;  (** slowest port — fairness floor *)
  mean_mbps : float;
  max_mbps : float;  (** fastest port; max/min is the fairness spread *)
  packets : int;  (** frames on the wire, all ports *)
  elapsed_ns : int;
  per_port_mbps : float list;  (** in [ports] order *)
}

val run :
  ports:port list -> duration_ns:int -> msg_bytes:int -> result
(** Stream messages out of every port for the given virtual duration.
    Runs in the calling thread (which sleeps while the event chains do
    the work). A port whose netdev goes down mid-run (hotplug churn)
    simply stops contributing. *)

val pp : Format.formatter -> result -> unit
