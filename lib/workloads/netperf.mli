(** The netperf workload: bulk TCP-style send and receive streams over a
    simulated NIC, reporting throughput and CPU utilization as the
    paper's Table 3 does. *)

type result = {
  throughput_mbps : float;  (** raw: wire bytes over elapsed virtual time *)
  goodput_mbps : float;
      (** cost-adjusted: wire bytes over elapsed time {e plus} the XPC
          dispatch engine's critical-path overhead
          ({!Decaf_xpc.Dispatch.overhead_ns}); this is the metric that
          responds to batching, delta marshaling, sharding and worker
          count *)
  cpu_utilization : float;
  elapsed_ns : int;
  xpc_overhead_ns : int;  (** dispatch critical-path ns during the run *)
  packets : int;
}

val send :
  netdev:Decaf_kernel.Netcore.t ->
  link:Decaf_hw.Link.t ->
  duration_ns:int ->
  msg_bytes:int ->
  result
(** Stream messages out as fast as the device accepts them, for the
    given virtual duration. Runs in the calling thread. *)

val recv :
  netdev:Decaf_kernel.Netcore.t ->
  link:Decaf_hw.Link.t ->
  duration_ns:int ->
  msg_bytes:int ->
  result
(** Have the link peer saturate the receive path; counts packets the
    stack delivers. *)

val pp : Format.formatter -> result -> unit
