module K = Decaf_kernel

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable registrations : int;
}

type weak_entry = { w_get : unit -> Univ.t option }

type t = {
  name : string;
  table : (int * string, Univ.t) Hashtbl.t;
  weak_table : (int * string, weak_entry) Hashtbl.t;
  stats : stats;
}

let create ?(name = "objtracker") () =
  {
    name;
    table = Hashtbl.create 64;
    weak_table = Hashtbl.create 16;
    stats = { lookups = 0; hits = 0; registrations = 0 };
  }

let associate t ~addr u =
  t.stats.registrations <- t.stats.registrations + 1;
  Hashtbl.replace t.table (addr, Univ.name u) u

let find t ~addr key =
  t.stats.lookups <- t.stats.lookups + 1;
  K.Clock.consume K.Cost.current.objtracker_lookup_ns;
  let slot = (addr, Univ.key_name key) in
  match Hashtbl.find_opt t.table slot with
  | Some u ->
      t.stats.hits <- t.stats.hits + 1;
      Univ.unpack key u
  | None -> (
      match Hashtbl.find_opt t.weak_table slot with
      | Some entry -> (
          match entry.w_get () with
          | Some u ->
              t.stats.hits <- t.stats.hits + 1;
              Univ.unpack key u
          | None ->
              (* the decaf driver dropped its last reference *)
              Hashtbl.remove t.weak_table slot;
              None)
      | None -> None)

let mem t ~addr ~type_id =
  Hashtbl.mem t.table (addr, type_id)
  || Hashtbl.mem t.weak_table (addr, type_id)

let associate_weak t ~addr key v =
  t.stats.registrations <- t.stats.registrations + 1;
  let w = Weak.create 1 in
  Weak.set w 0 (Some v);
  let w_get () = Option.map (Univ.pack key) (Weak.get w 0) in
  Hashtbl.replace t.weak_table (addr, Univ.key_name key) { w_get }

let sweep t =
  let dead =
    Hashtbl.fold
      (fun slot entry acc ->
        if entry.w_get () = None then slot :: acc else acc)
      t.weak_table []
  in
  List.iter (Hashtbl.remove t.weak_table) dead;
  List.length dead

let weak_count t = Hashtbl.length t.weak_table

let types_at t ~addr =
  let strong =
    Hashtbl.fold
      (fun (a, ty) _ acc -> if a = addr then ty :: acc else acc)
      t.table []
  in
  let weak =
    Hashtbl.fold
      (fun (a, ty) entry acc ->
        if a = addr && entry.w_get () <> None then ty :: acc else acc)
      t.weak_table []
  in
  List.sort compare (strong @ weak)

let remove t ~addr ~type_id =
  Hashtbl.remove t.table (addr, type_id);
  Hashtbl.remove t.weak_table (addr, type_id)

let remove_all t ~addr =
  List.iter (fun type_id -> remove t ~addr ~type_id) (types_at t ~addr)

let count t = Hashtbl.length t.table
let stats t = t.stats

let clear t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.weak_table
