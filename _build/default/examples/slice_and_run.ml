(* DriverSlicer end to end: partition the legacy 8139too driver, inspect
   what the tooling generates (stubs, XDR spec, the two source trees),
   and verify the partition is sound.

   Run with:  dune exec examples/slice_and_run.exe *)

module Slicer = Decaf_slicer.Slicer
module Partition = Decaf_slicer.Partition
module Splitgen = Decaf_slicer.Splitgen
module Xdrspec = Decaf_slicer.Xdrspec
module Report = Decaf_slicer.Report
open Decaf_drivers

let () =
  let out = Slicer.slice ~source:Rtl8139_src.source Rtl8139_src.config in
  let p = out.Slicer.partition in

  print_endline "== partition ==";
  Printf.printf "kernel nucleus (%d functions): %s\n"
    (List.length p.Partition.nucleus)
    (String.concat ", " p.Partition.nucleus);
  Printf.printf "user level (%d functions)\n" (List.length p.Partition.user);
  Printf.printf "  converted to Java: %s\n"
    (String.concat ", " (Slicer.decaf_functions out));
  Printf.printf "  left in the C driver library: %s\n"
    (String.concat ", " (Slicer.library_functions out));

  (match Partition.check_soundness out.Slicer.file p with
  | Ok () -> print_endline "partition soundness: OK"
  | Error msg -> Printf.printf "partition UNSOUND: %s\n" msg);

  print_endline "\n== one generated kernel stub ==";
  (match List.assoc_opt "kernel:rtl8139_open" out.Slicer.stubs with
  | Some stub -> print_string stub
  | None -> print_endline "(none)");

  print_endline "\n== generated XDR spec ==";
  print_string (Xdrspec.to_string out.Slicer.spec);

  print_endline "\n== split source sizes ==";
  Printf.printf "nucleus tree: %d LoC, library tree: %d LoC, stubs: %d LoC\n"
    (Splitgen.nucleus_loc out.Slicer.split)
    (Splitgen.library_loc out.Slicer.split)
    (Splitgen.stubs_loc out.Slicer.split);

  print_endline "\n== Table 2 row ==";
  print_endline Report.header;
  Format.printf "%a@." Report.pp_row (Report.stats out ~dtype:"Network")
