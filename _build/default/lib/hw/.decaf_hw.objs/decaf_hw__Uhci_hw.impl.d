lib/hw/uhci_hw.ml: Decaf_kernel Option Queue
