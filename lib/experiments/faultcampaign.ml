(* Fault-injection campaign: drive every decaf driver through its
   workload while Faultinject corrupts device reads, wedges handshakes,
   fails allocations and times out XPC crossings, with the recovery
   supervisor in the loop.  The figure of merit is the paper's
   reliability claim: a misbehaving decaf driver may be restarted or
   disabled, but it never takes the kernel down. *)

module K = Decaf_kernel
module Hw = Decaf_hw
module FI = K.Faultinject
module Errors = Decaf_runtime.Errors
module Supervisor = Decaf_runtime.Supervisor
open Decaf_drivers
open Decaf_workloads

type trial = {
  driver : string;
  fault : string;
  expected : string;
  outcome : string;
  injected : int;
  detected : int;
  recovered : int;
  degraded : int;
  restarts : int;
  kernel_bugs : int;
}

type report = {
  seed : int;
  trials : trial list;
  total_injected : int;
  total_detected : int;
  total_recovered : int;
  total_degraded : int;
  total_restarts : int;
  total_kernel_bugs : int;
}

(* --- trial harness --- *)

let ok_or what = function
  | Ok v -> v
  | Error rc -> Errors.throw ~driver:what ~errno:(-rc) what

(* Spurious interrupts are campaign-raised rather than device-raised:
   the clock event asks the fault plan whether to fire, so they obey the
   same trigger/seed discipline as every other fault kind. *)
let schedule_spurious irq =
  List.iter
    (fun at_ns ->
      ignore
        (K.Clock.after at_ns (fun () ->
             if FI.fires ~site:"irq.spurious" FI.Spurious_irq then
               K.Irq.raise_irq irq)))
    [ 2_000_000; 30_000_000; 60_000_000 ]

type case = {
  c_driver : string;
  c_fault : string;
  c_expected : string;
  c_specs : FI.spec list;
  c_spurious : int option;
  c_setup : unit -> unit -> unit;
      (** runs after boot; returns the workload run between the
          registry's insmod and rmmod of [c_driver] *)
}

(* Every trial loads, supervises and unloads its driver through the
   registry: [Driver_core.run] binds the driver, runs the workload, and
   tears the driver down, with the supervisor it attached owning the
   restart budget.  The campaign only reads the stats back out. *)
let run_case ~seed c =
  Scenario.boot ();
  let body = c.c_setup () in
  FI.arm ~seed c.c_specs;
  (match c.c_spurious with Some irq -> schedule_spurious irq | None -> ());
  let bugs = ref 0 in
  let finished = ref false in
  (* A Kernel_bug — or any exception the supervisor failed to contain —
     escaping the scheduler is exactly the outcome the campaign exists
     to rule out; count it rather than crash the campaign. *)
  (try
     Scenario.in_thread (fun () ->
         match Driver_core.run c.c_driver ~mode:Driver_env.Decaf body with
         | Some () -> finished := true
         | None -> ())
   with _ -> incr bugs);
  let injected = FI.injected_count () in
  let sup =
    match Driver_core.supervisor c.c_driver with
    | Some sup -> sup
    | None -> Supervisor.create ~name:c.c_driver ()
  in
  let st = Supervisor.stats sup in
  let outcome =
    if !bugs > 0 then "KERNEL-BUG"
    else if Supervisor.state sup = Supervisor.Disabled then "degraded"
    else if st.Supervisor.detected > 0 then "recovered"
    else if injected > 0 then "tolerated"
    else "clean"
  in
  (* Faults the stack absorbed without the supervisor's help (internal
     retries, idempotent XPC replays, spurious-interrupt filtering)
     still count as detected-and-recovered episodes. *)
  if outcome = "tolerated" && !finished then Supervisor.note_tolerated sup;
  let st = Supervisor.stats sup in
  FI.disarm ();
  {
    driver = c.c_driver;
    fault = c.c_fault;
    expected = c.c_expected;
    outcome;
    injected;
    detected = st.Supervisor.detected;
    recovered = st.Supervisor.recovered;
    degraded = st.Supervisor.degraded;
    restarts = st.Supervisor.restarts;
    kernel_bugs = !bugs;
  }

(* --- per-driver scenarios (decaf mode, as in Table 3) ---

   The bodies are workload-only: [Driver_core.run] has already probed
   the driver when they start, and unloads it (faulting or not) when
   they end, so each re-fetches the live instance via [active ()]. *)

let rtl_setup () =
  let link = Hw.Link.create ~rate_bps:100_000_000 () in
  ignore
    (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10
       ~mac:Scenario.mac ~link ());
  fun () ->
    let t = Option.get (Rtl8139_drv.active ()) in
    let nd = Rtl8139_drv.netdev t in
    ok_or "8139too-open" (K.Netcore.open_dev nd);
    ignore (Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000 ~msg_bytes:1500)

let e1000_setup () =
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  fun () ->
    let t = Option.get (E1000_drv.active ()) in
    let nd = E1000_drv.netdev t in
    ok_or "e1000-open" (K.Netcore.open_dev nd);
    ignore (Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000 ~msg_bytes:1500)

let ens_setup () =
  let model = Ens1371_drv.setup_device ~slot:"00:06.0" ~io_base:0xd000 ~irq:9 () in
  fun () ->
    let t = Option.get (Ens1371_drv.active ()) in
    ignore
      (Mpg123.play ~substream:(Ens1371_drv.substream t) ~model
         ~duration_ns:20_000_000)

let uhci_setup () =
  let model = Uhci_drv.setup_device ~io_base:0xe000 ~irq:5 () in
  fun () -> ignore (Tar_usb.untar ~model ~files:1 ~file_bytes:4096)

let psmouse_setup () =
  let model = Psmouse_drv.setup_device () in
  fun () ->
    let t = Option.get (Psmouse_drv.active ()) in
    ignore
      (Mouse_move.run ~model
         ~input:(Psmouse_drv.input_dev t)
         ~duration_ns:20_000_000)

(* --- hotplug and power-management windows --- *)

let e1000_dev () =
  K.Pci.make_dev ~slot:"00:05.0" ~vendor:0x8086 ~device:0x100e ~irq_line:11
    ~bars:[ { K.Pci.kind = K.Pci.Mmio_bar; base = 0xf000_0000; len = 0x20000 } ]
    ()

let dev_at slot =
  match List.find_opt (fun d -> K.Pci.slot d = slot) (K.Pci.devices ()) with
  | Some d -> d
  | None -> Errors.throw ~driver:"campaign" ~errno:Errors.enodev slot

(* Surprise-remove the NIC mid-workload, then replug it.  The registry's
   hotplug handler unbinds on removal and re-probes on re-add — both
   inside the same supervised episode, so a fault in the re-probe is one
   more recoverable crossing. *)
let e1000_hotplug_setup () =
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  fun () ->
    let send () =
      let t = Option.get (E1000_drv.active ()) in
      let nd = E1000_drv.netdev t in
      ok_or "e1000-open" (K.Netcore.open_dev nd);
      ignore
        (Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000 ~msg_bytes:1500)
    in
    send ();
    K.Pci.remove_device (dev_at "00:05.0");
    K.Pci.add_device (e1000_dev ());
    send ()

let e1000_pm_setup () =
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  fun () ->
    let t = Option.get (E1000_drv.active ()) in
    let nd = E1000_drv.netdev t in
    ok_or "e1000-open" (K.Netcore.open_dev nd);
    ignore (Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000 ~msg_bytes:1500);
    ok_or "e1000-suspend" (Driver_core.suspend "e1000");
    ok_or "e1000-resume" (Driver_core.resume "e1000");
    ignore (Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000 ~msg_bytes:1500)

let ens_pm_setup () =
  let model = Ens1371_drv.setup_device ~slot:"00:06.0" ~io_base:0xd000 ~irq:9 () in
  fun () ->
    let t = Option.get (Ens1371_drv.active ()) in
    ignore
      (Mpg123.play ~substream:(Ens1371_drv.substream t) ~model
         ~duration_ns:10_000_000);
    ok_or "ens1371-suspend" (Driver_core.suspend "ens1371");
    ok_or "ens1371-resume" (Driver_core.resume "ens1371");
    ignore
      (Mpg123.play ~substream:(Ens1371_drv.substream t) ~model
         ~duration_ns:10_000_000)

let uhci_pm_setup () =
  let model = Uhci_drv.setup_device ~io_base:0xe000 ~irq:5 () in
  fun () ->
    ignore (Tar_usb.untar ~model ~files:1 ~file_bytes:4096);
    ok_or "uhci-suspend" (Driver_core.suspend "uhci-hcd");
    ok_or "uhci-resume" (Driver_core.resume "uhci-hcd");
    ignore (Tar_usb.untar ~model ~files:1 ~file_bytes:4096)

let psmouse_hotplug_setup () =
  let model = Psmouse_drv.setup_device () in
  fun () ->
    let move () =
      let t = Option.get (Psmouse_drv.active ()) in
      ignore
        (Mouse_move.run ~model
           ~input:(Psmouse_drv.input_dev t)
           ~duration_ns:20_000_000)
    in
    move ();
    Driver_core.eject "psmouse";
    ok_or "psmouse-reinsmod"
      (Driver_core.insmod "psmouse" ~mode:Driver_env.Decaf);
    move ()

let psmouse_pm_setup () =
  let model = Psmouse_drv.setup_device () in
  fun () ->
    let move () =
      let t = Option.get (Psmouse_drv.active ()) in
      ignore
        (Mouse_move.run ~model
           ~input:(Psmouse_drv.input_dev t)
           ~duration_ns:20_000_000)
    in
    move ();
    ok_or "psmouse-suspend" (Driver_core.suspend "psmouse");
    ok_or "psmouse-resume" (Driver_core.resume "psmouse");
    move ()

(* --- the trial matrix --- *)

let sp ?addr site kind trigger = FI.spec ?addr ~site ~kind ~trigger ()

let cases () =
  [
    (* 8139too: command port is io 0xc000 + 0x37 *)
    { c_driver = "8139too"; c_fault = "none (baseline)"; c_expected = "clean";
      c_specs = []; c_spurious = None; c_setup = rtl_setup };
    { c_driver = "8139too"; c_fault = "reset stuck busy, 100 reads";
      c_expected = "recovered";
      c_specs = [ sp ~addr:0xc037 "io.port" FI.Stuck_ones (FI.Span (1, 100)) ];
      c_spurious = None; c_setup = rtl_setup };
    { c_driver = "8139too"; c_fault = "reset wedged forever";
      c_expected = "degraded";
      c_specs = [ sp ~addr:0xc037 "io.port" FI.Stuck_ones FI.Always ];
      c_spurious = None; c_setup = rtl_setup };
    { c_driver = "8139too"; c_fault = "probe upcall XPC timeout";
      c_expected = "recovered";
      c_specs = [ sp "xpc.rtl8139_probe" FI.Xpc_timeout (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = rtl_setup };
    { c_driver = "8139too"; c_fault = "spurious interrupts on line 10";
      c_expected = "tolerated";
      c_specs = [ sp "irq.spurious" FI.Spurious_irq (FI.Span (1, 3)) ];
      c_spurious = Some 10; c_setup = rtl_setup };
    { c_driver = "8139too"; c_fault = "lossy link, p=0.5 frame drop";
      c_expected = "tolerated";
      c_specs = [ sp "hw.link" FI.Link_flap (FI.Prob 0.5) ];
      c_spurious = None; c_setup = rtl_setup };
    (* e1000: EERD is mmio+0x14, MDIC is mmio+0x20 *)
    { c_driver = "e1000"; c_fault = "EERD done-bit miss x2";
      c_expected = "tolerated";
      c_specs = [ sp ~addr:0xf000_0014 "io.mmio" FI.Stuck_zero (FI.Span (1, 2)) ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "EERD done-bit miss x3";
      c_expected = "recovered";
      c_specs = [ sp ~addr:0xf000_0014 "io.mmio" FI.Stuck_zero (FI.Span (1, 3)) ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "EEPROM word bit flip";
      c_expected = "recovered";
      c_specs = [ sp "hw.eeprom" FI.Bad_read (FI.Span (10, 1)) ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "autonegotiation stalls once";
      c_expected = "recovered";
      c_specs = [ sp "hw.phy.autoneg" FI.Stuck_zero (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "autonegotiation dead";
      c_expected = "degraded";
      c_specs = [ sp "hw.phy.autoneg" FI.Stuck_zero FI.Always ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "tx ring allocation fails";
      c_expected = "recovered";
      c_specs = [ sp "dma.alloc" FI.Alloc_fail (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "rx ring allocation fails";
      c_expected = "recovered";
      c_specs = [ sp "dma.alloc" FI.Alloc_fail (FI.Span (2, 1)) ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "MDIC never ready x2";
      c_expected = "recovered";
      c_specs = [ sp ~addr:0xf000_0020 "io.mmio" FI.Stuck_zero (FI.Span (1, 2)) ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "config-space read XPC timeout";
      c_expected = "tolerated";
      c_specs = [ sp "xpc.pci_read_config" FI.Xpc_timeout (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "config-space read XPC dead x3";
      c_expected = "recovered";
      c_specs = [ sp "xpc.pci_read_config" FI.Xpc_timeout (FI.Span (1, 3)) ];
      c_spurious = None; c_setup = e1000_setup };
    { c_driver = "e1000"; c_fault = "spurious interrupts on line 11";
      c_expected = "tolerated";
      c_specs = [ sp "irq.spurious" FI.Spurious_irq (FI.Span (1, 3)) ];
      c_spurious = Some 11; c_setup = e1000_setup };
    (* ens1371 *)
    { c_driver = "ens1371"; c_fault = "snd_card_register XPC timeout";
      c_expected = "recovered";
      c_specs = [ sp "xpc.snd_card_register" FI.Xpc_timeout (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = ens_setup };
    { c_driver = "ens1371"; c_fault = "probe upcall dead";
      c_expected = "degraded";
      c_specs = [ sp "xpc.ens1371_probe" FI.Xpc_timeout FI.Always ];
      c_spurious = None; c_setup = ens_setup };
    { c_driver = "ens1371"; c_fault = "spurious interrupts on line 9";
      c_expected = "tolerated";
      c_specs = [ sp "irq.spurious" FI.Spurious_irq (FI.Span (1, 3)) ];
      c_spurious = Some 9; c_setup = ens_setup };
    (* uhci-hcd: usbcmd is io 0xe000, portsc1 is 0xe010 *)
    { c_driver = "uhci-hcd"; c_fault = "HCRESET stuck once";
      c_expected = "recovered";
      c_specs = [ sp ~addr:0xe000 "io.port" FI.Stuck_ones (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = uhci_setup };
    { c_driver = "uhci-hcd"; c_fault = "HCRESET wedged forever";
      c_expected = "degraded";
      c_specs = [ sp ~addr:0xe000 "io.port" FI.Stuck_ones FI.Always ];
      c_spurious = None; c_setup = uhci_setup };
    { c_driver = "uhci-hcd"; c_fault = "port never enables x2";
      c_expected = "recovered";
      c_specs = [ sp ~addr:0xe010 "io.port" FI.Stuck_zero (FI.Span (1, 2)) ];
      c_spurious = None; c_setup = uhci_setup };
    { c_driver = "uhci-hcd"; c_fault = "get-config-descriptor XPC timeout";
      c_expected = "tolerated";
      c_specs =
        [ sp "xpc.usb_get_config_descriptor" FI.Xpc_timeout (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = uhci_setup };
    { c_driver = "uhci-hcd"; c_fault = "register_hcd XPC dead";
      c_expected = "degraded";
      c_specs = [ sp "xpc.usb_register_hcd" FI.Xpc_timeout FI.Always ];
      c_spurious = None; c_setup = uhci_setup };
    { c_driver = "uhci-hcd"; c_fault = "spurious interrupts on line 5";
      c_expected = "tolerated";
      c_specs = [ sp "irq.spurious" FI.Spurious_irq (FI.Span (1, 3)) ];
      c_spurious = Some 5; c_setup = uhci_setup };
    (* psmouse: i8042 data port 0x60, status port 0x64 *)
    { c_driver = "psmouse"; c_fault = "ACK byte bit flip";
      c_expected = "recovered";
      c_specs = [ sp ~addr:0x60 "io.port" FI.Bad_read (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = psmouse_setup };
    { c_driver = "psmouse"; c_fault = "controller dead (status stuck 0)";
      c_expected = "degraded";
      c_specs = [ sp ~addr:0x64 "io.port" FI.Stuck_zero FI.Always ];
      c_spurious = None; c_setup = psmouse_setup };
    { c_driver = "psmouse"; c_fault = "connect upcall XPC timeout";
      c_expected = "recovered";
      c_specs = [ sp "xpc.psmouse_connect" FI.Xpc_timeout (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = psmouse_setup };
    { c_driver = "psmouse"; c_fault = "spurious interrupts on line 12";
      c_expected = "tolerated";
      c_specs = [ sp "irq.spurious" FI.Spurious_irq (FI.Span (1, 3)) ];
      c_spurious = Some 12; c_setup = psmouse_setup };
    (* hotplug and suspend/resume windows (appended: earlier trials keep
       their per-case seeds) *)
    { c_driver = "e1000"; c_fault = "surprise removal + replug";
      c_expected = "clean"; c_specs = []; c_spurious = None;
      c_setup = e1000_hotplug_setup };
    { c_driver = "e1000"; c_fault = "replug re-probe XPC timeout";
      c_expected = "recovered";
      c_specs = [ sp "xpc.e1000_probe" FI.Xpc_timeout (FI.Span (2, 1)) ];
      c_spurious = None; c_setup = e1000_hotplug_setup };
    { c_driver = "e1000"; c_fault = "suspend/resume mid-workload";
      c_expected = "clean"; c_specs = []; c_spurious = None;
      c_setup = e1000_pm_setup };
    { c_driver = "e1000"; c_fault = "suspend upcall XPC timeout";
      c_expected = "recovered";
      c_specs = [ sp "xpc.e1000_suspend" FI.Xpc_timeout (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = e1000_pm_setup };
    { c_driver = "e1000"; c_fault = "resume upcall dead";
      c_expected = "degraded";
      c_specs = [ sp "xpc.e1000_resume" FI.Xpc_timeout FI.Always ];
      c_spurious = None; c_setup = e1000_pm_setup };
    { c_driver = "ens1371"; c_fault = "suspend/resume mid-playback";
      c_expected = "clean"; c_specs = []; c_spurious = None;
      c_setup = ens_pm_setup };
    { c_driver = "uhci-hcd"; c_fault = "suspend upcall XPC timeout";
      c_expected = "recovered";
      c_specs = [ sp "xpc.uhci_suspend" FI.Xpc_timeout (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = uhci_pm_setup };
    { c_driver = "psmouse"; c_fault = "eject + reconnect";
      c_expected = "clean"; c_specs = []; c_spurious = None;
      c_setup = psmouse_hotplug_setup };
    { c_driver = "psmouse"; c_fault = "suspend upcall XPC timeout";
      c_expected = "recovered";
      c_specs = [ sp "xpc.psmouse_suspend" FI.Xpc_timeout (FI.Span (1, 1)) ];
      c_spurious = None; c_setup = psmouse_pm_setup };
  ]

let drivers_covered trials =
  List.sort_uniq compare (List.map (fun t -> t.driver) trials)

let run ?(seed = 0xdecaf) () =
  let trials =
    List.mapi (fun i c -> run_case ~seed:(seed + i) c) (cases ())
  in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 trials in
  {
    seed;
    trials;
    total_injected = sum (fun t -> t.injected);
    total_detected = sum (fun t -> t.detected);
    total_recovered = sum (fun t -> t.recovered);
    total_degraded = sum (fun t -> t.degraded);
    total_restarts = sum (fun t -> t.restarts);
    total_kernel_bugs = sum (fun t -> t.kernel_bugs);
  }

(* Acceptance check for the campaign, also used by the test suite. *)
let check r =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if r.total_kernel_bugs <> 0 then
    fail "%d fault(s) reached Panic.bug / escaped the supervisor"
      r.total_kernel_bugs
  else if r.total_injected < 100 then
    fail "only %d faults injected (want >= 100)" r.total_injected
  else if r.total_recovered + r.total_degraded <> r.total_detected then
    fail "accounting broken: recovered %d + degraded %d <> detected %d"
      r.total_recovered r.total_degraded r.total_detected
  else if r.total_recovered = 0 then fail "no fault was ever recovered"
  else if r.total_degraded = 0 then
    fail "no fault ever exhausted the restart budget"
  else if
    drivers_covered r.trials
    <> [ "8139too"; "e1000"; "ens1371"; "psmouse"; "uhci-hcd" ]
  then
    fail "campaign did not cover all five drivers: %s"
      (String.concat ", " (drivers_covered r.trials))
  else
    match
      List.find_opt (fun t -> t.outcome <> t.expected) r.trials
    with
    | Some t ->
        fail "%s / %s: expected %s, got %s" t.driver t.fault t.expected
          t.outcome
    | None -> Ok ()

let render r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Fault-injection campaign (seed 0x%x): %d trials on 5 drivers\n" r.seed
    (List.length r.trials);
  add "%-9s %-35s %5s %4s %4s %4s %4s  %-10s\n" "Driver" "Fault" "Inj" "Det"
    "Rec" "Deg" "Rst" "Outcome";
  List.iter
    (fun t ->
      add "%-9s %-35s %5d %4d %4d %4d %4d  %-10s%s\n" t.driver t.fault
        t.injected t.detected t.recovered t.degraded t.restarts t.outcome
        (if t.outcome = t.expected then "" else " (expected " ^ t.expected ^ ")"))
    r.trials;
  add "Totals: injected=%d detected=%d recovered=%d degraded=%d restarts=%d kernel-bugs=%d\n"
    r.total_injected r.total_detected r.total_recovered r.total_degraded
    r.total_restarts r.total_kernel_bugs;
  (match check r with
  | Ok () ->
      add "Acceptance: OK (>=100 faults, no kernel panics, recovered+degraded=detected)\n"
  | Error m -> add "Acceptance: FAILED — %s\n" m);
  Buffer.contents buf
