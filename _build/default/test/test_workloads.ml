(* Tests for the workload generators driving the simulated devices. *)

open Decaf_drivers
open Decaf_workloads
module K = Decaf_kernel
module Hw = Decaf_hw

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot () =
  K.Boot.boot ();
  Decaf_xpc.Domain.reset ();
  Decaf_xpc.Channel.reset_stats ();
  Decaf_runtime.Runtime.reset ()

let in_thread f =
  let result = ref None in
  ignore (K.Sched.spawn ~name:"wl" (fun () -> result := Some (f ())));
  K.Sched.run ();
  Option.get !result

let test_netperf_send_saturates_gige () =
  boot ();
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:"\x00\x1b\x21\x0a\x0b\x0c" ~link ());
  let r =
    in_thread (fun () ->
        let t = Result.get_ok (E1000_drv.insmod Driver_env.native) in
        let nd = E1000_drv.netdev t in
        ignore (K.Netcore.open_dev nd);
        let r = Netperf.send ~netdev:nd ~link ~duration_ns:500_000_000 ~msg_bytes:1500 in
        E1000_drv.rmmod t;
        r)
  in
  check_bool "near wire rate" true (r.Netperf.throughput_mbps > 900.);
  check_bool "not a spin loop" true (r.Netperf.cpu_utilization < 0.7);
  check_bool "packets counted" true (r.Netperf.packets > 20_000)

let test_netperf_recv_counts_delivered () =
  boot ();
  let link = Hw.Link.create ~rate_bps:100_000_000 () in
  ignore
    (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10
       ~mac:"\x00\x1b\x21\x0a\x0b\x0c" ~link ());
  let r =
    in_thread (fun () ->
        let t = Result.get_ok (Rtl8139_drv.insmod Driver_env.native) in
        let nd = Rtl8139_drv.netdev t in
        ignore (K.Netcore.open_dev nd);
        let r = Netperf.recv ~netdev:nd ~link ~duration_ns:500_000_000 ~msg_bytes:1500 in
        Rtl8139_drv.rmmod t;
        r)
  in
  check_bool "receives near wire rate" true (r.Netperf.throughput_mbps > 85.);
  check_bool "packets delivered" true (r.Netperf.packets > 3_000)

let test_mpg123_realtime () =
  boot ();
  let model = Ens1371_drv.setup_device ~slot:"00:06.0" ~io_base:0xd000 ~irq:9 () in
  let r =
    in_thread (fun () ->
        let t = Result.get_ok (Ens1371_drv.insmod Driver_env.native) in
        let r =
          Mpg123.play ~substream:(Ens1371_drv.substream t) ~model
            ~duration_ns:1_000_000_000
        in
        Ens1371_drv.rmmod t;
        r)
  in
  Alcotest.(check (float 0.05)) "played one second" 1.0 r.Mpg123.seconds_played;
  check_bool "at most the final partial period short" true (r.Mpg123.underruns <= 1);
  check_bool "low cpu" true (r.Mpg123.cpu_utilization < 0.05)

let test_tar_respects_usb_bandwidth () =
  boot ();
  let model = Uhci_drv.setup_device ~io_base:0xe000 ~irq:5 () in
  let r =
    in_thread (fun () ->
        let t = Result.get_ok (Uhci_drv.insmod Driver_env.native ~io_base:0xe000 ~irq:5) in
        let r = Tar_usb.untar ~model ~files:8 ~file_bytes:65_536 in
        Uhci_drv.rmmod t;
        r)
  in
  check "all bytes written" (8 * 65_536) r.Tar_usb.bytes_written;
  (* 1280 bytes per 1 ms frame = 10.24 Mb/s ceiling *)
  check_bool "within USB 1.1 ceiling" true (r.Tar_usb.effective_kbps <= 10_300.);
  check_bool "reasonably close to ceiling" true (r.Tar_usb.effective_kbps > 8_000.)

let test_mouse_move_event_stream () =
  boot ();
  let model = Psmouse_drv.setup_device () in
  let r =
    in_thread (fun () ->
        let t = Result.get_ok (Psmouse_drv.insmod Driver_env.native) in
        let r =
          Mouse_move.run ~model ~input:(Psmouse_drv.input_dev t)
            ~duration_ns:3_000_000_000
        in
        Psmouse_drv.rmmod t;
        r)
  in
  (* one report every 10 ms for 3 s *)
  check_bool "about 300 packets" true (r.Mouse_move.packets >= 290 && r.Mouse_move.packets <= 310);
  check_bool "each packet yields >= 2 input events" true
    (r.Mouse_move.events_delivered >= 2 * r.Mouse_move.packets);
  check_bool "negligible cpu" true (r.Mouse_move.cpu_utilization < 0.02)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decaf_workloads"
    [
      ( "netperf",
        [
          tc "send saturates gige" test_netperf_send_saturates_gige;
          tc "recv counts delivered" test_netperf_recv_counts_delivered;
        ] );
      ("mpg123", [ tc "realtime playback" test_mpg123_realtime ]);
      ("tar", [ tc "usb bandwidth ceiling" test_tar_respects_usb_bandwidth ]);
      ("mouse", [ tc "event stream" test_mouse_move_event_stream ]);
    ]
