module Ast = Decaf_minic.Ast
module Pp = Decaf_minic.Pp

type access = Read | Write | Read_write

type field_annot = {
  fa_struct : string;
  fa_field : string;
  fa_kind : string;
  fa_arg : string option;
}

type var_annot = {
  va_function : string;
  va_access : access;
  va_path : string;
  va_field : string;
}

type t = { fields : field_annot list; vars : var_annot list }

let access_of_macro = function
  | "DECAF_RVAR" -> Some Read
  | "DECAF_WVAR" -> Some Write
  | "DECAF_RWVAR" -> Some Read_write
  | _ -> None

let rec last_field = function
  | Ast.Earrow (_, f) | Ast.Efield (_, f) -> f
  | Ast.Eident x -> x
  | Ast.Eindex (e, _) | Ast.Eunop (_, e) | Ast.Ecast (_, e) -> last_field e
  | _ -> ""

let collect_field_annots (file : Ast.file) =
  List.concat_map
    (fun (s : Ast.struct_def) ->
      List.concat_map
        (fun (f : Ast.field) ->
          List.map
            (fun (a : Ast.attr) ->
              {
                fa_struct = s.Ast.sname;
                fa_field = f.Ast.fname;
                fa_kind = a.Ast.attr_name;
                fa_arg = a.Ast.attr_arg;
              })
            f.Ast.fattrs)
        s.Ast.sfields)
    (Ast.structs file)

let collect_var_annots (file : Ast.file) =
  let in_function (fn : Ast.func) =
    Ast.fold_exprs_func
      (fun acc e ->
        match e with
        | Ast.Ecall (Ast.Eident macro, [ arg ]) -> (
            match access_of_macro macro with
            | Some va_access ->
                {
                  va_function = fn.Ast.fname;
                  va_access;
                  va_path = Pp.expr_to_string arg;
                  va_field = last_field arg;
                }
                :: acc
            | None -> acc)
        | _ -> acc)
      [] fn
    |> List.rev
  in
  List.concat_map in_function (Ast.functions file)

let collect file =
  { fields = collect_field_annots file; vars = collect_var_annots file }

let count_lines t = List.length t.fields + List.length t.vars

let plan_access = function
  | Read -> Decaf_xpc.Marshal_plan.Read
  | Write -> Decaf_xpc.Marshal_plan.Write
  | Read_write -> Decaf_xpc.Marshal_plan.Read_write
