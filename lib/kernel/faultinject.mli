(** Seeded, deterministic fault injection.

    A fault plan is a list of {!spec}s armed with a PRNG seed. Injection
    hooks throughout the simulated machine ({!Io} register reads, DMA and
    slab allocation, the hardware models' EEPROM/PHY/link paths, XPC
    crossings) consult the plan on every access; a spec that matches the
    access's site (and, optionally, address) evaluates its trigger and,
    when it fires, perturbs the access. Every fired injection is counted
    and logged, so a campaign can assert exactly how much damage was done
    and that all of it was survived.

    The same seed and plan always yield the same injections: [Span]
    triggers count matches per spec, and [Prob] draws from the plan's own
    PRNG, never the global one. *)

type kind =
  | Bad_read  (** flip one (seeded) low bit of the value read *)
  | Stuck_ones  (** the read returns all-ones for its width *)
  | Stuck_zero  (** the read returns zero: ready bits never set *)
  | Alloc_fail  (** the allocation returns [None] *)
  | Xpc_timeout  (** the XPC misses its deadline and fails *)
  | Spurious_irq  (** an interrupt nobody asked for *)
  | Link_flap  (** the wire eats a frame in flight *)

type trigger =
  | Always
  | Span of int * int
      (** [Span (first, count)]: fire on the [first]-th through
          [first+count-1]-th matching accesses (1-based). *)
  | Prob of float  (** fire on each match with this probability *)

type spec = { site : string; addr : int option; kind : kind; trigger : trigger }

type injection = {
  inj_site : string;
  inj_addr : int option;
  inj_kind : kind;
  inj_seq : int;
}

val spec : ?addr:int -> site:string -> kind:kind -> trigger:trigger -> unit -> spec

val arm : seed:int -> spec list -> unit
(** Install a fault plan, zeroing the injection counters and seeding the
    plan's PRNG. *)

val disarm : unit -> unit
(** Stop injecting; counters and log are kept for harvesting. *)

val active : unit -> bool

val fires : site:string -> ?addr:int -> kind -> bool
(** Consult the plan for a non-read hook (allocation, XPC, handshake).
    Advances every matching spec's counter; true when any fired, in which
    case the injection has been recorded. *)

val filter_read : site:string -> addr:int -> int -> int
(** Pass a register/word read through the plan, applying any firing
    [Stuck_ones]/[Stuck_zero]/[Bad_read] spec to the value. *)

val record_external : site:string -> ?addr:int -> kind -> unit
(** Count an injection performed outside the hooks (e.g. a spurious IRQ
    raised directly by a campaign). *)

val injected_count : unit -> int
val injections : unit -> injection list
val kind_name : kind -> string

val reset : unit -> unit
(** Disarm and zero all counters (called on boot). *)
