(* decaf-check: stateless exploration of scheduling nondeterminism.

   Every execution reboots the simulated machine, runs an episode's
   setup and drives {!Decaf_kernel.Sched} through the controller hook: a
   forced decision prefix replays the path to an unexplored branch, the
   default continuation (first enabled, non-sleeping choice) finishes
   the schedule deterministically. From each completed schedule the
   explorer derives a happens-before relation (vector clocks joined
   across dependent steps, dependence taken from the {!Ktrace} access
   sets each step produced) and applies dynamic partial-order reduction:
   for every pair of concurrent dependent steps it schedules the
   reversal at the earlier step's decision node. Sleep sets carry the
   already-explored siblings down each branch and abort provably
   redundant schedules.

   A violation is reported with the full schedule that exposed it, then
   minimized: the shortest forced prefix whose default continuation
   still reproduces the same violation kind — that prefix is the
   checked-in, replayable counterexample. *)

module K = Decaf_kernel
module Xpc = Decaf_xpc

type episode = {
  ep_name : string;
  ep_descr : string;
  ep_depth : int;  (** branching-depth bound for a full exploration *)
  ep_smoke_depth : int;  (** bound for the runtest smoke alias *)
  ep_max_execs : int;  (** hard cap on schedules per exploration *)
  ep_setup : unit -> unit;
      (** register drivers, spawn the episode's threads; runs after the
          world reboot, before the scheduler starts *)
  ep_check : unit -> Invariants.violation list;
      (** episode-specific invariants, evaluated at quiescence *)
}

type stats = {
  mutable executions : int;  (** completed schedules *)
  mutable pruned : int;  (** sleep-set-blocked / aborted schedules *)
  mutable steps : int;  (** scheduling decisions across all schedules *)
  mutable max_branching : int;  (** deepest branching depth observed *)
  mutable capped : bool;  (** true if the exec cap cut exploration short *)
}

type counterexample = {
  cx_violation : Invariants.violation;
  cx_trace : string;  (** minimized forced prefix (replayable) *)
  cx_full_trace : string;  (** the complete schedule that found it *)
}

type report = {
  r_episode : string;
  r_stats : stats;
  r_counterexamples : counterexample list;
  r_lock_edges : (string * string) list;
      (** dynamic lock-acquisition order accumulated over the episode *)
}

(* --- the per-execution world ------------------------------------------- *)

let boot_world () =
  K.Boot.boot ();
  Xpc.Domain.reset ();
  Xpc.Channel.reset_stats ();
  Xpc.Channel.reset_config ();
  Xpc.Batch.reset ();
  Xpc.Ring.reset ();
  Xpc.Dispatch.reset ();
  Xpc.Marshal_plan.set_delta_enabled false;
  Xpc.Guard.reset ();
  Decaf_runtime.Runtime.reset ();
  Decaf_drivers.Driver_core.reset ()

(* --- one execution ----------------------------------------------------- *)

type node_obs = {
  no_prefix : Trace.key list;  (* decisions strictly before this node *)
  no_enabled : Trace.key array;
  no_chosen : Trace.key;
  no_branching : int;  (* branching depth when this node was reached *)
  no_sleep_in : (Trace.key * Trace.acc list) list;
  mutable no_acc : Trace.acc list;  (* accesses of the step taken here *)
}

type exec = {
  x_trace : Trace.key list;
  x_nodes : node_obs array;
  x_violations : Invariants.violation list;
  x_pruned : bool;
  x_diverged : Trace.key option;
}

let classify_exn = function
  | Decaf_drivers.Driver_core.Illegal_transition _ as e ->
      Invariants.vf "illegal-transition" "%s" (Printexc.to_string e)
  | K.Sched.Would_block_in_atomic what ->
      Invariants.vf "blocked-in-atomic" "%s" what
  | K.Panic.Kernel_bug msg -> Invariants.vf "panic" "%s" msg
  | e -> Invariants.vf "exception" "%s" (Printexc.to_string e)

let run_one episode ~graph ~prefix ~sleep0 =
  boot_world ();
  let monitor = Invariants.monitor graph in
  let nodes = ref [] in
  let cur : node_obs option ref = ref None in
  let acc = ref [] in
  let sleep = ref sleep0 in
  let close_step () =
    let l = List.sort_uniq compare !acc in
    acc := [];
    match !cur with
    | Some n ->
        n.no_acc <- l;
        (* the step just executed wakes every sleeper it conflicts with *)
        sleep :=
          List.filter (fun (_, sa) -> not (Trace.dependent_sets sa l)) !sleep;
        cur := None
    | None -> ()
  in
  let forced = ref prefix in
  let taken = ref [] in
  let branching = ref 0 in
  let pruned = ref false in
  let diverged = ref None in
  K.Ktrace.set_hook (fun o a ->
      acc := (Trace.norm_obj o, a) :: !acc;
      Invariants.on_event monitor o a);
  let controller choices =
    close_step ();
    let keys = Trace.keys_of_choices choices in
    let n = Array.length keys in
    let index_of k =
      let rec go i = if i >= n then None else if keys.(i) = k then Some i else go (i + 1) in
      go 0
    in
    let pick =
      match !forced with
      | k :: rest -> (
          match index_of k with
          | Some i ->
              forced := rest;
              Some i
          | None ->
              diverged := Some k;
              None)
      | [] ->
          let rec first i =
            if i >= n then None
            else if List.mem_assoc keys.(i) !sleep then first (i + 1)
            else Some i
          in
          if first 0 = None && n > 0 then pruned := true;
          first 0
    in
    match pick with
    | None -> -1
    | Some i ->
        let k = keys.(i) in
        if List.mem_assoc k !sleep then begin
          (* a forced branch that is asleep here is provably redundant *)
          pruned := true;
          -1
        end
        else begin
          let node =
            {
              no_prefix = List.rev !taken;
              no_enabled = keys;
              no_chosen = k;
              no_branching = !branching;
              no_sleep_in = !sleep;
              no_acc = [];
            }
          in
          nodes := node :: !nodes;
          cur := Some node;
          taken := k :: !taken;
          if n >= 2 then incr branching;
          i
        end
  in
  K.Sched.set_controller controller;
  let outcome =
    try
      episode.ep_setup ();
      K.Sched.run ();
      None
    with e -> Some e
  in
  close_step ();
  K.Sched.clear_controller ();
  K.Ktrace.clear_hook ();
  let aborted = !pruned || !diverged <> None in
  let violations =
    if aborted then []
    else
      let races = Invariants.race_violations monitor in
      match outcome with
      | Some e -> races @ [ classify_exn e ]
      | None ->
          races
          @ Invariants.leak_violations ()
          @ Invariants.supervisor_violations ()
          @ episode.ep_check ()
  in
  {
    x_trace = List.rev !taken;
    x_nodes = Array.of_list (List.rev !nodes);
    x_violations = violations;
    x_pruned = !pruned;
    x_diverged = !diverged;
  }

(* --- dynamic partial-order reduction ----------------------------------- *)

type node_state = {
  mutable ns_done : Trace.key list;  (* explored or scheduled branches *)
  mutable ns_first : (Trace.key * Trace.acc list) list;
      (* first-step access set of each executed branch, for sleep sets *)
  ns_sleep_in : (Trace.key * Trace.acc list) list;
}

let node_state table (n : node_obs) =
  let key = Trace.to_string n.no_prefix in
  match Hashtbl.find_opt table key with
  | Some ns -> ns
  | None ->
      let ns = { ns_done = []; ns_first = []; ns_sleep_in = n.no_sleep_in } in
      Hashtbl.replace table key ns;
      ns

let record_nodes table (x : exec) =
  Array.iter
    (fun n ->
      let ns = node_state table n in
      if not (List.mem n.no_chosen ns.ns_done) then
        ns.ns_done <- n.no_chosen :: ns.ns_done;
      if not (List.mem_assoc n.no_chosen ns.ns_first) then
        ns.ns_first <- (n.no_chosen, n.no_acc) :: ns.ns_first)
    x.x_nodes

(* Happens-before from this execution: program order within a thread
   plus an edge between every pair of dependent steps. Steps of the
   clock pseudo-thread ("clock") are program-ordered like any other. *)
let dpor_schedule table work ~depth (x : exec) =
  let nodes = x.x_nodes in
  let n = Array.length nodes in
  if n = 0 then ()
  else begin
    let tname i = Trace.base_of_key nodes.(i).no_chosen in
    let tidx = Hashtbl.create 8 in
    let nth = ref 0 in
    for i = 0 to n - 1 do
      let t = tname i in
      if not (Hashtbl.mem tidx t) then begin
        Hashtbl.replace tidx t !nth;
        incr nth
      end
    done;
    let nt = !nth in
    let vc_of = Hashtbl.create 8 in
    let vc t =
      match Hashtbl.find_opt vc_of t with
      | Some v -> v
      | None -> Array.make nt 0
    in
    let step_vc = Array.make n [||] in
    let pre_vc = Array.make n [||] in
    for i = 0 to n - 1 do
      let t = tname i in
      let ti = Hashtbl.find tidx t in
      let cur = Array.copy (vc t) in
      pre_vc.(i) <- Array.copy cur;
      for j = 0 to i - 1 do
        if Trace.dependent_sets nodes.(j).no_acc nodes.(i).no_acc then
          Array.iteri (fun k v -> if v > cur.(k) then cur.(k) <- v) step_vc.(j)
      done;
      cur.(ti) <- cur.(ti) + 1;
      step_vc.(i) <- cur;
      Hashtbl.replace vc_of t cur
    done;
    (* Backtrack: for each concurrent dependent pair (j, i), try running
       step i's thread at step j's decision node. *)
    let scheduled = ref [] in
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        let tj = tname j and ti_name = tname i in
        if
          tj <> ti_name
          && Trace.dependent_sets nodes.(j).no_acc nodes.(i).no_acc
          && step_vc.(j).(Hashtbl.find tidx tj)
             > pre_vc.(i).(Hashtbl.find tidx tj)
        then begin
          let node = nodes.(j) in
          if node.no_branching < depth then begin
            let ns = node_state table node in
            let enabled = Array.to_list node.no_enabled in
            let cands =
              List.filter (fun k -> Trace.base_of_key k = ti_name) enabled
            in
            (* classical fallback: if the racing thread was not enabled
               at that node, every enabled branch must be tried *)
            let cands = if cands = [] then enabled else cands in
            List.iter
              (fun k ->
                if k <> node.no_chosen && not (List.mem k ns.ns_done) then begin
                  ns.ns_done <- k :: ns.ns_done;
                  let sleep0 =
                    List.filter (fun (a, _) -> a <> k) ns.ns_first
                    @ List.filter
                        (fun (a, _) ->
                          a <> k && not (List.mem_assoc a ns.ns_first))
                        ns.ns_sleep_in
                  in
                  scheduled := (node.no_prefix @ [ k ], sleep0) :: !scheduled
                end)
              cands
          end
        end
      done
    done;
    work := !scheduled @ !work
  end

(* --- exploration, minimization, replay --------------------------------- *)

let violations_with_cycle graph (x : exec) =
  x.x_violations
  @ match Invariants.cycle_violation graph with Some v -> [ v ] | None -> []

(* Shortest forced prefix of [trace] whose default continuation still
   reproduces a violation of [kind]. *)
let minimize episode ~kind trace =
  let arr = Array.of_list trace in
  let len = Array.length arr in
  let reproduces n =
    let graph = Invariants.new_graph () in
    let x =
      run_one episode ~graph
        ~prefix:(Array.to_list (Array.sub arr 0 n))
        ~sleep0:[]
    in
    List.exists (fun v -> v.Invariants.v_kind = kind)
      (violations_with_cycle graph x)
  in
  let rec go n = if n > len then trace else if reproduces n then Array.to_list (Array.sub arr 0 n) else go (n + 1) in
  go 0

let replay episode trace_s =
  let graph = Invariants.new_graph () in
  let x = run_one episode ~graph ~prefix:(Trace.of_string trace_s) ~sleep0:[] in
  violations_with_cycle graph x

let explore ?depth ?max_execs ?(minimize_cx = true) episode =
  let depth = Option.value depth ~default:episode.ep_depth in
  let max_execs = Option.value max_execs ~default:episode.ep_max_execs in
  let graph = Invariants.new_graph () in
  let table : (string, node_state) Hashtbl.t = Hashtbl.create 256 in
  let stats =
    { executions = 0; pruned = 0; steps = 0; max_branching = 0; capped = false }
  in
  let found : (string, Invariants.violation * Trace.key list) Hashtbl.t =
    Hashtbl.create 4
  in
  let work = ref [ ([], []) ] in
  while !work <> [] && stats.executions + stats.pruned < max_execs do
    match !work with
    | [] -> ()
    | (prefix, sleep0) :: rest ->
        work := rest;
        let x = run_one episode ~graph ~prefix ~sleep0 in
        if x.x_pruned || x.x_diverged <> None then
          stats.pruned <- stats.pruned + 1
        else begin
          stats.executions <- stats.executions + 1;
          stats.steps <- stats.steps + Array.length x.x_nodes;
          let b =
            Array.fold_left
              (fun acc n -> if Array.length n.no_enabled >= 2 then acc + 1 else acc)
              0 x.x_nodes
          in
          if b > stats.max_branching then stats.max_branching <- b;
          List.iter
            (fun (v : Invariants.violation) ->
              if not (Hashtbl.mem found v.v_kind) then
                Hashtbl.replace found v.v_kind (v, x.x_trace))
            (violations_with_cycle graph x);
          record_nodes table x;
          dpor_schedule table work ~depth x
        end
  done;
  if !work <> [] then stats.capped <- true;
  let cxs =
    Hashtbl.fold
      (fun kind (v, tr) acc ->
        let m = if minimize_cx then minimize episode ~kind tr else tr in
        {
          cx_violation = v;
          cx_trace = Trace.to_string m;
          cx_full_trace = Trace.to_string tr;
        }
        :: acc)
      found []
    |> List.sort (fun a b ->
           compare a.cx_violation.Invariants.v_kind
             b.cx_violation.Invariants.v_kind)
  in
  {
    r_episode = episode.ep_name;
    r_stats = stats;
    r_counterexamples = cxs;
    r_lock_edges = Invariants.edges graph;
  }
