lib/xpc/addr.ml:
