(** Whole-machine lifecycle for tests and experiments. *)

val boot : unit -> unit
(** Reset every kernel subsystem to its power-on state: clock, scheduler,
    interrupt controller, I/O maps, PCI bus, memory accounting, device
    registries, kernel log, and cost table. *)

val epoch : unit -> int
(** Boot generation: incremented by every {!boot}, never reset. Resources
    tied to the machine's lifetime (worker threads, timers) record the
    epoch at creation and must be recreated when it no longer matches —
    a stale worker belongs to a scheduler that no longer exists. *)

val check_quiescent : unit -> (unit, string) result
(** After a run: verify no threads are runnable, no memory is leaked, and
    no events remain pending. Used by integration tests to prove clean
    driver shutdown. *)
