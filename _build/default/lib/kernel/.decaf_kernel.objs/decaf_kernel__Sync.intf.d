lib/kernel/sync.mli:
