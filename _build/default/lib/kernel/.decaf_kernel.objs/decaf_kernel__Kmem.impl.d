lib/kernel/kmem.ml: Faultinject Hashtbl List Sched
