lib/xpc/objtracker.mli: Univ
