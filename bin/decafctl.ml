(* decafctl: drive the five drivers through the unified driver model.

   The default command loads one (or all) of them in native and decaf
   mode and prints the Table 3 measurements; `decafctl status` brings
   every driver up through the registry and prints its per-driver
   lifecycle/XPC snapshot. *)

open Cmdliner
module E = Decaf_experiments

(* --driver is validated against the registry before any measurement
   runs; Table 3 prints "E1000" but the registry name is lowercase. *)
let resolve_driver = function
  | None -> Ok None
  | Some d ->
      let canon = String.lowercase_ascii d in
      if List.mem canon E.Status.driver_names then Ok (Some canon)
      else
        Error
          (Printf.sprintf "unknown driver %s (known: %s)" d
             (String.concat ", " E.Status.driver_names))

let run driver seconds =
  match resolve_driver driver with
  | Error msg ->
      Printf.eprintf "decafctl: %s\n" msg;
      exit 1
  | Ok driver ->
      let duration_ns = int_of_float (seconds *. 1e9) in
      let rows = E.Table3.measure ~duration_ns () in
      let rows =
        match driver with
        | None -> rows
        | Some d ->
            List.filter
              (fun r -> String.lowercase_ascii r.E.Table3.driver = d)
              rows
      in
      print_string (E.Table3.render rows);
      exit 0

let status driver json latency =
  match resolve_driver driver with
  | Error msg ->
      Printf.eprintf "decafctl: %s\n" msg;
      exit 1
  | Ok driver ->
      let snaps = E.Status.measure () in
      let snaps =
        match driver with
        | None -> snaps
        | Some d ->
            List.filter
              (fun s -> s.Decaf_drivers.Driver_core.s_driver = d)
              snaps
      in
      print_string
        (if json then E.Status.render_json snaps else E.Status.render snaps);
      if latency then begin
        print_newline ();
        print_string (E.Status.render_latency ())
      end;
      exit 0

let driver_arg =
  let doc =
    "Restrict to one driver (8139too, e1000, ens1371, uhci-hcd, psmouse)."
  in
  Arg.(value & opt (some string) None & info [ "driver" ] ~docv:"DRIVER" ~doc)

let seconds_arg =
  let doc = "Virtual seconds of steady-state workload per cell." in
  Arg.(value & opt float 2.0 & info [ "seconds" ] ~docv:"SECONDS" ~doc)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a driver workload in native and decaf modes and compare")
    Term.(const run $ driver_arg $ seconds_arg)

let json_arg =
  let doc =
    "Emit one JSON object per driver (machine-readable snapshot, including \
     boundary-rejection counters) instead of the table."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let latency_arg =
  let doc =
    "Also print the per-path latency percentiles (p50/p99/p999/max) from \
     the event-accounting registry, as observed over the status workload \
     slice."
  in
  Arg.(value & flag & info [ "latency" ] ~doc)

let status_cmd =
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Load every driver through the registry and print its lifecycle, \
          crossing and supervisor snapshot")
    Term.(const status $ driver_arg $ json_arg $ latency_arg)

(* ---- soak: the mixed-traffic latency soak ---- *)

let soak json check duration_ms fleet =
  match check with
  | Some path ->
      (* gate mode: re-measure at the committed file's scale and compare *)
      exit (if E.Soak.check ~path () then 0 else 1)
  | None ->
      let duration_ns = duration_ms * 1_000_000 in
      let s = E.Soak.measure ~duration_ns ~fleet () in
      print_string (if json then E.Soak.to_json s else E.Soak.render s);
      (* the scale may differ from the committed trajectory, so only the
         absolute gates apply: period deadlines and quiescence leaks *)
      let breached =
        s.E.Soak.steady_misses > 0
        || s.E.Soak.leaked_entries > 0
        || s.E.Soak.leaked_bytes <> 0
      in
      if breached then
        Printf.eprintf
          "decafctl soak: gate breach (steady misses %d, leaked entries %d, \
           leaked bytes %d)\n"
          s.E.Soak.steady_misses s.E.Soak.leaked_entries s.E.Soak.leaked_bytes;
      exit (if breached then 1 else 0)

let soak_json_arg =
  let doc =
    "Emit the line-JSON trajectory (header plus one object per phase/path \
     row) instead of the table."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let soak_check_arg =
  let doc =
    "Gate mode: re-measure at the committed trajectory's scale and fail on \
     a p99 regression, an audio deadline miss in the fault-free phase, or \
     a leak at quiescence (DECAF_SOAK_WAIVE=1 skips only the p99 \
     comparison)."
  in
  Arg.(value & opt (some string) None & info [ "check" ] ~docv:"PATH" ~doc)

let duration_ms_arg =
  let doc = "Virtual milliseconds per phase." in
  Arg.(
    value
    & opt int (E.Soak.default_duration_ns / 1_000_000)
    & info [ "duration-ms" ] ~docv:"MS" ~doc)

let fleet_arg =
  let doc = "Concurrent e1000 instances on the virtual switch." in
  Arg.(value & opt int E.Soak.default_fleet & info [ "fleet" ] ~docv:"N" ~doc)

let soak_cmd =
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run the two-phase mixed-traffic soak (all five drivers, fault-free \
          then churn) and print per-path latency percentiles; exits nonzero \
          on an audio deadline miss in the fault-free phase or a leak at \
          quiescence")
    Term.(const soak $ soak_json_arg $ soak_check_arg $ duration_ms_arg $ fleet_arg)

(* ---- explore: the decaf-check exploration harness ---- *)

let explore episode depth smoke json lock_order lock_diff =
  let results =
    try E.Exploration.run ?episode ?depth ~smoke ()
    with Invalid_argument msg ->
      Printf.eprintf "decafctl: %s\n" msg;
      exit 1
  in
  if json then print_string (E.Exploration.render_json results)
  else begin
    print_string (E.Exploration.render results);
    if lock_order then begin
      print_newline ();
      print_string (E.Exploration.render_lock_order results)
    end;
    if lock_diff then begin
      print_newline ();
      print_string (E.Exploration.render_lock_diff results)
    end
  end;
  let cxs =
    List.exists
      (fun r -> r.E.Exploration.x_report.Decaf_check.Explore.r_counterexamples <> [])
      results
  in
  let conflicts = lock_diff && E.Exploration.has_conflicts results in
  exit (if cxs || conflicts then 1 else 0)

let episode_arg =
  let doc =
    Printf.sprintf "Explore a single episode (known: %s); the whole catalog \
                    when omitted."
      (String.concat ", " E.Exploration.episode_names)
  in
  Arg.(value & opt (some string) None & info [ "episode" ] ~docv:"EPISODE" ~doc)

let depth_arg =
  let doc = "Override the branching-depth bound for every episode." in
  Arg.(value & opt (some int) None & info [ "depth" ] ~docv:"DEPTH" ~doc)

let smoke_arg =
  let doc = "Use each episode's reduced smoke depth (fast CI run)." in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let explore_json_arg =
  let doc =
    "Emit one JSON object per episode (stats, counterexamples, dynamic \
     lock-order edges) instead of the table."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let lock_order_arg =
  let doc = "Also print the dynamic lock-acquisition-order edges." in
  Arg.(value & flag & info [ "lock-order" ] ~doc)

let lock_diff_arg =
  let doc =
    "Also cross-check the dynamic lock order against decaf-lint's static \
     acquisition-order edges; AB/BA conflicts fail the run."
  in
  Arg.(value & flag & info [ "lock-diff" ] ~doc)

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively explore the episode catalog's scheduling \
          nondeterminism (DPOR) and report invariant violations with \
          replayable counterexample traces")
    Term.(
      const explore $ episode_arg $ depth_arg $ smoke_arg $ explore_json_arg
      $ lock_order_arg $ lock_diff_arg)

let cmd =
  Cmd.group
    ~default:Term.(const run $ driver_arg $ seconds_arg)
    (Cmd.info "decafctl"
       ~doc:"Drive the decaf drivers through the unified driver model")
    [ run_cmd; status_cmd; explore_cmd; soak_cmd ]

let () = exit (Cmd.eval cmd)
