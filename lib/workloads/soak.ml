(* The mixed-traffic soak: every driver at once, for a long virtual
   stretch, with the latency registry as the figure of merit.

   An e1000 fleet streams bursty, heavy-tailed flows through the
   virtual switch while the 8139too pushes netperf bursts, the ens1371
   plays audio continuously, the UHCI untars onto the flash drive and
   the mouse storms events — all in one booted machine, so the XPC
   lanes, batch queues and rings carry genuinely mixed traffic.

   Two phases run back to back over the same devices:

   - "steady": fault-free. The gate phase — audio must not miss a
     single period deadline here.
   - "churn": the same traffic under background fault plans (link
     flaps, spurious interrupts), hotplug storms on the fleet ports and
     the mouse, and suspend/resume cycles on the e1000 and the HCD.

   Each phase ends with a percentile snapshot of every event path the
   cost model tracks ({!Decaf_kernel.Latency}), and the whole run ends
   at quiescence: every binding unloaded, batch queues drained, and the
   object trackers and kmalloc ledger compared against the post-boot
   baseline — a soak that leaks is a failed soak.

   The caller boots the machine and applies an XPC configuration first
   (see {!Decaf_experiments.Soak} for the measured entry point); [run]
   must not be called from inside a scheduler thread. *)

module K = Decaf_kernel
module Hw = Decaf_hw
module Xpc = Decaf_xpc
module FI = K.Faultinject
open Decaf_drivers

type path_stats = {
  path : string;
  samples : int;
  overflow : int;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

type phase = {
  phase_name : string;
  phase_ns : int;
  paths : path_stats list;
  audio_periods : int;
  audio_misses : int;
  packets : int;
  input_events : int;
  usb_bytes : int;
}

type result = {
  steady : phase;
  churn : phase;
  leaked_tracker_entries : int;
  leaked_kmalloc_blocks : int;
  leaked_kmalloc_bytes : int;
}

let default_phase_ns = 2_000_000_000
let mac = "\x00\x1b\x21\x0a\x0b\x0c"
let fleet_slot i = Printf.sprintf "%02x:00.0" i

let fleet_mac i =
  Printf.sprintf "\x02\x00\x00\x00%c%c"
    (Char.chr ((i lsr 8) land 0xff))
    (Char.chr (i land 0xff))

let fleet_mmio i = 0xe000_0000 + (i * 0x20000)
let fleet_irq i = 32 + i

let tracker_entries () =
  Xpc.Objtracker.count (Decaf_runtime.Runtime.kernel_tracker ())
  + Xpc.Objtracker.count (Decaf_runtime.Runtime.java_tracker ())

(* xorshift64*: deterministic per seed, so a soak schedule is
   reproducible from its (seed, fleet, phase_ns) triple alone. *)
let make_rng seed =
  let s = ref (if seed = 0 then 0x2545F4914F6CDD1D else seed) in
  fun () ->
    let x = !s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s := x;
    x land max_int

(* Heavy-tailed on/off gating: burst lengths follow a truncated
   Pareto-ish law (u^-1 scaled into [lo, hi]), idle gaps a shorter
   uniform draw — a few long bursts dominate, as packet traces do. *)
let burst_ns rng =
  let u = 1 + (rng () mod 1000) in
  let b = 2_000_000 * 1000 / u in
  min 50_000_000 (max 2_000_000 b)

let gap_ns rng = 500_000 + (rng () mod 2_000_000)

let ok_or what = function
  | Ok () -> ()
  | Error rc -> K.Panic.bug "soak: %s: %d" what rc

let in_thread f =
  let result = ref None in
  ignore (K.Sched.spawn ~name:"soak" (fun () -> result := Some (f ())));
  K.Sched.run ();
  match !result with
  | Some v -> v
  | None -> K.Panic.bug "soak: workload thread did not complete"

let snapshot_paths () =
  List.filter_map
    (fun p ->
      match K.Latency.find p with
      | Some h when K.Latency.count h > 0 ->
          Some
            {
              path = p;
              samples = K.Latency.count h;
              overflow = K.Latency.overflow_count h;
              p50_ns = K.Latency.percentile h 0.50;
              p99_ns = K.Latency.percentile h 0.99;
              p999_ns = K.Latency.percentile h 0.999;
              max_ns = K.Latency.max_ns h;
            }
      | _ -> None)
    (K.Latency.paths ())

let run ?(fleet = 3) ?(seed = 0x50a11) ?(phase_ns = default_phase_ns) () =
  let base_tracker = tracker_entries () in
  let base_blocks, base_bytes = K.Kmem.outstanding () in
  (* --- devices: the fleet on bus 01.., the classic four on bus 00 --- *)
  let fleet = max 2 fleet in
  let links =
    List.init fleet (fun i ->
        let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
        ignore
          (E1000_drv.setup_device ~slot:(fleet_slot i)
             ~mmio_base:(fleet_mmio i) ~irq:(fleet_irq i) ~mac:(fleet_mac i)
             ~link ());
        link)
  in
  let link100 = Hw.Link.create ~rate_bps:100_000_000 () in
  ignore
    (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10 ~mac
       ~link:link100 ());
  let ens_model =
    Ens1371_drv.setup_device ~slot:"00:06.0" ~io_base:0xd000 ~irq:9 ()
  in
  let uhci_model = Uhci_drv.setup_device ~io_base:0xe000 ~irq:5 () in
  let ps_model = Psmouse_drv.setup_device () in
  in_thread (fun () ->
      ignore
        (List.init fleet (fun i ->
             match
               Driver_core.bind_device "e1000" ~dev:(fleet_slot i)
                 ~mode:Driver_env.Decaf ()
             with
             | Ok id -> id
             | Error rc -> K.Panic.bug "soak: fleet bind %d: %d" i rc));
      List.iter
        (fun name ->
          ok_or (name ^ " insmod") (Driver_core.insmod name ~mode:Driver_env.Decaf))
        [ "8139too"; "ens1371"; "uhci-hcd"; "psmouse" ];
      let rtl = Option.get (Rtl8139_drv.active ()) in
      ok_or "8139too open" (K.Netcore.open_dev (Rtl8139_drv.netdev rtl));

      (* One phase: five concurrent traffic threads over the shared
         machine. Churn actions run inside the thread that owns the
         affected device, between its own bursts, so a suspend never
         races that device's traffic (the other four keep running). *)
      let run_phase ~churn name =
        let rng = make_rng (seed lxor (if churn then 0x5afe else 0)) in
        let t0 = K.Clock.now () in
        let deadline = t0 + phase_ns in
        let periods0 = Hw.Ens1371_hw.periods_played ens_model in
        let underruns0 = Hw.Ens1371_hw.underruns ens_model in
        let packets = ref 0 and input_events = ref 0 and usb_bytes = ref 0 in
        if churn then
          FI.arm ~seed
            [
              FI.spec ~site:"hw.link" ~kind:FI.Link_flap
                ~trigger:(FI.Prob 0.01) ();
              FI.spec ~site:"irq.spurious" ~kind:FI.Spurious_irq
                ~trigger:(FI.Prob 0.5) ();
            ];
        (if churn then
           (* background spurious-interrupt plan: random pokes at the
              8139too and fleet lines, gated through the fault engine *)
           let rec poke () =
             if K.Clock.now () < deadline then begin
               let lines = 10 :: List.init fleet fleet_irq in
               let irq = List.nth lines (rng () mod List.length lines) in
               if FI.fires ~site:"irq.spurious" FI.Spurious_irq then
                 K.Irq.raise_irq irq;
               ignore (K.Clock.after (1_000_000 + (rng () mod 9_000_000)) poke)
             end
           in
           ignore (K.Clock.after 1_000_000 poke));
        let done_count = ref 0 in
        let want = ref 0 in
        (* DECAF_SOAK_THREADS=soak-fleet,soak-audio,... restricts the
           run to a subset of the traffic threads — a bisection knob for
           debugging a soak regression, not a measurement mode *)
        let spawn name f =
          match Sys.getenv_opt "DECAF_SOAK_THREADS" with
          | Some allow
            when not
                   (List.mem name (String.split_on_char ',' allow)) ->
              ()
          | _ ->
              incr want;
              ignore
                (K.Sched.spawn ~name (fun () ->
                     f ();
                     incr done_count))
        in
        (* fleet: bursty heavy-tailed vswitch flows; in churn, hotplug
           storms on ports >= 1 and suspend/resume on instance 0 ride
           between bursts *)
        spawn "soak-fleet" (fun () ->
            let step = ref 0 in
            while K.Clock.now () < deadline do
              let ports =
                List.concat
                  (List.mapi
                     (fun i link ->
                       match E1000_drv.netdev_at ~slot:(fleet_slot i) with
                       | Some nd ->
                           if not (K.Netcore.is_up nd) then
                             ignore (K.Netcore.open_dev nd);
                           if K.Netcore.is_up nd then
                             [ { Vswitch.netdev = nd; link } ]
                           else []
                       | None -> [])
                     links)
              in
              let b = min (burst_ns rng) (deadline - K.Clock.now ()) in
              if ports <> [] && b > 0 then begin
                let r = Vswitch.run ~ports ~duration_ns:b ~msg_bytes:1500 in
                packets := !packets + r.Vswitch.packets
              end;
              if churn then begin
                incr step;
                match !step mod 3 with
                | 0 ->
                    (* hotplug storm: surprise-remove a port, replug it *)
                    let k = 1 + (rng () mod (fleet - 1)) in
                    (match
                       List.find_opt
                         (fun d -> K.Pci.slot d = fleet_slot k)
                         (K.Pci.devices ())
                     with
                    | Some d ->
                        K.Pci.remove_device d;
                        K.Sched.sleep_ns 500_000;
                        K.Pci.add_device
                          (K.Pci.make_dev ~slot:(fleet_slot k) ~vendor:0x8086
                             ~device:0x100e ~irq_line:(fleet_irq k)
                             ~bars:
                               [
                                 {
                                   K.Pci.kind = K.Pci.Mmio_bar;
                                   base = fleet_mmio k;
                                   len = 0x20000;
                                 };
                               ]
                             ())
                    | None -> ())
                | 1 ->
                    (* power-management cycle on the lead instance *)
                    (match Driver_core.suspend "e1000" with
                    | Ok () -> ignore (Driver_core.resume "e1000")
                    | Error _ -> ())
                | _ -> ()
              end;
              let g = min (gap_ns rng) (max 0 (deadline - K.Clock.now ())) in
              if g > 0 then K.Sched.sleep_ns g
            done);
        (* 8139too: netperf in bursts on its own link, alternating send
           and receive so both wire directions contribute timelines *)
        spawn "soak-rtl" (fun () ->
            let nd = Rtl8139_drv.netdev rtl in
            let step = ref 0 in
            while K.Clock.now () < deadline do
              let b = min (burst_ns rng) (deadline - K.Clock.now ()) in
              if b > 0 && K.Netcore.is_up nd then begin
                incr step;
                let run = if !step mod 2 = 0 then Netperf.recv else Netperf.send in
                let r = run ~netdev:nd ~link:link100 ~duration_ns:b ~msg_bytes:1500 in
                packets := !packets + r.Netperf.packets
              end;
              let g = min (gap_ns rng) (max 0 (deadline - K.Clock.now ())) in
              if g > 0 then K.Sched.sleep_ns g
            done);
        (* ens1371: continuous playback, the deadline-sensitive stream *)
        spawn "soak-audio" (fun () ->
            let remaining = deadline - K.Clock.now () in
            if remaining > 0 then
              match Ens1371_drv.active () with
              | Some t ->
                  ignore
                    (Mpg123.play
                       ~substream:(Ens1371_drv.substream t)
                       ~model:ens_model ~duration_ns:remaining)
              | None -> ());
        (* uhci: tar loops; churn adds suspend/resume between archives *)
        spawn "soak-usb" (fun () ->
            let step = ref 0 in
            while K.Clock.now () < deadline do
              let r = Tar_usb.untar ~model:uhci_model ~files:2 ~file_bytes:8192 in
              usb_bytes := !usb_bytes + r.Tar_usb.bytes_written;
              incr step;
              if churn && !step mod 2 = 0 then (
                match Driver_core.suspend "uhci-hcd" with
                | Ok () -> ignore (Driver_core.resume "uhci-hcd")
                | Error _ -> ());
              K.Sched.sleep_ns (gap_ns rng)
            done);
        (* psmouse: event storms in chunks; churn ejects and re-loads the
           module between chunks (draining the orphaned birth stamps) *)
        spawn "soak-mouse" (fun () ->
            let step = ref 0 in
            while K.Clock.now () < deadline do
              (match Psmouse_drv.active () with
              | Some t ->
                  let b =
                    min (10_000_000 + (rng () mod 20_000_000))
                      (deadline - K.Clock.now ())
                  in
                  if b > 0 then begin
                    let r =
                      Mouse_move.run ~model:ps_model
                        ~input:(Psmouse_drv.input_dev t) ~duration_ns:b
                    in
                    input_events := !input_events + r.Mouse_move.events_delivered
                  end
              | None -> K.Sched.sleep_ns 1_000_000);
              incr step;
              if churn && !step mod 4 = 0 then begin
                Driver_core.eject "psmouse";
                K.Clock.track_drain "input.event";
                ok_or "psmouse reinsmod"
                  (Driver_core.insmod "psmouse" ~mode:Driver_env.Decaf)
              end
            done);
        while !done_count < !want do
          K.Sched.sleep_ns 1_000_000
        done;
        if churn then FI.disarm ();
        let underruns = Hw.Ens1371_hw.underruns ens_model - underruns0 in
        let phase =
          {
            phase_name = name;
            phase_ns;
            paths = snapshot_paths ();
            audio_periods = Hw.Ens1371_hw.periods_played ens_model - periods0;
            (* one continuous play per phase: its final, deliberately
               partial period is the workload ending, not a missed
               deadline (same convention as the mpg123 tests) *)
            audio_misses = max 0 (underruns - 1);
            packets = !packets;
            input_events = !input_events;
            usb_bytes = !usb_bytes;
          }
        in
        (* phase window: zero the histograms, keep the paths *)
        K.Latency.clear_paths ();
        phase
      in
      let steady = run_phase ~churn:false "steady" in
      let churn = run_phase ~churn:true "churn" in
      (* --- quiescence: unload everything, then hold the ledgers to
         the post-boot baseline --- *)
      List.iter
        (fun id ->
          if Driver_core.lifecycle_name (Driver_core.state id) <> "removed"
          then Driver_core.rmmod id)
        (Driver_core.instances_of "e1000");
      List.iter Driver_core.rmmod [ "8139too"; "ens1371"; "uhci-hcd"; "psmouse" ];
      Xpc.Batch.drain ();
      let blocks, bytes = K.Kmem.outstanding () in
      {
        steady;
        churn;
        leaked_tracker_entries = tracker_entries () - base_tracker;
        leaked_kmalloc_blocks = blocks - base_blocks;
        leaked_kmalloc_bytes = bytes - base_bytes;
      })

let pp_phase ppf p =
  Format.fprintf ppf "%s: %d paths, %d periods (%d missed), %d packets"
    p.phase_name (List.length p.paths) p.audio_periods p.audio_misses p.packets
