lib/drivers/driver_env.ml: Batch Channel Decaf_runtime Decaf_xpc Domain
