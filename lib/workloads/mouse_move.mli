(** The move-and-click workload: continuous mouse motion for a fixed
    virtual duration (the paper uses 30 seconds). *)

type result = {
  events_delivered : int;
  packets : int;
  cpu_utilization : float;
  elapsed_ns : int;
  xpc_overhead_ns : int;
      (** XPC dispatch critical-path ns during the run
          ({!Decaf_xpc.Dispatch.overhead_ns} delta) *)
  event_rate_hz : float;
      (** events over effective time (elapsed minus the dispatch work
          worker lanes overlap, {!Decaf_xpc.Dispatch.overlap_saved_ns}
          delta); the cost-sensitive metric Xpcperf tracks *)
}

val run :
  model:Decaf_hw.Psmouse_hw.t ->
  input:Decaf_kernel.Inputcore.t ->
  duration_ns:int ->
  result

val pp : Format.formatter -> result -> unit
