(** Recursive-descent parser for the mini-C language. *)

exception Parse_error of string * Loc.t

val parse : string -> Ast.file
(** Parse a complete source text. Typedef names are tracked as they are
    declared; the usual kernel fixed-width names ([u8]..[u64],
    [uint8_t]..[uint64_t], [size_t], ...) are pre-seeded. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests and by annotation
    processing). *)
