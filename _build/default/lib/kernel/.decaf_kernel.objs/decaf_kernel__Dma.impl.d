lib/kernel/dma.ml: Kmem
