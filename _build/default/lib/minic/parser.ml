open Ast

exception Parse_error of string * Loc.t

type state = {
  toks : (Token.t * Loc.t) array;
  mutable pos : int;
  typedefs : (string, unit) Hashtbl.t;
}

let builtin_typedefs =
  [
    "u8"; "u16"; "u32"; "u64"; "s8"; "s16"; "s32"; "s64";
    "uint8_t"; "uint16_t"; "uint32_t"; "uint64_t";
    "int8_t"; "int16_t"; "int32_t"; "int64_t";
    "size_t"; "ssize_t"; "bool"; "dma_addr_t"; "gfp_t"; "irqreturn_t";
  ]

let make_state toks =
  let typedefs = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace typedefs n ()) builtin_typedefs;
  { toks = Array.of_list toks; pos = 0; typedefs }

let peek st = fst st.toks.(st.pos)
let peek_loc st = snd st.toks.(st.pos)

let peek_n st n =
  if st.pos + n < Array.length st.toks then fst st.toks.(st.pos + n)
  else Token.Eof

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st msg =
  raise
    (Parse_error
       ( Printf.sprintf "%s (found %s)" msg (Token.to_string (peek st)),
         peek_loc st ))

let expect st tok msg =
  if peek st = tok then advance st else error st ("expected " ^ msg)

let expect_ident st msg =
  match peek st with
  | Token.Ident name ->
      advance st;
      name
  | _ -> error st ("expected " ^ msg)

let is_typedef st name = Hashtbl.mem st.typedefs name

(* --- attributes --- *)

(* "exp(PCI_LEN)" -> { attr_name = "exp"; attr_arg = Some "PCI_LEN" } *)
let parse_attr_payload payload =
  match String.index_opt payload '(' with
  | Some i when String.length payload > 0 && payload.[String.length payload - 1] = ')'
    ->
      let name = String.trim (String.sub payload 0 i) in
      let arg = String.sub payload (i + 1) (String.length payload - i - 2) in
      { attr_name = name; attr_arg = Some (String.trim arg) }
  | Some _ | None -> { attr_name = String.trim payload; attr_arg = None }

let rec collect_attrs st acc =
  match peek st with
  | Token.Attribute payload ->
      advance st;
      collect_attrs st (parse_attr_payload payload :: acc)
  | _ -> List.rev acc

(* --- types --- *)

let starts_type st =
  match peek st with
  | Token.Kw_void | Token.Kw_char | Token.Kw_short | Token.Kw_int
  | Token.Kw_long | Token.Kw_unsigned | Token.Kw_signed | Token.Kw_struct
  | Token.Kw_const ->
      true
  | Token.Ident name -> is_typedef st name
  | _ -> false

(* Parse declaration specifiers into a base type (no pointers yet). *)
let parse_base_type st =
  (* swallow const anywhere in the specifier list *)
  let rec skip_const () =
    if peek st = Token.Kw_const then begin
      advance st;
      skip_const ()
    end
  in
  skip_const ();
  match peek st with
  | Token.Kw_void ->
      advance st;
      Tvoid
  | Token.Kw_struct ->
      advance st;
      let name = expect_ident st "struct name" in
      Tstruct name
  | Token.Ident name when is_typedef st name ->
      advance st;
      Tnamed name
  | Token.Kw_unsigned | Token.Kw_signed | Token.Kw_char | Token.Kw_short
  | Token.Kw_int | Token.Kw_long ->
      let unsigned = ref false in
      let kind = ref None in
      let longs = ref 0 in
      let rec scan () =
        match peek st with
        | Token.Kw_unsigned ->
            unsigned := true;
            advance st;
            scan ()
        | Token.Kw_signed ->
            advance st;
            scan ()
        | Token.Kw_char ->
            kind := Some Ichar;
            advance st;
            scan ()
        | Token.Kw_short ->
            kind := Some Ishort;
            advance st;
            scan ()
        | Token.Kw_int ->
            if !kind = None && !longs = 0 then kind := Some Iint;
            advance st;
            scan ()
        | Token.Kw_long ->
            incr longs;
            advance st;
            scan ()
        | Token.Kw_const ->
            advance st;
            scan ()
        | _ -> ()
      in
      scan ();
      let kind =
        match (!kind, !longs) with
        | Some k, 0 -> k
        | _, 1 -> Ilong
        | _, n when n >= 2 -> Ilonglong
        | None, _ -> Iint
        | Some k, _ -> k
      in
      Tint { kind; unsigned = !unsigned }
  | _ -> error st "expected type"

(* Parse pointer stars and attributes that follow the base type; returns
   (type, attributes seen). *)
let parse_pointers st base =
  let attrs = ref [] in
  let rec scan t =
    match peek st with
    | Token.Star ->
        advance st;
        scan (Tptr t)
    | Token.Attribute payload ->
        advance st;
        attrs := parse_attr_payload payload :: !attrs;
        scan t
    | Token.Kw_const ->
        advance st;
        scan t
    | _ -> t
  in
  let t = scan base in
  (t, List.rev !attrs)

(* Array suffixes after a declarator name. *)
let parse_array_suffix st t =
  let rec scan t =
    if peek st = Token.Lbracket then begin
      advance st;
      let n =
        match peek st with
        | Token.Int_lit n ->
            advance st;
            Some n
        | Token.Ident _ ->
            (* named constant size: keep as unsized for analysis *)
            advance st;
            None
        | _ -> None
      in
      expect st Token.Rbracket "]";
      scan (Tarray (t, n))
    end
    else t
  in
  scan t

(* --- expressions --- *)

let rec parse_expression st = parse_assignment st

and parse_assignment st =
  let lhs = parse_conditional st in
  let mk op =
    advance st;
    let rhs = parse_assignment st in
    Eassign (op, lhs, rhs)
  in
  match peek st with
  | Token.Assign -> mk None
  | Token.Plus_assign -> mk (Some Add)
  | Token.Minus_assign -> mk (Some Sub)
  | Token.Star_assign -> mk (Some Mul)
  | Token.Slash_assign -> mk (Some Div)
  | Token.Or_assign -> mk (Some Bor)
  | Token.And_assign -> mk (Some Band)
  | Token.Xor_assign -> mk (Some Bxor)
  | Token.Shl_assign -> mk (Some Shl)
  | Token.Shr_assign -> mk (Some Shr)
  | _ -> lhs

and parse_conditional st =
  let cond = parse_binary st 0 in
  if peek st = Token.Question then begin
    advance st;
    let a = parse_expression st in
    expect st Token.Colon ":";
    let b = parse_conditional st in
    Econd (cond, a, b)
  end
  else cond

(* precedence-climbing over binary operators *)
and binop_of_token = function
  | Token.Bar_bar -> Some (Lor, 1)
  | Token.Amp_amp -> Some (Land, 2)
  | Token.Bar -> Some (Bor, 3)
  | Token.Caret -> Some (Bxor, 4)
  | Token.Amp -> Some (Band, 5)
  | Token.Eq -> Some (Eq, 6)
  | Token.Neq -> Some (Ne, 6)
  | Token.Lt -> Some (Lt, 7)
  | Token.Gt -> Some (Gt, 7)
  | Token.Le -> Some (Le, 7)
  | Token.Ge -> Some (Ge, 7)
  | Token.Shl -> Some (Shl, 8)
  | Token.Shr -> Some (Shr, 8)
  | Token.Plus -> Some (Add, 9)
  | Token.Minus -> Some (Sub, 9)
  | Token.Star -> Some (Mul, 10)
  | Token.Slash -> Some (Div, 10)
  | Token.Percent -> Some (Mod, 10)
  | _ -> None

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := Ebinop (op, !lhs, rhs)
    | Some _ | None -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Token.Minus ->
      advance st;
      Eunop (Neg, parse_unary st)
  | Token.Bang ->
      advance st;
      Eunop (Lnot, parse_unary st)
  | Token.Tilde ->
      advance st;
      Eunop (Bnot, parse_unary st)
  | Token.Star ->
      advance st;
      Eunop (Deref, parse_unary st)
  | Token.Amp ->
      advance st;
      Eunop (Addr_of, parse_unary st)
  | Token.Incr ->
      advance st;
      Epreincr (parse_unary st)
  | Token.Decr ->
      advance st;
      Epredecr (parse_unary st)
  | Token.Kw_sizeof ->
      advance st;
      if peek st = Token.Lparen && starts_type_after_lparen st then begin
        expect st Token.Lparen "(";
        let base = parse_base_type st in
        let t, _ = parse_pointers st base in
        expect st Token.Rparen ")";
        Esizeof_type t
      end
      else Esizeof_expr (parse_unary st)
  | Token.Lparen when starts_type_after_lparen st ->
      (* cast *)
      expect st Token.Lparen "(";
      let base = parse_base_type st in
      let t, _ = parse_pointers st base in
      expect st Token.Rparen ")";
      Ecast (t, parse_unary st)
  | _ -> parse_postfix st

and starts_type_after_lparen st =
  match peek_n st 1 with
  | Token.Kw_void | Token.Kw_char | Token.Kw_short | Token.Kw_int
  | Token.Kw_long | Token.Kw_unsigned | Token.Kw_signed | Token.Kw_struct
  | Token.Kw_const ->
      true
  | Token.Ident name -> is_typedef st name
  | _ -> false

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Token.Lparen ->
        advance st;
        let args = ref [] in
        if peek st <> Token.Rparen then begin
          args := [ parse_assignment st ];
          while peek st = Token.Comma do
            advance st;
            args := parse_assignment st :: !args
          done
        end;
        expect st Token.Rparen ")";
        e := Ecall (!e, List.rev !args)
    | Token.Lbracket ->
        advance st;
        let idx = parse_expression st in
        expect st Token.Rbracket "]";
        e := Eindex (!e, idx)
    | Token.Dot ->
        advance st;
        e := Efield (!e, expect_ident st "field name")
    | Token.Arrow ->
        advance st;
        e := Earrow (!e, expect_ident st "field name")
    | Token.Incr ->
        advance st;
        e := Epostincr !e
    | Token.Decr ->
        advance st;
        e := Epostdecr !e
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  match peek st with
  | Token.Int_lit n ->
      advance st;
      Econst n
  | Token.Str_lit s ->
      advance st;
      Estr s
  | Token.Char_lit c ->
      advance st;
      Echar c
  | Token.Ident name ->
      advance st;
      Eident name
  | Token.Lparen ->
      advance st;
      let e = parse_expression st in
      expect st Token.Rparen ")";
      e
  | _ -> error st "expected expression"

(* --- statements --- *)

let rec parse_stmt st : stmt =
  let sloc = peek_loc st in
  let kind = parse_stmt_kind st in
  { skind = kind; sloc }

and as_block (s : stmt) =
  match s.skind with Sblock body -> body | _ -> [ s ]

and parse_stmt_kind st =
  match peek st with
  | Token.Lbrace -> Sblock (parse_block st)
  | Token.Kw_if ->
      advance st;
      expect st Token.Lparen "(";
      let cond = parse_expression st in
      expect st Token.Rparen ")";
      let then_ = as_block (parse_stmt st) in
      let else_ =
        if peek st = Token.Kw_else then begin
          advance st;
          as_block (parse_stmt st)
        end
        else []
      in
      Sif (cond, then_, else_)
  | Token.Kw_while ->
      advance st;
      expect st Token.Lparen "(";
      let cond = parse_expression st in
      expect st Token.Rparen ")";
      Swhile (cond, as_block (parse_stmt st))
  | Token.Kw_do ->
      advance st;
      let body = as_block (parse_stmt st) in
      expect st Token.Kw_while "while";
      expect st Token.Lparen "(";
      let cond = parse_expression st in
      expect st Token.Rparen ")";
      expect st Token.Semi ";";
      Sdo (body, cond)
  | Token.Kw_for ->
      advance st;
      expect st Token.Lparen "(";
      let init =
        if peek st = Token.Semi then None
        else if starts_type st then Some (parse_decl_stmt st ~consume_semi:false)
        else Some { skind = Sexpr (parse_expression st); sloc = peek_loc st }
      in
      expect st Token.Semi ";";
      let cond = if peek st = Token.Semi then None else Some (parse_expression st) in
      expect st Token.Semi ";";
      let update =
        if peek st = Token.Rparen then None else Some (parse_expression st)
      in
      expect st Token.Rparen ")";
      Sfor (init, cond, update, as_block (parse_stmt st))
  | Token.Kw_switch ->
      advance st;
      expect st Token.Lparen "(";
      let scrutinee = parse_expression st in
      expect st Token.Rparen ")";
      expect st Token.Lbrace "{";
      let cases = ref [] in
      let parse_case_body () =
        let stmts = ref [] in
        while
          peek st <> Token.Kw_case
          && peek st <> Token.Kw_default
          && peek st <> Token.Rbrace
        do
          stmts := parse_stmt st :: !stmts
        done;
        List.rev !stmts
      in
      while peek st <> Token.Rbrace do
        match peek st with
        | Token.Kw_case ->
            advance st;
            let v =
              match peek st with
              | Token.Int_lit n ->
                  advance st;
                  n
              | Token.Minus ->
                  advance st;
                  (match peek st with
                  | Token.Int_lit n ->
                      advance st;
                      -n
                  | _ -> error st "expected integer case label")
              | _ -> error st "expected integer case label"
            in
            expect st Token.Colon ":";
            cases := Ast.Case (v, parse_case_body ()) :: !cases
        | Token.Kw_default ->
            advance st;
            expect st Token.Colon ":";
            cases := Ast.Default (parse_case_body ()) :: !cases
        | _ -> error st "expected case or default"
      done;
      expect st Token.Rbrace "}";
      Sswitch (scrutinee, List.rev !cases)
  | Token.Kw_return ->
      advance st;
      let e = if peek st = Token.Semi then None else Some (parse_expression st) in
      expect st Token.Semi ";";
      Sreturn e
  | Token.Kw_goto ->
      advance st;
      let label = expect_ident st "label" in
      expect st Token.Semi ";";
      Sgoto label
  | Token.Kw_break ->
      advance st;
      expect st Token.Semi ";";
      Sbreak
  | Token.Kw_continue ->
      advance st;
      expect st Token.Semi ";";
      Scontinue
  | Token.Ident name when peek_n st 1 = Token.Colon && not (is_typedef st name)
    ->
      advance st;
      advance st;
      Slabel name
  | _ when starts_type st ->
      let s = parse_decl_stmt st ~consume_semi:true in
      s.skind
  | _ ->
      let e = parse_expression st in
      expect st Token.Semi ";";
      Sexpr e

(* One local declaration; comma-separated declarators become a block. *)
and parse_decl_stmt st ~consume_semi : stmt =
  let sloc = peek_loc st in
  let base = parse_base_type st in
  let parse_one () =
    let t, _attrs = parse_pointers st base in
    (* function-pointer declarator: [t ( * name)(params)] *)
    if peek st = Token.Lparen && peek_n st 1 = Token.Star then begin
      advance st;
      advance st;
      let name = expect_ident st "declarator" in
      expect st Token.Rparen ")";
      (* skip the parameter list *)
      expect st Token.Lparen "(";
      let depth = ref 1 in
      while !depth > 0 do
        (match peek st with
        | Token.Lparen -> incr depth
        | Token.Rparen -> decr depth
        | Token.Eof -> error st "unterminated parameter list"
        | _ -> ());
        advance st
      done;
      let init =
        if peek st = Token.Assign then begin
          advance st;
          Some (parse_assignment st)
        end
        else None
      in
      { skind = Sdecl (Tptr Tvoid, name, init); sloc }
    end
    else begin
    let name = expect_ident st "declarator" in
    let t = parse_array_suffix st t in
    let init =
      if peek st = Token.Assign then begin
        advance st;
        Some (parse_assignment st)
      end
      else None
    in
    { skind = Sdecl (t, name, init); sloc }
    end
  in
  let first = parse_one () in
  let rest = ref [] in
  while peek st = Token.Comma do
    advance st;
    rest := parse_one () :: !rest
  done;
  if consume_semi then expect st Token.Semi ";";
  match !rest with
  | [] -> first
  | rest -> { skind = Sblock (first :: List.rev rest); sloc }

and parse_block st =
  expect st Token.Lbrace "{";
  let stmts = ref [] in
  while peek st <> Token.Rbrace do
    if peek st = Token.Eof then error st "unexpected end of file in block";
    stmts := parse_stmt st :: !stmts
  done;
  expect st Token.Rbrace "}";
  List.rev !stmts

(* --- globals --- *)

let parse_params st =
  expect st Token.Lparen "(";
  let params = ref [] in
  (if peek st = Token.Kw_void && peek_n st 1 = Token.Rparen then advance st
   else if peek st <> Token.Rparen then begin
     let parse_param () =
       if peek st = Token.Ellipsis then begin
         advance st;
         { pname = "..."; ptyp = Tvoid }
       end
       else begin
         let base = parse_base_type st in
         let t, _ = parse_pointers st base in
         let name =
           match peek st with
           | Token.Ident n ->
               advance st;
               n
           | _ -> ""
         in
         let t = parse_array_suffix st t in
         { pname = name; ptyp = t }
       end
     in
     params := [ parse_param () ];
     while peek st = Token.Comma do
       advance st;
       params := parse_param () :: !params
     done
   end);
  expect st Token.Rparen ")";
  List.rev !params

let parse_struct_def st =
  let sloc = peek_loc st in
  expect st Token.Kw_struct "struct";
  let sname = expect_ident st "struct name" in
  expect st Token.Lbrace "{";
  let fields = ref [] in
  while peek st <> Token.Rbrace do
    let base = parse_base_type st in
    let parse_field () =
      let t, attrs1 = parse_pointers st base in
      let attrs2 = collect_attrs st [] in
      let fname = expect_ident st "field name" in
      let t = parse_array_suffix st t in
      let attrs3 = collect_attrs st [] in
      { fname; ftyp = t; fattrs = attrs1 @ attrs2 @ attrs3 }
    in
    fields := parse_field () :: !fields;
    while peek st = Token.Comma do
      advance st;
      fields := parse_field () :: !fields
    done;
    expect st Token.Semi ";"
  done;
  expect st Token.Rbrace "}";
  expect st Token.Semi ";";
  { sname; sfields = List.rev !fields; sloc }

let parse_typedef st =
  let tloc = peek_loc st in
  expect st Token.Kw_typedef "typedef";
  let base = parse_base_type st in
  (* function-pointer typedef: [typedef t ( * name)(params);] *)
  if peek st = Token.Lparen && peek_n st 1 = Token.Star then begin
    advance st;
    advance st;
    let tname = expect_ident st "typedef name" in
    expect st Token.Rparen ")";
    ignore (parse_params st);
    expect st Token.Semi ";";
    (tname, Tptr Tvoid, tloc)
  end
  else begin
    let t, _ = parse_pointers st base in
    let tname = expect_ident st "typedef name" in
    let t = parse_array_suffix st t in
    expect st Token.Semi ";";
    (tname, t, tloc)
  end

let parse_global st : global =
  match peek st with
  | Token.Pragma text ->
      let loc = peek_loc st in
      advance st;
      Gpragma (text, loc)
  | Token.Kw_typedef ->
      let tname, ttyp, tloc = parse_typedef st in
      Hashtbl.replace st.typedefs tname ();
      Gtypedef { tname; ttyp; tloc }
  | Token.Kw_struct when peek_n st 1 <> Token.Eof && peek_n st 2 = Token.Lbrace
    ->
      Gstruct (parse_struct_def st)
  | _ ->
      let floc_start = peek_loc st in
      let fstatic =
        if peek st = Token.Kw_static then begin
          advance st;
          true
        end
        else false
      in
      (match peek st with
      | Token.Kw_extern -> advance st
      | _ -> ());
      let base = parse_base_type st in
      let t, _ = parse_pointers st base in
      let name = expect_ident st "declarator" in
      if peek st = Token.Lparen then begin
        let params = parse_params st in
        match peek st with
        | Token.Semi ->
            advance st;
            Gfundecl { dname = name; dret = t; dparams = params; dloc = floc_start }
        | Token.Lbrace ->
            let body = parse_block st in
            let floc_end =
              if st.pos > 0 then snd st.toks.(st.pos - 1) else floc_start
            in
            Gfunc
              {
                fname = name;
                fret = t;
                fparams = params;
                fbody = body;
                fstatic;
                floc_start;
                floc_end;
              }
        | _ -> error st "expected ; or { after function declarator"
      end
      else begin
        let t = parse_array_suffix st t in
        let vinit =
          if peek st = Token.Assign then begin
            advance st;
            Some (parse_expression st)
          end
          else None
        in
        expect st Token.Semi ";";
        Gvar { vname = name; vtyp = t; vinit; vloc = floc_start }
      end

let parse source =
  let st = make_state (Lexer.tokenize source) in
  let globals = ref [] in
  while peek st <> Token.Eof do
    globals := parse_global st :: !globals
  done;
  { source; globals = List.rev !globals }

let parse_expr source =
  let st = make_state (Lexer.tokenize source) in
  let e = parse_expression st in
  if peek st <> Token.Eof then error st "trailing tokens after expression";
  e
