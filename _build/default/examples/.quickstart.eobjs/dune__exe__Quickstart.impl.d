examples/quickstart.ml: Decaf_drivers Decaf_hw Decaf_kernel Decaf_runtime Decaf_xpc Driver_env E1000_drv Printf
