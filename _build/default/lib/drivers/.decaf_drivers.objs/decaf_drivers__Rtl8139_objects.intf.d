lib/drivers/rtl8139_objects.mli: Decaf_xpc
