lib/drivers/ens1371_drv.mli: Decaf_hw Decaf_kernel Driver_env
