(** Symbol table over a parsed driver source. *)

type t

val build : Ast.file -> t
val functions : t -> Ast.func list
val function_names : t -> string list
val find_function : t -> string -> Ast.func option
val structs : t -> Ast.struct_def list
val find_struct : t -> string -> Ast.struct_def option
val typedef : t -> string -> Ast.typ option

val resolve : t -> Ast.typ -> Ast.typ
(** Chase typedefs down to a concrete type. *)

val declared_only : t -> string list
(** Functions declared (prototyped) but not defined here — the driver's
    imports from the kernel. *)

val is_defined : t -> string -> bool
