lib/kernel/kmem.ml: Hashtbl List Sched
