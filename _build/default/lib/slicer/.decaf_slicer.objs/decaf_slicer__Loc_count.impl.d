lib/slicer/loc_count.ml: Buffer List Option String
