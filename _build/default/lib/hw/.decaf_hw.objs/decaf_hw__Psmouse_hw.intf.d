lib/hw/psmouse_hw.mli:
