lib/workloads/mouse_move.ml: Decaf_hw Decaf_kernel Format
