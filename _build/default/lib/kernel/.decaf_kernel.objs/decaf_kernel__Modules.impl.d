lib/kernel/modules.ml: Clock Cost Klog List Panic
