open Decaf_drivers
module Slicer = Decaf_slicer.Slicer
module Report = Decaf_slicer.Report

type t = Report.driver_stats list

let drivers =
  [
    ("8139too", "Network", Rtl8139_src.source, Rtl8139_src.config);
    ("e1000", "Network", E1000_src.source, E1000_src.config);
    ("ens1371", "Sound", Ens1371_src.source, Ens1371_src.config);
    ("uhci-hcd", "USB 1.0", Uhci_src.source, Uhci_src.config);
    ("psmouse", "Mouse", Psmouse_src.source, Psmouse_src.config);
  ]

let outputs () =
  List.map
    (fun (name, _, source, config) -> (name, Slicer.slice ~source config))
    drivers

let measure () =
  List.map
    (fun (_, dtype, source, config) ->
      Report.stats (Slicer.slice ~source config) ~dtype)
    drivers

let render rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Table 2: drivers converted to the Decaf architecture\n";
  Buffer.add_string buf (Report.header ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf (Format.asprintf "%a" Report.pp_row row);
      Buffer.add_string buf
        (Printf.sprintf "   (%.0f%% of functions out of the kernel)\n"
           (100. *. Report.user_fraction row)))
    rows;
  Buffer.contents buf
