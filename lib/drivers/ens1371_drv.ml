module K = Decaf_kernel
module Hw = Decaf_hw
module S = Hw.Ens1371_hw
module Errors = Decaf_runtime.Errors
module Runtime = Decaf_runtime.Runtime

let vendor_id = 0x1274
let device_id = 0x1371
let adapter_wire_bytes = 160
let driver = "ens1371"
let mixer_controls = 24
let period_bytes = 4096
let buffer_bytes = 4 * period_bytes

let models : (string, S.t) Hashtbl.t = Hashtbl.create 4

let setup_device ~slot ~io_base ~irq () =
  let model = S.create ~io_base ~irq () in
  Hashtbl.replace models slot model;
  K.Pci.add_device
    (K.Pci.make_dev ~slot ~vendor:vendor_id ~device:device_id ~irq_line:irq
       ~bars:[ { K.Pci.kind = K.Pci.Port_bar; base = io_base; len = 0x40 } ]
       ());
  model

type adapter = {
  env : Driver_env.t;
  scope : string;  (** binding id: "ens1371" or "ens1371#k" *)
  slot : string;  (** PCI slot this binding claimed *)
  model : S.t;
  io_base : int;
  irq : int;
  mutable card : K.Sndcore.card option;
  mutable sub : K.Sndcore.substream option;
  mutable rate : int;
  mutable dac_on : bool;
  mutable pos_base : int;
      (** device consumed-byte count at the last prepare: the DAC's
          counter is cumulative across streams, but the PCM layer wants
          a per-stream position, so prepare re-baselines it like a real
          driver resetting its DMA frame counter *)
  mutable user_syncs : int;
      (** deferred hardware-pointer refreshes delivered to user level *)
}

type t = { adapter : adapter; mutable module_handle : K.Modules.handle option }

let reg a off = a.io_base + off

let outl a off v =
  if a.env.Driver_env.mode <> Driver_env.Native then
    Runtime.Helpers.outl (reg a off) v
  else K.Io.outl (reg a off) v

(* --- driver nucleus: interrupt handler (data path) --- *)

(* Deferred kernel->user hardware-pointer refresh: the user-level half
   tracks playback position for its PCM callbacks, but period interrupts
   land in the nucleus. Each period posts a one-way notification (legal
   from interrupt context; batched and flushed like E1000_drv's stats
   syncs) instead of paying a synchronous crossing per interrupt. *)
let ptr_wire_bytes = 12

let post_pcm_ptr_sync a =
  if a.env.Driver_env.mode <> Driver_env.Native then
    a.env.Driver_env.notify ~name:"ens1371_pcm_ptr" ~bytes:ptr_wire_bytes
      (fun () -> a.user_syncs <- a.user_syncs + 1)

let interrupt a =
  let status = K.Io.inl (reg a S.reg_status) in
  if status land S.status_dac2 <> 0 then begin
    K.Io.outl (reg a S.reg_status) S.status_dac2;
    (* report progress to the sound library; writers wake as needed *)
    (match a.sub with Some sub -> K.Sndcore.period_elapsed sub | None -> ());
    post_pcm_ptr_sync a
  end

(* --- decaf driver: codec / SRC programming and PCM callbacks --- *)

let codec_write a ac97_reg value =
  outl a S.reg_codec ((ac97_reg lsl 16) lor value)

let init_codec a =
  (* power up the AC97 codec (calibration takes ~20 ms) and set default
     volumes *)
  K.Sched.sleep_ns 20_000_000;
  codec_write a 0x00 0x0000;
  codec_write a 0x02 0x0808;
  codec_write a 0x04 0x0808;
  codec_write a 0x18 0x0808;
  codec_write a 0x2a 0x0001

let pcm_ops a =
  {
    K.Sndcore.pcm_open =
      (fun () ->
        a.env.Driver_env.upcall ~name:"ens1371_pcm_open" ~bytes:adapter_wire_bytes
          (fun () -> Ok ()));
    pcm_close =
      (fun () ->
        a.env.Driver_env.upcall ~name:"ens1371_pcm_close"
          ~bytes:adapter_wire_bytes (fun () -> ()));
    pcm_hw_params =
      (fun ~rate ~channels ~sample_bits ->
        a.env.Driver_env.upcall ~name:"ens1371_hw_params"
          ~bytes:adapter_wire_bytes (fun () ->
            if channels <> 2 || sample_bits <> 16 then Error (-Errors.einval)
            else begin
              a.rate <- rate;
              (* program the sample-rate converter from user level *)
              outl a S.reg_src rate;
              Ok ()
            end));
    pcm_prepare =
      (fun () ->
        a.env.Driver_env.upcall ~name:"ens1371_prepare" ~bytes:adapter_wire_bytes
          (fun () ->
            outl a S.reg_frame_size period_bytes;
            a.pos_base <- S.consumed a.model;
            Ok ()));
    pcm_trigger =
      (fun cmd ->
        a.env.Driver_env.upcall ~name:"ens1371_trigger" ~bytes:adapter_wire_bytes
          (fun () ->
            match cmd with
            | `Start ->
                a.dac_on <- true;
                outl a S.reg_control S.ctrl_dac2_en
            | `Stop ->
                a.dac_on <- false;
                outl a S.reg_control 0));
    pcm_pointer = (fun () -> S.consumed a.model - a.pos_base);
  }

let probe env (pci : K.Pci.dev) =
  match Hashtbl.find_opt models (K.Pci.slot pci) with
  | None -> Error (-Errors.enodev)
  | Some model ->
      K.Pci.enable_device pci;
      let bar = K.Pci.bar pci 0 in
      let a =
        {
          env;
          scope = Driver_env.scope_or env driver;
          slot = K.Pci.slot pci;
          model;
          io_base = bar.K.Pci.base;
          irq = K.Pci.irq pci;
          card = None;
          sub = None;
          rate = 0;
          dac_on = false;
          pos_base = 0;
          user_syncs = 0;
        }
      in
      let rc =
        env.Driver_env.upcall ~name:"ens1371_probe" ~bytes:adapter_wire_bytes
          (fun () ->
            init_codec a;
            (* create and register the card: kernel services invoked from
               user level (Figure 2's snd_card_register stub) *)
            let card =
              a.env.Driver_env.downcall ~name:"snd_card_new" ~bytes:32 (fun () ->
                  K.Sndcore.snd_card_new "Ensoniq AudioPCI")
            in
            a.card <- Some card;
            let sub =
              a.env.Driver_env.downcall ~name:"snd_pcm_new" ~bytes:48 (fun () ->
                  K.Sndcore.new_pcm card ~buffer_bytes (pcm_ops a))
            in
            a.sub <- Some sub;
            (* DMA: the DAC reads the substream ring directly *)
            S.set_data_source a.model (fun () -> K.Sndcore.pcm_bytes_queued sub);
            (* register the mixer controls, one downcall each *)
            for i = 1 to mixer_controls do
              a.env.Driver_env.downcall ~name:"snd_ctl_add" ~bytes:24 (fun () ->
                  ignore i)
            done;
            a.env.Driver_env.downcall ~name:"request_irq" ~bytes:16 (fun () ->
                K.Irq.request_irq a.irq ~name:a.scope (fun () -> interrupt a));
            (* if registration faults, give the line back: a retry of the
               probe must be able to claim it again *)
            Errors.protect
              ~cleanup:(fun () -> K.Irq.free_irq a.irq)
              (fun () ->
                a.env.Driver_env.downcall ~name:"snd_card_register" ~bytes:32
                  (fun () -> K.Sndcore.snd_card_register card)))
      in
      if rc = 0 then Ok a else Error rc

let instances : (string, adapter) Hashtbl.t = Hashtbl.create 4

let remove (pci : K.Pci.dev) =
  (match Hashtbl.find_opt instances (K.Pci.slot pci) with
  | Some a -> (
      K.Irq.free_irq a.irq;
      match a.card with Some c -> K.Sndcore.snd_card_free c | None -> ())
  | None -> ());
  Hashtbl.remove instances (K.Pci.slot pci)

let active_box : t option ref = ref None
let active () = !active_box

(* One K.Modules load serves every instance (see E1000_drv): refcounted,
   really unloaded only when the last binding goes; the boot epoch tag
   invalidates a handle that survived a reboot. *)
type shared = {
  s_handle : K.Modules.handle;
  s_epoch : int;
  mutable s_refs : int;
}

let shared_box : shared option ref = ref None

let shared_live () =
  match !shared_box with
  | Some s when s.s_epoch = K.Boot.epoch () && K.Modules.is_loaded driver ->
      Some s
  | Some _ ->
      shared_box := None;
      None
  | None -> None

(* env + device filter for the binding being created; only the probe the
   caller asked for claims a device (see E1000_drv.pending). *)
let pending : (Driver_env.t * string option * adapter option ref) option ref =
  ref None

let pci_probe pci =
  match !pending with
  | Some (env, want, out)
    when !out = None
         && (match want with None -> true | Some s -> s = K.Pci.slot pci) -> (
      match probe env pci with
      | Ok a ->
          out := Some a;
          Hashtbl.replace instances (K.Pci.slot pci) a;
          Ok ()
      | Error rc -> Error rc)
  | _ -> Error (-Errors.enodev)

let insmod ?dev env =
  let out = ref None in
  pending := Some (env, dev, out);
  Fun.protect ~finally:(fun () -> pending := None) @@ fun () ->
  let wrap s adapter =
    s.s_refs <- s.s_refs + 1;
    let t = { adapter; module_handle = Some s.s_handle } in
    if adapter.scope = driver && !active_box = None then active_box := Some t;
    Ok t
  in
  match shared_live () with
  | Some s -> (
      (* module already loaded: bind one more device to it *)
      K.Pci.rescan ?slot:dev ();
      match !out with
      | Some adapter -> wrap s adapter
      | None -> Error (-Errors.enodev))
  | None -> (
      let init () =
        (* a failed or faulting probe must leave the PCI core clean for
           the supervisor's retry *)
        let register () =
          K.Pci.register_driver ~name:driver
            ~ids:[ { K.Pci.id_vendor = vendor_id; id_device = device_id } ]
            ~probe:pci_probe ~remove
        in
        (match register () with
        | () -> ()
        | exception e ->
            K.Pci.unregister_driver driver;
            raise e);
        match !out with
        | Some _ -> Ok ()
        | None ->
            K.Pci.unregister_driver driver;
            Error (-Errors.enodev)
      in
      let exit () = K.Pci.unregister_driver driver in
      match K.Modules.insmod ~name:driver ~init ~exit with
      | Ok handle -> (
          match !out with
          | Some adapter ->
              let s =
                { s_handle = handle; s_epoch = K.Boot.epoch (); s_refs = 0 }
              in
              shared_box := Some s;
              wrap s adapter
          | None -> Error (-Errors.enodev))
      | Error rc -> Error rc)

let rmmod t =
  (match t.module_handle with
  | Some h ->
      (* release this binding's device only; siblings keep running *)
      K.Pci.detach ~slot:t.adapter.slot;
      t.module_handle <- None;
      (match shared_live () with
      | Some s when s.s_handle == h ->
          s.s_refs <- s.s_refs - 1;
          if s.s_refs <= 0 then begin
            K.Modules.rmmod h;
            shared_box := None
          end
      | _ -> ())
  | None -> ());
  match !active_box with Some t' when t' == t -> active_box := None | _ -> ()

(* --- power management --- *)

let suspend t =
  let a = t.adapter in
  a.env.Driver_env.upcall ~name:"ens1371_suspend" ~bytes:adapter_wire_bytes
    (fun () ->
      (* silence the DAC; period interrupts stop with it *)
      outl a S.reg_control 0)

let resume t =
  let a = t.adapter in
  a.env.Driver_env.upcall ~name:"ens1371_resume" ~bytes:adapter_wire_bytes
    (fun () ->
      (* the codec loses its registers across a power cycle *)
      init_codec a;
      if a.rate > 0 then outl a S.reg_src a.rate;
      (* playback that was running when we suspended picks back up *)
      if a.dac_on then outl a S.reg_control S.ctrl_dac2_en)

let init_latency_ns t =
  match t.module_handle with Some h -> K.Modules.init_latency_ns h | None -> 0

let substream t =
  match t.adapter.sub with
  | Some s -> s
  | None -> K.Panic.bug "ens1371: no substream"

let card t =
  match t.adapter.card with
  | Some c -> c
  | None -> K.Panic.bug "ens1371: no card"

let user_ptr_syncs t = t.adapter.user_syncs

module Core = struct
  type nonrec t = t

  let name = driver
  let bus = K.Hotplug.Pci
  let ids = [ (vendor_id, device_id) ]
  let probe env ~dev = insmod ?dev env
  let remove = rmmod
  let suspend = suspend
  let resume = resume

  let owns t slot =
    match Hashtbl.find_opt models slot with
    | Some m -> m == t.adapter.model
    | None -> false

  let deferred_syncs = user_ptr_syncs
  let init_latency_ns = init_latency_ns
end
