type t = { name : string; payload : exn }

type 'a key = {
  key_name : string;
  inject : 'a -> exn;
  project : exn -> 'a option;
}

let new_key (type a) name =
  let module M = struct
    exception E of a
  end in
  {
    key_name = name;
    inject = (fun v -> M.E v);
    project = (function M.E v -> Some v | _ -> None);
  }

let key_name k = k.key_name
let pack k v = { name = k.key_name; payload = k.inject v }
let unpack k u = k.project u.payload
let name u = u.name
