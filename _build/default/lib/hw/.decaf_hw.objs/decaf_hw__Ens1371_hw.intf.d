lib/hw/ens1371_hw.mli:
