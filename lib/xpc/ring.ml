module K = Decaf_kernel

type record = { kind : int; handle : int; arg0 : int; arg1 : int }

type stats = {
  mutable produced : int;
  mutable consumed : int;
  mutable doorbells : int;
  mutable overflow : int;
  mutable rejected : int;
  mutable discarded : int;
  mutable requeues : int;
  mutable high_water : int;
}

let mk_stats () =
  {
    produced = 0;
    consumed = 0;
    doorbells = 0;
    overflow = 0;
    rejected = 0;
    discarded = 0;
    requeues = 0;
    high_water = 0;
  }

(* Machine-wide totals, bumped alongside each ring's own counters. *)
let totals = mk_stats ()

type t = {
  r_name : string;
  r_target : Domain.t;
  r_guard : Guard.t;
  r_resolve : int -> (int, string) result;
  r_handler : record -> unit;
  slots : record option array;  (** fixed layout, preallocated *)
  born : int array;
      (** per-slot write stamp, read at drain for the slot-write to
          drain-consume timeline; dead entries are ignored once the slot
          empties *)
  mutable head : int;  (** next write index *)
  mutable occupancy : int;
  mutable draining : bool;
  s : stats;
}

let default_watermark = 64

(* Ring slots carry coalescable telemetry (stats generations, link
   flaps), so the latency bound is an order looser than the batch
   queue's 10 ms: the doorbell is meant to amortize to ~zero crossings
   per event, not to chase tail latency. *)
let default_flush_interval_ns = 100_000_000
let default_depth = 256
let enabled_flag = ref false
let watermark = ref default_watermark
let flush_interval_ns = ref default_flush_interval_ns
let depth_default = ref default_depth
let rings : (string, t) Hashtbl.t = Hashtbl.create 8
let all () = Hashtbl.fold (fun _ r acc -> r :: acc) rings []

(* Doorbell workers and timer belong to one machine lifetime, exactly
   like the batch flush infrastructure: tagged with the boot epoch and
   the dispatch pool width, lazily recreated when either is stale. *)
let infra : (int * int * K.Workqueue.t array * K.Timer.t) option ref =
  ref None

let rr = ref 0

let queue_job wqs job =
  let n = Array.length wqs in
  rr := (!rr + 1) mod n;
  K.Workqueue.queue_work wqs.(!rr) job

(* How long a doorbell worker backs off when the target domain is
   saturated (a user-level runtime services one XPC at a time). *)
let busy_retry_ns = 1_000_000
let tail r = (r.head - r.occupancy + Array.length r.slots) mod Array.length r.slots

(* Validate one slot kernel-side before believing it: the capability
   handle must resolve in the tracker (forged handles are how a hostile
   driver names kernel memory it was never given), then the plan-derived
   guard checks the remaining fields. Both layers count their own
   rejections; the discarded slot additionally counts as a boundary drop
   so status totals reconcile. *)
let slot_valid r rec_ =
  match r.r_resolve rec_.handle with
  | Error _ -> false
  | Ok _ -> (
      match
        ( Guard.int_field r.r_guard ~field:"kind" rec_.kind,
          Guard.int_field r.r_guard ~field:"arg0" rec_.arg0,
          Guard.int_field r.r_guard ~field:"arg1" rec_.arg1 )
      with
      | _, _, _ -> true
      | exception Boundary.Boundary_violation _ -> false)

let rec get_infra () =
  let e = K.Boot.epoch () in
  let size = min (Dispatch.workers ()) 4 in
  match !infra with
  | Some (e', s', wqs, timer) when e' = e && s' = size -> (wqs, timer)
  | _ ->
      let wqs =
        Array.init size (fun i ->
            K.Workqueue.create ~name:(Printf.sprintf "xpc-ring/%d" i))
      in
      let timer =
        K.Timer.create ~name:"xpc-ring-doorbell" (fun () ->
            (* interrupt context: defer the doorbell to process
               context, where the crossing may block *)
            List.iter
              (fun r -> queue_job wqs (fun () -> deferred_drain r))
              (all ()))
      in
      infra := Some (e, size, wqs, timer);
      (wqs, timer)

and deferred_drain r =
  if Channel.in_flight r.r_target >= Dispatch.workers () then begin
    let _, timer = get_infra () in
    if not (K.Timer.pending timer) then K.Timer.mod_timer_in timer busy_retry_ns
  end
  else drain r

(* One doorbell = ONE crossing with a zero-byte payload: the drain loop
   runs inside the call, reading slots out of the (conceptually shared)
   ring, so N produced records pay N slot reads plus a single crossing
   — no per-record marshaling at all. Draining is idempotent by
   construction (the fault model fires before the body runs), so a
   failed doorbell leaves every slot in place for the timer retry. *)
and drain r =
  if r.occupancy > 0 && not r.draining then begin
    (* The doorbell crossing may block; a drain reached from irq context
       or an irq-window hook must go through the workqueue deferral, and
       this names the ring if one ever slips through. *)
    K.Sched.assert_may_block ("ring " ^ r.r_name ^ " doorbell drain");
    K.Ktrace.note (K.Ktrace.Queue ("ring:" ^ r.r_name)) K.Ktrace.Wait;
    r.draining <- true;
    Fun.protect
      ~finally:(fun () -> r.draining <- false)
      (fun () ->
        match
          Channel.call ~target:r.r_target ~payload_bytes:0 ~idempotent:true
            ~context:"ring.doorbell" (fun () ->
              Boundary.scoped r.r_name (fun () ->
                  while r.occupancy > 0 do
                    let i = tail r in
                    let rec_ = Option.get r.slots.(i) in
                    r.slots.(i) <- None;
                    r.occupancy <- r.occupancy - 1;
                    let c = K.Cost.current.ring_slot_read_ns in
                    K.Clock.consume c
                    (* decaf-lint: consume-ok, slot age tracked as xpc.ring *);
                    Dispatch.note c;
                    K.Latency.observe_path "xpc.ring"
                      (max 0 (K.Clock.now () - r.born.(i)));
                    if slot_valid r rec_ then begin
                      r.r_handler rec_;
                      r.s.consumed <- r.s.consumed + 1;
                      totals.consumed <- totals.consumed + 1
                    end
                    else begin
                      r.s.rejected <- r.s.rejected + 1;
                      totals.rejected <- totals.rejected + 1;
                      Boundary.note_dropped ()
                    end
                  done))
        with
        | () ->
            r.s.doorbells <- r.s.doorbells + 1;
            totals.doorbells <- totals.doorbells + 1
        | exception Channel.Xpc_failure _ ->
            r.s.requeues <- r.s.requeues + 1;
            totals.requeues <- totals.requeues + 1;
            (* reprogram even a pending flush timer: the slots are aging
               in place, so the retry must come at the short interval,
               not at the full latency bound *)
            let _, timer = get_infra () in
            K.Timer.mod_timer_in timer busy_retry_ns)
  end

let create ~name ~target ~guard ~resolve ~handler ?depth () =
  let depth = max 1 (Option.value ~default:!depth_default depth) in
  let r =
    {
      r_name = name;
      r_target = target;
      r_guard = guard;
      r_resolve = resolve;
      r_handler = handler;
      slots = Array.make depth None;
      born = Array.make depth 0;
      head = 0;
      occupancy = 0;
      draining = false;
      s = mk_stats ();
    }
  in
  Hashtbl.replace rings name r;
  r

let produce r rec_ =
  let c = K.Cost.current.ring_slot_write_ns in
  K.Clock.consume c (* decaf-lint: consume-ok, birth stamped per slot below *);
  Dispatch.note c;
  if r.occupancy >= Array.length r.slots then begin
    (* Bounded depth: producing can run in irq context, so the overflow
       cannot raise — the record is dropped and counted, and the caller
       falls back to the delta-sync path. *)
    r.s.overflow <- r.s.overflow + 1;
    totals.overflow <- totals.overflow + 1;
    Boundary.scoped r.r_name Boundary.note_dropped;
    K.Klog.printk K.Klog.Warning
      "xpc-ring: %s full at depth %d, dropping record kind %d" r.r_name
      (Array.length r.slots) rec_.kind;
    false
  end
  else begin
    K.Ktrace.note (K.Ktrace.Queue ("ring:" ^ r.r_name)) K.Ktrace.Signal;
    r.slots.(r.head) <- Some rec_;
    r.born.(r.head) <- K.Clock.now ();
    r.head <- (r.head + 1) mod Array.length r.slots;
    r.occupancy <- r.occupancy + 1;
    r.s.produced <- r.s.produced + 1;
    totals.produced <- totals.produced + 1;
    if r.occupancy > r.s.high_water then begin
      r.s.high_water <- r.occupancy;
      if r.occupancy > totals.high_water then
        totals.high_water <- r.occupancy
    end;
    (let wqs, timer = get_infra () in
     if not r.draining then
       if r.occupancy >= !watermark then
         queue_job wqs (fun () -> deferred_drain r)
       else if not (K.Timer.pending timer) then
         K.Timer.mod_timer_in timer !flush_interval_ns);
    true
  end

let drain_all () =
  List.iter drain (all ());
  match !infra with
  | Some (e, _, wqs, _) when e = K.Boot.epoch () ->
      Array.iter K.Workqueue.flush wqs
  | _ -> ()

let destroy r =
  (* Surprise removal: no consumer will ever drain again, so whatever
     is still occupied is dropped with count — never silently. *)
  K.Ktrace.note (K.Ktrace.Queue ("ring:" ^ r.r_name)) K.Ktrace.Wait;
  Boundary.scoped r.r_name (fun () ->
      while r.occupancy > 0 do
        let i = tail r in
        r.slots.(i) <- None;
        r.occupancy <- r.occupancy - 1;
        r.s.discarded <- r.s.discarded + 1;
        totals.discarded <- totals.discarded + 1;
        Boundary.note_dropped ()
      done);
  (match Hashtbl.find_opt rings r.r_name with
  | Some r' when r' == r -> Hashtbl.remove rings r.r_name
  | _ -> ())

let find ~name = Hashtbl.find_opt rings name
let name r = r.r_name
let occupancy r = r.occupancy
let pending () = Hashtbl.fold (fun _ r acc -> acc + r.occupancy) rings 0
let stats_of r = r.s
let stats () = totals

let snapshot () =
  {
    produced = totals.produced;
    consumed = totals.consumed;
    doorbells = totals.doorbells;
    overflow = totals.overflow;
    rejected = totals.rejected;
    discarded = totals.discarded;
    requeues = totals.requeues;
    high_water = totals.high_water;
  }

let set_enabled v = enabled_flag := v
let enabled () = !enabled_flag

let configure ?watermark:w ?flush_interval_ns:i ?depth:d () =
  Option.iter (fun v -> watermark := max 1 v) w;
  Option.iter (fun v -> flush_interval_ns := max 1 v) i;
  Option.iter (fun v -> depth_default := max 1 v) d

let reset () =
  Hashtbl.reset rings;
  infra := None;
  enabled_flag := false;
  watermark := default_watermark;
  flush_interval_ns := default_flush_interval_ns;
  depth_default := default_depth;
  totals.produced <- 0;
  totals.consumed <- 0;
  totals.doorbells <- 0;
  totals.overflow <- 0;
  totals.rejected <- 0;
  totals.discarded <- 0;
  totals.requeues <- 0;
  totals.high_water <- 0
