lib/kernel/boot.mli:
