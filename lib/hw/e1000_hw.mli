(** Register-level model of an Intel E1000 (PRO/1000) gigabit NIC.

    The device decodes a 128 KiB MMIO window (BAR 0). As with
    {!Rtl8139}, descriptor-ring payloads move through explicit DMA
    queues; control flow — reset, EEPROM reads through EERD, PHY access
    through MDIC, interrupt cause/mask, ring head/tail — follows the real
    part. The model answers to any of the ~50 device ids the Linux
    driver's id table lists; the id only selects cosmetic details. *)

type t

(** MMIO register offsets. *)

val reg_ctrl : int
val reg_status : int
val reg_eerd : int
val reg_mdic : int
val reg_icr : int
val reg_ics : int
val reg_ims : int
val reg_imc : int
val reg_rctl : int
val reg_tctl : int
val reg_tdh : int
val reg_tdt : int

val reg_itr : int
(** Interrupt throttling register: minimum inter-interrupt interval in
    256 ns units (0 disables throttling, as after reset). Causes keep
    accumulating in ICR while the window is closed and are delivered by
    one coalesced interrupt when it opens. *)

val reg_rdh : int
val reg_rdt : int

(** Bits. *)

val ctrl_rst : int
val ctrl_slu : int
val status_lu : int
val eerd_start : int
val eerd_done : int
val mdic_op_write : int
val mdic_op_read : int
val mdic_ready : int
val icr_txdw : int
val icr_lsc : int
val icr_rxt0 : int
val rctl_en : int
val tctl_en : int
val n_tx_desc : int
val n_rx_desc : int

val create :
  mmio_base:int -> irq:int -> device_id:int -> mac:string -> link:Link.t -> t

val destroy : t -> unit

val stage_tx : t -> bytes -> unit
(** DMA: append a frame to the transmit ring's staged buffers; it is sent
    when the driver advances TDT past it (with TCTL.EN set). *)

val take_rx : t -> (bytes * Decaf_kernel.Clock.track) option
(** Pop the oldest received frame together with its wire-arrival birth
    stamp; the driver completes the stamp when the packet reaches
    [netif_rx], closing the "net.rx" end-to-end timeline. *)

val rx_pending : t -> int
val phy : t -> Phy.t
val device_id : t -> int
val tx_count : t -> int
val rx_count : t -> int

val eeprom : t -> Eeprom.t
