lib/kernel/workqueue.ml: Panic Queue Sched Sync
