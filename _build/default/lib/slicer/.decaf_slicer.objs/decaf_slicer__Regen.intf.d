lib/slicer/regen.mli: Decaf_xpc Slicer
