lib/decaf/params.mli:
