(** Table 1: size of the Decaf Drivers infrastructure.

    The paper reports the lines of code in the runtime support (Jeannie
    helpers, XPC in the decaf and nuclear runtimes) and in DriverSlicer
    (CIL OCaml, Python scripts, XDR compilers). This reproduction's
    analogues are counted from the repository's own sources. *)

type row = { component : string; loc : int }

type t = {
  runtime_rows : row list;
  slicer_rows : row list;
  runtime_total : int;
  slicer_total : int;
  grand_total : int;
}

val measure : unit -> t
(** Counts non-comment LoC of the corresponding libraries. Requires the
    repository sources on disk (found by walking up from the current
    directory to the dune-project). *)

val render : t -> string
