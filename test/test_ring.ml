(* Tests for the zero-copy shared-ring XPC path (Xpc.Ring): doorbell
   coalescing, bounded depth, kernel-side slot validation, failed
   doorbells, and the PM/unbind flush discipline through the unified
   driver model. *)

open Decaf_xpc
module K = Decaf_kernel
module Hw = Decaf_hw
module FI = K.Faultinject
module Plan = Marshal_plan
module EO = Decaf_drivers.E1000_objects
module E1000_drv = Decaf_drivers.E1000_drv
module Driver_core = Decaf_drivers.Driver_core
module Driver_env = Decaf_drivers.Driver_env
module Scenario = Decaf_experiments.Scenario

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot () =
  K.Boot.boot ();
  Domain.reset ();
  Channel.reset_stats ();
  Channel.reset_config ();
  Batch.reset ();
  Ring.reset ();
  Dispatch.reset ();
  Guard.reset ();
  Plan.set_delta_enabled false;
  Decaf_runtime.Runtime.reset ();
  Addr.reset ()

let in_thread f =
  ignore (K.Sched.spawn ~name:"test" f);
  K.Sched.run ()

let crossings () = (Channel.snapshot ()).Channel.kernel_user_calls

(* produced = consumed + rejected + discarded + pending: overflow slots
   were never accepted, so every accepted slot is accounted for exactly
   once. *)
let invariant () =
  let s = Ring.snapshot () in
  check "produced = consumed + rejected + discarded + pending"
    s.Ring.produced
    (s.Ring.consumed + s.Ring.rejected + s.Ring.discarded + Ring.pending ())

(* A standalone test ring: its own slot plan and guard, a real handle
   issued by the kernel tracker. *)
let test_plan =
  Plan.make ~type_id:"test_slot"
    [ ("kind", Plan.Write); ("arg0", Plan.Write); ("arg1", Plan.Write) ]

let test_guard =
  Guard.make test_plan
    [
      ("kind", Guard.Enum [ 1; 2 ]);
      ("arg0", Guard.Non_negative);
      ("arg1", Guard.Range (0, 1));
    ]

let fresh_ring ?depth ~handler () =
  let kt = Decaf_runtime.Runtime.kernel_tracker () in
  let addr = Addr.alloc ~size:64 in
  let handle = Objtracker.issue kt ~addr ~type_id:"test_slot" in
  let resolve h = Objtracker.resolve kt ~handle:h ~type_id:"test_slot" in
  let ring =
    Ring.create ~name:"t" ~target:Domain.Driver_lib ~guard:test_guard ~resolve
      ~handler ?depth ()
  in
  (ring, handle)

let slot ?(kind = 1) ~handle ?(arg0 = 0) ?(arg1 = 0) () =
  { Ring.kind; handle; arg0; arg1 }

(* --- doorbell coalescing --- *)

let test_watermark_doorbell_fifo () =
  boot ();
  Ring.configure ~watermark:4 ();
  let order = ref [] in
  in_thread (fun () ->
      let ring, handle =
        fresh_ring ~handler:(fun r -> order := r.Ring.arg0 :: !order) ()
      in
      let before = crossings () in
      for i = 1 to 4 do
        check_bool "slot accepted" true
          (Ring.produce ring (slot ~handle ~arg0:i ()))
      done;
      (* the watermark queued a doorbell on the workqueue; let it run *)
      K.Sched.sleep_ns 1_000_000;
      check "four slots, one doorbell crossing" 1 (crossings () - before);
      check "nothing left occupied" 0 (Ring.occupancy ring));
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4 ] (List.rev !order);
  let s = Ring.snapshot () in
  check "produced" 4 s.Ring.produced;
  check "consumed" 4 s.Ring.consumed;
  check "one doorbell" 1 s.Ring.doorbells;
  check "high water" 4 s.Ring.high_water;
  invariant ()

let test_timer_bounds_latency () =
  boot ();
  let ran = ref 0 in
  in_thread (fun () ->
      let ring, handle = fresh_ring ~handler:(fun _ -> incr ran) () in
      ignore (Ring.produce ring (slot ~handle ()));
      ignore (Ring.produce ring (slot ~handle ()));
      check "below watermark: still occupied" 2 (Ring.occupancy ring);
      check "no eager crossing" 0 !ran;
      (* default flush interval is 100 ms — an order looser than the
         batch queue's latency bound *)
      K.Sched.sleep_ns 150_000_000;
      check "timer rang the doorbell" 2 !ran;
      check "drained" 0 (Ring.occupancy ring));
  check "one doorbell for both slots" 1 (Ring.snapshot ()).Ring.doorbells;
  invariant ()

(* --- bounded depth --- *)

let test_overflow_drops_and_counts () =
  boot ();
  in_thread (fun () ->
      let ring, handle = fresh_ring ~depth:4 ~handler:(fun _ -> ()) () in
      (* a tight producing loop, no yield: nothing drains the ring *)
      let accepted = ref 0 in
      for i = 1 to 10 do
        if Ring.produce ring (slot ~handle ~arg0:i ()) then incr accepted
      done;
      check "ring capped at its depth" 4 (Ring.occupancy ring);
      check "exactly depth slots accepted" 4 !accepted;
      let s = Ring.stats_of ring in
      check "excess slots dropped, not queued" 6 s.Ring.overflow;
      check "drops attributed to the ring's scope" 6 (Boundary.dropped_for "t");
      invariant ();
      (* overflow is graceful degradation, not a fault: the bounded ring
         still delivers what it holds *)
      Ring.drain ring;
      check "the bounded ring still delivers" 4 (Ring.stats_of ring).Ring.consumed);
  invariant ()

(* --- kernel-side slot validation --- *)

let test_hostile_slots_rejected () =
  boot ();
  let applied = ref 0 in
  in_thread (fun () ->
      let ring, handle = fresh_ring ~handler:(fun _ -> incr applied) () in
      (* a forged handle, an out-of-enum kind, an out-of-range arg —
         and one honest record *)
      ignore (Ring.produce ring (slot ~handle:0x4bad_f00d ()));
      ignore (Ring.produce ring (slot ~kind:9 ~handle ()));
      ignore (Ring.produce ring (slot ~handle ~arg1:5 ()));
      ignore (Ring.produce ring (slot ~handle ~arg0:7 ()));
      Ring.drain ring;
      check "only the honest slot reached the handler" 1 !applied;
      let s = Ring.stats_of ring in
      check "three slots rejected" 3 s.Ring.rejected;
      check "rejected slots also count as boundary drops" 3
        (Boundary.dropped_for "t");
      check_bool "validation layers counted their rejections" true
        (Boundary.totals.Boundary.rejected >= 3);
      check "drained regardless" 0 (Ring.occupancy ring));
  invariant ()

(* --- failed doorbells --- *)

let test_failed_doorbell_keeps_slots () =
  boot ();
  let ran = ref 0 in
  in_thread (fun () ->
      let ring, handle = fresh_ring ~handler:(fun _ -> incr ran) () in
      ignore (Ring.produce ring (slot ~handle ()));
      ignore (Ring.produce ring (slot ~handle ()));
      FI.arm ~seed:7
        [
          FI.spec ~site:"xpc.ring.doorbell" ~kind:FI.Xpc_timeout
            ~trigger:FI.Always ();
        ];
      Ring.drain ring;
      (* the fault fires before the drain body runs: nothing consumed,
         nothing lost — the slots sit in shared memory for the retry *)
      check "no slot consumed" 0 !ran;
      check "slots still in place" 2 (Ring.occupancy ring);
      check "requeue counted" 1 (Ring.stats_of ring).Ring.requeues;
      FI.disarm ();
      (* the failure reprogrammed the timer to the short retry interval *)
      K.Sched.sleep_ns 5_000_000;
      check "retried drain delivered exactly once" 2 !ran;
      check "empty after retry" 0 (Ring.occupancy ring));
  check "exactly one doorbell succeeded" 1 (Ring.snapshot ()).Ring.doorbells;
  invariant ()

(* --- teardown --- *)

let test_destroy_discards_with_count () =
  boot ();
  in_thread (fun () ->
      let ring, handle = fresh_ring ~handler:(fun _ -> ()) () in
      for i = 1 to 3 do
        ignore (Ring.produce ring (slot ~handle ~arg0:i ()))
      done;
      Ring.destroy ring;
      check "leftover slots discarded, never silently" 3
        (Ring.stats_of ring).Ring.discarded;
      check "discards attributed to the ring's scope" 3
        (Boundary.dropped_for "t");
      check "unregistered" 0 (Ring.occupancy ring);
      check_bool "gone from the registry" true (Ring.find ~name:"t" = None));
  invariant ()

(* --- PM and surprise removal through the unified driver model --- *)

let setup_e1000 () =
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  link

let insmod_ok name =
  match Driver_core.insmod name ~mode:Driver_env.Decaf with
  | Ok () -> ()
  | Error rc -> Alcotest.failf "%s insmod failed: %d" name rc

let ok_or what = function
  | Ok () -> ()
  | Error rc -> Alcotest.failf "%s failed: %d" what rc

let java_view ka =
  Objtracker.find
    (Decaf_runtime.Runtime.java_tracker ())
    ~addr:(EO.adapter_handle ka) EO.adapter_key

let test_suspend_flushes_nonempty_ring () =
  Scenario.boot ();
  Ring.set_enabled true;
  let link = setup_e1000 () in
  Scenario.in_thread (fun () ->
      insmod_ok "e1000";
      let t = Option.get (E1000_drv.active ()) in
      let ka = E1000_drv.kernel_adapter t in
      let nd = E1000_drv.netdev t in
      ok_or "e1000-open" (K.Netcore.open_dev nd);
      ignore
        (Decaf_workloads.Netperf.send ~netdev:nd ~link ~duration_ns:1_000_000
           ~msg_bytes:1500);
      let ring = Option.get (Ring.find ~name:"e1000") in
      let kt = Decaf_runtime.Runtime.kernel_tracker () in
      let tracked_before = Objtracker.handle_count kt in
      let consumed_before = (Ring.stats_of ring).Ring.consumed in
      for _ = 1 to 3 do
        check_bool "stats slot accepted" true
          (Ring.produce ring (EO.ring_stats_record ka))
      done;
      (* the driver's own notify paths may have slots pending too *)
      let occ = Ring.occupancy ring in
      check_bool "ring non-empty going into suspend" true (occ >= 3);
      ok_or "e1000-suspend" (Driver_core.suspend "e1000");
      (* the PM flush drained the ring while the device was still
         powered: delivered, not discarded *)
      check "ring empty after suspend" 0 (Ring.occupancy ring);
      check "slots delivered to the user view" (consumed_before + occ)
        (Ring.stats_of ring).Ring.consumed;
      check "nothing discarded by a clean suspend" 0
        (Ring.stats_of ring).Ring.discarded;
      let j = Option.get (java_view ka) in
      check "user view caught up through the ring" ka.EO.k_stats_gen
        j.EO.j_stats_gen;
      check "ring slots leaked no tracker entries" tracked_before
        (Objtracker.handle_count kt);
      invariant ();
      (* resume resyncs the full view; the driver keeps working *)
      ok_or "e1000-resume" (Driver_core.resume "e1000");
      let r =
        Decaf_workloads.Netperf.send ~netdev:nd ~link ~duration_ns:1_000_000
          ~msg_bytes:1500
      in
      check_bool "traffic flows after resume" true
        (r.Decaf_workloads.Netperf.packets > 0);
      check "view still consistent after resume resync" ka.EO.k_stats_gen
        (Option.get (java_view ka)).EO.j_stats_gen;
      Driver_core.rmmod "e1000";
      check_bool "ring unregistered at unbind" true
        (Ring.find ~name:"e1000" = None);
      check "machine-wide rings empty" 0 (Ring.pending ());
      invariant ())

let test_surprise_removal_discards_with_count () =
  Scenario.boot ();
  Ring.set_enabled true;
  let link = setup_e1000 () in
  Scenario.in_thread (fun () ->
      insmod_ok "e1000";
      let t = Option.get (E1000_drv.active ()) in
      let ka = E1000_drv.kernel_adapter t in
      let nd = E1000_drv.netdev t in
      ok_or "e1000-open" (K.Netcore.open_dev nd);
      ignore
        (Decaf_workloads.Netperf.send ~netdev:nd ~link ~duration_ns:1_000_000
           ~msg_bytes:1500);
      let ring = Option.get (Ring.find ~name:"e1000") in
      let kt = Decaf_runtime.Runtime.kernel_tracker () in
      let tracked_before = Objtracker.handle_count kt in
      let dropped_before = Boundary.dropped_for "e1000" in
      for _ = 1 to 3 do
        ignore (Ring.produce ring (EO.ring_stats_record ka))
      done;
      (* the driver's own notify paths may have slots pending too *)
      let occ = Ring.occupancy ring in
      check_bool "ring non-empty going into eject" true (occ >= 3);
      (* the doorbell can no longer cross (the runtime died with the
         device): the eject path must drop the slots with count, never
         drain them into a dead binding or leak them *)
      FI.arm ~seed:7
        [
          FI.spec ~site:"xpc.ring.doorbell" ~kind:FI.Xpc_timeout
            ~trigger:FI.Always ();
        ];
      Driver_core.eject "e1000";
      FI.disarm ();
      (* everything occupied at eject — plus whatever the teardown path
         itself produced (the link-down event) — was discarded *)
      check_bool "undeliverable slots discarded at unbind" true
        ((Ring.stats_of ring).Ring.discarded >= occ);
      check "nothing was drained into the dead binding" 0
        (Ring.stats_of ring).Ring.consumed;
      check_bool "discards counted as boundary drops" true
        (Boundary.dropped_for "e1000" >= dropped_before + 3);
      check_bool "ring unregistered by surprise removal" true
        (Ring.find ~name:"e1000" = None);
      check "no slot left anywhere" 0 (Ring.pending ());
      check "zero leaked tracker entries" tracked_before
        (Objtracker.handle_count kt);
      Alcotest.(check string)
        "driver removed" "removed"
        (Driver_core.lifecycle_name (Driver_core.state "e1000"));
      invariant ())

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decaf_ring"
    [
      ( "ring",
        [
          tc "watermark doorbell is FIFO, one crossing"
            test_watermark_doorbell_fifo;
          tc "timer bounds latency" test_timer_bounds_latency;
        ] );
      ( "ring-bounds",
        [ tc "overflow drops and counts" test_overflow_drops_and_counts ] );
      ( "ring-adversarial",
        [ tc "hostile slots rejected at drain" test_hostile_slots_rejected ] );
      ( "ring-faults",
        [
          tc "failed doorbell keeps slots intact"
            test_failed_doorbell_keeps_slots;
        ] );
      ( "ring-teardown",
        [
          tc "destroy discards with count" test_destroy_discards_with_count;
          tc "suspend flushes a non-empty ring"
            test_suspend_flushes_nonempty_ring;
          tc "surprise removal discards with count"
            test_surprise_removal_discards_with_count;
        ] );
    ]
