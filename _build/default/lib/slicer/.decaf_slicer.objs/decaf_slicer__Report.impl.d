lib/slicer/report.ml: Annot Decaf_minic Format List Loc_count Partition Printf Slicer
