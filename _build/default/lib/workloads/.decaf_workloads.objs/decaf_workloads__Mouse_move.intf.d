lib/workloads/mouse_move.mli: Decaf_hw Decaf_kernel Format
