(** Virtual-time costs (in nanoseconds) charged by the simulated kernel.

    All costs are mutable so that experiments can calibrate them; the
    defaults are chosen so that the evaluation tables keep the shape
    reported in the paper (steady-state parity, multi-second decaf
    initialization). *)

type t = {
  mutable syscall_ns : int;  (** entering the kernel from an application *)
  mutable irq_dispatch_ns : int;  (** hardware interrupt entry/exit *)
  mutable spinlock_ns : int;  (** uncontended spinlock acquire+release *)
  mutable semaphore_ns : int;  (** uncontended semaphore down+up *)
  mutable ctx_switch_ns : int;  (** scheduler context switch *)
  mutable port_io_ns : int;  (** one programmed-I/O port access *)
  mutable mmio_ns : int;  (** one memory-mapped register access *)
  mutable xpc_kernel_user_ns : int;  (** kernel<->user XPC crossing, fixed *)
  mutable xpc_c_java_ns : int;  (** C<->Java XPC crossing, fixed *)
  mutable marshal_byte_ns : int;  (** per byte marshaled across kernel/user *)
  mutable remarshal_byte_ns : int;
      (** per byte for the C->Java re-marshal step (the paper notes data is
          unmarshaled in C and re-marshaled in Java) *)
  mutable objtracker_lookup_ns : int;  (** one object-tracker lookup *)
  mutable xpc_dispatch_ns : int;
      (** per-upcall worker-pool admission overhead; charged to the
          serving worker's lane in the dispatch accounting, not to the
          global clock *)
  mutable guard_check_ns : int;
      (** one boundary-validation check on an inbound field (range/enum/
          length/writability), charged per validated field when
          [Decaf_xpc.Guard] is enabled *)
  mutable ring_slot_write_ns : int;
      (** writing one fixed-layout record into a shared XPC ring slot —
          a handful of stores into already-mapped memory, orders of
          magnitude below a crossing *)
  mutable ring_slot_read_ns : int;
      (** reading one record out of a shared ring slot on the consumer
          side, before guard validation *)
  mutable jvm_startup_ns : int;  (** one-time managed-runtime start cost *)
}

val current : t
(** The cost table used by the running simulation. *)

val reset : unit -> unit
(** Restore every cost to its default. *)
