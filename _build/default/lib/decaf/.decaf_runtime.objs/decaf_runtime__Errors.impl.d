lib/decaf/errors.ml: Decaf_kernel
