(* Error handling in the decaf E1000 (the paper's section 5.1 and
   Figure 4):

   1. the static analysis finds the 28 broken error paths in the legacy
      return-code driver;
   2. the running decaf driver uses checked exceptions with nested
      cleanup — we inject allocation failures at each stage of
      e1000_open and verify nothing leaks and the driver recovers.

   Run with:  dune exec examples/error_handling_demo.exe *)

module K = Decaf_kernel
module Hw = Decaf_hw
open Decaf_drivers

let boot () =
  K.Boot.boot ();
  Decaf_xpc.Domain.reset ();
  Decaf_xpc.Channel.reset_stats ();
  Decaf_runtime.Runtime.reset ()

let () =
  (* part 1: static analysis over the legacy C *)
  let cs = Decaf_experiments.Casestudy.measure () in
  Printf.printf "legacy driver: %d broken error-handling sites found\n"
    (List.length cs.Decaf_experiments.Casestudy.violations);
  Printf.printf
    "exception rewrite deletes %d of %d hardware-layer lines (%.1f%%)\n\n"
    cs.Decaf_experiments.Casestudy.lines_removed
    cs.Decaf_experiments.Casestudy.hw_layer_loc
    cs.Decaf_experiments.Casestudy.savings_percent;

  (* part 2: fault injection against the running decaf driver *)
  List.iter
    (fun (nth, stage) ->
      boot ();
      let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
      ignore
        (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
           ~mac:"\x00\x1b\x21\x0a\x0b\x0c" ~link ());
      ignore
        (K.Sched.spawn ~name:"inject" (fun () ->
             let t =
               match E1000_drv.insmod (Driver_env.decaf ()) with
               | Ok t -> t
               | Error rc -> failwith (Printf.sprintf "insmod: %d" rc)
             in
             let nd = E1000_drv.netdev t in
             K.Kmem.inject_failure ~after:nth;
             (match K.Netcore.open_dev nd with
             | Error rc ->
                 Printf.printf "open failed at %-22s -> errno %d" stage rc
             | Ok () -> print_string "open unexpectedly succeeded");
             K.Kmem.clear_injection ();
             let live, bytes = K.Kmem.outstanding () in
             Printf.printf "; leaked allocations: %d (%d bytes)" live bytes;
             (match K.Netcore.open_dev nd with
             | Ok () -> print_endline "; recovery open: OK"
             | Error rc -> Printf.printf "; recovery open FAILED (%d)\n" rc);
             E1000_drv.rmmod t));
      K.Sched.run ())
    [ (1, "tx ring allocation"); (2, "rx ring allocation") ];
  print_endline
    "\n(each failure unwound exactly the resources acquired before it —\n\
    \ the nested handlers of the paper's Figure 4)"
