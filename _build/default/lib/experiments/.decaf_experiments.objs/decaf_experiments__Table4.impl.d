lib/experiments/table4.ml: Buffer Decaf_drivers Printf
