(* Acceptance test for the batched-XPC fast path: the optimization must
   actually pay for itself on the paper's heaviest workload (netperf on
   the E1000 decaf driver) without giving back throughput. *)

module E = Decaf_experiments

let check_bool = Alcotest.(check bool)

let test_netperf_e1000_gain () =
  let duration_ns = 300_000_000 in
  let off =
    E.Xpcperf.e1000_net `Send
      { E.Xpcperf.batching = false; delta = false }
      ~duration_ns
  in
  let on =
    E.Xpcperf.e1000_net `Send
      { E.Xpcperf.batching = true; delta = true }
      ~duration_ns
  in
  let fi = float_of_int in
  Alcotest.(check string) "same scenario" off.E.Xpcperf.scenario
    on.E.Xpcperf.scenario;
  check_bool
    (Printf.sprintf "crossings down >=30%% (%d -> %d)" off.E.Xpcperf.crossings
       on.E.Xpcperf.crossings)
    true
    (fi on.E.Xpcperf.crossings <= 0.7 *. fi off.E.Xpcperf.crossings);
  check_bool
    (Printf.sprintf "bytes_marshaled down >=20%% (%d -> %d)"
       off.E.Xpcperf.bytes on.E.Xpcperf.bytes)
    true
    (fi on.E.Xpcperf.bytes <= 0.8 *. fi off.E.Xpcperf.bytes);
  check_bool
    (Printf.sprintf "throughput holds (%.2f vs %.2f Mb/s)"
       (E.Xpcperf.perf off) (E.Xpcperf.perf on))
    true
    (E.Xpcperf.perf on >= 0.99 *. E.Xpcperf.perf off);
  check_bool "every deferred call was delivered" true
    (on.E.Xpcperf.posted = on.E.Xpcperf.delivered);
  check_bool "batching actually batched" true
    (on.E.Xpcperf.flushes > 0
    && on.E.Xpcperf.flushes < on.E.Xpcperf.delivered)

let test_json_roundtrip () =
  let sample scenario batching delta =
    {
      E.Xpcperf.scenario;
      config = { E.Xpcperf.batching; delta };
      crossings = 123;
      c_java = 45;
      bytes = 6789;
      posted = 10;
      delivered = 10;
      flushes = 3;
      perf_milli = 987_654;
      perf_unit = "Mb/s";
    }
  in
  let samples =
    [ sample "e1000-netperf-send" false false; sample "psmouse-move" true true ]
  in
  let duration_ns, parsed =
    E.Xpcperf.of_json (E.Xpcperf.to_json ~duration_ns:42_000_000 samples)
  in
  Alcotest.(check (option int)) "duration survives" (Some 42_000_000)
    duration_ns;
  check_bool "samples survive verbatim" true (parsed = samples)

let () =
  Alcotest.run "xpcperf"
    [
      ( "acceptance",
        [
          Alcotest.test_case "netperf e1000 batching+delta pays" `Quick
            test_netperf_e1000_gain;
          Alcotest.test_case "trajectory json roundtrip" `Quick
            test_json_roundtrip;
        ] );
    ]
