(** Fixed-bucket log-linear latency histograms and the per-path registry.

    Values are integer nanoseconds. The layout is 64 exact unit buckets
    for [0, 64), then one octave per power of two, each split into 64
    linear sub-buckets, up to 2^50 ns; the relative quantization error is
    bounded by 1/64. Samples beyond the last bucket land in a separate
    overflow count and report the true maximum from {!percentile}.

    The module has no dependency on {!Clock}: the clock stamps tracked
    events and records here, never the other way around. *)

type t

val create : unit -> t
val clear : t -> unit
(** Zero every bucket and counter, keeping the allocation. *)

val observe : t -> int -> unit
(** Record one sample (negative values clamp to 0). *)

val count : t -> int
(** Total samples recorded, overflow included. *)

val overflow_count : t -> int
(** Samples that fell beyond the last bucket. *)

val min_ns : t -> int
val max_ns : t -> int
val sum_ns : t -> int
val mean_ns : t -> float

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0, 1]: the upper bound of the bucket
    holding the sample of rank [ceil (p * count)], capped at the true
    maximum; 0 on an empty histogram. *)

val merge : into:t -> t -> unit
(** Add [src]'s buckets and counters into [into]. *)

val merged : t list -> t
(** Fresh histogram holding the sum of the arguments (per-lane merge). *)

(** {2 Bucket introspection (tests, exactness proofs)} *)

val num_buckets : int
val bucket_index : int -> int
(** Bucket index for a value; [>= num_buckets] means overflow. *)

val bucket_bounds : int -> int * int
(** Inclusive [(low, high)] value range of a bucket index. *)

(** {2 Path registry}

    One histogram per named event path, created on first use. The
    registry is cleared by [Clock.reset], so every boot starts with
    empty timelines. *)

val get : string -> t
val observe_path : string -> int -> unit
val find : string -> t option
val paths : unit -> string list
(** Registered paths, sorted. *)

val clear_paths : unit -> unit
(** Zero every registered histogram, keeping the paths (phase windows). *)

val reset : unit -> unit
(** Drop every registered path. *)
