lib/experiments/table1.ml: Array Buffer Decaf_slicer Filename List Printf Sys
