lib/kernel/usbcore.ml: Bytes Klog Option Panic Sched Sync
