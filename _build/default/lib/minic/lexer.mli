(** Hand-written lexer for the mini-C language.

    Comments are skipped for parsing, but every token carries its source
    position so later passes (notably the source splitter, §3.2.1) can
    address the original text, comments included. *)

exception Lex_error of string * Loc.t

val tokenize : string -> (Token.t * Loc.t) list
(** Tokenize a whole source text; the last element is [Eof]. *)
