lib/experiments/table3.mli:
