(** The netperf workload: bulk TCP-style send and receive streams over a
    simulated NIC, reporting throughput and CPU utilization as the
    paper's Table 3 does. *)

type result = {
  throughput_mbps : float;  (** raw: wire bytes over elapsed virtual time *)
  goodput_mbps : float;
      (** cost-adjusted: wire bytes over elapsed time {e minus} the XPC
          work an N-worker runtime overlaps
          ({!Decaf_xpc.Dispatch.overlap_saved_ns} delta — total lane time
          beyond the critical path). Elapsed time already contains every
          dispatch charge fully serialized, so the serial (one-worker)
          goodput equals raw throughput and worker count moves this
          metric without double-counting the dispatch work. *)
  cpu_utilization : float;
  elapsed_ns : int;
  xpc_overhead_ns : int;  (** dispatch critical-path ns during the run *)
  packets : int;
}

val send :
  netdev:Decaf_kernel.Netcore.t ->
  link:Decaf_hw.Link.t ->
  duration_ns:int ->
  msg_bytes:int ->
  result
(** Stream messages out as fast as the device accepts them, for the
    given virtual duration. Runs in the calling thread. *)

val recv :
  netdev:Decaf_kernel.Netcore.t ->
  link:Decaf_hw.Link.t ->
  duration_ns:int ->
  msg_bytes:int ->
  result
(** Have the link peer saturate the receive path; counts packets the
    stack delivers. *)

val pp : Format.formatter -> result -> unit
