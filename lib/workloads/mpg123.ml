module K = Decaf_kernel
module Hw = Decaf_hw
module Xpc = Decaf_xpc

type result = {
  seconds_played : float;
  cpu_utilization : float;
  underruns : int;
  periods : int;
  xpc_overhead_ns : int;
  realtime_factor : float;
}

let pcm_byte_rate = 44_100 * 4
let chunk_bytes = 8_192

(* Decoding one chunk of MP3 into PCM costs real CPU. *)
let decode_cost = 120_000

let play ~substream ~model ~duration_ns =
  let t0 = K.Clock.now () and busy0 = K.Clock.busy_ns () in
  let xpc0 = Xpc.Dispatch.overhead_ns () in
  let saved0 = Xpc.Dispatch.overlap_saved_ns () in
  (match K.Sndcore.pcm_open substream with
  | Ok () -> ()
  | Error rc -> K.Panic.bug "mpg123: pcm open failed (%d)" rc);
  (match
     K.Sndcore.pcm_set_params substream ~rate:44_100 ~channels:2 ~sample_bits:16
   with
  | Ok () -> ()
  | Error rc -> K.Panic.bug "mpg123: hw_params failed (%d)" rc);
  (match K.Sndcore.pcm_prepare substream with
  | Ok () -> ()
  | Error rc -> K.Panic.bug "mpg123: prepare failed (%d)" rc);
  let total_bytes = pcm_byte_rate * duration_ns / 1_000_000_000 in
  (* deltas against the model's cumulative counters, so repeated plays
     over one device (PM cycles, soak phases) each measure their own
     stream rather than comparing against all-time totals *)
  let consumed0 = Hw.Ens1371_hw.consumed model in
  let underruns0 = Hw.Ens1371_hw.underruns model in
  let periods0 = Hw.Ens1371_hw.periods_played model in
  (* prime one buffer's worth, then start the DAC *)
  K.Clock.consume decode_cost;
  K.Sndcore.pcm_write substream (min chunk_bytes total_bytes);
  K.Sndcore.pcm_start substream;
  let written = ref (min chunk_bytes total_bytes) in
  while !written < total_bytes do
    let n = min chunk_bytes (total_bytes - !written) in
    K.Clock.consume decode_cost;
    K.Sndcore.pcm_write substream n;
    written := !written + n
  done;
  (* drain *)
  while Hw.Ens1371_hw.consumed model - consumed0 < total_bytes do
    K.Sched.sleep_ns 5_000_000
  done;
  K.Sndcore.pcm_stop substream;
  K.Sndcore.pcm_close substream;
  let seconds_played =
    float_of_int (Hw.Ens1371_hw.consumed model - consumed0)
    /. float_of_int pcm_byte_rate
  in
  let elapsed_ns = K.Clock.now () - t0 in
  let xpc_overhead_ns = Xpc.Dispatch.overhead_ns () - xpc0 in
  (* Overlap model (see Netperf.mk): elapsed time already pays every
     upcall charge serialized; credit back what worker lanes overlap.
     >= 1 means the driver keeps up with the DAC. *)
  let saved_ns = Xpc.Dispatch.overlap_saved_ns () - saved0 in
  let effective_ns = max 0 (elapsed_ns - saved_ns) in
  {
    seconds_played;
    cpu_utilization = K.Clock.utilization ~since:t0 ~busy_since:busy0;
    underruns = Hw.Ens1371_hw.underruns model - underruns0;
    periods = Hw.Ens1371_hw.periods_played model - periods0;
    xpc_overhead_ns;
    realtime_factor =
      (if effective_ns = 0 then 0.
       else seconds_played *. 1e9 /. float_of_int effective_ns);
  }

let pp ppf r =
  Format.fprintf ppf "%.2f s played, %.1f%% CPU, %d underruns" r.seconds_played
    (100. *. r.cpu_utilization)
    r.underruns
