(** Legacy psmouse driver source (mini-C), scaled down from the
    2,448-line original.

    The paper's shape: the interrupt path stays in the kernel; most
    user-level code is device-specific protocol support (IntelliMouse,
    Logitech, Synaptics, ALPS, ...) that was left in the C driver
    library because only one mouse could be tested; the handful of
    functions actually exercised for that mouse were converted to
    Java. *)

let source =
  {|#include <linux/module.h>
#include <linux/input.h>

#define PACKET_MAX 8

struct psmouse_packet {
  int nbytes;
  int bytes[8];
};

struct psmouse {
  struct psmouse_packet pkt;    /* first member aliases the psmouse *)  */
  int state;
  int type;
  int rate;
  int resolution;
  int pktsize;
  int last_byte_time;
  uint8_t * __attribute__((exp(PACKET_MAX))) packet_buf;
  char name[32];
};

int serio_write(int byte);
int request_irq(int irq, int handler);
void free_irq(int irq);
int input_register_device(struct psmouse *psmouse);
void input_unregister_device(struct psmouse *psmouse);
void input_report_rel(struct psmouse *psmouse, int dx, int dy);
void input_report_key(struct psmouse *psmouse, int code, int value);
void input_sync(struct psmouse *psmouse);
int wait_response(struct psmouse *psmouse);
void msleep(int msec);
void printk_info(int code);

/* ================ nucleus: byte stream handling ================ */

static void psmouse_report_standard(struct psmouse *psmouse) {
  int flags = psmouse->pkt.bytes[0];
  int dx = psmouse->pkt.bytes[1];
  int dy = psmouse->pkt.bytes[2];
  if (flags & 0x10)
    dx = dx - 256;
  if (flags & 0x20)
    dy = dy - 256;
  input_report_rel(psmouse, dx, dy);
  input_report_key(psmouse, 1, flags & 1);
  input_sync(psmouse);
}

static int psmouse_process_byte(struct psmouse *psmouse, int byte) {
  psmouse->pkt.bytes[psmouse->pkt.nbytes] = byte;
  psmouse->pkt.nbytes = psmouse->pkt.nbytes + 1;
  if (psmouse->pkt.nbytes >= psmouse->pktsize) {
    psmouse_report_standard(psmouse);
    psmouse->pkt.nbytes = 0;
    return 1;
  }
  return 0;
}

static void psmouse_resync(struct psmouse *psmouse) {
  psmouse->pkt.nbytes = 0;
  psmouse->state = 2;
}

static void psmouse_interrupt(struct psmouse *psmouse, int byte, int timestamp) {
  if (psmouse->state != 3) {
    printk_info(byte);
    return;
  }
  if (timestamp - psmouse->last_byte_time > 500)
    psmouse_resync(psmouse);
  psmouse->last_byte_time = timestamp;
  psmouse_process_byte(psmouse, byte);
}

/* ================ driver library: protocols we cannot test ================ */

static int psmouse_sliced_command(struct psmouse *psmouse, int command) {
  int i;
  int err;
  for (i = 6; i >= 0; i = i - 2) {
    err = serio_write((command >> i) & 3);
    if (err)
      return err;
  }
  return 0;
}

static int genius_detect(struct psmouse *psmouse) {
  serio_write(0xe8);
  serio_write(0);
  if (wait_response(psmouse) != 0x33)
    return -19;
  psmouse->pktsize = 4;
  return 0;
}

static int intellimouse_magic(struct psmouse *psmouse, int r1, int r2, int r3) {
  serio_write(0xf3);
  serio_write(r1);
  serio_write(0xf3);
  serio_write(r2);
  serio_write(0xf3);
  serio_write(r3);
  serio_write(0xf2);
  return wait_response(psmouse);
}

static int im_explorer_detect(struct psmouse *psmouse) {
  int id = intellimouse_magic(psmouse, 200, 200, 80);
  if (id != 4)
    return -19;
  psmouse->type = 4;
  psmouse->pktsize = 4;
  return 0;
}

static int logitech_detect(struct psmouse *psmouse) {
  int err = psmouse_sliced_command(psmouse, 0x39);
  if (err)
    return err;
  if (wait_response(psmouse) != 0x3d)
    return -19;
  psmouse->type = 5;
  return 0;
}

static int synaptics_detect(struct psmouse *psmouse) {
  int err;
  err = psmouse_sliced_command(psmouse, 0x0);
  if (err)
    return err;
  serio_write(0xe9);
  if (wait_response(psmouse) != 0x47)
    return -19;
  psmouse->type = 6;
  psmouse->pktsize = 6;
  return 0;
}

static int synaptics_init(struct psmouse *psmouse) {
  int err = synaptics_detect(psmouse);
  if (err)
    return err;
  err = psmouse_sliced_command(psmouse, 0xc8);
  if (err)
    return err;
  return 0;
}

static int alps_detect(struct psmouse *psmouse) {
  serio_write(0xe6);
  serio_write(0xe6);
  serio_write(0xe6);
  if (wait_response(psmouse) != 0x0)
    return -19;
  psmouse->type = 7;
  psmouse->pktsize = 6;
  return 0;
}

static int alps_init(struct psmouse *psmouse) {
  int err = alps_detect(psmouse);
  if (err)
    return err;
  psmouse->rate = 100;
  return 0;
}

static int lifebook_detect(struct psmouse *psmouse) {
  if (psmouse->type != 0)
    return -19;
  return -19;
}

static int trackpoint_detect(struct psmouse *psmouse) {
  serio_write(0xe1);
  if (wait_response(psmouse) != 0x1)
    return -19;
  psmouse->type = 8;
  return 0;
}

static int touchkit_detect(struct psmouse *psmouse) {
  serio_write(0x0a);
  if (wait_response(psmouse) != 0x0a)
    return -19;
  return 0;
}

static int cortron_detect(struct psmouse *psmouse) {
  if (psmouse->type != 0)
    return -19;
  psmouse->pktsize = 3;
  return 0;
}

static int psmouse_extensions(struct psmouse *psmouse) {
  int err;
  switch (psmouse->type) {
  case 4:
    err = im_explorer_detect(psmouse);
    break;
  case 5:
    err = logitech_detect(psmouse);
    break;
  case 6:
    err = synaptics_init(psmouse);
    break;
  case 7:
    err = alps_init(psmouse);
    break;
  case 8:
    err = trackpoint_detect(psmouse);
    break;
  default:
    err = 0;
  }
  return err;
}

/* ================ converted to Java ================ */

static int psmouse_reset(struct psmouse *psmouse) {
  int err;
  err = serio_write(0xff);
  if (err)
    return err;
  if (wait_response(psmouse) != 0xfa)
    return -5;
  if (wait_response(psmouse) != 0xaa)
    return -5;
  psmouse->type = wait_response(psmouse);
  return 0;
}

static int psmouse_set_rate(struct psmouse *psmouse, int rate) {
  int err;
  DECAF_WVAR(psmouse->rate);
  err = serio_write(0xf3);
  if (err)
    return err;
  err = serio_write(rate);
  if (err)
    return err;
  psmouse->rate = rate;
  return 0;
}

static int psmouse_set_resolution(struct psmouse *psmouse, int res) {
  int err;
  err = serio_write(0xe8);
  if (err)
    return err;
  err = serio_write(res);
  if (err)
    return err;
  psmouse->resolution = res;
  return 0;
}

static int psmouse_probe_protocol(struct psmouse *psmouse) {
  int id;
  serio_write(0xf2);
  id = wait_response(psmouse);
  psmouse->type = id;
  psmouse->pktsize = 3;
  return 0;
}

static int psmouse_initialize(struct psmouse *psmouse) {
  int err;
  err = psmouse_set_rate(psmouse, 100);
  if (err)
    return err;
  err = psmouse_set_resolution(psmouse, 4);
  if (err)
    return err;
  return 0;
}

static int psmouse_activate(struct psmouse *psmouse) {
  int err = serio_write(0xf4);
  if (err)
    return err;
  if (wait_response(psmouse) != 0xfa)
    return -5;
  psmouse->state = 3;
  return 0;
}

static int psmouse_deactivate(struct psmouse *psmouse) {
  int err = serio_write(0xf5);
  if (err)
    return err;
  psmouse->state = 1;
  return 0;
}

static int psmouse_connect(struct psmouse *psmouse) {
  int err;
  err = request_irq(12, 1);
  if (err)
    return err;
  err = psmouse_reset(psmouse);
  if (err)
    goto err_irq;
  err = psmouse_probe_protocol(psmouse);
  if (err)
    goto err_irq;
  err = psmouse_extensions(psmouse);
  if (err)
    psmouse->type = 0;
  err = psmouse_initialize(psmouse);
  if (err)
    goto err_irq;
  err = input_register_device(psmouse);
  if (err)
    goto err_irq;
  err = psmouse_activate(psmouse);
  if (err)
    goto err_input;
  return 0;
err_input:
  input_unregister_device(psmouse);
err_irq:
  free_irq(12);
  return err;
}

static void psmouse_disconnect(struct psmouse *psmouse) {
  psmouse_deactivate(psmouse);
  input_unregister_device(psmouse);
  free_irq(12);
}
|}

let config =
  {
    Decaf_slicer.Slicer.partition =
      {
        Decaf_slicer.Partition.driver_name = "psmouse";
        critical_roots = [ "psmouse_interrupt" ];
        interface_functions =
          [
            "psmouse_connect";
            "psmouse_disconnect";
            "psmouse_interrupt";
            "psmouse_activate";
            "psmouse_deactivate";
          ];
      };
    const_env = [ ("PACKET_MAX", 8) ];
    (* only the functions exercised by the one mouse we have were
       converted; the other protocols' support stays in the C library *)
    java_functions =
      Decaf_slicer.Slicer.Only
        [
          "psmouse_reset";
          "psmouse_set_rate";
          "psmouse_set_resolution";
          "psmouse_probe_protocol";
          "psmouse_initialize";
          "psmouse_activate";
          "psmouse_deactivate";
          "psmouse_connect";
          "psmouse_disconnect";
        ];
  }

(* Line-anchored decaf-lint suppressions; see Lint.apply_waivers. *)
let lint_waivers : Decaf_slicer.Lint.waiver list =
  let open Decaf_slicer.Lint in
  [
    {
      w_pass = Annotation_soundness;
      w_anchor = "psmouse";
      w_line = 11;
      w_reason =
        "pre-conversion corpus: the C bodies remain the slicer's input";
    };
  ]
