(** The object tracker: associations between an object's C address and
    its local incarnation in some other domain (§3.1.2).

    A single C pointer may be associated with several objects when an
    embedded structure shares its parent's address, so entries are keyed
    by (address, type identifier).

    The tracker is sharded by address hash: each shard has its own
    tables, its own {!Decaf_kernel.Sync.Combolock} and its own counters,
    so concurrent dispatch workers touching different objects take
    different locks, and only same-shard traffic serializes. User-level
    callers take the semaphore path (combolock semantics: kernel threads
    then block instead of spinning); atomic-context callers run unlocked
    (they cannot block, and on a single CPU they cannot overlap a
    user-level critical section either). *)

type t

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable registrations : int;
  mutable sweeps : int;  (** number of {!sweep} passes run *)
  mutable rejected : int;
      (** capability handles refused: forged, stale, or cross-type *)
}

val create : ?name:string -> ?shards:int -> unit -> t
(** [shards] (default 8) is rounded up to a power of two. Every tracker
    is added to a process-wide registry consumed by
    {!global_shard_stats}; [Scenario.boot] clears the registry via
    {!reset_registry} before the runtime recreates its trackers. *)

val associate : t -> addr:int -> Univ.t -> unit
(** Record that [addr] corresponds to the given object; the object's
    {!Univ.name} is the type identifier. Re-associating replaces the
    entry. *)

val find : t -> addr:int -> 'a Univ.key -> 'a option
(** Look up the object of the key's type at [addr]. Charges
    {!Decaf_kernel.Cost.t.objtracker_lookup_ns}. *)

val mem : t -> addr:int -> type_id:string -> bool

val types_at : t -> addr:int -> string list
(** Every type identifier registered at the address (inner and outer
    structures). Served from a per-address secondary index, so the cost
    scales with the types at that address, not the table size. *)

val remove : t -> addr:int -> type_id:string -> unit
val remove_all : t -> addr:int -> unit
val count : t -> int

val stats : t -> stats
(** Aggregated snapshot over all shards. [sweeps] counts whole {!sweep}
    passes, as before sharding. *)

val clear : t -> unit

(** {1 Sharding} *)

val shard_count : t -> int

val shard_stats : t -> stats array
(** Per-shard counter snapshots, indexed by shard. *)

val shard_lock_stats : t -> Decaf_kernel.Sync.Combolock.stats array
(** Each shard's combolock counters (live records, not snapshots). *)

val global_shard_stats : unit -> stats array
(** Per-shard counters summed across every registered tracker (the
    kernel- and Java-side trackers of the running machine). Indexed by
    shard; surfaced through [Channel.stats]. *)

val reset_registry : unit -> unit

(** {1 Capability handles}

    Raw C addresses never cross to user level as inbound references: the
    kernel issues a {!handle} for each (address, type) association it
    shares, and every inbound object reference resolves through the
    handle table. A handle encodes its owning shard, a never-reused slot
    and a generation tag; the table entry — not the handle's bits — is
    authoritative, so a forged handle (never issued), a stale one
    (revoked by {!remove}/{!remove_all}/{!clear}, or from before a
    generation bump) and a cross-type one (issued for another type at
    the same address, e.g. an embedded struct) are all refused, counted
    in [stats.rejected] and {!Boundary.totals}. *)

type handle = int
(** Opaque on the wire (marshaled as a uint); validity is decided by the
    issuing tracker's table, never by the bits alone. Never 0. *)

val issue : t -> addr:int -> type_id:string -> handle
(** The capability for (addr, type_id); idempotent until revoked —
    re-issuing returns the same handle. *)

val resolve : t -> handle:handle -> type_id:string -> (int, string) result
(** [Ok addr] when the handle was issued for [type_id] and is still
    live; [Error reason] (counted) for forged, stale and cross-type
    handles. Charges {!Decaf_kernel.Cost.t.objtracker_lookup_ns}. *)

val find_by_handle : t -> handle:handle -> 'a Univ.key -> 'a option
(** {!resolve} with the key's type, then {!find}. Rejections count and
    return [None]. *)

val remove_by_handle : t -> handle:handle -> unit
(** Remove the association the handle names and revoke the handle.
    Forged/stale handles are counted and removed nothing. *)

val handle_count : t -> int
(** Live (issued, unrevoked) handles, all shards. *)

(** {1 Automatic collection}

    The paper's proposed extension (§3.1.2): track shared objects with
    weak references so that, once the decaf driver drops its last
    reference, the association disappears and the object can be
    garbage-collected — instead of requiring drivers to free shared
    objects explicitly. *)

val associate_weak : t -> addr:int -> 'a Univ.key -> 'a -> unit
(** Like {!associate}, but the tracker does not keep the object alive:
    after the object becomes unreachable (and a GC has run), {!find}
    misses and {!sweep} reclaims the entry. *)

val sweep : t -> int
(** Drop entries whose weakly-held object has been collected; returns
    how many were reclaimed. Each entry's weak reference is dereferenced
    exactly once per pass; every pass bumps [stats.sweeps]. *)

val weak_count : t -> int
(** Live weak associations (dead-but-unswept entries included). *)
