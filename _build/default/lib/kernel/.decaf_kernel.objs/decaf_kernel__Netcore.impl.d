lib/kernel/netcore.ml: Bytes Klog List Panic Printf
