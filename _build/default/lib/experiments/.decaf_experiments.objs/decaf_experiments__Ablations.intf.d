lib/experiments/ablations.mli:
