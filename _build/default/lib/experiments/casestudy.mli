(** The §5.1 case study: software-engineering benefits of moving E1000
    code to a managed language.

    Quantifies (a) the broken error handling that checked exceptions
    surface — the paper found 28 cases — and (b) the code removed by
    replacing return-code propagation with exceptions (~8 % of
    [e1000_hw.c]); and emits the paper's code-listing figures as
    runnable artifacts: the Jeannie stub for [snd_card_register]
    (Figure 2), the XDR rewrite of [e1000_adapter] (Figure 3), and a
    before/after of [e1000_config_dsp_after_link_change] (Figure 5). *)

type t = {
  violations : Decaf_slicer.Errcheck.violation list;
  lines_removed : int;
  hw_layer_loc : int;
  savings_percent : float;
}

val measure : unit -> t
val render : t -> string

val figure2_stub : unit -> string
(** The generated Jeannie stub for [snd_card_register]. *)

val figure3_xdr : unit -> string
(** The XDR spec generated for the E1000's structures, wrapper structs
    included. *)

val figure5_before_after : unit -> string * string
(** [e1000_config_dsp_after_link_change]: the original return-code text
    and the same function with propagation sites deleted (exception
    style). *)
