(** The Jeannie bridge between the decaf driver ("Java") and the driver
    library ("C") (§3.1.1).

    Two call classes exist: {!direct} calls for scalar arguments — a
    plain cross-language call with no marshaling — and {!via_xpc} calls
    for pointer-bearing arguments, which pay the C/Java XPC cost and
    marshal through XDR. Downcalls into the kernel always traverse C
    first; {!to_kernel} charges both boundary crossings. *)

val direct : (unit -> 'a) -> 'a
(** Invoke driver-library code from the decaf driver with scalar
    arguments (e.g. a port-I/O helper). Charged as a bare language
    transition. *)

val via_xpc : bytes:int -> (unit -> 'a) -> 'a
(** Invoke driver-library code passing complex objects: full C/Java XPC
    with [bytes] of marshaled data. *)

val to_kernel : bytes:int -> (unit -> 'a) -> 'a
(** Downcall from the decaf driver to the kernel (via C, §3.1). *)

val direct_call_count : unit -> int
val reset_counters : unit -> unit
