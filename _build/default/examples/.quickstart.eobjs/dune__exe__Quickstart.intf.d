examples/quickstart.mli:
