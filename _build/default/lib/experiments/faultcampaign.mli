(** Fault-injection campaign over the five decaf drivers.

    Each trial boots the kernel, arms a seeded fault plan
    ({!Decaf_kernel.Faultinject}), then runs one driver's insmod → open
    → workload → rmmod cycle under a {!Decaf_runtime.Supervisor}.  The
    campaign reports, per trial, how many faults were injected, how many
    the supervisor detected, and whether the driver recovered, was
    tolerated (the stack absorbed the fault without a restart), or was
    degraded (restart budget exhausted, driver disabled, kernel alive).
    A fault reaching [Panic.bug] is the failure the campaign exists to
    rule out. *)

type trial = {
  driver : string;
  fault : string;  (** human description of the armed fault *)
  expected : string;  (** outcome the trial matrix predicts *)
  outcome : string;
      (** ["clean"], ["tolerated"], ["recovered"], ["degraded"] or
          ["KERNEL-BUG"] *)
  injected : int;
  detected : int;
  recovered : int;
  degraded : int;
  restarts : int;
  kernel_bugs : int;
}

type report = {
  seed : int;
  trials : trial list;
  total_injected : int;
  total_detected : int;
  total_recovered : int;
  total_degraded : int;
  total_restarts : int;
  total_kernel_bugs : int;
}

val run : ?seed:int -> unit -> report
(** Run the whole campaign.  Deterministic for a given [seed]
    (default [0xdecaf]). *)

val check : report -> (unit, string) result
(** The acceptance criteria: at least 100 faults injected across all
    five drivers, zero kernel bugs, [recovered + degraded = detected],
    at least one recovery and one degradation, and every trial matching
    its predicted outcome. *)

val render : report -> string
