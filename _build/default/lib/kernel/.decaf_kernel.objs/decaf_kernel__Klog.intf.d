lib/kernel/klog.mli: Format
