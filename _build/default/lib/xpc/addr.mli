(** Simulated C addresses for kernel objects.

    Kernel-side structures are identified across domains by their address
    cast to an integer, exactly as in the paper. Embedded structures get
    the parent's address plus an offset — so a structure whose first
    member is another structure shares its address with it, reproducing
    the aliasing the user-level object tracker must disambiguate. *)

val alloc : size:int -> int
(** A fresh, 16-byte-aligned simulated address. *)

val embedded : parent:int -> offset:int -> int
val reset : unit -> unit
