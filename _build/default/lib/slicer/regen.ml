module Plan = Decaf_xpc.Marshal_plan

type change = {
  ch_type : string;
  ch_added_fields : string list;
  ch_widened_fields : string list;
}

let interface_changes ~old_plans ~new_plans =
  List.filter_map
    (fun np ->
      let ty = Plan.type_id np in
      match List.find_opt (fun op -> Plan.type_id op = ty) old_plans with
      | None ->
          let added = List.map fst (Plan.fields np) in
          if added = [] then None
          else Some { ch_type = ty; ch_added_fields = added; ch_widened_fields = [] }
      | Some op ->
          let old_fields = Plan.fields op in
          let added, widened =
            List.fold_left
              (fun (added, widened) (name, access) ->
                match List.assoc_opt name old_fields with
                | None -> (name :: added, widened)
                | Some old_access when old_access <> access ->
                    (added, name :: widened)
                | Some _ -> (added, widened))
              ([], []) (Plan.fields np)
          in
          if added = [] && widened = [] then None
          else
            Some
              {
                ch_type = ty;
                ch_added_fields = List.rev added;
                ch_widened_fields = List.rev widened;
              })
    new_plans

let regenerate ~old_plans ~source config =
  let out = Slicer.slice ~source config in
  let changes = interface_changes ~old_plans ~new_plans:out.Slicer.plans in
  let merged =
    List.map
      (fun np ->
        match
          List.find_opt
            (fun op -> Plan.type_id op = Plan.type_id np)
            old_plans
        with
        | Some op -> Plan.union op np
        | None -> np)
      out.Slicer.plans
  in
  (* Keep plans for structs that disappeared from the new analysis: the
     decaf driver may still hold references to them. *)
  let carried =
    List.filter
      (fun op ->
        not
          (List.exists
             (fun np -> Plan.type_id np = Plan.type_id op)
             out.Slicer.plans))
      old_plans
  in
  ({ out with Slicer.plans = merged @ carried }, changes)
