(** The XDR external data representation (RFC 4506), used to marshal
    driver data structures between the driver library and the decaf
    driver (§3.2.3).

    Every item occupies a multiple of four bytes, big-endian, exactly as
    the standard specifies; property tests check round-trips and
    alignment. *)

exception Decode_error of string

module Enc : sig
  type t

  val create : unit -> t

  val int : t -> int -> unit
  (** 32-bit signed integer; raises [Invalid_argument] outside range. *)

  val uint : t -> int -> unit
  (** 32-bit unsigned integer. *)

  val hyper : t -> int64 -> unit
  (** 64-bit integer (XDR [hyper] — what DriverSlicer maps C's
      [long long] to). *)

  val bool : t -> bool -> unit
  val double : t -> float -> unit

  val opaque_fixed : t -> bytes -> unit
  (** Fixed-length opaque data, zero-padded to 4 bytes. *)

  val opaque_var : t -> bytes -> unit
  (** Variable-length opaque data: length word then padded payload. *)

  val string : t -> string -> unit

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  (** XDR optional-data: a boolean discriminant then the payload. *)

  val array_fixed : t -> (t -> 'a -> unit) -> 'a array -> unit
  val array_var : t -> (t -> 'a -> unit) -> 'a array -> unit
  val size : t -> int
  val to_bytes : t -> bytes
end

module Dec : sig
  type t

  val of_bytes : bytes -> t
  val int : t -> int
  val uint : t -> int
  val hyper : t -> int64
  val bool : t -> bool
  val double : t -> float
  val opaque_fixed : t -> int -> bytes
  val opaque_var : t -> bytes
  val string : t -> string
  val option : t -> (t -> 'a) -> 'a option
  val array_fixed : t -> (t -> 'a) -> int -> 'a array
  val array_var : t -> (t -> 'a) -> 'a array

  val pos : t -> int
  val remaining : t -> int

  val check_drained : t -> unit
  (** Raise {!Decode_error} unless every byte has been consumed. *)
end
