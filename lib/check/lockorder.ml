(* Static vs. dynamic lock-acquisition-order cross-check.

   decaf-lint derives acquisition-order edges from the legacy C sources
   (lock-argument expressions of nested spin_lock calls); the explorer
   records the order the running kernel actually acquires its locks in
   (runtime tags like "combo:chkdev-A"). The two vocabularies only
   partially overlap, so both sides are normalized to a bare lock name
   before comparing: the runtime tag drops its "kind:" prefix, the C
   expression keeps its final field/identifier segment. A CONFLICT is an
   edge the static pass orders one way and the explorer observed the
   other way — the AB/BA disagreement the cross-check exists to catch.
   Edges seen by only one side are reported informationally; with
   mostly-disjoint namespaces that is the common case, not a finding. *)

type diff = {
  agreements : (string * string) list;  (** same edge on both sides *)
  conflicts : (string * string) list;
      (** (a, b): a->b statically but b->a dynamically *)
  static_only : (string * string) list;
  dynamic_only : (string * string) list;
}

(* "combo:chkdev-A" -> "chkdev-A"; stamps are already stripped by the
   invariant monitor before edges reach the graph. *)
let norm_dynamic s =
  match String.index_opt s ':' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

(* "&lp->tx_lock" / "adapter.stats_lock" / "lock" -> final segment *)
let norm_static s =
  let s =
    if String.length s > 0 && s.[0] = '&' then
      String.sub s 1 (String.length s - 1)
    else s
  in
  let after i = String.sub s i (String.length s - i) in
  let rec last_sep i best =
    if i >= String.length s then best
    else if s.[i] = '.' then last_sep (i + 1) (Some (i + 1))
    else if i + 1 < String.length s && s.[i] = '-' && s.[i + 1] = '>' then
      last_sep (i + 2) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with Some i -> after i | None -> s

let diff ~static ~dynamic =
  let s =
    List.sort_uniq compare
      (List.map (fun (a, b) -> (norm_static a, norm_static b)) static)
  in
  let d =
    List.sort_uniq compare
      (List.map (fun (a, b) -> (norm_dynamic a, norm_dynamic b)) dynamic)
  in
  {
    agreements = List.filter (fun e -> List.mem e d) s;
    conflicts = List.filter (fun (a, b) -> List.mem (b, a) d) s;
    static_only = List.filter (fun e -> not (List.mem e d)) s;
    dynamic_only = List.filter (fun e -> not (List.mem e s)) d;
  }
