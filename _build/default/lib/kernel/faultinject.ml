type kind =
  | Bad_read
  | Stuck_ones
  | Stuck_zero
  | Alloc_fail
  | Xpc_timeout
  | Spurious_irq
  | Link_flap

type trigger = Always | Span of int * int | Prob of float

type spec = { site : string; addr : int option; kind : kind; trigger : trigger }

type injection = {
  inj_site : string;
  inj_addr : int option;
  inj_kind : kind;
  inj_seq : int;
}

type armed = { spec : spec; mutable matched : int }
type plan = { rng : Random.State.t; specs : armed list }

let plan_v : plan option ref = ref None
let injected = ref 0
let log_v : injection list ref = ref []

let kind_name = function
  | Bad_read -> "bad-read"
  | Stuck_ones -> "stuck-ones"
  | Stuck_zero -> "stuck-zero"
  | Alloc_fail -> "alloc-fail"
  | Xpc_timeout -> "xpc-timeout"
  | Spurious_irq -> "spurious-irq"
  | Link_flap -> "link-flap"

let spec ?addr ~site ~kind ~trigger () = { site; addr; kind; trigger }

let arm ~seed specs =
  plan_v :=
    Some
      {
        rng = Random.State.make [| seed |];
        specs = List.map (fun s -> { spec = s; matched = 0 }) specs;
      };
  injected := 0;
  log_v := []

let disarm () = plan_v := None

let active () = match !plan_v with Some _ -> true | None -> false

let reset () =
  disarm ();
  injected := 0;
  log_v := []

let record ~site ~addr kind =
  incr injected;
  log_v :=
    { inj_site = site; inj_addr = addr; inj_kind = kind; inj_seq = !injected }
    :: !log_v

(* Evaluate one armed spec's trigger against its own match counter. The
   counter advances on every match, fired or not, so a [Span] models "the
   k-th through (k+n-1)-th accesses to this site go wrong". *)
let eval p (a : armed) =
  a.matched <- a.matched + 1;
  match a.spec.trigger with
  | Always -> true
  | Span (first, count) -> a.matched >= first && a.matched < first + count
  | Prob pr -> Random.State.float p.rng 1.0 < pr

let addr_matches s addr =
  match s.addr with None -> true | Some a -> addr = Some a

let fires ~site ?addr kind =
  match !plan_v with
  | None -> false
  | Some p ->
      let fired =
        List.fold_left
          (fun acc a ->
            if a.spec.site = site && a.spec.kind = kind && addr_matches a.spec addr
            then
              let f = eval p a in
              f || acc
            else acc)
          false p.specs
      in
      if fired then record ~site ~addr kind;
      fired

let flip_bit p v = v lxor (1 lsl Random.State.int p.rng 8)

let filter_read ~site ~addr v =
  match !plan_v with
  | None -> v
  | Some p ->
      let apply v k =
        if fires ~site ~addr k then
          match k with
          | Stuck_ones -> -1 (* callers mask to access width: all ones *)
          | Stuck_zero -> 0
          | _ -> flip_bit p v
        else v
      in
      List.fold_left apply v [ Stuck_ones; Stuck_zero; Bad_read ]

let record_external ~site ?addr kind = record ~site ~addr kind
let injected_count () = !injected
let injections () = List.rev !log_v
