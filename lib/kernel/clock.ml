module Key = struct
  type t = int * int (* due time, tie-break sequence number *)

  let compare = compare
end

module Emap = Map.Make (Key)

type event_id = Key.t

let events : (unit -> unit) Emap.t ref = ref Emap.empty
let time = ref 0
let busy = ref 0
let seq = ref 0

let now () = !time
let busy_ns () = !busy

let utilization ~since ~busy_since =
  let window = !time - since in
  if window <= 0 then 0.
  else float_of_int (!busy - busy_since) /. float_of_int window

(* Run every event due at or before [t], in due order. An event callback
   may itself consume time or schedule new events; events that become due
   as a result are delivered too. *)
let rec deliver_until t =
  match Emap.min_binding_opt !events with
  | Some ((due, _) as key, f) when due <= t ->
      events := Emap.remove key !events;
      if due > !time then time := due;
      f ();
      deliver_until (max t !time)
  | Some _ | None -> ()

(* Busy work is preemptible: an event (interrupt) due mid-interval runs
   at its due time, and the interrupted work's remaining duration resumes
   afterwards — so elapsed time always covers the handler's own
   consumption and utilization can never exceed 100%. *)
let consume ns =
  if ns < 0 then Panic.bug "Clock.consume: negative duration %d" ns;
  busy := !busy + ns;
  let remaining = ref ns in
  while !remaining > 0 do
    match Emap.min_binding_opt !events with
    | Some ((due, _) as key, f) when due <= !time + !remaining ->
        let slice = max 0 (due - !time) in
        remaining := !remaining - slice;
        if due > !time then time := due;
        events := Emap.remove key !events;
        f ()
    | Some _ | None ->
        time := !time + !remaining;
        remaining := 0
  done

let scheduled () = !seq

let at t f =
  incr seq;
  let key = (max t !time, !seq) in
  events := Emap.add key f !events;
  key

let after ns f = at (!time + ns) f
let cancel key = events := Emap.remove key !events
let pending key = Emap.mem key !events
let has_events () = not (Emap.is_empty !events)

let advance_to_next_event () =
  match Emap.min_binding_opt !events with
  | None -> false
  | Some ((due, _), _) ->
      if due > !time then time := due;
      deliver_until !time;
      true

let reset () =
  events := Emap.empty;
  time := 0;
  busy := 0;
  seq := 0

let () = Klog.set_timestamp_source now
