module K = Decaf_kernel

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable registrations : int;
  mutable sweeps : int;
  mutable rejected : int;
}

let fresh_stats () =
  { lookups = 0; hits = 0; registrations = 0; sweeps = 0; rejected = 0 }

type weak_entry = { w_get : unit -> Univ.t option }

type handle = int

(* A capability handle names one (address, type) association without
   revealing the address: user level gets the handle, and every inbound
   reference resolves through the shard's handle table — a forged,
   stale (revoked) or cross-type handle is refused and counted instead
   of dereferenced. Layout: slot in the high bits, owning shard in bits
   10..19, the entry's generation tag in bits 0..9. Slots are never
   reused (monotonic per shard) and the generation is bumped when the
   table is cleared, so a handle from before a [clear] stays invalid
   even against a fresh table. *)
type h_entry = { he_addr : int; he_ty : string; he_gen : int }

let gen_bits = 10
let shard_bits = 10
let gen_mask = (1 lsl gen_bits) - 1
let shard_mask = (1 lsl shard_bits) - 1

let encode_handle ~slot ~shard ~gen =
  (slot lsl (gen_bits + shard_bits))
  lor ((shard land shard_mask) lsl gen_bits)
  lor (gen land gen_mask)

let handle_slot h = h lsr (gen_bits + shard_bits)
let handle_shard h = (h lsr gen_bits) land shard_mask
let handle_gen h = h land gen_mask

(* One shard: the former global tracker structure, now guarded by its
   own combolock and counting its own traffic. Addresses hash to shards,
   so lookups touching different objects take different locks. *)
type shard = {
  table : (int * string, Univ.t) Hashtbl.t;
  weak_table : (int * string, weak_entry) Hashtbl.t;
  (* Secondary index: address -> set of type_ids registered there (strong
     or weak). [types_at]/[remove_all] used to fold over both full tables;
     with the index they touch only the handful of types actually at the
     address. Maintained on every (de)registration. *)
  by_addr : (int, (string, unit) Hashtbl.t) Hashtbl.t;
  (* Capability handles issued for this shard's addresses: slot ->
     entry, with a reverse index for idempotent issue. *)
  handles : (int, h_entry) Hashtbl.t;
  h_index : (int * string, int) Hashtbl.t;
  mutable h_next : int;  (* next slot; starts at 1 (0 is never valid) *)
  mutable h_gen : int;  (* generation tag stamped into new handles *)
  lock : K.Sync.Combolock.t;
  stats : stats;
}

type t = { name : string; shards : shard array; mask : int }

let default_shards = 8

(* Every live tracker, for machine-wide per-shard reporting through
   Channel.stats. Cleared by [reset_registry] (Scenario.boot) before the
   runtime recreates its trackers. *)
let registry : t list ref = ref []
let reset_registry () = registry := []

let create ?(name = "objtracker") ?(shards = default_shards) () =
  let n =
    (* round up to a power of two so [land mask] is a uniform hash *)
    let rec pow2 p = if p >= shards then p else pow2 (p * 2) in
    pow2 1
  in
  let t =
    {
      name;
      shards =
        Array.init n (fun i ->
            {
              table = Hashtbl.create 16;
              weak_table = Hashtbl.create 8;
              by_addr = Hashtbl.create 16;
              handles = Hashtbl.create 8;
              h_index = Hashtbl.create 8;
              h_next = 1;
              h_gen = 0;
              lock =
                K.Sync.Combolock.create
                  ~name:(Printf.sprintf "%s/shard%d" name i)
                  ();
              stats = fresh_stats ();
            });
      mask = n - 1;
    }
  in
  registry := t :: !registry;
  t

let shard_of t ~addr = t.shards.(Hashtbl.hash addr land t.mask)
let shard_count t = Array.length t.shards

(* Shard critical sections. User-level callers take the semaphore path
   (flipping the combolock so kernel threads block instead of spinning);
   kernel callers spin. Atomic context cannot block, and on this
   single-CPU machine it also cannot overlap a user-level critical
   section, so it runs unlocked. The lock's base cost is charged to the
   serving dispatch lane along with the lookup cost itself. *)
let locked sh f =
  if K.Sched.in_interrupt () || K.Sched.spin_depth () > 0 then f ()
  else if Domain.is_user (Domain.current ()) then begin
    Dispatch.note K.Cost.current.semaphore_ns;
    K.Sync.Combolock.with_user sh.lock f
  end
  else begin
    Dispatch.note K.Cost.current.spinlock_ns;
    K.Sync.Combolock.with_kernel sh.lock f
  end

let index_add sh addr ty =
  let set =
    match Hashtbl.find_opt sh.by_addr addr with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.replace sh.by_addr addr s;
        s
  in
  Hashtbl.replace set ty ()

let index_remove sh addr ty =
  match Hashtbl.find_opt sh.by_addr addr with
  | None -> ()
  | Some set ->
      Hashtbl.remove set ty;
      if Hashtbl.length set = 0 then Hashtbl.remove sh.by_addr addr

(* Revoke the capability handle (if any) issued for (addr, ty): after
   the association is gone, a replayed handle must reject as stale. *)
let revoke sh addr ty =
  match Hashtbl.find_opt sh.h_index (addr, ty) with
  | None -> ()
  | Some slot ->
      Hashtbl.remove sh.handles slot;
      Hashtbl.remove sh.h_index (addr, ty)

(* --- capability handles --- *)

let issue t ~addr ~type_id =
  let i = Hashtbl.hash addr land t.mask in
  let sh = t.shards.(i) in
  locked sh (fun () ->
      match Hashtbl.find_opt sh.h_index (addr, type_id) with
      | Some slot ->
          let e = Hashtbl.find sh.handles slot in
          encode_handle ~slot ~shard:i ~gen:e.he_gen
      | None ->
          let slot = sh.h_next in
          sh.h_next <- slot + 1;
          Hashtbl.replace sh.handles slot
            { he_addr = addr; he_ty = type_id; he_gen = sh.h_gen };
          Hashtbl.replace sh.h_index (addr, type_id) slot;
          encode_handle ~slot ~shard:i ~gen:sh.h_gen)

let resolve t ~handle ~type_id =
  K.Clock.consume K.Cost.current.objtracker_lookup_ns
  (* decaf-lint: consume-ok, lookup charged inside the caller's span *);
  Dispatch.note K.Cost.current.objtracker_lookup_ns;
  let shard_i = handle_shard handle in
  let sh = t.shards.(if shard_i <= t.mask then shard_i else 0) in
  locked sh (fun () ->
      let reject reason =
        sh.stats.rejected <- sh.stats.rejected + 1;
        Boundary.note_rejected ();
        Error reason
      in
      if handle <= 0 || shard_i > t.mask then
        reject (Printf.sprintf "forged handle %#x: no such shard" handle)
      else
        match Hashtbl.find_opt sh.handles (handle_slot handle) with
        | None ->
            reject
              (Printf.sprintf "forged or stale handle %#x: not issued" handle)
        | Some e when e.he_gen land gen_mask <> handle_gen handle ->
            reject
              (Printf.sprintf "stale handle %#x: generation %d, table at %d"
                 handle (handle_gen handle) (e.he_gen land gen_mask))
        | Some e when e.he_ty <> type_id ->
            reject
              (Printf.sprintf
                 "cross-type handle %#x: issued for %s, presented as %s"
                 handle e.he_ty type_id)
        | Some e -> Ok e.he_addr)

let associate t ~addr u =
  let sh = shard_of t ~addr in
  locked sh (fun () ->
      sh.stats.registrations <- sh.stats.registrations + 1;
      let ty = Univ.name u in
      Hashtbl.replace sh.table (addr, ty) u;
      index_add sh addr ty)

let drop_weak sh addr ty =
  (* Reaching here means the strong table missed this slot, so dropping
     the weak entry leaves nothing at (addr, ty). *)
  Hashtbl.remove sh.weak_table (addr, ty);
  index_remove sh addr ty

let find t ~addr key =
  let sh = shard_of t ~addr in
  K.Clock.consume K.Cost.current.objtracker_lookup_ns
  (* decaf-lint: consume-ok, lookup charged inside the caller's span *);
  Dispatch.note K.Cost.current.objtracker_lookup_ns;
  locked sh (fun () ->
      sh.stats.lookups <- sh.stats.lookups + 1;
      let ty = Univ.key_name key in
      match Hashtbl.find_opt sh.table (addr, ty) with
      | Some u ->
          sh.stats.hits <- sh.stats.hits + 1;
          Univ.unpack key u
      | None -> (
          match Hashtbl.find_opt sh.weak_table (addr, ty) with
          | Some entry -> (
              match entry.w_get () with
              | Some u ->
                  sh.stats.hits <- sh.stats.hits + 1;
                  Univ.unpack key u
              | None ->
                  (* the decaf driver dropped its last reference *)
                  drop_weak sh addr ty;
                  None)
          | None -> None))

let find_by_handle t ~handle key =
  match resolve t ~handle ~type_id:(Univ.key_name key) with
  | Error _ -> None
  | Ok addr -> find t ~addr key

let remove_by_handle t ~handle =
  let shard_i = handle_shard handle in
  let sh = t.shards.(if shard_i <= t.mask then shard_i else 0) in
  locked sh (fun () ->
      let reject () =
        sh.stats.rejected <- sh.stats.rejected + 1;
        Boundary.note_rejected ()
      in
      if handle <= 0 || shard_i > t.mask then reject ()
      else
        match Hashtbl.find_opt sh.handles (handle_slot handle) with
        | Some e when e.he_gen land gen_mask = handle_gen handle ->
            Hashtbl.remove sh.table (e.he_addr, e.he_ty);
            Hashtbl.remove sh.weak_table (e.he_addr, e.he_ty);
            index_remove sh e.he_addr e.he_ty;
            revoke sh e.he_addr e.he_ty
        | Some _ | None -> reject ())

let handle_count t =
  Array.fold_left
    (fun acc sh -> acc + locked sh (fun () -> Hashtbl.length sh.handles))
    0 t.shards

(* Read paths take the shard lock like the write paths: they are safe
   unlocked today (no suspension point, one simulated CPU), but the
   shard stats claim to measure this locking discipline's contention, so
   reads must participate in it. *)
let mem t ~addr ~type_id =
  let sh = shard_of t ~addr in
  locked sh (fun () ->
      Hashtbl.mem sh.table (addr, type_id)
      || Hashtbl.mem sh.weak_table (addr, type_id))

let associate_weak t ~addr key v =
  let sh = shard_of t ~addr in
  locked sh (fun () ->
      sh.stats.registrations <- sh.stats.registrations + 1;
      let w = Weak.create 1 in
      Weak.set w 0 (Some v);
      let w_get () = Option.map (Univ.pack key) (Weak.get w 0) in
      let ty = Univ.key_name key in
      Hashtbl.replace sh.weak_table (addr, ty) { w_get };
      index_add sh addr ty)

let sweep t =
  (* Shard by shard, each pass under that shard's lock: a sweep never
     holds more than one shard, so lookups on other shards proceed while
     dead entries are reclaimed. One [w_get] per entry: collect the dead
     slots in a single pass, then unregister them (table and address
     index together). *)
  Array.fold_left
    (fun total sh ->
      locked sh (fun () ->
          sh.stats.sweeps <- sh.stats.sweeps + 1;
          let dead =
            Hashtbl.fold
              (fun slot entry acc ->
                if entry.w_get () = None then slot :: acc else acc)
              sh.weak_table []
          in
          List.iter
            (fun (addr, ty) ->
              Hashtbl.remove sh.weak_table (addr, ty);
              if not (Hashtbl.mem sh.table (addr, ty)) then
                index_remove sh addr ty)
            dead;
          total + List.length dead))
    0 t.shards

let weak_count t =
  Array.fold_left
    (fun acc sh -> acc + locked sh (fun () -> Hashtbl.length sh.weak_table))
    0 t.shards

let types_at t ~addr =
  let sh = shard_of t ~addr in
  locked sh (fun () ->
      match Hashtbl.find_opt sh.by_addr addr with
      | None -> []
      | Some set ->
          let live =
            Hashtbl.fold
              (fun ty () acc ->
                if Hashtbl.mem sh.table (addr, ty) then ty :: acc
                else
                  match Hashtbl.find_opt sh.weak_table (addr, ty) with
                  | Some entry ->
                      if entry.w_get () <> None then ty :: acc else acc
                  | None -> acc)
              set []
          in
          List.sort compare live)

let remove t ~addr ~type_id =
  let sh = shard_of t ~addr in
  locked sh (fun () ->
      Hashtbl.remove sh.table (addr, type_id);
      Hashtbl.remove sh.weak_table (addr, type_id);
      index_remove sh addr type_id;
      revoke sh addr type_id)

let remove_all t ~addr =
  let sh = shard_of t ~addr in
  (* The index read happens under the same lock as the removals: a
     snapshot taken before blocking on the lock could go stale while the
     holder (de)registers types at this address. *)
  locked sh (fun () ->
      match Hashtbl.find_opt sh.by_addr addr with
      | None -> ()
      | Some set ->
          let types = Hashtbl.fold (fun ty () acc -> ty :: acc) set [] in
          List.iter
            (fun type_id ->
              Hashtbl.remove sh.table (addr, type_id);
              Hashtbl.remove sh.weak_table (addr, type_id);
              index_remove sh addr type_id;
              revoke sh addr type_id)
            types)

let count t =
  Array.fold_left
    (fun acc sh -> acc + locked sh (fun () -> Hashtbl.length sh.table))
    0 t.shards

let add_stats into s =
  into.lookups <- into.lookups + s.lookups;
  into.hits <- into.hits + s.hits;
  into.registrations <- into.registrations + s.registrations;
  into.sweeps <- into.sweeps + s.sweeps;
  into.rejected <- into.rejected + s.rejected

let stats t =
  let acc = fresh_stats () in
  Array.iter (fun sh -> add_stats acc sh.stats) t.shards;
  (* sweeps is per-pass, not per-shard-pass *)
  acc.sweeps <- acc.sweeps / max 1 (Array.length t.shards);
  acc

let shard_stats t =
  Array.map
    (fun sh ->
      {
        lookups = sh.stats.lookups;
        hits = sh.stats.hits;
        registrations = sh.stats.registrations;
        sweeps = sh.stats.sweeps;
        rejected = sh.stats.rejected;
      })
    t.shards

let shard_lock_stats t =
  Array.map (fun sh -> K.Sync.Combolock.stats sh.lock) t.shards

let global_shard_stats () =
  match !registry with
  | [] -> [||]
  | trackers ->
      let width =
        List.fold_left (fun m t -> max m (Array.length t.shards)) 0 trackers
      in
      let acc = Array.init width (fun _ -> fresh_stats ()) in
      List.iter
        (fun t ->
          Array.iteri (fun i sh -> add_stats acc.(i) sh.stats) t.shards)
        trackers;
      acc

let clear t =
  Array.iter
    (fun sh ->
      Hashtbl.reset sh.table;
      Hashtbl.reset sh.weak_table;
      Hashtbl.reset sh.by_addr;
      (* Every outstanding handle is revoked: slots are never reused and
         the generation tag moves on, so a handle minted before the
         clear stays invalid against anything issued after it. *)
      Hashtbl.reset sh.handles;
      Hashtbl.reset sh.h_index;
      sh.h_gen <- (sh.h_gen + 1) land gen_mask)
    t.shards
