(** Kernel synchronization primitives.

    Includes the paper's {e combolocks} (§3.1.3): a combolock behaves as a
    spinlock while only kernel threads contend for it, and converts to a
    semaphore once user-level code acquires it, so that kernel threads
    block instead of spinning while the decaf driver holds the lock. *)

module Waitq : sig
  type t

  val create : unit -> t

  val wait : t -> unit
  (** Block the current thread on the queue. *)

  val wake_one : t -> bool
  (** Wake the oldest waiter; [false] if the queue was empty. *)

  val wake_all : t -> int
  (** Wake every waiter, returning how many were woken. *)

  val waiters : t -> int
end

module Spinlock : sig
  type t

  val create : ?name:string -> unit -> t

  val lock : t -> unit
  (** Acquire. Self-deadlock (recursive acquisition on this one-CPU
      machine) raises {!Panic.Kernel_bug}. *)

  val unlock : t -> unit
  val held : t -> bool

  val with_lock : t -> (unit -> 'a) -> 'a

  val lock_irqsave : t -> unit
  (** Acquire and mask interrupts (modelled as entering atomic context). *)

  val unlock_irqrestore : t -> unit
end

module Semaphore : sig
  type t

  val create : ?name:string -> int -> t
  val down : t -> unit
  val up : t -> unit
  val count : t -> int
end

module Mutex : sig
  type t

  val create : ?name:string -> unit -> t

  val lock : t -> unit
  (** Blocking acquire; recursive acquisition raises {!Panic.Kernel_bug}. *)

  val unlock : t -> unit
  val held : t -> bool
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Completion : sig
  type t

  val create : unit -> t
  val wait : t -> unit
  val complete : t -> unit
  val complete_all : t -> unit
  val done_ : t -> bool
end

module Combolock : sig
  type t

  type stats = {
    mutable spin_acquires : int;  (** fast-path kernel-only acquisitions *)
    mutable sem_acquires : int;  (** semaphore-path acquisitions *)
  }

  val create : ?name:string -> unit -> t

  val lock_kernel : t -> unit
  (** Acquire from kernel code: spinlock behaviour unless user-level code
      holds or waits for the lock, in which case block on the semaphore. *)

  val unlock_kernel : t -> unit

  val lock_user : t -> unit
  (** Acquire from user-level (decaf driver / driver library) code: always
      the semaphore path, and flips the lock into semaphore mode so that
      kernel threads wait rather than spin. *)

  val unlock_user : t -> unit
  val with_kernel : t -> (unit -> 'a) -> 'a
  val with_user : t -> (unit -> 'a) -> 'a
  val stats : t -> stats
  val user_mode_active : t -> bool
end
