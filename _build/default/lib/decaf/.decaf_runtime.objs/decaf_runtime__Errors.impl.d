lib/decaf/errors.ml:
