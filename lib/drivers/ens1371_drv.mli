(** The ens1371 (Ensoniq AudioPCI) sound driver, native and decaf.

    The period interrupt and the DMA feed stay in the kernel; codec and
    sample-rate-converter programming, mixer-control registration, and
    the PCM callbacks run in the decaf driver. Registering the card with
    the kernel sound library from user level goes through the Jeannie
    stub for [snd_card_register] — the paper's Figure 2. *)

type t

val vendor_id : int
val device_id : int

val setup_device :
  slot:string -> io_base:int -> irq:int -> unit -> Decaf_hw.Ens1371_hw.t

val insmod : ?dev:string -> Driver_env.t -> (t, int) result
(** Load the module, or bind one more device when it is already loaded
    (refcounted across instances); [dev] pins the bind to one slot. *)

val rmmod : t -> unit
val init_latency_ns : t -> int
val substream : t -> Decaf_kernel.Sndcore.substream
val card : t -> Decaf_kernel.Sndcore.card
val mixer_controls : int
(** Number of mixer controls registered at probe (each registration is a
    downcall). *)

val user_ptr_syncs : t -> int
(** Deferred hardware-pointer refreshes ([ens1371_pcm_ptr]
    notifications, one per period interrupt) delivered to the user-level
    driver; 0 in native mode. *)

val adapter_wire_bytes : int

val active : unit -> t option
(** The instance bound by the most recent successful [insmod], until its
    [rmmod]. *)

val suspend : t -> unit
(** PM suspend: cross to the decaf driver and silence the DAC. *)

val resume : t -> unit
(** PM resume: re-initialize the AC97 codec, reprogram the sample-rate
    converter, and restart playback if it was running. *)

module Core : Driver_core.DRIVER with type t = t
(** Registry name ["ens1371"], PCI bus, the single (1274, 1371) id. *)
