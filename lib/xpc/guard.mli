(** Plan-derived validators for inbound crossings.

    The kernel side of the XPC boundary treats the user-level driver as
    untrusted: whatever comes back from an upcall (or rides a deferred
    notification) is validated before kernel state absorbs it. A guard
    is built from a {!Marshal_plan.t} plus per-field rules; every
    checker first enforces writability — a field the plan marks [Read]
    must never be accepted inbound — and then the field's rule.
    Violations raise {!Boundary.Boundary_violation} (counted in
    {!Boundary.totals}), which the recovery supervisor handles like any
    other driver fault: restart within budget, never a panic.

    Each accepted check charges
    {!Decaf_kernel.Cost.t.guard_check_ns} to the virtual clock and the
    serving dispatch lane, so validation cost shows up in the Xpcperf
    trajectory under the [guard] axis. *)

type rule =
  | Range of int * int  (** inclusive bounds *)
  | Enum of int list
  | Max_len of int  (** bound on a variable-length array *)
  | Non_negative
  | Any  (** writability check only *)

type t

val make : Marshal_plan.t -> (string * rule) list -> t
(** Rules may only name fields of the plan; unknown fields and duplicate
    rules raise [Invalid_argument] (a stub-generation bug, not runtime
    hostility). Planned fields without a rule get the writability check
    only. *)

val type_id : t -> string

val rejections : t -> int
(** Violations this validator has detected since construction. *)

val int_field : t -> field:string -> int -> int
val bool_field : t -> field:string -> bool -> bool
val array_field : t -> field:string -> int array -> int array
(** Validate one inbound field (writability, then rule); return the
    value unchanged when it passes. With the guard axis off they are
    free passthroughs. *)

val check_inbound_bytes : t -> int -> unit
(** Bound one inbound payload's size ({!limits}[.max_inbound_bytes]) —
    the kmalloc an inbound crossing can force on the kernel. Enforced
    even when the guard axis is off. *)

(** {1 The guard axis} *)

val set_enabled : bool -> unit
(** Toggle per-field validation (on by default). Off is the Xpcperf
    measurement baseline for the validation-cost overhead; capability
    handles and payload bounds stay enforced either way. *)

val is_enabled : unit -> bool

(** {1 Inbound growth limits} *)

type limits = {
  mutable max_inbound_bytes : int;
      (** largest accepted inbound payload (default 4096) *)
  mutable max_batch_queue : int;
      (** deferred-call queue bound per target, enforced by
          {!Batch.post} as drop + count (default 1024) *)
}

val limits : limits

val configure : ?max_inbound_bytes:int -> ?max_batch_queue:int -> unit -> unit
(** Module-parameter discipline: an out-of-range value logs a warning
    and falls back to the default instead of being honored. *)

val reset : unit -> unit
(** Re-enable validation and restore default limits (boot path). *)
