lib/decaf/runtime.ml: Decaf_kernel Decaf_xpc Hashtbl Jeannie Objtracker
