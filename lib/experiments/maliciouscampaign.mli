(** Malicious-driver campaign: the adversarial counterpart of
    {!Faultcampaign}.  Instead of a failing device, each trial models a
    compromised user-level driver attacking the XPC boundary — fuzzed
    return values, writes through read-only fields, forged / stale /
    cross-type capability handles, replayed delta acknowledgements,
    oversized inbound payloads, deferred-call queue floods, and attacks
    timed into suspend/resume and hotplug windows — with the recovery
    supervisor in the loop.

    The acceptance claim is the boundary-hardening contract: every
    attack is rejected at the boundary and either absorbed (drop +
    count) or converted into an ordinary recoverable driver fault; the
    kernel never panics and no kernel object absorbs a write from a
    rejected image. *)

type trial = {
  driver : string;
  attack : string;
  expected : string;
  outcome : string;
      (** ["clean"] (baseline), ["recovered"] (boundary fault detected,
          supervisor restarted the driver), ["degraded"] (persistent
          abuse exhausted the restart budget), ["dropped"] (overflow
          absorbed without a fault), or ["KERNEL-BUG"]. *)
  rejections : int;  (** boundary violations detected during the trial *)
  dropped : int;  (** inbound work discarded without a fault *)
  restarts : int;
  corrupted : int;
      (** kernel-object fields mutated by a rejected image — the
          validate-then-apply discipline keeps this zero *)
  kernel_bugs : int;
}

type report = {
  seed : int;
  trials : trial list;
  total_rejections : int;
  total_dropped : int;
  total_restarts : int;
  total_corrupted : int;
  total_kernel_bugs : int;
}

val run : ?seed:int -> unit -> report
(** Boot-per-trial, deterministic: trial [i] fuzzes with
    [Random.State.make [| seed + i |]].  Must not be called from inside
    a scheduler thread. *)

val check : report -> (unit, string) result
(** The gate [make campaign-malicious] and the test suite enforce:
    zero kernel bugs, zero corrupted kernel objects, at least 25 trials
    covering all five drivers, every attack class exercised (rejections,
    drops and restarts all nonzero), and every trial's outcome equal to
    its expectation. *)

val render : report -> string
