open Effect
open Effect.Deep

type thread = { tid : int; name : string }

exception Would_block_in_atomic of string

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let runq : (thread * (unit -> unit)) Queue.t = Queue.create ()
let cpu = { tid = 0; name = "<cpu>" }
let cur = ref cpu
let next_tid = ref 1
let irq_depth = ref 0
let spins = ref 0

let current_name () = !cur.name
let current_tid () = !cur.tid
let in_interrupt () = !irq_depth > 0
let enter_interrupt () = incr irq_depth
let irq_mask = ref 0

(* Invoked whenever the CPU becomes able to take an interrupt again
   (leaves interrupt context, restores the irq mask): the interrupt
   layer registers a drain of its pending-line backlog here, so blocked
   lines wait silently instead of polling. *)
let irq_window_hook = ref (fun () -> ())
let set_irq_window_hook f = irq_window_hook := f

let exit_interrupt () =
  if !irq_depth = 0 then Panic.bug "Sched.exit_interrupt: not in interrupt";
  decr irq_depth;
  if !irq_depth = 0 && !irq_mask = 0 then !irq_window_hook ()

let spin_depth () = !spins
let local_irq_save () = incr irq_mask

let local_irq_restore () =
  if !irq_mask = 0 then Panic.bug "Sched.local_irq_restore: not masked";
  decr irq_mask;
  if !irq_mask = 0 && !irq_depth = 0 then !irq_window_hook ()

let irqs_masked () = !irq_mask > 0
let spin_acquire () = incr spins

let spin_release () =
  if !spins = 0 then Panic.bug "Sched.spin_release: no spinlock held";
  decr spins

let assert_may_block what =
  if in_interrupt () then
    raise (Would_block_in_atomic (what ^ " in interrupt context"))
  else if !spins > 0 then
    raise (Would_block_in_atomic (what ^ " while holding a spinlock"))

let enqueue t f = Queue.push (t, f) runq
let runnable_count () = Queue.length runq

let handler (t : thread) : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> ());
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                enqueue t (fun () -> continue k ()))
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let fired = ref false in
                let wake () =
                  if not !fired then begin
                    fired := true;
                    enqueue t (fun () -> continue k ())
                  end
                in
                register wake)
        | _ -> None);
  }

let spawn ?(name = "kthread") body =
  let t = { tid = !next_tid; name } in
  incr next_tid;
  enqueue t (fun () -> match_with body () (handler t));
  t

let yield () = perform Yield

let suspend ~register =
  assert_may_block "blocking";
  perform (Suspend register)

let sleep_ns ns =
  suspend ~register:(fun wake -> ignore (Clock.after ns wake))

let run ?until_ns () =
  let past_deadline () =
    match until_ns with None -> false | Some t -> Clock.now () >= t
  in
  let rec loop () =
    if past_deadline () then ()
    else
      match Queue.take_opt runq with
      | Some (t, step) ->
          let prev = !cur in
          cur := t;
          Clock.consume Cost.current.ctx_switch_ns;
          step ();
          cur := prev;
          loop ()
      | None -> if Clock.advance_to_next_event () then loop () else ()
  in
  loop ()

let reset () =
  Queue.clear runq;
  cur := cpu;
  irq_depth := 0;
  irq_mask := 0;
  spins := 0;
  next_tid := 1
