lib/workloads/mpg123.ml: Decaf_hw Decaf_kernel Format
