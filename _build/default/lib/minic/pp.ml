open Ast

let ikind_to_string unsigned kind =
  let base =
    match kind with
    | Ichar -> "char"
    | Ishort -> "short"
    | Iint -> "int"
    | Ilong -> "long"
    | Ilonglong -> "long long"
  in
  if unsigned then "unsigned " ^ base else base

(* Print a type as specifier text; arrays are handled at the declarator. *)
let rec typ ppf = function
  | Tvoid -> Format.pp_print_string ppf "void"
  | Tint { kind; unsigned } ->
      Format.pp_print_string ppf (ikind_to_string unsigned kind)
  | Tnamed n -> Format.pp_print_string ppf n
  | Tstruct n -> Format.fprintf ppf "struct %s" n
  | Tptr t -> Format.fprintf ppf "%a *" typ t
  | Tarray (t, _) -> Format.fprintf ppf "%a *" typ t
(* bare array type (no declarator): decays to pointer *)

(* Split a declarator type into (specifier type, array suffixes). *)
let rec split_arrays = function
  | Tarray (t, n) ->
      let base, dims = split_arrays t in
      (base, dims @ [ n ])
  | t -> (t, [])

let declarator ppf (t, name) =
  let base, dims = split_arrays t in
  Format.fprintf ppf "%a %s" typ base name;
  List.iter
    (function
      | Some n -> Format.fprintf ppf "[%d]" n
      | None -> Format.fprintf ppf "[]")
    dims

let unop_to_string = function
  | Neg -> "-"
  | Lnot -> "!"
  | Bnot -> "~"
  | Deref -> "*"
  | Addr_of -> "&"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Land -> "&&"
  | Lor -> "||"

(* Fully parenthesized output: simple and unambiguous for reparsing. *)
let rec expr ppf = function
  | Econst n ->
      if n < 0 then Format.fprintf ppf "(%d)" n else Format.fprintf ppf "%d" n
  | Estr s -> Format.fprintf ppf "%S" s
  | Echar c -> Format.fprintf ppf "'%s'" (Char.escaped c)
  | Eident x -> Format.pp_print_string ppf x
  | Eunop (op, e) -> Format.fprintf ppf "(%s%a)" (unop_to_string op) expr e
  | Ebinop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" expr a (binop_to_string op) expr b
  | Eassign (None, l, r) -> Format.fprintf ppf "%a = %a" expr l expr r
  | Eassign (Some op, l, r) ->
      Format.fprintf ppf "%a %s= %a" expr l (binop_to_string op) expr r
  | Ecall (f, args) ->
      Format.fprintf ppf "%a(%a)" expr f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           expr)
        args
  | Efield (e, f) -> Format.fprintf ppf "%a.%s" expr e f
  | Earrow (e, f) -> Format.fprintf ppf "%a->%s" expr e f
  | Eindex (e, i) -> Format.fprintf ppf "%a[%a]" expr e expr i
  | Ecast (t, e) -> Format.fprintf ppf "((%a) %a)" typ t expr e
  | Esizeof_type t -> Format.fprintf ppf "sizeof(%a)" typ t
  | Esizeof_expr e -> Format.fprintf ppf "(sizeof %a)" expr e
  | Econd (c, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" expr c expr a expr b
  | Epostincr e -> Format.fprintf ppf "(%a++)" expr e
  | Epostdecr e -> Format.fprintf ppf "(%a--)" expr e
  | Epreincr e -> Format.fprintf ppf "(++%a)" expr e
  | Epredecr e -> Format.fprintf ppf "(--%a)" expr e

let rec stmt ppf (s : Ast.stmt) =
  match s.skind with
  | Sexpr e -> Format.fprintf ppf "@[%a;@]" expr e
  | Sdecl (t, name, init) -> (
      match init with
      | Some e -> Format.fprintf ppf "@[%a = %a;@]" declarator (t, name) expr e
      | None -> Format.fprintf ppf "@[%a;@]" declarator (t, name))
  | Sif (c, a, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" expr c stmts a
  | Sif (c, a, b) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        expr c stmts a stmts b
  | Swhile (c, body) ->
      Format.fprintf ppf "@[<v 2>while (%a) {@,%a@]@,}" expr c stmts body
  | Sdo (body, c) ->
      Format.fprintf ppf "@[<v 2>do {@,%a@]@,} while (%a);" stmts body expr c
  | Sfor (init, cond, update, body) ->
      let pp_init ppf = function
        | Some ({ skind = Sdecl _; _ } as s) -> stmt_inline ppf s
        | Some { skind = Sexpr e; _ } -> expr ppf e
        | Some s -> stmt_inline ppf s
        | None -> ()
      in
      let pp_opt_expr ppf = function Some e -> expr ppf e | None -> () in
      Format.fprintf ppf "@[<v 2>for (%a; %a; %a) {@,%a@]@,}" pp_init init
        pp_opt_expr cond pp_opt_expr update stmts body
  | Sswitch (e, cases) ->
      let pp_case ppf = function
        | Ast.Case (v, body) ->
            Format.fprintf ppf "@[<v 2>case %d:@,%a@]"
              v stmts body
        | Ast.Default body ->
            Format.fprintf ppf "@[<v 2>default:@,%a@]" stmts body
      in
      Format.fprintf ppf "@[<v 2>switch (%a) {@,%a@]@,}" expr e
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_case)
        cases
  | Sreturn (Some e) -> Format.fprintf ppf "@[return %a;@]" expr e
  | Sreturn None -> Format.pp_print_string ppf "return;"
  | Sgoto l -> Format.fprintf ppf "goto %s;" l
  | Slabel l -> Format.fprintf ppf "%s:" l
  | Sbreak -> Format.pp_print_string ppf "break;"
  | Scontinue -> Format.pp_print_string ppf "continue;"
  | Sblock body -> Format.fprintf ppf "@[<v 2>{@,%a@]@,}" stmts body

(* like stmt but without the trailing semicolon (for for-loop headers) *)
and stmt_inline ppf (s : Ast.stmt) =
  match s.skind with
  | Sdecl (t, name, Some e) ->
      Format.fprintf ppf "%a = %a" declarator (t, name) expr e
  | Sdecl (t, name, None) -> declarator ppf (t, name)
  | _ -> stmt ppf s

and stmts ppf body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut stmt ppf body

let param ppf (p : param) =
  if p.pname = "..." then Format.pp_print_string ppf "..."
  else if p.pname = "" then typ ppf p.ptyp
  else declarator ppf (p.ptyp, p.pname)

let func ppf (f : Ast.func) =
  Format.fprintf ppf "@[<v 2>%s%a %s(%a) {@,%a@]@,}"
    (if f.fstatic then "static " else "")
    typ f.fret f.fname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       param)
    f.fparams stmts f.fbody

let attr ppf (a : attr) =
  match a.attr_arg with
  | Some arg -> Format.fprintf ppf " __attribute__((%s(%s)))" a.attr_name arg
  | None -> Format.fprintf ppf " __attribute__((%s))" a.attr_name

let field ppf (f : Ast.field) =
  Format.fprintf ppf "@[%a%a;@]" declarator (f.ftyp, f.fname)
    (Format.pp_print_list attr) f.fattrs

let struct_def ppf (s : Ast.struct_def) =
  Format.fprintf ppf "@[<v 2>struct %s {@,%a@]@,};" s.sname
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut field)
    s.sfields

let global ppf = function
  | Gstruct s -> struct_def ppf s
  | Gtypedef { tname; ttyp; _ } ->
      Format.fprintf ppf "typedef %a;" declarator (ttyp, tname)
  | Gfunc f -> func ppf f
  | Gfundecl { dname; dret; dparams; _ } ->
      Format.fprintf ppf "%a %s(%a);" typ dret dname
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           param)
        dparams
  | Gvar { vname; vtyp; vinit; _ } -> (
      match vinit with
      | Some e -> Format.fprintf ppf "%a = %a;" declarator (vtyp, vname) expr e
      | None -> Format.fprintf ppf "%a;" declarator (vtyp, vname))
  | Gpragma (text, _) -> Format.fprintf ppf "#%s" text

let file ppf (f : Ast.file) =
  Format.fprintf ppf "@[<v>%a@]@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
       global)
    f.globals

let with_str pp v = Format.asprintf "%a" pp v
let typ_to_string = with_str typ
let expr_to_string = with_str expr
let func_to_string = with_str func
let file_to_string = with_str file
