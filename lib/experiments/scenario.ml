module K = Decaf_kernel
open Decaf_drivers

let boot () =
  K.Boot.boot ();
  Decaf_xpc.Domain.reset ();
  Decaf_xpc.Channel.reset_stats ();
  Decaf_xpc.Channel.reset_config ();
  Decaf_xpc.Batch.reset ();
  Decaf_xpc.Ring.reset ();
  Decaf_xpc.Dispatch.reset ();
  Decaf_xpc.Marshal_plan.set_delta_enabled false;
  Decaf_xpc.Guard.reset ();
  Decaf_runtime.Runtime.reset ();
  (* fresh boot, fresh driver registry: every experiment loads drivers
     through the unified driver model *)
  Driver_core.reset ();
  Driver_set.register_defaults ()

let env_of = Driver_env.of_mode

let in_thread f =
  let result = ref None in
  ignore (K.Sched.spawn ~name:"workload" (fun () -> result := Some (f ())));
  K.Sched.run ();
  match !result with
  | Some v -> v
  | None -> K.Panic.bug "scenario: workload thread did not complete"

let kernel_user_crossings () =
  (Decaf_xpc.Channel.stats ()).Decaf_xpc.Channel.kernel_user_calls

let mac = "\x00\x1b\x21\x0a\x0b\x0c"
