(** XPC control transfer between domains, with crossing accounting.

    An XPC pays a fixed per-crossing cost plus a per-byte marshaling
    cost; the counters feed the "User/Kernel Crossings" column of the
    paper's Table 3. Crossings into user level from the kernel must be
    able to block, so attempting one in interrupt context or under a
    spinlock raises {!Decaf_kernel.Sched.Would_block_in_atomic} — the
    rule the paper's deferral techniques (§3.1.3) exist to satisfy.

    As in the implementation described in §3.1, XPCs to and from the
    kernel are always performed by C code: a call between the kernel and
    the decaf driver implicitly traverses the driver library, paying both
    the kernel/user and the C/Java costs. *)

type stats = {
  mutable kernel_user_calls : int;
      (** call/return round trips crossing the kernel/user boundary *)
  mutable c_java_calls : int;  (** round trips crossing the C/Java boundary *)
  mutable bytes_marshaled : int;
  mutable failures : int;  (** crossings that missed their deadline *)
  mutable retries : int;  (** failed idempotent crossings retried *)
  mutable lock_acquires : int;
      (** combolock acquisitions, machine-wide (spin + semaphore paths) *)
  mutable lock_contended : int;
      (** combolock acquisitions that found the lock unavailable *)
  mutable lock_spin_to_sem : int;
      (** kernel acquisitions converted from spin to semaphore because
          user level held or was waiting for the lock *)
  mutable lock_wait_ns : int;  (** virtual ns blocked on combolocks *)
}

exception
  Xpc_failure of { boundary : string; attempts : int; context : string }
(** A crossing that exhausted its deadline (and, for idempotent calls,
    its retries). Surfaced to the caller so the recovery supervisor can
    restart the user-level runtime instead of the kernel panicking. *)

val call :
  target:Domain.t ->
  ?payload_bytes:int ->
  ?reply_bytes:int ->
  ?idempotent:bool ->
  ?context:string ->
  (unit -> 'a) ->
  'a
(** Execute [f] in [target], charging crossing and marshaling costs for a
    call carrying [payload_bytes] and returning [reply_bytes]. A call
    whose target is the current domain is a plain procedure call: free,
    and not counted.

    Crossings consult the fault plan (site ["xpc." ^ context]); a firing
    [Xpc_timeout] charges the per-call deadline and raises
    {!Xpc_failure} — except that [idempotent] calls are first retried up
    to two more times with capped exponential backoff.

    There is deliberately no [~deferrable] flag here: a call returns
    ['a] to its caller, and a deferred call by definition cannot — the
    caller has moved on before it runs. Deferrable (one-way, non-urgent)
    calls go through {!Batch.post}, whose flush crossing is issued via
    this function and therefore reuses the same timeout/retry machinery
    and fault plan. *)

val set_direct_marshaling : bool -> unit
(** The optimization §4 proposes: transfer data directly between the
    driver nucleus and the decaf driver instead of unmarshaling in C and
    re-marshaling in Java. When enabled, a kernel<->decaf call pays a
    single crossing with one per-byte marshal pass (no C/Java leg). Off
    by default, as in the paper's implementation. *)

val direct_marshaling : unit -> bool

val in_flight : Domain.t -> int
(** Crossings currently executing in [target]. A user-level runtime
    services one XPC at a time, so {!Batch}'s asynchronous flush worker
    holds off while this is non-zero — a deferred notification must not
    reach into a domain that is mid-call (it would retroactively update
    marshaled state an in-progress call already captured). Synchronous
    {!Batch.doorbell}/{!Batch.drain} are not gated: their caller owns the
    ordering. *)

val stats : unit -> stats
(** The live counters. The [lock_*] columns are refreshed from
    {!Decaf_kernel.Sync.Combolock.totals} on each read. *)

val tracker_shards : unit -> Objtracker.stats array
(** Per-shard object-tracker counters summed over the machine's live
    trackers (see {!Objtracker.global_shard_stats}), so experiments can
    report shard-hit distribution alongside crossing counts. *)

val reset_stats : unit -> unit
(** Zero the counters, the machine-wide combolock totals and the
    object-tracker registry. Does {e not} touch configuration such as
    the direct-marshaling flag — use {!reset_config} for that. *)

val reset_config : unit -> unit
(** Restore default configuration (direct marshaling off). *)

val snapshot : unit -> stats
(** A copy of the current counters (for before/after measurements). *)
