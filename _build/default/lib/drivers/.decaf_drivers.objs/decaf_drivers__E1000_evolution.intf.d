lib/drivers/e1000_evolution.mli: Decaf_slicer
