lib/workloads/mpg123.mli: Decaf_hw Decaf_kernel Format
