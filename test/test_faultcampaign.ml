(* The fault-injection campaign as a tier-1 gate: a fixed seed must
   inject at least 100 faults across all five drivers with every one of
   them recovered, tolerated or explicitly degraded — and none reaching
   Panic.bug. *)

module FC = Decaf_experiments.Faultcampaign

let report = lazy (FC.run ~seed:0xdecaf ())

let campaign_passes () =
  let r = Lazy.force report in
  match FC.check r with
  | Ok () -> ()
  | Error m -> Alcotest.failf "campaign failed:\n%s\n%s" m (FC.render r)

let no_kernel_bugs () =
  let r = Lazy.force report in
  Alcotest.(check int) "no fault reaches Panic.bug" 0 r.FC.total_kernel_bugs

let volume () =
  let r = Lazy.force report in
  if r.FC.total_injected < 100 then
    Alcotest.failf "only %d faults injected" r.FC.total_injected

let accounting () =
  let r = Lazy.force report in
  Alcotest.(check int) "recovered + degraded = detected" r.FC.total_detected
    (r.FC.total_recovered + r.FC.total_degraded);
  List.iter
    (fun t ->
      Alcotest.(check int)
        (t.FC.driver ^ "/" ^ t.FC.fault ^ ": per-trial accounting")
        t.FC.detected
        (t.FC.recovered + t.FC.degraded))
    r.FC.trials

let both_paths_exercised () =
  let r = Lazy.force report in
  if r.FC.total_recovered = 0 then Alcotest.fail "no recovery happened";
  if r.FC.total_degraded = 0 then Alcotest.fail "no degradation happened"

let deterministic () =
  (* same seed, same counters: the plan's RNG is the only randomness *)
  let a = Lazy.force report and b = FC.run ~seed:0xdecaf () in
  Alcotest.(check int) "injected" a.FC.total_injected b.FC.total_injected;
  Alcotest.(check int) "detected" a.FC.total_detected b.FC.total_detected;
  Alcotest.(check int) "restarts" a.FC.total_restarts b.FC.total_restarts;
  Alcotest.(check (list string))
    "outcomes"
    (List.map (fun t -> t.FC.outcome) a.FC.trials)
    (List.map (fun t -> t.FC.outcome) b.FC.trials)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "faultcampaign"
    [
      ( "campaign",
        [
          tc "passes acceptance" campaign_passes;
          tc "no kernel bugs" no_kernel_bugs;
          tc ">=100 faults injected" volume;
          tc "episode accounting" accounting;
          tc "recovery and degradation both seen" both_paths_exercised;
          tc "deterministic under fixed seed" deterministic;
        ] );
    ]
