lib/decaf/runtime.mli: Decaf_xpc
