type t = Kernel | Driver_lib | Decaf_driver

let to_string = function
  | Kernel -> "kernel"
  | Driver_lib -> "driver-library"
  | Decaf_driver -> "decaf-driver"

let pp ppf d = Format.pp_print_string ppf (to_string d)
let cur = ref Kernel
let current () = !cur

let with_domain d f =
  let prev = !cur in
  cur := d;
  match f () with
  | v ->
      cur := prev;
      v
  | exception e ->
      cur := prev;
      raise e

let is_user = function Kernel -> false | Driver_lib | Decaf_driver -> true
let reset () = cur := Kernel
