(** DriverSlicer annotations.

    Two kinds appear in a legacy driver (§2.4, §3.2.4):

    - field attributes on struct members guiding marshaling, e.g.
      [__attribute__((exp(PCI_LEN)))] marking a pointer as a
      fixed-length array;
    - [DECAF_RVAR(x); / DECAF_WVAR(x); / DECAF_RWVAR(x);] statements in
      entry-point functions declaring that the decaf driver reads and/or
      writes variable [x]. *)

type access = Read | Write | Read_write

type field_annot = {
  fa_struct : string;
  fa_field : string;
  fa_kind : string;  (** attribute name, e.g. "exp" or "opt" *)
  fa_arg : string option;
}

type var_annot = {
  va_function : string;  (** entry point containing the annotation *)
  va_access : access;
  va_path : string;  (** annotated expression, e.g. "adapter->msg_enable" *)
  va_field : string;  (** last path component *)
  va_line : int;  (** source line of the annotation statement *)
}

type t = { fields : field_annot list; vars : var_annot list }

val collect : Decaf_minic.Ast.file -> t

val count_lines : t -> int
(** Number of annotation sites — the "DriverSlicer Annotations" column of
    Table 2. *)

val plan_access : access -> Decaf_xpc.Marshal_plan.access
