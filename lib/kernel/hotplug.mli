(** Bus hotplug events.

    The PCI, USB and input bus cores announce device arrival and removal
    here; interested parties (the driver registry in [Decaf_drivers])
    subscribe and route the events to probe/remove. Removal events are
    published {e before} the bus unbinds the device so a subscriber can
    drain in-flight work — XPC crossings, batched notifications — while
    the driver is still bound. *)

type bus = Pci | Usb | Input

type event =
  | Device_added of { bus : bus; id : string; vendor : int; device : int }
  | Device_removed of { bus : bus; id : string }

val bus_name : bus -> string

val subscribe : (event -> unit) -> unit
(** Handlers run synchronously, in publication order, in the publishing
    thread. Subscriptions last until the next {!reset} (each kernel boot
    starts with no subscribers). *)

val publish : event -> unit

val events_seen : unit -> int
(** Events published since the last {!reset}. *)

val reset : unit -> unit
