(* Malicious-driver campaign: the adversarial counterpart of
   Faultcampaign.  Where the fault campaign models a failing DEVICE,
   this one models a compromised USER-LEVEL DRIVER — hostile return
   values, forged and stale capability handles, cross-type handle
   confusion at aliased addresses, replayed delta acknowledgements,
   unbounded deferred-call queues, and attacks timed into suspend/
   resume and hotplug windows.  The figure of merit is the boundary-
   hardening claim: every attack is rejected at the XPC boundary and
   either absorbed (drop + count) or routed to the recovery supervisor
   as an ordinary driver fault.  Nothing panics the kernel, and no
   kernel object absorbs an unvalidated write. *)

module K = Decaf_kernel
module Hw = Decaf_hw
module Xpc = Decaf_xpc
module Errors = Decaf_runtime.Errors
module Supervisor = Decaf_runtime.Supervisor
module Runtime = Decaf_runtime.Runtime
open Decaf_drivers
open Decaf_workloads

type trial = {
  driver : string;
  attack : string;
  expected : string;
  outcome : string;
  rejections : int;  (* boundary violations detected during the trial *)
  dropped : int;  (* inbound work discarded without a fault *)
  restarts : int;
  corrupted : int;  (* kernel-object fields mutated by a rejected image *)
  kernel_bugs : int;
}

type report = {
  seed : int;
  trials : trial list;
  total_rejections : int;
  total_dropped : int;
  total_restarts : int;
  total_corrupted : int;
  total_kernel_bugs : int;
}

let ok_or what = function
  | Ok v -> v
  | Error rc -> Errors.throw ~driver:what ~errno:(-rc) what

(* --- hostile wire images ---

   A compromised decaf driver controls the reply bytes of an upcall, so
   the campaign crafts them directly with the XDR encoder: any handle
   bits, any presence flags (including fields the plan marks Read), any
   values.  The layouts mirror the honest encoders in E1000_objects /
   Rtl8139_objects — that is the wire format the kernel glue decodes. *)

let e1000_payload ~handle ?msg_enable ?flags ?link_up ?mtu ?config_space
    ?watchdog_events ?stats_gen () =
  let e = Xpc.Xdr.Enc.create () in
  Xpc.Xdr.Enc.uint e handle;
  let opt enc v =
    match v with
    | Some v ->
        Xpc.Xdr.Enc.bool e true;
        enc v
    | None -> Xpc.Xdr.Enc.bool e false
  in
  opt (Xpc.Xdr.Enc.int e) msg_enable;
  opt (Xpc.Xdr.Enc.int e) flags;
  opt (Xpc.Xdr.Enc.bool e) link_up;
  opt (Xpc.Xdr.Enc.int e) mtu;
  opt (Xpc.Xdr.Enc.array_var e Xpc.Xdr.Enc.uint) config_space;
  opt (Xpc.Xdr.Enc.int e) watchdog_events;
  opt (Xpc.Xdr.Enc.int e) stats_gen;
  Xpc.Xdr.Enc.to_bytes e

let rtl_payload ~handle ?msg_enable ?mc_filter ?rx_dropped ?stats_gen () =
  let e = Xpc.Xdr.Enc.create () in
  Xpc.Xdr.Enc.uint e handle;
  let opt enc v =
    match v with
    | Some v ->
        Xpc.Xdr.Enc.bool e true;
        enc v
    | None -> Xpc.Xdr.Enc.bool e false
  in
  opt (Xpc.Xdr.Enc.int e) msg_enable;
  opt (Xpc.Xdr.Enc.array_var e Xpc.Xdr.Enc.uint) mc_filter;
  opt (Xpc.Xdr.Enc.int e) rx_dropped;
  opt (Xpc.Xdr.Enc.int e) stats_gen;
  Xpc.Xdr.Enc.to_bytes e

(* Seeded hostile scalar: out of every rule's envelope, deterministic
   per trial so failures replay. *)
let hostile_int rng =
  match Random.State.int rng 3 with
  | 0 -> -(1 + Random.State.int rng 1000)
  | 1 -> 0x10000 + Random.State.int rng 0xffff
  | _ -> 0x7fff_ffff - Random.State.int rng 17

(* --- kernel-object invariant snapshots ---

   "Corrupted" means a rejected inbound image still mutated the kernel
   object: the validate-everything-then-apply discipline makes this
   impossible, and the campaign measures it rather than assumes it. *)

let e1000_snapshot (ka : E1000_objects.kernel_adapter) =
  ( ka.E1000_objects.k_msg_enable,
    ka.E1000_objects.k_flags,
    ka.E1000_objects.k_link_up,
    ka.E1000_objects.k_mtu,
    Array.copy ka.E1000_objects.k_config_space,
    ka.E1000_objects.k_watchdog_events )

let rtl_snapshot (ka : Rtl8139_objects.kernel_nic) =
  ( ka.Rtl8139_objects.k_msg_enable,
    Array.copy ka.Rtl8139_objects.k_mc_filter,
    ka.Rtl8139_objects.k_rx_dropped )

(* Run [attack] (expected to raise a boundary fault) and record whether
   the attacked object changed despite the rejection. *)
let checked corrupted snapshot attack =
  let pre = snapshot () in
  Fun.protect
    ~finally:(fun () -> if snapshot () <> pre then incr corrupted)
    attack

(* --- generic attacks (drivers without a shared-object layer) --- *)

(* Present a handle the kernel never issued for this type; the glue
   treats the failed resolution as a boundary fault, as the generated
   unmarshal code does. *)
let resolve_or_fault ~driver ~type_id handle =
  Xpc.Boundary.scoped driver (fun () ->
      match
        Xpc.Objtracker.resolve (Runtime.kernel_tracker ()) ~handle ~type_id
      with
      | Error reason ->
          raise
            (Xpc.Boundary.Boundary_violation { type_id; field = "handle"; reason })
      | Ok _ -> ())

(* A driver that posts deferred calls without ever letting the queue
   drain: tighten the queue bound, then flood without yielding.  The
   overflow is absorbed — drop + count, no fault — because posting is
   legal from interrupt context. *)
let flood_posts ~context n =
  Xpc.Guard.configure ~max_batch_queue:8 ();
  for _ = 1 to n do
    Xpc.Batch.post ~target:Xpc.Domain.Decaf_driver ~payload_bytes:64 ~context
      (fun () -> ())
  done

(* --- trial harness (the Faultcampaign pattern, minus the device
   faults): boot, set the scene, run the supervised episode, classify. *)

type case = {
  c_driver : string;
  c_attack : string;
  c_expected : string;
  c_setup : Random.State.t -> (unit -> unit) * int ref;
      (** runs after boot; returns the supervised workload body
          (including the attack, usually one-shot so the supervisor's
          retry converges) and the corrupted-object counter *)
}

let run_case ~seed c =
  Scenario.boot ();
  let rng = Random.State.make [| seed |] in
  let body, corrupted = c.c_setup rng in
  let bugs = ref 0 in
  (try
     Scenario.in_thread (fun () ->
         ignore (Driver_core.run c.c_driver ~mode:Driver_env.Decaf body))
   with _ -> incr bugs);
  let sup =
    match Driver_core.supervisor c.c_driver with
    | Some sup -> sup
    | None -> Supervisor.create ~name:c.c_driver ()
  in
  let st = Supervisor.stats sup in
  let totals = Xpc.Boundary.totals in
  let outcome =
    if !bugs > 0 then "KERNEL-BUG"
    else if Supervisor.state sup = Supervisor.Disabled then "degraded"
    else if st.Supervisor.detected > 0 then "recovered"
    else if totals.Xpc.Boundary.dropped > 0 then "dropped"
    else "clean"
  in
  {
    driver = c.c_driver;
    attack = c.c_attack;
    expected = c.c_expected;
    outcome;
    rejections = totals.Xpc.Boundary.rejected;
    dropped = totals.Xpc.Boundary.dropped;
    restarts = st.Supervisor.restarts;
    corrupted = !corrupted;
    kernel_bugs = !bugs;
  }

(* --- per-driver scenes --- *)

(* Each setup returns a workload body that runs the honest driver, then
   fires its attack exactly once (the [armed] ref): the supervisor's
   restart re-runs the body, the attack does not repeat, and the episode
   converges to a healthy driver — the "recovered" outcome.  Attacks
   marked persistent re-arm on every run and exhaust the restart
   budget instead. *)

let rtl_scene attack _rng =
  let link = Hw.Link.create ~rate_bps:100_000_000 () in
  ignore
    (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10
       ~mac:Scenario.mac ~link ());
  let armed = ref true in
  let corrupted = ref 0 in
  ( (fun () ->
      let t = Option.get (Rtl8139_drv.active ()) in
      let nd = Rtl8139_drv.netdev t in
      ok_or "8139too-open" (K.Netcore.open_dev nd);
      ignore
        (Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000 ~msg_bytes:1500);
      if !armed then begin
        armed := false;
        attack ~corrupted (Rtl8139_drv.kernel_nic t)
      end),
    corrupted )

let e1000_scene ?(persistent = false) attack _rng =
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  let armed = ref true in
  let corrupted = ref 0 in
  ( (fun () ->
      let t = Option.get (E1000_drv.active ()) in
      let nd = E1000_drv.netdev t in
      ok_or "e1000-open" (K.Netcore.open_dev nd);
      ignore
        (Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000 ~msg_bytes:1500);
      if !armed then begin
        if not persistent then armed := false;
        attack ~corrupted (E1000_drv.kernel_adapter t)
      end),
    corrupted )

let ens_scene attack _rng =
  let model =
    Ens1371_drv.setup_device ~slot:"00:06.0" ~io_base:0xd000 ~irq:9 ()
  in
  let armed = ref true in
  let corrupted = ref 0 in
  ( (fun () ->
      let t = Option.get (Ens1371_drv.active ()) in
      ignore
        (Mpg123.play ~substream:(Ens1371_drv.substream t) ~model
           ~duration_ns:20_000_000);
      if !armed then begin
        armed := false;
        attack ~corrupted ()
      end),
    corrupted )

let uhci_scene attack _rng =
  let model = Uhci_drv.setup_device ~io_base:0xe000 ~irq:5 () in
  let armed = ref true in
  let corrupted = ref 0 in
  ( (fun () ->
      ignore (Tar_usb.untar ~model ~files:1 ~file_bytes:4096);
      if !armed then begin
        armed := false;
        attack ~corrupted ()
      end),
    corrupted )

let psmouse_scene attack _rng =
  let model = Psmouse_drv.setup_device () in
  let armed = ref true in
  let corrupted = ref 0 in
  ( (fun () ->
      let t = Option.get (Psmouse_drv.active ()) in
      ignore
        (Mouse_move.run ~model
           ~input:(Psmouse_drv.input_dev t)
           ~duration_ns:20_000_000);
      if !armed then begin
        armed := false;
        attack ~corrupted ()
      end),
    corrupted )

(* --- e1000 attacks --- *)

module EO = E1000_objects
module RO = Rtl8139_objects

let e1000_apply ~corrupted ka payload =
  checked corrupted
    (fun () -> e1000_snapshot ka)
    (fun () ->
      Xpc.Boundary.scoped "e1000" (fun () ->
          EO.unmarshal_at_kernel payload ka))

let e1000_fuzz rng ~corrupted ka =
  e1000_apply ~corrupted ka
    (e1000_payload ~handle:(EO.adapter_handle ka) ~msg_enable:(hostile_int rng)
       ~flags:(-1 - Random.State.int rng 7) ())

let e1000_readonly_write ~corrupted ka =
  (* mtu is Read in the plan: presence inbound is an attempted write
     through a read-only view, whatever the value *)
  e1000_apply ~corrupted ka
    (e1000_payload ~handle:(EO.adapter_handle ka) ~mtu:1500 ())

let e1000_oversized ~corrupted ka =
  (* 1500 uints ~ 6 KB: over the inbound payload bound before any field
     is even decoded *)
  e1000_apply ~corrupted ka
    (e1000_payload ~handle:(EO.adapter_handle ka)
       ~config_space:(Array.make 1500 0xffff_ffff) ())

let e1000_forged_handle rng ~corrupted ka =
  e1000_apply ~corrupted ka
    (e1000_payload ~handle:(0x1dea_d000 + Random.State.int rng 0xfff) ())

let e1000_stale_handle ~corrupted ka =
  let h = EO.adapter_handle ka in
  Xpc.Objtracker.remove_by_handle (Runtime.kernel_tracker ()) ~handle:h;
  e1000_apply ~corrupted ka (e1000_payload ~handle:h ())

let e1000_cross_type ~corrupted ka =
  (* the tx ring shares the adapter's C address (§3.1.2): its handle is
     a real capability, just not for this type *)
  e1000_apply ~corrupted ka (e1000_payload ~handle:(EO.tx_ring_handle ka) ())

let e1000_forged_ack ~corrupted:_ ka =
  Xpc.Boundary.scoped "e1000" (fun () ->
      let issued = Xpc.Marshal_plan.Dirty.issued ka.EO.k_dirty in
      EO.ack_user_view ka ~upto:(issued + 7))

let e1000_flood ~corrupted:_ _ka = flood_posts ~context:"e1000_stats" 50

(* --- shared-ring attacks ---

   The slot ring is mapped in both domains, so a compromised driver can
   scribble arbitrary records into it and ring the doorbell.  The drain
   path validates every slot kernel-side — capability resolution on the
   handle, plan-derived guard rules on the scalar fields — and discards
   what fails, drop + count, without faulting the crossing. *)

let ring_of driver =
  match Xpc.Ring.find ~name:driver with
  | Some ring -> ring
  | None -> Errors.throw ~driver ~errno:19 "shared ring not mapped"

(* Forged slot contents: a handle the kernel never issued, an event
   kind outside the plan's enum, and hostile args under a real handle.
   All three slots must be rejected at drain and the kernel adapter
   left untouched. *)
let e1000_ring_forged rng ~corrupted ka =
  let ring = ring_of "e1000" in
  checked corrupted
    (fun () -> e1000_snapshot ka)
    (fun () ->
      ignore
        (Xpc.Ring.produce ring
           {
             Xpc.Ring.kind = EO.ring_ev_stats;
             handle = 0x4bad_0000 + Random.State.int rng 0xfff;
             arg0 = 1;
             arg1 = 0;
           });
      ignore
        (Xpc.Ring.produce ring
           {
             Xpc.Ring.kind = 99;
             handle = EO.adapter_handle ka;
             arg0 = 1;
             arg1 = 0;
           });
      ignore
        (Xpc.Ring.produce ring
           {
             Xpc.Ring.kind = EO.ring_ev_link;
             handle = EO.adapter_handle ka;
             arg0 = hostile_int rng;
             arg1 = 7;
           });
      Xpc.Ring.drain ring)

(* Overflow flood: well-formed records pumped in faster than any drain,
   past the ring's fixed depth.  The bounded ring absorbs the flood —
   excess slots are dropped and counted, nothing blocks or faults. *)
let e1000_ring_flood ~corrupted:_ ka =
  let ring = ring_of "e1000" in
  for i = 1 to 300 do
    ignore
      (Xpc.Ring.produce ring
         {
           Xpc.Ring.kind = EO.ring_ev_stats;
           handle = EO.adapter_handle ka;
           arg0 = i;
           arg1 = 0;
         })
  done

(* --- 8139too attacks --- *)

let rtl_apply ~corrupted ka payload =
  checked corrupted
    (fun () -> rtl_snapshot ka)
    (fun () ->
      Xpc.Boundary.scoped "8139too" (fun () ->
          RO.unmarshal_at_kernel payload ka))

let rtl_fuzz rng ~corrupted ka =
  rtl_apply ~corrupted ka
    (rtl_payload ~handle:(RO.nic_handle ka) ~msg_enable:(hostile_int rng) ())

let rtl_readonly_write ~corrupted ka =
  rtl_apply ~corrupted ka
    (rtl_payload ~handle:(RO.nic_handle ka) ~mc_filter:[| 0xffff; 0xffff |] ())

let rtl_forged_handle rng ~corrupted ka =
  rtl_apply ~corrupted ka
    (rtl_payload ~handle:(0x2bad_0000 + Random.State.int rng 0xfff) ())

let rtl_stale_handle ~corrupted ka =
  let h = RO.nic_handle ka in
  Xpc.Objtracker.remove_by_handle (Runtime.kernel_tracker ()) ~handle:h;
  rtl_apply ~corrupted ka (rtl_payload ~handle:h ())

let rtl_forged_ack ~corrupted:_ ka =
  Xpc.Boundary.scoped "8139too" (fun () ->
      let issued = Xpc.Marshal_plan.Dirty.issued ka.RO.k_dirty in
      RO.ack_user_view ka ~upto:(issued + 3))

let rtl_ring_forged rng ~corrupted ka =
  let ring = ring_of "8139too" in
  checked corrupted
    (fun () -> rtl_snapshot ka)
    (fun () ->
      ignore
        (Xpc.Ring.produce ring
           {
             Xpc.Ring.kind = RO.ring_ev_stats;
             handle = 0x5bad_0000 + Random.State.int rng 0xfff;
             arg0 = 1;
             arg1 = 0;
           });
      ignore
        (Xpc.Ring.produce ring
           {
             Xpc.Ring.kind = 7;
             handle = RO.nic_handle ka;
             arg0 = 1;
             arg1 = 0;
           });
      ignore
        (Xpc.Ring.produce ring
           {
             Xpc.Ring.kind = RO.ring_ev_rx_dropped;
             handle = RO.nic_handle ka;
             (* rx_dropped is a counter: negative is out of envelope *)
             arg0 = -(1 + Random.State.int rng 1000);
             arg1 = 0;
           });
      Xpc.Ring.drain ring)

(* --- hostile hotplug / PM windows --- *)

(* Suspend the adapter, then attack while it sits in the window: the
   boundary fault interrupts the PM sequence itself, and recovery has
   to re-probe out of the suspended state. *)
let e1000_pm_window_scene rng =
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  let armed = ref true in
  let corrupted = ref 0 in
  ignore rng;
  ( (fun () ->
      let t = Option.get (E1000_drv.active ()) in
      let nd = E1000_drv.netdev t in
      ok_or "e1000-open" (K.Netcore.open_dev nd);
      ignore
        (Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000 ~msg_bytes:1500);
      ok_or "e1000-suspend" (Driver_core.suspend "e1000");
      if !armed then begin
        armed := false;
        e1000_apply ~corrupted
          (E1000_drv.kernel_adapter t)
          (e1000_payload ~handle:0x5bad_f00d ())
      end;
      ok_or "e1000-resume" (Driver_core.resume "e1000");
      ignore
        (Netperf.send ~netdev:nd ~link ~duration_ns:2_000_000 ~msg_bytes:1500)),
    corrupted )

(* Replay a capability across an eject/replug window: the unbind path
   revoked it, so the replayed handle is stale even though the driver
   came back. *)
let psmouse_hotplug_window_scene _rng =
  let model = Psmouse_drv.setup_device () in
  let armed = ref true in
  let corrupted = ref 0 in
  ( (fun () ->
      let move () =
        let t = Option.get (Psmouse_drv.active ()) in
        ignore
          (Mouse_move.run ~model
             ~input:(Psmouse_drv.input_dev t)
             ~duration_ns:20_000_000)
      in
      move ();
      if !armed then begin
        armed := false;
        let kt = Runtime.kernel_tracker () in
        let addr = Xpc.Addr.alloc ~size:32 in
        let h = Xpc.Objtracker.issue kt ~addr ~type_id:"psmouse_serio" in
        Driver_core.eject "psmouse";
        (* unbinding revokes the instance's capabilities *)
        Xpc.Objtracker.remove_by_handle kt ~handle:h;
        ok_or "psmouse-reinsmod"
          (Driver_core.insmod "psmouse" ~mode:Driver_env.Decaf);
        resolve_or_fault ~driver:"psmouse" ~type_id:"psmouse_serio" h
      end;
      move ()),
    corrupted )

(* Flood the deferred-call queue while the card is suspended — the
   window where nothing drains it. *)
let ens_pm_window_scene _rng =
  let model =
    Ens1371_drv.setup_device ~slot:"00:06.0" ~io_base:0xd000 ~irq:9 ()
  in
  let armed = ref true in
  let corrupted = ref 0 in
  ( (fun () ->
      let t = Option.get (Ens1371_drv.active ()) in
      ignore
        (Mpg123.play ~substream:(Ens1371_drv.substream t) ~model
           ~duration_ns:10_000_000);
      ok_or "ens1371-suspend" (Driver_core.suspend "ens1371");
      if !armed then begin
        armed := false;
        flood_posts ~context:"ens1371_stats" 50
      end;
      ok_or "ens1371-resume" (Driver_core.resume "ens1371");
      ignore
        (Mpg123.play ~substream:(Ens1371_drv.substream t) ~model
           ~duration_ns:10_000_000)),
    corrupted )

(* --- generic attacks for the drivers without a shared-object layer --- *)

let forged_for driver type_id ~corrupted:_ () =
  resolve_or_fault ~driver ~type_id 0x3dad_b0b0

let stale_for driver type_id ~corrupted:_ () =
  let kt = Runtime.kernel_tracker () in
  let addr = Xpc.Addr.alloc ~size:32 in
  let h = Xpc.Objtracker.issue kt ~addr ~type_id in
  Xpc.Objtracker.remove_by_handle kt ~handle:h;
  resolve_or_fault ~driver ~type_id h

let cross_type_for driver ty_a ty_b ~corrupted:_ () =
  let kt = Runtime.kernel_tracker () in
  let addr = Xpc.Addr.alloc ~size:32 in
  let _ = Xpc.Objtracker.issue kt ~addr ~type_id:ty_a in
  let h_b = Xpc.Objtracker.issue kt ~addr ~type_id:ty_b in
  resolve_or_fault ~driver ~type_id:ty_a h_b

let flood_for context ~corrupted:_ () = flood_posts ~context 50

(* --- the trial matrix --- *)

let cases () =
  [
    (* 8139too *)
    { c_driver = "8139too"; c_attack = "none (baseline)"; c_expected = "clean";
      c_setup = rtl_scene (fun ~corrupted:_ _ -> ()) };
    { c_driver = "8139too"; c_attack = "fuzzed msg_enable";
      c_expected = "recovered";
      c_setup = (fun rng -> rtl_scene (rtl_fuzz rng) rng) };
    { c_driver = "8139too"; c_attack = "write to read-only mc_filter";
      c_expected = "recovered"; c_setup = rtl_scene rtl_readonly_write };
    { c_driver = "8139too"; c_attack = "forged handle";
      c_expected = "recovered";
      c_setup = (fun rng -> rtl_scene (rtl_forged_handle rng) rng) };
    { c_driver = "8139too"; c_attack = "stale handle (revoked)";
      c_expected = "recovered"; c_setup = rtl_scene rtl_stale_handle };
    { c_driver = "8139too"; c_attack = "forged ring slots";
      c_expected = "dropped";
      c_setup = (fun rng -> rtl_scene (rtl_ring_forged rng) rng) };
    { c_driver = "8139too"; c_attack = "forged delta ack";
      c_expected = "recovered"; c_setup = rtl_scene rtl_forged_ack };
    (* e1000 *)
    { c_driver = "e1000"; c_attack = "none (baseline)"; c_expected = "clean";
      c_setup = e1000_scene (fun ~corrupted:_ _ -> ()) };
    { c_driver = "e1000"; c_attack = "fuzzed msg_enable+flags";
      c_expected = "recovered";
      c_setup = (fun rng -> e1000_scene (e1000_fuzz rng) rng) };
    { c_driver = "e1000"; c_attack = "write to read-only mtu";
      c_expected = "recovered"; c_setup = e1000_scene e1000_readonly_write };
    { c_driver = "e1000"; c_attack = "oversized inbound payload (6KB)";
      c_expected = "recovered"; c_setup = e1000_scene e1000_oversized };
    { c_driver = "e1000"; c_attack = "forged handle";
      c_expected = "recovered";
      c_setup = (fun rng -> e1000_scene (e1000_forged_handle rng) rng) };
    { c_driver = "e1000"; c_attack = "stale handle (revoked)";
      c_expected = "recovered"; c_setup = e1000_scene e1000_stale_handle };
    { c_driver = "e1000"; c_attack = "cross-type handle (tx ring as adapter)";
      c_expected = "recovered"; c_setup = e1000_scene e1000_cross_type };
    { c_driver = "e1000"; c_attack = "forged delta ack (beyond issued)";
      c_expected = "recovered"; c_setup = e1000_scene e1000_forged_ack };
    { c_driver = "e1000"; c_attack = "persistent fuzzer (every restart)";
      c_expected = "degraded";
      c_setup = (fun rng -> e1000_scene ~persistent:true (e1000_fuzz rng) rng) };
    { c_driver = "e1000"; c_attack = "deferred-call queue flood";
      c_expected = "dropped"; c_setup = e1000_scene e1000_flood };
    { c_driver = "e1000"; c_attack = "forged ring slots";
      c_expected = "dropped";
      c_setup = (fun rng -> e1000_scene (e1000_ring_forged rng) rng) };
    { c_driver = "e1000"; c_attack = "ring overflow flood";
      c_expected = "dropped"; c_setup = e1000_scene e1000_ring_flood };
    (* ens1371 *)
    { c_driver = "ens1371"; c_attack = "forged handle";
      c_expected = "recovered";
      c_setup = ens_scene (forged_for "ens1371" "ens1371_card") };
    { c_driver = "ens1371"; c_attack = "stale handle (revoked)";
      c_expected = "recovered";
      c_setup = ens_scene (stale_for "ens1371" "ens1371_card") };
    { c_driver = "ens1371"; c_attack = "deferred-call queue flood";
      c_expected = "dropped";
      c_setup = ens_scene (flood_for "ens1371_stats") };
    (* uhci-hcd *)
    { c_driver = "uhci-hcd"; c_attack = "forged handle";
      c_expected = "recovered";
      c_setup = uhci_scene (forged_for "uhci-hcd" "uhci_qh") };
    { c_driver = "uhci-hcd"; c_attack = "cross-type handle (td as qh)";
      c_expected = "recovered";
      c_setup = uhci_scene (cross_type_for "uhci-hcd" "uhci_qh" "uhci_td") };
    { c_driver = "uhci-hcd"; c_attack = "stale handle (revoked)";
      c_expected = "recovered";
      c_setup = uhci_scene (stale_for "uhci-hcd" "uhci_qh") };
    (* psmouse *)
    { c_driver = "psmouse"; c_attack = "forged handle";
      c_expected = "recovered";
      c_setup = psmouse_scene (forged_for "psmouse" "psmouse_serio") };
    { c_driver = "psmouse"; c_attack = "stale handle (revoked)";
      c_expected = "recovered";
      c_setup = psmouse_scene (stale_for "psmouse" "psmouse_serio") };
    { c_driver = "psmouse"; c_attack = "deferred-call queue flood";
      c_expected = "dropped";
      c_setup = psmouse_scene (flood_for "psmouse_status") };
    (* hostile hotplug / PM windows *)
    { c_driver = "e1000"; c_attack = "forged handle in suspend window";
      c_expected = "recovered"; c_setup = e1000_pm_window_scene };
    { c_driver = "psmouse"; c_attack = "handle replay across eject/replug";
      c_expected = "recovered"; c_setup = psmouse_hotplug_window_scene };
    { c_driver = "ens1371"; c_attack = "queue flood while suspended";
      c_expected = "dropped"; c_setup = ens_pm_window_scene };
  ]

let drivers_covered trials =
  List.sort_uniq compare (List.map (fun t -> t.driver) trials)

let run ?(seed = 0xbadd) () =
  let trials =
    List.mapi (fun i c -> run_case ~seed:(seed + i) c) (cases ())
  in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 trials in
  {
    seed;
    trials;
    total_rejections = sum (fun t -> t.rejections);
    total_dropped = sum (fun t -> t.dropped);
    total_restarts = sum (fun t -> t.restarts);
    total_corrupted = sum (fun t -> t.corrupted);
    total_kernel_bugs = sum (fun t -> t.kernel_bugs);
  }

(* Acceptance: the boundary-hardening claim, machine-checkable. *)
let check r =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if r.total_kernel_bugs <> 0 then
    fail "%d attack(s) panicked the kernel or escaped the supervisor"
      r.total_kernel_bugs
  else if r.total_corrupted <> 0 then
    fail "%d kernel object(s) absorbed writes from a rejected image"
      r.total_corrupted
  else if List.length r.trials < 25 then
    fail "only %d trials (want >= 25)" (List.length r.trials)
  else if
    drivers_covered r.trials
    <> [ "8139too"; "e1000"; "ens1371"; "psmouse"; "uhci-hcd" ]
  then
    fail "campaign did not cover all five drivers: %s"
      (String.concat ", " (drivers_covered r.trials))
  else if r.total_rejections = 0 then fail "no attack was ever rejected"
  else if r.total_dropped = 0 then
    fail "queue floods were never absorbed by drop+count"
  else if r.total_restarts = 0 then
    fail "no attack ever cost the attacker a restart"
  else
    match List.find_opt (fun t -> t.outcome <> t.expected) r.trials with
    | Some t ->
        fail "%s / %s: expected %s, got %s" t.driver t.attack t.expected
          t.outcome
    | None -> Ok ()

let render r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Malicious-driver campaign (seed 0x%x): %d trials on 5 drivers\n" r.seed
    (List.length r.trials);
  add "%-9s %-38s %4s %4s %4s %4s  %-10s\n" "Driver" "Attack" "Rej" "Drop"
    "Rst" "Corr" "Outcome";
  List.iter
    (fun t ->
      add "%-9s %-38s %4d %4d %4d %4d  %-10s%s\n" t.driver t.attack
        t.rejections t.dropped t.restarts t.corrupted t.outcome
        (if t.outcome = t.expected then ""
         else " (expected " ^ t.expected ^ ")"))
    r.trials;
  add
    "Totals: rejections=%d dropped=%d restarts=%d corrupted=%d kernel-bugs=%d\n"
    r.total_rejections r.total_dropped r.total_restarts r.total_corrupted
    r.total_kernel_bugs;
  (match check r with
  | Ok () ->
      add
        "Acceptance: OK (every attack rejected or absorbed; 0 panics, 0 corrupted kernel objects)\n"
  | Error m -> add "Acceptance: FAILED — %s\n" m);
  Buffer.contents buf
