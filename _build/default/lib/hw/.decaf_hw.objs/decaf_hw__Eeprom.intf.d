lib/hw/eeprom.mli:
