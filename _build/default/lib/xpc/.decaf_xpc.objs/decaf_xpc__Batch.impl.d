lib/xpc/batch.ml: Channel Decaf_kernel Domain Hashtbl List Option Queue
