(** The decaf-check exploration experiment: drive the episode catalog
    through the DPOR explorer ({!Decaf_check.Explore}) and render the
    per-episode statistics, counterexamples, the dynamic
    lock-acquisition order, and the static/dynamic lock-order
    cross-check against decaf-lint. *)

type result = {
  x_depth : int;  (** branching-depth bound the exploration ran at *)
  x_report : Decaf_check.Explore.report;
}

val episode_names : string list

val run :
  ?episode:string ->
  ?depth:int ->
  ?smoke:bool ->
  ?minimize:bool ->
  unit ->
  result list
(** Explore one episode (or the whole catalog). [smoke] selects each
    episode's reduced smoke depth; an explicit [depth] overrides both.
    Raises [Invalid_argument] on an unknown episode name. *)

val render : result list -> string
(** Statistics table, one row per episode, with any counterexamples
    (violation, minimized replay trace, full discovery trace) under
    their row. *)

val render_json : result list -> string
(** Machine-readable: one object per episode with stats,
    counterexamples and the dynamic lock-order edges. *)

val render_lock_order : result list -> string
(** The accumulated dynamic lock-acquisition-order edges per episode. *)

val render_lock_diff : result list -> string
(** Static edges (decaf-lint over the bundled drivers) vs. dynamic
    edges (exploration), with AB/BA conflicts flagged. *)

val has_conflicts : result list -> bool
(** True if the static/dynamic cross-check found an AB/BA conflict. *)
