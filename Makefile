all: build

build:
	dune build

test:
	dune runtest

# The whole gate in one shot: compile, run the tier-1 test suite, hold
# the driver corpus to the static checks, and verify the XPC fast path
# against the committed trajectory.
check: build test lint bench-check

# Fail if the XPC fast path regressed against the committed trajectory:
# >10% on crossings/bytes or >5% on virtual-time throughput per
# (scenario, config) point (also runs as part of `dune runtest`).
bench-check:
	dune build @bench-smoke

# Regenerate the committed trajectory after a deliberate retuning and
# show what changed against the committed file.
bench-json:
	dune exec bench/main.exe -- json BENCH_xpc.json.new
	-diff -u BENCH_xpc.json BENCH_xpc.json.new
	mv BENCH_xpc.json.new BENCH_xpc.json

bench:
	dune exec bench/main.exe

# Static discipline checks over the five bundled driver sources; fails
# on any unwaived violation or stale waiver (the same gate runs inside
# `dune runtest` as the lint "corpus clean" test).
lint:
	dune exec bin/driverslicer.exe -- decaf-lint

clean:
	dune clean

.PHONY: all build test check bench-check bench-json bench lint clean
