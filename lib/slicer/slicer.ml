module Parser = Decaf_minic.Parser

type java_choice = All_user | Only of string list

type config = {
  partition : Partition.config;
  const_env : (string * int) list;
  java_functions : java_choice;
}

type output = {
  file : Decaf_minic.Ast.file;
  config : config;
  partition : Partition.result;
  annots : Annot.t;
  spec : Xdrspec.spec;
  plans : Decaf_xpc.Marshal_plan.t list;
  stubs : (string * string) list;
  split : Splitgen.split;
  lint : Lint.finding list;
}

let slice ~source (config : config) =
  let file = Parser.parse source in
  let partition = Partition.run file config.partition in
  let annots = Annot.collect file in
  let spec = Xdrspec.generate file ~const_env:config.const_env in
  let plans =
    Marshalgen.plans file ~user_funcs:partition.Partition.user ~annots
  in
  let stubs = Stubgen.generate file partition in
  let split = Splitgen.run file partition in
  let decaf, library =
    match config.java_functions with
    | All_user -> (partition.Partition.user, [])
    | Only names ->
        List.partition
          (fun f -> List.mem f names)
          partition.Partition.user
  in
  let lint =
    Lint.analyze ~file ~partition ~annots ~spec ~const_env:config.const_env
      ~decaf_funcs:decaf ~library_funcs:library ()
  in
  { file; config; partition; annots; spec; plans; stubs; split; lint }

let decaf_functions t =
  match t.config.java_functions with
  | All_user -> t.partition.Partition.user
  | Only names -> List.filter (fun f -> List.mem f names) t.partition.Partition.user

let library_functions t =
  match t.config.java_functions with
  | All_user -> []
  | Only names ->
      List.filter (fun f -> not (List.mem f names)) t.partition.Partition.user
