lib/hw/e1000_hw.ml: Decaf_kernel Eeprom Link Option Phy Queue String
