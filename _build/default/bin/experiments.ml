(* Regenerate the paper's entire evaluation: Tables 1-4 and the section
   5.1 case study, in order. *)

module E = Decaf_experiments

let () =
  print_endline "Decaf Drivers: full evaluation";
  print_endline "==============================";
  print_newline ();
  print_string (E.Table1.render (E.Table1.measure ()));
  print_newline ();
  print_string (E.Table2.render (E.Table2.measure ()));
  print_newline ();
  print_string (E.Table3.render (E.Table3.measure ()));
  print_newline ();
  print_string (E.Table4.render (E.Table4.measure ()));
  print_newline ();
  print_string (E.Casestudy.render (E.Casestudy.measure ()));
  print_newline ();
  print_string (E.Faultcampaign.render (E.Faultcampaign.run ()))
