module K = Decaf_kernel
module Io = K.Io

let reg_usbcmd = 0x00
let reg_usbsts = 0x02
let reg_usbintr = 0x04
let reg_frnum = 0x06
let reg_portsc1 = 0x10
let reg_portsc2 = 0x12
let cmd_rs = 0x01
let cmd_hcreset = 0x02
let sts_usbint = 0x01
let portsc_ccs = 0x001
let portsc_csc = 0x002
let portsc_ped = 0x004
let portsc_pr = 0x200
let frame_budget_bytes = 1280
let frame_ns = 1_000_000

type td_status = Td_ok | Td_stalled | Td_no_device

type td = {
  direction : K.Usbcore.direction;
  length : int;
  mutable moved : int;
  complete : actual:int -> td_status -> unit;
}

type t = {
  irq_line : int;
  mutable region : Io.region option;
  tds : td Queue.t;
  mutable usbcmd : int;
  mutable usbsts : int;
  mutable usbintr : int;
  mutable frnum : int;
  mutable portsc1 : int;
  mutable portsc2 : int;
  mutable frames : int;
  mutable written : int;
  mutable read_back : int;
  mutable tick : K.Clock.event_id option;
}

let port_enabled t = t.portsc1 land portsc_ped <> 0

let finish t td status =
  (match status with
  | Td_ok ->
      (match td.direction with
      | K.Usbcore.Dir_out -> t.written <- t.written + td.length
      | K.Usbcore.Dir_in -> t.read_back <- t.read_back + td.length)
  | Td_stalled | Td_no_device -> ());
  t.usbsts <- t.usbsts lor sts_usbint;
  if t.usbintr <> 0 then K.Irq.raise_irq t.irq_line;
  td.complete ~actual:td.moved status

let rec schedule_frame t =
  t.tick <- Some (K.Clock.after frame_ns (fun () -> on_frame t))

and on_frame t =
  t.tick <- None;
  if t.usbcmd land cmd_rs <> 0 then begin
    t.frnum <- (t.frnum + 1) land 0x7ff;
    t.frames <- t.frames + 1;
    (* Move up to the frame budget of bulk data through queued TDs. *)
    let budget = ref frame_budget_bytes in
    let continue = ref true in
    while !continue && !budget > 0 && not (Queue.is_empty t.tds) do
      if not (port_enabled t) then begin
        let td = Queue.pop t.tds in
        finish t td Td_no_device
      end
      else begin
        let td = Queue.peek t.tds in
        let chunk = min !budget (td.length - td.moved) in
        td.moved <- td.moved + chunk;
        budget := !budget - chunk;
        if td.moved >= td.length then begin
          ignore (Queue.pop t.tds);
          td.moved <- td.length;
          finish t td Td_ok
        end
        else continue := false
      end
    done;
    schedule_frame t
  end

let do_reset t =
  t.usbcmd <- 0;
  t.usbsts <- 0;
  t.usbintr <- 0;
  t.frnum <- 0;
  Option.iter K.Clock.cancel t.tick;
  t.tick <- None;
  (* Flash drive stays attached across controller reset. *)
  t.portsc1 <- portsc_ccs lor portsc_csc;
  t.portsc2 <- 0;
  Queue.iter (fun td -> td.complete ~actual:td.moved Td_no_device) t.tds;
  Queue.clear t.tds

let read t off (_w : Io.width) =
  match off with
  | _ when off = reg_usbcmd -> t.usbcmd
  | _ when off = reg_usbsts -> t.usbsts
  | _ when off = reg_usbintr -> t.usbintr
  | _ when off = reg_frnum -> t.frnum
  | _ when off = reg_portsc1 -> t.portsc1
  | _ when off = reg_portsc2 -> t.portsc2
  | _ -> 0

let write t off (_w : Io.width) v =
  match off with
  | _ when off = reg_usbcmd ->
      if v land cmd_hcreset <> 0 then do_reset t
      else begin
        let was_running = t.usbcmd land cmd_rs <> 0 in
        t.usbcmd <- v;
        let running = v land cmd_rs <> 0 in
        if running && not was_running then schedule_frame t;
        if (not running) && was_running then begin
          Option.iter K.Clock.cancel t.tick;
          t.tick <- None
        end
      end
  | _ when off = reg_usbsts -> t.usbsts <- t.usbsts land lnot v
  | _ when off = reg_usbintr -> t.usbintr <- v
  | _ when off = reg_frnum -> t.frnum <- v land 0x7ff
  | _ when off = reg_portsc1 ->
      (* w1c on connect-change; port reset enables the port when it
         completes 10 ms later. *)
      if v land portsc_csc <> 0 then t.portsc1 <- t.portsc1 land lnot portsc_csc;
      if v land portsc_pr <> 0 then begin
        t.portsc1 <- t.portsc1 lor portsc_pr;
        ignore
          (K.Clock.after 10_000_000 (fun () ->
               t.portsc1 <- t.portsc1 land lnot portsc_pr lor portsc_ped))
      end
      else if v land portsc_ped = 0 && t.portsc1 land portsc_ped <> 0 then
        t.portsc1 <- t.portsc1 land lnot portsc_ped
  | _ -> ()

let create ~io_base ~irq () =
  let t =
    {
      irq_line = irq;
      region = None;
      tds = Queue.create ();
      usbcmd = 0;
      usbsts = 0;
      usbintr = 0;
      frnum = 0;
      portsc1 = portsc_ccs lor portsc_csc;
      portsc2 = 0;
      frames = 0;
      written = 0;
      read_back = 0;
      tick = None;
    }
  in
  t.region <-
    Some
      (Io.register_ports ~base:io_base ~len:0x20
         ~read:(fun off w -> read t off w)
         ~write:(fun off w v -> write t off w v));
  t

let destroy t =
  Option.iter K.Clock.cancel t.tick;
  Option.iter Io.release t.region

let submit_td t ~direction ~length ~complete =
  if length < 0 then invalid_arg "Uhci_hw.submit_td";
  Queue.push { direction; length; moved = 0; complete } t.tds

let pending_tds t = Queue.length t.tds
let frames_run t = t.frames
let drive_bytes_written t = t.written
let drive_bytes_read t = t.read_back
