(* Global invariants checked on every explored schedule.

   Three families:

   - online monitors fed from the {!Decaf_kernel.Ktrace} event stream:
     an Eraser-style lockset race check over [Var] objects and a
     lock-acquisition-order recorder whose edge graph accumulates across
     every schedule of an episode (an AB/BA cycle is a violation even if
     no single schedule deadlocks);
   - end-of-schedule leak checks: deferred notifications, ring slots and
     in-flight crossings must all be gone once the machine quiesces;
   - the supervisor audit: with no fault plan active, a supervisor that
     detected anything means an exception crossed the XPC boundary that
     exploration should have surfaced directly. *)

module K = Decaf_kernel
module Xpc = Decaf_xpc

type violation = { v_kind : string; v_detail : string }

let vf v_kind fmt = Printf.ksprintf (fun v_detail -> { v_kind; v_detail }) fmt

let violation_to_string v = Printf.sprintf "%s: %s" v.v_kind v.v_detail

(* --- lock-order graph (per episode, across schedules) --- *)

type graph = {
  edges : (string * string, unit) Hashtbl.t;
  mutable cycle_reported : bool;
}

let new_graph () = { edges = Hashtbl.create 32; cycle_reported = false }

let note_edge g outer inner =
  if outer <> inner && not (Hashtbl.mem g.edges (outer, inner)) then
    Hashtbl.replace g.edges (outer, inner) ()

let edges g =
  Hashtbl.fold (fun e () acc -> e :: acc) g.edges []
  |> List.sort compare

(* Any cycle in the accumulated acquisition-order graph, as the lock
   sequence of one witness cycle. *)
let find_cycle g =
  let succs n =
    Hashtbl.fold
      (fun (a, b) () acc -> if a = n then b :: acc else acc)
      g.edges []
  in
  let nodes =
    Hashtbl.fold
      (fun (a, b) () acc ->
        let acc = if List.mem a acc then acc else a :: acc in
        if List.mem b acc then acc else b :: acc)
      g.edges []
  in
  let exception Found of string list in
  let rec dfs path visiting n =
    if List.mem n path then raise (Found (List.rev (n :: path)))
    else if List.mem n !visiting then ()
    else begin
      visiting := n :: !visiting;
      List.iter (dfs (n :: path) visiting) (succs n)
    end
  in
  match List.iter (fun n -> dfs [] (ref []) n) (List.sort compare nodes) with
  | () -> None
  | exception Found cyc -> Some cyc

let cycle_violation g =
  if g.cycle_reported then None
  else
    match find_cycle g with
    | None -> None
    | Some cyc ->
        g.cycle_reported <- true;
        Some
          (vf "lock-order" "acquisition-order cycle: %s"
             (String.concat " -> " cyc))

(* --- execution monitor (one per schedule) --- *)

(* Lockset state machine per shared [Var], Eraser-adapted to the one-CPU
   kernel: an access from interrupt context is protected by the locks
   acquired *inside the handler* plus the "<irqs-off>" pseudo-lock — a
   spinlock the interrupted thread holds does not keep a same-CPU
   handler out, only masking does, which is exactly the discipline
   lock_irqsave encodes. *)
type varstate = {
  mutable vs_owner : int;  (* first accessor; -1 is the irq pseudo-thread *)
  mutable vs_shared : bool;
  mutable vs_cset : string list option;  (* None until first shared access *)
  mutable vs_write_shared : bool;
  mutable vs_reported : bool;
}

type held = { h_lock : string; h_irq : bool (* acquired in irq context *) }

type t = {
  g : graph;
  locks : (int, held list) Hashtbl.t;  (* per-tid held stack, irq included *)
  vars : (string, varstate) Hashtbl.t;
  mutable races : violation list;
}

let monitor g = { g; locks = Hashtbl.create 16; vars = Hashtbl.create 16; races = [] }

let held_of m tid =
  match Hashtbl.find_opt m.locks tid with Some l -> l | None -> []

let accessor_id () = if K.Sched.in_interrupt () then -1 else K.Sched.current_tid ()

let irq_pseudo = "<irqs-off>"

let effective_lockset m =
  let tid = K.Sched.current_tid () in
  let irq = K.Sched.in_interrupt () in
  let same_ctx h = h.h_irq = irq in
  let locks =
    List.filter_map
      (fun h -> if same_ctx h then Some h.h_lock else None)
      (held_of m tid)
  in
  if irq || K.Sched.irqs_masked () then irq_pseudo :: locks else locks

let on_acquire m name =
  let tid = K.Sched.current_tid () in
  let irq = K.Sched.in_interrupt () in
  let held = held_of m tid in
  (* acquisition-order edges within the same context only: a handler's
     locks do not nest inside the preempted thread's *)
  List.iter
    (fun h -> if h.h_irq = irq then note_edge m.g h.h_lock name)
    held;
  Hashtbl.replace m.locks tid ({ h_lock = name; h_irq = irq } :: held)

let on_release m name =
  let tid = K.Sched.current_tid () in
  let rec drop = function
    | [] -> []
    | h :: rest -> if h.h_lock = name then rest else h :: drop rest
  in
  Hashtbl.replace m.locks tid (drop (held_of m tid))

let inter a b = List.filter (fun x -> List.mem x b) a

let on_var m name access =
  let id = accessor_id () in
  let ls = effective_lockset m in
  let vs =
    match Hashtbl.find_opt m.vars name with
    | Some vs -> vs
    | None ->
        let vs =
          {
            vs_owner = id;
            vs_shared = false;
            vs_cset = None;
            vs_write_shared = false;
            vs_reported = false;
          }
        in
        Hashtbl.replace m.vars name vs;
        vs
  in
  if id <> vs.vs_owner then vs.vs_shared <- true;
  if vs.vs_shared then begin
    let cset =
      match vs.vs_cset with None -> ls | Some c -> inter c ls
    in
    vs.vs_cset <- Some cset;
    if access = K.Ktrace.Write then vs.vs_write_shared <- true;
    if cset = [] && vs.vs_write_shared && not vs.vs_reported then begin
      vs.vs_reported <- true;
      m.races <-
        vf "race"
          "%s accessed by multiple contexts with no common lock (last: %s in %s)"
          name
          (K.Ktrace.access_name access)
          (if K.Sched.in_interrupt () then "irq context"
           else K.Sched.current_name ())
        :: m.races
    end
  end

let on_event m (o : K.Ktrace.obj) (a : K.Ktrace.access) =
  match (o, a) with
  | K.Ktrace.Lock s, K.Ktrace.Acquire -> on_acquire m (Trace.strip_stamp s)
  | K.Ktrace.Lock s, K.Ktrace.Release -> on_release m (Trace.strip_stamp s)
  | K.Ktrace.Var s, (K.Ktrace.Read | K.Ktrace.Write) -> on_var m s a
  | _ -> ()

let race_violations m = List.rev m.races

(* --- end-of-schedule checks --- *)

let leak_violations () =
  let out = ref [] in
  let add v = out := v :: !out in
  let bp = Xpc.Batch.pending () in
  if bp > 0 then
    add (vf "leak" "%d deferred notification(s) still queued at quiescence" bp);
  let rp = Xpc.Ring.pending () in
  if rp > 0 then
    add (vf "leak" "%d ring slot(s) still occupied at quiescence" rp);
  List.iter
    (fun d ->
      let n = Xpc.Channel.in_flight d in
      if n > 0 then
        add
          (vf "leak" "%d crossing(s) still in flight into %s at quiescence" n
             (Xpc.Domain.to_string d)))
    [ Xpc.Domain.Kernel; Xpc.Domain.Driver_lib; Xpc.Domain.Decaf_driver ];
  List.rev !out

(* With no fault plan installed, nothing should have needed recovering:
   a nonzero detected count means an exception escaped into a supervised
   region where exploration could not see it directly. *)
let supervisor_violations () =
  List.filter_map
    (fun (s : Decaf_drivers.Driver_core.snapshot) ->
      match s.s_supervisor with
      | Some st when st.Decaf_runtime.Supervisor.detected > 0 ->
          Some
            (vf "supervisor" "%s: supervisor detected %d fault(s) with no fault plan active"
               s.s_binding st.Decaf_runtime.Supervisor.detected)
      | _ -> None)
    (Decaf_drivers.Driver_core.snapshots ())
