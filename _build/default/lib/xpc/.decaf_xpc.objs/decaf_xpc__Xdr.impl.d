lib/xpc/xdr.ml: Array Buffer Bytes Int64 Printf
