(** Decaf-lint: interprocedural static checks over a legacy driver
    source (the analysis counterpart of the runtime's combolock and
    marshaling machinery).

    Five passes run over the MiniC AST and the call graph:

    - {b Lock/XPC discipline}: a lock-state lattice (spinlock depth,
      IRQ-disable depth) is propagated intraprocedurally through each
      body and interprocedurally along call edges starting from
      interrupt-context roots. Sleeping while atomic and XPC boundary
      crossings while atomic are errors — the static counterpart of the
      paper's "never call up with a spinlock held" rule that
      {!Decaf_kernel.Sync.Combolock} enforces dynamically.
    - {b Annotation soundness}: every [DECAF_RVAR/WVAR/RWVAR] annotation
      is compared against the field accesses actually reachable from the
      annotating function, and the post-conversion marshal plan (library
      C bodies plus annotations) is compared against the ground-truth
      plan — the §3.2.4 evolution hazard of stale or missing
      annotations.
    - {b Marshal boundary}: pointer-typed fields of structs that cross
      the XPC boundary must carry an [exp]/[opt] attribute; [exp] length
      constants must be resolvable (XDR generation silently defaults
      unknown constants to 16).
    - {b Error flow}: the syntactic {!Errcheck} findings plus the
      flow-sensitive {!Errcheck.flow_violations} results (error results
      overwritten before being tested, error values dropped at merge
      points).
    - {b Inbound validation}: every field the marshal plan copies in
      from user level must be examined (compared, switched over, or
      passed to a [*valid*/*check*/*clamp*] helper) by kernel-placed
      code — the static counterpart of the runtime's
      {!Decaf_xpc.Guard} per-field validators.  User-level checks do
      not count: an untrusted driver checking its own output proves
      nothing.

    Findings are either violations ([Error]/[Warning] — must be fixed or
    explicitly waived with a line-anchored suppression) or assumptions
    ([Info] — conservative notes, e.g. the assumed targets of an
    indirect call). *)

type pass =
  | Lock_discipline
  | Annotation_soundness
  | Marshal_boundary
  | Error_flow
  | Inbound_validation
  | Event_accounting
      (** the OCaml-source hygiene scan of {!scan_clock_consume}, not a
          MiniC pass *)

type severity = Error | Warning | Info

type finding = {
  f_pass : pass;
  f_severity : severity;
  f_anchor : string;
      (** containing function, or the struct name for struct-level
          findings *)
  f_line : int;  (** 1-based line in the driver source *)
  f_message : string;
  f_witness : string list;
      (** supporting chain, e.g. the call path establishing an atomic
          context *)
}

type waiver = {
  w_pass : pass;
  w_anchor : string;
  w_line : int;
  w_reason : string;  (** one-line justification, shown in the report *)
}

type report = {
  r_driver : string;
  r_findings : finding list;  (** everything, in source order *)
  r_waived : (finding * waiver) list;
  r_unwaived : finding list;  (** violations with no matching waiver *)
  r_assumptions : finding list;  (** [Info] findings *)
  r_unused_waivers : waiver list;
      (** waivers matching no finding — kept visible so suppressions
          cannot silently outlive the code they excuse *)
}

val pass_name : pass -> string
val severity_name : severity -> string

val default_atomic_roots : Partition.config -> string list
(** Critical roots whose name marks them as interrupt-context entry
    points (contains "intr", "irq" or "interrupt"). *)

val analyze :
  ?atomic_roots:string list ->
  ?extra_errfns:string list ->
  file:Decaf_minic.Ast.file ->
  partition:Partition.result ->
  annots:Annot.t ->
  spec:Xdrspec.spec ->
  const_env:(string * int) list ->
  decaf_funcs:string list ->
  library_funcs:string list ->
  unit ->
  finding list
(** Run all five passes. [atomic_roots] defaults to
    {!default_atomic_roots} of the partition config; [extra_errfns]
    seeds the error-flow pass like {!Errcheck.find_violations}'s
    [extra]. *)

val violations : finding list -> finding list
(** The [Error] and [Warning] findings. *)

val static_lock_order : Decaf_minic.Ast.file -> (string * string) list
(** (outer, inner) lock-acquisition-order edges: for every nested
    acquire, which lock-argument expression was already held when the
    inner one was taken. Intraprocedural and path-insensitive; feeds the
    static/dynamic lock-order cross-check against the exploration
    harness ({!Decaf_check.Lockorder} in the checker library). *)

val consume_waiver_marker : string
(** The same-line suppression comment for {!scan_clock_consume}:
    [(* decaf-lint: consume-ok *)]. *)

val scan_clock_consume :
  ?dirs:string list -> root:string -> unit -> finding list
(** The event-accounting hygiene pass: scan the repo's own OCaml
    sources under [root] (default dirs [lib/xpc] and [lib/drivers])
    for direct [Clock.consume] calls. Time consumed on a measured path
    without a birth stamp is invisible to the per-path latency
    histograms, so every such call must either use the
    {!Decaf_kernel.Clock} tracked-event API or carry the
    {!consume_waiver_marker} comment on the same line or the line
    immediately after (with the justification alongside). One
    [Warning] per unwaived line, in
    (dir, file, line) order; directories that do not exist under
    [root] are skipped, so the pass is inert when the sources are not
    alongside the binary. *)

val apply_waivers :
  driver:string -> waivers:waiver list -> finding list -> report
(** Match waivers to violations by (pass, anchor, line). Each waiver
    suppresses at most the violations at its exact anchor and line;
    unmatched waivers are reported back. *)

val to_text : report -> string
(** Human-readable report, one line per finding plus a summary. *)

val to_json : report -> string
(** Machine-readable report (stable field names, one JSON object). *)
