module K = Decaf_kernel
module Hw = Decaf_hw
module Xpc = Decaf_xpc
open Decaf_drivers

type direct_marshal = {
  indirect_init_ns : int;
  direct_init_ns : int;
  indirect_c_java_calls : int;
  direct_c_java_calls : int;
}

type lock_cost = {
  combolock_ns : int;
  semaphore_ns : int;
  iterations : int;
}

type marshal_selectivity = {
  plan_bytes : int;
  full_bytes : int;
  init_transfers : int;
}

type t = {
  direct_marshal : direct_marshal;
  lock_cost : lock_cost;
  marshal_selectivity : marshal_selectivity;
}

(* A1: e1000 decaf init latency with and without the direct path. *)
let e1000_decaf_init ~direct =
  Scenario.boot ();
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  Scenario.in_thread (fun () ->
      Xpc.Channel.set_direct_marshaling direct;
      let t =
        match E1000_drv.insmod (Driver_env.decaf ()) with
        | Ok t -> t
        | Error rc -> K.Panic.bug "e1000 insmod: %d" rc
      in
      let nd = E1000_drv.netdev t in
      let t0 = K.Clock.now () in
      (match K.Netcore.open_dev nd with
      | Ok () -> ()
      | Error rc -> K.Panic.bug "open: %d" rc);
      let init = E1000_drv.init_latency_ns t + (K.Clock.now () - t0) in
      let c_java = (Xpc.Channel.stats ()).Xpc.Channel.c_java_calls in
      E1000_drv.rmmod t;
      Xpc.Channel.set_direct_marshaling false;
      (init, c_java))

let measure_direct_marshal () =
  let indirect_init_ns, indirect_c_java_calls = e1000_decaf_init ~direct:false in
  let direct_init_ns, direct_c_java_calls = e1000_decaf_init ~direct:true in
  { indirect_init_ns; direct_init_ns; indirect_c_java_calls; direct_c_java_calls }

(* A2: virtual cost of the kernel-only path, combolock vs semaphore. *)
let measure_lock_cost () =
  let iterations = 10_000 in
  Scenario.boot ();
  let combo = K.Sync.Combolock.create () in
  let combolock_ns =
    Scenario.in_thread (fun () ->
        let t0 = K.Clock.now () in
        for _ = 1 to iterations do
          K.Sync.Combolock.with_kernel combo (fun () -> ())
        done;
        K.Clock.now () - t0)
  in
  Scenario.boot ();
  let sem = K.Sync.Semaphore.create 1 in
  let semaphore_ns =
    Scenario.in_thread (fun () ->
        let t0 = K.Clock.now () in
        for _ = 1 to iterations do
          K.Sync.Semaphore.down sem;
          K.Sync.Semaphore.up sem
        done;
        K.Clock.now () - t0)
  in
  { combolock_ns; semaphore_ns; iterations }

(* A3: bytes per adapter transfer, selective plan vs everything. *)
let measure_marshal_selectivity () =
  let out =
    Decaf_slicer.Slicer.slice ~source:E1000_src.source E1000_src.config
  in
  let full_bytes = Decaf_slicer.Xdrspec.wire_size out.Decaf_slicer.Slicer.spec "e1000_adapter" in
  (* transfers during init+open: probe, open, close use the adapter;
     count the kernel/user crossings that carry it *)
  Scenario.boot ();
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  let init_transfers =
    Scenario.in_thread (fun () ->
        let t = Result.get_ok (E1000_drv.insmod (Driver_env.decaf ())) in
        ignore (K.Netcore.open_dev (E1000_drv.netdev t));
        let crossings = Scenario.kernel_user_crossings () in
        E1000_drv.rmmod t;
        crossings)
  in
  { plan_bytes = E1000_objects.wire_size; full_bytes; init_transfers }

let measure () =
  {
    direct_marshal = measure_direct_marshal ();
    lock_cost = measure_lock_cost ();
    marshal_selectivity = measure_marshal_selectivity ();
  }

let render t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Ablations of the Decaf design decisions\n";
  add "A1: direct nucleus<->decaf marshaling (the optimization of section 4)\n";
  add "    e1000 decaf init: %.2f ms indirect -> %.2f ms direct (%.1f%% less)\n"
    (float_of_int t.direct_marshal.indirect_init_ns /. 1e6)
    (float_of_int t.direct_marshal.direct_init_ns /. 1e6)
    (100.
    *. float_of_int
         (t.direct_marshal.indirect_init_ns - t.direct_marshal.direct_init_ns)
    /. float_of_int t.direct_marshal.indirect_init_ns);
  add "    C/Java re-marshal legs: %d -> %d\n"
    t.direct_marshal.indirect_c_java_calls t.direct_marshal.direct_c_java_calls;
  add "A2: combolock kernel fast path vs plain semaphore (%d acquisitions)\n"
    t.lock_cost.iterations;
  add "    combolock %.3f ms, semaphore %.3f ms (%.1fx)\n"
    (float_of_int t.lock_cost.combolock_ns /. 1e6)
    (float_of_int t.lock_cost.semaphore_ns /. 1e6)
    (float_of_int t.lock_cost.semaphore_ns /. float_of_int t.lock_cost.combolock_ns);
  add "A3: field-selective marshal plan vs full-structure copy (e1000_adapter)\n";
  add "    %d bytes/transfer under the plan vs %d full (%d transfers at init: %d vs %d bytes)\n"
    t.marshal_selectivity.plan_bytes t.marshal_selectivity.full_bytes
    t.marshal_selectivity.init_transfers
    (t.marshal_selectivity.plan_bytes * t.marshal_selectivity.init_transfers)
    (t.marshal_selectivity.full_bytes * t.marshal_selectivity.init_transfers);
  Buffer.contents buf
