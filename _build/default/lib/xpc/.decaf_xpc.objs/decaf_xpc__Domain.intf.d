lib/xpc/domain.mli: Format
