(** Kernel timers. Handlers fire in interrupt context (high priority), so
    they must not block — which is exactly why the decaf E1000 watchdog
    is converted to enqueue a work item instead (§3.1.3). *)

type t

val hz : int
(** Ticks per virtual second (1000: one jiffy is 1 ms). *)

val jiffies : unit -> int

val create : ?name:string -> (unit -> unit) -> t

val mod_timer : t -> expires_ns:int -> unit
(** (Re)arm the timer to fire at absolute virtual time [expires_ns]. *)

val mod_timer_in : t -> int -> unit
(** Arm the timer [ns] from now. *)

val del_timer : t -> bool
(** Disarm; [true] if the timer was pending. *)

val pending : t -> bool

val fired : t -> int
(** Number of times the handler has run. *)
