type access = Read | Write | Read_write

type t = { type_id : string; fields : (string * access) list }

let make ~type_id fields =
  let names = List.map fst fields in
  let dedup = List.sort_uniq compare names in
  if List.length dedup <> List.length names then
    invalid_arg ("Marshal_plan.make: duplicate field in plan for " ^ type_id);
  { type_id; fields }

let type_id t = t.type_id
let fields t = t.fields

let access t name = List.assoc_opt name t.fields

let copies_in t name =
  match access t name with
  | Some (Read | Read_write) -> true
  | Some Write | None -> false

let copies_out t name =
  match access t name with
  | Some (Write | Read_write) -> true
  | Some Read | None -> false

let combine a b =
  match (a, b) with
  | Read_write, _ | _, Read_write -> Read_write
  | Read, Write | Write, Read -> Read_write
  | Read, Read -> Read
  | Write, Write -> Write

let union a b =
  if a.type_id <> b.type_id then
    invalid_arg "Marshal_plan.union: different types";
  let merged =
    List.fold_left
      (fun acc (name, acc_b) ->
        match List.assoc_opt name acc with
        | Some acc_a ->
            (name, combine acc_a acc_b) :: List.remove_assoc name acc
        | None -> (name, acc_b) :: acc)
      a.fields b.fields
  in
  { a with fields = List.rev merged }

let full ~type_id names =
  make ~type_id (List.map (fun n -> (n, Read_write)) names)

let pp ppf t =
  let pp_access ppf = function
    | Read -> Format.pp_print_string ppf "R"
    | Write -> Format.pp_print_string ppf "W"
    | Read_write -> Format.pp_print_string ppf "RW"
  in
  Format.fprintf ppf "@[<v>plan %s:@," t.type_id;
  List.iter
    (fun (name, a) -> Format.fprintf ppf "  %s: %a@," name pp_access a)
    t.fields;
  Format.fprintf ppf "@]"
