lib/slicer/slicer.mli: Annot Decaf_minic Decaf_xpc Partition Splitgen Xdrspec
