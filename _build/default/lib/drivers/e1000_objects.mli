(** Shared-object layer of the E1000 decaf driver: the "generated"
    marshaling code and container classes of §3.2.3, written out as the
    DriverSlicer XDR compilers would emit them.

    The kernel-side [struct e1000_adapter] has a simulated C address
    (embedded rings share it, offset by their position, reproducing the
    inner/outer aliasing of §3.1.2). The user-side {!java_adapter} is a
    container of public mutable fields. Marshaling is plan-driven: only
    the fields the decaf driver accesses cross the boundary, through
    real {!Decaf_xpc.Xdr} encoding, and unmarshaling consults the object
    tracker to update objects in place. *)

type ring = { mutable head : int; mutable tail : int; mutable count : int }

type kernel_adapter = {
  k_addr : int;  (** simulated C address *)
  k_tx_addr : int;  (** address of the embedded tx ring (= k_addr) *)
  k_rx_addr : int;
  k_tx : ring;
  k_rx : ring;
  mutable k_msg_enable : int;
  mutable k_flags : int;
  mutable k_link_up : bool;
  mutable k_mtu : int;
  k_config_space : int array;  (** 16 dwords, Figure 3's annotated array *)
  mutable k_watchdog_events : int;
}

type java_adapter = {
  mutable j_c_addr : int;  (** C pointer this object mirrors *)
  j_tx : ring;
  j_rx : ring;
  mutable j_msg_enable : int;
  mutable j_flags : int;
  mutable j_link_up : bool;
  mutable j_mtu : int;
  j_config_space : int array;
  mutable j_watchdog_events : int;
}

val config_words : int
(** Length of the saved PCI config-space array (dwords). *)

val plan : Decaf_xpc.Marshal_plan.t
(** The marshal plan DriverSlicer derives for [e1000_adapter]. *)

val adapter_key : java_adapter Decaf_xpc.Univ.key
val ring_key : ring Decaf_xpc.Univ.key

val fresh_kernel_adapter : unit -> kernel_adapter
(** Allocate with fresh simulated addresses. *)

val wire_size : int
(** Bytes of a full plan-selected marshal (used for XPC cost). *)

val marshal_to_user : kernel_adapter -> bytes
(** Encode the plan's copy-in fields. *)

val unmarshal_at_user : bytes -> kernel_adapter -> java_adapter
(** Decode at user level: finds (or creates and registers) the Java
    adapter for the C address in the user-level tracker, updates the
    planned fields in place, and returns it. *)

val marshal_to_kernel : java_adapter -> bytes
(** Encode the plan's copy-out fields for the return trip. *)

val unmarshal_at_kernel : bytes -> kernel_adapter -> unit
(** Apply the decaf driver's writes back to the kernel object. *)
