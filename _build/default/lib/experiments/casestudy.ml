open Decaf_drivers
module Slicer = Decaf_slicer.Slicer
module Errcheck = Decaf_slicer.Errcheck
module Stubgen = Decaf_slicer.Stubgen
module Xdrspec = Decaf_slicer.Xdrspec
module Ast = Decaf_minic.Ast
module Loc = Decaf_minic.Loc

type t = {
  violations : Errcheck.violation list;
  lines_removed : int;
  hw_layer_loc : int;
  savings_percent : float;
}

let e1000 () = Slicer.slice ~source:E1000_src.source E1000_src.config

let measure () =
  let out = e1000 () in
  let violations =
    Errcheck.find_violations out.Slicer.file ~extra:E1000_src.error_extra
  in
  let lines_removed, hw_layer_loc =
    Errcheck.exception_savings out.Slicer.file
      ~funcs:E1000_src.hw_layer_functions
  in
  {
    violations;
    lines_removed;
    hw_layer_loc;
    savings_percent =
      (if hw_layer_loc = 0 then 0.
       else 100. *. float_of_int lines_removed /. float_of_int hw_layer_loc);
  }

let render t =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Case study (section 5.1): error handling in the E1000\n";
  add "Broken error handling found by the exception conversion: %d cases\n"
    (List.length t.violations);
  List.iter
    (fun (v : Errcheck.violation) ->
      add "  line %4d  %-36s %s %s\n" v.Errcheck.v_line v.Errcheck.v_function
        (match v.Errcheck.v_kind with
        | Errcheck.Ignored_return -> "ignores error from"
        | Errcheck.Unchecked_variable var ->
            Printf.sprintf "stores error in '%s', never checks" var)
        v.Errcheck.v_callee)
    t.violations;
  add "Exception rewrite of the hardware layer removes %d of %d lines (%.1f%%)\n"
    t.lines_removed t.hw_layer_loc t.savings_percent;
  Buffer.contents buf

let figure2_stub () =
  let out = Slicer.slice ~source:Ens1371_src.source Ens1371_src.config in
  match List.assoc_opt "jeannie:snd_card_register" out.Slicer.stubs with
  | Some stub -> stub
  | None ->
      (* the entry point exists under its interface name *)
      List.assoc "jeannie:snd_card_new" out.Slicer.stubs

let figure3_xdr () =
  let out = e1000 () in
  Xdrspec.to_string out.Slicer.spec

let figure5_before_after () =
  let out = e1000 () in
  let fn =
    match Ast.find_function out.Slicer.file "e1000_config_dsp_after_link_change" with
    | Some fn -> fn
    | None -> failwith "e1000_config_dsp_after_link_change missing"
  in
  let source = out.Slicer.file.Ast.source in
  let lines = String.split_on_char '\n' source in
  let slice_lines first last =
    lines
    |> List.filteri (fun i _ -> i + 1 >= first && i + 1 <= last)
    |> String.concat "\n"
  in
  let before = slice_lines fn.Ast.floc_start.Loc.line fn.Ast.floc_end.Loc.line in
  (* the exception-style body: drop the propagation statements and the
     plumbing around them *)
  let after =
    String.split_on_char '\n' before
    |> List.filter (fun line ->
           let t = String.trim line in
           not
             (t = "if (ret_val)" || t = "return ret_val;"
             || t = "int ret_val;"))
    |> List.map (fun line ->
           Strutil.replace line ~needle:"ret_val = " ~replacement:"")
    |> String.concat "\n"
  in
  (before, after)
