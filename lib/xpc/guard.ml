module K = Decaf_kernel
module Plan = Marshal_plan

(* Kernel-side validation of inbound crossings (the reply/return half of
   an upcall, or a deferred notification's payload): the user-level
   driver is untrusted, so every field it hands back is checked against
   the marshal plan (writability) and a per-field rule (range, enum,
   length) before kernel state absorbs it. *)

type rule =
  | Range of int * int  (* inclusive bounds *)
  | Enum of int list
  | Max_len of int  (* variable-length arrays *)
  | Non_negative
  | Any  (* writability check only *)

type t = {
  plan : Plan.t;
  rules : (string, rule) Hashtbl.t;
  mutable rejections : int;  (* per-validator, for campaign assertions *)
}

(* The guard axis: when off, field rules are skipped and uncharged — the
   measurement baseline for the validation-cost overhead in Xpcperf.
   Capability-handle resolution (Objtracker) is part of the wire
   protocol and stays on either way. On by default: a secure boundary is
   the product configuration. *)
let enabled = ref true
let set_enabled v = enabled := v
let is_enabled () = !enabled

(* Inbound growth limits. [max_inbound_bytes] bounds one inbound payload
   (the kmalloc a crossing can force on the kernel side);
   [max_batch_queue] bounds each deferred-call queue (enforced by
   Batch.post: drop + count, never a fault from posting context). The
   values are validated like module parameters: out-of-range settings
   fall back to the default with a log line (Params discipline). *)
type limits = {
  mutable max_inbound_bytes : int;
  mutable max_batch_queue : int;
}

let default_max_inbound_bytes = 4096
let default_max_batch_queue = 1024
let limits =
  {
    max_inbound_bytes = default_max_inbound_bytes;
    max_batch_queue = default_max_batch_queue;
  }

let set_limit ~name ~default ~min ~max field v =
  if v >= min && v <= max then field v
  else begin
    K.Klog.printk K.Klog.Warning
      "guard: limit %s: invalid value %d, using default %d" name v default;
    field default
  end

let configure ?max_inbound_bytes ?max_batch_queue () =
  Option.iter
    (set_limit ~name:"max_inbound_bytes" ~default:default_max_inbound_bytes
       ~min:64 ~max:1_048_576 (fun v -> limits.max_inbound_bytes <- v))
    max_inbound_bytes;
  Option.iter
    (set_limit ~name:"max_batch_queue" ~default:default_max_batch_queue
       ~min:1 ~max:1_048_576 (fun v -> limits.max_batch_queue <- v))
    max_batch_queue

let reset () =
  enabled := true;
  limits.max_inbound_bytes <- default_max_inbound_bytes;
  limits.max_batch_queue <- default_max_batch_queue

let make plan rules =
  let index = Hashtbl.create (max 8 (2 * List.length rules)) in
  List.iter
    (fun (field, rule) ->
      if Plan.access plan field = None then
        invalid_arg
          (Printf.sprintf "Guard.make: %s has no field %s"
             (Plan.type_id plan) field);
      if Hashtbl.mem index field then
        invalid_arg
          (Printf.sprintf "Guard.make: duplicate rule for %s.%s"
             (Plan.type_id plan) field);
      Hashtbl.replace index field rule)
    rules;
  { plan; rules = index; rejections = 0 }

let type_id t = Plan.type_id t.plan
let rejections t = t.rejections

let charge () =
  let ns = K.Cost.current.guard_check_ns in
  K.Clock.consume ns
  (* decaf-lint: consume-ok, validation charged inside the call span *);
  Dispatch.note ns;
  Boundary.note_check ()

let fail t ~field fmt =
  Printf.ksprintf
    (fun reason ->
      t.rejections <- t.rejections + 1;
      Boundary.reject ~type_id:(type_id t) ~field "%s" reason)
    fmt

(* A field the plan marks [Read] is kernel-to-user only: a presence flag
   for it in an inbound image is an attempted write through a read-only
   view, whatever the value. *)
let writable t ~field =
  charge ();
  if not (Plan.copies_out t.plan field) then
    fail t ~field "attempted write to a field the plan marks read-only"

let rule_of t field = Hashtbl.find_opt t.rules field

let int_field t ~field v =
  if not !enabled then v
  else begin
    writable t ~field;
    (match rule_of t field with
    | Some (Range (lo, hi)) ->
        charge ();
        if v < lo || v > hi then
          fail t ~field "value %d outside [%d, %d]" v lo hi
    | Some (Enum allowed) ->
        charge ();
        if not (List.mem v allowed) then fail t ~field "value %d not in enum" v
    | Some Non_negative ->
        charge ();
        if v < 0 then fail t ~field "negative value %d" v
    | Some (Max_len _) ->
        charge ();
        fail t ~field "scalar value for an array field"
    | Some Any | None -> ());
    v
  end

let bool_field t ~field v =
  if not !enabled then v
  else begin
    writable t ~field;
    v
  end

let array_field t ~field v =
  if not !enabled then v
  else begin
    writable t ~field;
    (match rule_of t field with
    | Some (Max_len n) ->
        charge ();
        if Array.length v > n then
          fail t ~field "length %d exceeds bound %d" (Array.length v) n
    | Some (Range _ | Enum _ | Non_negative) ->
        charge ();
        fail t ~field "array value for a scalar field"
    | Some Any | None -> ());
    v
  end

(* The size bound runs even with the guard axis off: an unbounded
   inbound payload is a memory-exhaustion attack on the kernel-side
   unmarshal buffer, not a per-field validation cost. *)
let check_inbound_bytes t n =
  Boundary.note_check ();
  if n > limits.max_inbound_bytes then begin
    t.rejections <- t.rejections + 1;
    Boundary.reject ~type_id:(type_id t) ~field:"payload"
      "inbound payload of %d bytes exceeds limit %d" n
      limits.max_inbound_bytes
  end
