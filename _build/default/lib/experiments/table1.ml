module Loc_count = Decaf_slicer.Loc_count

type row = { component : string; loc : int }

type t = {
  runtime_rows : row list;
  slicer_rows : row list;
  runtime_total : int;
  slicer_total : int;
  grand_total : int;
}

let rec find_repo_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_repo_root parent

let dir_loc root rel =
  let dir = Filename.concat root rel in
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    |> List.fold_left
         (fun acc f ->
           let path = Filename.concat dir f in
           let ic = open_in_bin path in
           let text = really_input_string ic (in_channel_length ic) in
           close_in ic;
           acc + Loc_count.count Loc_count.Ocaml text)
         0

(* Component mapping to the paper's Table 1:
   - "Jeannie helpers"        -> the decaf runtime (bridge + helpers)
   - "XPC in Decaf runtime"   -> lib/xpc (user-level XPC machinery)
   - "XPC in Nuclear runtime" -> lib/kernel (the kernel-side support)
   - "CIL OCaml"              -> lib/minic (the C frontend and analyses)
   - "Python scripts"         -> lib/slicer (the output processing)
   - "XDR compilers"          -> the marshaling generator portion *)
let measure () =
  let root =
    match find_repo_root (Sys.getcwd ()) with
    | Some r -> r
    | None -> "."
  in
  let runtime_rows =
    [
      { component = "Jeannie helpers (lib/decaf)"; loc = dir_loc root "lib/decaf" };
      { component = "XPC in decaf runtime (lib/xpc)"; loc = dir_loc root "lib/xpc" };
      {
        component = "XPC in nuclear runtime (lib/kernel)";
        loc = dir_loc root "lib/kernel";
      };
    ]
  in
  let slicer_rows =
    [
      { component = "C frontend, CIL analogue (lib/minic)"; loc = dir_loc root "lib/minic" };
      { component = "DriverSlicer passes (lib/slicer)"; loc = dir_loc root "lib/slicer" };
    ]
  in
  let total rows = List.fold_left (fun a r -> a + r.loc) 0 rows in
  let runtime_total = total runtime_rows and slicer_total = total slicer_rows in
  {
    runtime_rows;
    slicer_rows;
    runtime_total;
    slicer_total;
    grand_total = runtime_total + slicer_total;
  }

let render t =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Table 1: Decaf Drivers infrastructure code size (non-comment LoC)\n";
  add "%-45s %8s\n" "Source components" "# Lines";
  add "Runtime support\n";
  List.iter (fun r -> add "  %-43s %8d\n" r.component r.loc) t.runtime_rows;
  add "DriverSlicer\n";
  List.iter (fun r -> add "  %-43s %8d\n" r.component r.loc) t.slicer_rows;
  add "%-45s %8d\n" "Total number of lines of code" t.grand_total;
  Buffer.contents buf
