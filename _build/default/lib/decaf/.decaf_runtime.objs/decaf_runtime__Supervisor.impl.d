lib/decaf/supervisor.ml: Decaf_kernel Printexc Runtime
