(** The legacy E1000 driver source (mini-C), scaled down ~10x from the
    14,204-line Linux 2.6.18.1 original while preserving its structure:
    an [e1000_hw.c] hardware layer written in return-code style, the main
    driver with the goto error-handling idiom, module-parameter checking,
    and the data-path/interrupt functions that must stay in the kernel.

    The hardware-layer functions carry the same class of latent bugs the
    paper found when converting to checked exceptions: error returns that
    are ignored or stored and never tested. Each seeded site is marked
    [BUG:] in a comment; {!Decaf_slicer.Errcheck} finds exactly
    {!seeded_bugs} of them. *)

val source : string
val config : Decaf_slicer.Slicer.config
val seeded_bugs : int

val hw_layer_functions : string list
(** The functions making up the [e1000_hw.c] section, used by the
    exception-savings measurement. *)

val error_extra : string list
(** Kernel functions known to return errors, seeding the analysis. *)

val lint_waivers : Decaf_slicer.Lint.waiver list
(** Line-anchored decaf-lint suppressions: the seeded error-handling
    bugs (kept for the §5.1 measurement) and the forward-compatibility
    annotation kept for the evolution scenario. *)
