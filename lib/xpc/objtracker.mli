(** The object tracker: associations between an object's C address and
    its local incarnation in some other domain (§3.1.2).

    A single C pointer may be associated with several objects when an
    embedded structure shares its parent's address, so entries are keyed
    by (address, type identifier).

    The tracker is sharded by address hash: each shard has its own
    tables, its own {!Decaf_kernel.Sync.Combolock} and its own counters,
    so concurrent dispatch workers touching different objects take
    different locks, and only same-shard traffic serializes. User-level
    callers take the semaphore path (combolock semantics: kernel threads
    then block instead of spinning); atomic-context callers run unlocked
    (they cannot block, and on a single CPU they cannot overlap a
    user-level critical section either). *)

type t

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable registrations : int;
  mutable sweeps : int;  (** number of {!sweep} passes run *)
}

val create : ?name:string -> ?shards:int -> unit -> t
(** [shards] (default 8) is rounded up to a power of two. Every tracker
    is added to a process-wide registry consumed by
    {!global_shard_stats}; [Scenario.boot] clears the registry via
    {!reset_registry} before the runtime recreates its trackers. *)

val associate : t -> addr:int -> Univ.t -> unit
(** Record that [addr] corresponds to the given object; the object's
    {!Univ.name} is the type identifier. Re-associating replaces the
    entry. *)

val find : t -> addr:int -> 'a Univ.key -> 'a option
(** Look up the object of the key's type at [addr]. Charges
    {!Decaf_kernel.Cost.t.objtracker_lookup_ns}. *)

val mem : t -> addr:int -> type_id:string -> bool

val types_at : t -> addr:int -> string list
(** Every type identifier registered at the address (inner and outer
    structures). Served from a per-address secondary index, so the cost
    scales with the types at that address, not the table size. *)

val remove : t -> addr:int -> type_id:string -> unit
val remove_all : t -> addr:int -> unit
val count : t -> int

val stats : t -> stats
(** Aggregated snapshot over all shards. [sweeps] counts whole {!sweep}
    passes, as before sharding. *)

val clear : t -> unit

(** {1 Sharding} *)

val shard_count : t -> int

val shard_stats : t -> stats array
(** Per-shard counter snapshots, indexed by shard. *)

val shard_lock_stats : t -> Decaf_kernel.Sync.Combolock.stats array
(** Each shard's combolock counters (live records, not snapshots). *)

val global_shard_stats : unit -> stats array
(** Per-shard counters summed across every registered tracker (the
    kernel- and Java-side trackers of the running machine). Indexed by
    shard; surfaced through [Channel.stats]. *)

val reset_registry : unit -> unit

(** {1 Automatic collection}

    The paper's proposed extension (§3.1.2): track shared objects with
    weak references so that, once the decaf driver drops its last
    reference, the association disappears and the object can be
    garbage-collected — instead of requiring drivers to free shared
    objects explicitly. *)

val associate_weak : t -> addr:int -> 'a Univ.key -> 'a -> unit
(** Like {!associate}, but the tracker does not keep the object alive:
    after the object becomes unreachable (and a GC has run), {!find}
    misses and {!sweep} reclaims the entry. *)

val sweep : t -> int
(** Drop entries whose weakly-held object has been collected; returns
    how many were reclaimed. Each entry's weak reference is dereferenced
    exactly once per pass; every pass bumps [stats.sweeps]. *)

val weak_count : t -> int
(** Live weak associations (dead-but-unswept entries included). *)
