lib/hw/e1000_hw.mli: Eeprom Link Phy
