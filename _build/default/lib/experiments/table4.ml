module E = Decaf_drivers.E1000_evolution

type t = E.summary

let measure () = E.run ()

let render (s : t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Table 4: E1000 evolution, 2.6.18.1 -> 2.6.27 (scaled patch corpus)\n";
  add "%-28s %18s\n" "Category" "Lines changed";
  add "%-28s %18d\n" "Driver nucleus" s.E.nucleus_lines;
  add "%-28s %18d\n" "Decaf driver" s.E.decaf_lines;
  add "%-28s %18d\n" "User/kernel interface" s.E.interface_lines;
  add "(%d patches in two batches; %d new marshaling annotation%s)\n"
    s.E.patches_applied s.E.new_annotations
    (if s.E.new_annotations = 1 then "" else "s");
  Buffer.contents buf
