lib/drivers/ens1371_src.ml: Decaf_slicer
