lib/experiments/table1.mli:
