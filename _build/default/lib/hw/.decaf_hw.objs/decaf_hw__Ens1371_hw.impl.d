lib/hw/ens1371_hw.ml: Array Decaf_kernel Option
