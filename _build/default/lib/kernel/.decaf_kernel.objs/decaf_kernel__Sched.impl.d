lib/kernel/sched.ml: Clock Cost Effect Panic Queue
