(* Monotonic across the whole process: never reset, so a subsystem that
   caches kernel-lifetime resources (threads, timers) can compare epochs
   and drop anything created before the latest boot. *)
let epoch_counter = ref 0
let epoch () = !epoch_counter

let boot () =
  incr epoch_counter;
  Clock.reset ();
  Sched.reset ();
  Irq.reset ();
  Io.reset ();
  Pci.reset ();
  Kmem.reset ();
  Dma.reset ();
  Netcore.reset ();
  Sndcore.reset ();
  Usbcore.reset ();
  Inputcore.reset ();
  Modules.reset ();
  Hotplug.reset ();
  Faultinject.reset ();
  Klog.clear ();
  Cost.reset ()

let check_quiescent () =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  if Sched.runnable_count () > 0 then
    add "%d threads still runnable" (Sched.runnable_count ());
  (match Kmem.outstanding () with
  | 0, _ -> ()
  | n, b ->
      let tags =
        Kmem.leaks () |> List.map fst |> String.concat ", "
      in
      add "%d allocations (%d bytes) leaked: %s" n b tags);
  (match Modules.loaded () with
  | [] -> ()
  | ms -> add "modules still loaded: %s" (String.concat ", " ms));
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))
