open Effect
open Effect.Deep

type thread = { tid : int; name : string }

exception Would_block_in_atomic of string

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let runq : (thread * (unit -> unit)) Queue.t = Queue.create ()
let cpu = { tid = 0; name = "<cpu>" }
let cur = ref cpu
let next_tid = ref 1
let irq_depth = ref 0
let spins = ref 0

let current_name () = !cur.name
let current_tid () = !cur.tid
let in_interrupt () = !irq_depth > 0
let enter_interrupt () = incr irq_depth
let irq_mask = ref 0

(* Invoked whenever the CPU becomes able to take an interrupt again
   (leaves interrupt context, restores the irq mask): the interrupt
   layer registers a drain of its pending-line backlog here, so blocked
   lines wait silently instead of polling. *)
let irq_window_hook = ref (fun () -> ())
let set_irq_window_hook f = irq_window_hook := f

(* The hook runs synchronously inside whatever thread reopened the irq
   window — possibly deep in a Clock.consume preemption — so a hook that
   blocks would suspend an unrelated thread with interrupt lines still
   backlogged. Tracked as a depth (hook delivery re-enters through
   nested exit_interrupt) and enforced by [assert_may_block]. *)
let window_hook_depth = ref 0

let run_window_hook () =
  incr window_hook_depth;
  match !irq_window_hook () with
  | () -> decr window_hook_depth
  | exception e ->
      decr window_hook_depth;
      raise e

let exit_interrupt () =
  if !irq_depth = 0 then Panic.bug "Sched.exit_interrupt: not in interrupt";
  decr irq_depth;
  if !irq_depth = 0 && !irq_mask = 0 then run_window_hook ()

let spin_depth () = !spins
let local_irq_save () = incr irq_mask

let local_irq_restore () =
  if !irq_mask = 0 then Panic.bug "Sched.local_irq_restore: not masked";
  decr irq_mask;
  if !irq_mask = 0 && !irq_depth = 0 then run_window_hook ()

let irqs_masked () = !irq_mask > 0
let spin_acquire () = incr spins

let spin_release () =
  if !spins = 0 then Panic.bug "Sched.spin_release: no spinlock held";
  decr spins

let assert_may_block what =
  if in_interrupt () then
    raise (Would_block_in_atomic (what ^ " in interrupt context"))
  else if !spins > 0 then
    raise (Would_block_in_atomic (what ^ " while holding a spinlock"))
  else if !window_hook_depth > 0 then
    raise (Would_block_in_atomic (what ^ " in irq-window hook"))

let enqueue t f = Queue.push (t, f) runq
let runnable_count () = Queue.length runq

let handler (t : thread) : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> ());
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                enqueue t (fun () -> continue k ()))
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let fired = ref false in
                let wake () =
                  if not !fired then begin
                    fired := true;
                    enqueue t (fun () -> continue k ())
                  end
                in
                register wake)
        | _ -> None);
  }

let spawn ?(name = "kthread") body =
  let t = { tid = !next_tid; name } in
  incr next_tid;
  enqueue t (fun () -> match_with body () (handler t));
  t

let yield () = perform Yield

let suspend ~register =
  assert_may_block "blocking";
  perform (Suspend register)

let sleep_ns ns =
  suspend ~register:(fun wake -> ignore (Clock.after ns wake))

(* --- exploration controller -------------------------------------------

   The systematic-exploration harness (Decaf_check) installs a controller
   so that every source of scheduling nondeterminism passes through one
   decision point: at each iteration of [run] the controller is shown the
   runnable threads (in queue arrival order) plus — when the event queue
   is nonempty — [Advance_clock], and returns the index of the choice to
   take. Index 0 of the FIFO snapshot is by construction the schedule an
   uncontrolled run would have taken. A negative return aborts the run
   (depth caps, sleep-set-blocked branches). *)

let thread_name t = t.name
let thread_tid t = t.tid

type choice = Run_thread of thread | Advance_clock

let controller : (choice array -> int) option ref = ref None
let set_controller f = controller := Some f
let clear_controller () = controller := None

(* Remove and return the [n]th entry of the run queue, preserving the
   order of the rest. *)
let take_nth n =
  let entries = List.of_seq (Queue.to_seq runq) in
  Queue.clear runq;
  let picked = ref None in
  List.iteri
    (fun i e -> if i = n then picked := Some e else Queue.push e runq)
    entries;
  match !picked with
  | Some e -> e
  | None -> Panic.bug "Sched.take_nth: choice %d out of range" n

let dispatch (t, step) =
  let prev = !cur in
  cur := t;
  Clock.consume Cost.current.ctx_switch_ns;
  step ();
  cur := prev

let run ?until_ns () =
  let past_deadline () =
    match until_ns with None -> false | Some t -> Clock.now () >= t
  in
  let rec loop () =
    if past_deadline () then ()
    else
      match !controller with
      | None -> (
          match Queue.take_opt runq with
          | Some entry ->
              dispatch entry;
              loop ()
          | None -> if Clock.advance_to_next_event () then loop () else ())
      | Some pick ->
          let threads = Array.of_seq (Queue.to_seq runq) in
          let n = Array.length threads in
          let has_ev = Clock.has_events () in
          if n = 0 && not has_ev then ()
          else begin
            let choices =
              Array.init
                (n + if has_ev then 1 else 0)
                (fun i ->
                  if i < n then Run_thread (fst threads.(i)) else Advance_clock)
            in
            let i = pick choices in
            if i < 0 then ()
            else if i < n then begin
              dispatch (take_nth i);
              loop ()
            end
            else begin
              ignore (Clock.advance_to_next_event ());
              loop ()
            end
          end
  in
  loop ()

(* [controller] deliberately survives reset: the explorer reboots the
   world (Boot.boot -> Sched.reset) at the start of every execution and
   must keep steering across the reboot. *)
let reset () =
  Queue.clear runq;
  cur := cpu;
  irq_depth := 0;
  irq_mask := 0;
  spins := 0;
  window_hook_depth := 0;
  next_tid := 1
