test/test_slicer.mli:
