all: build

build:
	dune build

test:
	dune runtest

# The whole gate in one shot: compile, run the tier-1 test suite, hold
# the driver corpus to the static checks, run the hostile-driver
# campaign against its acceptance gate, verify the XPC fast path
# against the committed trajectory, and explore the decaf-check
# episode catalog at full depth.
check: build test lint campaign-malicious bench-check soak explore

# Exhaustive schedule exploration (DPOR) of the decaf-check episode
# catalog at full depth, with the dynamic lock-acquisition order and
# the static/dynamic cross-check; fails on any counterexample. The
# reduced-depth pass runs inside `dune runtest` as @check-smoke.
explore:
	dune exec bin/decafctl.exe -- explore --lock-order --lock-diff

# The fault-injection campaign (buggy drivers: Table "no panics" row).
campaign:
	dune exec bin/experiments.exe -- campaign

# The adversarial campaign (hostile drivers: forged handles, fuzzed
# fields, forged acks, queue floods). Renders the trial table and its
# acceptance line; the same gate runs in `dune runtest` as
# test_maliciouscampaign.
campaign-malicious:
	dune exec bin/experiments.exe -- campaign-malicious

# Fail if the XPC fast path regressed against the committed trajectory:
# >10% on crossings/bytes or >5% on virtual-time throughput per
# (scenario, config) point (also runs as part of `dune runtest`).
bench-check:
	dune build @bench-smoke

# Regenerate the committed trajectory after a deliberate retuning and
# show what changed against the committed file.
bench-json:
	dune exec bench/main.exe -- json BENCH_xpc.json.new
	-diff -u BENCH_xpc.json BENCH_xpc.json.new
	mv BENCH_xpc.json.new BENCH_xpc.json

bench:
	dune exec bench/main.exe

# The short deterministic soak: re-run the mixed-traffic soak at the
# committed BENCH_soak.json scale and gate on p99 latency per event
# path, zero audio deadline misses in the fault-free phase, and zero
# leaked tracker entries / kmalloc bytes at quiescence (also runs as
# part of `dune runtest`).
soak-smoke:
	dune build @soak-smoke

# The full-length soak: same gates at 10x the committed virtual
# duration (the percentiles print; only the miss/leak gates apply,
# since the committed file is measured at the smoke scale).
soak:
	dune exec bin/decafctl.exe -- soak --duration-ms 10000

# Regenerate the committed soak trajectory after a deliberate
# cost-model retuning and show what changed. To land the retuning and
# the file update in separate steps, run the gate once with
# DECAF_SOAK_WAIVE=1 (skips only the p99 comparison; the deadline-miss
# and leak gates always hold).
soak-json:
	dune exec bench/main.exe -- soak-json BENCH_soak.json.new
	-diff -u BENCH_soak.json BENCH_soak.json.new
	mv BENCH_soak.json.new BENCH_soak.json

# Static discipline checks over the five bundled driver sources; fails
# on any unwaived violation or stale waiver (the same gate runs inside
# `dune runtest` as the lint "corpus clean" test).
lint:
	dune exec bin/driverslicer.exe -- decaf-lint

clean:
	dune clean

.PHONY: all build test check bench-check bench-json bench soak-smoke soak soak-json lint explore clean
