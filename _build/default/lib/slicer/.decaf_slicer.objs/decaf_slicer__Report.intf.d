lib/slicer/report.mli: Format Slicer
