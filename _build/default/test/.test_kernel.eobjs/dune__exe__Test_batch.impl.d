test/test_batch.ml: Addr Alcotest Array Batch Bytes Channel Decaf_drivers Decaf_kernel Decaf_runtime Decaf_xpc Domain List Marshal_plan
