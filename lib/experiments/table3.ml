module K = Decaf_kernel
module Hw = Decaf_hw
open Decaf_drivers
open Decaf_workloads

type measurement = {
  perf : float;
  cpu : float;
  init_ns : int;
  init_crossings : int;
}

type row = {
  driver : string;
  workload : string;
  perf_unit : string;
  native : measurement;
  decaf : measurement;
}

let relative_performance row =
  if row.native.perf = 0. then 1. else row.decaf.perf /. row.native.perf

(* --- 8139too --- *)

let rtl8139_scenario which ~duration_ns mode =
  Scenario.boot ();
  let link = Hw.Link.create ~rate_bps:100_000_000 () in
  ignore
    (Rtl8139_drv.setup_device ~slot:"00:04.0" ~io_base:0xc000 ~irq:10
       ~mac:Scenario.mac ~link ());
  Scenario.in_thread (fun () ->
      (match Driver_core.insmod "8139too" ~mode with
      | Ok () -> ()
      | Error rc -> K.Panic.bug "8139too insmod: %d" rc);
      let t = Option.get (Rtl8139_drv.active ()) in
      let nd = Rtl8139_drv.netdev t in
      let t_open0 = K.Clock.now () in
      (match K.Netcore.open_dev nd with
      | Ok () -> ()
      | Error rc -> K.Panic.bug "8139too open: %d" rc);
      let init_ns = Rtl8139_drv.init_latency_ns t + (K.Clock.now () - t_open0) in
      let init_crossings = Scenario.kernel_user_crossings () in
      let r =
        match which with
        | `Send -> Netperf.send ~netdev:nd ~link ~duration_ns ~msg_bytes:1500
        | `Recv -> Netperf.recv ~netdev:nd ~link ~duration_ns ~msg_bytes:1500
      in
      Driver_core.rmmod "8139too";
      {
        perf = r.Netperf.throughput_mbps;
        cpu = r.Netperf.cpu_utilization;
        init_ns;
        init_crossings;
      })

(* --- e1000 --- *)

let e1000_scenario which ~duration_ns mode =
  Scenario.boot ();
  let link = Hw.Link.create ~rate_bps:1_000_000_000 () in
  ignore
    (E1000_drv.setup_device ~slot:"00:05.0" ~mmio_base:0xf000_0000 ~irq:11
       ~mac:Scenario.mac ~link ());
  Scenario.in_thread (fun () ->
      (match Driver_core.insmod "e1000" ~mode with
      | Ok () -> ()
      | Error rc -> K.Panic.bug "e1000 insmod: %d" rc);
      let t = Option.get (E1000_drv.active ()) in
      let nd = E1000_drv.netdev t in
      let t_open0 = K.Clock.now () in
      (match K.Netcore.open_dev nd with
      | Ok () -> ()
      | Error rc -> K.Panic.bug "e1000 open: %d" rc);
      let init_ns = E1000_drv.init_latency_ns t + (K.Clock.now () - t_open0) in
      let init_crossings = Scenario.kernel_user_crossings () in
      let r =
        match which with
        | `Send -> Netperf.send ~netdev:nd ~link ~duration_ns ~msg_bytes:1500
        | `Recv -> Netperf.recv ~netdev:nd ~link ~duration_ns ~msg_bytes:1500
        | `Send_small ->
            (* the paper's UDP test with 1-byte messages *)
            Netperf.send ~netdev:nd ~link ~duration_ns ~msg_bytes:1
      in
      Driver_core.rmmod "e1000";
      {
        perf = r.Netperf.throughput_mbps;
        cpu = r.Netperf.cpu_utilization;
        init_ns;
        init_crossings;
      })

(* --- ens1371 --- *)

let ens1371_scenario ~duration_ns mode =
  Scenario.boot ();
  let model = Ens1371_drv.setup_device ~slot:"00:06.0" ~io_base:0xd000 ~irq:9 () in
  Scenario.in_thread (fun () ->
      (match Driver_core.insmod "ens1371" ~mode with
      | Ok () -> ()
      | Error rc -> K.Panic.bug "ens1371 insmod: %d" rc);
      let t = Option.get (Ens1371_drv.active ()) in
      let init_ns = Ens1371_drv.init_latency_ns t in
      let init_crossings = Scenario.kernel_user_crossings () in
      let r = Mpg123.play ~substream:(Ens1371_drv.substream t) ~model ~duration_ns in
      Driver_core.rmmod "ens1371";
      {
        (* figure of merit: realtime playback with no mid-stream
           underrun (the final partial period is inherent) *)
        perf = (if r.Mpg123.underruns <= 1 then 1.0 else 0.0);
        cpu = r.Mpg123.cpu_utilization;
        init_ns;
        init_crossings;
      })

(* --- uhci --- *)

let uhci_scenario ~duration_ns mode =
  Scenario.boot ();
  let model = Uhci_drv.setup_device ~io_base:0xe000 ~irq:5 () in
  Scenario.in_thread (fun () ->
      (match Driver_core.insmod "uhci-hcd" ~mode with
      | Ok () -> ()
      | Error rc -> K.Panic.bug "uhci insmod: %d" rc);
      let t = Option.get (Uhci_drv.active ()) in
      let init_ns = Uhci_drv.init_latency_ns t in
      let init_crossings = Scenario.kernel_user_crossings () in
      (* size the archive to roughly fill the duration at USB 1.1 speed *)
      let total_bytes = 1_200 * (duration_ns / 1_000_000) in
      let files = max 1 (total_bytes / 65_536) in
      let r = Tar_usb.untar ~model ~files ~file_bytes:65_536 in
      Driver_core.rmmod "uhci-hcd";
      {
        perf = r.Tar_usb.effective_kbps;
        cpu = r.Tar_usb.cpu_utilization;
        init_ns;
        init_crossings;
      })

(* --- psmouse --- *)

let psmouse_scenario ~duration_ns mode =
  Scenario.boot ();
  let model = Psmouse_drv.setup_device () in
  Scenario.in_thread (fun () ->
      (match Driver_core.insmod "psmouse" ~mode with
      | Ok () -> ()
      | Error rc -> K.Panic.bug "psmouse insmod: %d" rc);
      let t = Option.get (Psmouse_drv.active ()) in
      let init_ns = Psmouse_drv.init_latency_ns t in
      let init_crossings = Scenario.kernel_user_crossings () in
      let r =
        Mouse_move.run ~model ~input:(Psmouse_drv.input_dev t) ~duration_ns
      in
      Driver_core.rmmod "psmouse";
      {
        perf = float_of_int r.Mouse_move.packets;
        cpu = r.Mouse_move.cpu_utilization;
        init_ns;
        init_crossings;
      })

let measure ?(duration_ns = 2_000_000_000) () =
  let both scenario = (scenario Driver_env.Native, scenario Driver_env.Decaf) in
  let mk driver workload perf_unit scenario =
    let native, decaf = both scenario in
    { driver; workload; perf_unit; native; decaf }
  in
  [
    mk "8139too" "netperf-send" "Mb/s" (rtl8139_scenario `Send ~duration_ns);
    mk "8139too" "netperf-recv" "Mb/s" (rtl8139_scenario `Recv ~duration_ns);
    mk "E1000" "netperf-send" "Mb/s" (e1000_scenario `Send ~duration_ns);
    mk "E1000" "netperf-recv" "Mb/s" (e1000_scenario `Recv ~duration_ns);
    mk "E1000" "netperf-udp-1B" "Mb/s" (e1000_scenario `Send_small ~duration_ns);
    mk "ens1371" "mpg123" "ok" (ens1371_scenario ~duration_ns);
    mk "uhci-hcd" "tar" "kb/s" (uhci_scenario ~duration_ns);
    mk "psmouse" "move-and-click" "packets"
      (psmouse_scenario ~duration_ns:(max duration_ns 10_000_000_000));
  ]

let render rows =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Table 3: performance of Decaf Drivers on common workloads\n";
  add "%-9s %-15s %8s | %6s %6s | %9s %9s | %9s\n" "Driver" "Workload" "RelPerf"
    "CPUn%" "CPUd%" "Init-nat" "Init-dec" "Crossings";
  List.iter
    (fun row ->
      add "%-9s %-15s %8.3f | %6.1f %6.1f | %7.2fms %7.2fms | %9d\n" row.driver
        row.workload
        (relative_performance row)
        (100. *. row.native.cpu) (100. *. row.decaf.cpu)
        (float_of_int row.native.init_ns /. 1e6)
        (float_of_int row.decaf.init_ns /. 1e6)
        row.decaf.init_crossings)
    rows;
  Buffer.contents buf
