(** Shared-object layer of the E1000 decaf driver: the "generated"
    marshaling code and container classes of §3.2.3, written out as the
    DriverSlicer XDR compilers would emit them.

    The kernel-side [struct e1000_adapter] has a simulated C address
    (embedded rings share it, offset by their position, reproducing the
    inner/outer aliasing of §3.1.2). The user-side {!java_adapter} is a
    container of public mutable fields. Marshaling is plan-driven: only
    the fields the decaf driver accesses cross the boundary, through
    real {!Decaf_xpc.Xdr} encoding, and unmarshaling consults the object
    tracker to update objects in place.

    Each side also carries a {!Decaf_xpc.Marshal_plan.Dirty} tracker;
    when delta marshaling is enabled
    ({!Decaf_xpc.Marshal_plan.set_delta_enabled}), repeat marshals copy
    only fields written — through the [set_*] writers below — since the
    last acknowledged crossing. The first crossing (no user-level view
    yet, e.g. after a runtime restart) is always a full image. *)

type ring = { mutable head : int; mutable tail : int; mutable count : int }

type kernel_adapter = {
  k_addr : int;  (** simulated C address *)
  k_tx_addr : int;  (** address of the embedded tx ring (= k_addr) *)
  k_rx_addr : int;
  k_tx : ring;
  k_rx : ring;
  mutable k_msg_enable : int;
  mutable k_flags : int;
  mutable k_link_up : bool;
  mutable k_mtu : int;
  k_config_space : int array;  (** 16 dwords, Figure 3's annotated array *)
  mutable k_watchdog_events : int;
  mutable k_stats_gen : int;
      (** data-path stats rollups so far; the payload of the periodic
          stats notification *)
  k_dirty : Decaf_xpc.Marshal_plan.Dirty.t;
}

type java_adapter = {
  mutable j_c_addr : int;
      (** capability handle this object mirrors — user level never
          holds the kernel's C address *)
  j_tx : ring;
  j_rx : ring;
  mutable j_msg_enable : int;
  mutable j_flags : int;
  mutable j_link_up : bool;
  mutable j_mtu : int;
  j_config_space : int array;
  mutable j_watchdog_events : int;
  mutable j_stats_gen : int;
  j_dirty : Decaf_xpc.Marshal_plan.Dirty.t;
}

val config_words : int
(** Length of the saved PCI config-space array (dwords). *)

val plan : Decaf_xpc.Marshal_plan.t
(** The marshal plan DriverSlicer derives for [e1000_adapter]. *)

val adapter_key : java_adapter Decaf_xpc.Univ.key
val ring_key : ring Decaf_xpc.Univ.key

val guard : Decaf_xpc.Guard.t
(** Inbound validator derived from {!plan}: writability plus per-field
    range/enum/length rules, applied by {!unmarshal_at_kernel}. *)

val guard_rejections : unit -> int
(** Boundary violations this validator has caught (campaign assertions). *)

(** {2 Capability handles}

    The wire's object-reference field carries a handle issued by the
    kernel tracker ({!Decaf_xpc.Objtracker.issue}), never a raw C
    address; inbound crossings resolve it back
    ({!Decaf_xpc.Objtracker.resolve}) and treat forged, stale or
    cross-type handles as boundary faults. The embedded rings get their
    own handles — same C address (the tx ring is the adapter's first
    member), different capabilities, so the §3.1.2 aliasing cannot be
    abused for type confusion. *)

val adapter_handle : kernel_adapter -> Decaf_xpc.Objtracker.handle
val tx_ring_handle : kernel_adapter -> Decaf_xpc.Objtracker.handle
val rx_ring_handle : kernel_adapter -> Decaf_xpc.Objtracker.handle

val fresh_kernel_adapter : unit -> kernel_adapter
(** Allocate with fresh simulated addresses. *)

val release_kernel_adapter : kernel_adapter -> unit
(** Revoke the instance's capability handles in both trackers at driver
    unload, so fleet bindings that come and go leave no tracker entries
    behind and stale handles resolve to nothing. *)

(** {2 Dirty-marking writers}

    Kernel or decaf-driver code whose write must reach the other side
    goes through these; with delta marshaling on, unmarked fields are
    not re-copied. The [set_*] writers mark only on change. *)

val set_k_msg_enable : kernel_adapter -> int -> unit
val set_k_flags : kernel_adapter -> int -> unit
val set_k_link_up : kernel_adapter -> bool -> unit
val set_k_mtu : kernel_adapter -> int -> unit

val bump_k_stats : kernel_adapter -> unit
(** Advance [k_stats_gen] (a stats rollup happened) and mark it. *)

val user_view_mark : kernel_adapter -> int
(** Dirty-generation snapshot to take before [marshal_to_user]; pass to
    {!ack_user_view} once the crossing carrying that payload succeeded.
    Writes landing between snapshot and ack (an interrupt during the
    call) keep their marks. *)

val ack_user_view : kernel_adapter -> upto:int -> unit

val set_j_msg_enable : java_adapter -> int -> unit
val set_j_flags : java_adapter -> int -> unit
val set_j_link_up : java_adapter -> bool -> unit
val bump_j_watchdog : java_adapter -> unit
val set_j_config_word : java_adapter -> int -> int -> unit

val user_has_view : kernel_adapter -> bool
(** Whether the user-level tracker holds a view of this adapter (first
    crossing happened, runtime not restarted since) — the gate for the
    delta and ring fast paths, which both update an existing view. *)

val wire_size : int
(** Bytes of a full plan-selected marshal (used for XPC cost sizing);
    independent of the delta mode. *)

val marshal_to_user : kernel_adapter -> bytes
(** Encode the plan's copy-in fields — all of them, or (delta mode, user
    view exists) only the dirty ones. *)

val unmarshal_at_user : bytes -> kernel_adapter -> java_adapter
(** Decode at user level: finds (or creates and registers) the Java
    adapter for the capability handle in the user-level tracker, updates
    the planned fields in place, and returns it. *)

val marshal_to_kernel : java_adapter -> bytes
(** Encode the plan's copy-out fields for the return trip; in delta mode
    only the decaf driver's unacknowledged writes, which this call
    acknowledges (the reply leg cannot independently time out). *)

val unmarshal_at_kernel : bytes -> kernel_adapter -> unit
(** Apply the decaf driver's writes back to the kernel object — after
    resolving the capability handle and validating every present field
    against {!guard}. Checks run before any write, so a
    {!Decaf_xpc.Boundary.Boundary_violation} (routed to the supervisor
    as a recoverable driver fault) leaves the adapter untouched. *)

val resync_user_view : kernel_adapter -> unit
(** Mark every copy-in plan field dirty so the next crossing carries a
    full image — the resume-from-suspend resync, where the user-level
    view may be stale but the tracker entry still exists. *)

(** {2 Ring fast path}

    The two hot notifications (periodic stats rollups, link
    transitions) as fixed-layout {!Decaf_xpc.Ring} slot records. The
    slot plan marks every field Write: the ring lives in conceptually
    shared memory the untrusted domain can scribble, so everything read
    out of a slot is inbound and guard-checked. *)

val ring_ev_stats : int
val ring_ev_link : int

val ring_plan : Decaf_xpc.Marshal_plan.t
val ring_guard : Decaf_xpc.Guard.t

val ring_resolve : int -> (int, string) result
(** Resolve a slot's capability handle against the kernel tracker (the
    [resolve] argument for {!Decaf_xpc.Ring.create}). *)

val ring_stats_record : kernel_adapter -> Decaf_xpc.Ring.record
(** Advance [k_stats_gen] WITHOUT a dirty mark (the ring carries the
    value) and build the slot record for it. *)

val ring_link_record : kernel_adapter -> bool -> Decaf_xpc.Ring.record
(** Set [k_link_up] without a mark and build the slot record. *)

val ring_undeliverable : kernel_adapter -> Decaf_xpc.Ring.record -> unit
(** The record was dropped (ring overflow, teardown): mark the field it
    carried dirty so the delta-sync slow path repairs the staleness. *)

val apply_ring_record : Decaf_xpc.Ring.record -> unit
(** Consumer side, after validation: update the Java view in place
    (zero marshaling); no user view yet is benign. *)
