test/test_xpcperf.ml: Alcotest Decaf_experiments Printf
