(** Stub and marshaling-code regeneration as the driver evolves (§3.2.4).

    Re-running DriverSlicer on an updated source cannot see accesses made
    from Java code, so a programmer adds [DECAF_*VAR] annotations for any
    newly-referenced fields; regeneration merges the resulting plans with
    the previous ones and reports what changed. *)

type change = {
  ch_type : string;  (** struct whose plan changed *)
  ch_added_fields : string list;
  ch_widened_fields : string list;  (** access promoted, e.g. R -> RW *)
}

val regenerate :
  old_plans:Decaf_xpc.Marshal_plan.t list ->
  source:string ->
  Slicer.config ->
  Slicer.output * change list
(** Slice the updated source and union every new plan with its
    predecessor, returning the merged output and the per-struct
    changes. *)

val interface_changes : old_plans:Decaf_xpc.Marshal_plan.t list ->
  new_plans:Decaf_xpc.Marshal_plan.t list -> change list
