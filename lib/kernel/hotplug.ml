type bus = Pci | Usb | Input

type event =
  | Device_added of { bus : bus; id : string; vendor : int; device : int }
  | Device_removed of { bus : bus; id : string }

let bus_name = function Pci -> "pci" | Usb -> "usb" | Input -> "input"

let subscribers : (event -> unit) list ref = ref []
let seen = ref 0

let subscribe f = subscribers := !subscribers @ [ f ]

let publish ev =
  incr seen;
  (match ev with
  | Device_added { bus; id; vendor; device } ->
      Klog.printk Klog.Info "hotplug: %s %s added (%04x:%04x)" (bus_name bus)
        id vendor device
  | Device_removed { bus; id } ->
      Klog.printk Klog.Info "hotplug: %s %s removed" (bus_name bus) id);
  List.iter (fun f -> f ev) !subscribers

let events_seen () = !seen

let reset () =
  subscribers := [];
  seen := 0
