(** Error handling for decaf drivers.

    Kernel C reports failures through integer return codes and the
    [goto]-label cleanup idiom; decaf drivers use checked exceptions
    (§5.1). This module is the bridge: exceptions inside the decaf
    driver, errno codes at the kernel boundary. *)

exception Hw_error of { driver : string; errno : int; context : string }
(** The per-driver checked exception (the paper's [E1000HWException]). *)

(* Linux errno values used by the drivers:
   EIO=5 ENOMEM=12 EBUSY=16 ENODEV=19 EINVAL=22 ETIMEDOUT=110. *)

val eio : int
val enomem : int
val enodev : int
val ebusy : int
val einval : int
val etimedout : int

val throw : driver:string -> errno:int -> string -> 'a

val check : driver:string -> context:string -> int -> unit
(** Raise {!Hw_error} when the return code is negative — converting a
    C-style call into exception style. *)

val to_errno : (unit -> unit) -> int
(** Run a decaf-driver body, mapping success to 0 and {!Hw_error} to its
    negative errno: the translation applied at every kernel entry
    point. *)

val to_result : (unit -> 'a) -> ('a, int) result

val protect : cleanup:(unit -> unit) -> (unit -> 'a) -> 'a
(** Run the body; on exception, run [cleanup] then re-raise — the nested
    try/catch shape of the paper's Figure 4. *)

val with_retry : attempts:int -> backoff_ns:int -> (unit -> 'a) -> 'a
(** Run the body up to [attempts] times, sleeping [backoff_ns] (doubling
    each round, capped at 8x) between tries. Only {!Hw_error} triggers a
    retry — the transient-handshake idiom for EEPROM/PHY waits; the last
    attempt's exception propagates. *)
