module K = Decaf_kernel
module Io = K.Io

let reg_ctrl = 0x0000
let reg_status = 0x0008
let reg_eerd = 0x0014
let reg_mdic = 0x0020
let reg_icr = 0x00c0
let reg_ics = 0x00c8
let reg_ims = 0x00d0
let reg_imc = 0x00d8
let reg_rctl = 0x0100
let reg_tctl = 0x0400
let reg_tdh = 0x3810
let reg_tdt = 0x3818
let reg_itr = 0x00c4
let reg_rdh = 0x2810
let reg_rdt = 0x2818
let ctrl_rst = 1 lsl 26
let ctrl_slu = 1 lsl 6
let status_lu = 1 lsl 1
let eerd_start = 1
let eerd_done = 1 lsl 4
let mdic_op_write = 1 lsl 26
let mdic_op_read = 2 lsl 26
let mdic_ready = 1 lsl 28
let icr_txdw = 0x01
let icr_lsc = 0x04
let icr_rxt0 = 0x80
let rctl_en = 0x02
let tctl_en = 0x02
let n_tx_desc = 256
let n_rx_desc = 256

type t = {
  irq_line : int;
  device_id : int;
  link : Link.t;
  phy : Phy.t;
  eeprom : Eeprom.t;
  mutable region : Io.region option;
  tx_staged : (bytes * K.Clock.track) Queue.t;
      (* each staged frame carries its xmit-stage birth stamp; completed
         when the frame finishes serializing onto the wire *)
  rx_fifo : (bytes * K.Clock.track) Queue.t;
      (* each received frame carries its wire-arrival birth stamp; the
         driver completes it when the packet reaches netif_rx *)
  mutable ctrl : int;
  mutable icr : int;
  mutable ims : int;
  mutable rctl : int;
  mutable tctl : int;
  mutable tdh : int;
  mutable tdt : int;
  mutable inflight : int;
  mutable rdh : int;
  mutable rdt : int;
  mutable eerd : int;
  mutable mdic : int;
  mutable tx_count : int;
  mutable rx_count : int;
  mutable itr : int;  (** ITR register, 256 ns units; 0 = no throttling *)
  mutable next_irq_at : int;  (** earliest virtual time the next irq may fire *)
  mutable itr_armed : bool;  (** a deferred-irq timer is outstanding *)
}

(* Interrupt throttling, as on the real part: ITR holds the minimum
   inter-interrupt interval in 256 ns units. Causes accumulate in ICR
   regardless; the line is only raised when the window has elapsed,
   otherwise one timer is armed for the window's end and delivers every
   cause that piled up meanwhile — hardware-side coalescing. *)
let rec update_irq t =
  if t.icr land t.ims <> 0 then
    let now = K.Clock.now () in
    if t.itr = 0 || now >= t.next_irq_at then begin
      t.next_irq_at <- now + (t.itr * 256);
      K.Irq.raise_irq t.irq_line
    end
    else if not t.itr_armed then begin
      t.itr_armed <- true;
      ignore
        (K.Clock.after (t.next_irq_at - now) (fun () ->
             t.itr_armed <- false;
             update_irq t))
    end

let assert_cause t bits =
  t.icr <- t.icr lor bits;
  update_irq t

let do_reset t =
  t.ctrl <- 0;
  t.icr <- 0;
  t.ims <- 0;
  t.rctl <- 0;
  t.tctl <- 0;
  t.tdh <- 0;
  t.tdt <- 0;
  t.inflight <- 0;
  t.rdh <- 0;
  t.rdt <- 0;
  t.itr <- 0;
  t.next_irq_at <- 0;
  Queue.clear t.tx_staged;
  Queue.clear t.rx_fifo

(* Advancing TDT transmits every staged frame up to the new tail; each
   descriptor is written back (head advances, TXDW raised) when its frame
   finishes serializing onto the wire. *)
let pump_tx t =
  if t.tctl land tctl_en <> 0 then
    while t.tdh <> t.tdt
          && t.inflight < n_tx_desc
          && not (Queue.is_empty t.tx_staged)
    do
      let frame, tr = Queue.pop t.tx_staged in
      t.tx_count <- t.tx_count + 1;
      t.inflight <- t.inflight + 1;
      Link.transmit t.link frame ~on_done:(fun () ->
          t.tdh <- (t.tdh + 1) mod n_tx_desc;
          t.inflight <- t.inflight - 1;
          ignore (K.Clock.complete tr);
          assert_cause t icr_txdw)
    done

let eeprom_read t v =
  if v land eerd_start <> 0 then
    let addr = (v lsr 8) land 0xff in
    let data = Eeprom.read t.eeprom addr in
    t.eerd <- (data lsl 16) lor eerd_done lor (addr lsl 8)
  else t.eerd <- v

let mdic_access t v =
  let reg = (v lsr 16) land 0x1f in
  if v land mdic_op_read <> 0 then
    t.mdic <- (v land lnot 0xffff) lor Phy.read t.phy reg lor mdic_ready
  else begin
    Phy.write t.phy reg (v land 0xffff);
    t.mdic <- v lor mdic_ready
  end

let read t off (_w : Io.width) =
  match off with
  | _ when off = reg_ctrl -> t.ctrl
  | _ when off = reg_status ->
      if Phy.link_up t.phy && t.ctrl land ctrl_slu <> 0 then status_lu else 0
  | _ when off = reg_eerd -> t.eerd
  | _ when off = reg_mdic -> t.mdic
  | _ when off = reg_icr ->
      (* reading ICR clears it *)
      let v = t.icr in
      t.icr <- 0;
      v
  | _ when off = reg_ims -> t.ims
  | _ when off = reg_itr -> t.itr
  | _ when off = reg_rctl -> t.rctl
  | _ when off = reg_tctl -> t.tctl
  | _ when off = reg_tdh -> t.tdh
  | _ when off = reg_tdt -> t.tdt
  | _ when off = reg_rdh -> t.rdh
  | _ when off = reg_rdt -> t.rdt
  | _ -> 0

let write t off (_w : Io.width) v =
  match off with
  | _ when off = reg_ctrl ->
      if v land ctrl_rst <> 0 then do_reset t else t.ctrl <- v
  | _ when off = reg_eerd -> eeprom_read t v
  | _ when off = reg_mdic -> mdic_access t v
  | _ when off = reg_ics -> assert_cause t v
  | _ when off = reg_ims ->
      t.ims <- t.ims lor v;
      update_irq t
  | _ when off = reg_imc -> t.ims <- t.ims land lnot v
  | _ when off = reg_itr -> t.itr <- v land 0xffff
  | _ when off = reg_icr -> t.icr <- t.icr land lnot v
  | _ when off = reg_rctl -> t.rctl <- v
  | _ when off = reg_tctl -> t.tctl <- v
  | _ when off = reg_tdh -> t.tdh <- v mod n_tx_desc
  | _ when off = reg_tdt ->
      t.tdt <- v mod n_tx_desc;
      pump_tx t
  | _ when off = reg_rdh -> t.rdh <- v mod n_rx_desc
  | _ when off = reg_rdt -> t.rdt <- v mod n_rx_desc
  | _ -> ()

let on_rx t frame =
  if t.rctl land rctl_en <> 0 && Queue.length t.rx_fifo < n_rx_desc then begin
    Queue.push (frame, K.Clock.track "net.rx") t.rx_fifo;
    t.rx_count <- t.rx_count + 1;
    assert_cause t icr_rxt0
  end

let create ~mmio_base ~irq ~device_id ~mac ~link =
  if String.length mac <> 6 then invalid_arg "E1000_hw.create: bad MAC";
  let eeprom = Eeprom.create ~words:64 in
  Eeprom.load_mac eeprom mac;
  Eeprom.set_intel_checksum eeprom;
  let t =
    {
      irq_line = irq;
      device_id;
      link;
      phy = Phy.create ();
      eeprom;
      region = None;
      tx_staged = Queue.create ();
      rx_fifo = Queue.create ();
      ctrl = 0;
      icr = 0;
      ims = 0;
      rctl = 0;
      tctl = 0;
      tdh = 0;
      tdt = 0;
      inflight = 0;
      rdh = 0;
      rdt = 0;
      eerd = 0;
      mdic = 0;
      tx_count = 0;
      rx_count = 0;
      itr = 0;
      next_irq_at = 0;
      itr_armed = false;
    }
  in
  t.region <-
    Some
      (Io.register_mmio ~base:mmio_base ~len:0x20000
         ~read:(fun off w -> read t off w)
         ~write:(fun off w v -> write t off w v));
  Link.connect link ~nic_rx:(on_rx t);
  t

let destroy t = Option.iter Io.release t.region
let stage_tx t frame = Queue.push (frame, K.Clock.track "net.tx") t.tx_staged
let take_rx t = Queue.take_opt t.rx_fifo
let rx_pending t = Queue.length t.rx_fifo
let phy t = t.phy
let device_id t = t.device_id
let tx_count t = t.tx_count
let rx_count t = t.rx_count
let eeprom t = t.eeprom
