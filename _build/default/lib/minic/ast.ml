(** Abstract syntax of the mini-C language that DriverSlicer analyzes.

    The subset covers what Linux-style driver code needs: struct and
    typedef declarations with marshaling attributes, functions, the
    [goto]-label error-handling idiom, and ordinary statements and
    expressions. Every node keeps its source location so tools can patch
    the original text. *)

type attr = { attr_name : string; attr_arg : string option }
(** One parsed [__attribute__((name(arg)))] annotation, e.g. the
    [exp(PCI_LEN)] marshaling hint of the paper's Figure 3. *)

type ikind = Ichar | Ishort | Iint | Ilong | Ilonglong

type typ =
  | Tvoid
  | Tint of { kind : ikind; unsigned : bool }
  | Tnamed of string  (** a typedef name such as [uint32_t] *)
  | Tstruct of string
  | Tptr of typ
  | Tarray of typ * int option

type unop = Neg | Lnot | Bnot | Deref | Addr_of

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | Band
  | Bor
  | Bxor
  | Land
  | Lor

type expr =
  | Econst of int
  | Estr of string
  | Echar of char
  | Eident of string
  | Eunop of unop * expr
  | Ebinop of binop * expr * expr
  | Eassign of binop option * expr * expr
      (** [lhs = rhs] or compound [lhs op= rhs] *)
  | Ecall of expr * expr list
  | Efield of expr * string
  | Earrow of expr * string
  | Eindex of expr * expr
  | Ecast of typ * expr
  | Esizeof_type of typ
  | Esizeof_expr of expr
  | Econd of expr * expr * expr
  | Epostincr of expr
  | Epostdecr of expr
  | Epreincr of expr
  | Epredecr of expr

type stmt = { skind : stmt_kind; sloc : Loc.t }

and switch_case =
  | Case of int * stmt list
  | Default of stmt list

and stmt_kind =
  | Sexpr of expr
  | Sdecl of typ * string * expr option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sgoto of string
  | Slabel of string
  | Sswitch of expr * switch_case list
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type field = { fname : string; ftyp : typ; fattrs : attr list }

type struct_def = { sname : string; sfields : field list; sloc : Loc.t }

type param = { pname : string; ptyp : typ }

type func = {
  fname : string;
  fret : typ;
  fparams : param list;
  fbody : stmt list;
  fstatic : bool;
  floc_start : Loc.t;
  floc_end : Loc.t;
}

type global =
  | Gstruct of struct_def
  | Gtypedef of { tname : string; ttyp : typ; tloc : Loc.t }
  | Gfunc of func
  | Gfundecl of { dname : string; dret : typ; dparams : param list; dloc : Loc.t }
  | Gvar of { vname : string; vtyp : typ; vinit : expr option; vloc : Loc.t }
  | Gpragma of string * Loc.t

type file = { source : string; globals : global list }

(* --- Traversal helpers --- *)

(** Fold [f] over every expression in a statement list, including
    sub-expressions. *)
let rec fold_exprs_stmt f acc (s : stmt) =
  match s.skind with
  | Sexpr e -> fold_expr f acc e
  | Sdecl (_, _, Some e) -> fold_expr f acc e
  | Sdecl (_, _, None) -> acc
  | Sif (c, a, b) ->
      let acc = fold_expr f acc c in
      let acc = fold_exprs_stmts f acc a in
      fold_exprs_stmts f acc b
  | Swhile (c, body) ->
      let acc = fold_expr f acc c in
      fold_exprs_stmts f acc body
  | Sdo (body, c) ->
      let acc = fold_exprs_stmts f acc body in
      fold_expr f acc c
  | Sfor (init, cond, update, body) ->
      let acc = match init with Some s -> fold_exprs_stmt f acc s | None -> acc in
      let acc = match cond with Some e -> fold_expr f acc e | None -> acc in
      let acc = match update with Some e -> fold_expr f acc e | None -> acc in
      fold_exprs_stmts f acc body
  | Sreturn (Some e) -> fold_expr f acc e
  | Sswitch (e, cases) ->
      let acc = fold_expr f acc e in
      List.fold_left
        (fun acc case ->
          match case with
          | Case (_, body) | Default body -> fold_exprs_stmts f acc body)
        acc cases
  | Sreturn None | Sgoto _ | Slabel _ | Sbreak | Scontinue -> acc
  | Sblock body -> fold_exprs_stmts f acc body

and fold_exprs_stmts f acc stmts = List.fold_left (fold_exprs_stmt f) acc stmts

and fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Econst _ | Estr _ | Echar _ | Eident _ | Esizeof_type _ -> acc
  | Eunop (_, a)
  | Ecast (_, a)
  | Esizeof_expr a
  | Efield (a, _)
  | Earrow (a, _)
  | Epostincr a
  | Epostdecr a
  | Epreincr a
  | Epredecr a ->
      fold_expr f acc a
  | Ebinop (_, a, b) | Eassign (_, a, b) | Eindex (a, b) ->
      fold_expr f (fold_expr f acc a) b
  | Econd (a, b, c) -> fold_expr f (fold_expr f (fold_expr f acc a) b) c
  | Ecall (callee, args) ->
      List.fold_left (fold_expr f) (fold_expr f acc callee) args

let fold_exprs_func f acc (fn : func) = fold_exprs_stmts f acc fn.fbody

let functions file =
  List.filter_map (function Gfunc f -> Some f | _ -> None) file.globals

let structs file =
  List.filter_map (function Gstruct s -> Some s | _ -> None) file.globals

let typedefs file =
  List.filter_map
    (function Gtypedef { tname; ttyp; _ } -> Some (tname, ttyp) | _ -> None)
    file.globals

let find_function file name =
  List.find_opt (fun f -> f.fname = name) (functions file)

let find_struct file name =
  List.find_opt (fun s -> s.sname = name) (structs file)
