(* decaf-check regressions: clean-tree catalog exploration, the
   seed-and-catch mutation gate (both planted bugs must be found), the
   checked-in minimized counterexamples replayed as a table, replay
   determinism, the blocking-in-irq-window-hook guard, and the
   static/dynamic lock-acquisition-order cross-check. *)

module K = Decaf_kernel
module Xpc = Decaf_xpc
module C = Decaf_check
module Explore = C.Explore
module Episodes = C.Episodes
module Invariants = C.Invariants

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let episode name =
  match Episodes.find name with
  | Some e -> e
  | None -> Alcotest.failf "unknown episode %s" name

let kinds vs =
  List.sort_uniq compare (List.map (fun v -> v.Invariants.v_kind) vs)

let violations_str vs =
  String.concat "; " (List.map Invariants.violation_to_string vs)

(* --- clean tree: the whole catalog explores violation-free --- *)

let test_catalog_clean () =
  K.Mutants.reset ();
  List.iter
    (fun e ->
      let r = Explore.explore ~depth:e.Explore.ep_smoke_depth e in
      let s = r.Explore.r_stats in
      check_bool
        (e.Explore.ep_name ^ " explored at least one schedule")
        true
        (s.Explore.executions >= 1);
      check_bool (e.Explore.ep_name ^ " not capped") false s.Explore.capped;
      (match r.Explore.r_counterexamples with
      | [] -> ()
      | cx :: _ ->
          Alcotest.failf "%s: clean tree produced %s" e.Explore.ep_name
            (Invariants.violation_to_string cx.Explore.cx_violation)))
    Episodes.all

(* --- seed-and-catch: both planted mutants must be found --- *)

let catalog_kinds () =
  List.concat_map
    (fun e ->
      let r = Explore.explore e in
      List.map
        (fun cx -> cx.Explore.cx_violation.Invariants.v_kind)
        r.Explore.r_counterexamples)
    Episodes.all
  |> List.sort_uniq compare

let test_mutant_drop_drain () =
  K.Mutants.reset ();
  K.Mutants.drop_unbind_drain := true;
  let found =
    Fun.protect ~finally:K.Mutants.reset (fun () -> catalog_kinds ())
  in
  check_bool "dropping the unbind drain is caught (after-free)" true
    (List.mem "after-free" found)

let test_mutant_swap_lock_order () =
  K.Mutants.reset ();
  K.Mutants.swap_lock_order := true;
  let found =
    Fun.protect ~finally:K.Mutants.reset (fun () -> catalog_kinds ())
  in
  check_bool "swapping the combolock order is caught (lock-order)" true
    (List.mem "lock-order" found)

(* --- checked-in counterexample replays ---------------------------------

   Each row is a minimized counterexample the explorer produced against
   a planted mutant (trace "" means the violation reproduces on the
   default schedule), plus the full discovery schedule, plus the same
   schedules replayed on the clean tree where they must be silent. *)

type replay_row = {
  rr_episode : string;
  rr_mutant : bool ref option;
  rr_trace : string;
  rr_expect : string option;  (* violation kind, None = must be clean *)
}

let replay_table =
  [
    {
      rr_episode = "fleet-churn";
      rr_mutant = Some K.Mutants.drop_unbind_drain;
      rr_trace = "";
      rr_expect = Some "after-free";
    };
    {
      rr_episode = "fleet-churn";
      rr_mutant = Some K.Mutants.drop_unbind_drain;
      rr_trace = "loader,churn-a,churn-b,kworker/xpc-batch/0";
      rr_expect = Some "after-free";
    };
    {
      rr_episode = "lock-hierarchy";
      rr_mutant = Some K.Mutants.swap_lock_order;
      rr_trace = "";
      rr_expect = Some "lock-order";
    };
    {
      rr_episode = "lock-hierarchy";
      rr_mutant = Some K.Mutants.swap_lock_order;
      rr_trace = "loader,path-a,path-b";
      rr_expect = Some "lock-order";
    };
    {
      rr_episode = "fleet-churn";
      rr_mutant = None;
      rr_trace = "";
      rr_expect = None;
    };
    {
      rr_episode = "lock-hierarchy";
      rr_mutant = None;
      rr_trace = "loader,path-a,path-b";
      rr_expect = None;
    };
  ]

let test_replay_table () =
  List.iter
    (fun row ->
      K.Mutants.reset ();
      Option.iter (fun r -> r := true) row.rr_mutant;
      let vs =
        Fun.protect ~finally:K.Mutants.reset (fun () ->
            Explore.replay (episode row.rr_episode) row.rr_trace)
      in
      match row.rr_expect with
      | Some kind ->
          check_bool
            (Printf.sprintf "%s trace %S reproduces %s (got: %s)"
               row.rr_episode row.rr_trace kind (violations_str vs))
            true
            (List.mem kind (kinds vs))
      | None ->
          check_str
            (Printf.sprintf "%s trace %S silent on the clean tree"
               row.rr_episode row.rr_trace)
            "" (violations_str vs))
    replay_table

let test_replay_deterministic () =
  K.Mutants.reset ();
  K.Mutants.drop_unbind_drain := true;
  let run () =
    Explore.replay (episode "fleet-churn")
      "loader,churn-a,churn-b,kworker/xpc-batch/0"
  in
  let a, b = Fun.protect ~finally:K.Mutants.reset (fun () -> (run (), run ())) in
  check_bool "replay found the violation" true (a <> []);
  check_str "two replays of one trace agree" (violations_str a)
    (violations_str b)

(* --- blocking inside the irq-window hook is a caught bug --- *)

let test_window_hook_blocking () =
  Explore.boot_world ();
  Xpc.Batch.set_enabled true;
  Xpc.Batch.configure ~watermark:64 ();
  Xpc.Batch.post ~target:Xpc.Domain.Driver_lib ~context:"test" (fun () -> ());
  check_bool "notification queued" true (Xpc.Batch.pending () > 0);
  K.Sched.set_irq_window_hook (fun () -> Xpc.Batch.drain ());
  ignore
    (K.Sched.spawn ~name:"masker" (fun () ->
         K.Sched.local_irq_save ();
         K.Sched.local_irq_restore ()));
  (match K.Sched.run () with
  | () -> Alcotest.fail "batch flush inside the irq-window hook not caught"
  | exception K.Sched.Would_block_in_atomic what ->
      check_bool
        (Printf.sprintf "names the hook context: %s" what)
        true
        (Testutil.contains what "irq-window hook"));
  (* boot a fresh world so the poisoned hook cannot leak into later tests *)
  Explore.boot_world ()

(* --- static lock order and the static/dynamic diff --- *)

let nested_locks_src =
  {|
struct card { int dummy; };
void inner(struct card *c) { }
void path_one(struct card *c)
{
    spin_lock(&c->lock_a);
    spin_lock(&c->lock_b);
    inner(c);
    spin_unlock(&c->lock_b);
    spin_unlock(&c->lock_a);
}
void path_two(struct card *c)
{
    spin_lock_irqsave(&c->lock_a, flags);
    if (c->dummy) {
        spin_lock(&c->lock_c);
        spin_unlock(&c->lock_c);
    }
    spin_unlock_irqrestore(&c->lock_a, flags);
}
|}

let test_static_lock_order () =
  let file = Decaf_minic.Parser.parse nested_locks_src in
  let edges = Decaf_slicer.Lint.static_lock_order file in
  check_bool "a->b edge found" true
    (List.mem ("c->lock_a", "c->lock_b") edges);
  check_bool "a->c edge found (branch arm)" true
    (List.mem ("c->lock_a", "c->lock_c") edges);
  check "no other edges" 2 (List.length edges)

let test_lock_order_diff () =
  let d =
    C.Lockorder.diff
      ~static:[ ("&lp->lock_a", "lp->lock_b"); ("s->only_static", "s->x") ]
      ~dynamic:
        [
          ("combo:lock_b", "combo:lock_a");
          ("spin:only_dynamic", "spin:y");
        ]
  in
  check "one conflict" 1 (List.length d.C.Lockorder.conflicts);
  check_bool "conflict is the reversed pair" true
    (List.mem ("lock_a", "lock_b") d.C.Lockorder.conflicts);
  check "static-only" 2 (List.length d.C.Lockorder.static_only);
  check "dynamic-only" 2 (List.length d.C.Lockorder.dynamic_only);
  check "no agreements" 0 (List.length d.C.Lockorder.agreements);
  let agree =
    C.Lockorder.diff
      ~static:[ ("lp->lock_a", "lp->lock_b") ]
      ~dynamic:[ ("spin:lock_a", "spin:lock_b") ]
  in
  check "agreement counted" 1 (List.length agree.C.Lockorder.agreements)

(* --- the bundled legacy drivers pass the cross-check --- *)

let test_bundled_static_edges () =
  let module E = Decaf_experiments.Exploration in
  let results = E.run ~smoke:true () in
  check_bool "no static/dynamic lock-order conflicts" false
    (E.has_conflicts results)

let () =
  Alcotest.run "decaf-check"
    [
      ( "explore",
        [
          Alcotest.test_case "catalog clean" `Quick test_catalog_clean;
          Alcotest.test_case "mutant: dropped unbind drain is caught" `Quick
            test_mutant_drop_drain;
          Alcotest.test_case "mutant: swapped lock order is caught" `Quick
            test_mutant_swap_lock_order;
        ] );
      ( "replay",
        [
          Alcotest.test_case "counterexample table replays" `Quick
            test_replay_table;
          Alcotest.test_case "replay is deterministic" `Quick
            test_replay_deterministic;
        ] );
      ( "guards",
        [
          Alcotest.test_case "batch flush in irq-window hook" `Quick
            test_window_hook_blocking;
        ] );
      ( "lock-order",
        [
          Alcotest.test_case "static extraction" `Quick test_static_lock_order;
          Alcotest.test_case "static/dynamic diff" `Quick test_lock_order_diff;
          Alcotest.test_case "bundled drivers conflict-free" `Quick
            test_bundled_static_edges;
        ] );
    ]
