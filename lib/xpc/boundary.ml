(* The typed fault raised when inbound data from an untrusted user-level
   driver fails validation, plus the machine-wide rejection counters.
   This module has no dependencies so that every boundary layer —
   Marshal_plan.Dirty, Objtracker, Batch, Guard — can report into the
   same accounting without import cycles. *)

exception
  Boundary_violation of {
    type_id : string;  (** which boundary object (plan type, tracker, queue) *)
    field : string;  (** offending field / handle / generation *)
    reason : string;
  }

let () =
  Printexc.register_printer (function
    | Boundary_violation { type_id; field; reason } ->
        Some
          (Printf.sprintf "Boundary_violation(%s.%s: %s)" type_id field reason)
    | _ -> None)

type counters = {
  mutable checks : int;  (** validations performed *)
  mutable rejected : int;  (** violations detected (raised or refused) *)
  mutable dropped : int;  (** inbound work discarded without a fault *)
}

let totals = { checks = 0; rejected = 0; dropped = 0 }

(* Per-scope rejection attribution: Driver_core sets the scope to the
   binding's name around every metered crossing, and the split drivers
   set it around their own inbound unmarshal paths, so `decafctl status`
   can show rejections per driver. Save/restore keeps nesting correct. *)
let scope : string option ref = ref None
let by_scope : (string, int) Hashtbl.t = Hashtbl.create 8

let scoped name f =
  let saved = !scope in
  scope := Some name;
  Fun.protect ~finally:(fun () -> scope := saved) f

let rejected_for name =
  Option.value ~default:0 (Hashtbl.find_opt by_scope name)

(* Drops share the same attribution path as rejections: Batch queue-bound
   drops and Ring overflow/teardown drops land here under the binding's
   scope, so status output can reconcile per-driver drops against the
   machine-wide total. *)
let dropped_by_scope : (string, int) Hashtbl.t = Hashtbl.create 8

let dropped_for name =
  Option.value ~default:0 (Hashtbl.find_opt dropped_by_scope name)

(* Per-driver rollups over the binding-id scheme: instance 0 of driver
   "e1000" is scoped under the bare name, instance k under "e1000#k", so
   summing the exact key plus every "name#"-prefixed key recovers the
   whole fleet's figure without double-counting any scope. *)
let rollup tbl name =
  let prefix = name ^ "#" in
  let plen = String.length prefix in
  Hashtbl.fold
    (fun key n acc ->
      if
        key = name
        || String.length key > plen && String.sub key 0 plen = prefix
      then acc + n
      else acc)
    tbl 0

let rejected_for_driver name = rollup by_scope name
let dropped_for_driver name = rollup dropped_by_scope name

let note_check () = totals.checks <- totals.checks + 1

let note_rejected () =
  totals.rejected <- totals.rejected + 1;
  match !scope with
  | None -> ()
  | Some name -> Hashtbl.replace by_scope name (1 + rejected_for name)

let note_dropped () =
  totals.dropped <- totals.dropped + 1;
  match !scope with
  | None -> ()
  | Some name -> Hashtbl.replace dropped_by_scope name (1 + dropped_for name)

let reject ~type_id ~field fmt =
  Printf.ksprintf
    (fun reason ->
      note_rejected ();
      raise (Boundary_violation { type_id; field; reason }))
    fmt

let reset () =
  totals.checks <- 0;
  totals.rejected <- 0;
  totals.dropped <- 0;
  Hashtbl.reset by_scope;
  Hashtbl.reset dropped_by_scope;
  scope := None
