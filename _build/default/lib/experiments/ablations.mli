(** Ablations of the Decaf design decisions.

    - {b A1 — direct marshaling} (§4 proposes it as future work): route
      kernel<->decaf transfers directly instead of unmarshaling in C and
      re-marshaling in Java, and measure E1000 decaf initialization.
    - {b A2 — combolocks vs. plain semaphores} (§3.1.3): the cost of the
      kernel-only fast path, which is the reason combolocks exist.
    - {b A3 — field-selective marshal plans vs. full-structure copies}
      (§2.3): bytes that would cross per adapter transfer. *)

type direct_marshal = {
  indirect_init_ns : int;
  direct_init_ns : int;
  indirect_c_java_calls : int;
  direct_c_java_calls : int;
}

type lock_cost = {
  combolock_ns : int;  (** virtual ns for [iterations] kernel acquisitions *)
  semaphore_ns : int;
  iterations : int;
}

type marshal_selectivity = {
  plan_bytes : int;  (** one adapter transfer under the derived plan *)
  full_bytes : int;  (** the same transfer copying every field *)
  init_transfers : int;  (** adapter transfers during init+open *)
}

type t = {
  direct_marshal : direct_marshal;
  lock_cost : lock_cost;
  marshal_selectivity : marshal_selectivity;
}

val measure : unit -> t
val render : t -> string
