(** The mpg123 workload: decode and play a 256 Kb/s MP3 through the
    sound driver (44.1 kHz, 16-bit stereo PCM). *)

type result = {
  seconds_played : float;
  cpu_utilization : float;
  underruns : int;
  periods : int;
  xpc_overhead_ns : int;
      (** XPC dispatch critical-path ns during the run
          ({!Decaf_xpc.Dispatch.overhead_ns} delta) *)
  realtime_factor : float;
      (** seconds played per effective second (elapsed minus the
          dispatch work worker lanes overlap,
          {!Decaf_xpc.Dispatch.overlap_saved_ns} delta); >= 1 means
          playback keeps up with real time after paying upcall costs *)
}

val play :
  substream:Decaf_kernel.Sndcore.substream ->
  model:Decaf_hw.Ens1371_hw.t ->
  duration_ns:int ->
  result
(** Open the PCM, set 44.1 kHz stereo parameters, stream audio for the
    given virtual duration, then drain and close. *)

val pp : Format.formatter -> result -> unit
