module K = Decaf_kernel

type outcome = { value : int; adjusted : bool }

class virtual checker ~name ~default =
  object (self)
    method name : string = name
    method default : int = default
    method virtual accepts : int -> bool

    method check raw =
      if self#accepts raw then { value = raw; adjusted = false }
      else begin
        K.Klog.printk K.Klog.Warning
          "param %s: invalid value %d, using default %d" name raw default;
        { value = default; adjusted = true }
      end
  end

class flag_checker ~name ~default =
  object
    inherit checker ~name ~default
    method accepts v = v = 0 || v = 1
  end

class range_checker ~name ~default ~min ~max =
  object
    inherit checker ~name ~default
    method accepts v = v >= min && v <= max
  end

class set_checker ~name ~default ~allowed =
  object
    inherit checker ~name ~default

    val table =
      let t = Hashtbl.create (List.length allowed) in
      List.iter (fun v -> Hashtbl.replace t v ()) allowed;
      t

    method accepts v = Hashtbl.mem table v
  end

class type concrete = object
  method name : string
  method default : int
  method accepts : int -> bool
  method check : int -> outcome
end

let check_all entries =
  List.map (fun (c, raw) -> (c#name, c#check raw)) entries
