(* Tests for the mini-C frontend: lexer, parser, pretty-printer,
   symbol table, and call graph. *)

open Decaf_minic

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample_driver =
  {|
#include <linux/module.h>

typedef unsigned int u32_alias;

struct nic_ring {
  int head;
  int tail;
  uint32_t * __attribute__((exp(RING_LEN))) descs;
};

struct nic_adapter {
  struct nic_ring tx;      /* embedded first member */
  struct nic_ring rx;
  int msg_enable;
  char name[16];
};

int kmalloc_shim(int size);
void kfree_shim(int p);

static int read_reg(struct nic_adapter *a, int reg) {
  return reg + a->msg_enable;
}

static int setup_ring(struct nic_adapter *a) {
  int err = kmalloc_shim(sizeof(struct nic_ring));
  if (!err)
    goto fail;
  a->tx.head = 0;
  return 0;
fail:
  return -12;
}

int nic_open(struct nic_adapter *a) {
  int err;
  err = setup_ring(a);
  if (err)
    return err;
  while (read_reg(a, 0x10) == 0) {
    err = err + 1;
  }
  for (int i = 0; i < 4; i++)
    a->msg_enable = a->msg_enable | (1 << i);
  return 0;
}

void nic_poll(struct nic_adapter *a) {
  void (*cb)(int);
  a->msg_enable++;
}
|}

let parse_exn src = Parser.parse src

(* --- lexer --- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "a->b == 0x1f && c <<= 2; /* note */ x" in
  let kinds = List.map fst toks in
  check_bool "has arrow" true (List.mem Token.Arrow kinds);
  check_bool "hex literal" true (List.mem (Token.Int_lit 0x1f) kinds);
  check_bool "shl-assign" true (List.mem Token.Shl_assign kinds);
  check_bool "comment skipped" true
    (not (List.exists (function Token.Ident "note" -> true | _ -> false) kinds))

let test_lexer_attribute () =
  let toks = Lexer.tokenize "__attribute__((exp(PCI_LEN)))" in
  match toks with
  | (Token.Attribute payload, _) :: _ ->
      Alcotest.(check string) "payload" "exp(PCI_LEN)" payload
  | _ -> Alcotest.fail "attribute not lexed"

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nbb\n  ccc" in
  let lines =
    List.filter_map
      (function Token.Ident _, (l : Loc.t) -> Some l.Loc.line | _ -> None)
      toks
  in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3 ] lines

let test_lexer_error_reports_position () =
  match Lexer.tokenize "a\n  $" with
  | exception Lexer.Lex_error (_, loc) -> check "line" 2 loc.Loc.line
  | _ -> Alcotest.fail "expected lex error"

(* --- parser --- *)

let test_parse_sample () =
  let file = parse_exn sample_driver in
  check "functions" 4 (List.length (Ast.functions file));
  check "structs" 2 (List.length (Ast.structs file));
  check_bool "typedef recorded" true
    (List.mem_assoc "u32_alias" (Ast.typedefs file))

let test_parse_struct_attributes () =
  let file = parse_exn sample_driver in
  match Ast.find_struct file "nic_ring" with
  | Some s ->
      let descs = List.find (fun (f : Ast.field) -> f.Ast.fname = "descs") s.Ast.sfields in
      (match descs.Ast.fattrs with
      | [ { Ast.attr_name = "exp"; attr_arg = Some "RING_LEN" } ] -> ()
      | _ -> Alcotest.fail "attribute not attached");
      (match descs.Ast.ftyp with
      | Ast.Tptr (Ast.Tnamed "uint32_t") -> ()
      | t -> Alcotest.failf "wrong type %s" (Pp.typ_to_string t))
  | None -> Alcotest.fail "struct nic_ring missing"

let test_parse_goto_idiom () =
  let file = parse_exn sample_driver in
  match Ast.find_function file "setup_ring" with
  | Some f ->
      let has_goto = ref false and has_label = ref false in
      let rec scan (s : Ast.stmt) =
        match s.Ast.skind with
        | Ast.Sgoto "fail" -> has_goto := true
        | Ast.Slabel "fail" -> has_label := true
        | Ast.Sif (_, a, b) ->
            List.iter scan a;
            List.iter scan b
        | Ast.Sblock b -> List.iter scan b
        | _ -> ()
      in
      List.iter scan f.Ast.fbody;
      check_bool "goto" true !has_goto;
      check_bool "label" true !has_label
  | None -> Alcotest.fail "setup_ring missing"

let test_parse_expression_shapes () =
  (match Parser.parse_expr "a->b.c[3] = f(x, y + 1) & ~mask" with
  | Ast.Eassign (None, Ast.Eindex (Ast.Efield (Ast.Earrow _, "c"), Ast.Econst 3), Ast.Ebinop (Ast.Band, Ast.Ecall _, Ast.Eunop (Ast.Bnot, _)))
    ->
      ()
  | e -> Alcotest.failf "unexpected shape: %s" (Pp.expr_to_string e));
  match Parser.parse_expr "x ? y : z + 1" with
  | Ast.Econd (_, _, Ast.Ebinop (Ast.Add, _, _)) -> ()
  | e -> Alcotest.failf "ternary shape: %s" (Pp.expr_to_string e)

let test_parse_precedence () =
  match Parser.parse_expr "1 + 2 * 3 == 7 && 4 < 5" with
  | Ast.Ebinop
      ( Ast.Land,
        Ast.Ebinop (Ast.Eq, Ast.Ebinop (Ast.Add, _, Ast.Ebinop (Ast.Mul, _, _)), _),
        Ast.Ebinop (Ast.Lt, _, _) ) ->
      ()
  | e -> Alcotest.failf "precedence wrong: %s" (Pp.expr_to_string e)

let test_parse_function_locations () =
  let file = parse_exn sample_driver in
  match Ast.find_function file "nic_open" with
  | Some f ->
      check_bool "start before end" true
        (f.Ast.floc_start.Loc.line < f.Ast.floc_end.Loc.line);
      check_bool "spans the while loop" true
        (f.Ast.floc_end.Loc.line - f.Ast.floc_start.Loc.line >= 9)
  | None -> Alcotest.fail "nic_open missing"

let test_parse_switch () =
  let src =
    {|
static int classify(int id) {
  int kind = 0;
  switch (id) {
  case 0:
    kind = 1;
    break;
  case 3:
  case 4:
    kind = 2;
    break;
  default:
    kind = -1;
  }
  return kind;
}
|}
  in
  let file = parse_exn src in
  match Ast.find_function file "classify" with
  | None -> Alcotest.fail "classify missing"
  | Some f -> (
      let sw =
        List.find_map
          (fun (s : Ast.stmt) ->
            match s.Ast.skind with
            | Ast.Sswitch (e, cases) -> Some (e, cases)
            | _ -> None)
          f.Ast.fbody
      in
      match sw with
      | Some (Ast.Eident "id", cases) ->
          check "four case arms" 4 (List.length cases);
          (match List.rev cases with
          | Ast.Default _ :: _ -> ()
          | _ -> Alcotest.fail "default not last");
          (* fall-through: case 3 has an empty body *)
          (match List.nth cases 1 with
          | Ast.Case (3, []) -> ()
          | _ -> Alcotest.fail "fall-through case 3");
          (* round trip through the printer: print/parse reaches a
             fixpoint *)
          let printed = Pp.file_to_string file in
          let reparsed = Parser.parse printed in
          Alcotest.(check string) "switch survives the printer" printed
            (Pp.file_to_string reparsed)
      | Some _ -> Alcotest.fail "wrong scrutinee"
      | None -> Alcotest.fail "no switch parsed")

let test_parse_error_position () =
  match Parser.parse "int f( {" with
  | exception Parser.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "expected parse error"

(* --- pretty-printer round trip --- *)

let strip_locs_file (f : Ast.file) =
  (* compare ASTs ignoring locations by erasing them *)
  let d = Loc.dummy in
  let rec stmt (s : Ast.stmt) =
    { Ast.sloc = d; skind = kind s.Ast.skind }
  and kind = function
    | Ast.Sif (c, a, b) -> Ast.Sif (c, List.map stmt a, List.map stmt b)
    | Ast.Swhile (c, b) -> Ast.Swhile (c, List.map stmt b)
    | Ast.Sdo (b, c) -> Ast.Sdo (List.map stmt b, c)
    | Ast.Sfor (i, c, u, b) ->
        Ast.Sfor (Option.map stmt i, c, u, List.map stmt b)
    | Ast.Sblock b -> Ast.Sblock (List.map stmt b)
    | k -> k
  in
  let glob = function
    | Ast.Gfunc fn ->
        Ast.Gfunc
          {
            fn with
            Ast.fbody = List.map stmt fn.Ast.fbody;
            floc_start = d;
            floc_end = d;
          }
    | Ast.Gstruct s -> Ast.Gstruct { s with Ast.sloc = d }
    | Ast.Gtypedef { tname; ttyp; tloc = _ } ->
        Ast.Gtypedef { tname; ttyp; tloc = d }
    | Ast.Gfundecl { dname; dret; dparams; dloc = _ } ->
        Ast.Gfundecl { dname; dret; dparams; dloc = d }
    | Ast.Gvar { vname; vtyp; vinit; vloc = _ } ->
        Ast.Gvar { vname; vtyp; vinit; vloc = d }
    | Ast.Gpragma (p, _) -> Ast.Gpragma (p, d)
  in
  { Ast.source = ""; globals = List.map glob f.Ast.globals }

let test_pp_roundtrip_sample () =
  let file = parse_exn sample_driver in
  let printed = Pp.file_to_string file in
  let reparsed = Parser.parse printed in
  check_bool "round trip equal (modulo locations)" true
    (strip_locs_file file = strip_locs_file reparsed)

let prop_pp_expr_roundtrip =
  (* random expression generator *)
  let open QCheck in
  let leaf =
    Gen.oneof
      [
        Gen.map (fun n -> Ast.Econst n) (Gen.int_range 0 1000);
        Gen.oneofl [ Ast.Eident "x"; Ast.Eident "reg"; Ast.Eident "dev" ];
      ]
  in
  let gen_expr =
    Gen.sized (fun n ->
        Gen.fix
          (fun self n ->
            if n <= 1 then leaf
            else
              Gen.oneof
                [
                  leaf;
                  Gen.map2
                    (fun a b -> Ast.Ebinop (Ast.Add, a, b))
                    (self (n / 2)) (self (n / 2));
                  Gen.map2
                    (fun a b -> Ast.Ebinop (Ast.Band, a, b))
                    (self (n / 2)) (self (n / 2));
                  Gen.map (fun a -> Ast.Eunop (Ast.Bnot, a)) (self (n - 1));
                  Gen.map (fun a -> Ast.Earrow (a, "field")) (self (n - 1));
                  Gen.map2
                    (fun a b -> Ast.Ecall (Ast.Eident "f", [ a; b ]))
                    (self (n / 2)) (self (n / 2));
                  Gen.map2
                    (fun a b -> Ast.Eindex (a, b))
                    (self (n / 2)) (self (n / 2));
                ])
          (min n 20))
  in
  QCheck.Test.make ~name:"printer/parser expression roundtrip" ~count:300
    (QCheck.make ~print:Pp.expr_to_string gen_expr)
    (fun e -> Parser.parse_expr (Pp.expr_to_string e) = e)

(* --- symtab --- *)

let test_symtab () =
  let file = parse_exn sample_driver in
  let tab = Symtab.build file in
  check "functions" 4 (List.length (Symtab.functions tab));
  check_bool "kmalloc_shim declared only" true
    (List.mem "kmalloc_shim" (Symtab.declared_only tab));
  check_bool "setup_ring defined" true (Symtab.is_defined tab "setup_ring");
  (match Symtab.resolve tab (Ast.Tnamed "u32_alias") with
  | Ast.Tint { unsigned = true; kind = Ast.Iint } -> ()
  | t -> Alcotest.failf "resolve: %s" (Pp.typ_to_string t));
  check_bool "unknown typedef unresolved" true
    (Symtab.resolve tab (Ast.Tnamed "wat") = Ast.Tnamed "wat")

(* --- callgraph --- *)

let test_callgraph_direct () =
  let file = parse_exn sample_driver in
  let cg = Callgraph.build file in
  Alcotest.(check (list string))
    "nic_open calls" [ "read_reg"; "setup_ring" ]
    (List.sort compare (Callgraph.callees cg "nic_open"));
  Alcotest.(check (list string))
    "setup_ring externals" [ "kmalloc_shim" ]
    (Callgraph.external_callees cg "setup_ring");
  Alcotest.(check (list string))
    "callers of setup_ring" [ "nic_open" ]
    (Callgraph.callers cg "setup_ring")

let test_callgraph_reachability () =
  let file = parse_exn sample_driver in
  let cg = Callgraph.build file in
  Alcotest.(check (list string))
    "reachable from nic_open"
    [ "nic_open"; "read_reg"; "setup_ring" ]
    (Callgraph.reachable cg ~roots:[ "nic_open" ]);
  Alcotest.(check (list string))
    "unknown root reaches nothing" []
    (Callgraph.reachable cg ~roots:[ "no_such" ])

let indirect_driver =
  {|
typedef void (*handler_t)(int);

static void helper_a(int x) { x = x + 1; }
static void helper_b(int x) { x = x + 2; }
static void not_taken(int x) { x = x + 3; }

struct ops { int dummy; };

static void dispatch(struct ops *o, int which) {
  handler_t h;
  h = helper_a;
  if (which)
    h = helper_b;
  (*h)(which);
}
|}

let test_callgraph_indirect () =
  let file = parse_exn indirect_driver in
  let cg = Callgraph.build file in
  let callees = Callgraph.callees cg "dispatch" in
  check_bool "helper_a reachable via pointer" true (List.mem "helper_a" callees);
  check_bool "helper_b reachable via pointer" true (List.mem "helper_b" callees);
  check_bool "not_taken unreachable" true (not (List.mem "not_taken" callees));
  Alcotest.(check (list string))
    "address taken" [ "helper_a"; "helper_b" ]
    (Callgraph.address_taken cg)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decaf_minic"
    [
      ( "lexer",
        [
          tc "token kinds" test_lexer_tokens;
          tc "attribute blobs" test_lexer_attribute;
          tc "line numbers" test_lexer_line_numbers;
          tc "error position" test_lexer_error_reports_position;
        ] );
      ( "parser",
        [
          tc "sample driver" test_parse_sample;
          tc "struct attributes" test_parse_struct_attributes;
          tc "goto idiom" test_parse_goto_idiom;
          tc "expression shapes" test_parse_expression_shapes;
          tc "precedence" test_parse_precedence;
          tc "function locations" test_parse_function_locations;
          tc "switch statement" test_parse_switch;
          tc "parse error" test_parse_error_position;
        ] );
      ( "printer",
        [
          tc "file round trip" test_pp_roundtrip_sample;
          QCheck_alcotest.to_alcotest prop_pp_expr_roundtrip;
        ] );
      ("symtab", [ tc "symbols" test_symtab ]);
      ( "callgraph",
        [
          tc "direct edges" test_callgraph_direct;
          tc "reachability" test_callgraph_reachability;
          tc "indirect via address-taken" test_callgraph_indirect;
        ] );
    ]
