lib/slicer/regen.ml: Decaf_xpc List Slicer
