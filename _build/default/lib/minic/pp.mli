(** Pretty-printer: renders the AST back to compilable mini-C text.

    [parse (print x)] yields an AST equal to [x] up to source locations —
    a property the test suite checks. *)

val typ : Format.formatter -> Ast.typ -> unit
val expr : Format.formatter -> Ast.expr -> unit
val stmt : Format.formatter -> Ast.stmt -> unit
val func : Format.formatter -> Ast.func -> unit
val struct_def : Format.formatter -> Ast.struct_def -> unit
val global : Format.formatter -> Ast.global -> unit
val file : Format.formatter -> Ast.file -> unit

val typ_to_string : Ast.typ -> string
val expr_to_string : Ast.expr -> string
val func_to_string : Ast.func -> string
val file_to_string : Ast.file -> string
