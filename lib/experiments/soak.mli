(** The mixed-traffic soak experiment: the per-phase latency-percentile
    trajectory behind [BENCH_soak.json].

    Boots the machine on the best parallel XPC configuration
    (batch + delta + 4 workers + ring, guard on), runs
    {!Decaf_workloads.Soak} — all five drivers concurrently, a
    fault-free ["steady"] phase then a fault-injected ["churn"] phase —
    and reports p50/p99/p999 per tracked event path per phase, the
    audio deadline-miss counts, and the quiescence leak ledgers. *)

type row = {
  phase : string;  (** ["steady"] or ["churn"] *)
  path : string;  (** latency-registry path, e.g. ["xpc.dispatch"] *)
  samples : int;
  overflow : int;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

type summary = {
  duration_ns : int;  (** virtual ns per phase *)
  fleet : int;  (** e1000 instances on the virtual switch *)
  seed : int;  (** burst/churn schedule seed *)
  rows : row list;
  steady_misses : int;  (** audio deadline misses, fault-free phase *)
  churn_misses : int;
  audio_periods : int;
  packets : int;
  leaked_entries : int;  (** object-tracker entries at quiescence *)
  leaked_bytes : int;  (** kmalloc bytes at quiescence *)
}

val default_duration_ns : int
val default_fleet : int
val default_seed : int

val measure :
  ?duration_ns:int -> ?fleet:int -> ?seed:int -> unit -> summary
(** Boot, configure, soak, and flatten the result. Deterministic for a
    fixed (duration, fleet, seed) triple. *)

val render : summary -> string
(** Percentile table plus the audio/leak summary line. *)

val to_json : summary -> string
(** One JSON object per line — a header with the run parameters and
    gate counters, then one row per (phase, path) — hand-rolled, no
    JSON library, like the BENCH_xpc.json trajectory. *)

val of_json : string -> summary

val write_json :
  ?duration_ns:int -> ?fleet:int -> ?seed:int -> path:string -> unit -> summary
(** Measure and write the trajectory file; returns the summary. *)

val compare_rows :
  ?p99_slack_pct:int -> committed:row list -> fresh:row list -> unit ->
  string list
(** The pure p99 gate: one complaint per committed (phase, path) whose
    fresh p99 exceeds the committed value by more than [p99_slack_pct]
    percent (default 5, with a 2 us absolute floor so single-bucket
    jitter on nanosecond-scale paths cannot trip it) or which
    disappeared. Exposed for unit tests. *)

val check : ?p99_slack_pct:int -> path:string -> unit -> bool
(** Re-measure at the committed file's (duration, fleet, seed) and
    gate: p99 per (phase, path) within the slack, zero audio deadline
    misses in the fresh steady phase, zero leaked tracker entries and
    kmalloc bytes at quiescence. Setting [DECAF_SOAK_WAIVE=1] in the
    environment skips only the p99 comparison (for landing intentional
    cost-model changes ahead of the regenerated file); the miss and
    leak gates always apply. Prints each violation; returns [false] on
    any. *)
