lib/kernel/clock.mli:
