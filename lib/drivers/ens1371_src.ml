(** Legacy ens1371 sound-driver source (mini-C), scaled down from the
    2,165-line original. Per Table 2, nearly everything moves to Java: a
    six-function nucleus (interrupt + period bookkeeping) and no driver
    library. *)

let source =
  {|#include <linux/module.h>
#include <sound/core.h>

#define DAC2_FRAME 4096

struct ens_rate {
  int rate;
  int truncation;
};

struct ensoniq {
  struct ens_rate dac2;      /* first member aliases the device struct */
  unsigned int io_base;
  int ctrl;
  int sctrl;
  int playing;
  int period_bytes;
  int position;
  uint16_t * __attribute__((exp(CODEC_REGS))) codec_shadow;
  char card_id[16];
};

int request_irq(int irq, int handler);
void free_irq(int irq);
int snd_card_new(struct ensoniq *ens);
int snd_card_register(struct ensoniq *ens);
void snd_card_free(struct ensoniq *ens);
int snd_pcm_new(struct ensoniq *ens);
int snd_ctl_add(struct ensoniq *ens, int control);
void snd_period_elapsed(struct ensoniq *ens);
int pci_enable_device(struct ensoniq *ens);
unsigned int ioread32(unsigned int addr);
void iowrite32(unsigned int addr, unsigned int value);
void udelay(int usec);
void printk_info(int code);

/* ================ nucleus: interrupt path ================ */

static void snd_ensoniq_update_pointer(struct ensoniq *ens) {
  ens->position = ioread32(ens->io_base + 0x2c);
}

static void snd_ensoniq_ack_dac2(struct ensoniq *ens) {
  iowrite32(ens->io_base + 0x4, 0x2);
}

static void snd_ensoniq_interrupt(struct ensoniq *ens) {
  unsigned int status = ioread32(ens->io_base + 0x4);
  if (!(status & 0x80000000))
    return;
  if (status & 0x2) {
    snd_ensoniq_ack_dac2(ens);
    snd_ensoniq_update_pointer(ens);
    snd_period_elapsed(ens);
  }
}

/* ================ converted to Java ================ */

static void snd_es1371_codec_write(struct ensoniq *ens, int reg, int val) {
  int i;
  for (i = 0; i < 100; i++) {
    if (!(ioread32(ens->io_base + 0x14) & 0x40000000))
      break;
    udelay(10);
  }
  iowrite32(ens->io_base + 0x14, (reg << 16) | val);
  ens->codec_shadow[reg] = val;
}

static int snd_es1371_codec_read(struct ensoniq *ens, int reg) {
  DECAF_RVAR(ens->codec_shadow);
  return ens->codec_shadow[reg];
}

static void snd_es1371_src_write(struct ensoniq *ens, int rate) {
  int i;
  for (i = 0; i < 100; i++) {
    if (!(ioread32(ens->io_base + 0x10) & 0x800000))
      break;
    udelay(10);
  }
  iowrite32(ens->io_base + 0x10, rate);
}

static int snd_ensoniq_dac2_rate(struct ensoniq *ens, int rate) {
  if (rate < 4000 || rate > 48000)
    return -22;
  ens->dac2.rate = rate;
  snd_es1371_src_write(ens, rate);
  return 0;
}

static int snd_ensoniq_playback_open(struct ensoniq *ens) {
  ens->playing = 0;
  return 0;
}

static int snd_ensoniq_playback_close(struct ensoniq *ens) {
  ens->playing = 0;
  return 0;
}

static int snd_ensoniq_hw_params(struct ensoniq *ens, int rate, int channels) {
  int err;
  if (channels != 2)
    return -22;
  err = snd_ensoniq_dac2_rate(ens, rate);
  if (err)
    return err;
  return 0;
}

static int snd_ensoniq_playback_prepare(struct ensoniq *ens) {
  ens->position = 0;
  ens->period_bytes = DAC2_FRAME;
  iowrite32(ens->io_base + 0x24, DAC2_FRAME);
  return 0;
}

static int snd_ensoniq_trigger(struct ensoniq *ens, int start) {
  DECAF_WVAR(ens->playing);
  if (start) {
    ens->ctrl = ens->ctrl | 0x20;
    ens->playing = 1;
  } else {
    ens->ctrl = ens->ctrl & ~0x20;
    ens->playing = 0;
  }
  iowrite32(ens->io_base + 0x0, ens->ctrl);
  return 0;
}

static int snd_ensoniq_pointer(struct ensoniq *ens) {
  return ens->position;
}

static void snd_ensoniq_codec_init(struct ensoniq *ens) {
  snd_es1371_codec_write(ens, 0x0, 0x0);
  snd_es1371_codec_write(ens, 0x2, 0x808);
  snd_es1371_codec_write(ens, 0x4, 0x808);
  snd_es1371_codec_write(ens, 0x18, 0x808);
  snd_es1371_codec_write(ens, 0x2a, 0x1);
}

static int snd_ensoniq_mixer(struct ensoniq *ens) {
  int idx;
  int err;
  for (idx = 0; idx < 24; idx++) {
    err = snd_ctl_add(ens, idx);
    if (err)
      return err;
  }
  return 0;
}


static void snd_es1371_uart_write(struct ensoniq *ens, int byte) {
  int i;
  for (i = 0; i < 100; i++) {
    if (ioread32(ens->io_base + 0x8) & 0x200)
      break;
    udelay(10);
  }
  iowrite32(ens->io_base + 0x8, byte);
}

static int snd_es1371_uart_read(struct ensoniq *ens) {
  if (!(ioread32(ens->io_base + 0x8) & 0x100))
    return -11;
  return ioread32(ens->io_base + 0xc) & 0xff;
}

static void snd_ensoniq_midi_output(struct ensoniq *ens, int byte) {
  snd_es1371_uart_write(ens, byte);
}

static int snd_ensoniq_midi_input(struct ensoniq *ens) {
  return snd_es1371_uart_read(ens);
}

static int snd_ensoniq_capture_open(struct ensoniq *ens) {
  if (ens->playing)
    return -16;
  return 0;
}

static int snd_ensoniq_capture_prepare(struct ensoniq *ens) {
  iowrite32(ens->io_base + 0x28, DAC2_FRAME);
  return 0;
}

static int snd_ensoniq_capture_trigger(struct ensoniq *ens, int start) {
  if (start)
    ens->ctrl = ens->ctrl | 0x10;
  else
    ens->ctrl = ens->ctrl & ~0x10;
  iowrite32(ens->io_base + 0x0, ens->ctrl);
  return 0;
}

static int snd_ensoniq_volume_get(struct ensoniq *ens, int reg) {
  return snd_es1371_codec_read(ens, reg);
}

static int snd_ensoniq_volume_put(struct ensoniq *ens, int reg, int value) {
  int old = snd_es1371_codec_read(ens, reg);
  if (old == value)
    return 0;
  snd_es1371_codec_write(ens, reg, value);
  return 1;
}

static void snd_ensoniq_gameport_trigger(struct ensoniq *ens) {
  iowrite32(ens->io_base + 0x18, 0xff);
}

static int snd_ensoniq_gameport_read(struct ensoniq *ens) {
  return ioread32(ens->io_base + 0x18) & 0xf;
}

static int snd_ensoniq_joystick_init(struct ensoniq *ens) {
  ens->sctrl = ens->sctrl | 0x4;
  iowrite32(ens->io_base + 0x0, ens->ctrl | 0x4);
  return 0;
}

static void snd_ensoniq_joystick_free(struct ensoniq *ens) {
  iowrite32(ens->io_base + 0x0, ens->ctrl & ~0x4);
}

static void snd_ensoniq_chip_init(struct ensoniq *ens) {
  ens->ctrl = 0;
  ens->sctrl = 0;
  iowrite32(ens->io_base + 0x0, 0);
  iowrite32(ens->io_base + 0x4, 0);
  snd_ensoniq_codec_init(ens);
}

static int snd_ensoniq_create(struct ensoniq *ens) {
  int err;
  err = pci_enable_device(ens);
  if (err)
    return err;
  snd_ensoniq_chip_init(ens);
  err = request_irq(9, 1);
  if (err)
    return err;
  return 0;
}

static int snd_audiopci_probe(struct ensoniq *ens) {
  int err;
  err = snd_card_new(ens);
  if (err)
    return err;
  err = snd_ensoniq_create(ens);
  if (err)
    goto err_card;
  err = snd_pcm_new(ens);
  if (err)
    goto err_card;
  err = snd_ensoniq_mixer(ens);
  if (err)
    goto err_card;
  err = snd_ensoniq_joystick_init(ens);
  if (err)
    goto err_card;
  err = snd_card_register(ens);
  if (err)
    goto err_card;
  return 0;
err_card:
  snd_card_free(ens);
  return err;
}

static void snd_audiopci_remove(struct ensoniq *ens) {
  snd_ensoniq_joystick_free(ens);
  iowrite32(ens->io_base + 0x0, 0);
  free_irq(9);
  snd_card_free(ens);
}

static int snd_ensoniq_suspend(struct ensoniq *ens) {
  iowrite32(ens->io_base + 0x0, 0);
  return 0;
}

static int snd_ensoniq_resume(struct ensoniq *ens) {
  snd_ensoniq_chip_init(ens);
  if (ens->dac2.rate)
    snd_es1371_src_write(ens, ens->dac2.rate);
  return 0;
}
|}

let config =
  {
    Decaf_slicer.Slicer.partition =
      {
        Decaf_slicer.Partition.driver_name = "ens1371";
        critical_roots = [ "snd_ensoniq_interrupt" ];
        interface_functions =
          [
            "snd_audiopci_probe";
            "snd_audiopci_remove";
            "snd_ensoniq_playback_open";
            "snd_ensoniq_playback_close";
            "snd_ensoniq_hw_params";
            "snd_ensoniq_playback_prepare";
            "snd_ensoniq_trigger";
            "snd_ensoniq_pointer";
            "snd_ensoniq_interrupt";
            "snd_ensoniq_suspend";
            "snd_ensoniq_resume";
          ];
      };
    const_env = [ ("CODEC_REGS", 128) ];
    java_functions = Decaf_slicer.Slicer.All_user;
  }

(* Line-anchored decaf-lint suppressions; see Lint.apply_waivers. *)
let lint_waivers : Decaf_slicer.Lint.waiver list =
  let open Decaf_slicer.Lint in
  List.map
    (fun (w_anchor, w_line) ->
      {
        w_pass = Annotation_soundness;
        w_anchor;
        w_line;
        w_reason =
          "pre-conversion corpus: the C bodies remain the slicer's input";
      })
    [ ("ens_rate", 6); ("ensoniq", 11) ]
  @ [
      {
        w_pass = Inbound_validation;
        w_anchor = "ensoniq";
        w_line = 11;
        w_reason =
          "pre-conversion corpus: io_base/position are rejected at the \
           boundary by the capability-handle and Guard layer in the decaf \
           build";
      };
    ]
