module K = Decaf_kernel
module Xpc = Decaf_xpc
module Supervisor = Decaf_runtime.Supervisor
module Errors = Decaf_runtime.Errors

type lifecycle =
  | Unbound
  | Probed
  | Running
  | Suspended
  | Recovering
  | Disabled
  | Removed

exception
  Illegal_transition of {
    driver : string;
    from_ : lifecycle;
    to_ : lifecycle;
  }

let lifecycle_name = function
  | Unbound -> "unbound"
  | Probed -> "probed"
  | Running -> "running"
  | Suspended -> "suspended"
  | Recovering -> "recovering"
  | Disabled -> "disabled"
  | Removed -> "removed"

let () =
  Printexc.register_printer (function
    | Illegal_transition { driver; from_; to_ } ->
        Some
          (Printf.sprintf "Driver_core.Illegal_transition(%s: %s -> %s)"
             driver (lifecycle_name from_) (lifecycle_name to_))
    | _ -> None)

module type DRIVER = sig
  type t

  val name : string
  val bus : Decaf_kernel.Hotplug.bus
  val ids : (int * int) list

  (* [dev = Some id] pins the probe to that bus device (a PCI slot);
     [None] claims any matching unbound device. One call per binding. *)
  val probe : Driver_env.t -> dev:string option -> (t, int) result
  val remove : t -> unit
  val suspend : t -> unit
  val resume : t -> unit
  val owns : t -> string -> bool
  val deferred_syncs : t -> int
  val init_latency_ns : t -> int
end

type packed = Pack : (module DRIVER with type t = 'a) -> packed
type bound = B : (module DRIVER with type t = 'a) * 'a -> bound

type meter = {
  mutable m_upcalls : int;
  mutable m_downcalls : int;
  mutable m_notifies : int;
  mutable m_wire_bytes : int;
}

type snapshot = {
  s_driver : string;  (** bare driver name, shared by every instance *)
  s_binding : string;  (** binding id: [s_driver] or ["name#k"] *)
  s_instance : int;
  s_state : lifecycle;
  s_mode : Driver_env.mode option;
  s_crossings : int;
  s_wire_bytes : int;
  s_notifies : int;
  s_deferred_syncs : int;
  s_rejections : int;
  s_dropped : int;
  s_ring_occupancy : int;
  s_ring_high_water : int;
  s_ring_doorbells : int;
  s_ring_drops : int;
  s_supervisor : Supervisor.stats option;
  s_restarts_left : int;
  s_init_latency_ns : int;
}

(* One binding = one (driver, instance) pair. Instance 0 keeps the bare
   driver name as its binding id, so every pre-fleet consumer — ring
   names, boundary scopes, `insmod "e1000"` — keeps meaning "the first
   instance" unchanged; instance k > 0 is "name#k". *)
type binding = {
  drv : packed;
  b_name : string;
  b_instance : int;
  b_id : string;
  b_bus : K.Hotplug.bus;
  b_ids : (int * int) list;
  mutable b_dev : string option;
      (** bus device this binding is pinned to, when bound via
          {!bind_device} with an explicit device *)
  meter : meter;
  mutable state : lifecycle;
  mutable inst : bound option;
  mutable sup : Supervisor.t option;
  mutable mode : Driver_env.mode option;
  mutable want : Driver_env.mode option;
      (** mode to auto-rebind with when the device is replugged *)
  mutable in_run : bool;
      (** inside {!run}: nested ops must not re-wrap supervision *)
}

let bindings : binding list ref = ref []

(* --- lifecycle state machine --- *)

(* The [Recovering] row is deliberately permissive: the supervisor can
   catch a fault in any phase of a supervised operation, and the
   unwinding (protect-cleanup) may already have moved the binding. The
   transitions a caller can request directly — probe, suspend, resume,
   remove — are the strictly checked ones. *)
let allowed from_ to_ =
  match (from_, to_) with
  | (Unbound | Removed | Recovering), Probed -> true
  | (Probed | Suspended | Recovering), Running -> true
  | (Running | Recovering), Suspended -> true
  | (Unbound | Probed | Running | Suspended | Recovering | Removed), Recovering
    ->
      true
  | (Unbound | Probed | Running | Suspended | Recovering | Removed), Disabled
    ->
      true
  | (Probed | Running | Suspended | Recovering | Disabled), Removed -> true
  | Probed, Unbound -> true
  | _ -> false

let transition b to_ =
  if not (allowed b.state to_) then
    raise (Illegal_transition { driver = b.b_id; from_ = b.state; to_ });
  (* A queue edge, not a Var: lifecycle legality is enforced right here
     by the FSM, so the exploration harness only needs the dependency
     (concurrent lifecycle ops on one binding do not commute), not a
     lockset obligation the registry's cooperative callers never had. *)
  K.Ktrace.note (K.Ktrace.Queue ("binding:" ^ b.b_id)) K.Ktrace.Signal;
  b.state <- to_

let set_disabled b = if b.state <> Disabled then transition b Disabled

(* --- metered driver environment --- *)

let metered ~driver meter (base : Driver_env.t) =
  (* Native-mode "calls" never leave the kernel; only count crossings
     that a split build actually pays for. The meter itself costs no
     virtual time, so benchmark trajectories are unaffected. Every
     crossing also runs under the binding's boundary scope, so
     validation rejections land in the per-driver counter surfaced by
     [snapshot]. *)
  let live = base.Driver_env.mode <> Driver_env.Native in
  let scoped f = Xpc.Boundary.scoped driver f in
  {
    Driver_env.mode = base.Driver_env.mode;
    scope = driver;
    upcall =
      (fun ~name ~bytes f ->
        if live then begin
          meter.m_upcalls <- meter.m_upcalls + 1;
          meter.m_wire_bytes <- meter.m_wire_bytes + bytes
        end;
        scoped (fun () -> base.Driver_env.upcall ~name ~bytes f));
    downcall =
      (fun ~name ~bytes f ->
        if live then begin
          meter.m_downcalls <- meter.m_downcalls + 1;
          meter.m_wire_bytes <- meter.m_wire_bytes + bytes
        end;
        scoped (fun () -> base.Driver_env.downcall ~name ~bytes f));
    notify =
      (fun ~name ~bytes f ->
        if live then begin
          meter.m_notifies <- meter.m_notifies + 1;
          meter.m_wire_bytes <- meter.m_wire_bytes + bytes
        end;
        scoped (fun () -> base.Driver_env.notify ~name ~bytes f));
  }

(* --- internal operations --- *)

let fresh_sup b =
  let s = Supervisor.create ~name:b.b_id () in
  b.sup <- Some s;
  s

let sup_of b = match b.sup with Some s -> s | None -> fresh_sup b

let on_restart b () =
  transition b Recovering;
  Decaf_runtime.Runtime.restart ()

(* Deliver batched notifications, then wait for crossings already
   executing in the user-level domains to return. Bounded: a crossing
   wedged past the deadline is the supervisor's problem, not ours. *)
let drain_in_flight () =
  Xpc.Batch.drain ();
  Xpc.Ring.drain_all ();
  let busy () =
    Xpc.Channel.in_flight Xpc.Domain.Decaf_driver
    + Xpc.Channel.in_flight Xpc.Domain.Driver_lib
    > 0
  in
  let deadline = K.Clock.now () + 1_000_000_000 in
  while busy () && K.Clock.now () < deadline do
    K.Sched.sleep_ns 100_000
  done

(* Transition first: bus events published during teardown (input device
   unregistering, HCD dropping out) must not re-enter removal. *)
let unbind b =
  transition b Removed;
  (match b.inst with Some (B ((module D), t)) -> D.remove t | None -> ());
  b.inst <- None

let bind b mode =
  match b.drv with
  | Pack (module D) -> (
      transition b Probed;
      b.mode <- Some mode;
      let m = b.meter in
      m.m_upcalls <- 0;
      m.m_downcalls <- 0;
      m.m_notifies <- 0;
      m.m_wire_bytes <- 0;
      let env = metered ~driver:b.b_id m (Driver_env.of_mode mode) in
      match D.probe env ~dev:b.b_dev with
      | Ok t ->
          b.inst <- Some (B ((module D), t));
          transition b Running;
          Ok ()
      | Error rc ->
          transition b Unbound;
          Error rc
      | exception e ->
          transition b Unbound;
          raise e)

(* --- hotplug routing --- *)

let eject_binding b =
  drain_in_flight ();
  (* [drain_in_flight] blocks: a concurrent rmmod (or a second removal
     event) may have torn this binding down while we slept, and
     unbinding again would drive the FSM Removed -> Removed. Re-check
     after every suspension point before acting on the stale check. *)
  match b.state with
  | Probed | Running | Suspended | Recovering | Disabled -> unbind b
  | Unbound | Removed -> ()

let handle_removed bus id =
  List.iter
    (fun b ->
      match (b.state, b.inst) with
      | (Probed | Running | Suspended), Some (B ((module D), t))
        when D.bus = bus && D.owns t id ->
          K.Klog.printk K.Klog.Info "driver_core: %s: device %s removed"
            b.b_name id;
          eject_binding b
      | _ -> ())
    !bindings

let handle_added bus ~id ~vendor ~device =
  List.iter
    (fun b ->
      if
        (b.state = Unbound || b.state = Removed)
        && b.want <> None && b.b_bus = bus
        && List.exists (fun (v, d) -> v = vendor && d = device) b.b_ids
        (* a binding pinned to a specific bus device only rebinds when
           that very device returns; unpinned bindings take any match *)
        && (match b.b_dev with None -> true | Some d -> d = id)
      then begin
        let mode = Option.get b.want in
        let warn rc =
          K.Klog.printk K.Klog.Warning
            "driver_core: %s: hotplug re-probe failed (errno %d)" b.b_name rc
        in
        if b.in_run then begin
          (* already under a supervised episode: probe directly so a
             fault is retried as part of the whole body *)
          match bind b mode with Ok () -> () | Error rc -> warn rc
        end
        else
          match
            Supervisor.run (sup_of b) ~on_restart:(on_restart b) (fun () ->
                bind b mode)
          with
          | Some (Ok ()) -> ()
          | Some (Error rc) -> warn rc
          | None -> set_disabled b
      end)
    !bindings

let hotplug_handler = function
  | K.Hotplug.Device_removed { bus; id } -> handle_removed bus id
  | K.Hotplug.Device_added { bus; id; vendor; device } ->
      handle_added bus ~id ~vendor ~device

(* --- registry bookkeeping, reset on every kernel boot --- *)

let registry_epoch = ref (-1)

let ensure_epoch () =
  let e = K.Boot.epoch () in
  if e <> !registry_epoch then begin
    registry_epoch := e;
    bindings := [];
    K.Hotplug.subscribe hotplug_handler
  end

let reset () =
  registry_epoch := -1;
  bindings := [];
  ensure_epoch ()

let register (Pack (module D) as p) =
  ensure_epoch ();
  let b =
    {
      drv = p;
      b_name = D.name;
      b_instance = 0;
      b_id = D.name;
      b_bus = D.bus;
      b_ids = D.ids;
      b_dev = None;
      meter = { m_upcalls = 0; m_downcalls = 0; m_notifies = 0; m_wire_bytes = 0 };
      state = Unbound;
      inst = None;
      sup = None;
      mode = None;
      want = None;
      in_run = false;
    }
  in
  (* re-registering a driver discards its whole instance family *)
  bindings := List.filter (fun o -> o.b_name <> D.name) !bindings @ [ b ]

let registered () =
  ensure_epoch ();
  List.filter_map
    (fun b -> if b.b_instance = 0 then Some b.b_name else None)
    !bindings

let is_registered name =
  ensure_epoch ();
  List.exists (fun b -> b.b_name = name) !bindings

(* Binding ids resolve exactly: the bare driver name IS instance 0's id,
   so every pre-fleet call site addressing "e1000" still lands on the
   first instance, and "e1000#3" addresses the fourth. *)
let find name =
  ensure_epoch ();
  match List.find_opt (fun b -> b.b_id = name) !bindings with
  | Some b -> b
  | None -> invalid_arg ("driver_core: unknown driver " ^ name)

let family name = List.filter (fun b -> b.b_name = name) !bindings

let instances_of name =
  let b = find name in
  List.map (fun b -> b.b_id) (family b.b_name)

let state name = (find name).state
let supervisor name = (find name).sup

(* --- public lifecycle operations --- *)

let insmod_binding b ~mode =
  (match b.state with
  | Unbound | Removed -> ()
  | s -> raise (Illegal_transition { driver = b.b_id; from_ = s; to_ = Probed }));
  b.want <- Some mode;
  if b.in_run then bind b mode
  else
    let sup = fresh_sup b in
    match Supervisor.run sup ~on_restart:(on_restart b) (fun () -> bind b mode) with
    | Some (Ok ()) -> Ok ()
    | Some (Error rc) -> Error rc
    | None ->
        set_disabled b;
        Error (-Errors.eio)

let insmod name ~mode = insmod_binding (find name) ~mode

(* N-way binding: reuse a free (Unbound/Removed) member of the driver's
   instance family or mint the next instance, pin it to [dev] when
   given, and run the ordinary supervised insmod on that binding. The
   returned binding id is the handle for every other registry call. *)
let bind_device name ?dev ~mode () =
  let proto = find name in
  let fam = family proto.b_name in
  let b =
    match
      List.find_opt (fun b -> b.state = Unbound || b.state = Removed) fam
    with
    | Some b -> b
    | None ->
        let inst =
          1 + List.fold_left (fun acc b -> max acc b.b_instance) 0 fam
        in
        let b =
          {
            proto with
            b_instance = inst;
            b_id = Printf.sprintf "%s#%d" proto.b_name inst;
            b_dev = None;
            meter =
              { m_upcalls = 0; m_downcalls = 0; m_notifies = 0;
                m_wire_bytes = 0 };
            state = Unbound;
            inst = None;
            sup = None;
            mode = None;
            want = None;
            in_run = false;
          }
        in
        bindings := !bindings @ [ b ];
        b
  in
  b.b_dev <- dev;
  match insmod_binding b ~mode with
  | Ok () -> Ok b.b_id
  | Error rc -> Error rc

let rmmod name =
  let b = find name in
  (match b.state with
  | Running | Suspended | Disabled -> ()
  | s -> raise (Illegal_transition { driver = name; from_ = s; to_ = Removed }));
  (* deliver outstanding deferred notifications and ring slots before
     teardown so no deferred call outlives its driver *)
  if not !K.Mutants.drop_unbind_drain then begin
    Xpc.Batch.drain ();
    Xpc.Ring.drain_all ()
  end;
  (* the drains block on flush workers: re-check that a concurrent
     ejection did not already unbind while we waited *)
  (match b.state with
  | Running | Suspended | Disabled -> unbind b
  | _ -> ());
  b.want <- None

let eject name =
  let b = find name in
  match b.state with Running | Suspended -> eject_binding b | _ -> ()

let suspend name =
  let b = find name in
  if b.state <> Running then
    raise (Illegal_transition { driver = name; from_ = b.state; to_ = Suspended });
  match b.inst with
  | None -> Error (-Errors.enodev)
  | Some (B ((module D), t)) -> (
      let op () =
        D.suspend t;
        (* flush batched notifies — and with them any pending dirty
           deltas — and drain the shared ring while the device is still
           powered, so no slot survives into the suspended state *)
        Xpc.Batch.drain ();
        Xpc.Ring.drain_all ()
      in
      if b.in_run then begin
        op ();
        transition b Suspended;
        Ok ()
      end
      else
        match Supervisor.run (sup_of b) ~on_restart:(on_restart b) op with
        | Some () ->
            transition b Suspended;
            Ok ()
        | None ->
            set_disabled b;
            Error (-Errors.eio))

let resume name =
  let b = find name in
  if b.state <> Suspended then
    raise (Illegal_transition { driver = name; from_ = b.state; to_ = Running });
  match b.inst with
  | None -> Error (-Errors.enodev)
  | Some (B ((module D), t)) -> (
      let op () = D.resume t in
      if b.in_run then begin
        op ();
        transition b Running;
        Ok ()
      end
      else
        match Supervisor.run (sup_of b) ~on_restart:(on_restart b) op with
        | Some () ->
            transition b Running;
            Ok ()
        | None ->
            set_disabled b;
            Error (-Errors.eio))

(* --- whole-episode supervision (the fault campaign's shape) --- *)

let run name ~mode body =
  let b = find name in
  (match b.state with
  | Unbound | Removed -> ()
  | s -> raise (Illegal_transition { driver = name; from_ = s; to_ = Probed }));
  let sup = fresh_sup b in
  b.want <- Some mode;
  b.in_run <- true;
  let attempt () =
    (match bind b mode with
    | Ok () -> ()
    | Error rc -> Errors.throw ~driver:name ~errno:(-rc) "probe");
    Errors.protect
      ~cleanup:(fun () ->
        (* fault unwinding: tear the driver down so the supervisor's
           retry starts from a clean bus and module table *)
        match b.state with Running | Suspended -> unbind b | _ -> ())
      (fun () ->
        let v = body () in
        (match b.state with
        | Running | Suspended ->
            Xpc.Batch.drain ();
            Xpc.Ring.drain_all ();
            unbind b
        | _ -> ());
        v)
  in
  Fun.protect
    ~finally:(fun () ->
      b.in_run <- false;
      b.want <- None)
    (fun () ->
      match Supervisor.run sup ~on_restart:(on_restart b) attempt with
      | Some v -> Some v
      | None ->
          set_disabled b;
          None)

(* --- observability --- *)

let snapshot_of b =
  let deferred, init_ns =
    match b.inst with
    | Some (B ((module D), t)) -> (D.deferred_syncs t, D.init_latency_ns t)
    | None -> (0, 0)
  in
  (* Ring counters for this binding, if it owns a shared ring (rings are
     registered under the binding's name). Zeros otherwise. *)
  let r_occ, r_hw, r_bell, r_drop =
    match Xpc.Ring.find ~name:b.b_id with
    | Some r ->
        let s = Xpc.Ring.stats_of r in
        ( Xpc.Ring.occupancy r,
          s.Xpc.Ring.high_water,
          s.Xpc.Ring.doorbells,
          s.Xpc.Ring.overflow + s.Xpc.Ring.discarded )
    | None -> (0, 0, 0, 0)
  in
  {
    s_driver = b.b_name;
    s_binding = b.b_id;
    s_instance = b.b_instance;
    s_state = b.state;
    s_mode = b.mode;
    s_crossings = b.meter.m_upcalls + b.meter.m_downcalls;
    s_wire_bytes = b.meter.m_wire_bytes;
    s_notifies = b.meter.m_notifies;
    s_deferred_syncs = deferred;
    s_rejections = Xpc.Boundary.rejected_for b.b_id;
    s_dropped = Xpc.Boundary.dropped_for b.b_id;
    s_ring_occupancy = r_occ;
    s_ring_high_water = r_hw;
    s_ring_doorbells = r_bell;
    s_ring_drops = r_drop;
    s_supervisor = Option.map Supervisor.stats b.sup;
    s_restarts_left =
      (match b.sup with Some s -> Supervisor.restarts_left s | None -> 0);
    s_init_latency_ns = init_ns;
  }

let snapshot name = snapshot_of (find name)

let snapshots () =
  ensure_epoch ();
  (* stable (driver, instance) order: a 256-instance fleet renders as a
     contiguous, deterministically ordered block per driver *)
  let ordered =
    List.stable_sort
      (fun a b ->
        match compare a.b_name b.b_name with
        | 0 -> compare a.b_instance b.b_instance
        | c -> c)
      !bindings
  in
  List.map snapshot_of ordered

let render_status snaps =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%-11s %-10s %-7s %9s %10s %8s %7s %4s %4s %9s %5s %5s %4s %4s %4s %7s\n"
    "Driver" "State" "Mode" "Crossings" "WireBytes" "Notifies" "Synced" "Rej"
    "Drop" "Ring(o/hw)" "Bells" "RDrop" "Det" "Rec" "Deg" "Budget";
  List.iter
    (fun s ->
      let stat f =
        match s.s_supervisor with Some st -> f st | None -> 0
      in
      add
        "%-11s %-10s %-7s %9d %10d %8d %7d %4d %4d %9s %5d %5d %4d %4d %4d %7d\n"
        s.s_binding
        (lifecycle_name s.s_state)
        (match s.s_mode with
        | Some m -> Driver_env.mode_name m
        | None -> "-")
        s.s_crossings s.s_wire_bytes s.s_notifies s.s_deferred_syncs
        s.s_rejections s.s_dropped
        (Printf.sprintf "%d/%d" s.s_ring_occupancy s.s_ring_high_water)
        s.s_ring_doorbells s.s_ring_drops
        (stat (fun st -> st.Supervisor.detected))
        (stat (fun st -> st.Supervisor.recovered))
        (stat (fun st -> st.Supervisor.degraded))
        s.s_restarts_left)
    snaps;
  (* aggregate row: at fleet scale the per-instance block is a wall of
     detail; the totals line is what a human reads first *)
  if List.length snaps > 1 then begin
    let sum f = List.fold_left (fun acc s -> acc + f s) 0 snaps in
    add
      "%-11s %-10s %-7s %9d %10d %8d %7d %4d %4d %9s %5d %5d %4d %4d %4d %7s\n"
      "TOTAL"
      (Printf.sprintf "%d bound"
         (List.length
            (List.filter
               (fun s ->
                 match s.s_state with
                 | Running | Suspended | Probed -> true
                 | _ -> false)
               snaps)))
      "-"
      (sum (fun s -> s.s_crossings))
      (sum (fun s -> s.s_wire_bytes))
      (sum (fun s -> s.s_notifies))
      (sum (fun s -> s.s_deferred_syncs))
      (sum (fun s -> s.s_rejections))
      (sum (fun s -> s.s_dropped))
      (Printf.sprintf "%d/%d"
         (sum (fun s -> s.s_ring_occupancy))
         (sum (fun s -> s.s_ring_high_water)))
      (sum (fun s -> s.s_ring_doorbells))
      (sum (fun s -> s.s_ring_drops))
      (sum (fun s -> match s.s_supervisor with
         | Some st -> st.Supervisor.detected | None -> 0))
      (sum (fun s -> match s.s_supervisor with
         | Some st -> st.Supervisor.recovered | None -> 0))
      (sum (fun s -> match s.s_supervisor with
         | Some st -> st.Supervisor.degraded | None -> 0))
      "-"
  end;
  Buffer.contents buf
