lib/workloads/netperf.ml: Bytes Decaf_hw Decaf_kernel Format
