lib/xpc/objtracker.ml: Decaf_kernel Hashtbl List Option Univ Weak
