lib/xpc/batch.mli: Domain
