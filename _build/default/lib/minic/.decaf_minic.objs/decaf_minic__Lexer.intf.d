lib/minic/lexer.mli: Loc Token
