lib/kernel/clock.ml: Klog Map Panic
