(** Call graph over a parsed driver, the input to DriverSlicer's
    partitioning.

    Indirect calls (through function pointers) are handled
    conservatively: an indirect call site may invoke any function whose
    address is taken anywhere in the file. This is what makes data-path
    functions that dispatch through pointers drag most of a driver into
    the kernel partition — the effect the paper reports for uhci-hcd. *)

type t

val build : Ast.file -> t

val callees : t -> string -> string list
(** Defined functions directly or indirectly callable from the named
    function's body (one hop). *)

val external_callees : t -> string -> string list
(** Called names with no definition in the file (kernel imports). *)

val callers : t -> string -> string list
val address_taken : t -> string list

val indirect_sites : t -> string list
(** Functions whose body contains at least one call through a function
    pointer (ops-table dispatch). Analyses that rely on call edges
    should treat these conservatively: any address-taken function may be
    the target. *)

val has_indirect_call : t -> string -> bool

val reachable : t -> roots:string list -> string list
(** Defined functions transitively reachable from the roots (roots
    included when defined), sorted. *)

val defined : t -> string list
