module Ast = Decaf_minic.Ast
module Symtab = Decaf_minic.Symtab

type xdr_type =
  | Xint
  | Xuint
  | Xhyper
  | Xbool
  | Xopaque of int
  | Xstring
  | Xarray of xdr_type * int
  | Xoptional of xdr_type
  | Xstruct_ref of string

type xdr_field = { xf_name : string; xf_type : xdr_type }

type xdr_struct = {
  xs_name : string;
  xs_fields : xdr_field list;
  xs_synthetic : bool;
}

type spec = {
  xs_structs : xdr_struct list;
  xs_typedefs : (string * string) list;
}

let base_name = function
  | Ast.Tnamed n -> n
  | Ast.Tint { kind = Ast.Iint; unsigned = true } -> "uint"
  | Ast.Tint { kind = Ast.Iint; _ } -> "int"
  | Ast.Tint { kind = Ast.Ichar; _ } -> "char"
  | Ast.Tint { kind = Ast.Ishort; unsigned = true } -> "ushort"
  | Ast.Tint { kind = Ast.Ishort; _ } -> "short"
  | Ast.Tint { kind = Ast.Ilong; _ } -> "long"
  | Ast.Tint { kind = Ast.Ilonglong; _ } -> "hyper"
  | Ast.Tstruct n -> n
  | Ast.Tvoid -> "void"
  | Ast.Tptr _ | Ast.Tarray _ -> "ptr"

let scalar_of_int ~unsigned = function
  | Ast.Ichar -> Xopaque 1
  | Ast.Ishort | Ast.Iint | Ast.Ilong ->
      if unsigned then Xuint else Xint
  | Ast.Ilonglong -> Xhyper

(* Map a resolved C type (no typedefs) to an XDR scalar/ref; pointers are
   handled by the caller. *)
let rec of_ctype tab (t : Ast.typ) : xdr_type =
  match Symtab.resolve tab t with
  | Ast.Tvoid -> Xuint
  | Ast.Tint { kind; unsigned } -> scalar_of_int ~unsigned kind
  | Ast.Tnamed n ->
      (* unknown typedef: assume a 32-bit handle *)
      if n = "bool" then Xbool else Xuint
  | Ast.Tstruct n -> Xstruct_ref n
  | Ast.Tarray (Ast.Tint { kind = Ast.Ichar; _ }, Some n) -> Xopaque n
  | Ast.Tarray (inner, Some n) -> Xarray (of_ctype tab inner, n)
  | Ast.Tarray (inner, None) -> Xarray (of_ctype tab inner, 0)
  | Ast.Tptr inner -> Xoptional (of_ctype tab inner)

let lookup_const env name =
  match int_of_string_opt name with
  | Some n -> n
  | None -> (
      match List.assoc_opt name env with
      | Some n -> n
      | None -> 16 (* unknown length constant: conservative default *))

let exp_annotation (f : Ast.field) =
  List.find_map
    (fun (a : Ast.attr) ->
      if a.Ast.attr_name = "exp" then a.Ast.attr_arg else None)
    f.Ast.fattrs

let generate (file : Ast.file) ~const_env =
  let tab = Symtab.build file in
  let synthetic : (string, xdr_struct) Hashtbl.t = Hashtbl.create 8 in
  let typedefs = ref [] in
  let convert_field (f : Ast.field) =
    match (exp_annotation f, Symtab.resolve tab f.Ast.ftyp) with
    | Some len_name, Ast.Tptr elem ->
        (* Figure 3: pointer-to-array becomes pointer-to-wrapper-struct. *)
        let n = lookup_const const_env len_name in
        let elem_name = base_name elem in
        let wrapper = Printf.sprintf "array%d_%s" n elem_name in
        let ptr_name = Printf.sprintf "array%d_%s_ptr" n elem_name in
        if not (Hashtbl.mem synthetic wrapper) then begin
          Hashtbl.replace synthetic wrapper
            {
              xs_name = wrapper;
              xs_fields =
                [ { xf_name = "array"; xf_type = Xarray (of_ctype tab elem, n) } ];
              xs_synthetic = true;
            };
          typedefs := (ptr_name, wrapper) :: !typedefs
        end;
        { xf_name = f.Ast.fname; xf_type = Xoptional (Xstruct_ref wrapper) }
    | _, resolved -> { xf_name = f.Ast.fname; xf_type = of_ctype tab resolved }
  in
  let structs =
    List.map
      (fun (s : Ast.struct_def) ->
        {
          xs_name = s.Ast.sname;
          xs_fields = List.map convert_field s.Ast.sfields;
          xs_synthetic = false;
        })
      (Ast.structs file)
  in
  let synth = Hashtbl.fold (fun _ s acc -> s :: acc) synthetic [] in
  {
    xs_structs = List.sort (fun a b -> compare a.xs_name b.xs_name) synth @ structs;
    xs_typedefs = List.rev !typedefs;
  }

let find_struct spec name =
  List.find_opt (fun s -> s.xs_name = name) spec.xs_structs

let rec type_to_decl name = function
  | Xint -> Printf.sprintf "int %s" name
  | Xuint -> Printf.sprintf "unsigned int %s" name
  | Xhyper -> Printf.sprintf "hyper %s" name
  | Xbool -> Printf.sprintf "bool %s" name
  | Xopaque n -> Printf.sprintf "opaque %s[%d]" name n
  | Xstring -> Printf.sprintf "string %s<>" name
  | Xarray (t, n) -> type_to_decl (Printf.sprintf "%s[%d]" name n) t
  | Xoptional t -> type_to_decl ("*" ^ name) t
  | Xstruct_ref s -> Printf.sprintf "struct %s %s" s name

let to_string spec =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "struct %s {\n" s.xs_name);
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "    %s;\n" (type_to_decl f.xf_name f.xf_type)))
        s.xs_fields;
      Buffer.add_string buf "};\n\n")
    spec.xs_structs;
  List.iter
    (fun (ptr, wrapper) ->
      Buffer.add_string buf
        (Printf.sprintf "typedef struct %s *%s;\n" wrapper ptr))
    spec.xs_typedefs;
  Buffer.contents buf

let pad4 n = (n + 3) land lnot 3

let rec size_of_type spec ~seen = function
  | Xint | Xuint | Xbool -> 4
  | Xhyper -> 8
  | Xopaque n -> pad4 n
  | Xstring -> 4 + 64 (* estimate: length word plus nominal payload *)
  | Xarray (t, n) -> n * size_of_type spec ~seen t
  | Xoptional t -> 4 + size_of_type spec ~seen t
  | Xstruct_ref name ->
      if List.mem name seen then 4 (* recursive reference marshaled once *)
      else (
        match find_struct spec name with
        | Some s ->
            List.fold_left
              (fun acc f -> acc + size_of_type spec ~seen:(name :: seen) f.xf_type)
              0 s.xs_fields
        | None -> 4)

let type_wire_size spec t = size_of_type spec ~seen:[] t
let wire_size spec name = type_wire_size spec (Xstruct_ref name)
