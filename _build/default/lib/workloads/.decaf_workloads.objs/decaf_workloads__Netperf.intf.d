lib/workloads/netperf.mli: Decaf_hw Decaf_kernel Format
