(** The module loader; [insmod] latency is the initialization metric of
    the paper's Table 3. *)

type handle

val insmod :
  name:string -> init:(unit -> (unit, int) result) -> exit:(unit -> unit) ->
  (handle, int) result
(** Load a module: run [init] in the calling (process-context) thread,
    recording the virtual time it takes. Must be called from a scheduler
    thread. *)

val rmmod : handle -> unit
val init_latency_ns : handle -> int
val is_loaded : string -> bool
val loaded : unit -> string list
val reset : unit -> unit
