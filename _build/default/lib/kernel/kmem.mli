(** Kernel memory accounting with allocation-failure injection.

    Models the kernel's allocation discipline: [GFP_KERNEL] allocations
    may sleep and are therefore illegal in interrupt context or under a
    spinlock; [GFP_ATOMIC] allocations never sleep. Outstanding
    allocations are tracked so tests can detect leaks on error paths — the
    common driver problem the paper's finalizer proposal targets (§5.1). *)

type gfp = Atomic | Kernel

type allocation

exception Use_after_free of string

val alloc : ?gfp:gfp -> tag:string -> int -> allocation option
(** [alloc ~tag bytes] returns [None] when failure injection triggers
    (drivers must handle this, as with a NULL return). Default [gfp] is
    [Kernel]. *)

val alloc_exn : ?gfp:gfp -> tag:string -> int -> allocation
(** Like {!alloc} but raises [Out_of_memory] on injected failure. *)

exception Out_of_memory of string

val free : allocation -> unit
(** Release; double free raises {!Use_after_free}. *)

val size : allocation -> int

val inject_failure : after:int -> unit
(** Make the [after]-th subsequent allocation (1-based) fail, once. *)

val clear_injection : unit -> unit

val outstanding : unit -> int * int
(** (number, total bytes) of live allocations. *)

val leaks : unit -> (string * int) list
(** Tags and sizes of live allocations, oldest first. *)

val reset : unit -> unit
