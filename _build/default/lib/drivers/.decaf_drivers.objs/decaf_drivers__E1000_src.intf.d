lib/drivers/e1000_src.mli: Decaf_slicer
