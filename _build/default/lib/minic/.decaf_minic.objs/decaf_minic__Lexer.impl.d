lib/minic/lexer.ml: Buffer List Loc Printf String Token
