lib/drivers/psmouse_src.ml: Decaf_slicer
