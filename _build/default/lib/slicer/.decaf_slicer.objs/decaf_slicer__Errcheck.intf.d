lib/slicer/errcheck.mli: Decaf_minic
