(** Shared-object layer of the 8139too decaf driver: the rtl8139
    counterpart of {!E1000_objects}, with the same plan-driven XDR
    marshaling and per-side {!Decaf_xpc.Marshal_plan.Dirty} trackers for
    delta marshaling.

    The kernel keeps the authoritative [msg_enable], multicast filter,
    drop counter and stats generation; user-level code reads them
    through a marshaled {!java_nic} view refreshed on control crossings
    and by deferred notifications ({!Decaf_xpc.Batch}). Only
    [msg_enable] is written back. *)

type kernel_nic = {
  k_addr : int;  (** simulated C address *)
  mutable k_msg_enable : int;
  k_mc_filter : int array;  (** 2 words of multicast hash filter *)
  mutable k_rx_dropped : int;
  mutable k_stats_gen : int;
  k_dirty : Decaf_xpc.Marshal_plan.Dirty.t;
}

type java_nic = {
  mutable j_c_addr : int;  (** capability handle this object mirrors *)
  mutable j_msg_enable : int;
  j_mc_filter : int array;
  mutable j_rx_dropped : int;
  mutable j_stats_gen : int;
  j_dirty : Decaf_xpc.Marshal_plan.Dirty.t;
}

val mc_filter_words : int
val plan : Decaf_xpc.Marshal_plan.t
val nic_key : java_nic Decaf_xpc.Univ.key

val guard : Decaf_xpc.Guard.t
(** Inbound validator derived from {!plan}; see {!E1000_objects.guard}. *)

val guard_rejections : unit -> int

val nic_handle : kernel_nic -> Decaf_xpc.Objtracker.handle
(** The capability handle the wire carries instead of [k_addr]; see
    {!E1000_objects.adapter_handle}. *)

val fresh_kernel_nic : unit -> kernel_nic

val release_kernel_nic : kernel_nic -> unit
(** Revoke the instance's capability handle in both trackers at driver
    unload. *)

(** {2 Dirty-marking writers} *)

val set_k_msg_enable : kernel_nic -> int -> unit
val set_k_mc_filter : kernel_nic -> int -> int -> unit
val bump_k_rx_dropped : kernel_nic -> unit
val bump_k_stats : kernel_nic -> unit

val user_view_mark : kernel_nic -> int
(** Snapshot/acknowledge protocol as in {!E1000_objects.user_view_mark}. *)

val ack_user_view : kernel_nic -> upto:int -> unit
val set_j_msg_enable : java_nic -> int -> unit

val user_has_view : kernel_nic -> bool
(** Whether the user-level tracker holds a view of this nic; see
    {!E1000_objects.user_has_view}. *)

val wire_size : int
(** Bytes of a full plan-selected marshal; independent of delta mode. *)

val marshal_to_user : kernel_nic -> bytes
val unmarshal_at_user : bytes -> java_nic
val marshal_to_kernel : java_nic -> bytes
val unmarshal_at_kernel : bytes -> kernel_nic -> unit

val resync_user_view : kernel_nic -> unit
(** Mark every copy-in field dirty: the post-resume full-image resync,
    as in {!E1000_objects.resync_user_view}. *)

(** {2 Ring fast path}

    Stats rollups, rx-overflow drops and multicast-filter refreshes as
    fixed-layout {!Decaf_xpc.Ring} slot records; see
    {!E1000_objects.ring_plan} for the trust rationale. *)

val ring_ev_stats : int
val ring_ev_rx_dropped : int
val ring_ev_mc_filter : int
val ring_plan : Decaf_xpc.Marshal_plan.t
val ring_guard : Decaf_xpc.Guard.t
val ring_resolve : int -> (int, string) result
val ring_stats_record : kernel_nic -> Decaf_xpc.Ring.record
val ring_rx_dropped_record : kernel_nic -> Decaf_xpc.Ring.record
val ring_mc_filter_record : kernel_nic -> int -> int -> Decaf_xpc.Ring.record
val ring_undeliverable : kernel_nic -> Decaf_xpc.Ring.record -> unit
val apply_ring_record : Decaf_xpc.Ring.record -> unit
