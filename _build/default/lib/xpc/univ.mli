(** A universal type, used by the object tracker to store objects of any
    shared-structure type under one table. *)

type t
type 'a key

val new_key : string -> 'a key
(** Create a distinct key; the name doubles as the tracker's type
    identifier (the paper disambiguates C pointers shared by inner and
    outer structures with exactly such an identifier, §3.1.2). *)

val key_name : 'a key -> string
val pack : 'a key -> 'a -> t
val unpack : 'a key -> t -> 'a option
val name : t -> string
