lib/slicer/partition.ml: Decaf_minic List Printf Set String
