(* Tests for the XPC runtime: XDR wire format, object tracker, marshal
   plans, and costed control transfer. *)

open Decaf_xpc
module K = Decaf_kernel

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot () =
  K.Boot.boot ();
  Domain.reset ();
  Channel.reset_stats ();
  Addr.reset ()

(* --- XDR --- *)

let test_xdr_scalars () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.int e (-42);
  Xdr.Enc.uint e 0xdead_beef;
  Xdr.Enc.hyper e (-1234567890123L);
  Xdr.Enc.bool e true;
  Xdr.Enc.double e 3.25;
  let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
  check "int" (-42) (Xdr.Dec.int d);
  check "uint" 0xdead_beef (Xdr.Dec.uint d);
  Alcotest.(check int64) "hyper" (-1234567890123L) (Xdr.Dec.hyper d);
  check_bool "bool" true (Xdr.Dec.bool d);
  Alcotest.(check (float 0.0)) "double" 3.25 (Xdr.Dec.double d);
  Xdr.Dec.check_drained d

let test_xdr_padding () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.string e "abcde";
  (* 4 length + 5 payload + 3 pad *)
  check "padded size" 12 (Xdr.Enc.size e);
  let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
  Alcotest.(check string) "roundtrip" "abcde" (Xdr.Dec.string d);
  Xdr.Dec.check_drained d

let test_xdr_arrays_options () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.array_var e Xdr.Enc.int [| 1; 2; 3 |];
  Xdr.Enc.array_fixed e Xdr.Enc.int [| 7; 8 |];
  Xdr.Enc.option e Xdr.Enc.int (Some 9);
  Xdr.Enc.option e Xdr.Enc.int None;
  let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
  Alcotest.(check (array int)) "var array" [| 1; 2; 3 |]
    (Xdr.Dec.array_var d Xdr.Dec.int);
  Alcotest.(check (array int)) "fixed array" [| 7; 8 |]
    (Xdr.Dec.array_fixed d Xdr.Dec.int 2);
  Alcotest.(check (option int)) "some" (Some 9) (Xdr.Dec.option d Xdr.Dec.int);
  Alcotest.(check (option int)) "none" None (Xdr.Dec.option d Xdr.Dec.int)

let test_xdr_truncation_detected () =
  let e = Xdr.Enc.create () in
  Xdr.Enc.int e 1;
  let b = Xdr.Enc.to_bytes e in
  let d = Xdr.Dec.of_bytes (Bytes.sub b 0 2) in
  check_bool "decode error" true
    (try
       ignore (Xdr.Dec.int d);
       false
     with Xdr.Decode_error _ -> true)

let test_xdr_range_checks () =
  let e = Xdr.Enc.create () in
  check_bool "uint rejects negative" true
    (try
       Xdr.Enc.uint e (-1);
       false
     with Invalid_argument _ -> true);
  check_bool "int rejects > 2^31-1" true
    (try
       Xdr.Enc.int e 0x8000_0000;
       false
     with Invalid_argument _ -> true)

let prop_xdr_int_roundtrip =
  QCheck.Test.make ~name:"xdr int roundtrip" ~count:500
    QCheck.(int_range (-0x4000_0000) 0x3fff_ffff)
    (fun v ->
      let e = Xdr.Enc.create () in
      Xdr.Enc.int e v;
      Xdr.Dec.int (Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e)) = v)

let prop_xdr_hyper_roundtrip =
  QCheck.Test.make ~name:"xdr hyper roundtrip" ~count:500 QCheck.int64
    (fun v ->
      let e = Xdr.Enc.create () in
      Xdr.Enc.hyper e v;
      Xdr.Dec.hyper (Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e)) = v)

let prop_xdr_string_roundtrip_and_alignment =
  QCheck.Test.make ~name:"xdr string roundtrip, 4-byte aligned" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun s ->
      let e = Xdr.Enc.create () in
      Xdr.Enc.string e s;
      Xdr.Enc.size e mod 4 = 0
      && Xdr.Dec.string (Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e)) = s)

let prop_xdr_mixed_sequence =
  QCheck.Test.make ~name:"xdr heterogeneous sequence roundtrip" ~count:200
    QCheck.(small_list (pair (int_range 0 1000) (string_of_size Gen.(int_range 0 16))))
    (fun items ->
      let e = Xdr.Enc.create () in
      List.iter
        (fun (n, s) ->
          Xdr.Enc.int e n;
          Xdr.Enc.string e s)
        items;
      let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
      let decode_item _ =
        let n = Xdr.Dec.int d in
        let s = Xdr.Dec.string d in
        (n, s)
      in
      let back = List.map decode_item items in
      Xdr.Dec.check_drained d;
      back = items)

(* --- Object tracker --- *)

type fake_ring = { mutable count : int }
type fake_adapter = { mutable flags : int }

let ring_key : fake_ring Univ.key = Univ.new_key "e1000_tx_ring"
let adapter_key : fake_adapter Univ.key = Univ.new_key "e1000_adapter"

let test_tracker_roundtrip () =
  boot ();
  let tr = Objtracker.create () in
  let obj = { count = 3 } in
  let addr = Addr.alloc ~size:64 in
  Objtracker.associate tr ~addr (Univ.pack ring_key obj);
  (match Objtracker.find tr ~addr ring_key with
  | Some o ->
      check_bool "same object" true (o == obj);
      o.count <- 7
  | None -> Alcotest.fail "lookup failed");
  check "mutation visible" 7 obj.count;
  check "count" 1 (Objtracker.count tr)

let test_tracker_type_disambiguation () =
  (* An adapter whose first member is a ring: same address, two types. *)
  boot ();
  let tr = Objtracker.create () in
  let adapter = { flags = 1 } in
  let ring = { count = 0 } in
  let base = Addr.alloc ~size:256 in
  let inner = Addr.embedded ~parent:base ~offset:0 in
  Objtracker.associate tr ~addr:base (Univ.pack adapter_key adapter);
  Objtracker.associate tr ~addr:inner (Univ.pack ring_key ring);
  check "same numeric address" base inner;
  check_bool "adapter found" true (Objtracker.find tr ~addr:base adapter_key <> None);
  check_bool "ring found at same addr" true (Objtracker.find tr ~addr:base ring_key <> None);
  Alcotest.(check (list string))
    "types at address" [ "e1000_adapter"; "e1000_tx_ring" ]
    (Objtracker.types_at tr ~addr:base)

let test_tracker_remove () =
  boot ();
  let tr = Objtracker.create () in
  let addr = Addr.alloc ~size:16 in
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 0 });
  Objtracker.associate tr ~addr (Univ.pack adapter_key { flags = 0 });
  Objtracker.remove tr ~addr ~type_id:"e1000_tx_ring";
  check "one left" 1 (Objtracker.count tr);
  Objtracker.remove_all tr ~addr;
  check "empty" 0 (Objtracker.count tr)

let test_tracker_stats () =
  boot ();
  let tr = Objtracker.create () in
  let addr = Addr.alloc ~size:16 in
  ignore (Objtracker.find tr ~addr ring_key);
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 0 });
  ignore (Objtracker.find tr ~addr ring_key);
  let st = Objtracker.stats tr in
  check "lookups" 2 st.Objtracker.lookups;
  check "hits" 1 st.Objtracker.hits;
  check "registrations" 1 st.Objtracker.registrations

(* --- Marshal plans --- *)

let test_plan_directions () =
  let plan =
    Marshal_plan.make ~type_id:"s"
      [ ("a", Marshal_plan.Read); ("b", Marshal_plan.Write); ("c", Marshal_plan.Read_write) ]
  in
  check_bool "R copies in" true (Marshal_plan.copies_in plan "a");
  check_bool "R not out" false (Marshal_plan.copies_out plan "a");
  check_bool "W not in" false (Marshal_plan.copies_in plan "b");
  check_bool "W copies out" true (Marshal_plan.copies_out plan "b");
  check_bool "RW both" true
    (Marshal_plan.copies_in plan "c" && Marshal_plan.copies_out plan "c");
  check_bool "unknown field never copied" false
    (Marshal_plan.copies_in plan "zzz" || Marshal_plan.copies_out plan "zzz")

let test_plan_union () =
  let p1 = Marshal_plan.make ~type_id:"s" [ ("a", Marshal_plan.Read) ] in
  let p2 =
    Marshal_plan.make ~type_id:"s"
      [ ("a", Marshal_plan.Write); ("b", Marshal_plan.Read) ]
  in
  let u = Marshal_plan.union p1 p2 in
  check_bool "a promoted to RW" true
    (Marshal_plan.copies_in u "a" && Marshal_plan.copies_out u "a");
  check_bool "b present" true (Marshal_plan.copies_in u "b");
  check_bool "different types rejected" true
    (try
       ignore (Marshal_plan.union p1 (Marshal_plan.make ~type_id:"t" []));
       false
     with Invalid_argument _ -> true)

let test_plan_union_order_and_pp () =
  (* field order is part of the wire format, so union's order is
     documented and must not drift: a's fields in a's order, then fields
     only b lists, in b's order *)
  let a =
    Marshal_plan.make ~type_id:"s"
      [ ("b", Marshal_plan.Read); ("a", Marshal_plan.Write) ]
  in
  let b =
    Marshal_plan.make ~type_id:"s"
      [ ("c", Marshal_plan.Read); ("a", Marshal_plan.Read) ]
  in
  let u = Marshal_plan.union a b in
  check_bool "a-first then only-b order" true
    (Marshal_plan.fields u
    = [
        ("b", Marshal_plan.Read);
        ("a", Marshal_plan.Read_write);
        ("c", Marshal_plan.Read);
      ]);
  Alcotest.(check string)
    "pp renders the documented order"
    "plan s:\n  b: R\n  a: RW\n  c: R\n"
    (Format.asprintf "%a" Marshal_plan.pp u);
  (* order invariance of content: swapping the arguments changes order
     but not the set of (field, access) pairs *)
  check_bool "swapped union same content" true
    (List.sort compare (Marshal_plan.fields (Marshal_plan.union b a))
    = List.sort compare (Marshal_plan.fields u))

let test_plan_duplicate_rejected () =
  check_bool "duplicate rejected" true
    (try
       ignore
         (Marshal_plan.make ~type_id:"s"
            [ ("a", Marshal_plan.Read); ("a", Marshal_plan.Write) ]);
       false
     with Invalid_argument _ -> true)

(* --- Channel --- *)

let test_channel_same_domain_free () =
  boot ();
  let t0 = K.Clock.now () in
  let v = Channel.call ~target:Domain.Kernel (fun () -> 42) in
  check "value" 42 v;
  check "no time" t0 (K.Clock.now ());
  check "no crossings" 0 (Channel.stats ()).Channel.kernel_user_calls

let test_channel_kernel_user_accounting () =
  boot ();
  let result = ref 0 in
  ignore
    (K.Sched.spawn (fun () ->
         result :=
           Channel.call ~target:Domain.Driver_lib ~payload_bytes:100
             ~reply_bytes:50 (fun () ->
               Alcotest.(check string)
                 "runs in target domain" "driver-library"
                 (Domain.to_string (Domain.current ()));
               7)));
  K.Sched.run ();
  check "result" 7 !result;
  let st = Channel.stats () in
  check "one kernel/user round trip" 1 st.Channel.kernel_user_calls;
  check "bytes" 150 st.Channel.bytes_marshaled;
  Alcotest.(check string) "domain restored" "kernel"
    (Domain.to_string (Domain.current ()))

let test_channel_kernel_to_java_pays_both () =
  boot ();
  ignore
    (K.Sched.spawn (fun () ->
         ignore (Channel.call ~target:Domain.Decaf_driver (fun () -> ()))));
  K.Sched.run ();
  let st = Channel.stats () in
  check "kernel/user leg" 1 st.Channel.kernel_user_calls;
  check "c/java leg" 1 st.Channel.c_java_calls

let test_channel_c_java_cheaper_than_kernel () =
  boot ();
  let cost_of target =
    Channel.reset_stats ();
    let spent = ref 0 in
    ignore
      (K.Sched.spawn (fun () ->
           Domain.with_domain Domain.Driver_lib (fun () ->
               let t0 = K.Clock.now () in
               ignore (Channel.call ~target ~payload_bytes:64 (fun () -> ()));
               spent := K.Clock.now () - t0)));
    K.Sched.run ();
    !spent
  in
  let to_java = cost_of Domain.Decaf_driver in
  let to_kernel = cost_of Domain.Kernel in
  check_bool "language crossing cheaper than protection crossing" true
    (to_java < to_kernel);
  check_bool "both positive" true (to_java > 0 && to_kernel > 0)

let test_channel_upcall_blocked_under_spinlock () =
  boot ();
  let raised = ref false in
  ignore
    (K.Sched.spawn (fun () ->
         let l = K.Sync.Spinlock.create () in
         K.Sync.Spinlock.lock l;
         (try ignore (Channel.call ~target:Domain.Decaf_driver (fun () -> ()))
          with K.Sched.Would_block_in_atomic _ -> raised := true);
         K.Sync.Spinlock.unlock l));
  K.Sched.run ();
  check_bool "upcall under spinlock forbidden" true !raised

let test_channel_upcall_blocked_in_irq () =
  boot ();
  let raised = ref false in
  K.Irq.request_irq 4 ~name:"t" (fun () ->
      try ignore (Channel.call ~target:Domain.Driver_lib (fun () -> ()))
      with K.Sched.Would_block_in_atomic _ -> raised := true);
  K.Irq.raise_irq 4;
  check_bool "upcall from interrupt forbidden" true !raised

(* --- objtracker edge cases: shared pointers and reset --- *)

let test_tracker_same_pointer_two_types () =
  boot ();
  let tr = Objtracker.create () in
  let addr = 0xdead0 in
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 3 });
  Objtracker.associate tr ~addr (Univ.pack adapter_key { flags = 9 });
  (* one C pointer, two type ids: both incarnations resolvable *)
  check "two entries" 2 (Objtracker.count tr);
  check_bool "ring found" true
    (match Objtracker.find tr ~addr ring_key with
    | Some r -> r.count = 3
    | None -> false);
  check_bool "adapter found" true
    (match Objtracker.find tr ~addr adapter_key with
    | Some a -> a.flags = 9
    | None -> false);
  Alcotest.(check (list string))
    "types at addr"
    [ "e1000_adapter"; "e1000_tx_ring" ]
    (List.sort compare (Objtracker.types_at tr ~addr));
  (* re-registering the same (pointer, type) replaces, never duplicates *)
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 4 });
  check "still two entries" 2 (Objtracker.count tr);
  check_bool "replaced, not shadowed" true
    (match Objtracker.find tr ~addr ring_key with
    | Some r -> r.count = 4
    | None -> false)

let test_tracker_lookup_after_clear () =
  boot ();
  let tr = Objtracker.create () in
  let addr = 0xbeef0 in
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 1 });
  Objtracker.associate tr ~addr (Univ.pack adapter_key { flags = 2 });
  Objtracker.clear tr;
  check "empty after clear" 0 (Objtracker.count tr);
  check_bool "find misses after clear" true
    (Objtracker.find tr ~addr ring_key = None);
  check_bool "mem misses after clear" false
    (Objtracker.mem tr ~addr ~type_id:"e1000_tx_ring");
  Alcotest.(check (list string)) "no types" [] (Objtracker.types_at tr ~addr);
  (* the tracker must stay usable after a runtime restart clears it *)
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 2 });
  check_bool "usable after clear" true
    (match Objtracker.find tr ~addr ring_key with
    | Some r -> r.count = 2
    | None -> false)

(* --- channel hardening: failures, retries, reset semantics --- *)

let test_channel_reset_stats_keeps_direct () =
  boot ();
  Channel.set_direct_marshaling true;
  Channel.reset_stats ();
  check_bool "reset_stats keeps direct marshaling" true
    (Channel.direct_marshaling ());
  Channel.reset_config ();
  check_bool "reset_config restores the default" false
    (Channel.direct_marshaling ())

let test_channel_fault_raises_failure () =
  boot ();
  K.Faultinject.arm ~seed:7
    [
      K.Faultinject.spec ~site:"xpc.frob" ~kind:K.Faultinject.Xpc_timeout
        ~trigger:K.Faultinject.Always ();
    ];
  let observed = ref None in
  ignore
    (K.Sched.spawn (fun () ->
         try
           ignore
             (Channel.call ~target:Domain.Driver_lib ~context:"frob" (fun () ->
                  1))
         with Channel.Xpc_failure { attempts; _ } -> observed := Some attempts));
  K.Sched.run ();
  K.Faultinject.disarm ();
  check_bool "fails fast: one attempt" true (!observed = Some 1);
  let st = Channel.stats () in
  check "failure counted" 1 st.Channel.failures;
  check "no retry for a call with side effects" 0 st.Channel.retries

let test_channel_idempotent_retry () =
  boot ();
  K.Faultinject.arm ~seed:7
    [
      K.Faultinject.spec ~site:"xpc.read_config"
        ~kind:K.Faultinject.Xpc_timeout
        ~trigger:(K.Faultinject.Span (1, 1))
        ();
    ];
  let result = ref 0 in
  ignore
    (K.Sched.spawn (fun () ->
         result :=
           Channel.call ~target:Domain.Driver_lib ~idempotent:true
             ~context:"read_config" (fun () -> 99)));
  K.Sched.run ();
  K.Faultinject.disarm ();
  check "retried to success" 99 !result;
  let st = Channel.stats () in
  check "one failure" 1 st.Channel.failures;
  check "one retry" 1 st.Channel.retries

let test_channel_idempotent_exhausts () =
  boot ();
  K.Faultinject.arm ~seed:7
    [
      K.Faultinject.spec ~site:"xpc.read_config"
        ~kind:K.Faultinject.Xpc_timeout ~trigger:K.Faultinject.Always ();
    ];
  let attempts_seen = ref 0 in
  ignore
    (K.Sched.spawn (fun () ->
         try
           ignore
             (Channel.call ~target:Domain.Driver_lib ~idempotent:true
                ~context:"read_config" (fun () -> ()))
         with Channel.Xpc_failure { attempts; _ } -> attempts_seen := attempts));
  K.Sched.run ();
  K.Faultinject.disarm ();
  check "gave up after three attempts" 3 !attempts_seen;
  let st = Channel.stats () in
  check "three failures" 3 st.Channel.failures;
  check "two retries" 2 st.Channel.retries

(* --- weak associations (the paper's proposed GC integration) --- *)

let test_tracker_weak_lives_while_referenced () =
  boot ();
  let tr = Objtracker.create () in
  let obj = { count = 5 } in
  let addr = Addr.alloc ~size:16 in
  Objtracker.associate_weak tr ~addr ring_key obj;
  Gc.full_major ();
  (match Objtracker.find tr ~addr ring_key with
  | Some o -> check_bool "same object after GC" true (o == obj)
  | None -> Alcotest.fail "live object lost");
  check "weak count" 1 (Objtracker.weak_count tr);
  (* keep obj alive until here *)
  check "still mutable" 5 obj.count

let test_tracker_weak_collects_dropped () =
  boot ();
  let tr = Objtracker.create () in
  let addr = Addr.alloc ~size:16 in
  (* allocate in an inner function so no local keeps the object alive *)
  let register () =
    let obj = { count = Random.int 100 } in
    Objtracker.associate_weak tr ~addr ring_key obj
  in
  register ();
  Gc.full_major ();
  Gc.full_major ();
  check_bool "entry dead after the driver dropped it" true
    (Objtracker.find tr ~addr ring_key = None);
  (* a second registration then sweep reclaims bookkeeping *)
  register ();
  Gc.full_major ();
  check "sweep reclaims dead entries" 1 (Objtracker.sweep tr);
  check "no weak entries left" 0 (Objtracker.weak_count tr)

let test_tracker_sweep_stat_and_index () =
  boot ();
  let tr = Objtracker.create () in
  let addr = Addr.alloc ~size:16 in
  let register () =
    Objtracker.associate_weak tr ~addr ring_key { count = 1 }
  in
  register ();
  Gc.full_major ();
  Gc.full_major ();
  check "dead entry reclaimed" 1 (Objtracker.sweep tr);
  check "sweep pass counted" 1 (Objtracker.stats tr).Objtracker.sweeps;
  check "idle sweep reclaims nothing" 0 (Objtracker.sweep tr);
  check "but is still counted" 2 (Objtracker.stats tr).Objtracker.sweeps;
  (* the per-address index forgets swept entries too *)
  Alcotest.(check (list string))
    "index cleaned by sweep" [] (Objtracker.types_at tr ~addr);
  (* mixed strong + dead weak at one address: sweep only drops the dead
     weak entry and the index keeps the strong one *)
  Objtracker.associate tr ~addr (Univ.pack adapter_key { flags = 3 });
  register ();
  Gc.full_major ();
  Gc.full_major ();
  check "only the weak entry swept" 1 (Objtracker.sweep tr);
  Alcotest.(check (list string))
    "strong entry survives in the index" [ "e1000_adapter" ]
    (Objtracker.types_at tr ~addr)

(* --- sharding: the concurrent-dispatch tracker layout --- *)

let test_tracker_sharding_consistency () =
  boot ();
  let tr = Objtracker.create ~name:"shardtest" ~shards:4 () in
  check "shard count honoured" 4 (Objtracker.shard_count tr);
  (* Spread entries over the shards: nothing may be lost, every lookup
     must resolve to its own object, and the per-shard counters must sum
     exactly to the aggregate snapshot. *)
  let n = 64 in
  let addrs = Array.init n (fun _ -> Addr.alloc ~size:16) in
  Array.iter
    (fun addr -> Objtracker.associate tr ~addr (Univ.pack ring_key { count = addr }))
    addrs;
  check "all entries present" n (Objtracker.count tr);
  Array.iter
    (fun addr ->
      match Objtracker.find tr ~addr ring_key with
      | Some o -> check "lookup resolves to its own object" addr o.count
      | None -> Alcotest.fail "entry lost across shards")
    addrs;
  let per = Objtracker.shard_stats tr in
  check "one stats row per shard" 4 (Array.length per);
  let agg = Objtracker.stats tr in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 per in
  check "per-shard lookups sum to aggregate" agg.Objtracker.lookups
    (sum (fun s -> s.Objtracker.lookups));
  check "per-shard hits sum to aggregate" agg.Objtracker.hits
    (sum (fun s -> s.Objtracker.hits));
  check "per-shard registrations sum to aggregate" agg.Objtracker.registrations
    (sum (fun s -> s.Objtracker.registrations));
  let used =
    Array.fold_left
      (fun acc s -> if s.Objtracker.lookups > 0 then acc + 1 else acc)
      0 per
  in
  check_bool
    (Printf.sprintf "traffic spread over shards (%d of 4 used)" used)
    true (used > 1);
  (* each shard has its own combolock with its own counters *)
  let locks = Objtracker.shard_lock_stats tr in
  check "one lock per shard" 4 (Array.length locks);
  (* exactly-once removal, across whatever shard each address landed in *)
  Array.iter
    (fun addr -> Objtracker.remove tr ~addr ~type_id:"e1000_tx_ring")
    addrs;
  check "empty after per-entry removes" 0 (Objtracker.count tr)

let test_tracker_sharded_sweep () =
  boot ();
  let tr = Objtracker.create ~name:"sweeptest" ~shards:4 () in
  let n = 32 in
  let keep = ref [] in
  (* register in an inner function so dropped objects really die *)
  let register i =
    let addr = Addr.alloc ~size:16 in
    let obj = { count = i } in
    Objtracker.associate_weak tr ~addr ring_key obj;
    if i mod 2 = 0 then keep := (addr, obj) :: !keep
  in
  for i = 1 to n do
    register i
  done;
  check "all weak entries registered" n (Objtracker.weak_count tr);
  Gc.full_major ();
  Gc.full_major ();
  (* one sweep pass covers every shard: exactly the dropped half dies,
     no live entry is reclaimed, none is counted twice *)
  check "dropped half reclaimed in one pass" (n / 2) (Objtracker.sweep tr);
  check "kept half survives" (n / 2) (Objtracker.weak_count tr);
  List.iter
    (fun (addr, obj) ->
      match Objtracker.find tr ~addr ring_key with
      | Some o -> check_bool "survivor identity intact" true (o == obj)
      | None -> Alcotest.fail "live weak entry lost by sharded sweep")
    !keep;
  check "second pass reclaims nothing" 0 (Objtracker.sweep tr);
  check "whole passes counted, not per-shard" 2
    (Objtracker.stats tr).Objtracker.sweeps

let test_tracker_weak_removed_explicitly () =
  boot ();
  let tr = Objtracker.create () in
  let obj = { count = 1 } in
  let addr = Addr.alloc ~size:16 in
  Objtracker.associate_weak tr ~addr ring_key obj;
  Objtracker.remove tr ~addr ~type_id:"e1000_tx_ring";
  check "removed" 0 (Objtracker.weak_count tr);
  check_bool "gone" true (Objtracker.find tr ~addr ring_key = None);
  check "object untouched" 1 obj.count

(* --- direct-marshaling ablation (the optimization of section 4) --- *)

let test_channel_direct_marshaling_cheaper () =
  boot ();
  let cost_of_call () =
    let spent = ref 0 in
    ignore
      (K.Sched.spawn (fun () ->
           let t0 = K.Clock.now () in
           ignore
             (Channel.call ~target:Domain.Decaf_driver ~payload_bytes:256
                (fun () -> ()));
           spent := K.Clock.now () - t0));
    K.Sched.run ();
    !spent
  in
  Channel.set_direct_marshaling false;
  let indirect = cost_of_call () in
  let st = Channel.snapshot () in
  check "indirect pays both legs" 1 st.Channel.c_java_calls;
  Channel.reset_stats ();
  Channel.set_direct_marshaling true;
  let direct = cost_of_call () in
  let st = Channel.snapshot () in
  check "direct skips the c/java leg" 0 st.Channel.c_java_calls;
  check "still one kernel/user crossing" 1 st.Channel.kernel_user_calls;
  check_bool "direct transfer is cheaper" true (direct < indirect);
  Channel.set_direct_marshaling false

let prop_xdr_garbage_never_escapes =
  (* feeding arbitrary bytes to the decoder must fail only with
     Decode_error, never some other exception or a crash *)
  QCheck.Test.make ~name:"xdr decoder is total on garbage" ~count:300
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun junk ->
      let d = Xdr.Dec.of_bytes (Bytes.of_string junk) in
      let safe f = match f d with _ -> true | exception Xdr.Decode_error _ -> true in
      safe Xdr.Dec.int && safe Xdr.Dec.bool
      && safe (fun d -> Xdr.Dec.string d)
      && safe (fun d -> Xdr.Dec.array_var d Xdr.Dec.int))

let prop_plan_union_idempotent_commutative =
  let open QCheck in
  let gen_plan =
    Gen.map
      (fun fields ->
        let fields =
          List.sort_uniq (fun (a, _) (b, _) -> compare a b) fields
        in
        Marshal_plan.make ~type_id:"t" fields)
      Gen.(
        small_list
          (pair
             (oneofl [ "a"; "b"; "c"; "d"; "e" ])
             (oneofl
                [ Marshal_plan.Read; Marshal_plan.Write; Marshal_plan.Read_write ])))
  in
  let norm p =
    List.sort compare (Marshal_plan.fields p)
  in
  Test.make ~name:"plan union is idempotent and commutative" ~count:200
    (QCheck.make (Gen.pair gen_plan gen_plan))
    (fun (p, q) ->
      norm (Marshal_plan.union p p) = norm p
      && norm (Marshal_plan.union p q) = norm (Marshal_plan.union q p))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_xdr_int_roundtrip;
      prop_xdr_hyper_roundtrip;
      prop_xdr_string_roundtrip_and_alignment;
      prop_xdr_mixed_sequence;
      prop_xdr_garbage_never_escapes;
      prop_plan_union_idempotent_commutative;
    ]

(* --- dispatch: worker lanes are bound per thread --- *)

let test_dispatch_admission_per_thread () =
  (* One worker. Thread A suspends mid-crossing; thread B then crosses
     into the same domain. The lane binding is per Sched thread, so B
     must go through slot admission and block until A's crossing exits —
     with a process-global binding B would match the nested-crossing
     check and overlap A inside the single-slot pool, and B's notes
     would land on A's lane. *)
  boot ();
  Dispatch.reset ();
  let order = ref [] in
  let log tag = order := tag :: !order in
  ignore
    (K.Sched.spawn ~name:"a" (fun () ->
         Dispatch.with_worker ~target:Domain.Decaf_driver (fun () ->
             log "a-enter";
             K.Sched.sleep_ns 1_000_000;
             log "a-exit")));
  ignore
    (K.Sched.spawn ~name:"b" (fun () ->
         K.Sched.sleep_ns 10_000;
         (* B serves no crossing here: this charge must be dropped, not
            credited to A's suspended lane. *)
         Dispatch.note 777;
         Dispatch.with_worker ~target:Domain.Decaf_driver (fun () ->
             log "b-enter")));
  K.Sched.run ();
  Alcotest.(check (list string))
    "b admitted only after a's crossing exits"
    [ "a-enter"; "a-exit"; "b-enter" ]
    (List.rev !order);
  match Dispatch.pool_stats () with
  | [ p ] ->
      check "both crossings admitted" 2 p.Dispatch.admissions;
      check "second crossing waited for the slot" 1 p.Dispatch.blocked_acquires;
      check "no atomic-context oversubscription" 0 p.Dispatch.forced;
      let busy = Array.fold_left ( + ) 0 p.Dispatch.lane_busy_ns in
      check "lanes hold only the two admission charges"
        (2 * K.Cost.current.xpc_dispatch_ns)
        busy
  | ps ->
      Alcotest.fail
        (Printf.sprintf "expected one pool, got %d" (List.length ps))

(* --- capability handles --- *)

let rejects f =
  try
    ignore (f ());
    false
  with Boundary.Boundary_violation _ -> true

let test_handle_roundtrip () =
  boot ();
  let tr = Objtracker.create () in
  let obj = { count = 3 } in
  let addr = Addr.alloc ~size:64 in
  Objtracker.associate tr ~addr (Univ.pack ring_key obj);
  let h = Objtracker.issue tr ~addr ~type_id:"e1000_tx_ring" in
  check_bool "handle does not leak the address" true (h <> addr);
  (match Objtracker.resolve tr ~handle:h ~type_id:"e1000_tx_ring" with
  | Ok a -> check "resolves to the address" addr a
  | Error e -> Alcotest.fail e);
  (match Objtracker.find_by_handle tr ~handle:h ring_key with
  | Some o -> check_bool "same object" true (o == obj)
  | None -> Alcotest.fail "find_by_handle missed");
  check "one live handle" 1 (Objtracker.handle_count tr);
  (* issuing again for the same association returns the same capability *)
  check "issue is idempotent" h
    (Objtracker.issue tr ~addr ~type_id:"e1000_tx_ring")

let test_handle_forged_rejected () =
  boot ();
  let tr = Objtracker.create () in
  check_bool "never-issued handle refused" true
    (Result.is_error
       (Objtracker.resolve tr ~handle:0x5bad_f00d ~type_id:"e1000_tx_ring"));
  check_bool "non-positive handle refused" true
    (Result.is_error (Objtracker.resolve tr ~handle:0 ~type_id:"e1000_tx_ring"));
  check "rejections counted" 2 (Objtracker.stats tr).Objtracker.rejected

let test_handle_stale_after_remove () =
  boot ();
  let tr = Objtracker.create () in
  let addr = Addr.alloc ~size:64 in
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 0 });
  let h = Objtracker.issue tr ~addr ~type_id:"e1000_tx_ring" in
  Objtracker.remove_by_handle tr ~handle:h;
  check "association revoked" 0 (Objtracker.count tr);
  check "handle table emptied" 0 (Objtracker.handle_count tr);
  check_bool "replayed handle is stale" true
    (Result.is_error (Objtracker.resolve tr ~handle:h ~type_id:"e1000_tx_ring"));
  (* reincarnation at the same address gets a fresh generation *)
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 1 });
  let h' = Objtracker.issue tr ~addr ~type_id:"e1000_tx_ring" in
  check_bool "new incarnation, new capability" true (h' <> h);
  check_bool "old handle still dead" true
    (Result.is_error (Objtracker.resolve tr ~handle:h ~type_id:"e1000_tx_ring"))

let test_handle_cross_type_rejected () =
  boot ();
  let tr = Objtracker.create () in
  let addr = Addr.alloc ~size:256 in
  Objtracker.associate tr ~addr (Univ.pack adapter_key { flags = 0 });
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 0 });
  let h = Objtracker.issue tr ~addr ~type_id:"e1000_tx_ring" in
  check_bool "presented as the wrong type" true
    (Result.is_error (Objtracker.resolve tr ~handle:h ~type_id:"e1000_adapter"));
  check_bool "still valid for its own type" true
    (Result.is_ok (Objtracker.resolve tr ~handle:h ~type_id:"e1000_tx_ring"))

let test_handle_invalid_after_clear () =
  boot ();
  let tr = Objtracker.create () in
  let addr = Addr.alloc ~size:64 in
  Objtracker.associate tr ~addr (Univ.pack ring_key { count = 0 });
  let h = Objtracker.issue tr ~addr ~type_id:"e1000_tx_ring" in
  Objtracker.clear tr;
  check "no handles survive a clear" 0 (Objtracker.handle_count tr);
  check_bool "pre-clear handle refused after restart" true
    (Result.is_error (Objtracker.resolve tr ~handle:h ~type_id:"e1000_tx_ring"))

(* --- inbound guards --- *)

let guard_plan () =
  Marshal_plan.make ~type_id:"g"
    [
      ("ro", Marshal_plan.Read);
      ("n", Marshal_plan.Read_write);
      ("mode", Marshal_plan.Write);
      ("buf", Marshal_plan.Read_write);
      ("pos", Marshal_plan.Read_write);
      ("up", Marshal_plan.Read_write);
    ]

let guard_rules () =
  Guard.make (guard_plan ())
    [
      ("n", Guard.Range (0, 100));
      ("mode", Guard.Enum [ 1; 2; 4 ]);
      ("buf", Guard.Max_len 4);
      ("pos", Guard.Non_negative);
    ]

let test_guard_rules_enforced () =
  boot ();
  Guard.reset ();
  let g = guard_rules () in
  check "in-range value passes through" 50 (Guard.int_field g ~field:"n" 50);
  check_bool "range high" true (rejects (fun () -> Guard.int_field g ~field:"n" 101));
  check_bool "range low" true (rejects (fun () -> Guard.int_field g ~field:"n" (-1)));
  check_bool "enum violation" true
    (rejects (fun () -> Guard.int_field g ~field:"mode" 3));
  check "enum member passes" 4 (Guard.int_field g ~field:"mode" 4);
  check_bool "oversize array" true
    (rejects (fun () -> Guard.array_field g ~field:"buf" (Array.make 5 0)));
  check "bounded array passes" 4
    (Array.length (Guard.array_field g ~field:"buf" (Array.make 4 0)));
  check_bool "negative position" true
    (rejects (fun () -> Guard.int_field g ~field:"pos" (-7)));
  check_bool "unruled field gets writability only" true
    (Guard.bool_field g ~field:"up" true);
  check "validator counted each violation" 5 (Guard.rejections g);
  check_bool "machine-wide rejected counter moved" true
    (Boundary.totals.Boundary.rejected >= 5)

let test_guard_readonly_field () =
  boot ();
  Guard.reset ();
  let g = guard_rules () in
  (* the plan marks "ro" Read: kernel-to-user only. Any inbound value,
     however innocuous, is a write through a read-only view. *)
  check_bool "read-only int write refused" true
    (rejects (fun () -> Guard.int_field g ~field:"ro" 0));
  check_bool "unknown field refused too" true
    (rejects (fun () -> Guard.int_field g ~field:"nosuch" 1))

let test_guard_disabled_passthrough () =
  boot ();
  Guard.reset ();
  let g = guard_rules () in
  Guard.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Guard.reset ())
    (fun () ->
      check_bool "axis off" false (Guard.is_enabled ());
      check "out-of-range value passes unchecked" 101
        (Guard.int_field g ~field:"n" 101);
      check "even read-only fields pass" 9 (Guard.int_field g ~field:"ro" 9);
      check "no rejections recorded" 0 (Guard.rejections g);
      (* the payload size bound is not part of the axis: still enforced *)
      check_bool "payload bound enforced with axis off" true
        (rejects (fun () ->
             Guard.check_inbound_bytes g (Guard.limits.Guard.max_inbound_bytes + 1))))

let test_guard_configure_fallback () =
  boot ();
  Guard.reset ();
  Fun.protect
    ~finally:(fun () -> Guard.reset ())
    (fun () ->
      Guard.configure ~max_inbound_bytes:16 ();
      check "below-minimum setting falls back to default" 4096
        Guard.limits.Guard.max_inbound_bytes;
      Guard.configure ~max_inbound_bytes:128 ();
      check "valid setting honored" 128 Guard.limits.Guard.max_inbound_bytes;
      Guard.configure ~max_batch_queue:0 ();
      check "zero queue bound falls back to default" 1024
        Guard.limits.Guard.max_batch_queue;
      Guard.configure ~max_batch_queue:8 ();
      check "valid queue bound honored" 8 Guard.limits.Guard.max_batch_queue)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "decaf_xpc"
    [
      ( "xdr",
        [
          tc "scalars" test_xdr_scalars;
          tc "padding" test_xdr_padding;
          tc "arrays and options" test_xdr_arrays_options;
          tc "truncation detected" test_xdr_truncation_detected;
          tc "range checks" test_xdr_range_checks;
        ] );
      ( "objtracker",
        [
          tc "roundtrip" test_tracker_roundtrip;
          tc "type disambiguation" test_tracker_type_disambiguation;
          tc "remove" test_tracker_remove;
          tc "stats" test_tracker_stats;
          tc "same pointer, two type ids" test_tracker_same_pointer_two_types;
          tc "lookup after clear" test_tracker_lookup_after_clear;
          tc "sweep stat and index" test_tracker_sweep_stat_and_index;
          tc "sharding consistency" test_tracker_sharding_consistency;
          tc "sharded sweep" test_tracker_sharded_sweep;
        ] );
      ( "marshal_plan",
        [
          tc "directions" test_plan_directions;
          tc "union" test_plan_union;
          tc "union order and pp" test_plan_union_order_and_pp;
          tc "duplicates rejected" test_plan_duplicate_rejected;
        ] );
      ( "channel",
        [
          tc "same domain free" test_channel_same_domain_free;
          tc "kernel/user accounting" test_channel_kernel_user_accounting;
          tc "kernel->java pays both" test_channel_kernel_to_java_pays_both;
          tc "c/java cheaper" test_channel_c_java_cheaper_than_kernel;
          tc "no upcall under spinlock" test_channel_upcall_blocked_under_spinlock;
          tc "no upcall from irq" test_channel_upcall_blocked_in_irq;
          tc "direct marshaling ablation" test_channel_direct_marshaling_cheaper;
          tc "reset_stats keeps config" test_channel_reset_stats_keeps_direct;
          tc "fault raises Xpc_failure" test_channel_fault_raises_failure;
          tc "idempotent call retried" test_channel_idempotent_retry;
          tc "idempotent retries exhausted" test_channel_idempotent_exhausts;
        ] );
      ( "dispatch",
        [ tc "admission is per thread" test_dispatch_admission_per_thread ] );
      ( "objtracker-handles",
        [
          tc "roundtrip" test_handle_roundtrip;
          tc "forged rejected" test_handle_forged_rejected;
          tc "stale after remove" test_handle_stale_after_remove;
          tc "cross-type rejected" test_handle_cross_type_rejected;
          tc "invalid after clear" test_handle_invalid_after_clear;
        ] );
      ( "guard",
        [
          tc "rules enforced" test_guard_rules_enforced;
          tc "read-only field" test_guard_readonly_field;
          tc "disabled axis passthrough" test_guard_disabled_passthrough;
          tc "configure fallback" test_guard_configure_fallback;
        ] );
      ( "objtracker-weak",
        [
          tc "lives while referenced" test_tracker_weak_lives_while_referenced;
          tc "collected when dropped" test_tracker_weak_collects_dropped;
          tc "explicit remove" test_tracker_weak_removed_explicitly;
        ] );
      ("xdr-properties", qcheck_cases);
    ]
