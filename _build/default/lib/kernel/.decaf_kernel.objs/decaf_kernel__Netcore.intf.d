lib/kernel/netcore.mli: Bytes
