module K = Decaf_kernel

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable registrations : int;
  mutable sweeps : int;
}

type weak_entry = { w_get : unit -> Univ.t option }

type t = {
  name : string;
  table : (int * string, Univ.t) Hashtbl.t;
  weak_table : (int * string, weak_entry) Hashtbl.t;
  (* Secondary index: address -> set of type_ids registered there (strong
     or weak). [types_at]/[remove_all] used to fold over both full tables;
     with the index they touch only the handful of types actually at the
     address. Maintained on every (de)registration. *)
  by_addr : (int, (string, unit) Hashtbl.t) Hashtbl.t;
  stats : stats;
}

let create ?(name = "objtracker") () =
  {
    name;
    table = Hashtbl.create 64;
    weak_table = Hashtbl.create 16;
    by_addr = Hashtbl.create 64;
    stats = { lookups = 0; hits = 0; registrations = 0; sweeps = 0 };
  }

let index_add t addr ty =
  let set =
    match Hashtbl.find_opt t.by_addr addr with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.replace t.by_addr addr s;
        s
  in
  Hashtbl.replace set ty ()

let index_remove t addr ty =
  match Hashtbl.find_opt t.by_addr addr with
  | None -> ()
  | Some set ->
      Hashtbl.remove set ty;
      if Hashtbl.length set = 0 then Hashtbl.remove t.by_addr addr

let associate t ~addr u =
  t.stats.registrations <- t.stats.registrations + 1;
  let ty = Univ.name u in
  Hashtbl.replace t.table (addr, ty) u;
  index_add t addr ty

let drop_weak t addr ty =
  (* Reaching here means the strong table missed this slot, so dropping
     the weak entry leaves nothing at (addr, ty). *)
  Hashtbl.remove t.weak_table (addr, ty);
  index_remove t addr ty

let find t ~addr key =
  t.stats.lookups <- t.stats.lookups + 1;
  K.Clock.consume K.Cost.current.objtracker_lookup_ns;
  let ty = Univ.key_name key in
  match Hashtbl.find_opt t.table (addr, ty) with
  | Some u ->
      t.stats.hits <- t.stats.hits + 1;
      Univ.unpack key u
  | None -> (
      match Hashtbl.find_opt t.weak_table (addr, ty) with
      | Some entry -> (
          match entry.w_get () with
          | Some u ->
              t.stats.hits <- t.stats.hits + 1;
              Univ.unpack key u
          | None ->
              (* the decaf driver dropped its last reference *)
              drop_weak t addr ty;
              None)
      | None -> None)

let mem t ~addr ~type_id =
  Hashtbl.mem t.table (addr, type_id)
  || Hashtbl.mem t.weak_table (addr, type_id)

let associate_weak t ~addr key v =
  t.stats.registrations <- t.stats.registrations + 1;
  let w = Weak.create 1 in
  Weak.set w 0 (Some v);
  let w_get () = Option.map (Univ.pack key) (Weak.get w 0) in
  let ty = Univ.key_name key in
  Hashtbl.replace t.weak_table (addr, ty) { w_get };
  index_add t addr ty

let sweep t =
  t.stats.sweeps <- t.stats.sweeps + 1;
  (* One [w_get] per entry: collect the dead slots in a single pass, then
     unregister them (table and address index together). *)
  let dead =
    Hashtbl.fold
      (fun slot entry acc ->
        if entry.w_get () = None then slot :: acc else acc)
      t.weak_table []
  in
  List.iter
    (fun (addr, ty) ->
      Hashtbl.remove t.weak_table (addr, ty);
      if not (Hashtbl.mem t.table (addr, ty)) then index_remove t addr ty)
    dead;
  List.length dead

let weak_count t = Hashtbl.length t.weak_table

let types_at t ~addr =
  match Hashtbl.find_opt t.by_addr addr with
  | None -> []
  | Some set ->
      let live =
        Hashtbl.fold
          (fun ty () acc ->
            if Hashtbl.mem t.table (addr, ty) then ty :: acc
            else
              match Hashtbl.find_opt t.weak_table (addr, ty) with
              | Some entry -> if entry.w_get () <> None then ty :: acc else acc
              | None -> acc)
          set []
      in
      List.sort compare live

let remove t ~addr ~type_id =
  Hashtbl.remove t.table (addr, type_id);
  Hashtbl.remove t.weak_table (addr, type_id);
  index_remove t addr type_id

let remove_all t ~addr =
  match Hashtbl.find_opt t.by_addr addr with
  | None -> ()
  | Some set ->
      let types = Hashtbl.fold (fun ty () acc -> ty :: acc) set [] in
      List.iter (fun type_id -> remove t ~addr ~type_id) types

let count t = Hashtbl.length t.table
let stats t = t.stats

let clear t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.weak_table;
  Hashtbl.reset t.by_addr
