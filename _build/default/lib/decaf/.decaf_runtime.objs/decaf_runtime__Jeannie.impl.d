lib/decaf/jeannie.ml: Channel Decaf_kernel Decaf_xpc Domain
