lib/minic/pp.mli: Ast Format
