lib/drivers/e1000_objects.mli: Decaf_xpc
