(** Error-handling analysis over legacy driver code (§5.1).

    Kernel C signals failure with negative integer returns; callers must
    test every return value and unwind through goto labels. Rewriting in
    a language with checked exceptions surfaces the places where this
    discipline was broken: the compiler forces every error to be
    handled. This module is the static-analysis equivalent: it finds
    calls whose error return is discarded or stored but never examined —
    the 28 cases the paper found in the E1000 — and measures how much
    code the exception rewrite deletes (the ~8 % of [e1000_hw.c]). *)

type violation_kind =
  | Ignored_return  (** the error-returning call is a bare statement *)
  | Unchecked_variable of string
      (** the result is stored but never read afterwards *)

type violation = {
  v_function : string;  (** containing function *)
  v_callee : string;  (** the error-returning function called *)
  v_kind : violation_kind;
  v_line : int;
}

val error_returning_functions :
  Decaf_minic.Ast.file -> extra:string list -> string list
(** Functions that can return a negative errno: those containing a
    [return -CONST], those propagating another error-returning
    function's result, and the [extra] known kernel functions. *)

val find_violations :
  Decaf_minic.Ast.file -> extra:string list -> violation list

val propagation_sites : Decaf_minic.Ast.func -> int
(** Count of pure error-propagation statements
    ([if (ret) return ret;] and variants) that an exception rewrite
    deletes outright. *)

val exception_savings :
  Decaf_minic.Ast.file -> funcs:string list -> int * int
(** [(lines_removed, original_loc)] over the listed functions: the
    Figure 5 measurement. *)
