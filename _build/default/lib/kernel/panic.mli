(** Kernel bug reporting: the simulated analogue of [BUG()] and oopses. *)

exception Kernel_bug of string
(** Raised when the simulated kernel detects an internal invariant
    violation, e.g. blocking while holding a spinlock. *)

val bug : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [bug fmt ...] raises {!Kernel_bug} with a formatted message. *)

val bug_on : bool -> string -> unit
(** [bug_on cond msg] raises {!Kernel_bug} with [msg] when [cond] holds. *)
