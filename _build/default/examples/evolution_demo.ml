(* Driver evolution (the paper's section 5.2): apply the 2.6.18.1 ->
   2.6.27 patch corpus to the legacy E1000, classify every change by the
   partition component it lands in, and regenerate the marshaling plans,
   showing the interface changes DriverSlicer detects.

   Run with:  dune exec examples/evolution_demo.exe *)

module Slicer = Decaf_slicer.Slicer
module Regen = Decaf_slicer.Regen
open Decaf_drivers

let () =
  (* slice the original driver once: these are the shipped plans *)
  let original = Slicer.slice ~source:E1000_src.source E1000_src.config in
  Printf.printf "original plans cover %d shared structures\n"
    (List.length original.Slicer.plans);

  (* the driver evolves: 17 patches in two batches *)
  let summary = E1000_evolution.run () in
  Printf.printf
    "applied %d patches: %d lines changed in the decaf driver, %d in the \
     nucleus, %d in the shared interface\n"
    summary.E1000_evolution.patches_applied
    summary.E1000_evolution.decaf_lines summary.E1000_evolution.nucleus_lines
    summary.E1000_evolution.interface_lines;

  (* re-run DriverSlicer on the evolved source and merge plans *)
  let evolved_source = E1000_evolution.apply E1000_src.source in
  let merged, changes =
    Regen.regenerate ~old_plans:original.Slicer.plans ~source:evolved_source
      E1000_src.config
  in
  Printf.printf "\nstub regeneration: %d structure plan(s) changed\n"
    (List.length changes);
  List.iter
    (fun (c : Regen.change) ->
      Printf.printf "  %s: added [%s], widened [%s]\n" c.Regen.ch_type
        (String.concat ", " c.Regen.ch_added_fields)
        (String.concat ", " c.Regen.ch_widened_fields))
    changes;
  Printf.printf "merged plans now cover %d structures\n"
    (List.length merged.Slicer.plans);
  print_endline
    "\n(the vast majority of the evolution happened at user level, in the \
     decaf driver — the paper's Table 4)"
