lib/minic/callgraph.ml: Ast Hashtbl List Option Set String
