lib/drivers/e1000_drv.mli: Decaf_hw Decaf_kernel Decaf_runtime Driver_env E1000_objects
