module K = Decaf_kernel
module Hw = Decaf_hw
module R = Hw.Rtl8139
module RO = Rtl8139_objects
module Runtime = Decaf_runtime.Runtime

let driver = "8139too"
let vendor_id = 0x10ec
let device_id = 0x8139
let adapter_wire_bytes = RO.wire_size

(* Device models by PCI slot: stands in for the DMA memory the driver
   and device share. *)
let models : (string, R.t) Hashtbl.t = Hashtbl.create 4

let setup_device ~slot ~io_base ~irq ~mac ~link () =
  let model = R.create ~io_base ~irq ~mac ~link in
  Hashtbl.replace models slot model;
  K.Pci.add_device
    (K.Pci.make_dev ~slot ~vendor:vendor_id ~device:device_id ~irq_line:irq
       ~bars:[ { K.Pci.kind = K.Pci.Port_bar; base = io_base; len = 0x100 } ]
       ());
  model

type adapter = {
  env : Driver_env.t;
  scope : string;
      (** boundary scope / ring name — the binding id, distinct per
          instance ("8139too", "8139too#1", ...) *)
  slot : string;  (** PCI slot this binding claimed *)
  model : R.t;
  io_base : int;
  irq : int;
  ka : RO.kernel_nic;
  mutable netdev : K.Netcore.t option;
  mutable cur_tx : int;  (** next transmit descriptor to use *)
  mutable dirty_tx : int;  (** oldest descriptor the NIC still owns *)
  mutable pkts_since_stats : int;
  mutable user_syncs : int;
  mutable xring : Decaf_xpc.Ring.t option;
      (** shared-ring XPC fast path for stats/rx-drop/mc-filter records *)
  lock : K.Sync.Combolock.t;
}

type t = {
  adapter : adapter;
  mutable module_handle : K.Modules.handle option;
}

let reg a off = a.io_base + off

(* Run [f] on the Java view of the nic — the rtl8139 counterpart of
   E1000_drv's [with_java_adapter]: plan-driven XDR marshaling with the
   dirty-snapshot/ack protocol for delta mode. *)
let with_java_nic a ~name f =
  match a.env.Driver_env.mode with
  | Driver_env.Native ->
      let j = RO.unmarshal_at_user (RO.marshal_to_user a.ka) in
      let result = f j in
      RO.unmarshal_at_kernel (RO.marshal_to_kernel j) a.ka;
      result
  | Driver_env.Staged | Driver_env.Decaf ->
      if a.env.Driver_env.mode = Driver_env.Decaf then Runtime.start ();
      (* attribute boundary faults on this crossing to the binding *)
      Decaf_xpc.Boundary.scoped a.scope (fun () ->
          let upto = RO.user_view_mark a.ka in
          let payload = RO.marshal_to_user a.ka in
          let result, back =
            a.env.Driver_env.upcall ~name ~bytes:(Bytes.length payload)
              (fun () ->
                let j = RO.unmarshal_at_user payload in
                let result = f j in
                (result, RO.marshal_to_kernel j))
          in
          RO.ack_user_view a.ka ~upto;
          RO.unmarshal_at_kernel back a.ka;
          result)

(* Deferred kernel->user view refresh, as in E1000_drv. *)
let post_nic_sync a ~name =
  match a.env.Driver_env.mode with
  | Driver_env.Native -> ()
  | Driver_env.Staged | Driver_env.Decaf ->
      let upto = RO.user_view_mark a.ka in
      let payload = RO.marshal_to_user a.ka in
      a.env.Driver_env.notify ~name ~bytes:(Bytes.length payload) (fun () ->
          Decaf_xpc.Boundary.scoped a.scope (fun () ->
              ignore (RO.unmarshal_at_user payload);
              RO.ack_user_view a.ka ~upto;
              a.user_syncs <- a.user_syncs + 1))

let stats_notify_interval = 64

(* Ring availability, as in E1000_drv: axis on, ring allocated, and the
   user-level view exists (else fall back to full-image syncs). *)
let ring_of a =
  if Decaf_xpc.Ring.enabled () && RO.user_has_view a.ka then a.xring else None

let note_packets a n =
  if n > 0 && a.env.Driver_env.mode <> Driver_env.Native then begin
    a.pkts_since_stats <- a.pkts_since_stats + n;
    if a.pkts_since_stats >= stats_notify_interval then begin
      a.pkts_since_stats <- 0;
      match ring_of a with
      | Some ring ->
          let r = RO.ring_stats_record a.ka in
          if not (Decaf_xpc.Ring.produce ring r) then
            RO.ring_undeliverable a.ka r
      | None ->
          RO.bump_k_stats a.ka;
          post_nic_sync a ~name:"rtl8139_stats"
    end
  end

(* --- data path: always kernel-resident (critical roots) --- *)

let tx_slots_in_flight a = a.cur_tx - a.dirty_tx

let start_xmit a (skb : K.Netcore.Skb.t) =
  K.Sync.Combolock.with_kernel a.lock (fun () ->
      if tx_slots_in_flight a >= R.n_tx_desc then K.Netcore.Xmit_busy
      else begin
        let slot = a.cur_tx mod R.n_tx_desc in
        R.stage_tx_buffer a.model slot (Bytes.sub skb.K.Netcore.Skb.data 0 skb.K.Netcore.Skb.len);
        K.Io.outl (reg a (R.tsd0 + (4 * slot))) skb.K.Netcore.Skb.len;
        a.cur_tx <- a.cur_tx + 1;
        (match a.netdev with
        | Some nd ->
            let st = K.Netcore.stats nd in
            st.K.Netcore.tx_packets <- st.K.Netcore.tx_packets + 1;
            st.K.Netcore.tx_bytes <- st.K.Netcore.tx_bytes + skb.K.Netcore.Skb.len;
            if tx_slots_in_flight a >= R.n_tx_desc then
              K.Netcore.netif_stop_queue nd
        | None -> ());
        K.Netcore.Xmit_ok
      end)

let handle_rx a =
  let continue = ref true in
  let received = ref 0 in
  while !continue do
    match R.take_rx a.model with
    | Some (frame, tr) ->
        K.Clock.consume 1_000
        (* per-packet receive processing; decaf-lint: consume-ok, inside
           the net.rx span *);
        incr received;
        (match a.netdev with
        | Some nd -> K.Netcore.netif_rx nd (K.Netcore.Skb.of_bytes frame)
        | None -> ());
        (* packet delivered: close the wire-arrival timeline *)
        ignore (K.Clock.complete tr)
    | None -> continue := false
  done;
  note_packets a !received

let interrupt a =
  let status = K.Io.inw (reg a R.isr) in
  if status <> 0 then begin
    K.Io.outw (reg a R.isr) status (* ack *);
    if status land R.isr_tok <> 0 then begin
      (* retire every descriptor the NIC has written back *)
      let retired_from = a.dirty_tx in
      let scanning = ref true in
      while !scanning && a.dirty_tx < a.cur_tx do
        let slot = a.dirty_tx mod R.n_tx_desc in
        if K.Io.inl (reg a (R.tsd0 + (4 * slot))) land R.tsd_tok <> 0 then
          a.dirty_tx <- a.dirty_tx + 1
        else scanning := false
      done;
      (if tx_slots_in_flight a < R.n_tx_desc then
         match a.netdev with
         | Some nd ->
             if K.Netcore.netif_queue_stopped nd then
               K.Netcore.netif_wake_queue nd
         | None -> ());
      note_packets a (a.dirty_tx - retired_from)
    end;
    if status land R.isr_rok <> 0 then handle_rx a;
    if status land R.isr_rx_overflow <> 0 then begin
      (match a.netdev with
      | Some nd ->
          let st = K.Netcore.stats nd in
          st.K.Netcore.rx_dropped <- st.K.Netcore.rx_dropped + 1
      | None -> ());
      match ring_of a with
      | Some ring ->
          let r = RO.ring_rx_dropped_record a.ka in
          if not (Decaf_xpc.Ring.produce ring r) then
            RO.ring_undeliverable a.ka r
      | None ->
          RO.bump_k_rx_dropped a.ka;
          post_nic_sync a ~name:"rtl8139_rx_dropped"
    end
  end

(* --- initialization path: runs at user level in decaf mode --- *)

(* Reset the chip and wait for the reset bit to clear. In decaf mode
   every port access is a direct Jeannie call into the driver library. *)
let chip_reset a =
  let io = a.env.Driver_env.mode <> Driver_env.Native in
  let outb p v = if io then Runtime.Helpers.outb p v else K.Io.outb p v in
  let inb p = if io then Runtime.Helpers.inb p else K.Io.inb p in
  outb (reg a R.cmd) R.cmd_rst;
  (* the chip takes ~10 ms to come out of reset *)
  K.Sched.sleep_ns 10_000_000;
  let tries = ref 0 in
  while inb (reg a R.cmd) land R.cmd_rst <> 0 && !tries < 100 do
    incr tries
  done;
  if !tries >= 100 then -Decaf_runtime.Errors.eio else 0

let read_mac a =
  let inb =
    if a.env.Driver_env.mode <> Driver_env.Native then Runtime.Helpers.inb
    else K.Io.inb
  in
  String.init 6 (fun i -> Char.chr (inb (reg a (R.idr0 + i))))

let hw_start a =
  let io = a.env.Driver_env.mode <> Driver_env.Native in
  let outb p v = if io then Runtime.Helpers.outb p v else K.Io.outb p v in
  let outw p v = if io then Runtime.Helpers.outw p v else K.Io.outw p v in
  let outl p v = if io then Runtime.Helpers.outl p v else K.Io.outl p v in
  outb (reg a R.cmd) (R.cmd_te lor R.cmd_re);
  outl (reg a R.rcr) 0xf;
  outl (reg a R.tcr) 0x600;
  outl (reg a R.rbstart) 0x10_0000;
  outw (reg a R.imr) 0xffff

let net_ops t_adapter =
  {
    K.Netcore.ndo_open =
      (fun () ->
        let a = t_adapter in
        (* open runs mostly at user level: bring the chip up there, then
           come back down to enable the queue. *)
        let rc =
          with_java_nic a ~name:"rtl8139_open" (fun _j ->
              let rc = chip_reset a in
              if rc = 0 then begin
                hw_start a;
                a.env.Driver_env.downcall ~name:"netif_start_queue" ~bytes:16
                  (fun () ->
                    match a.netdev with
                    | Some nd ->
                        K.Netcore.netif_wake_queue nd;
                        K.Netcore.netif_carrier_on nd
                    | None -> ())
              end;
              rc)
        in
        if rc = 0 then Ok () else Error rc);
    ndo_stop =
      (fun () ->
        let a = t_adapter in
        (* deliver outstanding deferred notifications and ring slots
           before closing *)
        Decaf_xpc.Batch.drain ();
        Option.iter Decaf_xpc.Ring.drain a.xring;
        with_java_nic a ~name:"rtl8139_close" (fun _j ->
            let outb =
              if a.env.Driver_env.mode <> Driver_env.Native then
                Runtime.Helpers.outb
              else K.Io.outb
            in
            outb (reg a R.cmd) 0;
            a.env.Driver_env.downcall ~name:"netif_stop_queue" ~bytes:16
              (fun () ->
                match a.netdev with
                | Some nd ->
                    K.Netcore.netif_stop_queue nd;
                    K.Netcore.netif_carrier_off nd
                | None -> ()));
        Ok ());
    ndo_start_xmit = (fun skb -> start_xmit t_adapter skb);
    ndo_tx_timeout =
      (fun () ->
        let a = t_adapter in
        ignore (chip_reset a);
        hw_start a);
  }

let probe env (pci : K.Pci.dev) =
  match Hashtbl.find_opt models (K.Pci.slot pci) with
  | None -> Error (-Decaf_runtime.Errors.enodev)
  | Some model ->
      K.Pci.enable_device pci;
      K.Pci.set_master pci;
      let bar = K.Pci.bar pci 0 in
      let scope = Driver_env.scope_or env driver in
      let a =
        {
          env;
          scope;
          slot = K.Pci.slot pci;
          model;
          io_base = bar.K.Pci.base;
          irq = K.Pci.irq pci;
          ka = RO.fresh_kernel_nic ();
          netdev = None;
          cur_tx = 0;
          dirty_tx = 0;
          pkts_since_stats = 0;
          user_syncs = 0;
          xring = None;
          lock = K.Sync.Combolock.create ~name:scope ();
        }
      in
      (match env.Driver_env.mode with
      | Driver_env.Native -> ()
      | Driver_env.Staged | Driver_env.Decaf ->
          let target =
            if env.Driver_env.mode = Driver_env.Decaf then
              Decaf_xpc.Domain.Decaf_driver
            else Decaf_xpc.Domain.Driver_lib
          in
          a.xring <-
            Some
              (Decaf_xpc.Ring.create ~name:scope ~target
                 ~guard:RO.ring_guard ~resolve:RO.ring_resolve
                 ~handler:(fun r ->
                   RO.apply_ring_record r;
                   a.user_syncs <- a.user_syncs + 1)
                 ()));
      (* Probe-time bring-up happens at user level in decaf mode. *)
      let rc =
        with_java_nic a ~name:"rtl8139_probe" (fun j ->
            let rc = chip_reset a in
            if rc <> 0 then rc
            else begin
              let mac = read_mac a in
              RO.set_j_msg_enable j 1;
              (* register with the kernel: downcalls from user level *)
              a.env.Driver_env.downcall ~name:"register_netdev" ~bytes:64
                (fun () ->
                  let nd =
                      K.Netcore.create ~name:(K.Netcore.alloc_name "eth") ~mtu:1500 (net_ops a) in
                  a.netdev <- Some nd;
                  K.Netcore.register_netdev nd;
                  ignore mac);
              a.env.Driver_env.downcall ~name:"request_irq" ~bytes:16
                (fun () ->
                  K.Irq.request_irq a.irq ~name:a.scope (fun () -> interrupt a));
              0
            end)
      in
      if rc = 0 then Ok a
      else begin
        Option.iter Decaf_xpc.Ring.destroy a.xring;
        a.xring <- None;
        Error rc
      end

let instances : (string, adapter) Hashtbl.t = Hashtbl.create 4

(* PCI-core unbind path, shared by detach (per-instance rmmod) and
   unregister (module unload): drop everything the probe acquired. *)
let remove pci =
  (match Hashtbl.find_opt instances (K.Pci.slot pci) with
  | Some a -> (
      K.Irq.free_irq a.irq;
      (* unbind: remaining slots dropped with count *)
      Option.iter Decaf_xpc.Ring.destroy a.xring;
      a.xring <- None;
      RO.release_kernel_nic a.ka;
      match a.netdev with
      | Some nd -> K.Netcore.unregister_netdev nd
      | None -> ())
  | None -> ());
  Hashtbl.remove instances (K.Pci.slot pci)

let active_box : t option ref = ref None
let active () = !active_box

(* One K.Modules load serves every instance (see E1000_drv): refcounted,
   really unloaded only when the last binding goes; the boot epoch tag
   invalidates a handle that survived a reboot. *)
type shared = {
  s_handle : K.Modules.handle;
  s_epoch : int;
  mutable s_refs : int;
}

let shared_box : shared option ref = ref None

let shared_live () =
  match !shared_box with
  | Some s when s.s_epoch = K.Boot.epoch () && K.Modules.is_loaded driver ->
      Some s
  | Some _ ->
      shared_box := None;
      None
  | None -> None

(* env + device filter for the binding being created; only the probe the
   caller asked for claims a device (see E1000_drv.pending). *)
let pending : (Driver_env.t * string option * adapter option ref) option ref =
  ref None

let pci_probe pci =
  match !pending with
  | Some (env, want, out)
    when !out = None
         && (match want with None -> true | Some s -> s = K.Pci.slot pci) -> (
      match probe env pci with
      | Ok a ->
          out := Some a;
          Hashtbl.replace instances (K.Pci.slot pci) a;
          Ok ()
      | Error rc -> Error rc)
  | _ -> Error (-Decaf_runtime.Errors.enodev)

let insmod ?dev env =
  let out = ref None in
  pending := Some (env, dev, out);
  Fun.protect ~finally:(fun () -> pending := None) @@ fun () ->
  let wrap s adapter =
    s.s_refs <- s.s_refs + 1;
    let t = { adapter; module_handle = Some s.s_handle } in
    if adapter.scope = driver && !active_box = None then active_box := Some t;
    Ok t
  in
  match shared_live () with
  | Some s -> (
      (* module already loaded: bind one more device to it *)
      K.Pci.rescan ?slot:dev ();
      match !out with
      | Some adapter -> wrap s adapter
      | None -> Error (-Decaf_runtime.Errors.enodev))
  | None -> (
      let init () =
        (* keep the PCI core clean when the probe fails or faults, so a
           supervisor retry can register the driver again *)
        let register () =
          K.Pci.register_driver ~name:driver
            ~ids:[ { K.Pci.id_vendor = vendor_id; id_device = device_id } ]
            ~probe:pci_probe ~remove
        in
        (match register () with
        | () -> ()
        | exception e ->
            K.Pci.unregister_driver driver;
            raise e);
        match !out with
        | Some _ -> Ok ()
        | None ->
            K.Pci.unregister_driver driver;
            Error (-Decaf_runtime.Errors.enodev)
      in
      let exit () = K.Pci.unregister_driver driver in
      match K.Modules.insmod ~name:driver ~init ~exit with
      | Ok handle -> (
          match !out with
          | Some adapter ->
              let s =
                { s_handle = handle; s_epoch = K.Boot.epoch (); s_refs = 0 }
              in
              shared_box := Some s;
              wrap s adapter
          | None -> Error (-Decaf_runtime.Errors.enodev))
      | Error rc -> Error rc)

let rmmod t =
  (match t.module_handle with
  | Some h ->
      (match t.adapter.netdev with
      | Some nd when K.Netcore.is_up nd -> ignore (K.Netcore.stop_dev nd)
      | Some _ | None -> ());
      (* release this binding's device only; siblings keep running *)
      K.Pci.detach ~slot:t.adapter.slot;
      t.module_handle <- None;
      (match shared_live () with
      | Some s when s.s_handle == h ->
          s.s_refs <- s.s_refs - 1;
          if s.s_refs <= 0 then begin
            K.Modules.rmmod h;
            shared_box := None
          end
      | _ -> ())
  | None -> ());
  match !active_box with Some t' when t' == t -> active_box := None | _ -> ()

(* --- power management: suspend/resume at user level --- *)

let suspend t =
  let a = t.adapter in
  with_java_nic a ~name:"rtl8139_suspend" (fun _j ->
      let outb =
        if a.env.Driver_env.mode <> Driver_env.Native then Runtime.Helpers.outb
        else K.Io.outb
      in
      (* quiesce the chip: no rx/tx while the bus powers down *)
      outb (reg a R.cmd) 0;
      a.env.Driver_env.downcall ~name:"netif_stop_queue" ~bytes:16 (fun () ->
          match a.netdev with
          | Some nd when K.Netcore.is_up nd ->
              K.Netcore.netif_stop_queue nd;
              K.Netcore.netif_carrier_off nd
          | Some _ | None -> ()))

let resume t =
  let a = t.adapter in
  (* full-image resync: the user view went stale across the suspend *)
  RO.resync_user_view a.ka;
  with_java_nic a ~name:"rtl8139_resume" (fun _j ->
      match a.netdev with
      | Some nd when K.Netcore.is_up nd ->
          let rc = chip_reset a in
          if rc <> 0 then
            Decaf_runtime.Errors.throw ~driver:a.scope ~errno:(-rc)
              "resume chip reset";
          hw_start a;
          a.env.Driver_env.downcall ~name:"netif_start_queue" ~bytes:16
            (fun () ->
              K.Netcore.netif_wake_queue nd;
              K.Netcore.netif_carrier_on nd)
      | Some _ | None -> ())

let init_latency_ns t =
  match t.module_handle with Some h -> K.Modules.init_latency_ns h | None -> 0

let netdev t =
  match t.adapter.netdev with
  | Some nd -> nd
  | None -> K.Panic.bug "8139too: no netdev"

(* Multicast-list update: the kernel recomputes the hash filter and lets
   the user-level view catch up via a deferred notification — the
   classic non-urgent upcall (nothing in the kernel waits on it). *)
let set_rx_mode t ~mc_filter:(w0, w1) =
  let a = t.adapter in
  match ring_of a with
  | Some ring ->
      let r = RO.ring_mc_filter_record a.ka w0 w1 in
      if not (Decaf_xpc.Ring.produce ring r) then begin
        RO.ring_undeliverable a.ka r;
        post_nic_sync a ~name:"rtl8139_set_rx_mode"
      end
  | None ->
      RO.set_k_mc_filter a.ka w0 w1;
      post_nic_sync a ~name:"rtl8139_set_rx_mode"

let kernel_nic t = t.adapter.ka
let user_stat_syncs t = t.adapter.user_syncs


module Core = struct
  type nonrec t = t

  let name = driver
  let bus = K.Hotplug.Pci
  let ids = [ (vendor_id, device_id) ]
  let probe env ~dev = insmod ?dev env
  let remove = rmmod
  let suspend = suspend
  let resume = resume

  let owns t slot =
    match Hashtbl.find_opt models slot with
    | Some m -> m == t.adapter.model
    | None -> false

  let deferred_syncs = user_stat_syncs
  let init_latency_ns = init_latency_ns
end
