lib/drivers/uhci_drv.mli: Decaf_hw Driver_env
