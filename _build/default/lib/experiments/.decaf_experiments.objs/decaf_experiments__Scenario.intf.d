lib/experiments/scenario.mli: Decaf_drivers
