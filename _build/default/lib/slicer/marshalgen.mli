(** Marshaling-code generation (§3.2.3).

    From the driver source and the partition, computes per-structure
    {!Decaf_xpc.Marshal_plan} values: a field is copied toward user level
    when user-mode code reads it and copied back when user-mode code
    writes it. [DECAF_*VAR] annotations force fields into the plan even
    when the analysis cannot see the access (the Java-side accesses of
    §3.2.4 are invisible to a C analysis).

    Also emits the text of rpcgen-style C and jrpcgen-style Java
    marshaling routines and the generated Java container classes, so the
    tooling's output can be inspected and measured. *)

type field_use = { fu_field : string; fu_read : bool; fu_written : bool }

val field_accesses :
  Decaf_minic.Ast.file -> funcs:string list -> field_use list
(** Union of struct-field accesses across the named functions'
    bodies. *)

val plans :
  Decaf_minic.Ast.file ->
  user_funcs:string list ->
  annots:Annot.t ->
  Decaf_xpc.Marshal_plan.t list
(** One plan per struct that user-mode code touches. *)

val c_marshal_code : Xdrspec.spec -> Xdrspec.xdr_struct -> string
(** rpcgen-style xdr_<struct> routine text. *)

val java_marshal_code : Xdrspec.spec -> Xdrspec.xdr_struct -> string
(** jrpcgen-style class with xdrEncode/xdrDecode and object-tracker
    calls. *)

val java_class_code : Xdrspec.xdr_struct -> string
(** The generated container class of public fields (§3.2.3). *)
