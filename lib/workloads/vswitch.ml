module K = Decaf_kernel
module Hw = Decaf_hw

type port = { netdev : K.Netcore.t; link : Hw.Link.t }

type result = {
  aggregate_mbps : float;
  min_mbps : float;
  mean_mbps : float;
  max_mbps : float;
  packets : int;
  elapsed_ns : int;
  per_port_mbps : float list;
}

(* Application-side per-message cost, as in {!Netperf}. *)
let app_cost bytes = K.Cost.current.syscall_ns + (bytes / 4)

(* Each port's flow is a clock-event chain, not a thread: a fleet of
   hundreds of generators paced by [Sched] threads would spend the whole
   virtual budget on context switches and measure the scheduler, not the
   drivers.

   The application cost is charged against a shared virtual-CPU grant
   ([cpu_free_at]) instead of [Clock.consume]: consume delivers due
   events nested inside the consuming frame, which is right for
   interrupt handlers but traps an unbounded cascade of sender steps on
   the stack once the fleet saturates the CPU — the trapped chains
   stall until the run ends and fairness collapses. With the grant, a
   sender that fires while the CPU is busy requeues itself at the grant
   time; simultaneous waiters fire in arrival order, so contended ports
   round-robin and saturation shows up as uniform slowdown. *)
let run ~ports ~duration_ns ~msg_bytes =
  if ports = [] then invalid_arg "Vswitch.run: no ports";
  let t0 = K.Clock.now () in
  let deadline = t0 + duration_ns in
  let tx0 =
    List.map (fun p -> (Hw.Link.tx_bytes p.link, Hw.Link.tx_frames p.link)) ports
  in
  (* A full device ring means the socket layer would block the sender;
     poll again well past the NIC's interrupt-coalescing latency rather
     than spending the virtual CPU on failed retries. *)
  let busy_backoff_ns = 100_000 in
  let cpu_free_at = ref 0 in
  let cost = app_cost msg_bytes in
  let rec send p () =
    if K.Clock.now () < deadline then
      if K.Netcore.is_up p.netdev then
        let gap =
          max cost
            ((msg_bytes + 20) * 8 * 1_000_000_000 / Hw.Link.rate_bps p.link)
        in
        match
          K.Netcore.dev_queue_xmit p.netdev (K.Netcore.Skb.alloc msg_bytes)
        with
        | K.Netcore.Xmit_ok -> ignore (K.Clock.after gap (pump p))
        | K.Netcore.Xmit_busy -> ignore (K.Clock.after busy_backoff_ns (pump p))
  (* Book the next free CPU grant at enqueue time — a ticket, not a
     retry loop: waking every waiter per grant and letting all but one
     requeue costs hundreds of events per message at 256 ports. *)
  and pump p () =
    let now = K.Clock.now () in
    if now < deadline then begin
      let slot = max now !cpu_free_at in
      cpu_free_at := slot + cost;
      if slot > now then ignore (K.Clock.after (slot - now) (send p))
      else send p ()
    end
  in
  (* stagger the starts so the flows interleave instead of arriving as
     one synchronized burst every wire gap *)
  List.iteri (fun i p -> ignore (K.Clock.after (1 + (i * 97)) (pump p))) ports;
  while K.Clock.now () < deadline do
    K.Sched.sleep_ns 1_000_000
  done;
  let elapsed_ns = K.Clock.now () - t0 in
  let per_port =
    List.map2
      (fun p (b0, _) ->
        let bytes = Hw.Link.tx_bytes p.link - b0 in
        if elapsed_ns = 0 then 0.
        else float_of_int (bytes * 8) *. 1e3 /. float_of_int elapsed_ns)
      ports tx0
  in
  let packets =
    List.fold_left2
      (fun acc p (_, f0) -> acc + (Hw.Link.tx_frames p.link - f0))
      0 ports tx0
  in
  let total = List.fold_left ( +. ) 0. per_port in
  let n = float_of_int (List.length per_port) in
  {
    aggregate_mbps = total;
    min_mbps = List.fold_left min infinity per_port;
    mean_mbps = total /. n;
    max_mbps = List.fold_left max 0. per_port;
    packets;
    elapsed_ns;
    per_port_mbps = per_port;
  }

let pp ppf r =
  Format.fprintf ppf
    "%.1f Mb/s aggregate over %d ports (min %.1f / mean %.1f / max %.1f), %d packets"
    r.aggregate_mbps
    (List.length r.per_port_mbps)
    r.min_mbps r.mean_mbps r.max_mbps r.packets
