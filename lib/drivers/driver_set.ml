let all () =
  [
    Driver_core.Pack (module Rtl8139_drv.Core);
    Driver_core.Pack (module E1000_drv.Core);
    Driver_core.Pack (module Ens1371_drv.Core);
    Driver_core.Pack (module Uhci_drv.Core);
    Driver_core.Pack (module Psmouse_drv.Core);
  ]

let names = [ "8139too"; "e1000"; "ens1371"; "uhci-hcd"; "psmouse" ]
let register_defaults () = List.iter Driver_core.register (all ())
