lib/slicer/marshalgen.mli: Annot Decaf_minic Decaf_xpc Xdrspec
