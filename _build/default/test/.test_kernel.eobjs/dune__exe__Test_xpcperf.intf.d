test/test_xpcperf.mli:
