test/test_minic.ml: Alcotest Ast Callgraph Decaf_minic Gen Lexer List Loc Option Parser Pp QCheck QCheck_alcotest Symtab Token
