lib/drivers/psmouse_drv.mli: Decaf_hw Decaf_kernel Driver_env
