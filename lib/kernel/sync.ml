module Waitq = struct
  type t = { wq_tag : string; q : (unit -> unit) Queue.t }

  let create ?(name = "waitq") () =
    { wq_tag = Printf.sprintf "%s#%d" name (Ktrace.fresh_id ()); q = Queue.create () }

  (* Two notes per wait: entry (ordering against a wake that would have
     been lost had it come earlier) and resumption (the happens-before
     edge from the wake that actually fired). *)
  let wait t =
    Ktrace.note (Ktrace.Queue t.wq_tag) Ktrace.Wait;
    Sched.suspend ~register:(fun wake -> Queue.push wake t.q);
    Ktrace.note (Ktrace.Queue t.wq_tag) Ktrace.Wait

  let wake_one t =
    Ktrace.note (Ktrace.Queue t.wq_tag) Ktrace.Signal;
    match Queue.take_opt t.q with
    | Some wake ->
        wake ();
        true
    | None -> false

  let wake_all t =
    Ktrace.note (Ktrace.Queue t.wq_tag) Ktrace.Signal;
    let n = Queue.length t.q in
    Queue.iter (fun wake -> wake ()) t.q;
    Queue.clear t.q;
    n

  let waiters t = Queue.length t.q
end

module Spinlock = struct
  type t = {
    name : string;
    tag : string;  (** trace identity: "spin:name#id" *)
    mutable held : bool;
    mutable irqsave : bool;
  }

  let create ?(name = "spinlock") () =
    {
      name;
      tag = Printf.sprintf "spin:%s#%d" name (Ktrace.fresh_id ());
      held = false;
      irqsave = false;
    }

  let lock l =
    if l.held then
      Panic.bug "spinlock %s: deadlock (already held on this CPU)" l.name;
    Sched.spin_acquire ();
    Clock.consume Cost.current.spinlock_ns;
    l.held <- true;
    Ktrace.note (Ktrace.Lock l.tag) Ktrace.Acquire

  let unlock l =
    if not l.held then Panic.bug "spinlock %s: unlock while not held" l.name;
    Ktrace.note (Ktrace.Lock l.tag) Ktrace.Release;
    l.held <- false;
    Sched.spin_release ()

  let held l = l.held

  let with_lock l f =
    lock l;
    match f () with
    | v ->
        unlock l;
        v
    | exception e ->
        unlock l;
        raise e

  let lock_irqsave l =
    Sched.local_irq_save ();
    lock l;
    l.irqsave <- true

  let unlock_irqrestore l =
    if not l.irqsave then
      Panic.bug "spinlock %s: irqrestore without irqsave" l.name;
    l.irqsave <- false;
    unlock l;
    Sched.local_irq_restore ()
end

module Semaphore = struct
  type t = {
    name : string;
    sem_tag : string;
    mutable count : int;
    waitq : Waitq.t;
  }

  let create ?(name = "sem") count =
    {
      name;
      sem_tag = Printf.sprintf "sem:%s#%d" name (Ktrace.fresh_id ());
      count;
      waitq = Waitq.create ~name ();
    }

  (* Semaphores trace as queue edges, not locks: a plain counting
     semaphore is a synchronization channel, and the primitives built on
     top (Mutex, Combolock) add their own Lock identity so the lockset
     and lock-order checks see the logical lock, not its plumbing. *)
  let down s =
    Sched.assert_may_block ("down on semaphore " ^ s.name);
    Ktrace.note (Ktrace.Queue s.sem_tag) Ktrace.Wait;
    Clock.consume Cost.current.semaphore_ns;
    while s.count = 0 do
      Waitq.wait s.waitq
    done;
    s.count <- s.count - 1

  let up s =
    Ktrace.note (Ktrace.Queue s.sem_tag) Ktrace.Signal;
    s.count <- s.count + 1;
    ignore (Waitq.wake_one s.waitq)

  let count s = s.count
end

module Mutex = struct
  type t = { sem : Semaphore.t; tag : string; mutable owner : string option }

  let create ?(name = "mutex") () =
    {
      sem = Semaphore.create ~name 1;
      tag = Printf.sprintf "mutex:%s#%d" name (Ktrace.fresh_id ());
      owner = None;
    }

  let lock m =
    if m.owner = Some (Sched.current_name ()) then
      Panic.bug "mutex %s: recursive lock by %s" m.sem.Semaphore.name
        (Sched.current_name ());
    Semaphore.down m.sem;
    m.owner <- Some (Sched.current_name ());
    Ktrace.note (Ktrace.Lock m.tag) Ktrace.Acquire

  let unlock m =
    if m.owner = None then
      Panic.bug "mutex %s: unlock while not held" m.sem.Semaphore.name;
    Ktrace.note (Ktrace.Lock m.tag) Ktrace.Release;
    m.owner <- None;
    Semaphore.up m.sem

  let held m = m.owner <> None

  let with_lock m f =
    lock m;
    match f () with
    | v ->
        unlock m;
        v
    | exception e ->
        unlock m;
        raise e
end

module Completion = struct
  type t = { mutable completions : int; mutable forever : bool; waitq : Waitq.t }

  let create () = { completions = 0; forever = false; waitq = Waitq.create () }

  let wait c =
    while c.completions = 0 && not c.forever do
      Waitq.wait c.waitq
    done;
    if not c.forever then c.completions <- c.completions - 1

  let complete c =
    c.completions <- c.completions + 1;
    ignore (Waitq.wake_one c.waitq)

  let complete_all c =
    c.forever <- true;
    ignore (Waitq.wake_all c.waitq)

  let done_ c = c.forever || c.completions > 0
end

module Combolock = struct
  type stats = {
    mutable spin_acquires : int;
    mutable sem_acquires : int;
    mutable contended : int;
    mutable spin_to_sem : int;
    mutable wait_ns : int;
  }

  type holder = No_one | Kernel_spin | Kernel_sem | User

  type t = {
    name : string;
    tag : string;  (** trace identity: "combo:name#id" *)
    sem : Semaphore.t;
    mutable holder : holder;
    mutable user_waiters : int;
    stats : stats;
  }

  let fresh_stats () =
    {
      spin_acquires = 0;
      sem_acquires = 0;
      contended = 0;
      spin_to_sem = 0;
      wait_ns = 0;
    }

  (* Machine-wide contention totals across every combolock, so Channel
     can report lock behaviour without holding a reference to each
     driver's locks. *)
  let totals_v = fresh_stats ()

  let totals () =
    {
      spin_acquires = totals_v.spin_acquires;
      sem_acquires = totals_v.sem_acquires;
      contended = totals_v.contended;
      spin_to_sem = totals_v.spin_to_sem;
      wait_ns = totals_v.wait_ns;
    }

  let reset_totals () =
    totals_v.spin_acquires <- 0;
    totals_v.sem_acquires <- 0;
    totals_v.contended <- 0;
    totals_v.spin_to_sem <- 0;
    totals_v.wait_ns <- 0

  (* Xpc.Dispatch registers here so virtual time a worker spends blocked
     on a combolock counts against that worker's lane, not the whole
     machine. *)
  let wait_observer : (int -> unit) option ref = ref None
  let set_wait_observer f = wait_observer := Some f

  let create ?(name = "combolock") () =
    {
      name;
      tag = Printf.sprintf "combo:%s#%d" name (Ktrace.fresh_id ());
      sem = Semaphore.create ~name 1;
      holder = No_one;
      user_waiters = 0;
      stats = fresh_stats ();
    }

  let user_mode_active l = l.holder = User || l.user_waiters > 0

  (* Semaphore acquisition with contention accounting: [contended] when
     the semaphore was unavailable at entry, [wait_ns] the virtual time
     blocked beyond the semaphore operation's own cost. *)
  let sem_down l =
    let was_contended = Semaphore.count l.sem = 0 in
    if was_contended then begin
      l.stats.contended <- l.stats.contended + 1;
      totals_v.contended <- totals_v.contended + 1
    end;
    let t0 = Clock.now () in
    Semaphore.down l.sem;
    let waited = Clock.now () - t0 - Cost.current.semaphore_ns in
    if waited > 0 then begin
      l.stats.wait_ns <- l.stats.wait_ns + waited;
      totals_v.wait_ns <- totals_v.wait_ns + waited;
      match !wait_observer with Some f -> f waited | None -> ()
    end

  let lock_kernel l =
    match l.holder with
    | No_one when l.user_waiters = 0 ->
        (* Kernel-only: spinlock behaviour. *)
        Sched.spin_acquire ();
        Clock.consume Cost.current.spinlock_ns;
        l.holder <- Kernel_spin;
        l.stats.spin_acquires <- l.stats.spin_acquires + 1;
        totals_v.spin_acquires <- totals_v.spin_acquires + 1;
        Ktrace.note (Ktrace.Lock l.tag) Ktrace.Acquire
    | Kernel_spin ->
        Panic.bug "combolock %s: kernel spin deadlock" l.name
    | No_one | Kernel_sem | User ->
        (* The spin fast path is unavailable: semaphore acquisition.
           [spin_to_sem] counts only the crossings forced by user level
           holding or waiting — kernel-kernel contention on the
           semaphore (holder already [Kernel_sem], no user waiters) is
           ordinary blocking, not user interference. *)
        l.stats.sem_acquires <- l.stats.sem_acquires + 1;
        totals_v.sem_acquires <- totals_v.sem_acquires + 1;
        if l.holder = User || l.user_waiters > 0 then begin
          l.stats.spin_to_sem <- l.stats.spin_to_sem + 1;
          totals_v.spin_to_sem <- totals_v.spin_to_sem + 1
        end;
        sem_down l;
        l.holder <- Kernel_sem;
        Ktrace.note (Ktrace.Lock l.tag) Ktrace.Acquire

  let unlock_kernel l =
    match l.holder with
    | Kernel_spin ->
        Ktrace.note (Ktrace.Lock l.tag) Ktrace.Release;
        l.holder <- No_one;
        Sched.spin_release ()
    | Kernel_sem ->
        Ktrace.note (Ktrace.Lock l.tag) Ktrace.Release;
        l.holder <- No_one;
        Semaphore.up l.sem
    | No_one | User ->
        Panic.bug "combolock %s: kernel unlock while not kernel-held" l.name

  let lock_user l =
    l.user_waiters <- l.user_waiters + 1;
    l.stats.sem_acquires <- l.stats.sem_acquires + 1;
    totals_v.sem_acquires <- totals_v.sem_acquires + 1;
    sem_down l;
    l.user_waiters <- l.user_waiters - 1;
    l.holder <- User;
    Ktrace.note (Ktrace.Lock l.tag) Ktrace.Acquire

  let unlock_user l =
    match l.holder with
    | User ->
        Ktrace.note (Ktrace.Lock l.tag) Ktrace.Release;
        l.holder <- No_one;
        Semaphore.up l.sem
    | No_one | Kernel_spin | Kernel_sem ->
        Panic.bug "combolock %s: user unlock while not user-held" l.name

  let with_kernel l f =
    lock_kernel l;
    match f () with
    | v ->
        unlock_kernel l;
        v
    | exception e ->
        unlock_kernel l;
        raise e

  let with_user l f =
    lock_user l;
    match f () with
    | v ->
        unlock_user l;
        v
    | exception e ->
        unlock_user l;
        raise e

  let stats l = l.stats
end
