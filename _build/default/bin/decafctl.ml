(* decafctl: load one of the five drivers in native or decaf mode and run
   its workload, printing the Table 3 measurements for that cell. *)

open Cmdliner
module E = Decaf_experiments

let run driver seconds =
  let duration_ns = int_of_float (seconds *. 1e9) in
  let rows = E.Table3.measure ~duration_ns () in
  let rows =
    match driver with
    | None -> rows
    | Some d ->
        List.filter
          (fun r -> String.lowercase_ascii r.E.Table3.driver = String.lowercase_ascii d)
          rows
  in
  if rows = [] then begin
    Printf.eprintf "no workload for driver %s\n"
      (Option.value ~default:"?" driver);
    exit 1
  end;
  print_string (E.Table3.render rows);
  exit 0

let driver_arg =
  let doc = "Restrict to one driver (8139too, E1000, ens1371, uhci-hcd, psmouse)." in
  Arg.(value & opt (some string) None & info [ "driver" ] ~docv:"DRIVER" ~doc)

let seconds_arg =
  let doc = "Virtual seconds of steady-state workload per cell." in
  Arg.(value & opt float 2.0 & info [ "seconds" ] ~docv:"SECONDS" ~doc)

let term = Term.(const run $ driver_arg $ seconds_arg)

let cmd =
  Cmd.v
    (Cmd.info "decafctl"
       ~doc:"Run a driver workload in native and decaf modes and compare")
    term

let () = exit (Cmd.eval cmd)
