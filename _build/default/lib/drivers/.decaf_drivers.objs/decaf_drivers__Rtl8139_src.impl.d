lib/drivers/rtl8139_src.ml: Decaf_slicer
