lib/kernel/cost.mli:
