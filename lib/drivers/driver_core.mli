(** The unified driver model: one signature, one registry, one lifecycle.

    Each of the five drivers exports a [Core] module implementing
    {!DRIVER}; the registry owns, per bound driver, its
    {!Driver_env.t} (wrapped with a crossing/byte meter), its recovery
    {!Decaf_runtime.Supervisor.t}, and an explicit lifecycle state
    machine. All load/unload, suspend/resume and hotplug paths go
    through here, so the fault campaign, Table 3 and [decafctl status]
    all observe the same per-driver snapshot instead of per-driver
    one-off accessors.

    {2 Lifecycle}

    {v
      Unbound ──insmod──▶ Probed ──ok──▶ Running ◀──resume── Suspended
         ▲                   │              │  └──suspend──────▲
         └────probe fails────┘              │
                                            ▼
      Removed ◀──rmmod/hotplug──(Running|Suspended|Disabled)
         │                                  │fault
         └──────replug/insmod──▶ Probed     ▼
                                        Recovering ──budget out──▶ Disabled
    v}

    Illegal transitions (suspending a driver that is not running,
    loading one that is already bound, resuming one that is not
    suspended, ...) raise {!Illegal_transition}; errno-style failures
    (probe rejected, supervisor gave up) come back as [Error _]. *)

type lifecycle =
  | Unbound
  | Probed
  | Running
  | Suspended
  | Recovering
  | Disabled
  | Removed

exception
  Illegal_transition of {
    driver : string;
    from_ : lifecycle;
    to_ : lifecycle;
  }

val lifecycle_name : lifecycle -> string

(** What a driver must provide to be managed by the registry. *)
module type DRIVER = sig
  type t

  val name : string
  (** Registry name; also the campaign/Table-3 row name. *)

  val bus : Decaf_kernel.Hotplug.bus

  val ids : (int * int) list
  (** (vendor, device) pairs for hotplug re-probe matching; empty for
      buses without ids (input, USB host side). *)

  val probe : Driver_env.t -> dev:string option -> (t, int) result
  (** Load the module (first instance) and bind one device. [dev]
      pins the probe to a specific bus device id (a PCI slot);
      [None] claims any matching unbound device. A module serving a
      fleet is probed once per instance. *)

  val remove : t -> unit
  (** Tear down and unload: the existing [rmmod]. *)

  val suspend : t -> unit
  (** PM suspend hook: crosses to the decaf driver like any other
      non-critical path. Raises on hardware/XPC faults. *)

  val resume : t -> unit
  (** PM resume hook; resyncs the user-level object view. *)

  val owns : t -> string -> bool
  (** Whether a bus device id (PCI slot, input/HCD name) belongs to this
      instance — routes hotplug removal events. *)

  val deferred_syncs : t -> int
  (** Deferred view refreshes delivered to user level so far. *)

  val init_latency_ns : t -> int
end

type packed = Pack : (module DRIVER with type t = 'a) -> packed

type snapshot = {
  s_driver : string;  (** bare driver name, shared by the whole fleet *)
  s_binding : string;
      (** binding id: equal to [s_driver] for instance 0, ["name#k"]
          for instance [k > 0] — the key under which this instance's
          ring and boundary scopes are registered *)
  s_instance : int;
  s_state : lifecycle;
  s_mode : Driver_env.mode option;  (** [None] until first bound *)
  s_crossings : int;  (** upcalls + downcalls requested through the env *)
  s_wire_bytes : int;  (** payload bytes of those calls *)
  s_notifies : int;  (** deferred notifications posted *)
  s_deferred_syncs : int;  (** deferred view refreshes delivered *)
  s_rejections : int;
      (** boundary-validation rejections attributed to this binding
          (forged/stale handles, field violations, forged acks) —
          {!Decaf_xpc.Boundary.rejected_for} under the binding's scope *)
  s_dropped : int;
      (** boundary drops attributed to this binding (batch queue bound,
          ring overflow, teardown discards) —
          {!Decaf_xpc.Boundary.dropped_for} under the same scope, so
          drops and rejections reconcile in one accounting *)
  s_ring_occupancy : int;  (** slots currently occupied in the binding's
          shared ring (0 when it has none) *)
  s_ring_high_water : int;  (** max ring occupancy observed *)
  s_ring_doorbells : int;  (** doorbell crossings fired for this ring *)
  s_ring_drops : int;  (** ring slots lost: overflow + teardown discards *)
  s_supervisor : Decaf_runtime.Supervisor.stats option;
  s_restarts_left : int;
  s_init_latency_ns : int;
}

val reset : unit -> unit
(** Drop every binding and re-arm the hotplug subscription. Implicit on
    each kernel boot: every public entry point compares
    {!Decaf_kernel.Boot.epoch} and starts from a clean registry after a
    reboot, so stale bindings never leak across boots. *)

val register : packed -> unit
(** Idempotent per driver name; replaces any previous registration. *)

val registered : unit -> string list
(** Distinct driver names, registration order (one entry per driver,
    however many instances exist). *)

val is_registered : string -> bool

val instances_of : string -> string list
(** Binding ids of every instance of the named driver (or of the named
    binding's driver), instance order. *)

val state : string -> lifecycle
(** Raises [Invalid_argument] for an unregistered name. Every
    string-keyed operation below accepts either a bare driver name
    (instance 0) or a binding id ["name#k"]. *)

val supervisor : string -> Decaf_runtime.Supervisor.t option
(** The supervisor the registry attached at the last bind, if any. *)

val insmod : string -> mode:Driver_env.mode -> (unit, int) result
(** Bind the named driver: fresh supervisor, metered environment,
    [Unbound/Removed -> Probed -> Running]. The probe runs under the
    supervisor, so a faulting probe is retried within the restart
    budget; [Error] is the probe's errno (or [-EIO] after the budget is
    exhausted, leaving the driver [Disabled]). *)

val bind_device :
  string ->
  ?dev:string ->
  mode:Driver_env.mode ->
  unit ->
  (string, int) result
(** Bind one more device to the named driver: reuses a free
    (Unbound/Removed) instance binding or creates the next one, pins it
    to [dev] when given (hotplug re-probe then only accepts that
    device back), and runs the same supervised insmod path. Returns the
    binding id to use with {!rmmod}, {!suspend}, {!snapshot}, ... *)

val rmmod : string -> unit
(** Unbind ([Running | Suspended | Disabled] -> [Removed]): drains
    batched notifications, then removes the instance. *)

val eject : string -> unit
(** Surprise (hotplug) removal of a bound driver's device: drains
    in-flight crossings and batched notifies, then unbinds — the same
    path bus [Device_removed] events take through the registry. No-op
    for drivers that are not bound. *)

val suspend : string -> (unit, int) result
(** [Running -> Suspended]. Crosses to the decaf driver's suspend hook,
    then flushes {!Decaf_xpc.Batch} queues (and with them any pending
    {!Decaf_xpc.Marshal_plan.Dirty} deltas) while the device is still
    powered. Supervised when the registry is not already inside
    {!run}. *)

val resume : string -> (unit, int) result
(** [Suspended -> Running]. The driver's resume hook re-marks the
    object view dirty so the resume crossing carries a full image. *)

val run :
  string -> mode:Driver_env.mode -> (unit -> 'a) -> 'a option
(** Run a full supervised episode: bind, execute the body, unbind —
    retried as a whole by the registry-attached supervisor on decaf
    faults, [None] when the restart budget is exhausted (driver left
    [Disabled]). While the body runs, nested registry operations
    ({!suspend}, {!eject}, {!insmod} after a hotplug removal) execute
    directly under the same supervision instead of re-wrapping. *)

val snapshot : string -> snapshot

val snapshots : unit -> snapshot list
(** One {!snapshot} per binding, stable-sorted by
    (driver name, instance id). *)

val render_status : snapshot list -> string
(** The [decafctl status] table: one row per binding plus an aggregate
    TOTAL row when more than one binding exists. *)
