module Ast = Decaf_minic.Ast
module Plan = Decaf_xpc.Marshal_plan

type field_use = { fu_field : string; fu_read : bool; fu_written : bool }

module Smap = Map.Make (String)

(* Walk the bodies of [funcs], recording which struct fields are read and
   which are written. Assignment left-hand sides whose outermost node is
   a field access count as writes; everything else counts as reads. *)
let field_accesses (file : Ast.file) ~funcs =
  let uses = ref Smap.empty in
  let note field ~write =
    let u =
      match Smap.find_opt field !uses with
      | Some u -> u
      | None -> { fu_field = field; fu_read = false; fu_written = false }
    in
    let u =
      if write then { u with fu_written = true } else { u with fu_read = true }
    in
    uses := Smap.add field u !uses
  in
  let rec reads e =
    match e with
    | Ast.Efield (base, f) | Ast.Earrow (base, f) ->
        note f ~write:false;
        reads base
    | Ast.Eassign (op, lhs, rhs) ->
        (match lhs with
        | Ast.Efield (base, f) | Ast.Earrow (base, f) ->
            note f ~write:true;
            (* compound assignment also reads the field *)
            if op <> None then note f ~write:false;
            reads base
        | _ -> reads lhs);
        reads rhs
    | Ast.Epostincr inner | Ast.Epostdecr inner | Ast.Epreincr inner
    | Ast.Epredecr inner -> (
        match inner with
        | Ast.Efield (base, f) | Ast.Earrow (base, f) ->
            note f ~write:true;
            note f ~write:false;
            reads base
        | _ -> reads inner)
    | Ast.Econst _ | Ast.Estr _ | Ast.Echar _ | Ast.Eident _
    | Ast.Esizeof_type _ ->
        ()
    | Ast.Eunop (_, a) | Ast.Ecast (_, a) | Ast.Esizeof_expr a -> reads a
    | Ast.Ebinop (_, a, b) | Ast.Eindex (a, b) ->
        reads a;
        reads b
    | Ast.Econd (a, b, c) ->
        reads a;
        reads b;
        reads c
    | Ast.Ecall (Ast.Eident name, _)
      when String.length name >= 6 && String.sub name 0 6 = "DECAF_" ->
        (* annotation macro, not a real access: handled by Annot *)
        ()
    | Ast.Ecall (callee, args) ->
        reads callee;
        List.iter reads args
  in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.skind with
    | Sexpr e -> reads e
    | Sdecl (_, _, init) -> Option.iter reads init
    | Sif (c, a, b) ->
        reads c;
        List.iter stmt a;
        List.iter stmt b
    | Swhile (c, body) ->
        reads c;
        List.iter stmt body
    | Sdo (body, c) ->
        List.iter stmt body;
        reads c
    | Sfor (init, cond, update, body) ->
        Option.iter stmt init;
        Option.iter reads cond;
        Option.iter reads update;
        List.iter stmt body
    | Sreturn e -> Option.iter reads e
    | Sswitch (e, cases) ->
        reads e;
        List.iter
          (function
            | Ast.Case (_, body) | Ast.Default body -> List.iter stmt body)
          cases
    | Sgoto _ | Slabel _ | Sbreak | Scontinue -> ()
    | Sblock body -> List.iter stmt body
  in
  List.iter
    (fun name ->
      match Ast.find_function file name with
      | Some fn -> List.iter stmt fn.Ast.fbody
      | None -> ())
    funcs;
  Smap.fold (fun _ u acc -> u :: acc) !uses [] |> List.rev

let plans (file : Ast.file) ~user_funcs ~annots =
  let uses = field_accesses file ~funcs:user_funcs in
  let access_of u =
    match (u.fu_read, u.fu_written) with
    | true, true -> Plan.Read_write
    | false, true -> Plan.Write
    | _, false -> Plan.Read
  in
  let from_annots (s : Ast.struct_def) =
    List.filter_map
      (fun (va : Annot.var_annot) ->
        if
          List.exists
            (fun (f : Ast.field) -> f.Ast.fname = va.Annot.va_field)
            s.Ast.sfields
        then Some (va.Annot.va_field, Annot.plan_access va.Annot.va_access)
        else None)
      annots.Annot.vars
  in
  List.filter_map
    (fun (s : Ast.struct_def) ->
      let from_uses =
        List.filter_map
          (fun u ->
            if
              List.exists
                (fun (f : Ast.field) -> f.Ast.fname = u.fu_field)
                s.Ast.sfields
            then Some (u.fu_field, access_of u)
            else None)
          uses
      in
      let merged =
        List.fold_left
          (fun acc (name, a) ->
            let single = Plan.make ~type_id:s.Ast.sname [ (name, a) ] in
            Plan.union acc single)
          (Plan.make ~type_id:s.Ast.sname [])
          (from_uses @ from_annots s)
      in
      if Plan.fields merged = [] then None else Some merged)
    (Ast.structs file)

(* --- generated code text --- *)

let c_marshal_call spec name = function
  | Xdrspec.Xint -> Printf.sprintf "xdr_int(xdrs, &objp->%s)" name
  | Xdrspec.Xuint -> Printf.sprintf "xdr_u_int(xdrs, &objp->%s)" name
  | Xdrspec.Xhyper -> Printf.sprintf "xdr_hyper(xdrs, &objp->%s)" name
  | Xdrspec.Xbool -> Printf.sprintf "xdr_bool(xdrs, &objp->%s)" name
  | Xdrspec.Xopaque n -> Printf.sprintf "xdr_opaque(xdrs, objp->%s, %d)" name n
  | Xdrspec.Xstring -> Printf.sprintf "xdr_string(xdrs, &objp->%s, ~0)" name
  | Xdrspec.Xarray (t, n) ->
      Printf.sprintf "xdr_vector(xdrs, (char *)objp->%s, %d, sizeof(*objp->%s), (xdrproc_t)%s)"
        name n name
        (match t with
        | Xdrspec.Xint -> "xdr_int"
        | Xdrspec.Xuint -> "xdr_u_int"
        | Xdrspec.Xhyper -> "xdr_hyper"
        | _ -> "xdr_u_int")
  | Xdrspec.Xoptional t ->
      Printf.sprintf "xdr_pointer(xdrs, (char **)&objp->%s, sizeof(*objp->%s), (xdrproc_t)%s)"
        name name
        (match t with
        | Xdrspec.Xstruct_ref s -> "xdr_" ^ s
        | _ -> "xdr_u_int")
  | Xdrspec.Xstruct_ref s ->
      ignore spec;
      Printf.sprintf "xdr_%s(xdrs, &objp->%s)" s name

let c_marshal_code spec (s : Xdrspec.xdr_struct) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "bool_t\nxdr_%s(XDR *xdrs, %s *objp)\n{\n" s.Xdrspec.xs_name
       s.Xdrspec.xs_name);
  Buffer.add_string buf
    "\t/* object tracker: reuse an existing copy if one is registered */\n";
  Buffer.add_string buf
    (Printf.sprintf "\tobjp = decaf_objtracker_lookup(xdrs, objp, \"%s\");\n"
       s.Xdrspec.xs_name);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "\tif (!%s)\n\t\treturn FALSE;\n"
           (c_marshal_call spec f.Xdrspec.xf_name f.Xdrspec.xf_type)))
    s.Xdrspec.xs_fields;
  Buffer.add_string buf "\treturn TRUE;\n}\n";
  Buffer.contents buf

let java_type = function
  | Xdrspec.Xint | Xdrspec.Xuint -> "int"
  | Xdrspec.Xhyper -> "long"
  | Xdrspec.Xbool -> "boolean"
  | Xdrspec.Xopaque _ -> "byte[]"
  | Xdrspec.Xstring -> "String"
  | Xdrspec.Xarray (Xdrspec.Xhyper, _) -> "long[]"
  | Xdrspec.Xarray _ -> "int[]"
  | Xdrspec.Xoptional (Xdrspec.Xstruct_ref s) | Xdrspec.Xstruct_ref s -> s
  | Xdrspec.Xoptional _ -> "Integer"

let java_class_code (s : Xdrspec.xdr_struct) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "public class %s implements XdrAble {\n" s.Xdrspec.xs_name);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "    public %s %s;\n" (java_type f.Xdrspec.xf_type)
           f.Xdrspec.xf_name))
    s.Xdrspec.xs_fields;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let java_marshal_code spec (s : Xdrspec.xdr_struct) =
  ignore spec;
  let buf = Buffer.create 512 in
  let cls = s.Xdrspec.xs_name in
  Buffer.add_string buf
    (Printf.sprintf "public void xdrEncode(XdrEncodingStream xdr) {\n");
  Buffer.add_string buf
    (Printf.sprintf "    JavaOT.note_encoded(this, \"%s\");\n" cls);
  List.iter
    (fun f ->
      let name = f.Xdrspec.xf_name in
      let call =
        match f.Xdrspec.xf_type with
        | Xdrspec.Xint | Xdrspec.Xuint -> Printf.sprintf "xdr.xdrEncodeInt(%s)" name
        | Xdrspec.Xhyper -> Printf.sprintf "xdr.xdrEncodeLong(%s)" name
        | Xdrspec.Xbool -> Printf.sprintf "xdr.xdrEncodeBoolean(%s)" name
        | Xdrspec.Xopaque n ->
            Printf.sprintf "xdr.xdrEncodeOpaque(%s, %d)" name n
        | Xdrspec.Xstring -> Printf.sprintf "xdr.xdrEncodeString(%s)" name
        | Xdrspec.Xarray _ -> Printf.sprintf "xdr.xdrEncodeIntVector(%s)" name
        | Xdrspec.Xoptional (Xdrspec.Xstruct_ref _) | Xdrspec.Xstruct_ref _ ->
            Printf.sprintf "JavaOT.encode_shared(xdr, %s)" name
        | Xdrspec.Xoptional _ -> Printf.sprintf "xdr.xdrEncodeInt(%s)" name
      in
      Buffer.add_string buf (Printf.sprintf "    %s;\n" call))
    s.Xdrspec.xs_fields;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
