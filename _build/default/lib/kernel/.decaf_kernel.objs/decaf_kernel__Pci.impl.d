lib/kernel/pci.ml: Array Bytes Klog List Panic
