module Ast = Decaf_minic.Ast
module Callgraph = Decaf_minic.Callgraph
module Sset = Set.Make (String)

type config = {
  driver_name : string;
  critical_roots : string list;
  interface_functions : string list;
}

type placement = Nucleus | User

type result = {
  config : config;
  nucleus : string list;
  user : string list;
  user_entry_points : string list;
  kernel_entry_points : string list;
}

let run file config =
  let cg = Callgraph.build file in
  let defined = Sset.of_list (Callgraph.defined cg) in
  let missing =
    List.filter
      (fun f -> not (Sset.mem f defined))
      (config.critical_roots @ config.interface_functions)
  in
  if missing <> [] then
    invalid_arg
      (Printf.sprintf "Partition.run (%s): unknown functions: %s"
         config.driver_name
         (String.concat ", " missing));
  let nucleus = Sset.of_list (Callgraph.reachable cg ~roots:config.critical_roots) in
  let user = Sset.diff defined nucleus in
  (* User-mode entry points: interface functions that moved up. *)
  let user_entry_points =
    List.filter (fun f -> Sset.mem f user) config.interface_functions
  in
  (* Kernel entry points: nucleus functions and kernel imports invoked
     from user-mode code. *)
  let is_annotation name = String.length name >= 6 && String.sub name 0 6 = "DECAF_" in
  let kernel_entry_points =
    Sset.fold
      (fun u acc ->
        let to_nucleus =
          List.filter (fun c -> Sset.mem c nucleus) (Callgraph.callees cg u)
        in
        let imports =
          List.filter
            (fun c -> not (is_annotation c))
            (Callgraph.external_callees cg u)
        in
        Sset.union acc (Sset.of_list (to_nucleus @ imports)))
      user Sset.empty
  in
  {
    config;
    nucleus = Sset.elements nucleus;
    user = Sset.elements user;
    user_entry_points = List.sort compare user_entry_points;
    kernel_entry_points = Sset.elements kernel_entry_points;
  }

let placement result name =
  if List.mem name result.nucleus then Nucleus
  else if List.mem name result.user then User
  else raise Not_found

let check_soundness file result =
  let cg = Callgraph.build file in
  let reachable =
    Sset.of_list (Callgraph.reachable cg ~roots:result.config.critical_roots)
  in
  let misplaced = List.filter (fun f -> Sset.mem f reachable) result.user in
  if misplaced = [] then Ok ()
  else
    Error
      (Printf.sprintf "kernel-reachable functions placed in user mode: %s"
         (String.concat ", " misplaced))
