open Decaf_xpc
module Plan = Marshal_plan

type kernel_nic = {
  k_addr : int;
  mutable k_msg_enable : int;
  k_mc_filter : int array;
  mutable k_rx_dropped : int;
  mutable k_stats_gen : int;
  k_dirty : Plan.Dirty.t;
}

type java_nic = {
  mutable j_c_addr : int;
  mutable j_msg_enable : int;
  j_mc_filter : int array;
  mutable j_rx_dropped : int;
  mutable j_stats_gen : int;
  j_dirty : Plan.Dirty.t;
}

let mc_filter_words = 2

(* What the user-level 8139too code touches: msg_enable both ways, and
   the kernel-maintained multicast filter, drop counter and stats
   generation as read-only views refreshed by deferred notifications. *)
let plan =
  Plan.make ~type_id:"rtl8139_nic"
    [
      ("msg_enable", Plan.Read_write);
      ("mc_filter", Plan.Read);
      ("rx_dropped", Plan.Read);
      ("stats_gen", Plan.Read);
    ]

let nic_key : java_nic Univ.key = Univ.new_key "rtl8139_nic"

(* Inbound validation rules (see E1000_objects for the shape): only
   msg_enable is writable from user level; the Read-only views carry
   rules for completeness but writability rejects them first. *)
let guard =
  Guard.make plan
    [
      ("msg_enable", Guard.Range (0, 0xffff));
      ("mc_filter", Guard.Max_len mc_filter_words);
      ("rx_dropped", Guard.Non_negative);
      ("stats_gen", Guard.Non_negative);
    ]

let guard_rejections () = Guard.rejections guard

let kernel_tracker () = Decaf_runtime.Runtime.kernel_tracker ()

let nic_handle (k : kernel_nic) =
  Objtracker.issue (kernel_tracker ()) ~addr:k.k_addr
    ~type_id:(Plan.type_id plan)

(* Driver unload: revoke the instance's capability handle in both
   trackers so unbinding leaves no entries behind (see
   {!E1000_objects.release_kernel_adapter}). *)
let release_kernel_nic (k : kernel_nic) =
  Objtracker.remove_all
    (Decaf_runtime.Runtime.java_tracker ())
    ~addr:(nic_handle k);
  Objtracker.remove_all (kernel_tracker ()) ~addr:k.k_addr

let fresh_kernel_nic () =
  {
    k_addr = Addr.alloc ~size:256;
    k_msg_enable = 0;
    k_mc_filter = Array.make mc_filter_words 0;
    k_rx_dropped = 0;
    k_stats_gen = 0;
    k_dirty = Plan.Dirty.create ~owner:"rtl8139_nic" ();
  }

let set_k_msg_enable k v =
  if k.k_msg_enable <> v then begin
    k.k_msg_enable <- v;
    Plan.Dirty.mark k.k_dirty "msg_enable"
  end

let set_k_mc_filter k w0 w1 =
  if k.k_mc_filter.(0) <> w0 || k.k_mc_filter.(1) <> w1 then begin
    k.k_mc_filter.(0) <- w0;
    k.k_mc_filter.(1) <- w1;
    Plan.Dirty.mark k.k_dirty "mc_filter"
  end

let bump_k_rx_dropped k =
  k.k_rx_dropped <- k.k_rx_dropped + 1;
  Plan.Dirty.mark k.k_dirty "rx_dropped"

let bump_k_stats k =
  k.k_stats_gen <- k.k_stats_gen + 1;
  Plan.Dirty.mark k.k_dirty "stats_gen"

let user_view_mark k = Plan.Dirty.snapshot k.k_dirty
let ack_user_view k ~upto = Plan.Dirty.acknowledge k.k_dirty ~upto

let set_j_msg_enable j v =
  if j.j_msg_enable <> v then begin
    j.j_msg_enable <- v;
    Plan.Dirty.mark j.j_dirty "msg_enable"
  end

let encode_fields ~includes ~addr ~msg_enable ~mc_filter ~rx_dropped
    ~stats_gen =
  let e = Xdr.Enc.create () in
  Xdr.Enc.uint e addr;
  let opt name enc =
    if includes name then begin
      Xdr.Enc.bool e true;
      enc ()
    end
    else Xdr.Enc.bool e false
  in
  opt "msg_enable" (fun () -> Xdr.Enc.int e msg_enable);
  opt "mc_filter" (fun () -> Xdr.Enc.array_var e Xdr.Enc.uint mc_filter);
  opt "rx_dropped" (fun () -> Xdr.Enc.int e rx_dropped);
  opt "stats_gen" (fun () -> Xdr.Enc.int e stats_gen);
  Xdr.Enc.to_bytes e

type decoded = {
  d_addr : int;
  d_msg_enable : int option;
  d_mc_filter : int array option;
  d_rx_dropped : int option;
  d_stats_gen : int option;
}

let decode_fields bytes =
  let d = Xdr.Dec.of_bytes bytes in
  let d_addr = Xdr.Dec.uint d in
  let opt dec = if Xdr.Dec.bool d then Some (dec d) else None in
  let d_msg_enable = opt Xdr.Dec.int in
  let d_mc_filter = opt (fun d -> Xdr.Dec.array_var d Xdr.Dec.uint) in
  let d_rx_dropped = opt Xdr.Dec.int in
  let d_stats_gen = opt Xdr.Dec.int in
  Xdr.Dec.check_drained d;
  { d_addr; d_msg_enable; d_mc_filter; d_rx_dropped; d_stats_gen }

(* The user-level tracker is keyed by the capability handle — the C
   address never crosses to user level. *)
let user_has_view (k : kernel_nic) =
  Objtracker.mem
    (Decaf_runtime.Runtime.java_tracker ())
    ~addr:(nic_handle k) ~type_id:(Plan.type_id plan)

let marshal_to_user (k : kernel_nic) =
  let delta = Plan.delta_enabled () && user_has_view k in
  let includes name =
    Plan.copies_in plan name
    && ((not delta) || Plan.Dirty.test k.k_dirty name)
  in
  encode_fields ~includes ~addr:(nic_handle k) ~msg_enable:k.k_msg_enable
    ~mc_filter:k.k_mc_filter ~rx_dropped:k.k_rx_dropped
    ~stats_gen:k.k_stats_gen

let wire_size =
  let k = fresh_kernel_nic () in
  Bytes.length
    (encode_fields
       ~includes:(Plan.copies_in plan)
       ~addr:k.k_addr ~msg_enable:k.k_msg_enable ~mc_filter:k.k_mc_filter
       ~rx_dropped:k.k_rx_dropped ~stats_gen:k.k_stats_gen)

let unmarshal_at_user bytes =
  let d = decode_fields bytes in
  let tracker = Decaf_runtime.Runtime.java_tracker () in
  let j =
    match Objtracker.find tracker ~addr:d.d_addr nic_key with
    | Some j -> j
    | None ->
        let j =
          {
            j_c_addr = d.d_addr;
            j_msg_enable = 0;
            j_mc_filter = Array.make mc_filter_words 0;
            j_rx_dropped = 0;
            j_stats_gen = 0;
            j_dirty = Plan.Dirty.create ~owner:"rtl8139_nic.user" ();
          }
        in
        Objtracker.associate tracker ~addr:d.d_addr (Univ.pack nic_key j);
        j
  in
  Option.iter (fun v -> j.j_msg_enable <- v) d.d_msg_enable;
  Option.iter (fun v -> Array.blit v 0 j.j_mc_filter 0 (Array.length v))
    d.d_mc_filter;
  Option.iter (fun v -> j.j_rx_dropped <- v) d.d_rx_dropped;
  Option.iter (fun v -> j.j_stats_gen <- v) d.d_stats_gen;
  j

let marshal_to_kernel (j : java_nic) =
  let delta = Plan.delta_enabled () in
  let upto = Plan.Dirty.snapshot j.j_dirty in
  let includes name =
    Plan.copies_out plan name
    && ((not delta) || Plan.Dirty.test j.j_dirty name)
  in
  let b =
    encode_fields ~includes ~addr:j.j_c_addr ~msg_enable:j.j_msg_enable
      ~mc_filter:j.j_mc_filter ~rx_dropped:j.j_rx_dropped
      ~stats_gen:j.j_stats_gen
  in
  if delta then Plan.Dirty.acknowledge j.j_dirty ~upto;
  b

(* Inbound crossing: validate everything (capability handle, payload
   size, field rules) before applying anything — a boundary fault
   leaves the nic untouched and routes to the supervisor, never a
   panic. *)
let unmarshal_at_kernel bytes (k : kernel_nic) =
  Guard.check_inbound_bytes guard (Bytes.length bytes);
  let d = decode_fields bytes in
  (match
     Objtracker.resolve (kernel_tracker ()) ~handle:d.d_addr
       ~type_id:(Plan.type_id plan)
   with
  | Error reason ->
      (* resolve already counted the rejection *)
      raise
        (Boundary.Boundary_violation
           { type_id = Plan.type_id plan; field = "handle"; reason })
  | Ok addr ->
      if addr <> k.k_addr then
        Boundary.reject ~type_id:(Plan.type_id plan) ~field:"handle"
          "handle %#x names nic %#x, crossing is for %#x" d.d_addr addr
          k.k_addr);
  let msg_enable =
    Option.map (Guard.int_field guard ~field:"msg_enable") d.d_msg_enable
  in
  (* mc_filter / rx_dropped / stats_gen are Read-only in the plan:
     never applied, and with the guard on their presence inbound is a
     violation *)
  Option.iter
    (fun v -> ignore (Guard.array_field guard ~field:"mc_filter" v))
    d.d_mc_filter;
  Option.iter
    (fun v -> ignore (Guard.int_field guard ~field:"rx_dropped" v))
    d.d_rx_dropped;
  Option.iter
    (fun v -> ignore (Guard.int_field guard ~field:"stats_gen" v))
    d.d_stats_gen;
  Option.iter (fun v -> k.k_msg_enable <- v) msg_enable

let resync_user_view (k : kernel_nic) =
  List.iter
    (fun (f, _) -> if Plan.copies_in plan f then Plan.Dirty.mark k.k_dirty f)
    (Plan.fields plan)

(* Ring fast path (see E1000_objects for the rationale): the three hot
   notifications — stats rollups, rx-overflow drops, multicast-filter
   refreshes — as fixed-layout slot records, all-Write in the slot plan
   because slots live in conceptually shared memory. *)

let ring_ev_stats = 1
let ring_ev_rx_dropped = 2
let ring_ev_mc_filter = 3

let ring_plan =
  Plan.make ~type_id:"rtl8139_ring_slot"
    [ ("kind", Plan.Write); ("arg0", Plan.Write); ("arg1", Plan.Write) ]

let ring_guard =
  Guard.make ring_plan
    [
      ("kind", Guard.Enum [ ring_ev_stats; ring_ev_rx_dropped; ring_ev_mc_filter ]);
      ("arg0", Guard.Non_negative);
      ("arg1", Guard.Non_negative);
    ]

let ring_resolve handle =
  Objtracker.resolve (kernel_tracker ()) ~handle ~type_id:(Plan.type_id plan)

(* Quiet bumps: the ring delivers the value, the dirty mark happens only
   if the record turns out to be undeliverable. *)

let ring_stats_record (k : kernel_nic) =
  k.k_stats_gen <- k.k_stats_gen + 1;
  {
    Ring.kind = ring_ev_stats;
    handle = nic_handle k;
    arg0 = k.k_stats_gen;
    arg1 = 0;
  }

let ring_rx_dropped_record (k : kernel_nic) =
  k.k_rx_dropped <- k.k_rx_dropped + 1;
  {
    Ring.kind = ring_ev_rx_dropped;
    handle = nic_handle k;
    arg0 = k.k_rx_dropped;
    arg1 = 0;
  }

let ring_mc_filter_record (k : kernel_nic) w0 w1 =
  k.k_mc_filter.(0) <- w0;
  k.k_mc_filter.(1) <- w1;
  { Ring.kind = ring_ev_mc_filter; handle = nic_handle k; arg0 = w0; arg1 = w1 }

let ring_undeliverable (k : kernel_nic) (r : Ring.record) =
  if r.Ring.kind = ring_ev_stats then Plan.Dirty.mark k.k_dirty "stats_gen"
  else if r.Ring.kind = ring_ev_rx_dropped then
    Plan.Dirty.mark k.k_dirty "rx_dropped"
  else if r.Ring.kind = ring_ev_mc_filter then
    Plan.Dirty.mark k.k_dirty "mc_filter"

let apply_ring_record (r : Ring.record) =
  match
    Objtracker.find
      (Decaf_runtime.Runtime.java_tracker ())
      ~addr:r.Ring.handle nic_key
  with
  | None -> ()
  | Some j ->
      if r.Ring.kind = ring_ev_stats then j.j_stats_gen <- r.Ring.arg0
      else if r.Ring.kind = ring_ev_rx_dropped then
        j.j_rx_dropped <- r.Ring.arg0
      else if r.Ring.kind = ring_ev_mc_filter then begin
        j.j_mc_filter.(0) <- r.Ring.arg0;
        j.j_mc_filter.(1) <- r.Ring.arg1
      end
