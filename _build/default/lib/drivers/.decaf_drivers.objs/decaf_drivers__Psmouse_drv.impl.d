lib/drivers/psmouse_drv.ml: Decaf_hw Decaf_kernel Decaf_runtime Driver_env List Queue
