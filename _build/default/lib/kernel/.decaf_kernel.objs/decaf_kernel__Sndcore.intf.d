lib/kernel/sndcore.mli:
