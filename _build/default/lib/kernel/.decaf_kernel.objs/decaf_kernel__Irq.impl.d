lib/kernel/irq.ml: Array Clock Cost Panic Sched
