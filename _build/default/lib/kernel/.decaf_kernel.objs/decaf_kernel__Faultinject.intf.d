lib/kernel/faultinject.mli:
