lib/drivers/rtl8139_drv.mli: Decaf_hw Decaf_kernel Driver_env Rtl8139_objects
