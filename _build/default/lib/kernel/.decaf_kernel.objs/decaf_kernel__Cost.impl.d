lib/kernel/cost.ml:
