(** Module-parameter validation for decaf drivers.

    Mirrors the paper's rewrite of [e1000_param.c] (§5.1, "Object
    orientation"): a base checker class provides the common logic and
    two derived classes add range tests and set-membership tests — the
    latter implemented with a hash table from the standard library (the
    "Java collections" benefit). The type system forces callers to
    provide the ranges and sets, which the C original could silently
    omit. *)

type outcome = { value : int; adjusted : bool }

class virtual checker : name:string -> default:int -> object
  method name : string
  method default : int

  method virtual accepts : int -> bool
  (** Whether the raw value is legal for this parameter. *)

  method check : int -> outcome
  (** Validate a raw value: returns it unchanged when legal, otherwise
      the default with [adjusted = true] (and a kernel log line, as the
      driver printk does). *)
end

class type concrete = object
  method name : string
  method default : int
  method accepts : int -> bool
  method check : int -> outcome
end
(** A fully-implemented checker, the type the derived classes share. *)

class flag_checker : name:string -> default:int -> concrete
(** Accepts 0 or 1. *)

class range_checker :
  name:string -> default:int -> min:int -> max:int -> concrete

class set_checker : name:string -> default:int -> allowed:int list -> concrete
(** Membership is tested against a hash table built from [allowed]. *)

val check_all : (concrete * int) list -> (string * outcome) list
(** Validate each (checker, raw value) pair in order. *)
