test/test_xpc.mli:
