lib/kernel/faultinject.ml: List Random
